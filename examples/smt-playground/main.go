// smt-playground drives the SMT layer directly: it builds the paper's
// Constraint-2 and Constraint-3 for Listing 4 by hand (Section III-C/D),
// prints the SMT-LIB2 script (which real Z3 also accepts), solves the
// conjunction, and shows the witness — then flips the example to a
// sanitized variant and shows the refutation.
//
// Run with:
//
//	go run ./examples/smt-playground
package main

import (
	"fmt"

	"repro/internal/smt"
)

func main() {
	sPath := smt.Var("s_path", smt.SortString)
	sName := smt.Var("s_name", smt.SortString)
	sExt := smt.Var("s_ext", smt.SortString)

	// se_dst = s_path . "/" . s_name . s_ext  (paper Section III-C)
	dst := smt.Concat(sPath, smt.Str("/"), sName, sExt)

	// Constraint-2: (str.suffixof ".php" trl(se_dst))
	c2 := smt.SuffixOf(smt.Str(".php"), dst)
	// Constraint-3: (> (str.len (str.++ s_name s_ext)) 5)
	c3 := smt.Gt(smt.Len(smt.Concat(sName, sExt)), smt.Int(5))

	formula := smt.And(c2, c3)
	fmt.Println("== Listing 4 constraints ==")
	fmt.Println(smt.ToSMTLIB2(formula))

	solver := smt.NewSolver(smt.Options{})
	status, model, stats, err := solver.Check(formula)
	fmt.Printf("status: %v (cubes=%d, assignments tried=%d, err=%v)\n",
		status, stats.Cubes, stats.Assignments, err)
	if status == smt.Sat {
		fmt.Println("witness:")
		for name, v := range model {
			fmt.Printf("  %s = %s\n", name, v)
		}
		full := model["s_path"].S + "/" + model["s_name"].S + model["s_ext"].S
		fmt.Printf("uploaded path would be: %q\n", full)
	}

	// A sanitized variant: the server forces a constant ".png" suffix.
	fmt.Println("\n== sanitized variant ==")
	safeDst := smt.Concat(sPath, smt.Str("/"), sName, smt.Str(".png"))
	safe := smt.And(smt.SuffixOf(smt.Str(".php"), safeDst), c3)
	status2, _, _, _ := solver.Check(safe)
	fmt.Printf("status: %v (the simplifier refutes the \".php\"-vs-\".png\" suffix conflict)\n", status2)
	fmt.Printf("simplified form: %s\n", smt.Simplify(safe))
}
