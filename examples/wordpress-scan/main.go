// wordpress-scan reproduces the Section IV-B discovery workflow: it scans
// the synthetic re-creations of the three WordPress plugins in which the
// paper found previously unreported vulnerabilities — File Provider 1.2.3,
// WooCommerce Custom Profile Picture 1.0, and WP Demo Buddy 1.0.2 — and
// prints the localized, source-line-level findings for each.
//
// Run with:
//
//	go run ./examples/wordpress-scan
package main

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
)

func main() {
	scanner := core.NewScanner(core.Options{})
	for _, app := range corpus.NewVulnApps() {
		report, _ := scanner.Scan(context.Background(), core.Target{Name: app.Name, Sources: app.Sources})
		fmt.Printf("=== %s ===\n", app.Name)
		fmt.Printf("verdict: vulnerable=%v  (%d LoC, %.2f%% analyzed, %d paths, %.3fs)\n",
			report.Vulnerable, report.TotalLoC, report.PercentAnalyzed,
			report.Paths, report.Seconds)
		for _, f := range report.Findings {
			fmt.Printf("  %s at %s:%d\n", f.Sink, f.File, f.Line)
			fmt.Printf("  relevant source lines: %v\n", f.Lines)
			printSourceLines(app.Sources[f.File], f.Lines)
			if len(f.Witness) > 0 {
				fmt.Printf("  attacker-controlled assignment making this exploitable:\n")
				for name, v := range f.Witness {
					if strings.Contains(name, "ext") || strings.Contains(name, "name") {
						fmt.Printf("    %s = %s\n", name, v)
					}
				}
			}
		}
		fmt.Println()
	}
}

// printSourceLines shows the flagged lines with a 1-line margin — the
// source-code-focused feedback the paper's AST-level design enables.
func printSourceLines(src string, lines []int) {
	if src == "" || len(lines) == 0 {
		return
	}
	want := map[int]bool{}
	for _, ln := range lines {
		want[ln] = true
	}
	for i, text := range strings.Split(src, "\n") {
		ln := i + 1
		if want[ln] {
			fmt.Printf("    %4d | %s\n", ln, text)
		}
	}
}
