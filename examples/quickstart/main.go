// Quickstart: scan the paper's canonical vulnerable upload handler
// (Listing 4) with the core API and print the verdict, constraints, and
// exploit witness.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/core"
)

// listing4 is the vulnerable example of the UChecker paper (Listing 4):
// the uploaded file is stored under a path derived from its original name
// with no extension check.
const listing4 = `<?php
$path_array = wp_upload_dir();
$pathAndName = $path_array['path'] . "/" . $_FILES['upload_file']['name'];
if (!move_uploaded_file($_FILES['upload_file']['tmp_name'], $pathAndName)) {
	return false;
}
return true;
`

func main() {
	// Scanner v2: context-aware, with a bounded worker pool. A deadline
	// guards against pathological inputs; phases 3–6 fan out per root.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	scanner := core.NewScanner(core.Options{KeepSMT: true})
	report, err := scanner.Scan(ctx, core.Target{
		Name:    "listing4",
		Sources: map[string]string{"upload.php": listing4},
	})
	if err != nil {
		log.Fatalf("scan aborted: %v", err)
	}

	fmt.Printf("verdict: vulnerable=%v\n", report.Vulnerable)
	fmt.Printf("locality: %d/%d LoC analyzed (%.1f%%), %d paths explored\n",
		report.AnalyzedLoC, report.TotalLoC, report.PercentAnalyzed, report.Paths)

	for _, f := range report.Findings {
		fmt.Printf("\nfinding: %s at %s:%d\n", f.Sink, f.File, f.Line)
		fmt.Printf("  source lines involved: %v\n", f.Lines)
		fmt.Printf("  destination (PHP s-expression):  %s\n", f.SeDst)
		fmt.Printf("  exploit witness (solver model):\n")
		names := make([]string, 0, len(f.Witness))
		for name := range f.Witness {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("    %s = %s\n", name, f.Witness[name])
		}
		fmt.Printf("\n  SMT-LIB2 constraint handed to the solver:\n%s", f.SMTLIB)
	}
}
