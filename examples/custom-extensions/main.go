// custom-extensions demonstrates the Section VI extension points:
//
//  1. widening the executable-extension list beyond ".php"/".php5" (the
//     paper: "variant vulnerabilities may allow files with other potential
//     harmful extensions such as .asa and .swf — UChecker can easily cover
//     these variants by verifying more extensions"), and
//  2. modeling WordPress's add_action('admin_menu', ...) gating, which
//     removes the two false positives of Section IV-A.
//
// Run with:
//
//	go run ./examples/custom-extensions
package main

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// phtmlUploader only admits uploads whose extension equals "phtml", which
// Apache commonly executes as PHP. The stock extension list misses it.
const phtmlUploader = `<?php
$ext = pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION);
if ($ext == "phtml") {
	move_uploaded_file($_FILES['f']['tmp_name'], "/up/x." . $ext);
}
`

// adminUploader allows arbitrary uploads, but only from an admin page —
// the Event Registration Pro Calendar pattern the paper counts as its own
// false positive (Listing 5).
const adminUploader = `<?php
add_action('admin_menu', 'csv_import_page');
function csv_import_page() {
	move_uploaded_file($_FILES['csv']['tmp_name'], "/up/" . $_FILES['csv']['name']);
}
`

func main() {
	ctx := context.Background()
	scan := func(s *core.Scanner, name string, sources map[string]string) *core.AppReport {
		rep, _ := s.Scan(ctx, core.Target{Name: name, Sources: sources})
		return rep
	}
	files := map[string]string{"phtml.php": phtmlUploader}

	stock := core.NewScanner(core.Options{})
	fmt.Printf(".phtml uploader, stock extensions:    vulnerable=%v\n",
		scan(stock, "phtml", files).Vulnerable)

	widened := core.NewScanner(core.Options{
		Extensions: []string{".php", ".php5", ".phtml", ".asa", ".swf"},
	})
	fmt.Printf(".phtml uploader, widened extensions:  vulnerable=%v\n",
		scan(widened, "phtml", files).Vulnerable)

	adminFiles := map[string]string{"admin.php": adminUploader}
	fmt.Printf("\nadmin uploader, paper configuration:  vulnerable=%v (the documented FP)\n",
		scan(stock, "admin", adminFiles).Vulnerable)

	gated := core.NewScanner(core.Options{ModelAdminGating: true})
	gatedRep := scan(gated, "admin", adminFiles)
	fmt.Printf("admin uploader, admin gating modeled: vulnerable=%v", gatedRep.Vulnerable)
	if len(gatedRep.Findings) > 0 && gatedRep.Findings[0].AdminGated {
		fmt.Printf(" (finding recorded but marked admin-gated)")
	}
	fmt.Println()
}
