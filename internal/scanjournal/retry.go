// Bounded deterministic-jitter retry for transient journal and lease
// I/O. A single failed O_APPEND write used to abort a whole batch with
// schedule-cancelled reports; distributed workers additionally contend
// on the coordination journal's lock file. Both paths now absorb
// transient faults with the same policy: a handful of attempts,
// exponential backoff, and jitter derived from a hash of the operation
// key — never from wall clocks or math/rand, so two workers retrying
// the same contended operation desynchronize identically on every run
// and the crash-matrix replays stay reproducible.
package scanjournal

import (
	"hash/fnv"
	"strconv"
	"time"
)

// RetryPolicy bounds retries of a transient-failure-prone operation.
// The zero value retries nothing (one attempt, no sleep).
type RetryPolicy struct {
	// Attempts is the total number of tries (first try included). Values
	// below 1 behave as 1.
	Attempts int
	// Base is the backoff unit: attempt k (0-based) sleeps
	// Base<<k ± 50% deterministic jitter before retrying. Zero means
	// retry immediately — tests use that to keep the matrix fast.
	Base time.Duration
}

// DefaultRetry is the policy the batch scanner and shard coordinator
// apply to journal appends and lease transactions: 3 attempts, 2ms
// base. Persistent faults still abort after ~14ms; a single transient
// fault costs one jittered sleep instead of the whole batch.
var DefaultRetry = RetryPolicy{Attempts: 3, Base: 2 * time.Millisecond}

// Do runs op up to p.Attempts times, sleeping between attempts with
// exponential backoff and deterministic jitter keyed on (key, attempt).
// It returns the number of retries consumed (0 when the first attempt
// succeeded — the value feeds the journal_append_retries counter) and
// the final error (nil on success, the last attempt's error otherwise).
func (p RetryPolicy) Do(key string, op func() error) (retries int, err error) {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	for i := 0; i < attempts; i++ {
		if i > 0 {
			retries++
			if d := p.Backoff(key, i-1); d > 0 {
				time.Sleep(d)
			}
		}
		if err = op(); err == nil {
			return retries, nil
		}
	}
	return retries, err
}

// Backoff computes the sleep before retry #attempt (0-based):
// Base<<attempt scaled by a deterministic jitter factor in [0.5, 1.5)
// drawn from an FNV hash of the key and attempt number. It is exported
// because the scan daemon reuses the exact same schedule for the
// Retry-After hints it advertises when shedding load: a client that
// obeys the hint backs off precisely like an internal retry would, and
// the deterministic jitter keeps shed/retry tests reproducible.
func (p RetryPolicy) Backoff(key string, attempt int) time.Duration {
	if p.Base <= 0 {
		return 0
	}
	step := p.Base << uint(attempt)
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(attempt)))
	// Map the hash onto [0.5, 1.5) in 1/1024 steps.
	frac := h.Sum64() % 1024
	return step/2 + step*time.Duration(frac)/1024
}
