package scanjournal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

// writeJournal writes a canonical healthy journal: one manifest and n
// target start/finish pairs. Returns its path.
func writeJournal(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scan.journal")
	w, err := OpenWriter(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var names []string
	for i := 0; i < n; i++ {
		names = append(names, target(i))
	}
	if err := w.Append(Record{Type: TypeManifest, Fingerprint: "fp", Targets: names}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Append(Record{Type: TypeStart, Name: target(i), Index: i}); err != nil {
			t.Fatal(err)
		}
		report := json.RawMessage(`{"Name":"` + target(i) + `"}`)
		if err := w.Append(Record{Type: TypeFinish, Name: target(i), Index: i, Report: report}); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func target(i int) string { return string(rune('a'+i)) + "-app" }

func TestJournalRoundTrip(t *testing.T) {
	path := writeJournal(t, 3)
	rec, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Corrupt != nil {
		t.Fatalf("healthy journal reported corrupt: %v", rec.Corrupt)
	}
	if len(rec.Records) != 7 {
		t.Fatalf("records = %d, want 7", len(rec.Records))
	}
	rp := Fold(rec)
	if rp.Corrupt != nil {
		t.Fatalf("healthy journal folded corrupt: %v", rp.Corrupt)
	}
	if rp.Fingerprint != "fp" || len(rp.Targets) != 3 {
		t.Errorf("manifest lost: fp=%q targets=%v", rp.Fingerprint, rp.Targets)
	}
	if len(rp.Finished) != 3 || rp.Salvaged != 7 {
		t.Errorf("finished=%d salvaged=%d, want 3/7", len(rp.Finished), rp.Salvaged)
	}
	for i := 0; i < 3; i++ {
		raw, ok := rp.Finished[TargetKey(i, target(i))]
		if !ok {
			t.Fatalf("missing finish for %s", target(i))
		}
		var rep struct{ Name string }
		if err := json.Unmarshal(raw, &rep); err != nil || rep.Name != target(i) {
			t.Errorf("report for %s round-tripped to %q (%v)", target(i), rep.Name, err)
		}
	}
}

// TestJournalCorruptionMatrix is the satellite corruption matrix: torn
// final record, flipped checksum byte, unknown format version, empty
// file, duplicate finish record. Each case must salvage every valid
// prefix record and surface exactly one corruption — never a panic,
// never an error, never a lost completed report.
func TestJournalCorruptionMatrix(t *testing.T) {
	const n = 3             // targets in the healthy journal
	const records = 1 + 2*n // manifest + start/finish pairs

	cases := []struct {
		name string
		// corrupt mutates a healthy journal file in place.
		corrupt      func(t *testing.T, path string)
		wantSalvaged int // records surviving Fold
		wantFinished int // finish records surviving Fold
	}{
		{
			name: "torn-final-record",
			corrupt: func(t *testing.T, path string) {
				data := readAll(t, path)
				// Chop mid-way through the last frame.
				if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantSalvaged: records - 1,
			wantFinished: n - 1,
		},
		{
			name: "flipped-checksum-byte",
			corrupt: func(t *testing.T, path string) {
				data := readAll(t, path)
				data[len(data)-1] ^= 0xff // last CRC byte of the final record
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantSalvaged: records - 1,
			wantFinished: n - 1,
		},
		{
			name: "unknown-format-version",
			corrupt: func(t *testing.T, path string) {
				// Append a well-framed record from "the future".
				payload, _ := json.Marshal(Record{V: FormatVersion + 7, Type: TypeFinish, Name: "zz"})
				appendBytes(t, path, Frame(payload))
			},
			wantSalvaged: records,
			wantFinished: n,
		},
		{
			name: "garbage-length-prefix",
			corrupt: func(t *testing.T, path string) {
				var frame [8]byte
				binary.BigEndian.PutUint32(frame[:4], 1<<30)
				appendBytes(t, path, frame[:])
			},
			wantSalvaged: records,
			wantFinished: n,
		},
		{
			name: "empty-file",
			corrupt: func(t *testing.T, path string) {
				if err := os.WriteFile(path, nil, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantSalvaged: 0,
			wantFinished: 0,
		},
		{
			name: "duplicate-finish-record",
			corrupt: func(t *testing.T, path string) {
				payload, _ := json.Marshal(Record{V: FormatVersion, Type: TypeFinish, Name: target(0),
					Report: json.RawMessage(`{"Name":"evil-twin"}`)})
				appendBytes(t, path, Frame(payload))
			},
			wantSalvaged: records,
			wantFinished: n,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeJournal(t, n)
			tc.corrupt(t, path)
			rec, err := Read(path)
			if err != nil {
				t.Fatalf("Read must salvage, got error %v", err)
			}
			rp := Fold(rec)
			if rp.Corrupt == nil {
				t.Fatal("corruption not surfaced")
			}
			if rp.Salvaged != tc.wantSalvaged {
				t.Errorf("salvaged = %d, want %d (corrupt: %v)", rp.Salvaged, tc.wantSalvaged, rp.Corrupt)
			}
			if len(rp.Finished) != tc.wantFinished {
				t.Errorf("finished = %d, want %d", len(rp.Finished), tc.wantFinished)
			}
			// The first finish always wins: a duplicate can never overwrite
			// a salvaged report.
			if raw, ok := rp.Finished[TargetKey(0, target(0))]; ok {
				var rep struct{ Name string }
				if json.Unmarshal(raw, &rep) == nil && rep.Name != target(0) {
					t.Errorf("duplicate finish overwrote the salvaged report: %q", rep.Name)
				}
			}
		})
	}
}

// TestFoldManifestEpochReset is the regression for the options-change
// resume bug: manifest(fpA)+finish(T) followed by
// manifest(fpB)+start/finish(T) — the documented same-file -journal/
// -resume idiom after an options change. Fold must open a new epoch at
// the fpB manifest: the fpA finish is discarded (its report answers a
// different configuration's question), the fpB finish is NOT a
// duplicate, and replay yields the fpB report.
func TestFoldManifestEpochReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	w, err := OpenWriter(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	records := []Record{
		{Type: TypeManifest, Fingerprint: "fpA", Targets: []string{"t"}},
		{Type: TypeStart, Name: "t", Index: 0},
		{Type: TypeFinish, Name: "t", Index: 0, Report: json.RawMessage(`{"Name":"t","fp":"A"}`)},
		{Type: TypeManifest, Fingerprint: "fpB", Targets: []string{"t"}},
		{Type: TypeStart, Name: "t", Index: 0},
		{Type: TypeFinish, Name: "t", Index: 0, Report: json.RawMessage(`{"Name":"t","fp":"B"}`)},
	}
	for _, r := range records {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	rec, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	rp := Fold(rec)
	if rp.Corrupt != nil {
		t.Fatalf("legitimate re-run after options change folded corrupt: %v", rp.Corrupt)
	}
	if rp.Salvaged != len(records) {
		t.Errorf("salvaged = %d, want %d", rp.Salvaged, len(records))
	}
	if rp.Fingerprint != "fpB" {
		t.Errorf("fingerprint = %q, want fpB", rp.Fingerprint)
	}
	if len(rp.Finished) != 1 {
		t.Fatalf("finished = %d, want 1 (the fpB epoch only)", len(rp.Finished))
	}
	var rep struct {
		Fp string `json:"fp"`
	}
	if err := json.Unmarshal(rp.Finished[TargetKey(0, "t")], &rep); err != nil || rep.Fp != "B" {
		t.Errorf("replayed the stale fpA report: fp=%q err=%v", rep.Fp, err)
	}

	// Same-fingerprint manifests do NOT reset the epoch: the same-file
	// resume idiom keeps replaying earlier finishes when options are
	// unchanged.
	sameFP := &Recovery{Records: []Record{
		{V: FormatVersion, Type: TypeManifest, Fingerprint: "fp", Targets: []string{"t", "u"}},
		{V: FormatVersion, Type: TypeFinish, Name: "t", Index: 0, Report: json.RawMessage(`{"Name":"t"}`)},
		{V: FormatVersion, Type: TypeManifest, Fingerprint: "fp", Targets: []string{"t", "u"}},
		{V: FormatVersion, Type: TypeFinish, Name: "u", Index: 1, Report: json.RawMessage(`{"Name":"u"}`)},
	}}
	rp2 := Fold(sameFP)
	if rp2.Corrupt != nil || len(rp2.Finished) != 2 {
		t.Errorf("same-fingerprint resume lost finishes: %d kept, corrupt=%v", len(rp2.Finished), rp2.Corrupt)
	}
}

// TestFoldDuplicateTargetNames: two batch slots sharing a name (distinct
// indexes) are distinct replay slots — both reports survive, and the
// second finish must not be misread as duplicate-finish corruption.
func TestFoldDuplicateTargetNames(t *testing.T) {
	rec := &Recovery{Records: []Record{
		{V: FormatVersion, Type: TypeManifest, Fingerprint: "fp", Targets: []string{"foo", "foo"}},
		{V: FormatVersion, Type: TypeStart, Name: "foo", Index: 0},
		{V: FormatVersion, Type: TypeFinish, Name: "foo", Index: 0, Report: json.RawMessage(`{"slot":0}`)},
		{V: FormatVersion, Type: TypeStart, Name: "foo", Index: 1},
		{V: FormatVersion, Type: TypeFinish, Name: "foo", Index: 1, Report: json.RawMessage(`{"slot":1}`)},
	}}
	rp := Fold(rec)
	if rp.Corrupt != nil {
		t.Fatalf("same-name targets misread as corruption: %v", rp.Corrupt)
	}
	if len(rp.Finished) != 2 {
		t.Fatalf("finished = %d, want 2", len(rp.Finished))
	}
	for i := 0; i < 2; i++ {
		var rep struct {
			Slot int `json:"slot"`
		}
		if err := json.Unmarshal(rp.Finished[TargetKey(i, "foo")], &rep); err != nil || rep.Slot != i {
			t.Errorf("slot %d replayed slot %d's report (err=%v)", i, rep.Slot, err)
		}
	}
	// A true duplicate — same index AND name — is still corruption.
	dup := &Recovery{Records: append(rec.Records,
		Record{V: FormatVersion, Type: TypeFinish, Name: "foo", Index: 1, Report: json.RawMessage(`{"slot":9}`)})}
	rpd := Fold(dup)
	if rpd.Corrupt == nil {
		t.Error("true duplicate finish (same slot) not surfaced as corruption")
	}
}

func TestJournalMissingLeadingManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	w, err := OpenWriter(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Type: TypeStart, Name: "x"}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	rec, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	rp := Fold(rec)
	if rp.Corrupt == nil || rp.Salvaged != 0 {
		t.Fatalf("start-before-manifest must be corruption: %+v", rp)
	}
}

// TestJournalCompaction: compacting a corrupt journal drops the bad tail
// atomically; the rewritten journal is healthy and re-appendable.
func TestJournalCompaction(t *testing.T) {
	path := writeJournal(t, 3)
	data := readAll(t, path)
	appendBytes(t, path, []byte{0xde, 0xad, 0xbe}) // torn garbage tail

	rec, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Corrupt == nil {
		t.Fatal("tail not detected")
	}
	if err := Compact(path, rec.Records); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, path); string(got) != string(data) {
		t.Error("compaction did not reproduce the healthy prefix byte-identically")
	}
	// Appends after compaction land on a clean boundary.
	w, err := OpenWriter(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Type: TypeFinish, Name: "late", Report: json.RawMessage(`{}`)}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	rec2, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Corrupt != nil || len(rec2.Records) != 8 {
		t.Fatalf("post-compaction journal: %d records, corrupt=%v", len(rec2.Records), rec2.Corrupt)
	}
}

func TestWriterFaultSeams(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	// Crash after 2 successful appends.
	w, err := OpenWriter(path, faultinject.FailAfter(faultinject.JournalWrite, "", 2))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 2; i++ {
		if err := w.Append(Record{Type: TypeManifest}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := w.Append(Record{Type: TypeStart, Name: "x"}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("append 3 = %v, want injected crash", err)
	}
	if w.Records() != 2 {
		t.Errorf("records = %d, want 2", w.Records())
	}
	rec, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 2 || rec.Corrupt != nil {
		t.Errorf("on-disk records = %d (corrupt=%v), want 2 clean", len(rec.Records), rec.Corrupt)
	}

	// The sync seam fires too.
	w2, err := OpenWriter(path, faultinject.ErrorOn(faultinject.JournalSync, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if err := w2.Append(Record{Type: TypeStart, Name: "y"}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("sync-crash append = %v, want injected", err)
	}
}

func TestUnframe(t *testing.T) {
	payload := []byte(`{"v":1}`)
	frame := Frame(payload)
	got, err := Unframe(frame)
	if err != nil || string(got) != string(payload) {
		t.Fatalf("round trip: %q, %v", got, err)
	}
	// Truncated, bit-flipped and mis-sized frames all fail closed.
	if _, err := Unframe(frame[:len(frame)-1]); err == nil {
		t.Error("truncated frame accepted")
	}
	bad := append([]byte(nil), frame...)
	bad[5] ^= 0x01
	if _, err := Unframe(bad); err == nil {
		t.Error("bit-flipped frame accepted")
	}
	long := append(append([]byte(nil), frame...), 'x')
	if _, err := Unframe(long); err == nil {
		t.Error("oversized frame accepted")
	}
	if _, err := Unframe(nil); err == nil {
		t.Error("empty frame accepted")
	}
	var huge [8]byte
	binary.BigEndian.PutUint32(huge[:4], 1<<31)
	if _, err := Unframe(huge[:]); err == nil {
		t.Error("garbage length accepted")
	}
}

func readAll(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
