package scanjournal

import (
	"bytes"
	"encoding/json"
	"testing"
)

// frames builds a journal byte stream from records (well-formed framing,
// arbitrary payloads).
func frames(recs ...Record) []byte {
	var buf bytes.Buffer
	for _, r := range recs {
		if r.V == 0 {
			r.V = FormatVersion
		}
		payload, _ := json.Marshal(r)
		buf.Write(Frame(payload))
	}
	return buf.Bytes()
}

// FuzzJournalFold drives the salvage path (Read semantics via readFrom,
// then Fold) over arbitrary journal bytes. The contract under fuzzing is
// the recovery invariant itself: never panic, salvage a valid prefix,
// and classify everything else — including the distributed-scanning
// lease records, which are only meaningful in coordination journals — as
// exactly one Corruption.
func FuzzJournalFold(f *testing.F) {
	// A healthy scan journal and the byte-level corruption classics.
	healthy := frames(
		Record{Type: TypeManifest, Fingerprint: "fp", Targets: []string{"a"}},
		Record{Type: TypeStart, Name: "a"},
		Record{Type: TypeFinish, Name: "a", Report: json.RawMessage(`{"Name":"a"}`)},
	)
	f.Add(healthy)
	f.Add(healthy[:len(healthy)-3])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00})

	// Lease-record seeds (satellite): coordination records leaking into a
	// scan journal must fold as corruption, never a panic.
	// 1. Well-formed lease-claim after a manifest.
	f.Add(frames(
		Record{Type: TypeManifest, Fingerprint: "fp", Targets: []string{"a"}},
		Record{Type: TypeLeaseClaim, Shard: 0, Worker: "w0", Token: 1},
	))
	// 2. Lease-renew with absurd negative shard/generation values.
	f.Add(frames(
		Record{Type: TypeLeaseRenew, Shard: -7, Worker: "w1", Token: -1, Gen: -9},
	))
	// 3. Fencing-token regression sequence: claim at t2, then a zombie's
	// stale renew at t1 and an unmatched release.
	f.Add(frames(
		Record{Type: TypeManifest, Fingerprint: "fp"},
		Record{Type: TypeLeaseClaim, Shard: 3, Worker: "w0", Token: 2},
		Record{Type: TypeLeaseRenew, Shard: 3, Worker: "zombie", Token: 1, Gen: 1},
		Record{Type: TypeLeaseRelease, Shard: 9, Worker: "w9", Token: 5},
	))
	// 4. Shard-finish with a torn report payload spliced in raw (valid
	// frame, JSON field holding garbage-ish content).
	f.Add(append(frames(
		Record{Type: TypeShardFinish, Shard: 1, Worker: "w2", Token: 3,
			Report: json.RawMessage(`{"half":`), ShardSize: 1 << 30},
	), 0x00, 0x00))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec := readFrom(bytes.NewReader(data))
		if rec == nil {
			t.Fatal("readFrom returned nil")
		}
		rp := Fold(rec)
		if rp == nil {
			t.Fatal("Fold returned nil")
		}
		if rp.Salvaged > len(rec.Records) {
			t.Fatalf("salvaged %d of %d records", rp.Salvaged, len(rec.Records))
		}
		// Lease records are coordination-only: any present in a scan
		// journal must stop the fold as corruption.
		for i, r := range rec.Records[:rp.Salvaged] {
			switch r.Type {
			case TypeLeaseClaim, TypeLeaseRenew, TypeLeaseRelease, TypeShardFinish:
				t.Fatalf("lease record %d (%s) folded into scan state", i, r.Type)
			}
		}
	})
}
