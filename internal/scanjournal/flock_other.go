//go:build !unix

package scanjournal

import "sync"

// Non-unix fallback: a process-local mutex per lock path. This excludes
// goroutines within one process (the daemon and its tests) but NOT
// separate processes — multi-process journal exclusivity on non-unix
// platforms is out of scope for this reproduction; the unix build uses
// a real kernel flock.
var (
	lockTableMu sync.Mutex
	lockTable   = map[string]*sync.Mutex{}
)

func lockFile(path string) (func(), error) {
	lockTableMu.Lock()
	mu, ok := lockTable[path]
	if !ok {
		mu = &sync.Mutex{}
		lockTable[path] = mu
	}
	lockTableMu.Unlock()
	mu.Lock()
	return mu.Unlock, nil
}
