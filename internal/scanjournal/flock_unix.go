//go:build unix

package scanjournal

import (
	"os"
	"syscall"
)

// lockFile takes an exclusive advisory flock on path, creating it if
// needed, and returns the unlock function. Auto-compaction rewrites the
// journal through a rename, so the lock must exclude any concurrent
// process (or in-process goroutine simulating one) from reading or
// rewriting the file mid-swap. flock is the crash-safe primitive for
// that: the kernel drops the lock the instant the holder dies (kill -9
// included), and each call opens its own file description, so two
// goroutines exclude each other exactly like two processes do — the
// same discipline as shardcoord's coord.lock.
func lockFile(path string) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		// Closing the descriptor releases the flock; the explicit unlock
		// just makes the intent visible.
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
