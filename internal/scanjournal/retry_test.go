package scanjournal

import (
	"errors"
	"testing"
	"time"
)

func TestRetryPolicyAbsorbsTransients(t *testing.T) {
	p := RetryPolicy{Attempts: 3}
	fails := 2
	retries, err := p.Do("finish:app", func() error {
		if fails > 0 {
			fails--
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("2 transients under 3 attempts must succeed: %v", err)
	}
	if retries != 2 {
		t.Errorf("retries = %d, want 2", retries)
	}
}

func TestRetryPolicyPersistentFaultStillFails(t *testing.T) {
	p := RetryPolicy{Attempts: 3}
	want := errors.New("persistent")
	calls := 0
	retries, err := p.Do("k", func() error { calls++; return want })
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want the persistent fault", err)
	}
	if calls != 3 || retries != 2 {
		t.Errorf("calls=%d retries=%d, want 3/2", calls, retries)
	}
}

func TestRetryPolicyZeroValue(t *testing.T) {
	var p RetryPolicy
	calls := 0
	retries, err := p.Do("k", func() error { calls++; return errors.New("x") })
	if err == nil || calls != 1 || retries != 0 {
		t.Errorf("zero policy: calls=%d retries=%d err=%v, want 1/0/non-nil", calls, retries, err)
	}
}

// TestRetryBackoffDeterministic: the jitter is a pure function of
// (key, attempt) — identical across runs, different across keys, so two
// workers contending on the same lock desynchronize reproducibly.
func TestRetryBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{Attempts: 3, Base: 2 * time.Millisecond}
	a := p.Backoff("worker-0", 0)
	if b := p.Backoff("worker-0", 0); a != b {
		t.Errorf("same key+attempt gave %v then %v", a, b)
	}
	if a < time.Millisecond || a >= 3*time.Millisecond {
		t.Errorf("attempt-0 backoff %v outside [Base/2, 3*Base/2)", a)
	}
	// Exponential growth: attempt 1's window is [Base, 3*Base).
	if c := p.Backoff("worker-0", 1); c < 2*time.Millisecond || c >= 6*time.Millisecond {
		t.Errorf("attempt-1 backoff %v outside [Base, 3*Base)", c)
	}
	if p.Backoff("worker-0", 0) == p.Backoff("worker-1", 0) &&
		p.Backoff("worker-0", 1) == p.Backoff("worker-1", 1) {
		t.Error("distinct keys produced identical jitter on both attempts")
	}
}
