package scanjournal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

func TestCacheKeyDiscrimination(t *testing.T) {
	base := map[string]string{"a.php": "<?php echo 1;", "b.php": "<?php echo 2;"}
	k0 := CacheKey(base, "fp")
	if k0 != CacheKey(map[string]string{"b.php": "<?php echo 2;", "a.php": "<?php echo 1;"}, "fp") {
		t.Error("key depends on map iteration order")
	}
	touched := map[string]string{"a.php": "<?php echo 1; ", "b.php": "<?php echo 2;"}
	if CacheKey(touched, "fp") == k0 {
		t.Error("touching a file did not change the key")
	}
	if CacheKey(base, "fp2") == k0 {
		t.Error("changing the options fingerprint did not change the key")
	}
	renamed := map[string]string{"c.php": "<?php echo 1;", "b.php": "<?php echo 2;"}
	if CacheKey(renamed, "fp") == k0 {
		t.Error("renaming a file did not change the key")
	}
	// Length framing: moving a byte across the name/content boundary must
	// not collide.
	if CacheKey(map[string]string{"ab": "c"}, "") == CacheKey(map[string]string{"a": "bc"}, "") {
		t.Error("structural collision across the name/content boundary")
	}
}

func TestCachePutGet(t *testing.T) {
	c, err := OpenCache(filepath.Join(t.TempDir(), "cache"), nil)
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey(map[string]string{"a.php": "x"}, "fp")
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	payload := []byte(`{"Name":"app"}`)
	if err := c.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok || string(got) != string(payload) {
		t.Fatalf("get = %q, %v", got, ok)
	}
}

func TestCacheCorruptEntryIsMissAndPruned(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	c, err := OpenCache(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey(map[string]string{"a.php": "x"}, "fp")
	if err := c.Put(key, []byte(`{"Name":"app"}`)); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte: checksum now fails.
	p := c.path(key)
	data := readAll(t, p)
	data[6] ^= 0x40
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
		t.Error("corrupt entry not pruned")
	}
	// Self-heal: the next Put/Get cycle works.
	if err := c.Put(key, []byte(`{"Name":"app"}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); !ok {
		t.Error("cache did not self-heal after pruning")
	}
}

func TestCacheReadFaultInjection(t *testing.T) {
	c, err := OpenCache(filepath.Join(t.TempDir(), "cache"),
		faultinject.ErrorOn(faultinject.CacheRead, ""))
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey(map[string]string{"a.php": "x"}, "fp")
	if err := c.Put(key, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Error("injected read fault must force a miss")
	}
}

func TestCacheVerify(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	c, err := OpenCache(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < 3; i++ {
		key := CacheKey(map[string]string{"a.php": fmt.Sprint(i)}, "fp")
		keys = append(keys, key)
		if err := c.Put(key, []byte(fmt.Sprintf(`{"Name":"app%d"}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt one entry, add one stray non-entry file (ignored).
	bad := c.path(keys[1])
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	ok, badN, err := c.Verify(false)
	if err != nil || ok != 2 || badN != 1 {
		t.Fatalf("verify(keep) = %d ok, %d bad, %v; want 2/1", ok, badN, err)
	}
	if _, err := os.Stat(bad); err != nil {
		t.Error("verify(keep) removed the entry")
	}
	ok, badN, err = c.Verify(true)
	if err != nil || ok != 2 || badN != 1 {
		t.Fatalf("verify(remove) = %d ok, %d bad, %v; want 2/1", ok, badN, err)
	}
	if _, err := os.Stat(bad); !errors.Is(err, os.ErrNotExist) {
		t.Error("verify(remove) kept the corrupt entry")
	}
	if ok, badN, err := c.Verify(false); err != nil || ok != 2 || badN != 0 {
		t.Fatalf("post-prune verify = %d ok, %d bad, %v; want 2/0", ok, badN, err)
	}
}

// TestAtomicWrite is the satellite regression: a failed write must leave
// the previous file byte-identical and litter no temp files.
func TestAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.prom")
	if err := AtomicWrite(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "old content\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// Injected mid-write failure: old file survives intact.
	boom := errors.New("disk on fire")
	err := AtomicWrite(path, func(w io.Writer) error {
		io.WriteString(w, "partial new conten")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	if got := string(readAll(t, path)); got != "old content\n" {
		t.Fatalf("old file clobbered: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("temp litter left behind: %v", entries)
	}

	// A successful rewrite replaces the content.
	if err := AtomicWrite(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "new content\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := string(readAll(t, path)); got != "new content\n" {
		t.Fatalf("rewrite = %q", got)
	}
}
