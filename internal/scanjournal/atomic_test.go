package scanjournal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// assertNoTempFiles is the satellite regression contract: after any
// failed atomic replacement — injected write fault, injected rename
// fault, or a panicking writer — the destination directory must hold no
// *.tmp-* droppings.
func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("orphaned temp file survived: %s", e.Name())
		}
	}
}

func TestAtomicWriteFaultMatrix(t *testing.T) {
	cases := []struct {
		name string
		hook faultinject.Hook
		// write is the payload callback; nil means "write ok".
		write func(io.Writer) error
		// wantInjected asserts the error is ErrInjected-wrapped.
		wantInjected bool
	}{
		{
			name:         "injected-write-fault",
			hook:         faultinject.ErrorOn(faultinject.AtomicWriteBody, ""),
			wantInjected: true,
		},
		{
			name:         "injected-rename-fault",
			hook:         faultinject.ErrorOn(faultinject.AtomicRename, ""),
			wantInjected: true,
		},
		{
			name:  "writer-callback-error",
			write: func(io.Writer) error { return errors.New("disk full") },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			dst := filepath.Join(dir, "out.json")
			if err := os.WriteFile(dst, []byte("previous"), 0o644); err != nil {
				t.Fatal(err)
			}
			write := tc.write
			if write == nil {
				write = func(w io.Writer) error { _, err := w.Write([]byte("next")); return err }
			}
			err := AtomicWriteHook(dst, tc.hook, write)
			if err == nil {
				t.Fatal("fault did not surface")
			}
			if tc.wantInjected && !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("err = %v, want injected", err)
			}
			if got := readAll(t, dst); string(got) != "previous" {
				t.Errorf("destination damaged by failed replacement: %q", got)
			}
			assertNoTempFiles(t, dir)
		})
	}
}

// TestAtomicWritePanicCleanup is the orphan-file regression proper: the
// old cleanup keyed on the named error value, which stays nil while a
// panic unwinds, so a panicking write callback stranded the temp file
// (and its open handle) on every injected crash.
func TestAtomicWritePanicCleanup(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "out.json")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		AtomicWrite(dst, func(w io.Writer) error {
			w.Write([]byte("partial"))
			panic("injected writer crash")
		})
	}()
	assertNoTempFiles(t, dir)
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Errorf("destination materialized despite panic: %v", err)
	}
}

// TestCompactFaultCleanup: a compaction that dies at either atomic seam
// leaves the journal byte-identical and strands nothing.
func TestCompactFaultCleanup(t *testing.T) {
	for _, point := range []faultinject.Point{faultinject.AtomicWriteBody, faultinject.AtomicRename} {
		t.Run(string(point), func(t *testing.T) {
			path := writeJournal(t, 2)
			before := readAll(t, path)
			rec, err := Read(path)
			if err != nil {
				t.Fatal(err)
			}
			err = CompactHook(path, faultinject.ErrorOn(point, ""), rec.Records)
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("err = %v, want injected", err)
			}
			if got := readAll(t, path); string(got) != string(before) {
				t.Error("failed compaction damaged the journal")
			}
			assertNoTempFiles(t, filepath.Dir(path))
			// The journal is still fully readable and foldable.
			rec2, err := Read(path)
			if err != nil || rec2.Corrupt != nil || len(rec2.Records) != len(rec.Records) {
				t.Fatalf("journal unreadable after failed compaction: %v / %+v", err, rec2)
			}
		})
	}
}
