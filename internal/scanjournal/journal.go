// Package scanjournal is the crash-safety layer of batch scanning: an
// append-only, per-record-checksummed journal of sweep progress, a
// salvaging recovery path, and a content-addressed result cache.
//
// A production corpus sweep (the paper's Section IV-B crawl screens
// thousands of plugins; the ROADMAP north star is millions) runs long
// enough that the scanner *process* dying mid-sweep — OOM kill, node
// preemption, SIGKILL, power loss — is routine, not exceptional. Without
// durable state a killed sweep loses every completed report and restarts
// from zero. The journal makes each completed per-app report durable the
// moment it exists, so a resumed sweep replays finished targets and
// re-scans only the in-flight ones.
//
// # On-disk format
//
// A journal is a sequence of length-prefixed, CRC-checksummed frames:
//
//	[4-byte big-endian payload length][payload][4-byte big-endian CRC32(payload)]
//
// The payload is the JSON encoding of a Record; every record carries the
// format version. Frames are appended with O_APPEND and fsynced one by
// one, so after a crash the file is a valid prefix of frames followed by
// at most one torn frame. Snapshot compaction (rewriting a journal
// without its corrupt tail) goes through an atomic temp-file + rename,
// so a crash during compaction leaves the original journal intact.
//
// # Salvage semantics
//
// Recovery NEVER aborts on corruption. Read walks frames from the start
// and salvages every valid prefix record; the first torn frame, checksum
// mismatch, oversized length, undecodable payload or unknown format
// version stops the walk and is reported as a single Corruption — the
// caller classifies it (the scanner maps it to a FailJournalCorrupt
// failure) and proceeds with what was salvaged.
package scanjournal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// FormatVersion is the journal (and cache entry) format version. Records
// carrying any other version are classified as corruption: a journal
// written by a different format is salvage-only territory, never a
// crash.
const FormatVersion = 1

// maxRecordSize bounds a single record frame. A length prefix beyond it
// is treated as corruption (a torn or garbage frame), not an allocation
// request.
const maxRecordSize = 64 << 20

// Record types.
const (
	// TypeManifest opens a sweep: the options fingerprint and the target
	// list. Written first; a resumed sweep appending to the same journal
	// writes another manifest, which opens a new epoch — the latest
	// fingerprint wins on replay, and a fingerprint change discards the
	// finishes recorded under the previous options (see Fold).
	TypeManifest = "manifest"
	// TypeStart marks one target as in-flight. A start without a matching
	// finish means the process died mid-scan: the target is re-scanned on
	// resume.
	TypeStart = "start"
	// TypeFinish carries one target's complete report. Finish records are
	// what resume replays.
	TypeFinish = "finish"

	// Coordination record types (internal/shardcoord). A coordination
	// journal shares the frame format, the CRC discipline and the epoch
	// semantics of a scan journal, but records shard leases instead of
	// per-target reports. These types are *only* valid in a coordination
	// journal: a scan-journal Fold that meets one classifies it as
	// corruption (unknown record type) and salvages the prefix — lease
	// records can never silently masquerade as scan results.

	// TypeLeaseClaim claims one shard for one worker under a fencing
	// token strictly greater than every token previously issued for that
	// shard. The token — a logical generation counter, never a wall-clock
	// timestamp — is what rejects a resurrected zombie's stale writes.
	TypeLeaseClaim = "lease-claim"
	// TypeLeaseRenew is a lease heartbeat: the holder bumps the lease's
	// renew generation. Other workers decide "expired" by observing an
	// unchanged (token, generation) pair across their own local
	// observation window — two processes never compare clocks.
	TypeLeaseRenew = "lease-renew"
	// TypeLeaseRelease returns an unfinished shard to the pool (graceful
	// drain): any worker may re-claim it immediately with a fresh token.
	TypeLeaseRelease = "lease-release"
	// TypeShardFinish marks one shard's scan complete and its
	// token-qualified shard journal authoritative for the merge. It is
	// only appended after a fencing-token check, so a zombie's stale
	// finish never lands.
	TypeShardFinish = "shard-finish"

	// Job-lifecycle record types (internal/scand). A daemon job journal
	// shares the frame format and CRC discipline of a scan journal but
	// records the scan-as-a-service job state machine
	// (submitted → running → finished/failed/cancelled) instead of batch
	// progress. Like the coordination types, these are *only* valid in a
	// job journal: a scan-journal Fold that meets one classifies it as
	// corruption and salvages the prefix.

	// TypeJobSubmit admits one job: ID, tenant, target name and the
	// content-addressed result key. The submit record is what makes an
	// accepted job durable — a daemon restart re-enqueues every submitted
	// job that has no terminal record.
	TypeJobSubmit = "job-submit"
	// TypeJobStart marks one job in flight. A start without a terminal
	// record means the daemon died mid-scan: the job is re-enqueued on
	// restart (the scan is deterministic, so the re-run reproduces the
	// same report). A non-terminal job may carry several start records —
	// one per crash-and-resume cycle.
	TypeJobStart = "job-start"
	// TypeJobFinish carries one job's complete canonical report plus its
	// cache key. Terminal records are self-contained (ID, tenant, name,
	// key, report), so journal compaction can drop the submit/start
	// records of finished jobs.
	TypeJobFinish = "job-finish"
	// TypeJobFail terminates a job with a typed error (watchdog fired,
	// job deadline exceeded, spool lost). Self-contained like a finish.
	TypeJobFail = "job-fail"
	// TypeJobCancel terminates a job on operator request. Self-contained
	// like a finish.
	TypeJobCancel = "job-cancel"
)

// Record is one journal entry.
type Record struct {
	// V is the format version (FormatVersion when written by this code).
	V int `json:"v"`
	// Type is one of TypeManifest, TypeStart, TypeFinish.
	Type string `json:"type"`
	// Name is the target name (start/finish records).
	Name string `json:"name,omitempty"`
	// Index is the target's position in the batch (start/finish records).
	Index int `json:"index,omitempty"`
	// Fingerprint is the scan-options fingerprint (manifest records).
	// Replay only trusts finish records written under the current
	// fingerprint: resuming with different budgets re-scans everything.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Targets lists the batch's target names in order (manifest records).
	Targets []string `json:"targets,omitempty"`
	// At is the wall-clock write time, for operators reading journals.
	// It is informational only: no protocol decision ever compares At
	// values across processes (lease expiry runs on logical generation
	// counters precisely so clock skew between workers cannot matter).
	At time.Time `json:"at,omitempty"`
	// Report is the target's full serialized AppReport (finish records).
	Report json.RawMessage `json:"report,omitempty"`

	// Coordination fields (lease-claim / lease-renew / lease-release /
	// shard-finish records; see internal/shardcoord).

	// Shard is the shard index the lease record applies to.
	Shard int `json:"shard,omitempty"`
	// Worker identifies the claiming/renewing worker, for operators.
	Worker string `json:"worker,omitempty"`
	// Token is the lease's fencing token: strictly increasing per shard
	// across claims. Writes carrying a stale token are rejected.
	Token int64 `json:"token,omitempty"`
	// Gen is the lease's renew generation, bumped by each heartbeat.
	Gen int64 `json:"gen,omitempty"`
	// ShardSize is the shard-plan chunk size (coordination manifests).
	ShardSize int `json:"shardSize,omitempty"`

	// Job-lifecycle fields (job-submit / job-start / job-finish /
	// job-fail / job-cancel records; see internal/scand).

	// Job is the daemon job ID the record applies to.
	Job string `json:"job,omitempty"`
	// Tenant is the submitting tenant (admission-control identity).
	Tenant string `json:"tenant,omitempty"`
	// Key is the job result's content address in the shared cache.
	Key string `json:"key,omitempty"`
	// Error is the terminal error text (job-fail records).
	Error string `json:"error,omitempty"`
}

// AutoCompact bounds a long-lived journal's growth. A batch sweep's
// journal is naturally bounded by its target list, but a daemon's job
// journal appends forever — without compaction an always-on service
// eventually fills the disk with lifecycle records of long-terminal
// jobs. When a Writer is opened with an AutoCompact policy, every
// Append that pushes the journal past MaxRecords or MaxBytes triggers
// an in-place compaction: the journal is salvage-read, Fold reduces the
// record set (dropping whatever the caller's semantics no longer need),
// and the reduced set is rewritten atomically (temp file + rename,
// crash-safe like every compaction) under a coord.lock-style flock so
// no concurrent process reads or rewrites the file mid-swap.
type AutoCompact struct {
	// MaxRecords triggers compaction when the journal holds more than
	// this many records. Zero disables the record-count trigger.
	MaxRecords int
	// MaxBytes triggers compaction when the journal file exceeds this
	// many bytes. Zero disables the size trigger.
	MaxBytes int64
	// Fold reduces a salvaged record set to the records still needed for
	// recovery. It MUST preserve replay semantics: folding and then
	// recovering must yield the same state as recovering the unfolded
	// journal. Nil keeps every record (compaction then only drops a
	// corrupt tail).
	Fold func(records []Record) []Record
	// LockPath is the exclusivity lock file guarding the rewrite.
	// Empty defaults to "<journal>.lock".
	LockPath string
}

// Writer appends records to a journal file. It is safe for concurrent
// use: scanner workers finish targets on many goroutines. Every Append
// is written as one frame and fsynced before returning, so a record that
// Append accepted survives a crash.
type Writer struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	hook    faultinject.Hook
	records int
	bytes   int64
	ac      *AutoCompact
	// floor is the record count below which the next auto-compaction is
	// skipped: if Fold cannot shrink the journal under the threshold,
	// compacting again after every single append would turn Append into
	// an O(n) rewrite. The floor demands real growth since the last
	// compaction before paying for another one.
	floor       int
	compactions int
}

// OpenWriter opens (creating if needed) a journal for appending. hook,
// when non-nil, fires at the faultinject.JournalWrite and
// faultinject.JournalSync seams of every Append — tests use it to kill
// the pipeline at each write boundary.
func OpenWriter(path string, hook faultinject.Hook) (*Writer, error) {
	return OpenWriterAutoCompact(path, hook, nil)
}

// OpenWriterAutoCompact is OpenWriter with an auto-compaction policy
// (see AutoCompact). With a non-nil policy the existing journal is
// salvage-read once at open to seed the record counter.
func OpenWriterAutoCompact(path string, hook faultinject.Hook, ac *AutoCompact) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("scanjournal: open %s: %w", path, err)
	}
	// The journal file's *existence* must be as durable as its records:
	// fsync the containing directory so a freshly created journal cannot
	// vanish after power loss (the per-record fsync only covers the
	// file's contents, not the directory entry pointing at it).
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, fmt.Errorf("scanjournal: sync dir of %s: %w", path, err)
	}
	w := &Writer{f: f, path: path, hook: hook, ac: ac}
	if ac != nil {
		if st, err := f.Stat(); err == nil {
			w.bytes = st.Size()
		}
		if rec, err := Read(path); err == nil {
			w.records = len(rec.Records)
		}
	}
	return w, nil
}

// Append frames, writes and fsyncs one record. On any error the journal
// must be considered crashed: the caller stops appending (recovery will
// salvage whatever made it to disk).
func (w *Writer) Append(rec Record) error {
	if rec.V == 0 {
		rec.V = FormatVersion
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("scanjournal: encode %s record: %w", rec.Type, err)
	}
	frame := Frame(payload)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.hook != nil {
		if err := w.hook(faultinject.JournalWrite, rec.Type+":"+rec.Name); err != nil {
			return fmt.Errorf("scanjournal: write %s record: %w", rec.Type, err)
		}
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("scanjournal: write %s record: %w", rec.Type, err)
	}
	if w.hook != nil {
		if err := w.hook(faultinject.JournalSync, rec.Type+":"+rec.Name); err != nil {
			return fmt.Errorf("scanjournal: sync %s record: %w", rec.Type, err)
		}
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("scanjournal: sync %s record: %w", rec.Type, err)
	}
	w.records++
	w.bytes += int64(len(frame))
	if w.ac != nil && w.overThresholdLocked() && w.records >= w.floor {
		if err := w.compactLocked(); err != nil {
			// A failed compaction leaves the on-disk journal either intact
			// or already swapped (the rename is atomic either way), but
			// this Writer's fd may point at a replaced inode. Treat it
			// like any other Append failure: the journal is crashed,
			// recovery salvages what made it to disk.
			return fmt.Errorf("scanjournal: auto-compact %s: %w", w.path, err)
		}
	}
	return nil
}

// overThresholdLocked reports whether the journal exceeds the
// auto-compaction policy's record-count or byte-size trigger.
func (w *Writer) overThresholdLocked() bool {
	if w.ac.MaxRecords > 0 && w.records > w.ac.MaxRecords {
		return true
	}
	if w.ac.MaxBytes > 0 && w.bytes > w.ac.MaxBytes {
		return true
	}
	return false
}

// compactLocked rewrites the journal in place under the policy's flock:
// salvage-read, fold, atomic rewrite, reopen. Caller holds w.mu.
func (w *Writer) compactLocked() error {
	lockPath := w.ac.LockPath
	if lockPath == "" {
		lockPath = w.path + ".lock"
	}
	unlock, err := lockFile(lockPath)
	if err != nil {
		return fmt.Errorf("lock %s: %w", lockPath, err)
	}
	defer unlock()
	rec, err := Read(w.path)
	if err != nil {
		return fmt.Errorf("read: %w", err)
	}
	folded := rec.Records
	if w.ac.Fold != nil {
		folded = w.ac.Fold(folded)
	}
	if err := CompactHook(w.path, w.hook, folded); err != nil {
		return err
	}
	// The rename replaced the inode our fd points at: appends through the
	// old fd would land in an unlinked file and vanish. Reopen.
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	w.f.Close()
	w.f = f
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("stat: %w", err)
	}
	w.bytes = st.Size()
	w.records = len(folded)
	// Demand geometric growth before the next compaction: a fold that
	// cannot shrink below the threshold must not turn every Append into
	// an O(n) rewrite. Requiring the journal to grow by half its folded
	// size keeps total rewrite work linear in records ever appended.
	w.floor = len(folded) + max(1, w.ac.MaxRecords/2, len(folded)/2)
	w.compactions++
	return nil
}

// Records reports how many records this Writer has successfully appended.
func (w *Writer) Records() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Compactions reports how many auto-compactions this Writer has run.
func (w *Writer) Compactions() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.compactions
}

// Close closes the journal file.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// Frame wraps a payload in the on-disk frame format:
// length prefix, payload, CRC32.
func Frame(payload []byte) []byte {
	frame := make([]byte, 4+len(payload)+4)
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	binary.BigEndian.PutUint32(frame[4+len(payload):], crc32.ChecksumIEEE(payload))
	return frame
}

// Unframe validates one complete frame and returns its payload. It is
// the cache's entry validator; journals use the incremental reader.
func Unframe(data []byte) ([]byte, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("scanjournal: frame truncated (%d bytes)", len(data))
	}
	n := binary.BigEndian.Uint32(data)
	if n > maxRecordSize || int(n) != len(data)-8 {
		return nil, fmt.Errorf("scanjournal: frame length %d does not match %d payload bytes", n, len(data)-8)
	}
	payload := data[4 : 4+n]
	want := binary.BigEndian.Uint32(data[4+n:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("scanjournal: checksum mismatch (got %08x, want %08x)", got, want)
	}
	return payload, nil
}

// Corruption describes the first invalid region of a journal. Everything
// before it was salvaged; everything from Offset on is untrusted.
type Corruption struct {
	// Offset is the byte offset of the first bad frame.
	Offset int64
	// Record is the index of the first bad record (== number salvaged).
	Record int
	// Reason is a human-readable classification: torn record, checksum
	// mismatch, unknown format version, undecodable payload, …
	Reason string
}

func (c *Corruption) String() string {
	return fmt.Sprintf("record %d at byte %d: %s", c.Record, c.Offset, c.Reason)
}

// Recovery is the salvageable content of a journal.
type Recovery struct {
	// Records are the valid prefix records, in write order.
	Records []Record
	// Corrupt is non-nil when the walk stopped at an invalid frame.
	Corrupt *Corruption
}

// Read salvages a journal. It returns an error only when the file cannot
// be opened (use os.IsNotExist to treat a missing journal as a fresh
// sweep); corruption of any kind — torn tail, truncated frame, bad
// checksum, garbage length, undecodable JSON, version skew — never
// fails the call. The valid prefix is salvaged and the first bad frame
// is described in Recovery.Corrupt.
func Read(path string) (*Recovery, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readFrom(f), nil
}

func readFrom(r io.Reader) *Recovery {
	rec := &Recovery{}
	var offset int64
	var lenBuf [4]byte
	for {
		n, err := io.ReadFull(r, lenBuf[:])
		if err == io.EOF && n == 0 {
			return rec // clean end at a frame boundary
		}
		if err != nil {
			rec.Corrupt = corruptAt(rec, offset, "torn record: truncated length prefix")
			return rec
		}
		size := binary.BigEndian.Uint32(lenBuf[:])
		if size > maxRecordSize {
			rec.Corrupt = corruptAt(rec, offset, fmt.Sprintf("garbage length prefix %d", size))
			return rec
		}
		buf := make([]byte, int(size)+4)
		if _, err := io.ReadFull(r, buf); err != nil {
			rec.Corrupt = corruptAt(rec, offset, "torn record: truncated payload")
			return rec
		}
		payload := buf[:size]
		want := binary.BigEndian.Uint32(buf[size:])
		if got := crc32.ChecksumIEEE(payload); got != want {
			rec.Corrupt = corruptAt(rec, offset, fmt.Sprintf("checksum mismatch (got %08x, want %08x)", got, want))
			return rec
		}
		var r0 Record
		if err := json.Unmarshal(payload, &r0); err != nil {
			rec.Corrupt = corruptAt(rec, offset, "undecodable record payload: "+err.Error())
			return rec
		}
		if r0.V != FormatVersion {
			rec.Corrupt = corruptAt(rec, offset, fmt.Sprintf("unknown format version %d (want %d)", r0.V, FormatVersion))
			return rec
		}
		rec.Records = append(rec.Records, r0)
		offset += int64(len(lenBuf)) + int64(len(buf))
	}
}

func corruptAt(rec *Recovery, offset int64, reason string) *Corruption {
	return &Corruption{Offset: offset, Record: len(rec.Records), Reason: reason}
}

// Compact atomically rewrites a journal to contain exactly the given
// records — dropping a corrupt tail before new appends land after
// garbage. The rewrite goes through AtomicWrite, so a crash mid-compact
// leaves the original journal untouched.
func Compact(path string, records []Record) error {
	return CompactHook(path, nil, records)
}

// CompactHook is Compact with the AtomicWriteHook fault-injection seams
// threaded through: hook, when non-nil, fires at
// faultinject.AtomicWriteBody and faultinject.AtomicRename with the
// journal path as detail. The crash-matrix tests use it to prove a
// compaction that dies mid-rewrite neither damages the journal nor
// strands a temp file.
func CompactHook(path string, hook faultinject.Hook, records []Record) error {
	return AtomicWriteHook(path, hook, func(w io.Writer) error {
		for _, rec := range records {
			if rec.V == 0 {
				rec.V = FormatVersion
			}
			payload, err := json.Marshal(rec)
			if err != nil {
				return err
			}
			if _, err := w.Write(Frame(payload)); err != nil {
				return err
			}
		}
		return nil
	})
}

// TargetKey is the identity of one batch slot in Replay's Finished and
// Started maps: (index, name), not name alone. Two targets that happen
// to share a name (easy when names are derived from file base names —
// a/foo.php and b/foo.php both load as "foo") occupy distinct batch
// slots, so they must neither replay each other's report nor trip the
// duplicate-finish corruption check.
func TargetKey(index int, name string) string {
	return fmt.Sprintf("%d\x00%s", index, name)
}

// Replay is the resume state folded out of salvaged journal records.
type Replay struct {
	// Fingerprint is the latest manifest's options fingerprint.
	Fingerprint string
	// Targets is the latest manifest's target list.
	Targets []string
	// Finished maps TargetKey(index, name) → the slot's serialized
	// report. Within one manifest epoch the first finish record wins; a
	// manifest whose fingerprint differs from the previous one opens a
	// fresh epoch (see Fold). Slots present here are replayed, not
	// re-scanned.
	Finished map[string]json.RawMessage
	// Started marks slots (TargetKey-keyed) with a start record,
	// finished or not. A started-but-unfinished slot was in flight at
	// the crash.
	Started map[string]bool
	// Salvaged is the number of records folded in.
	Salvaged int
	// Corrupt is non-nil when the journal was corrupt — either at the
	// byte level (carried over from Recovery) or semantically (empty
	// journal, missing leading manifest, duplicate finish record). All
	// records before the corruption are salvaged.
	Corrupt *Corruption
}

// Fold validates and folds a Recovery into resume state. Semantic
// corruption (no records at all, a first record that is not a manifest,
// or a duplicate finish for the same batch slot within one manifest
// epoch) stops the fold at the offending record, salvaging everything
// before it — mirroring the byte-level prefix-salvage semantics.
//
// Manifest records delimit epochs: a resumed sweep appending to the
// same journal writes a fresh manifest, and when its fingerprint
// differs from the previous manifest's the accumulated Finished/Started
// state is discarded. Finishes recorded under the old options are not
// this configuration's reports — replaying them would silently answer
// the wrong question — and a legitimate re-finish of the same slot
// under the new options must not be misread as duplicate-finish
// corruption. Same-fingerprint manifests keep accumulating, so the
// documented same-file journal/resume idiom replays earlier epochs'
// finishes as long as the options are unchanged.
func Fold(rec *Recovery) *Replay {
	rp := &Replay{
		Finished: map[string]json.RawMessage{},
		Started:  map[string]bool{},
		Corrupt:  rec.Corrupt,
	}
	if len(rec.Records) == 0 && rp.Corrupt == nil {
		rp.Corrupt = &Corruption{Reason: "empty journal: no manifest record"}
		return rp
	}
	for i, r := range rec.Records {
		if i == 0 && r.Type != TypeManifest {
			rp.Corrupt = &Corruption{Record: 0, Reason: fmt.Sprintf("journal does not begin with a manifest record (got %q)", r.Type)}
			return rp
		}
		switch r.Type {
		case TypeManifest:
			if i > 0 && r.Fingerprint != rp.Fingerprint {
				// New epoch under different options: drop state folded
				// under the previous fingerprint (see the Fold doc).
				rp.Finished = map[string]json.RawMessage{}
				rp.Started = map[string]bool{}
			}
			rp.Fingerprint = r.Fingerprint
			rp.Targets = r.Targets
		case TypeStart:
			rp.Started[TargetKey(r.Index, r.Name)] = true
		case TypeFinish:
			key := TargetKey(r.Index, r.Name)
			if _, dup := rp.Finished[key]; dup {
				// Keep the first finish; everything from the duplicate on
				// is untrusted.
				rp.Corrupt = &Corruption{Record: i, Reason: fmt.Sprintf("duplicate finish record for target %d %q", r.Index, r.Name)}
				return rp
			}
			rp.Started[key] = true
			rp.Finished[key] = r.Report
		case TypeLeaseClaim, TypeLeaseRenew, TypeLeaseRelease, TypeShardFinish,
			TypeJobSubmit, TypeJobStart, TypeJobFinish, TypeJobFail, TypeJobCancel:
			// Coordination and job-lifecycle records are only valid in
			// their own journals; one here means a process appended to the
			// wrong file. Everything from it on is untrusted.
			rp.Corrupt = &Corruption{Record: i, Reason: fmt.Sprintf("foreign record %q in a scan journal", r.Type)}
			return rp
		default:
			rp.Corrupt = &Corruption{Record: i, Reason: fmt.Sprintf("unknown record type %q", r.Type)}
			return rp
		}
		rp.Salvaged++
	}
	return rp
}
