// Content-addressed result cache: unchanged targets are skipped on
// re-runs with byte-identical reports.
//
// The cache key is a SHA-256 over the target's sorted file contents, the
// scan-options fingerprint (budgets, retries, extensions, …) and the
// cache format version — so touching one file invalidates exactly that
// target, and changing any option that could alter a report invalidates
// everything. Entries are stored as checksummed frames written
// atomically; a corrupt, truncated or unreadable entry is a cache miss
// (and is pruned best-effort), never an error — the cache is an
// optimization, and the scan is always the fallback.
package scanjournal

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/faultinject"
)

// CacheKey derives the content address of one target: SHA-256 over the
// format version, the options fingerprint and the sorted (name, content)
// pairs, with unambiguous length framing so no two distinct inputs
// collide structurally.
func CacheKey(sources map[string]string, fingerprint string) string {
	h := sha256.New()
	var lenBuf [8]byte
	writePart := func(s string) {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:])
		io.WriteString(h, s)
	}
	writePart(fmt.Sprintf("uchecker-cache-v%d", FormatVersion))
	writePart(fingerprint)
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		writePart(n)
		writePart(sources[n])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Cache is a directory of framed report blobs keyed by content address.
// Safe for concurrent use: entries are immutable once renamed into
// place, and concurrent Puts of the same key write identical bytes.
type Cache struct {
	dir  string
	hook faultinject.Hook
}

// entryExt marks cache entry files, so Verify can ignore strays.
const entryExt = ".rep"

// OpenCache opens (creating if needed) a cache directory. hook, when
// non-nil, fires at the faultinject.CacheRead seam of every Get.
func OpenCache(dir string, hook faultinject.Hook) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("scanjournal: cache dir %s: %w", dir, err)
	}
	return &Cache{dir: dir, hook: hook}, nil
}

func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+entryExt) }

// Get returns the cached payload for key, or ok=false on any miss —
// including a corrupt or unreadable entry, which is pruned best-effort
// so the follow-up Put self-heals the cache.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c.hook != nil {
		if err := c.hook(faultinject.CacheRead, key); err != nil {
			return nil, false
		}
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	payload, err := Unframe(data)
	if err != nil {
		os.Remove(c.path(key)) // corrupt entry: prune so Put self-heals
		return nil, false
	}
	return payload, true
}

// Put stores a payload under key, atomically. Errors are returned for
// accounting but a failed Put only costs a future re-scan. The cache's
// fault hook fires at the AtomicWriteBody/AtomicRename seams, so a Put
// killed mid-replacement is a crash-matrix boundary like any other.
func (c *Cache) Put(key string, payload []byte) error {
	frame := Frame(payload)
	return AtomicWriteHook(c.path(key), c.hook, func(w io.Writer) error {
		_, err := w.Write(frame)
		return err
	})
}

// Verify walks every cache entry and validates its frame (length and
// checksum) and that its file name matches a plausible content address.
// With remove set, invalid entries are deleted. It returns the counts of
// valid and invalid entries.
func (c *Cache) Verify(remove bool) (ok, bad int, err error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, 0, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), entryExt) {
			continue
		}
		p := filepath.Join(c.dir, e.Name())
		valid := false
		if key := strings.TrimSuffix(e.Name(), entryExt); len(key) == sha256.Size*2 {
			if data, rerr := os.ReadFile(p); rerr == nil {
				if _, uerr := Unframe(data); uerr == nil {
					valid = true
				}
			}
		}
		if valid {
			ok++
			continue
		}
		bad++
		if remove {
			os.Remove(p)
		}
	}
	return ok, bad, nil
}
