package scanjournal

import (
	"fmt"
	"path/filepath"
	"testing"
)

// jobRec builds a minimal job-lifecycle record for compaction tests.
func jobRec(typ, job string) Record {
	return Record{Type: typ, Job: job, Tenant: "t", Name: job}
}

// dropTerminalLifecycle is a daemon-style fold: keep every record except
// the submit/start records of jobs that already have a terminal record.
// Terminal records are self-contained, so recovery state is preserved.
func dropTerminalLifecycle(records []Record) []Record {
	terminal := map[string]bool{}
	for _, r := range records {
		switch r.Type {
		case TypeJobFinish, TypeJobFail, TypeJobCancel:
			terminal[r.Job] = true
		}
	}
	var out []Record
	for _, r := range records {
		if (r.Type == TypeJobSubmit || r.Type == TypeJobStart) && terminal[r.Job] {
			continue
		}
		out = append(out, r)
	}
	return out
}

// TestAutoCompactRecordThreshold proves the record-count trigger fires,
// the fold is applied, and the journal stays bounded while no
// lifecycle state is lost: every job present before compaction is
// recoverable afterwards with the same terminal status.
func TestAutoCompactRecordThreshold(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.journal")
	w, err := OpenWriterAutoCompact(path, nil, &AutoCompact{
		MaxRecords: 10,
		Fold:       dropTerminalLifecycle,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// 20 jobs, each submit+start+finish: 60 appends against a 10-record
	// threshold. Compaction must fire (more than once) and drop the
	// submit/start of terminal jobs.
	for i := 0; i < 20; i++ {
		job := fmt.Sprintf("job-%02d", i)
		for _, typ := range []string{TypeJobSubmit, TypeJobStart, TypeJobFinish} {
			if err := w.Append(jobRec(typ, job)); err != nil {
				t.Fatalf("append %s %s: %v", typ, job, err)
			}
		}
	}
	if w.Compactions() == 0 {
		t.Fatal("no auto-compaction fired over 60 appends with MaxRecords=10")
	}

	rec, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Corrupt != nil {
		t.Fatalf("journal corrupt after auto-compaction: %v", rec.Corrupt)
	}
	// No job lost, no terminal record dropped, each at most once.
	finishes := map[string]int{}
	for _, r := range rec.Records {
		if r.Type == TypeJobFinish {
			finishes[r.Job]++
		}
	}
	for i := 0; i < 20; i++ {
		job := fmt.Sprintf("job-%02d", i)
		if finishes[job] != 1 {
			t.Fatalf("job %s: %d finish records after compaction, want 1", job, finishes[job])
		}
	}
	// The journal actually shrank: 60 raw appends folded well below.
	if len(rec.Records) >= 60 {
		t.Fatalf("journal holds %d records, compaction did not bound growth", len(rec.Records))
	}
}

// TestAutoCompactPreservesPendingJobs is the mid-stream loss regression:
// compaction in the middle of active lifecycles must keep the
// submit/start records of every job that has no terminal record yet —
// dropping one would silently lose a queued or in-flight job across a
// daemon restart.
func TestAutoCompactPreservesPendingJobs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.journal")
	w, err := OpenWriterAutoCompact(path, nil, &AutoCompact{
		MaxRecords: 8,
		Fold:       dropTerminalLifecycle,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// Interleave: pending jobs submitted early, terminal jobs churning
	// past the threshold around them.
	for i := 0; i < 4; i++ {
		if err := w.Append(jobRec(TypeJobSubmit, fmt.Sprintf("pending-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Append(jobRec(TypeJobStart, "pending-0")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		job := fmt.Sprintf("done-%02d", i)
		for _, typ := range []string{TypeJobSubmit, TypeJobStart, TypeJobFinish} {
			if err := w.Append(jobRec(typ, job)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if w.Compactions() == 0 {
		t.Fatal("no auto-compaction fired")
	}

	rec, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	submits := map[string]bool{}
	starts := map[string]bool{}
	for _, r := range rec.Records {
		switch r.Type {
		case TypeJobSubmit:
			submits[r.Job] = true
		case TypeJobStart:
			starts[r.Job] = true
		}
	}
	for i := 0; i < 4; i++ {
		job := fmt.Sprintf("pending-%d", i)
		if !submits[job] {
			t.Fatalf("pending job %s lost its submit record across compaction", job)
		}
	}
	if !starts["pending-0"] {
		t.Fatal("in-flight job pending-0 lost its start record across compaction")
	}
	// Jobs terminal at compaction time had their submit folded away;
	// jobs finishing after the last compaction legitimately keep theirs
	// until the next one. The earliest done jobs must be folded.
	if submits["done-00"] || submits["done-01"] {
		t.Fatal("early terminal jobs kept their submit records — fold not applied")
	}
}

// TestAutoCompactByteThreshold proves the size trigger works on its own.
func TestAutoCompactByteThreshold(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.journal")
	w, err := OpenWriterAutoCompact(path, nil, &AutoCompact{
		MaxBytes: 2048,
		Fold:     dropTerminalLifecycle,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 40; i++ {
		job := fmt.Sprintf("job-%02d", i)
		for _, typ := range []string{TypeJobSubmit, TypeJobFinish} {
			if err := w.Append(jobRec(typ, job)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if w.Compactions() == 0 {
		t.Fatal("no auto-compaction fired on byte threshold")
	}
}

// TestAutoCompactReopenSeedsCounter proves a reopened writer picks up
// the existing record count, so the threshold applies across restarts,
// and that a writer with no policy never compacts.
func TestAutoCompactReopenSeedsCounter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.journal")
	w, err := OpenWriter(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		job := fmt.Sprintf("job-%02d", i)
		for _, typ := range []string{TypeJobSubmit, TypeJobFinish} {
			if err := w.Append(jobRec(typ, job)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if w.Compactions() != 0 {
		t.Fatal("writer without a policy compacted")
	}
	w.Close()

	// Reopen with a policy far below the existing 60 records: the very
	// first append must trigger a compaction.
	w2, err := OpenWriterAutoCompact(path, nil, &AutoCompact{
		MaxRecords: 10,
		Fold:       dropTerminalLifecycle,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if err := w2.Append(jobRec(TypeJobSubmit, "late")); err != nil {
		t.Fatal(err)
	}
	if w2.Compactions() != 1 {
		t.Fatalf("compactions after reopen append = %d, want 1", w2.Compactions())
	}
	rec, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	submits := map[string]bool{}
	for _, r := range rec.Records {
		if r.Type == TypeJobSubmit {
			submits[r.Job] = true
		}
	}
	if !submits["late"] {
		t.Fatal("append that triggered the compaction was itself lost")
	}
}

// TestAutoCompactThrashGuard proves that when the fold cannot shrink the
// journal below the threshold (all jobs pending), Append does not
// degenerate into compacting on every call.
func TestAutoCompactThrashGuard(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.journal")
	w, err := OpenWriterAutoCompact(path, nil, &AutoCompact{
		MaxRecords: 5,
		Fold:       dropTerminalLifecycle,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// 20 pending submits: nothing is foldable, so after the first
	// compaction the floor must suppress per-append rewrites.
	for i := 0; i < 20; i++ {
		if err := w.Append(jobRec(TypeJobSubmit, fmt.Sprintf("pending-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if c := w.Compactions(); c > 6 {
		t.Fatalf("%d compactions over 20 unfoldable appends — thrash guard broken", c)
	}
	rec, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 20 {
		t.Fatalf("salvaged %d records, want all 20 pending submits", len(rec.Records))
	}
}
