// Atomic file replacement: the shared write-side primitive behind
// journal compaction, cache entries and the CLI's -trace/-metrics
// exports. A crash (or a failing writer) anywhere before the final
// rename leaves the previous file byte-identical; readers never observe
// a partially written file.
package scanjournal

import (
	"io"
	"os"
	"path/filepath"
)

// AtomicWrite writes a file via temp-file + fsync + rename. The write
// callback streams the content; if it (or any syscall) fails, the
// temporary file is removed and the destination — if it existed — is
// left untouched. The temp file is created in the destination's
// directory so the rename never crosses filesystems.
func AtomicWrite(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return nil
}
