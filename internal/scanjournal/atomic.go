// Atomic file replacement: the shared write-side primitive behind
// journal compaction, cache entries and the CLI's -trace/-metrics
// exports. A crash (or a failing writer) anywhere before the final
// rename leaves the previous file byte-identical; readers never observe
// a partially written file.
package scanjournal

import (
	"io"
	"os"
	"path/filepath"
)

// AtomicWrite writes a file via temp-file + fsync + rename + directory
// fsync. The write callback streams the content; if it (or any syscall)
// fails, the temporary file is removed and the destination — if it
// existed — is left untouched. The temp file is created in the
// destination's directory so the rename never crosses filesystems, and
// the directory itself is fsynced after the rename so the *replacement*
// is as durable as the bytes: without it, power loss after a journal
// compaction could revert the file to its corrupt pre-compaction
// content, and a freshly written cache entry could silently vanish.
func AtomicWrite(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name()) // no-op once the rename has happened
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if err = syncDir(dir); err != nil {
		return err
	}
	return nil
}

// syncDir fsyncs a directory, making renames into it and files created
// inside it durable. Crash-safety requires it after every rename (the
// rename itself lives in the directory, not the file) and after
// creating a brand-new journal file.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}
