// Atomic file replacement: the shared write-side primitive behind
// journal compaction, cache entries, merged-report folding and the CLI's
// -trace/-metrics exports. A crash (or a failing writer) anywhere before
// the final rename leaves the previous file byte-identical; readers
// never observe a partially written file — and a failure never strands a
// temporary file next to the destination.
package scanjournal

import (
	"io"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
)

// AtomicWrite writes a file via temp-file + fsync + rename + directory
// fsync. The write callback streams the content; if it (or any syscall)
// fails — or panics — the temporary file is removed and the destination,
// if it existed, is left untouched. The temp file is created in the
// destination's directory so the rename never crosses filesystems, and
// the directory itself is fsynced after the rename so the *replacement*
// is as durable as the bytes: without it, power loss after a journal
// compaction could revert the file to its corrupt pre-compaction
// content, and a freshly written cache entry could silently vanish.
func AtomicWrite(path string, write func(io.Writer) error) error {
	return AtomicWriteHook(path, nil, write)
}

// AtomicWriteHook is AtomicWrite with fault-injection seams: hook, when
// non-nil, fires at faultinject.AtomicWriteBody (after the temp file is
// created, before the payload is streamed) and faultinject.AtomicRename
// (before the rename). Both error paths must honor the same cleanup
// contract the regression suite enforces: no temp file survives a failed
// replacement.
func AtomicWriteHook(path string, hook faultinject.Hook, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	// Clean up on EVERY non-success exit, panics included. The original
	// cleanup keyed on the named error alone, so a panicking write
	// callback (fault-injected crashes routinely panic) unwound straight
	// past it, stranding an orphaned *.tmp-* file — and its open handle —
	// next to the destination on every injected crash.
	done := false
	defer func() {
		if done && err == nil {
			return
		}
		tmp.Close()
		os.Remove(tmp.Name()) // no-op once the rename has happened
	}()
	if hook != nil {
		if err = hook(faultinject.AtomicWriteBody, path); err != nil {
			return err
		}
	}
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if hook != nil {
		if err = hook(faultinject.AtomicRename, path); err != nil {
			return err
		}
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	done = true
	if err = syncDir(dir); err != nil {
		return err
	}
	return nil
}

// syncDir fsyncs a directory, making renames into it and files created
// inside it durable. Crash-safety requires it after every rename (the
// rename itself lives in the directory, not the file) and after
// creating a brand-new journal file.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}
