package scand

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestTokenBucket(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := newTokenBucket(TenantPolicy{RatePerSec: 2, Burst: 3}, t0)
	for i := 0; i < 3; i++ {
		if ok, _ := b.take(t0); !ok {
			t.Fatalf("burst take %d refused", i)
		}
	}
	ok, wait := b.take(t0)
	if ok {
		t.Fatal("take beyond burst admitted")
	}
	if wait != 500*time.Millisecond {
		t.Fatalf("wait = %v, want 500ms (1 token at 2/s)", wait)
	}
	// Refill: 1s later two tokens are back.
	t1 := t0.Add(time.Second)
	if ok, _ := b.take(t1); !ok {
		t.Fatal("refilled token refused")
	}
	if ok, _ := b.take(t1); !ok {
		t.Fatal("second refilled token refused")
	}
	if ok, _ := b.take(t1); ok {
		t.Fatal("third take admitted with only 2 tokens refilled")
	}
	// A clock that goes backwards must not mint tokens.
	bb := newTokenBucket(TenantPolicy{RatePerSec: 1, Burst: 1}, t0)
	bb.take(t0)
	if ok, _ := bb.take(t0.Add(-time.Hour)); ok {
		t.Fatal("backwards clock minted a token")
	}
	// Rate 0 = unlimited.
	ub := newTokenBucket(TenantPolicy{}, t0)
	for i := 0; i < 100; i++ {
		if ok, _ := ub.take(t0); !ok {
			t.Fatal("unlimited bucket refused")
		}
	}
}

func TestFairQueueStrideOrder(t *testing.T) {
	q := newFairQueue()
	for i := 1; i <= 3; i++ {
		q.push("alpha", 1, fmt.Sprintf("a%d", i))
	}
	for i := 1; i <= 6; i++ {
		q.push("beta", 2, fmt.Sprintf("b%d", i))
	}
	// Stride scheduling with weights 1:2, ties broken lexicographically:
	// the dispatch order is a pure function of queue state.
	want := []string{"a1", "b1", "b2", "a2", "b3", "b4", "a3", "b5", "b6"}
	var got []string
	for {
		_, id, ok := q.pop()
		if !ok {
			break
		}
		got = append(got, id)
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("pop order = %v, want %v", got, want)
	}
}

func TestFairQueueNoBankedCredit(t *testing.T) {
	q := newFairQueue()
	// alpha is served many times, advancing virtual time.
	for i := 0; i < 8; i++ {
		q.push("alpha", 1, fmt.Sprintf("a%d", i))
	}
	for i := 0; i < 4; i++ {
		q.pop()
	}
	// beta arrives late: it joins at the CURRENT virtual time, so it
	// alternates with alpha instead of draining its backlog first.
	q.push("beta", 1, "b0")
	q.push("beta", 1, "b1")
	var got []string
	for i := 0; i < 4; i++ {
		_, id, _ := q.pop()
		got = append(got, id)
	}
	joined := strings.Join(got, ",")
	if joined != "a4,b0,a5,b1" && joined != "b0,a4,b1,a5" {
		t.Fatalf("late tenant order = %v (banked credit?)", got)
	}
}

func TestFairQueueRemoveAndDepths(t *testing.T) {
	q := newFairQueue()
	q.push("alpha", 1, "a1")
	q.push("alpha", 1, "a2")
	q.push("beta", 1, "b1")
	if !q.remove("alpha", "a1") {
		t.Fatal("remove a1 failed")
	}
	if q.remove("alpha", "a1") {
		t.Fatal("double remove succeeded")
	}
	if q.remove("gamma", "x") {
		t.Fatal("remove from unknown tenant succeeded")
	}
	if q.depth("alpha") != 1 || q.depth("beta") != 1 || q.depth("gamma") != 0 {
		t.Fatalf("depths: alpha=%d beta=%d gamma=%d", q.depth("alpha"), q.depth("beta"), q.depth("gamma"))
	}
	d := q.depths()
	if len(d) != 2 || d["alpha"] != 1 || d["beta"] != 1 {
		t.Fatalf("depths() = %v", d)
	}
}
