package scand

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/scanjournal"
	"repro/internal/uchecker"
)

// simApps returns a deterministic corpus slice: every 5th app carries a
// planted unrestricted upload, the rest are benign upload plugins.
func simApps(n int) []corpus.ScreeningApp {
	return corpus.RandomPlugins(7, n, 5)
}

// vulnApps returns apps that are all planted-vulnerable — guaranteed to
// have symbolic-execution roots, which the gate-based tests rely on
// (the gate blocks scans at the RootStart seam).
func vulnApps(n int) []corpus.ScreeningApp {
	return corpus.RandomPlugins(11, n, 1)
}

func testConfig(dir string, scanWorkers int) Config {
	return Config{
		Dir:         dir,
		Scan:        uchecker.Options{Workers: 2, Budgets: uchecker.Budgets{MaxPaths: 20000}},
		ScanWorkers: scanWorkers,
	}
}

func mustOpen(t *testing.T, cfg Config) *Daemon {
	t.Helper()
	d, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return d
}

func submitAll(t *testing.T, d *Daemon, tenant string, apps []corpus.ScreeningApp) []string {
	t.Helper()
	ids := make([]string, 0, len(apps))
	for _, app := range apps {
		job, err := d.Submit(tenant, app.Name, app.Sources)
		if err != nil {
			t.Fatalf("submit %s: %v", app.Name, err)
		}
		ids = append(ids, job.ID)
	}
	return ids
}

// waitTerminal polls until every listed job is terminal (or the daemon
// goes fatal with fatalOK set), returning the final snapshots.
func waitTerminal(t *testing.T, d *Daemon, ids []string, timeout time.Duration, fatalOK bool) map[string]Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		out := map[string]Job{}
		done := true
		for _, id := range ids {
			j, err := d.Get(id)
			if err != nil {
				t.Fatalf("get %s: %v", id, err)
			}
			out[id] = j
			if !j.State.Terminal() {
				done = false
			}
		}
		if done {
			return out
		}
		if fatalOK && d.Fatal() != nil {
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs not terminal after %v: %+v", timeout, out)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitState polls one job until it reaches the wanted state.
func waitState(t *testing.T, d *Daemon, id string, want JobState, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j, err := d.Get(id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if j.State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, j.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// counter reads one metric from the registry snapshot.
func counter(reg *obs.Registry, labels map[string]string, key string) int64 {
	for _, s := range reg.Snapshot() {
		if len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Metrics[key]
		}
	}
	return 0
}

// scanGate blocks every scan at its first RootStart until released, so
// tests can pin jobs in the Running state deterministically.
type scanGate struct {
	ch   chan struct{}
	once sync.Once
}

func newScanGate() *scanGate { return &scanGate{ch: make(chan struct{})} }

func (g *scanGate) hook(p faultinject.Point, detail string) error {
	if p == faultinject.RootStart {
		<-g.ch
	}
	return nil
}

func (g *scanGate) release() { g.once.Do(func() { close(g.ch) }) }

func TestDaemonLifecycleAndRestart(t *testing.T) {
	dir := t.TempDir()
	apps := simApps(5)
	cfg := testConfig(dir, 2)
	d := mustOpen(t, cfg)
	ids := submitAll(t, d, "acme", apps)
	jobs := waitTerminal(t, d, ids, 60*time.Second, false)

	results := map[string]json.RawMessage{}
	vulnerable := 0
	for i, id := range ids {
		j := jobs[id]
		if j.State != JobFinished {
			t.Fatalf("job %s (%s) state = %s (%s)", id, j.Name, j.State, j.Error)
		}
		raw, err := d.Result(id)
		if err != nil {
			t.Fatalf("result %s: %v", id, err)
		}
		var rep uchecker.AppReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			t.Fatalf("result %s does not parse: %v", id, err)
		}
		if rep.Name != apps[i].Name {
			t.Fatalf("result name = %q, want %q", rep.Name, apps[i].Name)
		}
		if rep.Seconds != 0 || rep.MemoryMB != 0 {
			t.Fatalf("report of %s not canonicalized: Seconds=%v MemoryMB=%v", id, rep.Seconds, rep.MemoryMB)
		}
		if rep.Vulnerable {
			vulnerable++
		}
		results[id] = raw
	}
	if vulnerable == 0 {
		t.Fatal("planted app not detected — scans did not really run")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Restart: every terminal job is served from the journal without
	// re-scanning, byte-identically.
	d2 := mustOpen(t, cfg)
	defer d2.Close()
	if got := counter(d2.Registry(), daemonLabels, "jobs_requeued_total"); got != 0 {
		t.Fatalf("restart re-enqueued %d terminal jobs", got)
	}
	for _, id := range ids {
		j, err := d2.Get(id)
		if err != nil || j.State != JobFinished {
			t.Fatalf("restarted job %s: state=%v err=%v", id, j.State, err)
		}
		raw, err := d2.Result(id)
		if err != nil {
			t.Fatalf("restarted result %s: %v", id, err)
		}
		if string(raw) != string(results[id]) {
			t.Fatalf("restarted result of %s differs from pre-restart bytes", id)
		}
	}
	// Submitting the same sources again is served by the result cache —
	// no second scan of identical content under an identical fingerprint.
	job, err := d2.Submit("acme", apps[0].Name, apps[0].Sources)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	waitTerminal(t, d2, []string{job.ID}, 30*time.Second, false)
	raw, err := d2.Result(job.ID)
	if err != nil {
		t.Fatalf("resubmit result: %v", err)
	}
	if string(raw) != string(results[ids[0]]) {
		t.Fatal("cache-served resubmit differs from original result")
	}
	if got := counter(d2.Registry(), daemonLabels, "cache_hits_total"); got != 1 {
		t.Fatalf("cache_hits_total = %d, want 1", got)
	}
}

// TestDaemonCacheKeyIncludesName: identical sources submitted under two
// different names must NOT share a content address — the canonical
// report embeds the name, so a shared key would serve the first
// submitter's report (wrong Name) to the second.
func TestDaemonCacheKeyIncludesName(t *testing.T) {
	app := vulnApps(1)[0]
	d := mustOpen(t, testConfig(t.TempDir(), 2))
	defer d.Close()

	first, err := d.Submit("acme", app.Name, app.Sources)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	renamed, err := d.Submit("acme", app.Name+"-renamed", app.Sources)
	if err != nil {
		t.Fatalf("submit renamed: %v", err)
	}
	if first.Key == renamed.Key {
		t.Fatal("identical sources under different names share a cache key")
	}
	waitTerminal(t, d, []string{first.ID, renamed.ID}, 60*time.Second, false)
	for id, want := range map[string]string{first.ID: app.Name, renamed.ID: app.Name + "-renamed"} {
		raw, err := d.Result(id)
		if err != nil {
			t.Fatalf("result %s: %v", id, err)
		}
		var rep uchecker.AppReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			t.Fatalf("result %s does not parse: %v", id, err)
		}
		if rep.Name != want {
			t.Fatalf("report of %s carries name %q, want %q", id, rep.Name, want)
		}
	}
	if got := counter(d.Registry(), daemonLabels, "cache_hits_total"); got != 0 {
		t.Fatalf("cache_hits_total = %d, want 0 (distinct names are distinct addresses)", got)
	}
}

func TestDaemonFingerprintChangeReKeysPendingJobs(t *testing.T) {
	dir := t.TempDir()
	apps := vulnApps(2)
	gate := newScanGate()
	cfg := testConfig(dir, 1)
	cfg.Scan.FaultHook = gate.hook
	d := mustOpen(t, cfg)
	ids := submitAll(t, d, "acme", apps)
	waitState(t, d, ids[0], JobRunning, 10*time.Second)
	oldKey, _ := d.Get(ids[1])
	// Hard stop with ids[0] mid-scan and ids[1] queued. Close marks the
	// stop before waiting for the worker, so releasing the gate after
	// starting it lets the blocked scan unwind into the discard path.
	closed := make(chan error, 1)
	go func() { closed <- d.Close() }()
	time.Sleep(10 * time.Millisecond)
	gate.release()
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen with a different path budget: new fingerprint, pending jobs
	// re-keyed so the old cache entries cannot serve stale reports.
	cfg2 := testConfig(dir, 1)
	cfg2.Scan.Budgets.MaxPaths = 19999
	d2 := mustOpen(t, cfg2)
	defer d2.Close()
	if d2.Fingerprint() == d.Fingerprint() {
		t.Fatal("fingerprint did not change with the budget")
	}
	j1, err := d2.Get(ids[1])
	if err != nil {
		t.Fatalf("get requeued job: %v", err)
	}
	if j1.Key == oldKey.Key {
		t.Fatal("pending job kept its stale cache key across an options change")
	}
	jobs := waitTerminal(t, d2, ids, 60*time.Second, false)
	for _, id := range ids {
		if jobs[id].State != JobFinished {
			t.Fatalf("job %s = %s (%s)", id, jobs[id].State, jobs[id].Error)
		}
	}
}

func TestDaemonQueueShedWhileOtherTenantCompletes(t *testing.T) {
	dir := t.TempDir()
	apps := vulnApps(6)
	gate := newScanGate()
	cfg := testConfig(dir, 1)
	cfg.Scan.FaultHook = gate.hook
	cfg.Tenants = map[string]TenantPolicy{
		"greedy": {MaxQueue: 2},
		"modest": {MaxQueue: 10},
	}
	d := mustOpen(t, cfg)
	defer d.Close()

	// greedy's first job occupies the only scan worker (blocked at the
	// gate); its next two fill the queue bound.
	first, err := d.Submit("greedy", apps[0].Name, apps[0].Sources)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitState(t, d, first.ID, JobRunning, 10*time.Second)
	var kept []string
	kept = append(kept, first.ID)
	for _, app := range apps[1:3] {
		job, err := d.Submit("greedy", app.Name, app.Sources)
		if err != nil {
			t.Fatalf("submit %s: %v", app.Name, err)
		}
		kept = append(kept, job.ID)
	}

	// The 4th greedy submit is shed with a deterministic Retry-After;
	// the overload never consumes scan work.
	var shed *ShedError
	_, err = d.Submit("greedy", apps[3].Name, apps[3].Sources)
	if !errors.As(err, &shed) {
		t.Fatalf("overloaded submit returned %v, want *ShedError", err)
	}
	if shed.Reason != "queue" || shed.Tenant != "greedy" {
		t.Fatalf("shed = %+v", shed)
	}
	if want := scanjournal.DefaultRetry.Backoff("queue:greedy", 0); shed.RetryAfter != want {
		t.Fatalf("RetryAfter = %v, want deterministic %v", shed.RetryAfter, want)
	}
	// A second consecutive shed advances the backoff schedule.
	_, err = d.Submit("greedy", apps[3].Name, apps[3].Sources)
	if !errors.As(err, &shed) {
		t.Fatalf("second overloaded submit returned %v", err)
	}
	if want := scanjournal.DefaultRetry.Backoff("queue:greedy", 1); shed.RetryAfter != want {
		t.Fatalf("second RetryAfter = %v, want %v", shed.RetryAfter, want)
	}

	// The modest tenant is not punished for greedy's overload: its
	// submits are admitted while greedy is shedding...
	modest := submitAll(t, d, "modest", apps[4:6])
	if got := counter(d.Registry(), tenantLabels("greedy"), "shed_total"); got != 2 {
		t.Fatalf("greedy shed_total = %d, want 2", got)
	}
	if got := counter(d.Registry(), tenantLabels("modest"), "shed_total"); got != 0 {
		t.Fatalf("modest shed_total = %d, want 0", got)
	}

	// ...and complete once the worker is released.
	gate.release()
	all := waitTerminal(t, d, append(kept, modest...), 120*time.Second, false)
	for id, j := range all {
		if j.State != JobFinished {
			t.Fatalf("job %s = %s (%s)", id, j.State, j.Error)
		}
	}
	// greedy's streak reset on its next accepted submit.
	if _, err := d.Submit("greedy", apps[3].Name, apps[3].Sources); err != nil {
		t.Fatalf("post-release greedy submit: %v", err)
	}
	d.mu.Lock()
	streak := d.shedStreak["greedy"]
	d.mu.Unlock()
	if streak != 0 {
		t.Fatalf("shed streak = %d after accepted submit, want 0", streak)
	}
}

func TestDaemonRateShedWithPinnedClock(t *testing.T) {
	dir := t.TempDir()
	apps := simApps(3)
	var mu sync.Mutex
	now := time.Unix(5000, 0)
	cfg := testConfig(dir, 1)
	cfg.Clock = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	cfg.Tenants = map[string]TenantPolicy{"rho": {RatePerSec: 1, Burst: 1}}
	d := mustOpen(t, cfg)
	defer d.Close()

	first, err := d.Submit("rho", apps[0].Name, apps[0].Sources)
	if err != nil {
		t.Fatalf("burst submit: %v", err)
	}
	var shed *ShedError
	_, err = d.Submit("rho", apps[1].Name, apps[1].Sources)
	if !errors.As(err, &shed) {
		t.Fatalf("rate-limited submit returned %v", err)
	}
	if shed.Reason != "rate" {
		t.Fatalf("reason = %q", shed.Reason)
	}
	// The hint is exactly the bucket's refill time (1 token at 1/s from a
	// pinned clock) plus the deterministic jitter schedule.
	if want := time.Second + scanjournal.DefaultRetry.Backoff("rate:rho", 0); shed.RetryAfter != want {
		t.Fatalf("RetryAfter = %v, want %v", shed.RetryAfter, want)
	}
	_, err = d.Submit("rho", apps[1].Name, apps[1].Sources)
	if !errors.As(err, &shed) {
		t.Fatalf("second rate-limited submit returned %v", err)
	}
	if want := time.Second + scanjournal.DefaultRetry.Backoff("rate:rho", 1); shed.RetryAfter != want {
		t.Fatalf("second RetryAfter = %v, want %v", shed.RetryAfter, want)
	}

	// Advance the clock past the refill: admitted again.
	mu.Lock()
	now = now.Add(2 * time.Second)
	mu.Unlock()
	second, err := d.Submit("rho", apps[2].Name, apps[2].Sources)
	if err != nil {
		t.Fatalf("post-refill submit: %v", err)
	}
	waitTerminal(t, d, []string{first.ID, second.ID}, 60*time.Second, false)
}

func TestDaemonCancelQueuedJob(t *testing.T) {
	dir := t.TempDir()
	apps := vulnApps(2)
	gate := newScanGate()
	cfg := testConfig(dir, 1)
	cfg.Scan.FaultHook = gate.hook
	d := mustOpen(t, cfg)
	defer d.Close()
	running, err := d.Submit("acme", apps[0].Name, apps[0].Sources)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, d, running.ID, JobRunning, 10*time.Second)
	queued, err := d.Submit("acme", apps[1].Name, apps[1].Sources)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Cancel(queued.ID); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	j, _ := d.Get(queued.ID)
	if j.State != JobCancelled {
		t.Fatalf("queued job state = %s after cancel", j.State)
	}
	if err := d.Cancel(queued.ID); !errors.Is(err, ErrJobTerminal) {
		t.Fatalf("double cancel = %v, want ErrJobTerminal", err)
	}
	if _, err := d.Result(queued.ID); err == nil {
		t.Fatal("cancelled job served a result")
	}
	gate.release()
	jobs := waitTerminal(t, d, []string{running.ID}, 60*time.Second, false)
	if jobs[running.ID].State != JobFinished {
		t.Fatalf("running job = %s", jobs[running.ID].State)
	}
	// The journal carries the cancel as a first-class terminal record.
	rec, err := scanjournal.Read(d.journalPath())
	if err != nil {
		t.Fatal(err)
	}
	rp := FoldJobs(rec)
	if rp.Corrupt != nil {
		t.Fatalf("journal corrupt: %+v", rp.Corrupt)
	}
	if rp.Jobs[queued.ID].State != JobCancelled {
		t.Fatalf("journaled state = %s", rp.Jobs[queued.ID].State)
	}
}

func TestDaemonCancelRunningJob(t *testing.T) {
	dir := t.TempDir()
	apps := vulnApps(1)
	gate := newScanGate()
	cfg := testConfig(dir, 1)
	cfg.Scan.FaultHook = gate.hook
	d := mustOpen(t, cfg)
	defer d.Close()
	job, err := d.Submit("acme", apps[0].Name, apps[0].Sources)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, d, job.ID, JobRunning, 10*time.Second)
	if err := d.Cancel(job.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	gate.release() // let the scan observe its cancelled context
	waitTerminal(t, d, []string{job.ID}, 60*time.Second, false)
	j, _ := d.Get(job.ID)
	if j.State != JobCancelled {
		t.Fatalf("state = %s (%s), want cancelled", j.State, j.Error)
	}
	if got := counter(d.Registry(), daemonLabels, "jobs_cancelled_total"); got != 1 {
		t.Fatalf("jobs_cancelled_total = %d", got)
	}
}

func TestDaemonWatchdogFailsWedgedScan(t *testing.T) {
	dir := t.TempDir()
	apps := vulnApps(1)
	gate := newScanGate() // never released until cleanup: the scan ignores cancellation
	defer gate.release()
	cfg := testConfig(dir, 1)
	cfg.Scan.FaultHook = gate.hook
	cfg.JobTimeout = 50 * time.Millisecond
	cfg.WatchdogGrace = 100 * time.Millisecond
	d := mustOpen(t, cfg)
	defer d.Close()
	job, err := d.Submit("acme", apps[0].Name, apps[0].Sources)
	if err != nil {
		t.Fatal(err)
	}
	jobs := waitTerminal(t, d, []string{job.ID}, 30*time.Second, false)
	j := jobs[job.ID]
	if j.State != JobFailed {
		t.Fatalf("state = %s, want failed", j.State)
	}
	if !strings.Contains(j.Error, "watchdog") {
		t.Fatalf("error = %q, want watchdog", j.Error)
	}
	if got := counter(d.Registry(), daemonLabels, "watchdog_fired_total"); got != 1 {
		t.Fatalf("watchdog_fired_total = %d", got)
	}
}

func TestDaemonJobTimeoutFailsTyped(t *testing.T) {
	dir := t.TempDir()
	apps := vulnApps(1)
	cfg := testConfig(dir, 1)
	// A scan that honors cancellation: slow every root a bit so the
	// deadline lapses mid-scan, then let ctx cancellation propagate.
	cfg.Scan.FaultHook = faultinject.SleepOn(faultinject.RootStart, "", 30*time.Millisecond)
	cfg.JobTimeout = 10 * time.Millisecond
	cfg.WatchdogGrace = 30 * time.Second // watchdog out of the picture
	d := mustOpen(t, cfg)
	defer d.Close()
	job, err := d.Submit("acme", apps[0].Name, apps[0].Sources)
	if err != nil {
		t.Fatal(err)
	}
	jobs := waitTerminal(t, d, []string{job.ID}, 60*time.Second, false)
	j := jobs[job.ID]
	if j.State != JobFailed || !strings.Contains(j.Error, "deadline") {
		t.Fatalf("job = %s (%q), want deadline failure", j.State, j.Error)
	}
}

func TestDaemonDrainFinishesInFlightKeepsQueued(t *testing.T) {
	dir := t.TempDir()
	apps := vulnApps(3)
	gate := newScanGate()
	cfg := testConfig(dir, 1)
	cfg.Scan.FaultHook = gate.hook
	d := mustOpen(t, cfg)
	inflight, err := d.Submit("acme", apps[0].Name, apps[0].Sources)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, d, inflight.ID, JobRunning, 10*time.Second)
	queued := submitAll(t, d, "acme", apps[1:])

	drained := make(chan error, 1)
	go func() { drained <- d.Drain() }()
	// Once the drain flag is up, new submits are rejected typed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		d.mu.Lock()
		dr := d.draining
		d.mu.Unlock()
		if dr {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain flag never raised")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := d.Submit("acme", "late", apps[0].Sources); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain = %v, want ErrDraining", err)
	}
	gate.release()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	j, _ := d.Get(inflight.ID)
	if j.State != JobFinished {
		t.Fatalf("in-flight job after drain = %s (%s), want finished", j.State, j.Error)
	}
	for _, id := range queued {
		if q, _ := d.Get(id); q.State != JobSubmitted {
			t.Fatalf("queued job %s after drain = %s, want submitted", id, q.State)
		}
	}

	// PR-7 semantics: the restarted daemon re-enqueues exactly the queued
	// jobs and runs them to completion.
	d2 := mustOpen(t, testConfig(dir, 2))
	defer d2.Close()
	if got := counter(d2.Registry(), daemonLabels, "jobs_requeued_total"); got != int64(len(queued)) {
		t.Fatalf("jobs_requeued_total = %d, want %d", got, len(queued))
	}
	jobs := waitTerminal(t, d2, append([]string{inflight.ID}, queued...), 120*time.Second, false)
	for id, j := range jobs {
		if j.State != JobFinished {
			t.Fatalf("job %s after restart = %s (%s)", id, j.State, j.Error)
		}
	}
}

func TestDaemonLostSpoolFailsTyped(t *testing.T) {
	dir := t.TempDir()
	apps := vulnApps(2)
	gate := newScanGate()
	cfg := testConfig(dir, 1)
	cfg.Scan.FaultHook = gate.hook
	d := mustOpen(t, cfg)
	running, err := d.Submit("acme", apps[0].Name, apps[0].Sources)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, d, running.ID, JobRunning, 10*time.Second)
	queued, err := d.Submit("acme", apps[1].Name, apps[1].Sources)
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan error, 1)
	go func() { closed <- d.Close() }()
	time.Sleep(10 * time.Millisecond)
	gate.release()
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := os.Remove(d.spoolPath(queued.ID)); err != nil {
		t.Fatalf("remove spool: %v", err)
	}

	d2 := mustOpen(t, testConfig(dir, 1))
	defer d2.Close()
	j, err := d2.Get(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != JobFailed || !strings.Contains(j.Error, "spool lost") {
		t.Fatalf("job = %s (%q), want typed spool-lost failure", j.State, j.Error)
	}
	// The failure is durable: yet another restart folds it back.
	d2.Close()
	d3 := mustOpen(t, testConfig(dir, 1))
	defer d3.Close()
	if j3, _ := d3.Get(queued.ID); j3.State != JobFailed {
		t.Fatalf("spool-lost failure not durable: %s", j3.State)
	}
}

func TestDaemonFaultSeams(t *testing.T) {
	apps := simApps(1)
	t.Run("JobAccept rejects before persistence", func(t *testing.T) {
		dir := t.TempDir()
		cfg := testConfig(dir, 1)
		cfg.FaultHook = faultinject.FailAfter(faultinject.JobAccept, "", 0)
		d := mustOpen(t, cfg)
		defer d.Close()
		if _, err := d.Submit("acme", apps[0].Name, apps[0].Sources); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("err = %v", err)
		}
		if d.Fatal() != nil {
			t.Fatal("accept fault must not be fatal (nothing persisted)")
		}
		ents, _ := os.ReadDir(filepath.Join(dir, "spool"))
		if len(ents) != 0 {
			t.Fatalf("spool not empty after rejected accept: %v", ents)
		}
	})
	t.Run("JobEnqueue crash leaves no journaled job", func(t *testing.T) {
		dir := t.TempDir()
		cfg := testConfig(dir, 1)
		cfg.FaultHook = faultinject.FailAfter(faultinject.JobEnqueue, "", 0)
		d := mustOpen(t, cfg)
		if _, err := d.Submit("acme", apps[0].Name, apps[0].Sources); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("err = %v", err)
		}
		d.Close()
		d2 := mustOpen(t, testConfig(dir, 1))
		defer d2.Close()
		if n := len(d2.Jobs()); n != 0 {
			t.Fatalf("enqueue crash leaked %d journaled jobs", n)
		}
	})
}
