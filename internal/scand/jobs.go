// Job state machine and journal fold: the scand side of the
// journal-is-the-queue design.
//
// Every accepted job is durable before its submitter hears "accepted":
// the sources are spooled, then a job-submit record lands in the job
// journal. The journal's fold is therefore the daemon's entire recovery
// story — on restart FoldJobs replays the lifecycle records into the
// exact queue state the dead process held: terminal jobs serve their
// recorded reports, submitted and in-flight jobs re-enqueue in submit
// order (scans are deterministic, so a re-run reproduces the same
// report), and a duplicate terminal record is corruption, never a
// double-report.
package scand

import (
	"encoding/json"
	"fmt"

	"repro/internal/scanjournal"
)

// JobState is one node of the job lifecycle.
type JobState string

const (
	// JobSubmitted: durable, queued, not yet picked up by a worker.
	JobSubmitted JobState = "submitted"
	// JobRunning: picked up by a worker; a job-start record is journaled.
	JobRunning JobState = "running"
	// JobFinished: terminal; the canonical report is journaled and cached.
	JobFinished JobState = "finished"
	// JobFailed: terminal with a typed error (watchdog, lost spool, …).
	JobFailed JobState = "failed"
	// JobCancelled: terminal on client request.
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether s is a terminal state.
func (s JobState) Terminal() bool {
	return s == JobFinished || s == JobFailed || s == JobCancelled
}

// Job is one unit of scan-as-a-service work.
type Job struct {
	// ID is the daemon-assigned job identity ("j%08d", monotone across
	// restarts — the fold recovers the high-water mark).
	ID string `json:"id"`
	// Tenant is the submitting tenant, the admission-control identity.
	Tenant string `json:"tenant"`
	// Name is the target name the report will carry.
	Name string `json:"name"`
	// Key is the content address of the result in the shared cache.
	Key string `json:"key,omitempty"`
	// State is the lifecycle state.
	State JobState `json:"state"`
	// Error is the terminal error text (failed/cancelled jobs).
	Error string `json:"error,omitempty"`
	// Report is the canonical report (finished jobs).
	Report json.RawMessage `json:"-"`

	// Runtime-only fields, never serialized: the in-memory sources
	// (loaded from the spool on restart), the in-flight scan's cancel
	// function, and whether a client asked to cancel a running job (the
	// worker owns the terminal record of a running job, so Cancel only
	// requests).
	sources         map[string]string
	cancelScan      func()
	cancelRequested bool
}

// JobReplay is the daemon state folded out of a salvaged job journal.
type JobReplay struct {
	// Fingerprint is the latest manifest's options fingerprint.
	Fingerprint string
	// Jobs maps ID → folded job.
	Jobs map[string]*Job
	// Order lists job IDs in first-appearance (submit) order; restart
	// re-enqueues pending jobs in exactly this order.
	Order []string
	// Salvaged is the number of records folded in.
	Salvaged int
	// Corrupt is non-nil when the journal was corrupt — byte-level
	// (carried from Recovery) or semantically (missing manifest,
	// duplicate submit, duplicate terminal record, start of an unknown
	// job). Records before the corruption are salvaged.
	Corrupt *scanjournal.Corruption
}

// FoldJobs validates and folds a salvaged job journal into daemon
// state, mirroring scanjournal.Fold's prefix-salvage discipline: the
// first semantically invalid record stops the fold and everything
// before it is kept.
//
// Semantics per record type:
//
//   - manifest: updates the fingerprint. Unlike batch-sweep epochs a
//     fingerprint change does NOT discard prior state — a finished
//     job's report is immutable history served by ID, and pending jobs
//     are simply re-keyed under the new fingerprint by the daemon.
//   - job-submit: creates the job. A second submit for a live ID is
//     corruption.
//   - job-start: marks an existing non-terminal job running. Several
//     starts per job are legal (one per crash-and-resume cycle); a
//     start for an unknown or terminal job is corruption.
//   - job-finish / job-fail / job-cancel: terminal and self-contained —
//     an unknown ID creates the job directly (compaction drops the
//     submit/start of terminal jobs). A second terminal record for the
//     same job is corruption: the no-double-report invariant.
func FoldJobs(rec *scanjournal.Recovery) *JobReplay {
	rp := &JobReplay{Jobs: map[string]*Job{}, Corrupt: rec.Corrupt}
	if len(rec.Records) == 0 && rp.Corrupt == nil {
		rp.Corrupt = &scanjournal.Corruption{Reason: "empty job journal: no manifest record"}
		return rp
	}
	corrupt := func(i int, format string, args ...any) *JobReplay {
		rp.Corrupt = &scanjournal.Corruption{Record: i, Reason: fmt.Sprintf(format, args...)}
		return rp
	}
	for i, r := range rec.Records {
		if i == 0 && r.Type != scanjournal.TypeManifest {
			return corrupt(0, "job journal does not begin with a manifest record (got %q)", r.Type)
		}
		switch r.Type {
		case scanjournal.TypeManifest:
			rp.Fingerprint = r.Fingerprint
		case scanjournal.TypeJobSubmit:
			if _, dup := rp.Jobs[r.Job]; dup {
				return corrupt(i, "duplicate submit record for job %q", r.Job)
			}
			rp.Jobs[r.Job] = &Job{ID: r.Job, Tenant: r.Tenant, Name: r.Name, Key: r.Key, State: JobSubmitted}
			rp.Order = append(rp.Order, r.Job)
		case scanjournal.TypeJobStart:
			j, ok := rp.Jobs[r.Job]
			if !ok {
				return corrupt(i, "start record for unknown job %q", r.Job)
			}
			if j.State.Terminal() {
				return corrupt(i, "start record for terminal job %q", r.Job)
			}
			j.State = JobRunning
		case scanjournal.TypeJobFinish, scanjournal.TypeJobFail, scanjournal.TypeJobCancel:
			j, ok := rp.Jobs[r.Job]
			if !ok {
				// Self-contained terminal after compaction dropped the
				// submit: materialize the job directly.
				j = &Job{ID: r.Job, Tenant: r.Tenant, Name: r.Name}
				rp.Jobs[r.Job] = j
				rp.Order = append(rp.Order, r.Job)
			}
			if j.State.Terminal() {
				return corrupt(i, "duplicate terminal record for job %q", r.Job)
			}
			j.Key = r.Key
			switch r.Type {
			case scanjournal.TypeJobFinish:
				j.State = JobFinished
				j.Report = r.Report
			case scanjournal.TypeJobFail:
				j.State = JobFailed
				j.Error = r.Error
			case scanjournal.TypeJobCancel:
				j.State = JobCancelled
				j.Error = r.Error
			}
		default:
			return corrupt(i, "foreign record %q in a job journal", r.Type)
		}
		rp.Salvaged++
	}
	return rp
}

// foldJobRecords is the auto-compaction fold for a job journal: keep
// the latest manifest, the self-contained terminal record of every
// terminal job, and the submit plus latest start of every pending job
// — exactly the records FoldJobs needs to reconstruct current state.
// Relative append order is preserved, so submit order (and therefore
// restart re-enqueue order) survives compaction.
func foldJobRecords(records []scanjournal.Record) []scanjournal.Record {
	terminal := map[string]bool{}
	lastStart := map[string]int{}
	lastManifest := -1
	for i, r := range records {
		switch r.Type {
		case scanjournal.TypeManifest:
			lastManifest = i
		case scanjournal.TypeJobStart:
			lastStart[r.Job] = i
		case scanjournal.TypeJobFinish, scanjournal.TypeJobFail, scanjournal.TypeJobCancel:
			terminal[r.Job] = true
		}
	}
	var out []scanjournal.Record
	// The manifest goes first regardless of where the latest one sits in
	// append order (a restarted daemon appends a fresh manifest after
	// existing job records): FoldJobs requires record 0 to be a manifest.
	if lastManifest >= 0 {
		out = append(out, records[lastManifest])
	}
	for i, r := range records {
		switch r.Type {
		case scanjournal.TypeManifest:
			continue
		case scanjournal.TypeJobSubmit:
			if terminal[r.Job] {
				continue
			}
		case scanjournal.TypeJobStart:
			if terminal[r.Job] || i != lastStart[r.Job] {
				continue
			}
		}
		out = append(out, r)
	}
	return out
}
