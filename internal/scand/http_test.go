package scand

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/interp"
	"repro/internal/uchecker"
)

func postJSON(t *testing.T, srv *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

func TestHTTPSubmitStatusResultCancel(t *testing.T) {
	apps := simApps(2)
	d := mustOpen(t, testConfig(t.TempDir(), 2))
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp := postJSON(t, srv, "/jobs?tenant=acme", submitBody{Name: apps[0].Name, Sources: apps[0].Sources})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	job := decodeBody[Job](t, resp)
	if job.ID == "" || job.Tenant != "acme" || job.Name != apps[0].Name {
		t.Fatalf("job = %+v", job)
	}

	// Status of a known job is 200; unknown is 404.
	if resp, _ := http.Get(srv.URL + "/jobs/" + job.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp, _ := http.Get(srv.URL + "/jobs/j99999999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown status = %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Poll the result: 409 while in flight, 200 with the canonical report
	// once finished.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/jobs/" + job.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var rep uchecker.AppReport
			if err := json.Unmarshal(raw, &rep); err != nil {
				t.Fatalf("result does not parse: %v", err)
			}
			if rep.Name != apps[0].Name {
				t.Fatalf("result name = %q", rep.Name)
			}
			break
		}
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("in-flight result status = %d", resp.StatusCode)
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Cancelling a finished job is 409; cancelling an unknown job is 404.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+job.ID, nil)
	if resp, _ := http.DefaultClient.Do(req); resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel finished = %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/jobs/j99999999", nil)
	if resp, _ := http.DefaultClient.Do(req); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown = %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// A malformed JSON body is a client error, not a daemon state change.
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHTTPSubmitTarball(t *testing.T) {
	apps := vulnApps(1)
	d := mustOpen(t, Config{
		Dir:         t.TempDir(),
		Scan:        uchecker.Options{Workers: 2, Budgets: uchecker.Budgets{MaxPaths: 20000}},
		ScanWorkers: 1,
		Ingest:      IngestLimits{MaxFileBytes: 1 << 20, MaxTotalBytes: 1 << 20, MaxFiles: 64},
	})
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	var members []tarMember
	for name, src := range apps[0].Sources {
		members = append(members, tarMember{name: name, body: src})
	}
	body := gzipped(t, buildTar(t, members))
	resp, err := http.Post(srv.URL+"/jobs?tenant=acme&name="+apps[0].Name, "application/gzip", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("tar submit = %d: %s", resp.StatusCode, raw)
	}
	job := decodeBody[Job](t, resp)
	jobs := waitTerminal(t, d, []string{job.ID}, 60*time.Second, false)
	if jobs[job.ID].State != JobFinished {
		t.Fatalf("tar job = %s (%s)", jobs[job.ID].State, jobs[job.ID].Error)
	}

	// Hostile archive: 400, nothing submitted.
	evil := buildTar(t, []tarMember{{name: "../evil.php", body: "x"}})
	resp, err = http.Post(srv.URL+"/jobs?name=evil", "application/x-tar", bytes.NewReader(evil))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("hostile tar = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Oversized archive: 413.
	big := buildTar(t, []tarMember{{name: "big.php", body: strings.Repeat("a", 2<<20)}})
	resp, err = http.Post(srv.URL+"/jobs?name=big", "application/x-tar", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized tar = %d", resp.StatusCode)
	}
	resp.Body.Close()

	if n := len(d.Jobs()); n != 1 {
		t.Fatalf("rejected archives leaked jobs: %d", n)
	}
}

func TestHTTPShedCarriesRetryAfter(t *testing.T) {
	apps := vulnApps(4)
	gate := newScanGate()
	cfg := testConfig(t.TempDir(), 1)
	cfg.Scan.FaultHook = gate.hook
	cfg.Tenants = map[string]TenantPolicy{"greedy": {MaxQueue: 1}}
	d := mustOpen(t, cfg)
	defer d.Close()
	// Release before Close (defers run LIFO): Close waits for the worker,
	// and the worker waits on the gated scan.
	defer gate.release()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	first := decodeBody[Job](t, postJSON(t, srv, "/jobs?tenant=greedy", submitBody{Name: apps[0].Name, Sources: apps[0].Sources}))
	waitState(t, d, first.ID, JobRunning, 10*time.Second)
	postJSON(t, srv, "/jobs?tenant=greedy", submitBody{Name: apps[1].Name, Sources: apps[1].Sources}).Body.Close()

	resp := postJSON(t, srv, "/jobs?tenant=greedy", submitBody{Name: apps[2].Name, Sources: apps[2].Sources})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submit = %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After header = %q", resp.Header.Get("Retry-After"))
	}
	body := decodeBody[errorBody](t, resp)
	if body.RetryAfterMs < 1 {
		t.Fatalf("retryAfterMs = %d", body.RetryAfterMs)
	}
	if !strings.Contains(body.Error, "shed") {
		t.Fatalf("error body = %q", body.Error)
	}

	// The shed shows up in the RED metrics for the submit endpoint.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exposition, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(exposition), `ucheckerd_http_shed_total{endpoint="submit"} 1`) {
		t.Fatalf("http_shed_total missing from exposition:\n%s", exposition)
	}
}

func TestHTTPEventsStreamUntilTerminal(t *testing.T) {
	apps := vulnApps(1)
	gate := newScanGate()
	cfg := testConfig(t.TempDir(), 1)
	cfg.Scan.FaultHook = gate.hook
	d := mustOpen(t, cfg)
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	job, err := d.Submit("acme", apps[0].Name, apps[0].Sources)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, d, job.ID, JobRunning, 10*time.Second)

	resp, err := http.Get(srv.URL + "/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	gate.release()

	var events []Event
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		if ev.Job != job.ID {
			t.Fatalf("event for wrong job: %+v", ev)
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		t.Fatal("no events received")
	}
	last := events[len(events)-1]
	if last.Type != "state" || !last.State.Terminal() {
		t.Fatalf("stream did not end on a terminal state event: %+v", last)
	}
	if last.State != JobFinished {
		t.Fatalf("terminal state = %s (%s)", last.State, last.Error)
	}
	spans := 0
	for _, ev := range events {
		if ev.Type == "span" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatal("no span progress events in the stream")
	}

	// Events of an already-terminal job: snapshot then immediate EOF.
	resp2, err := http.Get(srv.URL + "/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	all, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(all), `"state":"finished"`) {
		t.Fatalf("terminal snapshot stream = %q", all)
	}
}

// Satellite 3 at the HTTP layer: scraping /metrics concurrently with
// active scans must yield a consistent snapshot (run under -race).
func TestHTTPMetricsConcurrentWithScans(t *testing.T) {
	apps := simApps(4)
	d := mustOpen(t, testConfig(t.TempDir(), 2))
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	ids := submitAll(t, d, "acme", apps)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + "/metrics")
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("scrape status = %d", resp.StatusCode)
					return
				}
				if !bytes.Contains(raw, []byte("ucheckerd_jobs_submitted_total")) {
					t.Errorf("scrape missing jobs_submitted_total")
					return
				}
			}
		}()
	}
	waitTerminal(t, d, ids, 120*time.Second, false)
	close(stop)
	wg.Wait()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exposition, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		fmt.Sprintf(`ucheckerd_jobs_submitted_total{scope="daemon"} %d`, len(apps)),
		fmt.Sprintf(`ucheckerd_jobs_finished_total{scope="daemon"} %d`, len(apps)),
		`ucheckerd_http_requests_total{endpoint="metrics"}`,
		`scope="scans"`,
	} {
		if !strings.Contains(string(exposition), want) {
			t.Fatalf("exposition missing %q:\n%s", want, exposition)
		}
	}
}

func TestHTTPHealthz(t *testing.T) {
	d := mustOpen(t, testConfig(t.TempDir(), 1))
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	d.goFatal(errors.New("injected journal death"))
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after fatal = %d", resp.StatusCode)
	}
}

// promValue extracts the value of one exact exposition line prefix
// ("name{labels} ") from a Prometheus text dump, or -1 when absent.
func promValue(exposition, prefix string) int64 {
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, prefix+" ") {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimPrefix(line, prefix+" "), 10, 64)
		if err != nil {
			return -1
		}
		return v
	}
	return -1
}

// Satellite: under -interproc summary the daemon's /metrics exposition
// carries the summary-strategy counters, and per-file summary artifacts
// are shared across jobs — a second job reusing a file another job
// already summarized shows up as summary_cache_hits.
func TestHTTPMetricsExposeSummaryCounters(t *testing.T) {
	// Two distinct jobs (different sources → different report keys, so
	// neither replays the other's report) sharing one identical helper
	// file whose summary artifact the second job loads from the shared
	// cache. Each plugin also calls a by-ref function, which the summary
	// strategy classifies as escaped and falls back to inlining.
	helper := `<?php
function ext_label($n) { return "." . $n; }
function up_prefix() { return "uploads/"; }
`
	plugin := func(dest string) string {
		return `<?php
function grab(&$n) { $n = $_FILES['doc']['name']; }
$name = "";
grab($name);
move_uploaded_file($_FILES['doc']['tmp_name'], "` + dest + `" . $name);
`
	}
	cfg := testConfig(t.TempDir(), 1)
	cfg.Scan.Interproc = interp.InterprocSummary
	d := mustOpen(t, cfg)
	defer d.Close()

	var ids []string
	for i, sources := range []map[string]string{
		{"helper.php": helper, "plugin.php": plugin("uploads/")},
		{"helper.php": helper, "plugin.php": plugin("attachments/")},
	} {
		job, err := d.Submit("acme", fmt.Sprintf("summary-app-%d", i), sources)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		ids = append(ids, job.ID)
	}
	waitTerminal(t, d, ids, 30*time.Second, false)

	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	exposition := string(raw)

	for _, m := range []string{
		"ucheckerd_summary_computed",
		"ucheckerd_summary_cache_hits",
		"ucheckerd_summary_escaped_callees",
	} {
		if v := promValue(exposition, m+`{scope="scans"}`); v < 1 {
			t.Errorf("%s = %d, want >= 1; exposition:\n%s", m, v, exposition)
		}
	}
}
