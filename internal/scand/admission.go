// Admission control and multi-tenant fairness.
//
// Two independent mechanisms guard the daemon against overload:
//
//   - A per-tenant token bucket rejects submit bursts beyond the
//     tenant's sustained rate before any work is spent on them. A shed
//     submit carries a Retry-After hint computed from the bucket's
//     actual refill time plus scanjournal.RetryPolicy's deterministic
//     jitter — the same backoff schedule internal retries use, so an
//     obedient client desynchronizes exactly like an internal retry
//     would and shed tests stay reproducible.
//
//   - A bounded per-tenant FIFO behind stride-based weighted-fair
//     scheduling bounds memory and keeps one Cimy-scale tenant from
//     starving the rest: each pop charges the dequeuing tenant
//     stride/weight virtual time and the scheduler always serves the
//     tenant with the least virtual time, ties broken lexicographically
//     so dispatch order is deterministic.
package scand

import (
	"sort"
	"time"
)

// TenantPolicy is one tenant's admission-control envelope. The zero
// value means: no rate limit, DefaultMaxQueue queued jobs, weight 1.
type TenantPolicy struct {
	// RatePerSec is the sustained submit rate; 0 disables rate limiting.
	RatePerSec float64
	// Burst is the bucket depth (instantaneous burst allowance). Values
	// below 1 behave as 1 when rate limiting is on.
	Burst int
	// MaxQueue bounds the tenant's queued (submitted, not yet running)
	// jobs; 0 selects DefaultMaxQueue. A full queue sheds with 429.
	MaxQueue int
	// Weight is the tenant's fair-share weight; 0 behaves as 1. A
	// weight-2 tenant is served twice as often as a weight-1 tenant
	// under contention.
	Weight int
}

// DefaultMaxQueue bounds a tenant's queue when its policy does not.
const DefaultMaxQueue = 256

func (p TenantPolicy) maxQueue() int {
	if p.MaxQueue > 0 {
		return p.MaxQueue
	}
	return DefaultMaxQueue
}

func (p TenantPolicy) weight() float64 {
	if p.Weight > 0 {
		return float64(p.Weight)
	}
	return 1
}

// tokenBucket is a standard refill-on-demand token bucket driven by an
// injected clock (tests pin it for determinism).
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(p TenantPolicy, now time.Time) *tokenBucket {
	burst := float64(p.Burst)
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: p.RatePerSec, burst: burst, tokens: burst, last: now}
}

// take consumes one token. When the bucket is empty it reports the time
// until the next token refills — the raw material of the Retry-After
// hint.
func (b *tokenBucket) take(now time.Time) (ok bool, wait time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	if now.After(b.last) {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / b.rate * float64(time.Second))
}

// strideUnit is the stride numerator: pass += strideUnit/weight per pop.
const strideUnit = 1 << 16

// fairQueue is a stride scheduler over per-tenant FIFOs. Not safe for
// concurrent use — the Daemon serializes access under its mutex.
type fairQueue struct {
	tenants map[string]*tenantQueue
	// global is the scheduler's virtual time: the pass of the most
	// recently served tenant. A tenant whose queue drained and refilled
	// rejoins at max(own pass, global), so an idle tenant cannot bank
	// service credit and then monopolize the scheduler.
	global float64
}

type tenantQueue struct {
	jobs   []string
	weight float64
	pass   float64
}

func newFairQueue() *fairQueue {
	return &fairQueue{tenants: map[string]*tenantQueue{}}
}

// depth reports a tenant's queued-job count.
func (q *fairQueue) depth(tenant string) int {
	if tq, ok := q.tenants[tenant]; ok {
		return len(tq.jobs)
	}
	return 0
}

// push enqueues a job for a tenant.
func (q *fairQueue) push(tenant string, weight float64, jobID string) {
	tq, ok := q.tenants[tenant]
	if !ok {
		tq = &tenantQueue{weight: weight}
		q.tenants[tenant] = tq
	}
	tq.weight = weight
	if len(tq.jobs) == 0 && tq.pass < q.global {
		tq.pass = q.global
	}
	tq.jobs = append(tq.jobs, jobID)
}

// pop dequeues the next job under weighted fairness: the non-empty
// tenant with the minimum pass is served, ties broken by tenant name so
// dispatch order is a pure function of queue state.
func (q *fairQueue) pop() (tenant, jobID string, ok bool) {
	var names []string
	for name, tq := range q.tenants {
		if len(tq.jobs) > 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return "", "", false
	}
	sort.Strings(names)
	best := names[0]
	for _, name := range names[1:] {
		if q.tenants[name].pass < q.tenants[best].pass {
			best = name
		}
	}
	tq := q.tenants[best]
	jobID = tq.jobs[0]
	tq.jobs = tq.jobs[1:]
	q.global = tq.pass
	tq.pass += strideUnit / tq.weight
	return best, jobID, true
}

// remove deletes a specific queued job (cancellation before dispatch).
func (q *fairQueue) remove(tenant, jobID string) bool {
	tq, ok := q.tenants[tenant]
	if !ok {
		return false
	}
	for i, id := range tq.jobs {
		if id == jobID {
			tq.jobs = append(tq.jobs[:i], tq.jobs[i+1:]...)
			return true
		}
	}
	return false
}

// depths snapshots every tenant's queue depth (the queue_depth_now
// gauge source).
func (q *fairQueue) depths() map[string]int {
	out := make(map[string]int, len(q.tenants))
	for name, tq := range q.tenants {
		if len(tq.jobs) > 0 {
			out[name] = len(tq.jobs)
		}
	}
	return out
}
