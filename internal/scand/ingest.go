// Safe archive ingestion for the submit endpoint.
//
// The daemon accepts tarballs from untrusted tenants, and a hostile
// archive is the oldest trick in the upload-vulnerability book — it
// would be embarrassing for a scanner that detects unrestricted file
// uploads to be owned by one. Extraction therefore never touches the
// filesystem (sources go straight into the in-memory Target map), and
// every classic attack is rejected or stripped before it can matter:
// path traversal ("../", absolute paths), symlink/hardlink planting,
// device nodes, oversized members and decompression bombs (per-file,
// total and member-count caps enforced while streaming, not after).
package scand

import (
	"archive/tar"
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"path"
	"strings"
)

// IngestLimits caps one archive's resource consumption. The zero value
// selects DefaultIngestLimits' caps.
type IngestLimits struct {
	// MaxFileBytes caps one member's extracted size.
	MaxFileBytes int64
	// MaxTotalBytes caps the archive's total extracted size — the
	// decompression-bomb guard (a tiny .tar.gz can expand without
	// bound; the cap applies to extracted bytes while streaming).
	MaxTotalBytes int64
	// MaxFiles caps the number of regular-file members.
	MaxFiles int
}

// DefaultIngestLimits bounds a submit to something comfortably above
// the largest real plugin (Cimy-scale targets are single-digit MB).
var DefaultIngestLimits = IngestLimits{
	MaxFileBytes:  8 << 20,
	MaxTotalBytes: 64 << 20,
	MaxFiles:      4096,
}

func (l IngestLimits) orDefaults() IngestLimits {
	if l.MaxFileBytes <= 0 {
		l.MaxFileBytes = DefaultIngestLimits.MaxFileBytes
	}
	if l.MaxTotalBytes <= 0 {
		l.MaxTotalBytes = DefaultIngestLimits.MaxTotalBytes
	}
	if l.MaxFiles <= 0 {
		l.MaxFiles = DefaultIngestLimits.MaxFiles
	}
	return l
}

// ErrHostileArchive is the base error for every rejection that implies
// the archive is malformed or malicious (as opposed to merely too big).
var ErrHostileArchive = errors.New("scand: hostile archive")

// ErrArchiveTooLarge is the base error for size/count cap rejections.
var ErrArchiveTooLarge = errors.New("scand: archive exceeds limits")

// IngestTar extracts a (possibly gzip-compressed) tar stream into an
// in-memory source map. Directory members are ignored; symlinks and
// hardlinks are stripped (skipped, never followed); any other
// non-regular member, an absolute path, or a path escaping the archive
// root rejects the whole archive — a tenant that ships one hostile
// member does not get the benign rest scanned.
func IngestTar(r io.Reader, lim IngestLimits) (map[string]string, error) {
	lim = lim.orDefaults()
	br := bufio.NewReader(r)
	// Sniff the gzip magic instead of trusting a Content-Type header.
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("%w: bad gzip stream: %v", ErrHostileArchive, err)
		}
		defer gz.Close()
		return ingestTarStream(gz, lim)
	}
	return ingestTarStream(br, lim)
}

func ingestTarStream(r io.Reader, lim IngestLimits) (map[string]string, error) {
	sources := map[string]string{}
	var total int64
	tr := tar.NewReader(r)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: bad tar stream: %v", ErrHostileArchive, err)
		}
		switch hdr.Typeflag {
		case tar.TypeDir:
			continue
		case tar.TypeSymlink, tar.TypeLink:
			// Strip, don't follow: in-memory extraction cannot traverse a
			// link anyway, but keeping the entry would let a hostile
			// archive alias scan sources.
			continue
		case tar.TypeReg:
			// fallthrough to extraction
		case tar.TypeXGlobalHeader, tar.TypeXHeader:
			continue
		default:
			return nil, fmt.Errorf("%w: member %q has non-regular type %q", ErrHostileArchive, hdr.Name, string(hdr.Typeflag))
		}
		name, err := cleanArchivePath(hdr.Name)
		if err != nil {
			return nil, err
		}
		if len(sources) >= lim.MaxFiles {
			return nil, fmt.Errorf("%w: more than %d files", ErrArchiveTooLarge, lim.MaxFiles)
		}
		if hdr.Size > lim.MaxFileBytes {
			return nil, fmt.Errorf("%w: member %q declares %d bytes (cap %d)", ErrArchiveTooLarge, name, hdr.Size, lim.MaxFileBytes)
		}
		// Read one byte past the cap: a member whose header lies about
		// its size still cannot exceed the per-file budget, and the total
		// cap is enforced on actually-extracted bytes.
		limited := io.LimitReader(tr, lim.MaxFileBytes+1)
		data, err := io.ReadAll(limited)
		if err != nil {
			return nil, fmt.Errorf("%w: member %q: %v", ErrHostileArchive, name, err)
		}
		if int64(len(data)) > lim.MaxFileBytes {
			return nil, fmt.Errorf("%w: member %q exceeds per-file cap %d", ErrArchiveTooLarge, name, lim.MaxFileBytes)
		}
		total += int64(len(data))
		if total > lim.MaxTotalBytes {
			return nil, fmt.Errorf("%w: total extracted size exceeds %d bytes", ErrArchiveTooLarge, lim.MaxTotalBytes)
		}
		if _, dup := sources[name]; dup {
			return nil, fmt.Errorf("%w: duplicate member %q", ErrHostileArchive, name)
		}
		sources[name] = string(data)
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("%w: no regular files", ErrHostileArchive)
	}
	return sources, nil
}

// cleanArchivePath normalizes one member path and rejects everything
// that could escape the archive root: absolute paths (unix or
// Windows-style), "..", and Windows separators (a tar written on
// Windows with backslashes would dodge the slash-based checks).
func cleanArchivePath(name string) (string, error) {
	if strings.ContainsAny(name, "\\") {
		return "", fmt.Errorf("%w: member %q contains a backslash", ErrHostileArchive, name)
	}
	if strings.HasPrefix(name, "/") || hasDrivePrefix(name) {
		return "", fmt.Errorf("%w: absolute member path %q", ErrHostileArchive, name)
	}
	clean := path.Clean(name)
	if clean == "." || clean == "" {
		return "", fmt.Errorf("%w: empty member path %q", ErrHostileArchive, name)
	}
	if clean == ".." || strings.HasPrefix(clean, "../") {
		return "", fmt.Errorf("%w: member path %q escapes the archive root", ErrHostileArchive, name)
	}
	if strings.ContainsRune(clean, 0) {
		return "", fmt.Errorf("%w: member path contains NUL", ErrHostileArchive)
	}
	return clean, nil
}

// hasDrivePrefix reports Windows drive-letter absolutes ("C:…").
func hasDrivePrefix(name string) bool {
	return len(name) >= 2 && name[1] == ':' &&
		(('a' <= name[0] && name[0] <= 'z') || ('A' <= name[0] && name[0] <= 'Z'))
}
