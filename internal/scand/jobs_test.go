package scand

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/scanjournal"
)

func rec(typ, job string) scanjournal.Record {
	return scanjournal.Record{Type: typ, Job: job, Tenant: "t", Name: "app-" + job, Key: "k-" + job, At: time.Unix(0, 0)}
}

func manifest(fp string) scanjournal.Record {
	return scanjournal.Record{Type: scanjournal.TypeManifest, Fingerprint: fp, At: time.Unix(0, 0)}
}

func recovery(records ...scanjournal.Record) *scanjournal.Recovery {
	return &scanjournal.Recovery{Records: records}
}

func TestFoldJobsLifecycle(t *testing.T) {
	finish := rec(scanjournal.TypeJobFinish, "j1")
	finish.Report = json.RawMessage(`{"Name":"app-j1"}`)
	rp := FoldJobs(recovery(
		manifest("fp1"),
		rec(scanjournal.TypeJobSubmit, "j1"),
		rec(scanjournal.TypeJobSubmit, "j2"),
		rec(scanjournal.TypeJobStart, "j1"),
		finish,
		rec(scanjournal.TypeJobStart, "j2"),
	))
	if rp.Corrupt != nil {
		t.Fatalf("unexpected corruption: %+v", rp.Corrupt)
	}
	if rp.Fingerprint != "fp1" {
		t.Fatalf("fingerprint = %q", rp.Fingerprint)
	}
	if got := rp.Jobs["j1"].State; got != JobFinished {
		t.Fatalf("j1 state = %v", got)
	}
	if string(rp.Jobs["j1"].Report) != `{"Name":"app-j1"}` {
		t.Fatalf("j1 report = %s", rp.Jobs["j1"].Report)
	}
	// j2's dangling start means the dead daemon was mid-scan: the fold
	// reports it running so the restart re-enqueues it.
	if got := rp.Jobs["j2"].State; got != JobRunning {
		t.Fatalf("j2 state = %v", got)
	}
	if len(rp.Order) != 2 || rp.Order[0] != "j1" || rp.Order[1] != "j2" {
		t.Fatalf("order = %v", rp.Order)
	}
}

func TestFoldJobsSelfContainedTerminal(t *testing.T) {
	// Compaction drops submit/start of terminal jobs: a bare terminal
	// record must materialize the full job.
	fail := rec(scanjournal.TypeJobFail, "j7")
	fail.Error = "watchdog"
	rp := FoldJobs(recovery(manifest("fp"), fail))
	if rp.Corrupt != nil {
		t.Fatalf("unexpected corruption: %+v", rp.Corrupt)
	}
	j := rp.Jobs["j7"]
	if j == nil || j.State != JobFailed || j.Error != "watchdog" || j.Tenant != "t" || j.Name != "app-j7" {
		t.Fatalf("folded job = %+v", j)
	}
}

func TestFoldJobsCorruption(t *testing.T) {
	cases := []struct {
		name     string
		records  []scanjournal.Record
		salvaged int
		hint     string
	}{
		{
			name:     "empty journal",
			records:  nil,
			salvaged: 0,
			hint:     "no manifest",
		},
		{
			name:     "missing manifest",
			records:  []scanjournal.Record{rec(scanjournal.TypeJobSubmit, "j1")},
			salvaged: 0,
			hint:     "does not begin with a manifest",
		},
		{
			name: "duplicate submit",
			records: []scanjournal.Record{
				manifest("fp"), rec(scanjournal.TypeJobSubmit, "j1"), rec(scanjournal.TypeJobSubmit, "j1"),
			},
			salvaged: 2,
			hint:     "duplicate submit",
		},
		{
			name: "start of unknown job",
			records: []scanjournal.Record{
				manifest("fp"), rec(scanjournal.TypeJobStart, "j9"),
			},
			salvaged: 1,
			hint:     "unknown job",
		},
		{
			name: "start of terminal job",
			records: []scanjournal.Record{
				manifest("fp"), rec(scanjournal.TypeJobSubmit, "j1"),
				rec(scanjournal.TypeJobFinish, "j1"), rec(scanjournal.TypeJobStart, "j1"),
			},
			salvaged: 3,
			hint:     "terminal job",
		},
		{
			name: "double terminal is never a double report",
			records: []scanjournal.Record{
				manifest("fp"), rec(scanjournal.TypeJobSubmit, "j1"),
				rec(scanjournal.TypeJobFinish, "j1"), rec(scanjournal.TypeJobCancel, "j1"),
			},
			salvaged: 3,
			hint:     "duplicate terminal",
		},
		{
			name: "foreign record",
			records: []scanjournal.Record{
				manifest("fp"), {Type: scanjournal.TypeStart, Name: "x"},
			},
			salvaged: 1,
			hint:     "foreign record",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rp := FoldJobs(recovery(tc.records...))
			if rp.Corrupt == nil {
				t.Fatal("corruption not detected")
			}
			if rp.Salvaged != tc.salvaged {
				t.Fatalf("salvaged = %d, want %d", rp.Salvaged, tc.salvaged)
			}
			if !strings.Contains(rp.Corrupt.Reason, tc.hint) {
				t.Fatalf("reason %q does not mention %q", rp.Corrupt.Reason, tc.hint)
			}
		})
	}
}

func TestFoldJobsFingerprintChangeKeepsHistory(t *testing.T) {
	finish := rec(scanjournal.TypeJobFinish, "j1")
	finish.Report = json.RawMessage(`{"Name":"app-j1"}`)
	rp := FoldJobs(recovery(
		manifest("fp-old"),
		rec(scanjournal.TypeJobSubmit, "j1"),
		finish,
		rec(scanjournal.TypeJobSubmit, "j2"),
		manifest("fp-new"), // restart with changed options
	))
	if rp.Corrupt != nil {
		t.Fatalf("unexpected corruption: %+v", rp.Corrupt)
	}
	if rp.Fingerprint != "fp-new" {
		t.Fatalf("fingerprint = %q", rp.Fingerprint)
	}
	if rp.Jobs["j1"].State != JobFinished {
		t.Fatal("fingerprint change discarded terminal history")
	}
	if rp.Jobs["j2"].State != JobSubmitted {
		t.Fatal("fingerprint change discarded pending job")
	}
}

func TestFoldJobRecordsCompaction(t *testing.T) {
	records := []scanjournal.Record{
		manifest("fp-old"),
		rec(scanjournal.TypeJobSubmit, "j1"),
		rec(scanjournal.TypeJobSubmit, "j2"),
		rec(scanjournal.TypeJobStart, "j1"),
		rec(scanjournal.TypeJobFinish, "j1"),
		rec(scanjournal.TypeJobStart, "j2"), // pre-crash start
		manifest("fp-new"),                  // restart manifest lands AFTER job records
		rec(scanjournal.TypeJobStart, "j2"), // post-restart start
		rec(scanjournal.TypeJobSubmit, "j3"),
	}
	folded := foldJobRecords(records)
	// The fold must itself re-fold cleanly: manifest first, no corruption.
	rp := FoldJobs(recovery(folded...))
	if rp.Corrupt != nil {
		t.Fatalf("folded journal corrupt: %+v", rp.Corrupt)
	}
	if folded[0].Type != scanjournal.TypeManifest || folded[0].Fingerprint != "fp-new" {
		t.Fatalf("record 0 = %+v, want latest manifest", folded[0])
	}
	counts := map[string]int{}
	for _, r := range folded {
		counts[r.Type+":"+r.Job]++
	}
	if counts["job-submit:j1"] != 0 || counts["job-start:j1"] != 0 {
		t.Fatal("terminal job j1 kept its submit/start records")
	}
	if counts["job-finish:j1"] != 1 {
		t.Fatal("terminal record of j1 lost")
	}
	if counts["job-submit:j2"] != 1 || counts["job-start:j2"] != 1 {
		t.Fatalf("pending j2 records wrong: %v", counts)
	}
	if counts["job-submit:j3"] != 1 {
		t.Fatal("pending j3 submit lost")
	}
	// Submit order survives: j2 before j3.
	if rp.Order[0] != "j1" && rp.Order[0] != "j2" {
		t.Fatalf("order = %v", rp.Order)
	}
	var pendingOrder []string
	for _, id := range rp.Order {
		if !rp.Jobs[id].State.Terminal() {
			pendingOrder = append(pendingOrder, id)
		}
	}
	if len(pendingOrder) != 2 || pendingOrder[0] != "j2" || pendingOrder[1] != "j3" {
		t.Fatalf("pending re-enqueue order = %v", pendingOrder)
	}
}
