// HTTP surface of the daemon: submit/status/result/cancel, SSE
// progress streaming, Prometheus /metrics, and per-endpoint RED
// accounting (requests, errors, duration) recorded into the shared
// registry so one scrape shows traffic and scan work side by side.
package scand

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /jobs?tenant=T&name=N   submit (JSON {"name","sources"} or tarball body)
//	GET    /jobs/{id}              job status
//	GET    /jobs/{id}/result       canonical report of a finished job
//	GET    /jobs/{id}/events       SSE stream of lifecycle + span events
//	DELETE /jobs/{id}              cancel
//	GET    /metrics                Prometheus text exposition
//	GET    /healthz                liveness (503 once the journal is down)
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /jobs", d.red("submit", d.handleSubmit))
	mux.Handle("GET /jobs/{id}", d.red("status", d.handleStatus))
	mux.Handle("GET /jobs/{id}/result", d.red("result", d.handleResult))
	mux.Handle("GET /jobs/{id}/events", d.red("events", d.handleEvents))
	mux.Handle("DELETE /jobs/{id}", d.red("cancel", d.handleCancel))
	mux.Handle("GET /metrics", d.red("metrics", d.handleMetrics))
	mux.Handle("GET /healthz", d.red("healthz", d.handleHealthz))
	return mux
}

// statusRecorder captures the response code for RED accounting.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer (SSE needs it).
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// red wraps a handler with RED metrics under {endpoint: name}:
// requests/errors/shed counters plus a duration sum+count pair (enough
// for rate() and mean-latency panels without histogram machinery).
func (d *Daemon) red(name string, h http.HandlerFunc) http.Handler {
	labels := map[string]string{"endpoint": name}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		d.reg.Add(labels, "http_requests_total", 1)
		d.reg.Add(labels, "http_request_duration_micros_sum", time.Since(start).Microseconds())
		d.reg.Add(labels, "http_request_duration_count", 1)
		switch {
		case rec.code == http.StatusTooManyRequests:
			d.reg.Add(labels, "http_shed_total", 1)
		case rec.code >= 500:
			d.reg.Add(labels, "http_errors_total", 1)
		}
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
	// RetryAfterMs accompanies 429 responses with the same hint as the
	// Retry-After header, at millisecond precision.
	RetryAfterMs int64 `json:"retryAfterMs,omitempty"`
}

// submitBody is the JSON submit format.
type submitBody struct {
	Name    string            `json:"name"`
	Sources map[string]string `json:"sources"`
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	name := r.URL.Query().Get("name")
	var sources map[string]string
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		var body submitBody
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad JSON body: " + err.Error()})
			return
		}
		if body.Name != "" {
			name = body.Name
		}
		sources = body.Sources
	} else {
		// Anything else is treated as a (possibly gzipped) tarball and
		// run through the hostile-archive gauntlet.
		src, err := IngestTar(r.Body, d.cfg.Ingest)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrArchiveTooLarge) {
				code = http.StatusRequestEntityTooLarge
			}
			writeJSON(w, code, errorBody{Error: err.Error()})
			return
		}
		sources = src
	}
	job, err := d.Submit(tenant, name, sources)
	if err != nil {
		var shed *ShedError
		switch {
		case errors.As(err, &shed):
			// Ceil to whole seconds for the header (the format allows no
			// finer); the JSON body carries the precise hint.
			secs := int64((shed.RetryAfter + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
			writeJSON(w, http.StatusTooManyRequests, errorBody{
				Error:        err.Error(),
				RetryAfterMs: shed.RetryAfter.Milliseconds(),
			})
		case errors.Is(err, ErrDraining), errors.Is(err, ErrJournalDown):
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, err := d.Get(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (d *Daemon) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	raw, err := d.Result(id)
	if err != nil {
		switch {
		case errors.Is(err, ErrUnknownJob):
			writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		default:
			job, gerr := d.Get(id)
			if gerr == nil && !job.State.Terminal() {
				// Not done yet: 409 with the state, so pollers can
				// distinguish "in progress" from "gone wrong".
				writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
				return
			}
			writeJSON(w, http.StatusGone, errorBody{Error: err.Error()})
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(raw)
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	err := d.Cancel(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]string{"status": "cancelling"})
	case errors.Is(err, ErrUnknownJob):
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
	case errors.Is(err, ErrJobTerminal):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	}
}

func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, err := d.Get(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "streaming unsupported"})
		return
	}
	// Subscribe BEFORE the state snapshot: an event landing between the
	// two is then delivered, never lost (at-least-once, with the
	// snapshot possibly duplicating one transition).
	ch, cancel := d.hub.subscribe(id)
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	writeSSE := func(ev Event) {
		fmt.Fprintf(w, "data: %s\n\n", ev.encode())
		flusher.Flush()
	}
	writeSSE(Event{Type: "state", Job: id, State: job.State, Error: job.Error})
	if job.State.Terminal() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			writeSSE(ev)
			if ev.Type == "state" && ev.State.Terminal() {
				return
			}
		}
	}
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Refresh composed gauges at scrape time, then export one atomic
	// snapshot: every value in the scrape reflects a single instant.
	d.mu.Lock()
	depths := d.queue.depths()
	d.mu.Unlock()
	for tenant, depth := range depths {
		d.reg.Set(tenantLabels(tenant), "queue_depth_now", int64(depth))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	d.reg.WritePrometheus(w, "ucheckerd")
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if err := d.Fatal(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
