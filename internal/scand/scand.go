// Package scand is the scan-as-a-service daemon: a long-running front
// end wrapping uchecker.Scanner behind a durable job queue.
//
// The design rule is that the journal IS the queue. A job is accepted
// only once its sources are spooled and a job-submit record is fsynced;
// every later lifecycle transition (start, finish, fail, cancel) is a
// journal record appended before the in-memory state moves. A daemon
// restart therefore recovers the exact queue the dead process held by
// folding the journal (FoldJobs): terminal jobs serve their recorded
// reports, pending jobs re-enqueue in submit order, and — because scans
// are deterministic and reports are canonicalized (wall-clock fields
// zeroed) — a daemon killed at ANY lifecycle boundary resumes to
// byte-identical results. The daemon-chaos matrix enforces exactly
// that.
//
// Crash semantics mirror the batch layer: a journal append failure
// means durability is gone, so the daemon goes fatal — submits are
// rejected, workers stop picking up jobs, in-flight scans are
// cancelled and deliberately NOT journaled (their dangling start
// records make the restarted daemon re-run them). Overload is handled
// before work is spent: per-tenant token buckets and bounded queues
// shed with typed errors carrying deterministic Retry-After hints, and
// a stride scheduler keeps one heavy tenant from starving the rest.
package scand

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/scanjournal"
	"repro/internal/uchecker"
)

// Config configures a Daemon. Dir is required; everything else has
// serviceable defaults.
type Config struct {
	// Dir is the daemon state directory: jobs.journal (the durable
	// queue), cache/ (content-addressed results), spool/ (submitted
	// sources awaiting a terminal record).
	Dir string
	// Scan is the scan configuration. Workers bounds per-scan
	// parallelism; persistence fields (Journal, ResumeFrom, CacheDir)
	// are ignored — the daemon owns persistence. Under Interproc
	// "summary" the daemon points the scanner's cache at Dir/summaries
	// so per-file summary artifacts are shared across jobs.
	Scan uchecker.Options
	// ScanWorkers is the number of concurrently running jobs. Zero or
	// negative selects 1.
	ScanWorkers int
	// JobTimeout bounds one job's scan wall clock; the scan is cancelled
	// at the deadline and the job fails typed. Zero disables.
	JobTimeout time.Duration
	// WatchdogGrace is how long past JobTimeout a cancelled scan may
	// take to acknowledge cancellation before the watchdog declares it
	// wedged, fails the job, and abandons the scan goroutine. Zero
	// selects DefaultWatchdogGrace. Only meaningful with JobTimeout set.
	WatchdogGrace time.Duration
	// Tenants maps tenant name → admission policy; absent tenants get
	// Default.
	Tenants map[string]TenantPolicy
	// Default is the policy for tenants not in Tenants.
	Default TenantPolicy
	// RetryHint is the backoff schedule behind Retry-After hints on shed
	// submits. The zero value selects scanjournal.DefaultRetry.
	RetryHint scanjournal.RetryPolicy
	// MaxJournalRecords / MaxJournalBytes opt into job-journal
	// auto-compaction (see scanjournal.AutoCompact). Zero disables.
	MaxJournalRecords int
	MaxJournalBytes   int64
	// Ingest caps tarball submits. Zero value selects DefaultIngestLimits.
	Ingest IngestLimits
	// FaultHook, when non-nil, fires at the daemon's faultinject seams
	// (JobAccept/JobEnqueue/JobDequeue/JobCheckpoint/JobDrain and the
	// journal's JournalWrite/JournalSync). Production daemons leave it
	// nil.
	FaultHook faultinject.Hook
	// Clock is the admission-control clock, swappable in tests. Nil
	// selects time.Now.
	Clock func() time.Time
	// Registry receives the daemon's metrics. Nil allocates a fresh one.
	Registry *obs.Registry
}

// DefaultWatchdogGrace is the wedge-detection window past JobTimeout.
const DefaultWatchdogGrace = 5 * time.Second

// Typed submit-rejection errors.
var (
	// ErrDraining rejects submits while the daemon drains.
	ErrDraining = errors.New("scand: daemon draining")
	// ErrJournalDown rejects submits after a journal append failure put
	// the daemon into crash semantics.
	ErrJournalDown = errors.New("scand: job journal down")
	// ErrUnknownJob is returned for operations on a job ID the daemon
	// has no record of.
	ErrUnknownJob = errors.New("scand: unknown job")
	// ErrJobTerminal rejects cancelling an already-terminal job.
	ErrJobTerminal = errors.New("scand: job already terminal")
)

// ShedError is a load-shed rejection: the submit was refused before any
// work was spent on it, and RetryAfter is the daemon's backoff hint
// (deterministic-jitter, same schedule as internal retries).
type ShedError struct {
	// Reason is "rate" (token bucket empty) or "queue" (tenant queue
	// full).
	Reason string
	// Tenant is the shed tenant.
	Tenant string
	// RetryAfter is the advertised backoff.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("scand: tenant %q shed (%s), retry after %v", e.Tenant, e.Reason, e.RetryAfter)
}

// Daemon is the scan-as-a-service front end. Open one with Open; serve
// its Handler; stop it with Drain (graceful) or Close (hard).
type Daemon struct {
	cfg     Config
	scanner *uchecker.Scanner
	fp      string
	cache   *scanjournal.Cache
	jw      *scanjournal.Writer
	retry   scanjournal.RetryPolicy
	reg     *obs.Registry
	hub     *eventHub
	now     func() time.Time

	mu         sync.Mutex
	jobs       map[string]*Job
	order      []string
	queue      *fairQueue
	buckets    map[string]*tokenBucket
	shedStreak map[string]int
	seq        int
	fatal      error
	draining   bool

	wake    chan struct{}
	stop    chan struct{} // closed by Close/Drain: workers exit when idle
	drainCh chan struct{} // closed by Drain: batch-layer drain signal
	wg      sync.WaitGroup

	closeOnce sync.Once
}

// Open recovers daemon state from dir and starts the scan workers.
func Open(cfg Config) (*Daemon, error) {
	if cfg.Dir == "" {
		return nil, errors.New("scand: Config.Dir required")
	}
	for _, sub := range []string{"", "spool", "cache"} {
		if err := os.MkdirAll(filepath.Join(cfg.Dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("scand: mkdir: %w", err)
		}
	}
	scanOpts := cfg.Scan
	scanOpts.Journal, scanOpts.ResumeFrom, scanOpts.CacheDir = "", "", ""
	d := &Daemon{
		cfg:        cfg,
		scanner:    uchecker.NewScanner(scanOpts),
		retry:      cfg.RetryHint,
		reg:        cfg.Registry,
		hub:        newEventHub(),
		now:        cfg.Clock,
		jobs:       map[string]*Job{},
		queue:      newFairQueue(),
		buckets:    map[string]*tokenBucket{},
		shedStreak: map[string]int{},
		wake:       make(chan struct{}, 1),
		stop:       make(chan struct{}),
		drainCh:    make(chan struct{}),
	}
	if d.retry == (scanjournal.RetryPolicy{}) {
		d.retry = scanjournal.DefaultRetry
	}
	if d.reg == nil {
		d.reg = obs.NewRegistry()
	}
	if d.now == nil {
		d.now = time.Now
	}
	d.fp = d.scanner.OptionsFingerprint()

	cache, err := scanjournal.OpenCache(filepath.Join(cfg.Dir, "cache"), cfg.FaultHook)
	if err != nil {
		return nil, err
	}
	d.cache = cache

	if err := d.recover(); err != nil {
		return nil, err
	}

	workers := cfg.ScanWorkers
	if workers < 1 {
		workers = 1
	}
	d.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go d.workerLoop()
	}
	return d, nil
}

// journalPath is the job journal inside the state directory.
func (d *Daemon) journalPath() string { return filepath.Join(d.cfg.Dir, "jobs.journal") }

func (d *Daemon) spoolPath(id string) string {
	return filepath.Join(d.cfg.Dir, "spool", id+".src")
}

// recover folds the job journal into daemon state and opens the writer.
func (d *Daemon) recover() error {
	path := d.journalPath()
	var rp *JobReplay
	rec, err := scanjournal.Read(path)
	switch {
	case err != nil && os.IsNotExist(err):
		// Fresh daemon: no journal yet.
	case err != nil:
		return fmt.Errorf("scand: read job journal: %w", err)
	default:
		rp = FoldJobs(rec)
		if rp.Corrupt != nil {
			// Salvage-and-compact before appending after garbage, exactly
			// like same-file batch resume: the valid prefix is the state.
			salvaged := rec.Records[:rp.Salvaged]
			if err := scanjournal.CompactHook(path, d.cfg.FaultHook, salvaged); err != nil {
				return fmt.Errorf("scand: compact corrupt job journal: %w", err)
			}
			d.reg.Add(daemonLabels, "journal_corrupt_recoveries_total", 1)
		}
	}

	var ac *scanjournal.AutoCompact
	if d.cfg.MaxJournalRecords > 0 || d.cfg.MaxJournalBytes > 0 {
		ac = &scanjournal.AutoCompact{
			MaxRecords: d.cfg.MaxJournalRecords,
			MaxBytes:   d.cfg.MaxJournalBytes,
			Fold:       foldJobRecords,
			LockPath:   filepath.Join(d.cfg.Dir, "journal.lock"),
		}
	}
	jw, err := scanjournal.OpenWriterAutoCompact(path, d.cfg.FaultHook, ac)
	if err != nil {
		return err
	}
	d.jw = jw

	if rp == nil || rp.Fingerprint != d.fp {
		// First open, or the scan options changed across the restart: a
		// fresh manifest records the fingerprint every later record is
		// accountable to. Terminal jobs keep their reports (immutable
		// history); pending jobs are re-keyed below.
		if err := d.appendRec(scanjournal.Record{
			Type: scanjournal.TypeManifest, Fingerprint: d.fp, At: time.Now(),
		}); err != nil {
			jw.Close()
			return err
		}
	}
	if rp == nil {
		return nil
	}

	// Rebuild in-memory state; re-enqueue pending jobs in submit order.
	d.jobs = rp.Jobs
	d.order = rp.Order
	for _, id := range rp.Order {
		if n := jobSeq(id); n > d.seq {
			d.seq = n
		}
		job := rp.Jobs[id]
		if job.State.Terminal() {
			d.removeSpool(id)
			continue
		}
		sources, err := d.loadSpool(id)
		if err != nil {
			// The submit record survived but its sources did not: the job
			// cannot run. Fail it typed rather than wedging the queue.
			job.State = JobFailed
			job.Error = "spool lost: " + err.Error()
			if aerr := d.appendRec(scanjournal.Record{
				Type: scanjournal.TypeJobFail, Job: id, Tenant: job.Tenant,
				Name: job.Name, Key: job.Key, Error: job.Error, At: time.Now(),
			}); aerr != nil {
				jw.Close()
				return aerr
			}
			d.reg.Add(daemonLabels, "jobs_failed_total", 1)
			continue
		}
		job.sources = sources
		// Re-key under the current fingerprint: if the options changed,
		// the old key would serve a stale report.
		job.Key = d.jobKey(job.Name, sources)
		job.State = JobSubmitted
		d.queue.push(job.Tenant, d.policy(job.Tenant).weight(), id)
		d.reg.Add(daemonLabels, "jobs_requeued_total", 1)
	}
	d.updateQueueGauges()
	return nil
}

// jobKey derives a job's content address: the scan-options fingerprint
// qualified by the job's target name, over the sources. The name is
// part of the address because the canonical report embeds it — two
// tenants submitting identical sources under different names must each
// get a report carrying their own name, never the other's bytes.
func (d *Daemon) jobKey(name string, sources map[string]string) string {
	return scanjournal.CacheKey(sources, d.fp+"\x00name\x00"+name)
}

// jobSeq parses the numeric tail of a "j%08d" job ID (0 on mismatch).
func jobSeq(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "j%d", &n); err != nil {
		return 0
	}
	return n
}

// policy resolves a tenant's admission policy.
func (d *Daemon) policy(tenant string) TenantPolicy {
	if p, ok := d.cfg.Tenants[tenant]; ok {
		return p
	}
	return d.cfg.Default
}

// appendRec appends one journal record with the batch layer's bounded
// deterministic-jitter retry.
func (d *Daemon) appendRec(rec scanjournal.Record) error {
	_, err := scanjournal.DefaultRetry.Do(rec.Type+":"+rec.Job, func() error {
		return d.jw.Append(rec)
	})
	return err
}

// goFatal puts the daemon into crash semantics: the journal can no
// longer record state, so no state may change. Submits are rejected,
// idle workers stop, and in-flight scans are cancelled WITHOUT terminal
// records — their dangling starts make the restarted daemon re-run
// them.
func (d *Daemon) goFatal(err error) {
	d.mu.Lock()
	if d.fatal == nil {
		d.fatal = err
		for _, job := range d.jobs {
			if job.State == JobRunning && job.cancelScan != nil {
				job.cancelScan()
			}
		}
	}
	d.mu.Unlock()
	d.reg.Add(daemonLabels, "journal_fatal_total", 1)
	d.wakeWorkers()
}

// Fatal reports the crash-semantics error, if the daemon has one.
func (d *Daemon) Fatal() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fatal
}

func (d *Daemon) wakeWorkers() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// daemonLabels is the label set of daemon-level metrics.
var daemonLabels = map[string]string{"scope": "daemon"}

// scanLabels is the label set scan counters merge under.
var scanLabels = map[string]string{"scope": "scans"}

func tenantLabels(tenant string) map[string]string {
	return map[string]string{"tenant": tenant}
}

func (d *Daemon) updateQueueGauges() {
	for tenant, depth := range d.queue.depths() {
		d.reg.Set(tenantLabels(tenant), "queue_depth_now", int64(depth))
	}
}

// --- Spool ---

type spoolEntry struct {
	Name    string            `json:"name"`
	Sources map[string]string `json:"sources"`
}

// writeSpool persists a job's sources before the submit record lands:
// framed (checksummed) JSON behind an atomic write, so a torn spool is
// detected on restart instead of silently scanning garbage.
func (d *Daemon) writeSpool(id string, e spoolEntry) error {
	payload, err := json.Marshal(e)
	if err != nil {
		return err
	}
	return scanjournal.AtomicWrite(d.spoolPath(id), func(w io.Writer) error {
		_, werr := w.Write(scanjournal.Frame(payload))
		return werr
	})
}

func (d *Daemon) loadSpool(id string) (map[string]string, error) {
	data, err := os.ReadFile(d.spoolPath(id))
	if err != nil {
		return nil, err
	}
	payload, err := scanjournal.Unframe(data)
	if err != nil {
		return nil, err
	}
	var e spoolEntry
	if err := json.Unmarshal(payload, &e); err != nil {
		return nil, err
	}
	return e.Sources, nil
}

func (d *Daemon) removeSpool(id string) {
	os.Remove(d.spoolPath(id)) // best-effort: an orphan spool is garbage, not state
}

// --- Submit / query / cancel ---

// Submit admits one job. On success the job is durable (spooled +
// journaled) and queued. Rejections are typed: *ShedError (admission),
// ErrDraining, ErrJournalDown, or an injected JobAccept/JobEnqueue
// fault.
func (d *Daemon) Submit(tenant, name string, sources map[string]string) (Job, error) {
	if tenant == "" {
		tenant = "default"
	}
	if name == "" {
		return Job{}, errors.New("scand: job name required")
	}
	if len(sources) == 0 {
		return Job{}, errors.New("scand: job has no sources")
	}

	d.mu.Lock()
	if d.fatal != nil {
		err := d.fatal
		d.mu.Unlock()
		return Job{}, fmt.Errorf("%w: %v", ErrJournalDown, err)
	}
	if d.draining {
		d.mu.Unlock()
		return Job{}, ErrDraining
	}
	pol := d.policy(tenant)
	bucket, ok := d.buckets[tenant]
	if !ok {
		bucket = newTokenBucket(pol, d.now())
		d.buckets[tenant] = bucket
	}
	if ok, wait := bucket.take(d.now()); !ok {
		streak := d.shedStreak[tenant]
		d.shedStreak[tenant] = streak + 1
		d.mu.Unlock()
		d.shedMetrics(tenant)
		return Job{}, &ShedError{
			Reason: "rate", Tenant: tenant,
			RetryAfter: wait + d.retry.Backoff("rate:"+tenant, min(streak, 6)),
		}
	}
	if d.queue.depth(tenant) >= pol.maxQueue() {
		streak := d.shedStreak[tenant]
		d.shedStreak[tenant] = streak + 1
		d.mu.Unlock()
		d.shedMetrics(tenant)
		return Job{}, &ShedError{
			Reason: "queue", Tenant: tenant,
			RetryAfter: d.retry.Backoff("queue:"+tenant, min(streak, 6)),
		}
	}
	d.shedStreak[tenant] = 0
	if d.cfg.FaultHook != nil {
		if err := d.cfg.FaultHook(faultinject.JobAccept, tenant+":"+name); err != nil {
			d.mu.Unlock()
			return Job{}, err
		}
	}
	d.seq++
	id := fmt.Sprintf("j%08d", d.seq)
	key := d.jobKey(name, sources)
	d.mu.Unlock()

	// Durability, in crash-safe order: spool first, then the submit
	// record. A crash between the two leaves an orphan spool file (cheap
	// garbage) — never a journaled job without sources.
	if err := d.writeSpool(id, spoolEntry{Name: name, Sources: sources}); err != nil {
		return Job{}, fmt.Errorf("scand: spool: %w", err)
	}
	if d.cfg.FaultHook != nil {
		if err := d.cfg.FaultHook(faultinject.JobEnqueue, id); err != nil {
			d.removeSpool(id)
			return Job{}, err
		}
	}
	if err := d.appendRec(scanjournal.Record{
		Type: scanjournal.TypeJobSubmit, Job: id, Tenant: tenant,
		Name: name, Key: key, At: time.Now(),
	}); err != nil {
		d.goFatal(err)
		return Job{}, fmt.Errorf("%w: %v", ErrJournalDown, err)
	}

	job := &Job{ID: id, Tenant: tenant, Name: name, Key: key, State: JobSubmitted, sources: sources}
	d.mu.Lock()
	d.jobs[id] = job
	d.order = append(d.order, id)
	d.queue.push(tenant, pol.weight(), id)
	d.updateQueueGauges()
	snapshot := *job
	d.mu.Unlock()

	d.reg.Add(daemonLabels, "jobs_submitted_total", 1)
	d.hub.publishState(id, JobSubmitted, "")
	d.wakeWorkers()
	return snapshot, nil
}

func (d *Daemon) shedMetrics(tenant string) {
	d.reg.Add(daemonLabels, "jobs_shed_total", 1)
	d.reg.Add(tenantLabels(tenant), "shed_total", 1)
}

// Get returns a snapshot of one job.
func (d *Daemon) Get(id string) (Job, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	job, ok := d.jobs[id]
	if !ok {
		return Job{}, ErrUnknownJob
	}
	return *job, nil
}

// Jobs returns snapshots of all jobs in submit order.
func (d *Daemon) Jobs() []Job {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Job, 0, len(d.order))
	for _, id := range d.order {
		out = append(out, *d.jobs[id])
	}
	return out
}

// Result returns a finished job's canonical report bytes. It prefers
// the journaled report and falls back to the content-addressed cache.
func (d *Daemon) Result(id string) (json.RawMessage, error) {
	d.mu.Lock()
	job, ok := d.jobs[id]
	if !ok {
		d.mu.Unlock()
		return nil, ErrUnknownJob
	}
	state, key, report := job.State, job.Key, job.Report
	jerr := job.Error
	d.mu.Unlock()
	switch state {
	case JobFinished:
		if len(report) > 0 {
			return report, nil
		}
		if raw, ok := d.cache.Get(key); ok {
			return raw, nil
		}
		return nil, fmt.Errorf("scand: job %s finished but its report is unavailable", id)
	case JobFailed, JobCancelled:
		return nil, fmt.Errorf("scand: job %s %s: %s", id, state, jerr)
	default:
		return nil, fmt.Errorf("scand: job %s not terminal (%s)", id, state)
	}
}

// Cancel terminates a job. A queued job is cancelled immediately (this
// call writes the terminal record); a running job gets a cancellation
// request and its worker writes the terminal record — exactly one
// writer either way.
func (d *Daemon) Cancel(id string) error {
	d.mu.Lock()
	job, ok := d.jobs[id]
	if !ok {
		d.mu.Unlock()
		return ErrUnknownJob
	}
	switch job.State {
	case JobFinished, JobFailed, JobCancelled:
		d.mu.Unlock()
		return ErrJobTerminal
	case JobRunning:
		job.cancelRequested = true
		if job.cancelScan != nil {
			job.cancelScan()
		}
		d.mu.Unlock()
		return nil
	}
	if d.fatal != nil {
		err := d.fatal
		d.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrJournalDown, err)
	}
	// Queued (or popped-but-unstarted): this call owns the terminal
	// record. The state flips under the lock, so a worker that popped
	// the job observes Cancelled and skips it.
	job.State = JobCancelled
	job.Error = "cancelled by client"
	d.queue.remove(job.Tenant, id)
	d.updateQueueGauges()
	rec := scanjournal.Record{
		Type: scanjournal.TypeJobCancel, Job: id, Tenant: job.Tenant,
		Name: job.Name, Key: job.Key, Error: job.Error, At: time.Now(),
	}
	d.mu.Unlock()
	if err := d.appendRec(rec); err != nil {
		d.goFatal(err)
		return fmt.Errorf("%w: %v", ErrJournalDown, err)
	}
	d.removeSpool(id)
	d.reg.Add(daemonLabels, "jobs_cancelled_total", 1)
	d.hub.publishState(id, JobCancelled, "cancelled by client")
	return nil
}

// --- Workers ---

func (d *Daemon) workerLoop() {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		if d.fatal != nil || d.draining {
			d.mu.Unlock()
			return
		}
		_, id, ok := d.queue.pop()
		if ok {
			d.updateQueueGauges()
			job := d.jobs[id]
			if job.State != JobSubmitted {
				// Cancelled between enqueue and pop: its terminal record is
				// already owned elsewhere.
				d.mu.Unlock()
				continue
			}
			job.State = JobRunning
			d.mu.Unlock()
			// One buffered wake token can absorb several submits: re-signal
			// so idle siblings check the queue instead of sleeping while
			// work remains.
			d.wakeWorkers()
			d.runJob(job)
			continue
		}
		d.mu.Unlock()
		select {
		case <-d.wake:
		case <-d.stop:
			return
		}
	}
}

// runJob executes one dequeued job end to end. The job's in-memory
// state is already Running; the journal still says submitted until the
// start record lands.
func (d *Daemon) runJob(job *Job) {
	if d.cfg.FaultHook != nil {
		if err := d.cfg.FaultHook(faultinject.JobDequeue, job.ID); err != nil {
			d.goFatal(err)
			return
		}
	}
	if err := d.appendRec(scanjournal.Record{
		Type: scanjournal.TypeJobStart, Job: job.ID, Tenant: job.Tenant,
		Name: job.Name, Key: job.Key, At: time.Now(),
	}); err != nil {
		d.goFatal(err)
		return
	}
	d.reg.Add(daemonLabels, "jobs_running_now", 1)
	d.hub.publishState(job.ID, JobRunning, "")

	// Content-addressed fast path: unchanged sources + unchanged options
	// = a previous run's canonical bytes (often the daemon's own pre-crash
	// run of this very job). Byte-identical by construction.
	if raw, ok := d.cache.Get(job.Key); ok {
		d.reg.Add(daemonLabels, "cache_hits_total", 1)
		d.finishJob(job, scanjournal.TypeJobFinish, raw, "")
		return
	}
	d.reg.Add(daemonLabels, "cache_misses_total", 1)

	ctx, cancel := context.WithCancel(context.Background())
	if d.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), d.cfg.JobTimeout)
	}
	defer cancel()
	d.mu.Lock()
	job.cancelScan = cancel
	cancelled := job.cancelRequested // requested before the start record landed
	d.mu.Unlock()
	if cancelled {
		cancel()
	}

	rep, wedged := d.executeScan(ctx, job)
	if wedged {
		d.finishJob(job, scanjournal.TypeJobFail, nil,
			fmt.Sprintf("watchdog: scan wedged past deadline %v + grace", d.cfg.JobTimeout))
		d.reg.Add(daemonLabels, "watchdog_fired_total", 1)
		return
	}

	d.mu.Lock()
	cancelled = job.cancelRequested
	d.mu.Unlock()
	switch {
	case cancelled:
		d.finishJob(job, scanjournal.TypeJobCancel, nil, "cancelled by client")
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		d.finishJob(job, scanjournal.TypeJobFail, nil,
			fmt.Sprintf("job deadline %v exceeded", d.cfg.JobTimeout))
	case d.Fatal() != nil:
		// The journal died while this scan ran (goFatal cancelled the
		// ctx): the result CANNOT be persisted, so it is discarded — the
		// dangling start re-runs the job on restart.
		return
	default:
		if d.cfg.FaultHook != nil {
			if err := d.cfg.FaultHook(faultinject.JobCheckpoint, job.ID); err != nil {
				d.goFatal(err)
				return
			}
		}
		raw, err := canonicalReport(rep)
		if err != nil {
			d.finishJob(job, scanjournal.TypeJobFail, nil, "encode report: "+err.Error())
			return
		}
		// Cache before the finish record: a crash between the two costs a
		// redundant cache entry, never a finish record whose report bytes
		// were lost.
		if err := d.cache.Put(job.Key, raw); err != nil {
			d.reg.Add(daemonLabels, "cache_put_failures_total", 1)
		}
		d.finishJob(job, scanjournal.TypeJobFinish, raw, "")
		d.reg.Merge(scanLabels, rep.Metrics)
	}
}

// executeScan runs the scan with the watchdog. It returns the report,
// or wedged=true when the scan failed to acknowledge cancellation
// within JobTimeout+WatchdogGrace — the goroutine is then abandoned
// (its late result is discarded because the job is already terminal).
func (d *Daemon) executeScan(ctx context.Context, job *Job) (rep *uchecker.AppReport, wedged bool) {
	scanner := d.jobScanner(job.ID)
	resCh := make(chan *uchecker.AppReport, 1)
	go func() {
		reports := scanner.ScanBatch(ctx, []uchecker.Target{{Name: job.Name, Sources: job.sources}})
		resCh <- reports[0]
	}()
	if d.cfg.JobTimeout <= 0 {
		return <-resCh, false
	}
	grace := d.cfg.WatchdogGrace
	if grace <= 0 {
		grace = DefaultWatchdogGrace
	}
	timer := time.NewTimer(d.cfg.JobTimeout + grace)
	defer timer.Stop()
	select {
	case rep = <-resCh:
		return rep, false
	case <-timer.C:
		return nil, true
	}
}

// jobScanner builds this job's scanner: same options, plus a span hook
// feeding the job's SSE stream.
func (d *Daemon) jobScanner(jobID string) *uchecker.Scanner {
	opts := d.cfg.Scan
	opts.Journal, opts.ResumeFrom, opts.CacheDir = "", "", ""
	if opts.Interproc == interp.InterprocSummary {
		// Cross-job summary reuse: per-file summary artifacts are
		// content-addressed (file bytes + options fingerprint + artifact
		// version), so every job under the same configuration shares
		// them. Reuse shows up in /metrics as summary_cache_hits. The
		// scanner's batch layer also stores report entries in this
		// directory; identical resubmissions are still served by the
		// daemon's own cache first, so that duplication is inert.
		opts.CacheDir = filepath.Join(d.cfg.Dir, "summaries")
	}
	parent := opts.OnSpan
	opts.OnSpan = func(sp obs.Span) {
		d.hub.publishSpan(jobID, sp)
		if parent != nil {
			parent(sp)
		}
	}
	return uchecker.NewScanner(opts)
}

// finishJob writes a job's terminal record and flips its state. Exactly
// one terminal record per job: the caller owns the transition (the
// worker for running jobs), and a journal failure here is fatal —
// the restarted daemon re-runs the job from its dangling start.
func (d *Daemon) finishJob(job *Job, typ string, report json.RawMessage, errText string) {
	rec := scanjournal.Record{
		Type: typ, Job: job.ID, Tenant: job.Tenant, Name: job.Name,
		Key: job.Key, Report: report, Error: errText, At: time.Now(),
	}
	if err := d.appendRec(rec); err != nil {
		d.goFatal(err)
		return
	}
	var state JobState
	var metric string
	switch typ {
	case scanjournal.TypeJobFinish:
		state, metric = JobFinished, "jobs_finished_total"
	case scanjournal.TypeJobFail:
		state, metric = JobFailed, "jobs_failed_total"
	default:
		state, metric = JobCancelled, "jobs_cancelled_total"
	}
	d.mu.Lock()
	job.State = state
	job.Report = report
	job.Error = errText
	job.cancelScan = nil
	d.mu.Unlock()
	d.reg.Add(daemonLabels, metric, 1)
	d.reg.Add(daemonLabels, "jobs_running_now", -1)
	d.removeSpool(job.ID)
	d.hub.publishState(job.ID, state, errText)
}

// canonicalReport serializes a report with its wall-clock fields
// zeroed — the same canonical form the distributed merge uses, and the
// reason a killed-and-restarted daemon's results are byte-identical to
// an uninterrupted run's.
func canonicalReport(rep *uchecker.AppReport) (json.RawMessage, error) {
	c := *rep
	c.Seconds = 0
	c.MemoryMB = 0
	return json.Marshal(&c)
}

// --- Drain / Close ---

// Drain is the graceful SIGTERM path: stop admitting submits, let
// in-flight jobs finish and journal, leave queued jobs submitted in the
// journal (the restarted daemon re-enqueues them), then close the
// journal. Safe to call once; returns when every worker has exited.
func (d *Daemon) Drain() error {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		d.wg.Wait()
		return nil
	}
	d.draining = true
	var inflight []string
	for _, id := range d.order {
		if d.jobs[id].State == JobRunning {
			inflight = append(inflight, id)
		}
	}
	d.mu.Unlock()
	d.reg.Add(daemonLabels, "drain_total", 1)
	for _, id := range inflight {
		if d.cfg.FaultHook != nil {
			if err := d.cfg.FaultHook(faultinject.JobDrain, id); err != nil {
				// A drain-seam fault models a crash mid-drain: stop waiting
				// politely and go fatal — the restarted daemon recovers the
				// same state either way.
				d.goFatal(err)
				break
			}
		}
	}
	close(d.drainCh)
	d.wakeAll()
	d.wg.Wait()
	return d.closeJournal()
}

// Close hard-stops the daemon: cancel in-flight scans (their results
// are NOT journaled — dangling starts re-run on restart), stop workers,
// close the journal. The "kill" of the in-process chaos matrix.
func (d *Daemon) Close() error {
	d.mu.Lock()
	d.draining = true
	if d.fatal == nil {
		// Suppress terminal records for scans that now return cancelled:
		// mark fatal so workers discard results, exactly like a crash.
		d.fatal = errors.New("scand: daemon closed")
	}
	for _, job := range d.jobs {
		if job.State == JobRunning && job.cancelScan != nil {
			job.cancelRequested = false // a hard stop is a crash, not a client cancel
			job.cancelScan()
		}
	}
	d.mu.Unlock()
	d.wakeAll()
	d.wg.Wait()
	return d.closeJournal()
}

func (d *Daemon) wakeAll() {
	d.closeOnce.Do(func() { close(d.stop) })
	d.wakeWorkers()
}

func (d *Daemon) closeJournal() error {
	if d.jw != nil {
		return d.jw.Close()
	}
	return nil
}

// Registry exposes the daemon's metric registry (the /metrics source).
func (d *Daemon) Registry() *obs.Registry { return d.reg }

// Fingerprint exposes the scan-options fingerprint (manifest identity).
func (d *Daemon) Fingerprint() string { return d.fp }
