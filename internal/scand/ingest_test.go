package scand

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"errors"
	"strings"
	"testing"
)

// tarMember describes one entry of a synthetic (possibly hostile) tar.
type tarMember struct {
	name string
	body string
	typ  byte // 0 means tar.TypeReg
	link string
}

func buildTar(t *testing.T, members []tarMember) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	for _, m := range members {
		typ := m.typ
		if typ == 0 {
			typ = tar.TypeReg
		}
		hdr := &tar.Header{
			Name:     m.name,
			Typeflag: typ,
			Mode:     0o644,
			Linkname: m.link,
		}
		if typ == tar.TypeReg {
			hdr.Size = int64(len(m.body))
		}
		if err := tw.WriteHeader(hdr); err != nil {
			t.Fatalf("write header %q: %v", m.name, err)
		}
		if typ == tar.TypeReg {
			if _, err := tw.Write([]byte(m.body)); err != nil {
				t.Fatalf("write body %q: %v", m.name, err)
			}
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatalf("close tar: %v", err)
	}
	return buf.Bytes()
}

func gzipped(t *testing.T, raw []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	gw := gzip.NewWriter(&buf)
	if _, err := gw.Write(raw); err != nil {
		t.Fatalf("gzip: %v", err)
	}
	if err := gw.Close(); err != nil {
		t.Fatalf("gzip close: %v", err)
	}
	return buf.Bytes()
}

func TestIngestTarHostileArchives(t *testing.T) {
	benign := tarMember{name: "plugin.php", body: "<?php echo 1;"}
	cases := []struct {
		name    string
		members []tarMember
		limits  IngestLimits
		wantErr error  // nil means accept
		errHint string // substring of the rejection message
	}{
		{
			name:    "benign",
			members: []tarMember{benign, {name: "inc/util.php", body: "<?php"}},
		},
		{
			name: "directories skipped",
			members: []tarMember{
				{name: "inc/", typ: tar.TypeDir},
				benign,
			},
		},
		{
			name: "symlink stripped not followed",
			members: []tarMember{
				{name: "evil-link.php", typ: tar.TypeSymlink, link: "/etc/passwd"},
				benign,
			},
		},
		{
			name: "hardlink stripped",
			members: []tarMember{
				{name: "evil-hard.php", typ: tar.TypeLink, link: "plugin.php"},
				benign,
			},
		},
		{
			name: "symlink-only archive has no sources",
			members: []tarMember{
				{name: "only-link.php", typ: tar.TypeSymlink, link: "x"},
			},
			wantErr: ErrHostileArchive,
			errHint: "no regular files",
		},
		{
			name:    "fifo rejected",
			members: []tarMember{benign, {name: "pipe", typ: tar.TypeFifo}},
			wantErr: ErrHostileArchive,
			errHint: "non-regular type",
		},
		{
			name:    "character device rejected",
			members: []tarMember{benign, {name: "dev", typ: tar.TypeChar}},
			wantErr: ErrHostileArchive,
			errHint: "non-regular type",
		},
		{
			name:    "parent traversal rejected",
			members: []tarMember{{name: "../evil.php", body: "x"}},
			wantErr: ErrHostileArchive,
			errHint: "escapes the archive root",
		},
		{
			name:    "nested traversal rejected",
			members: []tarMember{{name: "a/../../evil.php", body: "x"}},
			wantErr: ErrHostileArchive,
			errHint: "escapes the archive root",
		},
		{
			name:    "absolute path rejected",
			members: []tarMember{{name: "/etc/cron.d/evil", body: "x"}},
			wantErr: ErrHostileArchive,
			errHint: "absolute member path",
		},
		{
			name:    "backslash path rejected",
			members: []tarMember{{name: `..\..\evil.php`, body: "x"}},
			wantErr: ErrHostileArchive,
			errHint: "backslash",
		},
		{
			name:    "windows drive path rejected",
			members: []tarMember{{name: "C:/Windows/evil.php", body: "x"}},
			wantErr: ErrHostileArchive,
			errHint: "absolute member path",
		},
		{
			name:    "one hostile member poisons the whole archive",
			members: []tarMember{benign, {name: "../evil.php", body: "x"}},
			wantErr: ErrHostileArchive,
			errHint: "escapes the archive root",
		},
		{
			name:    "duplicate member rejected",
			members: []tarMember{benign, {name: "./plugin.php", body: "other"}},
			wantErr: ErrHostileArchive,
			errHint: "duplicate member",
		},
		{
			name:    "empty archive rejected",
			members: nil,
			wantErr: ErrHostileArchive,
			errHint: "no regular files",
		},
		{
			name:    "dot member path rejected",
			members: []tarMember{{name: "./", body: "", typ: tar.TypeDir}, {name: ".", body: "x"}},
			wantErr: ErrHostileArchive,
			errHint: "empty member path",
		},
		{
			name:    "per-file cap",
			members: []tarMember{{name: "big.php", body: strings.Repeat("a", 32)}},
			limits:  IngestLimits{MaxFileBytes: 16},
			wantErr: ErrArchiveTooLarge,
		},
		{
			name: "total cap",
			members: []tarMember{
				{name: "a.php", body: strings.Repeat("a", 16)},
				{name: "b.php", body: strings.Repeat("b", 16)},
			},
			limits:  IngestLimits{MaxFileBytes: 20, MaxTotalBytes: 24},
			wantErr: ErrArchiveTooLarge,
		},
		{
			name: "file-count cap",
			members: []tarMember{
				{name: "a.php", body: "x"},
				{name: "b.php", body: "y"},
			},
			limits:  IngestLimits{MaxFiles: 1},
			wantErr: ErrArchiveTooLarge,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := buildTar(t, tc.members)
			for _, compressed := range []bool{false, true} {
				body := raw
				if compressed {
					body = gzipped(t, raw)
				}
				sources, err := IngestTar(bytes.NewReader(body), tc.limits)
				if tc.wantErr == nil {
					if err != nil {
						t.Fatalf("compressed=%v: unexpected reject: %v", compressed, err)
					}
					if _, ok := sources["plugin.php"]; !ok {
						t.Fatalf("compressed=%v: plugin.php missing from %v", compressed, sources)
					}
					for name := range sources {
						if strings.Contains(name, "..") || strings.HasPrefix(name, "/") {
							t.Fatalf("unsafe extracted name %q", name)
						}
					}
					continue
				}
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("compressed=%v: got err %v, want %v", compressed, err, tc.wantErr)
				}
				if tc.errHint != "" && !strings.Contains(err.Error(), tc.errHint) {
					t.Fatalf("error %q does not mention %q", err, tc.errHint)
				}
				if sources != nil {
					t.Fatalf("rejected archive still returned sources: %v", sources)
				}
			}
		})
	}
}

func TestIngestTarBadStreams(t *testing.T) {
	// Gzip magic followed by garbage: rejected as hostile, not a panic.
	if _, err := IngestTar(bytes.NewReader([]byte{0x1f, 0x8b, 0xff, 0x00, 0x01}), IngestLimits{}); !errors.Is(err, ErrHostileArchive) {
		t.Fatalf("bad gzip: got %v, want ErrHostileArchive", err)
	}
	// Plain garbage that is neither gzip nor tar.
	if _, err := IngestTar(strings.NewReader(strings.Repeat("not a tar", 100)), IngestLimits{}); !errors.Is(err, ErrHostileArchive) {
		t.Fatalf("garbage: got %v, want ErrHostileArchive", err)
	}
	// A truncated but well-started tar stream.
	raw := buildTar(t, []tarMember{{name: "a.php", body: strings.Repeat("x", 4096)}})
	if _, err := IngestTar(bytes.NewReader(raw[:700]), IngestLimits{}); !errors.Is(err, ErrHostileArchive) {
		t.Fatalf("truncated tar: got %v, want ErrHostileArchive", err)
	}
}

// A member whose header understates its size must still be bounded: the
// per-file cap applies to actually-extracted bytes, so a crafted stream
// cannot smuggle more than MaxFileBytes per member into memory.
func TestIngestTarExtractedByteCapIsStreaming(t *testing.T) {
	raw := buildTar(t, []tarMember{
		{name: "a.php", body: strings.Repeat("a", 100)},
		{name: "b.php", body: strings.Repeat("b", 100)},
		{name: "c.php", body: strings.Repeat("c", 100)},
	})
	_, err := IngestTar(bytes.NewReader(raw), IngestLimits{MaxFileBytes: 200, MaxTotalBytes: 150})
	if !errors.Is(err, ErrArchiveTooLarge) {
		t.Fatalf("got %v, want ErrArchiveTooLarge", err)
	}
}
