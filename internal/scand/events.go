// Per-job event streaming: the obs span/counter hooks surfaced as SSE.
//
// The hub is deliberately lossy for slow consumers: a subscriber that
// cannot keep up has events dropped (and counted), never blocks a scan
// worker — observability must not become backpressure on the pipeline
// it observes.
package scand

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Event is one item of a job's progress stream.
type Event struct {
	// Type is "state" (lifecycle transition) or "span" (one finished
	// obs span of the job's scan).
	Type string `json:"type"`
	// Job is the job ID.
	Job string `json:"job"`
	// State is the new lifecycle state (state events).
	State JobState `json:"state,omitempty"`
	// Error is the terminal error text (failed/cancelled state events).
	Error string `json:"error,omitempty"`
	// Span is the span name (span events).
	Span string `json:"span,omitempty"`
	// DurMicros is the span duration in microseconds (span events).
	DurMicros int64 `json:"durMicros,omitempty"`
}

// subBuffer bounds one subscriber's in-flight events.
const subBuffer = 256

type eventHub struct {
	mu      sync.Mutex
	subs    map[string]map[chan Event]struct{} // jobID → subscribers
	dropped atomic.Int64
}

func newEventHub() *eventHub {
	return &eventHub{subs: map[string]map[chan Event]struct{}{}}
}

// subscribe registers a listener for one job's events. The returned
// cancel must be called exactly once; the channel is never closed by
// the hub (the subscriber stops reading instead).
func (h *eventHub) subscribe(jobID string) (<-chan Event, func()) {
	ch := make(chan Event, subBuffer)
	h.mu.Lock()
	set, ok := h.subs[jobID]
	if !ok {
		set = map[chan Event]struct{}{}
		h.subs[jobID] = set
	}
	set[ch] = struct{}{}
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		delete(h.subs[jobID], ch)
		if len(h.subs[jobID]) == 0 {
			delete(h.subs, jobID)
		}
		h.mu.Unlock()
	}
}

func (h *eventHub) publish(jobID string, ev Event) {
	h.mu.Lock()
	for ch := range h.subs[jobID] {
		select {
		case ch <- ev:
		default:
			h.dropped.Add(1)
		}
	}
	h.mu.Unlock()
}

func (h *eventHub) publishState(jobID string, state JobState, errText string) {
	h.publish(jobID, Event{Type: "state", Job: jobID, State: state, Error: errText})
}

func (h *eventHub) publishSpan(jobID string, sp obs.Span) {
	h.publish(jobID, Event{
		Type: "span", Job: jobID, Span: sp.Name,
		DurMicros: int64(sp.Dur() / time.Microsecond),
	})
}

// Dropped reports how many events were dropped on slow subscribers.
func (h *eventHub) Dropped() int64 { return h.dropped.Load() }

// encode renders an Event as one SSE data payload.
func (ev Event) encode() []byte {
	b, _ := json.Marshal(ev)
	return b
}
