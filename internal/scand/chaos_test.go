// The daemon-chaos matrix: kill the daemon at every job-lifecycle
// journal boundary and prove the restarted daemon resumes every
// accepted job to byte-identical canonical results, with no job lost
// and never more than one terminal record per job. `make daemon-chaos`
// runs this file under -race.
package scand

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/scanjournal"
	"repro/internal/uchecker"
)

// chaosApps is the chaos workload: four deterministic plugins, half of
// them with a planted vulnerability so the byte-compare covers findings.
func chaosApps() []corpus.ScreeningApp {
	return corpus.RandomPlugins(7, 4, 2)
}

func chaosConfig(dir string, scanWorkers int) Config {
	return Config{
		Dir:         dir,
		Scan:        uchecker.Options{Workers: 2, Budgets: uchecker.Budgets{MaxPaths: 20000}},
		ScanWorkers: scanWorkers,
	}
}

// chaosBaseline runs the workload on an uninterrupted daemon and
// returns each app's canonical report bytes.
func chaosBaseline(t *testing.T, scanWorkers int) map[string][]byte {
	t.Helper()
	apps := chaosApps()
	d := mustOpen(t, chaosConfig(t.TempDir(), scanWorkers))
	defer d.Close()
	ids := submitAll(t, d, "acme", apps)
	jobs := waitTerminal(t, d, ids, 300*time.Second, false)
	out := map[string][]byte{}
	for i, id := range ids {
		if jobs[id].State != JobFinished {
			t.Fatalf("baseline job %s = %s (%s)", id, jobs[id].State, jobs[id].Error)
		}
		raw, err := d.Result(id)
		if err != nil {
			t.Fatalf("baseline result: %v", err)
		}
		out[apps[i].Name] = raw
	}
	return out
}

// countJournalAppends runs the workload cleanly and counts JournalWrite
// seam firings — the size of the kill matrix.
func countJournalAppends(t *testing.T, scanWorkers int) int {
	t.Helper()
	var count atomic.Int64
	cfg := chaosConfig(t.TempDir(), scanWorkers)
	cfg.FaultHook = func(p faultinject.Point, detail string) error {
		if p == faultinject.JournalWrite {
			count.Add(1)
		}
		return nil
	}
	d := mustOpen(t, cfg)
	defer d.Close()
	ids := submitAll(t, d, "acme", chaosApps())
	waitTerminal(t, d, ids, 300*time.Second, false)
	return int(count.Load())
}

// verifyChaosOutcome asserts the daemon-chaos acceptance invariants on
// a finished state directory: every app finished byte-identically to
// the baseline, the journal folds cleanly, and no job carries more than
// one terminal record.
func verifyChaosOutcome(t *testing.T, d *Daemon, baseline map[string][]byte, label string) {
	t.Helper()
	byName := map[string]Job{}
	for _, j := range d.Jobs() {
		if prev, dup := byName[j.Name]; dup {
			t.Fatalf("%s: app %q double-submitted (jobs %s and %s)", label, j.Name, prev.ID, j.ID)
		}
		byName[j.Name] = j
	}
	for name, want := range baseline {
		j, ok := byName[name]
		if !ok {
			t.Fatalf("%s: app %q lost", label, name)
		}
		if j.State != JobFinished {
			t.Fatalf("%s: job %s (%s) = %s (%s)", label, j.ID, name, j.State, j.Error)
		}
		raw, err := d.Result(j.ID)
		if err != nil {
			t.Fatalf("%s: result %s: %v", label, j.ID, err)
		}
		if !bytes.Equal(raw, want) {
			t.Fatalf("%s: report of %q differs from the uninterrupted baseline\n got: %s\nwant: %s", label, name, raw, want)
		}
	}

	rec, err := scanjournal.Read(d.journalPath())
	if err != nil {
		t.Fatalf("%s: read journal: %v", label, err)
	}
	rp := FoldJobs(rec)
	if rp.Corrupt != nil {
		t.Fatalf("%s: journal corrupt after recovery: %+v", label, rp.Corrupt)
	}
	terminals := map[string]int{}
	for _, r := range rec.Records {
		switch r.Type {
		case scanjournal.TypeJobFinish, scanjournal.TypeJobFail, scanjournal.TypeJobCancel:
			terminals[r.Job]++
		}
	}
	for id, n := range terminals {
		if n > 1 {
			t.Fatalf("%s: job %s has %d terminal records (double report)", label, id, n)
		}
	}
}

// chaosRun kills the daemon at the n-th journal append, restarts it
// clean, retries rejected submits like a real client, and verifies the
// invariants against the baseline.
func chaosRun(t *testing.T, scanWorkers, n int, baseline map[string][]byte) {
	t.Helper()
	label := fmt.Sprintf("workers=%d kill@append=%d", scanWorkers, n)
	dir := t.TempDir()
	apps := chaosApps()

	cfg := chaosConfig(dir, scanWorkers)
	cfg.FaultHook = faultinject.FailAfter(faultinject.JournalWrite, "", n)
	d, err := Open(cfg)
	if err != nil {
		t.Fatalf("%s: open: %v", label, err)
	}
	accepted := map[string]bool{}
	var ids []string
	for _, app := range apps {
		job, err := d.Submit("acme", app.Name, app.Sources)
		if err == nil {
			accepted[app.Name] = true
			ids = append(ids, job.ID)
		} else if !errors.Is(err, ErrJournalDown) {
			t.Fatalf("%s: submit %s: unexpected error %v", label, app.Name, err)
		}
	}
	// Run until every accepted job is terminal or the injected crash
	// stops the world, then hard-stop (the "kill").
	waitTerminal(t, d, ids, 300*time.Second, true)
	d.Close()

	// Restart without the fault; the journal is the queue.
	d2 := mustOpen(t, chaosConfig(dir, scanWorkers))
	defer d2.Close()
	for _, app := range apps {
		if accepted[app.Name] {
			continue
		}
		// The client's submit was rejected with a typed error pre-crash;
		// it retries against the healthy daemon.
		if _, err := d2.Submit("acme", app.Name, app.Sources); err != nil {
			t.Fatalf("%s: retry submit %s: %v", label, app.Name, err)
		}
	}
	var allIDs []string
	for _, j := range d2.Jobs() {
		allIDs = append(allIDs, j.ID)
	}
	if len(allIDs) != len(apps) {
		t.Fatalf("%s: %d jobs after restart, want %d", label, len(allIDs), len(apps))
	}
	waitTerminal(t, d2, allIDs, 300*time.Second, false)
	verifyChaosOutcome(t, d2, baseline, label)
}

// TestDaemonChaosMatrix is the tentpole acceptance test: a kill at
// EVERY journal append boundary (submit, start, finish of every job,
// plus the manifest) at 1 and 4 scan workers.
func TestDaemonChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix skipped in -short")
	}
	baseline := chaosBaseline(t, 1)
	// Determinism across worker counts is a precondition of comparing
	// every matrix cell against one baseline.
	for name, want := range chaosBaseline(t, 4) {
		if !bytes.Equal(want, baseline[name]) {
			t.Fatalf("baseline differs between 1 and 4 scan workers for %q", name)
		}
	}
	killPoints := 0
	for _, workers := range []int{1, 4} {
		total := countJournalAppends(t, workers)
		// 1 manifest + submit/start/finish per app on a clean run.
		if want := 1 + 3*len(chaosApps()); total != want {
			t.Fatalf("clean run at %d workers wrote %d journal records, want %d", workers, total, want)
		}
		killPoints = total
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			for n := 1; n <= total; n++ {
				chaosRun(t, workers, n, baseline)
			}
		})
	}
	// Archive the matrix shape and the baseline canonical reports every
	// cell was byte-compared against when the harness asks for it.
	if out := os.Getenv("DAEMON_CHAOS_OUT"); out != "" {
		type appReport struct {
			Name   string          `json:"name"`
			Report json.RawMessage `json:"report"`
		}
		matrix := struct {
			ScanWorkers []int       `json:"scanWorkers"`
			KillPoints  int         `json:"killPoints"`
			Apps        []appReport `json:"apps"`
		}{ScanWorkers: []int{1, 4}, KillPoints: killPoints}
		for _, app := range chaosApps() {
			matrix.Apps = append(matrix.Apps, appReport{Name: app.Name, Report: baseline[app.Name]})
		}
		raw, err := json.MarshalIndent(matrix, "", "  ")
		if err != nil {
			t.Fatalf("encode chaos matrix: %v", err)
		}
		if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
			t.Errorf("archive chaos matrix: %v", err)
		}
	}
}

// TestDaemonSeamCrashes drives each daemon-specific faultinject seam to
// a crash and proves restart-resume at that exact boundary.
func TestDaemonSeamCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("seam crashes skipped in -short")
	}
	baseline := chaosBaseline(t, 2)
	apps := chaosApps()

	runSeam := func(t *testing.T, hook faultinject.Hook, viaDrain bool) {
		dir := t.TempDir()
		cfg := chaosConfig(dir, 2)
		cfg.FaultHook = hook
		d := mustOpen(t, cfg)
		var ids []string
		for _, app := range apps {
			if job, err := d.Submit("acme", app.Name, app.Sources); err == nil {
				ids = append(ids, job.ID)
			}
		}
		if viaDrain {
			d.Drain()
		} else {
			waitTerminal(t, d, ids, 300*time.Second, true)
		}
		d.Close()

		d2 := mustOpen(t, chaosConfig(dir, 2))
		defer d2.Close()
		have := map[string]bool{}
		for _, j := range d2.Jobs() {
			have[j.Name] = true
		}
		for _, app := range apps {
			if !have[app.Name] {
				if _, err := d2.Submit("acme", app.Name, app.Sources); err != nil {
					t.Fatalf("retry submit: %v", err)
				}
			}
		}
		var allIDs []string
		for _, j := range d2.Jobs() {
			allIDs = append(allIDs, j.ID)
		}
		waitTerminal(t, d2, allIDs, 300*time.Second, false)
		verifyChaosOutcome(t, d2, baseline, t.Name())
	}

	t.Run("dequeue", func(t *testing.T) {
		runSeam(t, faultinject.FailAfter(faultinject.JobDequeue, "", 1), false)
	})
	t.Run("checkpoint", func(t *testing.T) {
		runSeam(t, faultinject.FailAfter(faultinject.JobCheckpoint, "", 1), false)
	})
	t.Run("drain", func(t *testing.T) {
		runSeam(t, faultinject.FailAfter(faultinject.JobDrain, "", 0), true)
	})
}

// --- Subprocess kill -9 variant ---

// TestDaemonChaosKillNineHelper is re-exec'd by TestDaemonChaosKillNine
// as the victim daemon process. It opens a daemon in the directory from
// the environment, submits the chaos workload (slowing scans so the
// parent's SIGKILL lands mid-processing), signals readiness, and waits
// to be killed.
func TestDaemonChaosKillNineHelper(t *testing.T) {
	dir := os.Getenv("UCHECKERD_CHAOS_DIR")
	if dir == "" {
		t.Skip("helper for TestDaemonChaosKillNine")
	}
	cfg := chaosConfig(dir, 2)
	cfg.Scan.FaultHook = faultinject.SleepOn(faultinject.RootStart, "", 5*time.Millisecond)
	d, err := Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper open: %v\n", err)
		os.Exit(1)
	}
	for _, app := range chaosApps() {
		if _, err := d.Submit("acme", app.Name, app.Sources); err != nil {
			fmt.Fprintf(os.Stderr, "helper submit: %v\n", err)
			os.Exit(1)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "submitted.ok"), []byte("ok\n"), 0o644); err != nil {
		os.Exit(1)
	}
	time.Sleep(120 * time.Second) // the parent SIGKILLs long before this
	os.Exit(0)
}

// TestDaemonChaosKillNine SIGKILLs a real daemon process mid-scan — no
// deferred cleanup, no graceful anything — and proves an in-process
// reopen of the same state directory resumes to baseline-identical
// results.
func TestDaemonChaosKillNine(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill test skipped in -short")
	}
	dir := t.TempDir()
	baseline := chaosBaseline(t, 2)

	cmd := exec.Command(os.Args[0], "-test.run=TestDaemonChaosKillNineHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "UCHECKERD_CHAOS_DIR="+dir)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start helper: %v", err)
	}
	defer cmd.Process.Kill()

	// Wait for all submits to be journaled, then for at least one job to
	// be mid-scan (a start record without a terminal record).
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(dir, "submitted.ok")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("helper never signalled readiness; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for {
		rec, err := scanjournal.Read(filepath.Join(dir, "jobs.journal"))
		if err == nil {
			starts := 0
			for _, r := range rec.Records {
				if r.Type == scanjournal.TypeJobStart {
					starts++
				}
			}
			if starts > 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no job ever started in the helper; output:\n%s", out.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // land the kill mid-processing
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill helper: %v", err)
	}
	cmd.Wait() // expected to report the kill; the state dir is what matters

	d := mustOpen(t, chaosConfig(dir, 2))
	defer d.Close()
	jobs := d.Jobs()
	if len(jobs) != len(chaosApps()) {
		t.Fatalf("%d jobs recovered, want %d; helper output:\n%s", len(jobs), len(chaosApps()), out.String())
	}
	var ids []string
	for _, j := range jobs {
		ids = append(ids, j.ID)
	}
	waitTerminal(t, d, ids, 300*time.Second, false)
	verifyChaosOutcome(t, d, baseline, "kill -9")
}
