package report

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/uchecker"
)

func scan(t *testing.T, sources map[string]string, opts uchecker.Options) *uchecker.AppReport {
	t.Helper()
	rep, err := uchecker.NewScanner(opts).Scan(context.Background(), uchecker.Target{
		Name:    "sarif-app",
		Sources: sources,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestToSARIFVulnerable(t *testing.T) {
	rep := scan(t, map[string]string{
		"up.php": `<?php
$d = wp_upload_dir();
move_uploaded_file($_FILES['f']['tmp_name'], $d['path'] . "/" . $_FILES['f']['name']);
`,
	}, uchecker.Options{})
	data, err := ToSARIF(rep)
	if err != nil {
		t.Fatalf("ToSARIF: %v", err)
	}

	// Valid JSON with the expected schema markers.
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc["version"] != "2.1.0" {
		t.Errorf("version = %v", doc["version"])
	}
	s := string(data)
	for _, want := range []string{
		`"unrestricted-file-upload"`,
		`"uchecker-go"`,
		`"level": "error"`,
		`"startLine": 3`,
		`"uri": "up.php"`,
		"relatedLocations",
		"exploitPath",
		"witness",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("SARIF missing %s:\n%s", want, s)
		}
	}
}

func TestToSARIFAdminGatedIsWarning(t *testing.T) {
	rep := scan(t, map[string]string{
		"admin.php": `<?php
add_action('admin_menu', 'adm_upload');
function adm_upload() {
	move_uploaded_file($_FILES['f']['tmp_name'], "/u/" . $_FILES['f']['name']);
}
`,
	}, uchecker.Options{ModelAdminGating: true})
	data, err := ToSARIF(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"level": "warning"`) {
		t.Errorf("admin-gated finding should be a warning:\n%s", data)
	}
}

func TestToSARIFCleanApp(t *testing.T) {
	rep := scan(t, map[string]string{"ok.php": `<?php echo "fine";`}, uchecker.Options{})
	data, err := ToSARIF(rep)
	if err != nil {
		t.Fatal(err)
	}
	var doc sarifLog
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 1 || len(doc.Runs[0].Results) != 0 {
		t.Errorf("clean app should produce zero results: %+v", doc.Runs)
	}
	// results must serialize as [] (not null) for SARIF consumers.
	if !strings.Contains(string(data), `"results": []`) {
		t.Errorf("results must be an empty array:\n%s", data)
	}
}

func TestWitnessStringDeterministic(t *testing.T) {
	rep := scan(t, map[string]string{
		"w.php": `<?php
move_uploaded_file($_FILES['f']['tmp_name'], "/u/" . $_FILES['f']['name']);
`,
	}, uchecker.Options{})
	if len(rep.Findings) == 0 {
		t.Fatal("no findings")
	}
	a := witnessString(rep.Findings[0])
	b := witnessString(rep.Findings[0])
	if a != b || a == "" {
		t.Errorf("witness string: %q vs %q", a, b)
	}
}
