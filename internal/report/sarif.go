// Package report renders scan results in interchange formats. Besides the
// human-readable text the CLI prints, it emits SARIF 2.1.0 — the static
// analysis results interchange format GitHub code scanning and most
// security dashboards ingest — so this reproduction is usable as a real
// scanner, not only as an experiment harness.
package report

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/uchecker"
)

// SARIF document structures (the subset of SARIF 2.1.0 the findings need).

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	Version        string      `json:"version"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID              string            `json:"id"`
	Name            string            `json:"name"`
	ShortDesc       sarifText         `json:"shortDescription"`
	FullDesc        sarifText         `json:"fullDescription"`
	Help            sarifText         `json:"help"`
	DefaultSeverity map[string]string `json:"defaultConfiguration"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
	// RelatedLocations carry the other source lines contributing to the
	// constraints (the paper's source-level feedback).
	RelatedLocations []sarifLocation   `json:"relatedLocations,omitempty"`
	Properties       map[string]string `json:"properties,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
	Message          *sarifText    `json:"message,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

// ruleID is the single rule this scanner reports.
const ruleID = "unrestricted-file-upload"

// ToSARIF renders an AppReport as a SARIF 2.1.0 JSON document. Admin-gated
// findings are downgraded to "warning"; verified findings are "error".
func ToSARIF(rep *uchecker.AppReport) ([]byte, error) {
	run := sarifRun{
		Tool: sarifTool{Driver: sarifDriver{
			Name:    "uchecker-go",
			Version: "1.0.0",
			Rules: []sarifRule{{
				ID:   ruleID,
				Name: "UnrestrictedFileUpload",
				ShortDesc: sarifText{
					Text: "Unrestricted file upload",
				},
				FullDesc: sarifText{
					Text: "An attacker-controlled filename can reach a file-writing sink with an executable extension (.php/.php5), allowing remote code execution once the uploaded file is requested.",
				},
				Help: sarifText{
					Text: "Validate the extension against a whitelist before persisting the upload, or store under a server-generated name with a constant safe extension.",
				},
				DefaultSeverity: map[string]string{"level": "error"},
			}},
		}},
		Results: []sarifResult{},
	}
	for _, f := range rep.Findings {
		level := "error"
		if f.AdminGated {
			level = "warning"
		}
		msg := fmt.Sprintf("%s() stores an upload whose name the client controls; a %q-style name executes on the server.",
			f.Sink, exploitHint(f))
		res := sarifResult{
			RuleID:  ruleID,
			Level:   level,
			Message: sarifText{Text: msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line},
				},
			}},
			Properties: map[string]string{
				"seDst":       f.SeDst,
				"seReach":     f.SeReach,
				"exploitPath": f.ExploitPath,
				"witness":     witnessString(f),
			},
		}
		for _, ln := range f.Lines {
			if ln == f.Line {
				continue
			}
			res.RelatedLocations = append(res.RelatedLocations, sarifLocation{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: ln},
				},
				Message: &sarifText{Text: "contributes to the upload path or its guard"},
			})
		}
		run.Results = append(run.Results, res)
	}
	doc := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	return json.MarshalIndent(doc, "", "  ")
}

func exploitHint(f uchecker.Finding) string {
	if f.ExploitPath != "" {
		return f.ExploitPath
	}
	return "shell.php"
}

// witnessString renders the witness deterministically (sorted keys).
func witnessString(f uchecker.Finding) string {
	keys := make([]string, 0, len(f.Witness))
	for k := range f.Witness {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s=%s", k, f.Witness[k])
	}
	return out
}
