package uchecker

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/scanjournal"
	"repro/internal/summary"
)

// summaryComparableFingerprint is the cross-strategy projection of a
// report: findings, verdicts, roots, locality measurements, parse
// errors and failure taxonomy — everything Table III reports except the
// exploration-size columns (paths, objects, objects/path, sink
// candidates), which the summary strategy legitimately shrinks, and the
// metrics map, which carries strategy-specific counters.
func summaryComparableFingerprint(t *testing.T, rep *AppReport) string {
	t.Helper()
	clone := *rep
	clone.Paths = 0
	clone.Objects = 0
	clone.ObjectsPerPath = 0
	clone.SinkCount = 0
	clone.Metrics = nil
	return reportFingerprint(t, &clone)
}

// summaryModeFingerprint is the within-strategy projection: everything
// except the summary-only counters, which count work (merges, cache
// hits) that may be scheduled differently across worker counts while
// the report stays byte-identical.
func summaryModeFingerprint(t *testing.T, rep *AppReport) string {
	t.Helper()
	clone := *rep
	if clone.Metrics != nil {
		m := obs.NewMetrics()
		for k, v := range clone.Metrics {
			if strings.HasPrefix(k, "summary_") || k == "interp_paths_avoided" {
				continue
			}
			m[k] = v
		}
		clone.Metrics = m
	}
	return reportFingerprint(t, &clone)
}

// TestSummaryDifferentialCorpus is the interproc-strategy acceptance
// suite: every corpus application is scanned under inline and summary
// strategies at Workers=1 and Workers=4, and
//
//   - within each strategy, the two worker counts must agree
//     byte-for-byte;
//   - across strategies, findings and every Table III verdict must be
//     byte-identical — except where the inline strategy aborted on a
//     path budget, which is precisely the failure mode summaries exist
//     to remove. There the summary report must show a clean completion
//     (no abort, no retries, no degraded findings) and, for known
//     vulnerable apps, the vulnerable verdict the inline run missed.
//
// The 20000-path budget keeps the inline Cimy abort affordable while
// still reproducing it (it needs 248832 paths).
func TestSummaryDifferentialCorpus(t *testing.T) {
	budgets := Budgets{MaxPaths: 20000}
	for _, app := range corpus.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			target := Target{Name: app.Name, Sources: app.Sources}
			scanOne := func(mode interp.InterprocKind, workers int) *AppReport {
				rep, err := NewScanner(Options{
					Budgets:   budgets,
					Interproc: mode,
					Workers:   workers,
				}).Scan(context.Background(), target)
				if err != nil {
					t.Fatalf("interproc=%s workers=%d: %v", mode, workers, err)
				}
				return rep
			}

			inline1 := scanOne(interp.InterprocInline, 1)
			inline4 := scanOne(interp.InterprocInline, 4)
			sum1 := scanOne(interp.InterprocSummary, 1)
			sum4 := scanOne(interp.InterprocSummary, 4)

			if a, b := reportFingerprint(t, inline1), reportFingerprint(t, inline4); a != b {
				t.Errorf("inline workers=1 vs 4 differ:\n got: %s\nwant: %s", b, a)
			}
			if a, b := summaryModeFingerprint(t, sum1), summaryModeFingerprint(t, sum4); a != b {
				t.Errorf("summary workers=1 vs 4 differ:\n got: %s\nwant: %s", b, a)
			}

			if inline1.BudgetExceeded && !sum1.BudgetExceeded {
				// The summary strategy completed an exploration the
				// inline one could not — the Cimy case. The completion
				// must be clean and first-attempt.
				if sum1.Retries != 0 {
					t.Errorf("summary completion used %d retries, want 0", sum1.Retries)
				}
				if sum1.Degraded {
					t.Error("summary completion produced degraded findings")
				}
				if app.Vulnerable && !sum1.Vulnerable {
					t.Error("summary completed but missed the known-vulnerable verdict")
				}
				return
			}
			if a, b := summaryComparableFingerprint(t, inline1), summaryComparableFingerprint(t, sum1); a != b {
				t.Errorf("summary report differs from inline:\n got: %s\nwant: %s", b, a)
			}
		})
	}
}

// TestCimySummaryCompletes asserts the headline win at the paper's
// default budgets: the Cimy User Extra Fields root — the paper's (and
// the inline strategy's) 248832-path budget-exhaustion false negative —
// completes under -interproc summary on its first attempt, with no
// degradation and the vulnerable verdict.
func TestCimySummaryCompletes(t *testing.T) {
	app, ok := corpus.ByName("Cimy User Extra Fields 2.3.8")
	if !ok {
		t.Fatal("corpus app missing")
	}
	target := Target{Name: app.Name, Sources: app.Sources}

	inline, err := NewScanner(Options{}).Scan(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	if !inline.BudgetExceeded || inline.Vulnerable {
		t.Fatalf("inline mode should reproduce the paper's miss: budget=%v vulnerable=%v",
			inline.BudgetExceeded, inline.Vulnerable)
	}

	sum, err := NewScanner(Options{Interproc: interp.InterprocSummary}).Scan(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	if sum.BudgetExceeded {
		t.Error("summary mode exceeded budgets")
	}
	if !sum.Vulnerable {
		t.Error("summary mode missed the vulnerability")
	}
	if sum.Retries != 0 {
		t.Errorf("summary mode used %d retries, want 0", sum.Retries)
	}
	if sum.Degraded {
		t.Error("summary mode produced degraded findings")
	}
	for _, f := range sum.Findings {
		if f.Degraded {
			t.Errorf("finding %s:%d is degraded", f.File, f.Line)
		}
	}
	if got := sum.Metrics["interp_paths_avoided"]; got == 0 {
		t.Error("interp_paths_avoided = 0, want > 0 (merging did nothing)")
	}
	if got := sum.Metrics["summary_computed"]; got == 0 {
		t.Error("summary_computed = 0, want > 0")
	}
}

// TestSummaryEngineDifferential asserts the strategy composes with the
// engine knob: tree and VM engines under -interproc summary produce
// byte-identical reports (modulo the VM-only ir_*/vm_* counters) on a
// path-explosion app and on an ordinary one.
func TestSummaryEngineDifferential(t *testing.T) {
	for _, name := range []string{
		"Cimy User Extra Fields 2.3.8",
		"Foxypress 0.4.1.1-0.4.2.1",
	} {
		app, ok := corpus.ByName(name)
		if !ok {
			t.Fatalf("corpus app %s missing", name)
		}
		t.Run(name, func(t *testing.T) {
			target := Target{Name: app.Name, Sources: app.Sources}
			var want string
			for _, engine := range []interp.EngineKind{interp.EngineTree, interp.EngineVM} {
				rep, err := NewScanner(Options{
					Engine:    engine,
					Interproc: interp.InterprocSummary,
				}).Scan(context.Background(), target)
				if err != nil {
					t.Fatalf("engine=%s: %v", engine, err)
				}
				got := engineComparableFingerprint(t, rep)
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Errorf("engine=%s summary report differs from tree:\n got: %s\nwant: %s",
						engine, got, want)
				}
			}
		})
	}
}

// TestInterprocFingerprintToken pins the appended-token discipline: the
// default (inline) mode leaves the fingerprint byte-identical to the
// pre-summary format, so existing journals and cache entries stay
// replayable, while summary mode cannot share cache entries with it.
func TestInterprocFingerprintToken(t *testing.T) {
	base := NewScanner(Options{}).OptionsFingerprint()
	inline := NewScanner(Options{Interproc: interp.InterprocInline}).OptionsFingerprint()
	sum := NewScanner(Options{Interproc: interp.InterprocSummary}).OptionsFingerprint()
	if base != inline {
		t.Errorf("explicit inline changed the fingerprint:\n got: %s\nwant: %s", inline, base)
	}
	if strings.Contains(base, "interproc=") {
		t.Errorf("default fingerprint mentions interproc: %s", base)
	}
	if !strings.Contains(sum, " interproc=summary") {
		t.Errorf("summary fingerprint missing token: %s", sum)
	}
}

// TestInlineReportHasNoSummaryCounters pins the metric-absence
// contract: inline-mode reports must not grow summary_* /
// interp_paths_avoided keys, keeping them byte-identical to pre-summary
// reports.
func TestInlineReportHasNoSummaryCounters(t *testing.T) {
	app, _ := corpus.ByName("Foxypress 0.4.1.1-0.4.2.1")
	rep, err := NewScanner(Options{}).Scan(context.Background(), Target{Name: app.Name, Sources: app.Sources})
	if err != nil {
		t.Fatal(err)
	}
	for k := range rep.Metrics {
		if strings.HasPrefix(k, "summary_") || k == "interp_paths_avoided" {
			t.Errorf("inline report carries summary counter %s", k)
		}
	}
}

// TestSummaryArtifactCache exercises the per-file summary artifact
// cache end to end: a second scan over unchanged sources is served from
// the cache; corrupted entries and version-skewed payloads are silent
// misses that recompute (self-invalidation) and self-heal; the report
// is byte-identical throughout.
func TestSummaryArtifactCache(t *testing.T) {
	app, _ := corpus.ByName("Cimy User Extra Fields 2.3.8")
	target := Target{Name: app.Name, Sources: app.Sources}
	dir := t.TempDir()
	opts := Options{Interproc: interp.InterprocSummary, CacheDir: dir}

	scanOne := func() *AppReport {
		rep, err := NewScanner(opts).Scan(context.Background(), target)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	cold := scanOne()
	if cold.Metrics["summary_cache_hits"] != 0 {
		t.Errorf("cold scan had %d cache hits, want 0", cold.Metrics["summary_cache_hits"])
	}
	if cold.Metrics["summary_computed"] == 0 {
		t.Error("cold scan computed no summaries")
	}
	want := summaryModeFingerprint(t, cold)

	warm := scanOne()
	if got := warm.Metrics["summary_cache_hits"]; got != int64(len(target.Sources)) {
		t.Errorf("warm scan cache hits = %d, want %d (one per file)", got, len(target.Sources))
	}
	if warm.Metrics["summary_computed"] != 0 {
		t.Errorf("warm scan recomputed %d summaries, want 0", warm.Metrics["summary_computed"])
	}
	if got := summaryModeFingerprint(t, warm); got != want {
		t.Errorf("warm report differs from cold:\n got: %s\nwant: %s", got, want)
	}

	// Corrupt every cached entry: the next scan must treat them as
	// misses, recompute, rewrite (self-heal), and report identically.
	entries, err := filepath.Glob(filepath.Join(dir, "*.rep"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries written (err=%v)", err)
	}
	for _, p := range entries {
		if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	healed := scanOne()
	if healed.Metrics["summary_cache_hits"] != 0 {
		t.Errorf("scan over corrupt cache had %d hits, want 0", healed.Metrics["summary_cache_hits"])
	}
	if healed.Metrics["summary_computed"] == 0 {
		t.Error("scan over corrupt cache recomputed nothing")
	}
	if got := summaryModeFingerprint(t, healed); got != want {
		t.Errorf("post-corruption report differs:\n got: %s\nwant: %s", got, want)
	}
	rehit := scanOne()
	if got := rehit.Metrics["summary_cache_hits"]; got != int64(len(target.Sources)) {
		t.Errorf("self-heal failed: cache hits = %d, want %d", got, len(target.Sources))
	}

	// Version skew: overwrite each entry with a structurally valid frame
	// holding a payload from a future artifact version. DecodeFile must
	// reject it, so the scan recomputes — the self-invalidation that
	// makes ArtifactVersion bumps safe without wiping the cache.
	cache, err := scanjournal.OpenCache(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	fp := fmt.Sprintf("%s summary=v%d", NewScanner(opts).OptionsFingerprint(), summary.ArtifactVersion)
	skewed, err := json.Marshal(&summary.FileLocal{Version: summary.ArtifactVersion + 1})
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range target.Sources {
		key := scanjournal.CacheKey(map[string]string{name: src}, fp)
		if err := cache.Put(key, skewed); err != nil {
			t.Fatal(err)
		}
	}
	skewScan := scanOne()
	if skewScan.Metrics["summary_cache_hits"] != 0 {
		t.Errorf("version-skewed entries were served: hits = %d, want 0", skewScan.Metrics["summary_cache_hits"])
	}
	if got := summaryModeFingerprint(t, skewScan); got != want {
		t.Errorf("post-skew report differs:\n got: %s\nwant: %s", got, want)
	}
}
