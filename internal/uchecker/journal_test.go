package uchecker

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/scanjournal"
)

// batchTargets is the 4-app corpus sweep the crash-safety acceptance
// criteria run over.
func batchTargets(t *testing.T) []Target {
	t.Helper()
	names := []string{
		"Uploadify 1.0.0",
		"Adblock Blocker 0.0.1",
		"MailCWP 1.100",
		"Avatar Uploader 6.x-1.2",
	}
	var targets []Target
	for _, n := range names {
		app, ok := corpus.ByName(n)
		if !ok {
			t.Fatalf("missing corpus app %q", n)
		}
		targets = append(targets, Target{Name: app.Name, Sources: app.Sources})
	}
	return targets
}

func batchOpts(workers int) Options {
	return Options{Workers: workers, Budgets: Budgets{MaxPaths: 20000}}
}

// batchFingerprints is the deterministic identity of a batch result.
func batchFingerprints(t *testing.T, reps []*AppReport) []string {
	t.Helper()
	out := make([]string, len(reps))
	for i, rep := range reps {
		if rep == nil {
			t.Fatalf("report %d is nil", i)
		}
		out[i] = reportFingerprint(t, rep)
	}
	return out
}

// TestCrashResumeMatrix is the tentpole acceptance test: kill the batch
// (via the faultinject JournalWrite seam) after each of the N journal
// write boundaries, resume from the crashed journal, and require the
// merged reports to be byte-identical to an uninterrupted run — at
// Workers=1 and Workers=4.
func TestCrashResumeMatrix(t *testing.T) {
	targets := batchTargets(t)
	ctx := context.Background()

	for _, workers := range []int{1, 4} {
		opts := batchOpts(workers)

		// Uninterrupted baseline (journaled, to learn the record count).
		baseDir := t.TempDir()
		baseOpts := opts
		baseOpts.Journal = filepath.Join(baseDir, "base.journal")
		baseReps, baseStats, err := NewScanner(baseOpts).ScanBatchJournaled(ctx, targets)
		if err != nil {
			t.Fatalf("workers=%d: uninterrupted run: %v", workers, err)
		}
		if baseStats.Scanned != len(targets) {
			t.Fatalf("workers=%d: scanned = %d, want %d", workers, baseStats.Scanned, len(targets))
		}
		want := batchFingerprints(t, baseReps)
		rec, err := scanjournal.Read(baseOpts.Journal)
		if err != nil || rec.Corrupt != nil {
			t.Fatalf("workers=%d: baseline journal unreadable: %v / %v", workers, err, rec.Corrupt)
		}
		records := len(rec.Records) // 1 manifest + start/finish per target
		if wantRecords := 1 + 2*len(targets); records != wantRecords {
			t.Fatalf("workers=%d: baseline journal has %d records, want %d", workers, records, wantRecords)
		}

		for n := 0; n < records; n++ {
			dir := t.TempDir()
			journal := filepath.Join(dir, "scan.journal")

			// Crash run: the journal write seam kills the pipeline after
			// n successful records.
			crashOpts := opts
			crashOpts.Journal = journal
			crashOpts.FaultHook = faultinject.FailAfter(faultinject.JournalWrite, "", n)
			crashReps, _, crashErr := NewScanner(crashOpts).ScanBatchJournaled(ctx, targets)
			if !errors.Is(crashErr, faultinject.ErrInjected) {
				t.Fatalf("workers=%d n=%d: crash run err = %v, want injected crash", workers, n, crashErr)
			}
			if len(crashReps) != len(targets) {
				t.Fatalf("workers=%d n=%d: crash run returned %d reports", workers, n, len(crashReps))
			}
			for i, rep := range crashReps {
				if rep == nil {
					t.Fatalf("workers=%d n=%d: crash run dropped report %d", workers, n, i)
				}
			}
			// Snapshot the crashed journal before the resume mutates it.
			crashJournal, err := scanjournal.Read(journal)
			if err != nil {
				t.Fatalf("workers=%d n=%d: reading crashed journal: %v", workers, n, err)
			}

			// Resume run: same journal as both source and sink — the
			// production idiom.
			resumeOpts := opts
			resumeOpts.Journal = journal
			resumeOpts.ResumeFrom = journal
			resumeReps, stats, err := NewScanner(resumeOpts).ScanBatchJournaled(ctx, targets)
			if err != nil {
				t.Fatalf("workers=%d n=%d: resume: %v", workers, n, err)
			}
			if got := batchFingerprints(t, resumeReps); !equalStrings(got, want) {
				t.Errorf("workers=%d n=%d: resumed reports differ from uninterrupted run", workers, n)
			}
			if stats.Replayed+stats.Scanned != len(targets) {
				t.Errorf("workers=%d n=%d: replayed %d + scanned %d != %d targets",
					workers, n, stats.Replayed, stats.Scanned, len(targets))
			}
			// Every complete finish record that made it to disk must be
			// replayed, not re-scanned. With Workers=4 the start/finish
			// interleaving varies, so count the actual finish records in
			// the crashed journal rather than assuming sequential order.
			finishOnDisk := finishRecords(t, crashJournal)
			if stats.Replayed != finishOnDisk {
				t.Errorf("workers=%d n=%d: replayed = %d, want %d (finish records on disk)",
					workers, n, stats.Replayed, finishOnDisk)
			}

			// A second resume replays everything: the resumed journal is
			// itself a complete, healthy sweep record.
			again, stats2, err := NewScanner(resumeOpts).ScanBatchJournaled(ctx, targets)
			if err != nil {
				t.Fatalf("workers=%d n=%d: second resume: %v", workers, n, err)
			}
			if stats2.Replayed != len(targets) || stats2.Scanned != 0 {
				t.Errorf("workers=%d n=%d: second resume replayed %d / scanned %d, want %d / 0",
					workers, n, stats2.Replayed, stats2.Scanned, len(targets))
			}
			if got := batchFingerprints(t, again); !equalStrings(got, want) {
				t.Errorf("workers=%d n=%d: second resume drifted", workers, n)
			}
		}
	}
}

// finishRecords counts the complete finish records salvaged from a
// crashed journal — the exact set a resume must replay.
func finishRecords(t *testing.T, rec *scanjournal.Recovery) int {
	t.Helper()
	n := 0
	for _, r := range rec.Records {
		if r.Type == scanjournal.TypeFinish {
			n++
		}
	}
	return n
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBatchJournalCorruptionRecovery: a resumed sweep whose journal is
// corrupt salvages every valid prefix record, surfaces exactly one
// FailJournalCorrupt, re-scans the lost tail, and still merges to the
// uninterrupted result. The corrupt tail is compacted away, so the next
// resume is fully replayed and clean.
func TestBatchJournalCorruptionRecovery(t *testing.T) {
	targets := batchTargets(t)
	ctx := context.Background()
	opts := batchOpts(1)

	dir := t.TempDir()
	journal := filepath.Join(dir, "scan.journal")
	jopts := opts
	jopts.Journal = journal
	baseReps, _, err := NewScanner(jopts).ScanBatchJournaled(ctx, targets)
	if err != nil {
		t.Fatal(err)
	}
	want := batchFingerprints(t, baseReps)

	// Tear the final record (the last target's finish).
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journal, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	ropts := jopts
	ropts.ResumeFrom = journal
	reps, stats, err := NewScanner(ropts).ScanBatchJournaled(ctx, targets)
	if err != nil {
		t.Fatalf("corrupt resume must not fail: %v", err)
	}
	corrupt := 0
	for _, fl := range stats.Failures {
		if fl.Class == FailJournalCorrupt {
			corrupt++
		}
	}
	if corrupt != 1 {
		t.Fatalf("FailJournalCorrupt count = %d, want exactly 1 (failures: %v)", corrupt, stats.Failures)
	}
	if stats.Replayed != len(targets)-1 || stats.Scanned != 1 {
		t.Errorf("replayed %d / scanned %d, want %d / 1", stats.Replayed, stats.Scanned, len(targets)-1)
	}
	if stats.Metrics["journal_records_corrupt"] != 1 {
		t.Errorf("journal_records_corrupt = %d, want 1", stats.Metrics["journal_records_corrupt"])
	}
	if got := batchFingerprints(t, reps); !equalStrings(got, want) {
		t.Error("corrupt-resume reports differ from uninterrupted run")
	}

	// Compaction healed the journal: the next resume is clean and fully
	// replayed.
	reps2, stats2, err := NewScanner(ropts).ScanBatchJournaled(ctx, targets)
	if err != nil {
		t.Fatal(err)
	}
	for _, fl := range stats2.Failures {
		if fl.Class == FailJournalCorrupt {
			t.Fatalf("journal still corrupt after compacting resume: %v", fl)
		}
	}
	if stats2.Replayed != len(targets) {
		t.Errorf("post-heal replayed = %d, want %d", stats2.Replayed, len(targets))
	}
	if got := batchFingerprints(t, reps2); !equalStrings(got, want) {
		t.Error("post-heal reports drifted")
	}
}

// TestBatchResumeAfterOptionsChange is the regression for the
// options-change resume bug: the same-file -journal/-resume idiom,
// re-run with different budgets, must re-scan under the new options and
// then — on the *next* resume — replay the new-options reports, not the
// stale ones, and must not misread the legitimate re-finishes as
// duplicate-finish corruption.
func TestBatchResumeAfterOptionsChange(t *testing.T) {
	targets := batchTargets(t)[:2]
	ctx := context.Background()
	journal := filepath.Join(t.TempDir(), "scan.journal")

	optsA := batchOpts(1)
	optsA.Journal = journal
	optsA.ResumeFrom = journal
	if _, statsA, err := NewScanner(optsA).ScanBatchJournaled(ctx, targets); err != nil {
		t.Fatal(err)
	} else if statsA.Scanned != len(targets) {
		t.Fatalf("first run scanned %d, want %d", statsA.Scanned, len(targets))
	}

	// Options change: fingerprint shifts, everything re-scans.
	optsB := optsA
	optsB.Budgets.MaxPaths = 19999
	repsB, statsB, err := NewScanner(optsB).ScanBatchJournaled(ctx, targets)
	if err != nil {
		t.Fatal(err)
	}
	if statsB.Scanned != len(targets) || statsB.Replayed != 0 {
		t.Fatalf("options-change run: scanned %d / replayed %d, want %d / 0",
			statsB.Scanned, statsB.Replayed, len(targets))
	}
	wantB := batchFingerprints(t, repsB)

	// Resume under the new options: the fpB epoch's reports replay; the
	// fpA-epoch finishes are neither replayed nor mistaken for
	// duplicate-finish corruption.
	repsC, statsC, err := NewScanner(optsB).ScanBatchJournaled(ctx, targets)
	if err != nil {
		t.Fatal(err)
	}
	for _, fl := range statsC.Failures {
		if fl.Class == FailJournalCorrupt {
			t.Fatalf("legitimate options-change resume reported corruption: %v", fl)
		}
	}
	if statsC.Replayed != len(targets) || statsC.Scanned != 0 {
		t.Errorf("post-change resume: replayed %d / scanned %d, want %d / 0",
			statsC.Replayed, statsC.Scanned, len(targets))
	}
	if got := batchFingerprints(t, repsC); !equalStrings(got, wantB) {
		t.Error("post-change resume replayed stale-options reports")
	}
}

// TestBatchSemanticCorruptionCompaction is the regression for the
// compact-only-on-byte-corruption bug: semantic corruption (here a
// well-framed duplicate finish record) must also be compacted away on a
// same-file resume, so the *next* resume folds clean instead of
// stopping at the same offending record forever.
func TestBatchSemanticCorruptionCompaction(t *testing.T) {
	targets := batchTargets(t)[:2]
	ctx := context.Background()
	journal := filepath.Join(t.TempDir(), "scan.journal")
	opts := batchOpts(1)
	opts.Journal = journal
	opts.ResumeFrom = journal

	reps1, _, err := NewScanner(opts).ScanBatchJournaled(ctx, targets)
	if err != nil {
		t.Fatal(err)
	}
	want := batchFingerprints(t, reps1)

	// Append a byte-valid but semantically corrupt duplicate finish.
	payload, err := json.Marshal(scanjournal.Record{
		V: scanjournal.FormatVersion, Type: scanjournal.TypeFinish,
		Name: targets[0].Name, Index: 0, Report: json.RawMessage(`{"Name":"evil-twin"}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(journal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(scanjournal.Frame(payload)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// First resume: exactly one FailJournalCorrupt, full salvage.
	reps2, stats2, err := NewScanner(opts).ScanBatchJournaled(ctx, targets)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := 0
	for _, fl := range stats2.Failures {
		if fl.Class == FailJournalCorrupt {
			corrupt++
		}
	}
	if corrupt != 1 {
		t.Fatalf("FailJournalCorrupt count = %d, want 1 (failures: %v)", corrupt, stats2.Failures)
	}
	if stats2.Replayed != len(targets) {
		t.Errorf("replayed = %d, want %d (all finishes precede the corruption)", stats2.Replayed, len(targets))
	}
	if got := batchFingerprints(t, reps2); !equalStrings(got, want) {
		t.Error("corrupt-resume reports drifted")
	}

	// Second resume: compaction removed the semantic damage — no
	// recurring corruption, everything replays.
	reps3, stats3, err := NewScanner(opts).ScanBatchJournaled(ctx, targets)
	if err != nil {
		t.Fatal(err)
	}
	for _, fl := range stats3.Failures {
		if fl.Class == FailJournalCorrupt {
			t.Fatalf("semantic corruption survived the compacting resume: %v", fl)
		}
	}
	if stats3.Replayed != len(targets) || stats3.Scanned != 0 {
		t.Errorf("post-heal resume: replayed %d / scanned %d, want %d / 0",
			stats3.Replayed, stats3.Scanned, len(targets))
	}
	if got := batchFingerprints(t, reps3); !equalStrings(got, want) {
		t.Error("post-heal reports drifted")
	}
}

// TestBatchDuplicateTargetNames: two batch targets sharing a name (as
// loadTarget produces for a/foo.php and b/foo.php) journal and resume
// as distinct slots — each replays its own report, and the two finish
// records are not misread as duplicate-finish corruption.
func TestBatchDuplicateTargetNames(t *testing.T) {
	targets := []Target{
		{Name: "foo", Sources: map[string]string{"a/foo.php": "<?php move_uploaded_file($_FILES['f']['tmp_name'], 'up/' . $_FILES['f']['name']);"}},
		{Name: "foo", Sources: map[string]string{"b/foo.php": "<?php echo 1;"}},
	}
	ctx := context.Background()
	journal := filepath.Join(t.TempDir(), "scan.journal")
	opts := batchOpts(1)
	opts.Journal = journal
	opts.ResumeFrom = journal

	reps1, _, err := NewScanner(opts).ScanBatchJournaled(ctx, targets)
	if err != nil {
		t.Fatal(err)
	}
	want := batchFingerprints(t, reps1)
	if want[0] == want[1] {
		t.Fatal("test targets must produce distinguishable reports")
	}

	reps2, stats2, err := NewScanner(opts).ScanBatchJournaled(ctx, targets)
	if err != nil {
		t.Fatal(err)
	}
	for _, fl := range stats2.Failures {
		if fl.Class == FailJournalCorrupt {
			t.Fatalf("same-name targets misread as journal corruption: %v", fl)
		}
	}
	if stats2.Replayed != len(targets) || stats2.Scanned != 0 {
		t.Errorf("resume: replayed %d / scanned %d, want %d / 0", stats2.Replayed, stats2.Scanned, len(targets))
	}
	if got := batchFingerprints(t, reps2); !equalStrings(got, want) {
		t.Errorf("same-name slots cross-replayed: got %v, want %v", got, want)
	}
}

// TestBatchCacheCorrectness is the cache acceptance criterion: a second
// run over an unchanged corpus hits for every target with byte-identical
// reports; touching one file invalidates exactly that target; changing
// any budget option invalidates everything.
func TestBatchCacheCorrectness(t *testing.T) {
	targets := batchTargets(t)
	ctx := context.Background()
	opts := batchOpts(2)
	opts.CacheDir = filepath.Join(t.TempDir(), "cache")

	reps1, stats1, err := NewScanner(opts).ScanBatchJournaled(ctx, targets)
	if err != nil {
		t.Fatal(err)
	}
	if stats1.CacheHits != 0 || stats1.CacheMisses != len(targets) || stats1.Scanned != len(targets) {
		t.Fatalf("cold run: hits=%d misses=%d scanned=%d", stats1.CacheHits, stats1.CacheMisses, stats1.Scanned)
	}
	want := batchFingerprints(t, reps1)

	reps2, stats2, err := NewScanner(opts).ScanBatchJournaled(ctx, targets)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.CacheHits != len(targets) || stats2.Scanned != 0 {
		t.Fatalf("warm run: hits=%d scanned=%d, want %d/0", stats2.CacheHits, stats2.Scanned, len(targets))
	}
	if stats2.Metrics["cache_hits"] != int64(len(targets)) {
		t.Errorf("cache_hits counter = %d, want %d", stats2.Metrics["cache_hits"], len(targets))
	}
	if got := batchFingerprints(t, reps2); !equalStrings(got, want) {
		t.Error("cached reports not byte-identical")
	}

	// Touch one file of one target: exactly that target misses.
	touched := make([]Target, len(targets))
	copy(touched, targets)
	srcs := make(map[string]string, len(targets[2].Sources))
	for k, v := range targets[2].Sources {
		srcs[k] = v
	}
	for k := range srcs {
		srcs[k] += "\n"
		break
	}
	touched[2] = Target{Name: targets[2].Name, Sources: srcs}
	_, stats3, err := NewScanner(opts).ScanBatchJournaled(ctx, touched)
	if err != nil {
		t.Fatal(err)
	}
	if stats3.CacheHits != len(targets)-1 || stats3.CacheMisses != 1 || stats3.Scanned != 1 {
		t.Errorf("touched run: hits=%d misses=%d scanned=%d, want %d/1/1",
			stats3.CacheHits, stats3.CacheMisses, stats3.Scanned, len(targets)-1)
	}

	// Change a budget option: the fingerprint shifts, everything misses.
	bopts := opts
	bopts.Budgets.MaxPaths = 19999
	_, stats4, err := NewScanner(bopts).ScanBatchJournaled(ctx, targets)
	if err != nil {
		t.Fatal(err)
	}
	if stats4.CacheHits != 0 || stats4.Scanned != len(targets) {
		t.Errorf("budget-change run: hits=%d scanned=%d, want 0/%d", stats4.CacheHits, stats4.Scanned, len(targets))
	}
}

// TestBatchCacheReadFault: a broken cache (injected read fault) degrades
// to re-scans with correct reports — never to wrong ones.
func TestBatchCacheReadFault(t *testing.T) {
	targets := batchTargets(t)
	ctx := context.Background()
	opts := batchOpts(2)
	opts.CacheDir = filepath.Join(t.TempDir(), "cache")

	reps1, _, err := NewScanner(opts).ScanBatchJournaled(ctx, targets)
	if err != nil {
		t.Fatal(err)
	}
	want := batchFingerprints(t, reps1)

	fopts := opts
	fopts.FaultHook = faultinject.ErrorOn(faultinject.CacheRead, "")
	reps, stats, err := NewScanner(fopts).ScanBatchJournaled(ctx, targets)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 0 || stats.Scanned != len(targets) {
		t.Errorf("faulted cache: hits=%d scanned=%d, want 0/%d", stats.CacheHits, stats.Scanned, len(targets))
	}
	if got := batchFingerprints(t, reps); !equalStrings(got, want) {
		t.Error("faulted-cache reports drifted")
	}
}

// TestScanBatchCancelledTargets is the cancellation satellite: an
// already-cancelled or mid-batch-cancelled context must yield a
// FailCancelled report for every unstarted target — never a silently
// dropped or nil slice entry — at Workers=1 and Workers=4.
func TestScanBatchCancelledTargets(t *testing.T) {
	targets := batchTargets(t)

	for _, workers := range []int{1, 4} {
		// Already-cancelled context: every target is schedule-cancelled.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		reps := NewScanner(batchOpts(workers)).ScanBatch(ctx, targets)
		if len(reps) != len(targets) {
			t.Fatalf("workers=%d: %d reports for %d targets", workers, len(reps), len(targets))
		}
		for i, rep := range reps {
			if rep == nil {
				t.Fatalf("workers=%d: nil report %d under cancellation", workers, i)
			}
			if rep.Name != targets[i].Name {
				t.Errorf("workers=%d: report %d = %q, want %q", workers, i, rep.Name, targets[i].Name)
			}
			if !hasFailureClass(rep, FailCancelled) {
				t.Errorf("workers=%d: report %d lacks a FailCancelled failure: %+v", workers, i, rep.Failures)
			}
			if len(rep.FailureCounts) != 0 {
				t.Errorf("workers=%d: cancellation polluted FailureCounts: %v", workers, rep.FailureCounts)
			}
		}
	}

	// Mid-batch cancellation at Workers=1: the first target completes,
	// the context dies, and every remaining target still appears in the
	// slice with a typed schedule cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := batchOpts(1)
	first := targets[0].Name
	opts.OnSpan = func(sp obs.Span) {
		if sp.Name == "scan" && sp.Attr("app") == first {
			cancel()
		}
	}
	reps := NewScanner(opts).ScanBatch(ctx, targets)
	if hasFailureClass(reps[0], FailCancelled) {
		t.Errorf("first target was cancelled; want it complete: %+v", reps[0].Failures)
	}
	for i := 1; i < len(reps); i++ {
		if reps[i] == nil {
			t.Fatalf("mid-batch cancel dropped report %d", i)
		}
		if !hasFailureClass(reps[i], FailCancelled) {
			t.Errorf("unstarted target %d lacks FailCancelled: %+v", i, reps[i].Failures)
		}
		if len(reps[i].Roots) != 0 {
			t.Errorf("unstarted target %d was partially scanned (%d roots)", i, len(reps[i].Roots))
		}
	}

	// Mid-batch cancellation at Workers=4: all targets may already be in
	// flight; the contract is weaker (no silent drops, cancellation
	// typed) but must still hold.
	ctx4, cancel4 := context.WithCancel(context.Background())
	opts4 := batchOpts(4)
	opts4.OnSpan = func(sp obs.Span) {
		if sp.Name == "parse" {
			cancel4() // die while scans are mid-flight
		}
	}
	reps4 := NewScanner(opts4).ScanBatch(ctx4, targets)
	cancel4()
	for i, rep := range reps4 {
		if rep == nil {
			t.Fatalf("workers=4 mid-batch cancel: nil report %d", i)
		}
	}
}

func hasFailureClass(rep *AppReport, class FailureClass) bool {
	for _, fl := range rep.Failures {
		if fl.Class == class {
			return true
		}
	}
	return false
}

// TestOptionsFingerprint: worker count and hooks must not shift the
// fingerprint (reports are worker-independent), while any budget knob
// must.
func TestOptionsFingerprint(t *testing.T) {
	base := NewScanner(Options{Workers: 1}).optionsFingerprint()
	if got := NewScanner(Options{Workers: 8}).optionsFingerprint(); got != base {
		t.Error("worker count shifted the fingerprint")
	}
	diffs := []Options{
		{Budgets: Budgets{MaxPaths: 7}},
		{Budgets: Budgets{LoopUnroll: 5}},
		{MaxRetries: 3},
		{MaxRetries: -1},
		{Extensions: []string{".php", ".phtml"}},
		{DisableDegraded: true},
		{DisableLocality: true},
		{ModelAdminGating: true},
		{RootTimeout: time.Second},
		{MaxRootFailures: 9},
	}
	seen := map[string]bool{base: true}
	for i, o := range diffs {
		fp := NewScanner(o).optionsFingerprint()
		if seen[fp] {
			t.Errorf("option set %d does not discriminate the fingerprint: %s", i, fp)
		}
		seen[fp] = true
	}
}

// TestOptionsFingerprintGolden pins the default fingerprint byte-for-byte.
// The Budgets consolidation deliberately prints the materialized per-layer
// option structs so journals and cache entries written before the
// consolidation stay replayable; any drift in this string silently
// invalidates every cached sweep, so it is a golden value, not a derived
// one.
func TestOptionsFingerprintGolden(t *testing.T) {
	const want = "v1 ext=[.php .php5] " +
		"interp={MaxPaths:0 MaxObjects:0 LoopUnroll:0 MaxCallDepth:0} " +
		"solver={MaxCubes:0 MaxAssignments:0 MaxStrCandidates:0 MaxIntCandidates:0} " +
		"noloc=false admin=false keepsmt=false retries=1 root-timeout=0s " +
		"max-root-failures=0 nodeg=false nointern=false"
	if got := NewScanner(Options{}).optionsFingerprint(); got != want {
		t.Errorf("default fingerprint drifted:\n got: %s\nwant: %s", got, want)
	}
}

// TestOptionsFingerprintEngine: selecting the default tree engine (by
// empty string or by name) must not shift the fingerprint — tree journals
// predate the Engine option — while the VM appends an explicit token so a
// cross-engine miscompare can never hide behind a cache hit.
func TestOptionsFingerprintEngine(t *testing.T) {
	base := NewScanner(Options{}).optionsFingerprint()
	if got := NewScanner(Options{Engine: interp.EngineTree}).optionsFingerprint(); got != base {
		t.Errorf("explicit tree engine shifted the fingerprint:\n got: %s\nwant: %s", got, base)
	}
	if got, want := NewScanner(Options{Engine: interp.EngineVM}).optionsFingerprint(), base+" engine=vm"; got != want {
		t.Errorf("vm fingerprint = %s, want %s", got, want)
	}
}

// TestBatchResumeFingerprintStableAcrossDefaults is the resume regression
// for the Budgets/Engine redesign: a journal written under the implicit
// defaults must replay — not rescan — under every explicit spelling of
// those same defaults, and switching to the VM engine must be an identity
// change (full rescan) even though its findings are byte-identical.
func TestBatchResumeFingerprintStableAcrossDefaults(t *testing.T) {
	targets := batchTargets(t)[:2]
	ctx := context.Background()
	journal := filepath.Join(t.TempDir(), "scan.journal")

	optsA := batchOpts(1)
	optsA.Journal = journal
	optsA.ResumeFrom = journal
	repsA, statsA, err := NewScanner(optsA).ScanBatchJournaled(ctx, targets)
	if err != nil {
		t.Fatal(err)
	}
	if statsA.Scanned != len(targets) {
		t.Fatalf("first run scanned %d, want %d", statsA.Scanned, len(targets))
	}
	want := batchFingerprints(t, repsA)

	// Same defaults, spelled explicitly: pure replay.
	optsB := optsA
	optsB.Engine = interp.EngineTree
	optsB.Budgets = Budgets{MaxPaths: optsA.Budgets.MaxPaths}
	repsB, statsB, err := NewScanner(optsB).ScanBatchJournaled(ctx, targets)
	if err != nil {
		t.Fatal(err)
	}
	if statsB.Replayed != len(targets) || statsB.Scanned != 0 {
		t.Errorf("explicit-defaults resume: replayed %d / scanned %d, want %d / 0",
			statsB.Replayed, statsB.Scanned, len(targets))
	}
	if !equalStrings(batchFingerprints(t, repsB), want) {
		t.Error("explicit-defaults resume changed the reports")
	}

	// The VM engine is a different configuration identity: everything
	// re-scans under its fingerprint.
	optsC := optsA
	optsC.Engine = interp.EngineVM
	if _, statsC, err := NewScanner(optsC).ScanBatchJournaled(ctx, targets); err != nil {
		t.Fatal(err)
	} else if statsC.Scanned != len(targets) || statsC.Replayed != 0 {
		t.Errorf("vm-engine resume: scanned %d / replayed %d, want %d / 0",
			statsC.Scanned, statsC.Replayed, len(targets))
	}
}

// TestTargetLoadFailures: loader-stage failures attached to a Target
// surface on the report and in FailureCounts — a partially loaded app is
// visibly partial.
func TestTargetLoadFailures(t *testing.T) {
	tgt := Target{
		Name:    "partial",
		Sources: map[string]string{"ok.php": "<?php echo 1;"},
		LoadFailures: []Failure{{
			Root: "secrets.php", Stage: StageLoad, Class: FailLoad,
			Err: "unreadable: permission denied",
		}},
	}
	rep, err := NewScanner(Options{}).Scan(context.Background(), tgt)
	if err != nil {
		t.Fatal(err)
	}
	if !hasFailureClass(rep, FailLoad) {
		t.Fatalf("load failure lost: %+v", rep.Failures)
	}
	if rep.FailureCounts[FailLoad] != 1 {
		t.Errorf("FailureCounts[load] = %d, want 1", rep.FailureCounts[FailLoad])
	}
	if rep.FailureCounts[FailParse] != 0 {
		t.Errorf("I/O load failure accounted as a parse failure: %v", rep.FailureCounts)
	}
}
