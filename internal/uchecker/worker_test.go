package uchecker

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/scanjournal"
	"repro/internal/shardcoord"
)

// simTargets builds the registry-sim corpus: n deterministic generated
// plugins, every 5th with a planted unrestricted upload.
func simTargets(n int) []Target {
	apps := corpus.RandomPlugins(7, n, 5)
	targets := make([]Target, len(apps))
	for i, a := range apps {
		targets[i] = Target{Name: a.Name, Sources: a.Sources}
	}
	return targets
}

func simOpts(workers int) Options {
	return Options{Workers: workers, Budgets: Budgets{MaxPaths: 20000}}
}

// simWorkerOpts are the fast-heartbeat settings of the in-process fleet:
// renew every 10ms, presume death after a 60ms unchanged observation.
func simWorkerOpts(dir, id string, shardSize int) WorkerOptions {
	return WorkerOptions{
		CoordDir:           dir,
		WorkerID:           id,
		ShardSize:          shardSize,
		RenewInterval:      10 * time.Millisecond,
		LeaseCheckInterval: 60 * time.Millisecond,
	}
}

// baselineMerged is the uninterrupted single-process sweep's canonical
// merged bytes — the byte-identity oracle for every fleet scenario.
func baselineMerged(t *testing.T, targets []Target, opts Options) []byte {
	t.Helper()
	s := NewScanner(opts)
	reports, _, err := s.ScanBatchJournaled(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MergedBaseline(reports)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// runFleet runs workers concurrently against one coordination directory.
// hooks[i] (may be nil) is worker i's fault hook; a worker returning an
// injected error modls kill -9 — no cleanup ran. Returns per-worker
// stats and errors.
func runFleet(t *testing.T, targets []Target, opts Options, dir string, shardSize int, hooks []faultinject.Hook) ([]*WorkerStats, []error) {
	t.Helper()
	stats := make([]*WorkerStats, len(hooks))
	errs := make([]error, len(hooks))
	var wg sync.WaitGroup
	for i, hook := range hooks {
		wg.Add(1)
		go func(i int, hook faultinject.Hook) {
			defer wg.Done()
			o := opts
			o.FaultHook = hook
			s := NewScanner(o)
			stats[i], errs[i] = s.RunWorker(context.Background(),
				targets, simWorkerOpts(dir, fmt.Sprintf("w%d", i), shardSize))
		}(i, hook)
	}
	wg.Wait()
	return stats, errs
}

// finishFleet runs one clean worker to completion — the "restart after
// the crash" step that drains any shards a killed worker left behind
// and guarantees the merged report exists.
func finishFleet(t *testing.T, targets []Target, opts Options, dir string, shardSize int) *WorkerStats {
	t.Helper()
	s := NewScanner(opts)
	st, err := s.RunWorker(context.Background(), targets, simWorkerOpts(dir, "finisher", shardSize))
	if err != nil {
		t.Fatalf("finisher worker: %v", err)
	}
	return st
}

func readMerged(t *testing.T, dir string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, shardcoord.MergedFile))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestWorkerFleetMergesIdentical: the happy path — 4 workers, no
// faults, merged report byte-identical to the single-process baseline.
func TestWorkerFleetMergesIdentical(t *testing.T) {
	targets := simTargets(20)
	opts := simOpts(2)
	want := baselineMerged(t, targets, opts)

	dir := filepath.Join(t.TempDir(), "coord")
	stats, errs := runFleet(t, targets, opts, dir, 3, make([]faultinject.Hook, 4))
	merged := ""
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		if stats[i].MergedPath != "" {
			merged = stats[i].MergedPath
		}
	}
	if merged == "" {
		t.Fatal("no worker folded the merged report")
	}
	if got := readMerged(t, dir); !bytes.Equal(got, want) {
		t.Error("fleet merge differs from single-process baseline")
	}
	// The work was actually distributed: with 7 shards and 4 workers
	// racing fast heartbeats, at least two workers must have published.
	publishers := 0
	for _, st := range stats {
		if st.ShardsScanned > 0 {
			publishers++
		}
	}
	if publishers < 2 {
		t.Errorf("only %d worker(s) published shards", publishers)
	}
}

// TestRegistrySimCrashMatrix is the distributed kill-matrix acceptance:
// 4 workers over a 40-target corpus; one worker is killed (persistent
// injected fault — no cleanup, no release, exactly kill -9) at every
// lease/journal boundary type and at several occurrence counts; the
// fleet reclaims its leases and a restarted worker completes the sweep.
// Every scenario's merged report must be byte-identical to the
// uninterrupted single-process baseline.
func TestRegistrySimCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("registry-sim matrix is long; run via make registry-sim")
	}
	targets := simTargets(40)
	opts := simOpts(2)
	want := baselineMerged(t, targets, opts)

	points := []faultinject.Point{
		faultinject.LeaseClaim,
		faultinject.LeaseRenew,
		faultinject.ShardPublish,
		faultinject.JournalWrite,
		faultinject.CoordFold,
		faultinject.AtomicRename,
	}
	kills := 0
	for _, point := range points {
		for _, n := range []int{0, 2} {
			name := fmt.Sprintf("%s/after-%d", point, n)
			t.Run(name, func(t *testing.T) {
				dir := filepath.Join(t.TempDir(), "coord")
				hooks := make([]faultinject.Hook, 4)
				hooks[0] = faultinject.FailAfter(point, "", n)
				stats, errs := runFleet(t, targets, opts, dir, 4, hooks)
				for i := 1; i < 4; i++ {
					if errs[i] != nil {
						t.Fatalf("surviving worker %d: %v", i, errs[i])
					}
				}
				if errs[0] != nil {
					kills++
				} else if stats[0] == nil {
					t.Fatal("victim returned no stats")
				}
				// Restart: a clean worker drains whatever the victim held
				// and guarantees the fold ran.
				finishFleet(t, targets, opts, dir, 4)
				if got := readMerged(t, dir); !bytes.Equal(got, want) {
					t.Error("resumed merge differs from uninterrupted baseline")
				}
			})
		}
	}
	if kills == 0 {
		t.Error("no matrix scenario actually killed the victim worker")
	}
	// Archive the last merged report when the harness asks for it.
	if out := os.Getenv("REGISTRY_SIM_OUT"); out != "" {
		dir := filepath.Join(t.TempDir(), "coord")
		runFleet(t, targets, opts, dir, 4, make([]faultinject.Hook, 4))
		finishFleet(t, targets, opts, dir, 4)
		if err := os.WriteFile(out, readMerged(t, dir), 0o644); err != nil {
			t.Errorf("archive merged report: %v", err)
		}
	}
}

// TestWorkerZombieFencedEndToEnd: the paused-then-resumed zombie
// acceptance. Worker A claims a shard and never heartbeats (its renew
// interval is an hour); it pauses at the publish boundary long enough
// for worker B to observe the lease stale and reclaim. A's resumed
// publish must be fenced — and the merged report must be byte-identical
// to the baseline, proving the zombie's stale work never leaked in.
func TestWorkerZombieFencedEndToEnd(t *testing.T) {
	targets := simTargets(8)
	opts := simOpts(1)
	want := baselineMerged(t, targets, opts)
	dir := filepath.Join(t.TempDir(), "coord")

	var wg sync.WaitGroup
	var zombieStats, survivorStats *WorkerStats
	var zombieErr, survivorErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		o := opts
		// Pause the zombie at every publish attempt: long enough for the
		// survivor's 60ms observation window to expire and reclaim.
		o.FaultHook = faultinject.SleepOn(faultinject.ShardPublish, "", 400*time.Millisecond)
		s := NewScanner(o)
		wo := simWorkerOpts(dir, "zombie", 4)
		wo.RenewInterval = time.Hour // no heartbeats, ever
		zombieStats, zombieErr = s.RunWorker(context.Background(), targets, wo)
	}()
	go func() {
		defer wg.Done()
		time.Sleep(20 * time.Millisecond) // let the zombie claim first
		s := NewScanner(opts)
		survivorStats, survivorErr = s.RunWorker(context.Background(), targets, simWorkerOpts(dir, "survivor", 4))
	}()
	wg.Wait()

	if zombieErr != nil {
		t.Fatalf("zombie: %v", zombieErr)
	}
	if survivorErr != nil {
		t.Fatalf("survivor: %v", survivorErr)
	}
	if zombieStats.Fenced == 0 {
		t.Error("zombie was never fenced — the stale publish went through")
	}
	if survivorStats.ShardsReclaimed == 0 {
		t.Error("survivor reclaimed nothing")
	}
	if got := readMerged(t, dir); !bytes.Equal(got, want) {
		t.Error("zombie scenario merge differs from baseline")
	}
}

// TestWorkerHeartbeatJoinOnJournalCrash asserts the lease-heartbeat
// goroutine does not outlive RunWorker when the shard scan aborts on a
// journal-append failure: the crash-semantics return path must still
// join the heartbeat (close hbStop, wait) before returning, or a renew
// tick could race the caller's teardown of the coordination directory.
// The goroutine count is sampled before and after with a settle loop, so
// the assertion is a leak check, not a scheduling race.
func TestWorkerHeartbeatJoinOnJournalCrash(t *testing.T) {
	targets := simTargets(6)
	opts := simOpts(1)
	dir := filepath.Join(t.TempDir(), "coord")

	before := runtime.NumGoroutine()

	o := opts
	// Fail the very first shard-journal append: the sub-scan aborts with
	// crash semantics while the heartbeat ticker is live.
	o.FaultHook = faultinject.FailAfter(faultinject.JournalWrite, "", 0)
	s := NewScanner(o)
	_, err := s.RunWorker(context.Background(), targets, simWorkerOpts(dir, "victim", 3))
	if err == nil {
		t.Fatal("want the injected journal-append failure to surface, got nil")
	}

	// The heartbeat must already be joined when RunWorker returns: no
	// goroutine may still be executing RunWorker frames. The tiny settle
	// window only absorbs a goroutine's post-Done wind-down, not a missed
	// join (an unjoined heartbeat would sit in its ticker select).
	workerFrames := func() string {
		var buf bytes.Buffer
		pprof.Lookup("goroutine").WriteTo(&buf, 1)
		if strings.Contains(buf.String(), "RunWorker") {
			return buf.String()
		}
		return ""
	}
	var stacks string
	for i := 0; i < 10; i++ {
		if stacks = workerFrames(); stacks == "" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if stacks != "" {
		t.Errorf("heartbeat goroutine outlived RunWorker's crash return:\n%s", stacks)
	}

	// And the total goroutine count returns to its pre-call level.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		var buf bytes.Buffer
		pprof.Lookup("goroutine").WriteTo(&buf, 1)
		t.Errorf("goroutines leaked across RunWorker crash: before=%d after=%d\n%s",
			before, after, buf.String())
	}
}

// TestBatchDrainSemantics is the satellite graceful-drain table: drain
// fires mid-batch (from a journal-write boundary hook); every finished
// target must be journaled, unstarted targets must get FailCancelled
// schedule reports with nothing journaled, and the journal must stay
// compactable and resumable — at Workers=1 and Workers=4.
func TestBatchDrainSemantics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			targets := simTargets(12)
			dir := t.TempDir()
			journal := filepath.Join(dir, "scan.journal")

			drain := make(chan struct{})
			var once sync.Once
			opts := simOpts(workers)
			opts.Journal = journal
			opts.Drain = drain
			// Close the drain signal at the 3rd finish-record boundary:
			// some targets are done, some in flight, some unstarted.
			var finishes int
			var mu sync.Mutex
			opts.FaultHook = func(p faultinject.Point, detail string) error {
				if p == faultinject.JournalWrite && strings.HasPrefix(detail, scanjournal.TypeFinish+":") {
					mu.Lock()
					finishes++
					hit := finishes == 3
					mu.Unlock()
					if hit {
						once.Do(func() { close(drain) })
					}
				}
				return nil
			}
			s := NewScanner(opts)
			reports, _, err := s.ScanBatchJournaled(context.Background(), targets)
			if err != nil {
				t.Fatalf("drain must not be an error: %v", err)
			}

			cancelled, finished := 0, 0
			for i, rep := range reports {
				if rep == nil {
					t.Fatalf("slot %d nil", i)
				}
				if isDrainCancelled(rep) {
					cancelled++
				} else {
					finished++
				}
			}
			if cancelled == 0 {
				t.Fatal("drain cancelled nothing — the signal fired too late")
			}
			if finished < 3 {
				t.Fatalf("only %d finished, want >= 3 (the boundary that triggered drain)", finished)
			}

			// Journal: exactly the finished targets have finish records;
			// fold is clean (compactable — no dangling starts, since drain
			// lets in-flight targets complete).
			rec, err := scanjournal.Read(journal)
			if err != nil {
				t.Fatal(err)
			}
			rp := scanjournal.Fold(rec)
			if rp.Corrupt != nil {
				t.Fatalf("drained journal not compactable: %v", rp.Corrupt)
			}
			if len(rp.Finished) != finished {
				t.Errorf("journaled finishes = %d, want %d", len(rp.Finished), finished)
			}
			for i, rep := range reports {
				_, journaled := rp.Finished[scanjournal.TargetKey(i, targets[i].Name)]
				if isDrainCancelled(rep) && journaled {
					t.Errorf("drain-cancelled target %d was journaled", i)
				}
				if !isDrainCancelled(rep) && !journaled {
					t.Errorf("finished target %d missing from journal", i)
				}
			}

			// Resume completes the remainder and the union is the full
			// uninterrupted result.
			resume := simOpts(workers)
			resume.Journal = journal
			resume.ResumeFrom = journal
			reports2, bs2, err := NewScanner(resume).ScanBatchJournaled(context.Background(), targets)
			if err != nil {
				t.Fatal(err)
			}
			if bs2.Replayed != finished {
				t.Errorf("resume replayed %d, want %d", bs2.Replayed, finished)
			}
			want := baselineMerged(t, targets, simOpts(workers))
			got, err := MergedBaseline(reports2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Error("drained+resumed merge differs from uninterrupted run")
			}
		})
	}
}

// TestBatchCancelSemantics: hard ctx cancellation mid-batch — unstarted
// targets get FailCancelled, in-flight targets are NOT journaled (their
// start records dangle), and the journal still folds clean for resume.
func TestBatchCancelSemantics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			targets := simTargets(12)
			journal := filepath.Join(t.TempDir(), "scan.journal")
			ctx, cancel := context.WithCancel(context.Background())
			var once sync.Once
			opts := simOpts(workers)
			opts.Journal = journal
			opts.FaultHook = func(p faultinject.Point, detail string) error {
				if p == faultinject.JournalWrite && strings.HasPrefix(detail, scanjournal.TypeFinish+":") {
					once.Do(cancel)
				}
				return nil
			}
			reports, _, err := NewScanner(opts).ScanBatchJournaled(ctx, targets)
			if err != context.Canceled {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			cancelled := 0
			for i, rep := range reports {
				if rep == nil {
					t.Fatalf("slot %d nil", i)
				}
				for _, f := range rep.Failures {
					if f.Class == FailCancelled {
						cancelled++
						break
					}
				}
			}
			if cancelled == 0 {
				t.Error("cancellation produced no FailCancelled reports")
			}
			rec, err := scanjournal.Read(journal)
			if err != nil {
				t.Fatal(err)
			}
			if rp := scanjournal.Fold(rec); rp.Corrupt != nil {
				t.Errorf("cancelled journal not resumable: %v", rp.Corrupt)
			}
		})
	}
}

// TestWorkerDrainReleasesLease: fleet-level drain — a draining worker
// journals its finished targets, releases its lease (shard back to
// Free), and the next worker resumes the shard from its journal.
func TestWorkerDrainReleasesLease(t *testing.T) {
	targets := simTargets(8)
	opts := simOpts(1)
	want := baselineMerged(t, targets, opts)
	dir := filepath.Join(t.TempDir(), "coord")

	drain := make(chan struct{})
	var once sync.Once
	o := opts
	// Drain at the second finish boundary: mid-shard, some work done.
	var finishes int
	var mu sync.Mutex
	o.FaultHook = func(p faultinject.Point, detail string) error {
		if p == faultinject.JournalWrite && strings.HasPrefix(detail, scanjournal.TypeFinish+":") {
			mu.Lock()
			finishes++
			hit := finishes == 2
			mu.Unlock()
			if hit {
				once.Do(func() { close(drain) })
			}
		}
		return nil
	}
	s := NewScanner(o)
	wo := simWorkerOpts(dir, "drainer", 8) // one shard holds everything
	wo.Drain = drain
	st, err := s.RunWorker(context.Background(), targets, wo)
	if err != nil {
		t.Fatalf("drain must not be an error: %v", err)
	}
	if !st.Drained {
		t.Fatal("worker did not report drain")
	}
	if st.ShardsScanned != 0 {
		t.Fatalf("drained worker published %d shards", st.ShardsScanned)
	}

	// The lease is back to Free — with work journaled under token 1.
	c, err := shardcoord.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	view, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := view.Shards[0]; got.State != shardcoord.Free || got.Token != 1 {
		t.Fatalf("shard after drain: %+v, want Free at token 1", got)
	}

	// A fresh worker resumes the shard and replays the drained work.
	fin := finishFleet(t, targets, opts, dir, 8)
	if fin.ShardsScanned != 1 {
		t.Fatalf("finisher published %d shards", fin.ShardsScanned)
	}
	if got := readMerged(t, dir); !bytes.Equal(got, want) {
		t.Error("drained+resumed fleet merge differs from baseline")
	}
}

// TestBatchTransientAppendRetry is the satellite retry regression: one
// transient journal-write fault must not kill the batch — it is
// absorbed by the bounded retry and counted.
func TestBatchTransientAppendRetry(t *testing.T) {
	targets := simTargets(4)
	opts := simOpts(1)
	opts.Journal = filepath.Join(t.TempDir(), "scan.journal")
	opts.FaultHook = faultinject.ErrorN(faultinject.JournalWrite, "", 1)
	reports, bs, err := NewScanner(opts).ScanBatchJournaled(context.Background(), targets)
	if err != nil {
		t.Fatalf("one transient fault killed the batch: %v", err)
	}
	for i, rep := range reports {
		for _, f := range rep.Failures {
			if f.Class == FailCancelled {
				t.Errorf("target %d cancelled by a transient fault", i)
			}
		}
	}
	if got := bs.Metrics["journal_append_retries"]; got < 1 {
		t.Errorf("journal_append_retries = %d, want >= 1", got)
	}
	// And the journal is complete: every target finish landed.
	rec, err := scanjournal.Read(opts.Journal)
	if err != nil {
		t.Fatal(err)
	}
	rp := scanjournal.Fold(rec)
	if rp.Corrupt != nil || len(rp.Finished) != len(targets) {
		t.Errorf("journal after retry: %d finishes, corrupt=%v", len(rp.Finished), rp.Corrupt)
	}
}

// TestSubprocessWorkerHelper is not a test: it is the body of a real
// worker process for TestSubprocessKillNine, entered via the re-exec
// idiom when UCHECKER_SIM_COORD is set. It slows each root slightly so
// the parent can SIGKILL it mid-shard.
func TestSubprocessWorkerHelper(t *testing.T) {
	dir := os.Getenv("UCHECKER_SIM_COORD")
	if dir == "" {
		t.Skip("re-exec helper, not a test")
	}
	opts := simOpts(1)
	opts.FaultHook = faultinject.SleepOn(faultinject.RootStart, "", 3*time.Millisecond)
	s := NewScanner(opts)
	wo := simWorkerOpts(dir, os.Getenv("UCHECKER_SIM_WORKER"), 4)
	if _, err := s.RunWorker(context.Background(), simTargets(24), wo); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(3)
	}
	os.Exit(0)
}

// TestSubprocessKillNine is the real-process half of the registry sim:
// three OS processes coordinate over one directory, one is SIGKILL'd
// mid-shard (a genuine kill -9 — the kernel drops its flock, its lease
// goes stale), the survivors reclaim and finish, and the merged report
// is byte-identical to the single-process baseline.
func TestSubprocessKillNine(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	targets := simTargets(24)
	opts := simOpts(1)
	want := baselineMerged(t, targets, opts)
	dir := filepath.Join(t.TempDir(), "coord")

	procs := make([]*exec.Cmd, 3)
	for i := range procs {
		cmd := exec.Command(os.Args[0], "-test.run=TestSubprocessWorkerHelper$")
		cmd.Env = append(os.Environ(),
			"UCHECKER_SIM_COORD="+dir,
			fmt.Sprintf("UCHECKER_SIM_WORKER=sub%d", i))
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs[i] = cmd
	}
	time.Sleep(120 * time.Millisecond)
	// kill -9: no drain, no release, no deferred cleanup of any kind.
	if err := procs[0].Process.Kill(); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	procs[0].Wait()
	for i := 1; i < 3; i++ {
		if err := procs[i].Wait(); err != nil {
			t.Fatalf("surviving worker %d: %v", i, err)
		}
	}
	// A restarted worker drains anything the victim still held.
	finishFleet(t, targets, opts, dir, 4)
	if got := readMerged(t, dir); !bytes.Equal(got, want) {
		t.Error("kill -9 merge differs from single-process baseline")
	}
}

func isDrainCancelled(rep *AppReport) bool {
	for _, f := range rep.Failures {
		if f.Class == FailCancelled && f.Stage == StageSchedule {
			return true
		}
	}
	return false
}
