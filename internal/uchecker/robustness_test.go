package uchecker

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

// Failure injection: the pipeline must produce a usable report for broken,
// hostile, or degenerate inputs — a scanner that crashes on the long tail
// of a plugin crawl is useless for the Section IV-B workflow.

func TestScanEmptyApp(t *testing.T) {
	rep := check(t, map[string]string{}, Options{})
	if rep.Vulnerable || rep.TotalLoC != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestScanEmptyFile(t *testing.T) {
	rep := check(t, map[string]string{"empty.php": ""}, Options{})
	if rep.Vulnerable {
		t.Error("empty file flagged")
	}
}

func TestScanHTMLOnly(t *testing.T) {
	rep := check(t, map[string]string{
		"page.php": "<html><body><h1>No PHP here</h1></body></html>",
	}, Options{})
	if rep.Vulnerable || len(rep.Roots) != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestScanSyntaxErrorBeforeSink(t *testing.T) {
	// The statement before the sink is malformed; recovery must still
	// reach and verify the sink.
	rep := check(t, map[string]string{
		"broken.php": `<?php
$x = = 1;
move_uploaded_file($_FILES['f']['tmp_name'], "/up/" . $_FILES['f']['name']);
`,
	}, Options{})
	if rep.ParseErrors == 0 {
		t.Error("expected recorded parse errors")
	}
	if !rep.Vulnerable {
		t.Error("sink after syntax error must still be detected")
	}
}

func TestScanUnterminatedConstructs(t *testing.T) {
	cases := []string{
		`<?php function f( {`,
		`<?php if ($a { $x = 1; }`,
		`<?php $s = "never closed`,
		`<?php class C {`,
		`<?php foreach ($a as { }`,
		`<?php switch ($x) { case`,
	}
	for _, src := range cases {
		rep := check(t, map[string]string{"bad.php": src}, Options{})
		if rep == nil {
			t.Fatalf("nil report for %q", src)
		}
	}
}

func TestScanDeeplyNestedExpressions(t *testing.T) {
	// 2000-deep parenthesization: must not overflow the stack.
	var sb strings.Builder
	sb.WriteString("<?php $x = ")
	for i := 0; i < 2000; i++ {
		sb.WriteString("(")
	}
	sb.WriteString("1")
	for i := 0; i < 2000; i++ {
		sb.WriteString(")")
	}
	sb.WriteString(";")
	rep := check(t, map[string]string{"deep.php": sb.String()}, Options{})
	if rep == nil {
		t.Fatal("nil report")
	}
}

func TestScanDeeplyNestedBlocks(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<?php\n")
	for i := 0; i < 500; i++ {
		sb.WriteString("if (true) {\n")
	}
	sb.WriteString("$x = 1;\n")
	for i := 0; i < 500; i++ {
		sb.WriteString("}\n")
	}
	rep := check(t, map[string]string{"blocks.php": sb.String()}, Options{})
	if rep == nil {
		t.Fatal("nil report")
	}
}

func TestScanSelfIncludingFile(t *testing.T) {
	rep := check(t, map[string]string{
		"loop.php": `<?php
include 'loop.php';
move_uploaded_file($_FILES['f']['tmp_name'], "/u/" . $_FILES['f']['name']);
`,
	}, Options{})
	if !rep.Vulnerable {
		t.Error("self-include must not prevent detection")
	}
}

func TestScanMutualIncludes(t *testing.T) {
	rep := check(t, map[string]string{
		"a.php": `<?php include 'b.php'; $n = $_FILES['f']['name'];`,
		"b.php": `<?php include 'a.php'; move_uploaded_file($_FILES['f']['tmp_name'], "/u/" . $_FILES['f']['name']);`,
	}, Options{})
	if rep == nil {
		t.Fatal("nil report")
	}
}

func TestScanMissingIncludeTarget(t *testing.T) {
	rep := check(t, map[string]string{
		"main.php": `<?php
include 'not-shipped.php';
move_uploaded_file($_FILES['f']['tmp_name'], "/u/" . $_FILES['f']['name']);
`,
	}, Options{})
	if !rep.Vulnerable {
		t.Error("unresolvable include must not block detection")
	}
}

func TestScanWeirdUploadKeys(t *testing.T) {
	rep := check(t, map[string]string{
		"keys.php": `<?php
move_uploaded_file($_FILES["weird key-~!"]['tmp_name'], "/u/" . $_FILES["weird key-~!"]['name']);
`,
	}, Options{})
	if !rep.Vulnerable {
		t.Error("non-identifier upload keys must work")
	}
}

func TestScanSinkWithMissingArgs(t *testing.T) {
	rep := check(t, map[string]string{
		"degenerate.php": `<?php
$x = $_FILES['f']['name'];
move_uploaded_file();
move_uploaded_file($_FILES['f']['tmp_name']);
`,
	}, Options{})
	if rep == nil {
		t.Fatal("nil report")
	}
	if rep.Vulnerable {
		t.Error("argument-less sinks must not be flagged")
	}
}

func TestScanRecursiveUploadHelper(t *testing.T) {
	rep := check(t, map[string]string{
		"rec.php": `<?php
function retry_upload($f, $n) {
	if ($n <= 0) { return false; }
	if (move_uploaded_file($f['tmp_name'], "/u/" . $f['name'])) {
		return true;
	}
	return retry_upload($f, $n - 1);
}
retry_upload($_FILES['doc'], 3);
`,
	}, Options{})
	if !rep.Vulnerable {
		t.Error("recursive helper must still be detected (recursion cut)")
	}
}

func TestScanTinyBudgetNeverPanics(t *testing.T) {
	rep := check(t, map[string]string{
		"b.php": `<?php
if ($a) { $x = 1; } else { $x = 2; }
if ($b) { $y = 1; } else { $y = 2; }
move_uploaded_file($_FILES['f']['tmp_name'], "/u/" . $_FILES['f']['name']);
`,
	}, Options{Budgets: Budgets{MaxPaths: 1}})
	if !rep.BudgetExceeded {
		t.Error("expected budget exceeded")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := check(t, map[string]string{
		"j.php": `<?php
move_uploaded_file($_FILES['f']['tmp_name'], "/up/" . $_FILES['f']['name']);
`,
	}, Options{})
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back AppReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Vulnerable != rep.Vulnerable || len(back.Findings) != len(rep.Findings) {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.Findings[0].ExploitPath != rep.Findings[0].ExploitPath {
		t.Error("ExploitPath lost in JSON")
	}
}

// Property: the checker never panics on arbitrary "PHP-ish" source and
// always returns a report.
func TestScanArbitrarySource(t *testing.T) {
	f := func(body string) bool {
		rep, _ := NewScanner(Options{Budgets: Budgets{MaxPaths: 200}}).Scan(context.Background(), Target{
			Name:    "fuzz",
			Sources: map[string]string{"fuzz.php": "<?php " + body},
		})
		return rep != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: scanning is deterministic — same sources, same verdict and
// finding count.
func TestScanDeterministic(t *testing.T) {
	sources := map[string]string{
		"d.php": `<?php
$ext = pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION);
if ($ext != "php") {
	move_uploaded_file($_FILES['f']['tmp_name'], "/u/x." . $ext);
}
`,
	}
	first := check(t, sources, Options{})
	for i := 0; i < 5; i++ {
		again := check(t, sources, Options{})
		if again.Vulnerable != first.Vulnerable || len(again.Findings) != len(first.Findings) {
			t.Fatalf("non-deterministic at iteration %d", i)
		}
		if len(again.Findings) > 0 && again.Findings[0].SeDst != first.Findings[0].SeDst {
			t.Fatalf("se_dst drift: %s vs %s", again.Findings[0].SeDst, first.Findings[0].SeDst)
		}
	}
}
