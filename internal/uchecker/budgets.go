// Budgets: the scanner-owned resource-budget surface.
//
// The interpreter and the solver each used to expose a Halved() method,
// and the degradation ladder called both — two half-policies in two
// packages that had to stay in sync by convention. Budgets centralizes
// every bound in one struct owned by uchecker.Options: the ladder calls
// Budgets.Halve (one place, one policy, the historical floors preserved)
// and materializes the per-layer option structs via interpOptions /
// solverOptions at the rung boundary.
package uchecker

import (
	"repro/internal/interp"
	"repro/internal/smt"
)

// Budgets bounds the per-root resource consumption of symbolic execution
// (first four fields) and SMT model search (last four). The zero value
// selects the defaults of the respective layer, so a zero Budgets is the
// paper's configuration — and, deliberately, fingerprints identically to
// the zero-value option structs it replaces (journaled sweeps and cached
// reports from before the consolidation stay valid).
type Budgets struct {
	// MaxPaths bounds the number of live execution paths. Default 100000.
	MaxPaths int
	// MaxObjects bounds the heap-graph object count. Default 1500000.
	MaxObjects int
	// LoopUnroll is the number of iterations loops are unrolled to.
	// Default 2.
	LoopUnroll int
	// MaxCallDepth bounds user-function inlining depth. Default 24.
	MaxCallDepth int
	// MaxCubes bounds the solver's DNF expansion. Default 4096.
	MaxCubes int
	// MaxAssignments bounds the total candidate assignments tried across
	// all cubes. Default 500000.
	MaxAssignments int
	// MaxStrCandidates bounds the per-variable string candidate set.
	// Default 96.
	MaxStrCandidates int
	// MaxIntCandidates bounds the per-variable integer candidate set.
	// Default 48.
	MaxIntCandidates int
}

// withDefaults resolves zero fields to the layer defaults.
func (b Budgets) withDefaults() Budgets {
	if b.MaxPaths == 0 {
		b.MaxPaths = 100000
	}
	if b.MaxObjects == 0 {
		b.MaxObjects = 1500000
	}
	if b.LoopUnroll == 0 {
		b.LoopUnroll = 2
	}
	if b.MaxCallDepth == 0 {
		b.MaxCallDepth = 24
	}
	if b.MaxCubes == 0 {
		b.MaxCubes = 4096
	}
	if b.MaxAssignments == 0 {
		b.MaxAssignments = 500000
	}
	if b.MaxStrCandidates == 0 {
		b.MaxStrCandidates = 96
	}
	if b.MaxIntCandidates == 0 {
		b.MaxIntCandidates = 48
	}
	return b
}

// Halve is one rung of the degradation ladder: every budget cut in half
// after default resolution. Interpreter bounds floor at 1 — besides the
// raw path/object budgets, the loop-unroll bound and inlining depth are
// halved too, so a retry explores a coarser (cheaper) model rather than
// just aborting earlier on the same explosion. Solver candidate-set
// sizes keep the historical floors (8 strings, 4 integers) so the
// small-model search still has literals to work with.
func (b Budgets) Halve() Budgets {
	b = b.withDefaults()
	b.MaxPaths = max(1, b.MaxPaths/2)
	b.MaxObjects = max(1, b.MaxObjects/2)
	b.LoopUnroll = max(1, b.LoopUnroll/2)
	b.MaxCallDepth = max(1, b.MaxCallDepth/2)
	b.MaxCubes = max(1, b.MaxCubes/2)
	b.MaxAssignments = max(1, b.MaxAssignments/2)
	b.MaxStrCandidates = max(8, b.MaxStrCandidates/2)
	b.MaxIntCandidates = max(4, b.MaxIntCandidates/2)
	return b
}

// interpOptions materializes the symbolic-execution slice of the budget
// set. The mapping is 1:1 and zero-preserving: a zero Budgets yields a
// zero interp.Options, keeping the options fingerprint (which prints the
// materialized structs) stable across the consolidation.
func (b Budgets) interpOptions() interp.Options {
	return interp.Options{
		MaxPaths:     b.MaxPaths,
		MaxObjects:   b.MaxObjects,
		LoopUnroll:   b.LoopUnroll,
		MaxCallDepth: b.MaxCallDepth,
	}
}

// solverOptions materializes the SMT slice of the budget set; 1:1 and
// zero-preserving like interpOptions.
func (b Budgets) solverOptions() smt.Options {
	return smt.Options{
		MaxCubes:         b.MaxCubes,
		MaxAssignments:   b.MaxAssignments,
		MaxStrCandidates: b.MaxStrCandidates,
		MaxIntCandidates: b.MaxIntCandidates,
	}
}
