package uchecker

import (
	"context"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/interp"
	"repro/internal/obs"
)

// engineComparableFingerprint is reportFingerprint minus the VM-only
// execution counters: the two engines must agree on every finding,
// verdict, path count, and shared work counter, while the ir_*/vm_*
// metrics exist only under the VM by design.
func engineComparableFingerprint(t *testing.T, rep *AppReport) string {
	t.Helper()
	clone := *rep
	if clone.Metrics != nil {
		m := obs.NewMetrics()
		for k, v := range clone.Metrics {
			if strings.HasPrefix(k, "ir_") || strings.HasPrefix(k, "vm_") {
				continue
			}
			m[k] = v
		}
		clone.Metrics = m
	}
	return reportFingerprint(t, &clone)
}

// TestEngineDifferentialCorpus is the engine-selection acceptance suite:
// every corpus application is scanned with the tree walker and the
// bytecode VM at Workers=1 and Workers=4, and all four reports must agree
// byte-for-byte (modulo the VM-only ir_*/vm_* counters). This is what
// makes -engine a pure performance knob.
func TestEngineDifferentialCorpus(t *testing.T) {
	// The 20000-path budget keeps the Cimy abort affordable while still
	// reproducing it (it needs 248832 paths); every verdict is unchanged.
	budgets := Budgets{MaxPaths: 20000}
	for _, app := range corpus.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			target := Target{Name: app.Name, Sources: app.Sources}
			var want string
			for _, engine := range []interp.EngineKind{interp.EngineTree, interp.EngineVM} {
				for _, workers := range []int{1, 4} {
					rep, err := NewScanner(Options{
						Budgets: budgets,
						Engine:  engine,
						Workers: workers,
					}).Scan(context.Background(), target)
					if err != nil {
						t.Fatalf("engine=%s workers=%d: %v", engine, workers, err)
					}
					got := engineComparableFingerprint(t, rep)
					if want == "" {
						want = got
						continue
					}
					if got != want {
						t.Errorf("engine=%s workers=%d report differs from tree/1:\n got: %s\nwant: %s",
							engine, workers, got, want)
					}
				}
			}
		})
	}
}

// TestEngineVMCounters asserts the VM engine surfaces its execution
// counters on the report — compile-once across roots (cache hits = news-1)
// and a nonzero dispatch tally — while the tree engine leaves the ir_*/vm_*
// keys out entirely, keeping tree reports byte-identical to the pre-IR
// format.
func TestEngineVMCounters(t *testing.T) {
	target := multiRootTarget("engine-counters", 5)

	vm, err := NewScanner(Options{Engine: interp.EngineVM}).Scan(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	if got := vm.Metrics["ir_functions_compiled"]; got <= 0 {
		t.Errorf("ir_functions_compiled = %d, want > 0", got)
	}
	// 5 roots share one compiled program: 4 of the 5 engine
	// instantiations are cache hits.
	if got := vm.Metrics["ir_compile_cache_hits"]; got != 4 {
		t.Errorf("ir_compile_cache_hits = %d, want 4", got)
	}
	if got := vm.Metrics["ir_instructions_executed"]; got <= 0 {
		t.Errorf("ir_instructions_executed = %d, want > 0", got)
	}
	if got := vm.Metrics["vm_dispatch_loops"]; got <= 0 {
		t.Errorf("vm_dispatch_loops = %d, want > 0", got)
	}

	tree, err := NewScanner(Options{}).Scan(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	for k := range tree.Metrics {
		if strings.HasPrefix(k, "ir_") || strings.HasPrefix(k, "vm_") {
			t.Errorf("tree-engine report carries VM counter %s", k)
		}
	}
	if engineComparableFingerprint(t, tree) != engineComparableFingerprint(t, vm) {
		t.Error("engines disagree on the comparable report")
	}
}

// TestEngineVMDeterministicAcrossWorkers asserts full VM reports —
// including the ir_*/vm_* counters — are byte-identical for
// Workers=1,2,8: instruction and dispatch tallies count work, not
// scheduling.
func TestEngineVMDeterministicAcrossWorkers(t *testing.T) {
	target := multiRootTarget("vm-det", 7)
	var want string
	for _, workers := range []int{1, 2, 8} {
		rep, err := NewScanner(Options{
			Engine:  interp.EngineVM,
			Workers: workers,
		}).Scan(context.Background(), target)
		if err != nil {
			t.Fatal(err)
		}
		got := reportFingerprint(t, rep)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("Workers=%d VM report differs:\n got: %s\nwant: %s", workers, got, want)
		}
	}
}
