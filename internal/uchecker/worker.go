// The distributed worker loop: one process of a registry-scale fleet.
//
// RunWorker joins a coordination directory (internal/shardcoord), then
// loops: claim a free shard lease, scan it with the existing
// crash-safe batch machinery (token-qualified shard journal + the
// shared content-addressed cache), heartbeat the lease from a side
// goroutine, publish the shard, repeat. When no shard is free it
// observes held leases for staleness — two snapshots separated by a
// local wait, never a cross-process clock comparison — and reclaims
// abandoned ones, resuming from the dead worker's journal. When every
// shard is finished it folds the deterministic merged report.
//
// Failure semantics are crash semantics throughout: an injected fault
// or journal error makes RunWorker return immediately without cleanup,
// exactly like kill -9 — leases are recovered by observation and
// fencing, never by this process's goodwill. Graceful drain (SIGTERM)
// is the one cooperative path: in-flight targets finish and journal,
// held leases are released, unstarted work stays for the fleet.
package uchecker

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/shardcoord"
)

// WorkerOptions configures one RunWorker process.
type WorkerOptions struct {
	// CoordDir is the shared coordination directory.
	CoordDir string
	// WorkerID names this worker in lease records (diagnostic only —
	// fencing is by token). Default: "w<pid>".
	WorkerID string
	// ShardSize is the number of consecutive targets per shard.
	// Default: 8.
	ShardSize int
	// RenewInterval is the lease heartbeat period. Default: 250ms.
	RenewInterval time.Duration
	// LeaseCheckInterval is the observation window for presuming a
	// lease holder dead: a held shard whose (token, generation) is
	// unchanged across this interval is reclaimed. It must comfortably
	// exceed RenewInterval — a too-short window merely costs a useless
	// reclaim attempt (fencing keeps even a false positive safe).
	// Default: 1s.
	LeaseCheckInterval time.Duration
	// Drain, when closed, drains the worker: in-flight targets finish
	// and journal, held leases are released, and RunWorker returns with
	// Stats.Drained set.
	Drain <-chan struct{}
}

// WorkerStats summarizes one RunWorker call.
type WorkerStats struct {
	// Worker is the resolved worker ID.
	Worker string
	// ShardsScanned counts shards this worker published.
	ShardsScanned int
	// ShardsReclaimed counts published shards that were taken over from
	// a presumed-dead holder (subset of ShardsScanned).
	ShardsReclaimed int
	// Fenced counts leases this worker lost to a reclaimer.
	Fenced int
	// Drained is set when the worker exited via graceful drain.
	Drained bool
	// MergedPath is non-empty when this worker wrote the merged report.
	MergedPath string
	// Metrics holds the lease/shard counters (lease_claims,
	// lease_renewals, lease_reclaims, lease_fenced, shards_scanned,
	// shards_drained, worker_targets_scanned, journal_append_retries,
	// coord_folds).
	Metrics obs.Metrics
}

// canonicalReportJSON strips the wall-clock fields (Seconds, MemoryMB)
// from a serialized report — the canonical form under which a
// distributed merge is byte-identical to a single-process sweep.
func canonicalReportJSON(raw json.RawMessage) (json.RawMessage, error) {
	rep, err := decodeReport(raw)
	if err != nil {
		return nil, err
	}
	rep.Seconds = 0
	rep.MemoryMB = 0
	return json.Marshal(rep)
}

// MergedBaseline encodes an in-order report slice exactly as the
// distributed fold encodes merged.json: canonical per-target reports
// (wall-clock fields zeroed) in one JSON array. The registry-sim
// acceptance compares a fleet's merged report byte-for-byte against the
// baseline of an uninterrupted single-process run.
func MergedBaseline(reports []*AppReport) ([]byte, error) {
	raws := make([]json.RawMessage, len(reports))
	for i, rep := range reports {
		raw, err := json.Marshal(rep)
		if err != nil {
			return nil, err
		}
		if raws[i], err = canonicalReportJSON(raw); err != nil {
			return nil, err
		}
	}
	return shardcoord.EncodeMerged(raws)
}

// CoordCacheDir is the shared content-addressed cache inside a
// coordination directory.
func CoordCacheDir(coordDir string) string { return filepath.Join(coordDir, "cache") }

// ReadMerged loads a fleet's merged report (WorkerStats.MergedPath)
// back into the in-order per-target report slice. Reports are in
// canonical form: the wall-clock fields (Seconds, MemoryMB) read zero.
func ReadMerged(path string) ([]*AppReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var reps []*AppReport
	if err := json.Unmarshal(data, &reps); err != nil {
		return nil, fmt.Errorf("uchecker: merged report %s: %w", path, err)
	}
	return reps, nil
}

// RunWorker runs one fleet worker over targets (the full global list —
// every worker passes the same list; shardcoord validates agreement).
// It returns when every shard is finished (after folding the merged
// report), when the drain signal fires, or on crash-semantics errors.
func (s *Scanner) RunWorker(ctx context.Context, targets []Target, wo WorkerOptions) (*WorkerStats, error) {
	if wo.CoordDir == "" {
		return nil, errors.New("uchecker: RunWorker needs a coordination directory")
	}
	if wo.WorkerID == "" {
		wo.WorkerID = fmt.Sprintf("w%d", os.Getpid())
	}
	if wo.ShardSize <= 0 {
		wo.ShardSize = 8
	}
	if wo.RenewInterval <= 0 {
		wo.RenewInterval = 250 * time.Millisecond
	}
	if wo.LeaseCheckInterval <= 0 {
		wo.LeaseCheckInterval = time.Second
	}
	stats := &WorkerStats{Worker: wo.WorkerID, Metrics: obs.NewMetrics()}

	names := make([]string, len(targets))
	byName := make(map[string]Target, len(targets))
	for i, t := range targets {
		names[i] = t.Name
		byName[t.Name] = t
	}
	coord, err := shardcoord.Init(wo.CoordDir, s.optionsFingerprint(), names, wo.ShardSize, s.opts.FaultHook)
	if err != nil {
		return stats, err
	}
	if err := os.MkdirAll(CoordCacheDir(wo.CoordDir), 0o755); err != nil {
		return stats, err
	}

	drained := func() bool {
		if wo.Drain == nil {
			return false
		}
		select {
		case <-wo.Drain:
			return true
		default:
			return false
		}
	}
	// wait sleeps d, cut short by drain or cancellation.
	wait := func(d time.Duration) {
		timer := time.NewTimer(d)
		defer timer.Stop()
		var drain <-chan struct{}
		if wo.Drain != nil {
			drain = wo.Drain
		}
		select {
		case <-timer.C:
		case <-drain:
		case <-ctx.Done():
		}
	}

	var renewals atomic.Int64
	defer func() {
		stats.Metrics.Add("lease_renewals", renewals.Load())
		stats.Metrics.Add("shards_scanned", int64(stats.ShardsScanned))
		stats.Metrics.Add("lease_reclaims", int64(stats.ShardsReclaimed))
		stats.Metrics.Add("lease_fenced", int64(stats.Fenced))
	}()

	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		if drained() {
			stats.Drained = true
			return stats, nil
		}

		// Acquire a lease: a free shard if any, else observe held shards
		// for staleness and reclaim.
		lease, err := coord.ClaimFree(wo.WorkerID)
		if err != nil {
			return stats, err
		}
		reclaimedLease := false
		if lease == nil {
			view, err := coord.Snapshot()
			if err != nil {
				return stats, err
			}
			if view.Done() {
				path, err := coord.WriteMerged(func(i int, raw json.RawMessage) (json.RawMessage, error) {
					return canonicalReportJSON(raw)
				})
				if err != nil {
					return stats, err
				}
				stats.MergedPath = path
				stats.Metrics.Add("coord_folds", 1)
				return stats, nil
			}
			// Observation-based expiry: remember every held shard's
			// (token, gen), wait locally, and reclaim the first one whose
			// pair did not move. No wall clocks cross process boundaries.
			type observed struct {
				shard      int
				token, gen int64
			}
			var candidates []observed
			for sh, st := range view.Shards {
				if st.State == shardcoord.Held {
					candidates = append(candidates, observed{sh, st.Token, st.Gen})
				}
			}
			wait(wo.LeaseCheckInterval)
			for _, cand := range candidates {
				l, err := coord.Reclaim(wo.WorkerID, cand.shard, cand.token, cand.gen)
				if err != nil {
					return stats, err
				}
				if l != nil {
					lease = l
					reclaimedLease = true
					break
				}
			}
			if lease == nil {
				continue // every holder heartbeated (or the fleet finished); re-check
			}
		}
		stats.Metrics.Add("lease_claims", 1)

		// Scan the shard under the lease, heartbeating from the side.
		lo, hi := coord.Plan().Range(lease.Shard)
		shardTargets := make([]Target, 0, hi-lo)
		for _, name := range coord.Plan().Targets[lo:hi] {
			t, ok := byName[name]
			if !ok {
				return stats, fmt.Errorf("uchecker: plan target %q not in this worker's target list", name)
			}
			shardTargets = append(shardTargets, t)
		}

		shardCtx, cancelShard := context.WithCancel(ctx)
		var fenced atomic.Bool
		var hbErr error
		var hbMu sync.Mutex
		hbStop := make(chan struct{})
		var hbWG sync.WaitGroup
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			ticker := time.NewTicker(wo.RenewInterval)
			defer ticker.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-shardCtx.Done():
					return
				case <-ticker.C:
					if err := lease.Renew(); err != nil {
						if errors.Is(err, shardcoord.ErrFenced) {
							// Reclaimed under us: abandon the shard. The
							// reclaimer's re-scan is deterministic, so
							// nothing is lost but our own work.
							fenced.Store(true)
						} else {
							hbMu.Lock()
							hbErr = err
							hbMu.Unlock()
						}
						cancelShard()
						return
					}
					renewals.Add(1)
				}
			}
		}()

		var shardSpan *obs.ActiveSpan
		if s.opts.Trace != nil {
			shardSpan = s.opts.Trace.Start(0, "shard",
				obs.A("worker", wo.WorkerID),
				obs.A("shard", strconv.Itoa(lease.Shard)),
				obs.A("token", strconv.FormatInt(lease.Token, 10)))
		}
		endSpan := func(outcome string) {
			if shardSpan != nil {
				shardSpan.End(obs.A("outcome", outcome))
			}
		}

		// The shard scanner is this scanner's options pointed at the
		// token-qualified journal (resuming from the previous attempt's,
		// if any) and the shared cache. Journal/cache/drain do not
		// participate in the options fingerprint, so the shard journal's
		// manifest matches the plan epoch.
		opts := s.opts
		opts.Journal = coord.ShardJournal(lease.Shard, lease.Token)
		opts.ResumeFrom = coord.PrevShardJournal(lease.Shard, lease.Token)
		opts.CacheDir = CoordCacheDir(wo.CoordDir)
		opts.Drain = wo.Drain
		sub := NewScanner(opts)
		_, bs, batchErr := sub.ScanBatchJournaled(shardCtx, shardTargets)
		close(hbStop)
		hbWG.Wait()
		cancelShard()
		stats.Metrics.Merge(bs.Metrics)
		stats.Metrics.Add("worker_targets_scanned", int64(bs.Scanned))

		if fenced.Load() {
			stats.Fenced++
			endSpan("fenced")
			continue
		}
		hbMu.Lock()
		crashErr := hbErr
		hbMu.Unlock()
		if crashErr != nil {
			endSpan("crashed")
			return stats, crashErr
		}
		if batchErr != nil {
			endSpan("crashed")
			if ctx.Err() != nil {
				return stats, ctx.Err()
			}
			// Crash semantics: no release, no cleanup — the lease goes
			// stale and the fleet reclaims it, exactly as after kill -9.
			return stats, batchErr
		}

		complete := bs.Scanned+bs.Replayed+bs.CacheHits == len(shardTargets)
		if complete {
			err := lease.Finish()
			switch {
			case errors.Is(err, shardcoord.ErrFenced):
				stats.Fenced++
				endSpan("fenced")
				continue
			case err != nil:
				endSpan("crashed")
				return stats, err
			}
			stats.ShardsScanned++
			if reclaimedLease {
				stats.ShardsReclaimed++
			}
			endSpan("finished")
			continue
		}

		// Incomplete without an error means the drain signal fired
		// mid-shard: finished targets are journaled, the rest stay. Hand
		// the lease back so the fleet can resume the shard immediately.
		stats.Metrics.Add("shards_drained", 1)
		endSpan("drained")
		if err := lease.Release(); err != nil && !errors.Is(err, shardcoord.ErrFenced) {
			return stats, err
		}
		stats.Drained = true
		return stats, nil
	}
}
