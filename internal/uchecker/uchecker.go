// Package uchecker is the end-to-end UChecker pipeline (Figure 2 of the
// paper): parsing → vulnerability-oriented locality analysis → AST-based
// symbolic execution → vulnerability modeling → Z3-oriented translation →
// SMT-based verification.
//
// The public entry point is Checker.CheckSources, which scans one web
// application (a map of PHP sources) and produces an AppReport carrying
// the detection verdict, per-finding source lines and witness models, and
// the measurements Table III reports (LoC, % analyzed, paths, objects,
// objects/path, memory, time).
package uchecker

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/callgraph"
	"repro/internal/interp"
	"repro/internal/locality"
	"repro/internal/phpast"
	"repro/internal/phpparser"
	"repro/internal/sexpr"
	"repro/internal/smt"
	"repro/internal/translate"
	"repro/internal/vulnmodel"
)

// Options configures a Checker. The zero value reproduces the paper's
// configuration (".php"/".php5" extensions, no admin-gating model — which
// is what produces the two admin-plugin false positives of Section IV-A).
type Options struct {
	// Extensions are the executable extensions of Constraint-2.
	// Default: [".php", ".php5"].
	Extensions []string
	// Interp configures the symbolic executor.
	Interp interp.Options
	// Solver configures the SMT solver.
	Solver smt.Options
	// DisableLocality skips the vulnerability-oriented locality analysis
	// and symbolically executes every file and every function as a root —
	// the whole-program baseline the paper's locality analysis exists to
	// avoid. For ablation benchmarks.
	DisableLocality bool
	// ModelAdminGating enables the Section VI extension: sinks only
	// reachable through callbacks registered with
	// add_action('admin_menu', …) are reported as admin-gated and excluded
	// from the vulnerable verdict. Off by default to match the paper.
	ModelAdminGating bool
	// KeepSMT records each finding's SMT-LIB2 script in the report.
	KeepSMT bool
}

// Finding is one verified vulnerable sink on one satisfiable path.
type Finding struct {
	Sink string
	File string
	Line int
	// Lines are all source lines contributing to the constraints — the
	// paper's source-code-level feedback.
	Lines []int
	// SeDst / SeReach are the PHP s-expressions of the destination and
	// reachability constraints.
	SeDst   string
	SeReach string
	// Witness is the satisfying assignment: concrete attacker-controlled
	// values (e.g. s_ext = ".php") demonstrating the exploit.
	Witness smt.Model
	// ExploitPath is the concrete destination path obtained by evaluating
	// the translated destination under the witness — the location where
	// the attacker's script lands on the server.
	ExploitPath string
	// SMTLIB is the solver input (set when Options.KeepSMT).
	SMTLIB string
	// AdminGated marks findings suppressed by the admin-gating model.
	AdminGated bool
}

// AppReport is the scan result for one application, carrying Table III's
// columns.
type AppReport struct {
	Name string

	// Table III columns.
	TotalLoC        int
	AnalyzedLoC     int
	PercentAnalyzed float64
	Paths           int
	Objects         int
	ObjectsPerPath  float64
	MemoryMB        float64
	Seconds         float64

	// Roots selected by the locality analysis.
	Roots []string
	// SinkCount is the number of (path, sink) candidates examined.
	SinkCount int
	// Findings are the verified vulnerable sinks.
	Findings []Finding
	// Vulnerable is the verdict: at least one non-admin-gated finding.
	Vulnerable bool
	// BudgetExceeded reports that symbolic execution aborted (the paper's
	// Cimy User Extra Fields failure mode); the verdict is then "not
	// detected".
	BudgetExceeded bool
	// ParseErrors counts tolerated syntax errors.
	ParseErrors int
}

// Checker runs the pipeline. A zero-value Checker uses default options.
type Checker struct {
	opts Options
}

// New returns a Checker.
func New(opts Options) *Checker {
	if len(opts.Extensions) == 0 {
		opts.Extensions = vulnmodel.DefaultExtensions
	}
	return &Checker{opts: opts}
}

// CheckSources scans one application given as file-name → source-text.
func (c *Checker) CheckSources(name string, sources map[string]string) *AppReport {
	start := time.Now()
	var memBefore runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&memBefore)

	rep := &AppReport{Name: name}

	// --- Phase 1: parsing ---
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	files := make([]*phpast.File, 0, len(names))
	for _, n := range names {
		f, errs := phpparser.Parse(n, sources[n])
		rep.ParseErrors += len(errs)
		files = append(files, f)
	}

	// --- Phase 2: locality analysis ---
	g := callgraph.Build(files)
	loc := locality.Analyze(g, files, sources)
	rep.TotalLoC = loc.TotalLoC
	rep.AnalyzedLoC = loc.AnalyzedLoC
	rep.PercentAnalyzed = loc.PercentAnalyzed()

	roots := loc.Roots
	if c.opts.DisableLocality {
		// Whole-program ablation: every file and function is a root.
		roots = roots[:0]
		for _, n := range g.Nodes {
			if n.Kind == callgraph.FileNode || n.Kind == callgraph.FuncNode {
				roots = append(roots, locality.Root{Node: n, File: n.File})
			}
		}
		rep.AnalyzedLoC = rep.TotalLoC
		rep.PercentAnalyzed = 100
	}

	adminCallbacks := map[string]bool{}
	if c.opts.ModelAdminGating {
		adminCallbacks = findAdminCallbacks(files)
	}

	// --- Phases 3-6 per root ---
	for _, root := range roots {
		rep.Roots = append(rep.Roots, root.Node.String())
		in := interp.New(files, c.opts.Interp)
		res := in.RunRoot(root.Node)
		rep.Paths += res.Paths
		rep.Objects += res.Graph.NumObjects()
		if res.Err != nil {
			if errors.Is(res.Err, interp.ErrBudgetExceeded) {
				rep.BudgetExceeded = true
				continue
			}
		}
		c.verifySinks(rep, root.Node, res, adminCallbacks, g)
	}

	if rep.Paths > 0 {
		rep.ObjectsPerPath = float64(rep.Objects) / float64(rep.Paths)
	}
	for _, f := range rep.Findings {
		if !f.AdminGated {
			rep.Vulnerable = true
		}
	}

	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	if memAfter.HeapAlloc > memBefore.HeapAlloc {
		rep.MemoryMB = float64(memAfter.HeapAlloc-memBefore.HeapAlloc) / (1 << 20)
	}
	rep.Seconds = time.Since(start).Seconds()
	return rep
}

// verifySinks models and solver-checks every recorded sink hit of one
// root's execution.
func (c *Checker) verifySinks(rep *AppReport, root *callgraph.Node, res interp.Result, adminCallbacks map[string]bool, g *callgraph.Graph) {
	solver := smt.NewSolver(c.opts.Solver)
	tr := translate.New(res.Graph)
	seen := map[string]bool{} // dedupe per (file,line,witness-free)

	for _, hit := range res.Sinks {
		rep.SinkCount++
		cand := vulnmodel.Model(res.Graph, tr, vulnmodel.Sink{
			Name: hit.Sink,
			File: hit.File,
			Line: hit.Line,
			Src:  hit.Src,
			Dst:  hit.Dst,
			Cur:  hit.Env.Cur,
		}, c.opts.Extensions)
		if !cand.Tainted {
			continue // Constraint-1 failed
		}
		// One satisfiable path per call site is enough for a verdict; skip
		// further paths of an already-confirmed sink.
		key := fmt.Sprintf("%s:%d", cand.File, cand.Line)
		if seen[key] {
			continue
		}
		status, model, _, _ := solver.Check(cand.Combined)
		if status != smt.Sat {
			continue
		}
		seen[key] = true
		f := Finding{
			Sink:    cand.Sink,
			File:    cand.File,
			Line:    cand.Line,
			Lines:   cand.Lines,
			SeDst:   sexpr.Format(cand.SeDst),
			SeReach: sexpr.Format(cand.SeReach),
			Witness: model,
		}
		// Independent exploit validation: evaluate the destination under
		// the witness and confirm the executable suffix concretely.
		if v, err := smt.Eval(cand.DstTerm, modelWithDefaults(cand.DstTerm, model)); err == nil {
			f.ExploitPath = v.S
		}
		if c.opts.KeepSMT {
			f.SMTLIB = smt.ToSMTLIB2(cand.Combined)
		}
		if c.opts.ModelAdminGating && isAdminGated(root, adminCallbacks, g) {
			f.AdminGated = true
		}
		rep.Findings = append(rep.Findings, f)
	}
}

// findAdminCallbacks collects the lower-cased names of callbacks
// registered with add_action('admin_menu', …) — the WordPress pattern the
// paper's Section IV-A false positives hinge on (Listing 5).
// modelWithDefaults extends a model with zero values for any variable of
// t the solver never constrained.
func modelWithDefaults(t *smt.Term, m smt.Model) smt.Model {
	out := make(smt.Model, len(m))
	for k, v := range m {
		out[k] = v
	}
	for _, v := range smt.Vars(t) {
		if _, ok := out[v.S]; !ok {
			switch v.Sort() {
			case smt.SortBool:
				out[v.S] = smt.BoolValue(false)
			case smt.SortInt:
				out[v.S] = smt.IntValue(0)
			default:
				out[v.S] = smt.StrValue("")
			}
		}
	}
	return out
}

func findAdminCallbacks(files []*phpast.File) map[string]bool {
	out := map[string]bool{}
	for _, f := range files {
		phpast.Walk(f, func(n phpast.Node) bool {
			call, ok := n.(*phpast.Call)
			if !ok {
				return true
			}
			name, ok := phpast.CalleeName(call)
			if !ok || name != "add_action" || len(call.Args) < 2 {
				return true
			}
			hook, ok := call.Args[0].(*phpast.StringLit)
			if !ok || !strings.HasPrefix(hook.Value, "admin_") {
				return true
			}
			if cb, ok := call.Args[1].(*phpast.StringLit); ok {
				out[strings.ToLower(cb.Value)] = true
			}
			return true
		})
	}
	return out
}

// isAdminGated reports whether the analysis root is (or is only reachable
// through) an admin-registered callback.
func isAdminGated(root *callgraph.Node, adminCallbacks map[string]bool, g *callgraph.Graph) bool {
	if len(adminCallbacks) == 0 {
		return false
	}
	if root.Kind == callgraph.FuncNode && adminCallbacks[root.Name] {
		return true
	}
	// A file root is gated when every sink-reaching successor is an admin
	// callback subtree.
	if root.Kind == callgraph.FileNode {
		gated := false
		for _, s := range g.Succ[root] {
			if s.Kind != callgraph.FuncNode {
				continue
			}
			if !g.Reaches(s, callgraph.SinkNode) {
				continue
			}
			if adminCallbacks[s.Name] {
				gated = true
			} else {
				return false
			}
		}
		return gated
	}
	return false
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d %s", f.File, f.Line, f.Sink)
}
