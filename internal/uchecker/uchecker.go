// Package uchecker is the end-to-end UChecker pipeline (Figure 2 of the
// paper): parsing → vulnerability-oriented locality analysis → AST-based
// symbolic execution → vulnerability modeling → Z3-oriented translation →
// SMT-based verification.
//
// The public entry point is the v2 Scanner API: Scanner.Scan runs the
// pipeline over one application (a Target: name plus a map of PHP
// sources) with context cancellation and parallel per-root execution,
// and Scanner.ScanBatch sweeps whole corpora concurrently. Both produce
// AppReports carrying the detection verdict, per-finding source lines
// and witness models, and the measurements Table III reports (LoC, %
// analyzed, paths, objects, objects/path, memory, time).
package uchecker

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/callgraph"
	"repro/internal/faultinject"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/phpast"
	"repro/internal/smt"
)

// Options configures a Scanner. The zero value reproduces the paper's
// configuration (".php"/".php5" extensions, no admin-gating model — which
// is what produces the two admin-plugin false positives of Section IV-A).
type Options struct {
	// Extensions are the executable extensions of Constraint-2.
	// Default: [".php", ".php5"].
	Extensions []string
	// Budgets bounds the per-root resource consumption of symbolic
	// execution and SMT model search. The zero value selects the paper's
	// defaults; the degradation ladder halves the whole set per rung via
	// Budgets.Halve.
	Budgets Budgets
	// Engine selects the symbolic-execution engine: interp.EngineTree
	// (the recursive AST walker, the default — the empty string selects
	// it too) or interp.EngineVM (compile each function once to ir
	// bytecode, dispatch a VM over the same heap-graph machinery).
	// Findings and metrics are byte-identical across engines; the VM
	// additionally reports ir_*/vm_* counters.
	Engine interp.EngineKind
	// Interproc selects the interprocedural call strategy:
	// interp.InterprocInline (inline every user-function call, the
	// default — the empty string selects it too, reproducing the paper's
	// behavior including the Cimy budget-exhaustion miss) or
	// interp.InterprocSummary (compute per-function symbolic summaries
	// once per scan, instantiate them at call sites, and merge observably
	// equivalent paths at statement boundaries inside summarized scopes;
	// escaped callees — by-ref params, dynamic calls, globals, methods,
	// closures, … — fall back to inlining so findings never change).
	// Summaries are cached per file in CacheDir when set.
	Interproc interp.InterprocKind
	// DisableLocality skips the vulnerability-oriented locality analysis
	// and symbolically executes every file and every function as a root —
	// the whole-program baseline the paper's locality analysis exists to
	// avoid. For ablation benchmarks.
	DisableLocality bool
	// ModelAdminGating enables the Section VI extension: sinks only
	// reachable through callbacks registered with
	// add_action('admin_menu', …) are reported as admin-gated and excluded
	// from the vulnerable verdict. Off by default to match the paper.
	ModelAdminGating bool
	// KeepSMT records each finding's SMT-LIB2 script in the report.
	KeepSMT bool
	// Workers bounds the per-root (and, in ScanBatch, per-app) worker
	// pool. Zero or negative selects runtime.GOMAXPROCS(0). Workers=1
	// scans serially; results are byte-identical for every value.
	Workers int
	// Trace, when non-nil, records the scan's span tree: a "scan" span
	// per app with "parse" / "locality" children, a "root" span per
	// locality root with one "attempt" child per degradation-ladder
	// rung (plus "fallback"), and "interp" / "model" / "solve" spans
	// inside each attempt. Export the snapshot with
	// obs.WriteChromeTrace. The Recorder is safe to share across scans
	// and batches.
	Trace *obs.Recorder
	// OnSpan, when non-nil, receives every finished span.
	//
	// Thread-safety contract: the scanner serializes every OnSpan
	// invocation behind one per-Scanner mutex, so the callback may touch
	// unsynchronized state even under Workers>1 or ScanBatch. It must
	// not call back into the Scanner (deadlock) and should be fast — it
	// runs on the scanning goroutines' critical path. When Trace is nil
	// the scanner still times spans internally to feed OnSpan.
	OnSpan func(obs.Span)
	// RootTimeout bounds the wall clock of each per-root attempt. A root
	// that exceeds it fails with a FailRootTimeout failure (and enters the
	// degradation ladder) instead of stalling the whole scan. Zero
	// disables the per-root deadline. Note that a non-zero RootTimeout
	// makes reports timing-dependent: whether a given root finishes or
	// degrades can vary run to run.
	RootTimeout time.Duration
	// MaxRetries is the number of degradation-ladder retries for a root
	// whose attempt fails with a retryable class (path/object/solver
	// budget, root timeout). Each retry halves the interpreter and solver
	// budgets (and the loop-unroll / inlining depth), so it explores a
	// coarser, cheaper model; findings from retries are marked Degraded.
	// Zero selects DefaultMaxRetries; negative disables retries.
	MaxRetries int
	// MaxRootFailures, when positive, aborts an app's scan early once
	// that many countable (non-cancelled) failures have accumulated:
	// remaining roots are skipped (recorded as cancelled schedule
	// failures) and AppReport.Aborted is set. Zero means no limit. Which
	// roots are skipped depends on worker scheduling, so reports of an
	// aborted scan are not deterministic across worker counts.
	MaxRootFailures int
	// DisableIntern turns off the hash-consing term factory of the SMT
	// layer: every constraint term is heap-allocated directly (no intern
	// table, no memoized simplification, no incremental-session reuse),
	// exactly the pre-interning pipeline. Findings are byte-identical
	// either way — this flag exists for the `-no-intern` ablation
	// benchmark, and as a bisection lever should interning ever be
	// suspected of a miscompare.
	DisableIntern bool
	// DisableDegraded switches the degradation ladder off wholesale: no
	// halved-budget retries, no degraded verification of partial
	// explorations, no taint-only fallback. Failed roots then surface
	// only their typed failures, exactly as in the paper's configuration
	// (a budget abort is a silent miss).
	DisableDegraded bool
	// FaultHook, when non-nil, is invoked at the faultinject.Point seams
	// of the pipeline. Tests use it to inject panics, slow roots and
	// forced solver failures; production scans leave it nil.
	FaultHook faultinject.Hook
	// Journal, when non-empty, makes ScanBatch crash-safe: an append-only,
	// per-record-checksummed journal (see internal/scanjournal) records
	// the batch manifest, each target's start, and each completed
	// target's full report, fsynced record by record. A journal append
	// failure aborts the batch with crash semantics — unstarted targets
	// get FailCancelled reports and the error surfaces from
	// ScanBatchJournaled.
	Journal string
	// ResumeFrom, when non-empty, recovers a previous sweep's journal
	// before scanning: targets with a salvaged finish record written
	// under the same options fingerprint are replayed byte-identically
	// without re-scanning; in-flight (started-but-unfinished) and
	// never-started targets are scanned normally. Corruption anywhere in
	// the journal — torn tail, bad checksum, version skew, duplicate
	// finish — salvages every valid prefix record and surfaces one
	// FailJournalCorrupt in BatchStats; it never aborts the resume.
	// Pointing Journal and ResumeFrom at the same file is the intended
	// idiom (the journal is compacted first when its tail is corrupt). A
	// missing ResumeFrom file is a fresh sweep, not an error.
	ResumeFrom string
	// CacheDir, when non-empty, enables the content-addressed result
	// cache for ScanBatch: each target is keyed by a SHA-256 over its
	// sorted file contents, the options fingerprint (budgets, retries,
	// extensions, …) and the cache format version, so an unchanged
	// target on an unchanged configuration is served the byte-identical
	// cached report without re-scanning. Corrupt or unreadable entries
	// are misses (pruned and re-written), never errors. Reports from
	// scans interrupted by ctx cancellation are not cached.
	CacheDir string
	// Drain, when non-nil and closed, switches ScanBatchJournaled into
	// graceful-drain mode: targets not yet started get FailCancelled
	// schedule reports (never journaled — the next resume re-scans them),
	// while in-flight scans run to completion and journal their finishes
	// normally. This is the SIGTERM half of the worker shutdown contract
	// — distinct from ctx cancellation, which also interrupts in-flight
	// scans and leaves them un-journaled. Drain does not participate in
	// the options fingerprint: it changes which targets run, never what
	// any report contains.
	Drain <-chan struct{}
}

// DefaultMaxRetries is the degradation-ladder retry count selected when
// Options.MaxRetries is zero: one halved-budget rerun before the
// taint-only fallback rung.
const DefaultMaxRetries = 1

// Finding is one verified vulnerable sink on one satisfiable path.
type Finding struct {
	Sink string
	File string
	Line int
	// Lines are all source lines contributing to the constraints — the
	// paper's source-code-level feedback.
	Lines []int
	// SeDst / SeReach are the PHP s-expressions of the destination and
	// reachability constraints.
	SeDst   string
	SeReach string
	// Witness is the satisfying assignment: concrete attacker-controlled
	// values (e.g. s_ext = ".php") demonstrating the exploit.
	Witness smt.Model
	// ExploitPath is the concrete destination path obtained by evaluating
	// the translated destination under the witness — the location where
	// the attacker's script lands on the server.
	ExploitPath string
	// SMTLIB is the solver input (set when Options.KeepSMT).
	SMTLIB string
	// AdminGated marks findings suppressed by the admin-gating model.
	AdminGated bool
	// Degraded marks lower-confidence findings produced by the
	// degradation ladder — either a halved-budget retry (coarser model)
	// or the taint-only fallback (no witness, no constraint solving).
	// Degraded findings never set AppReport.Vulnerable: they are partial
	// signal from a root that would otherwise have produced nothing.
	Degraded bool `json:",omitempty"`
}

// AppReport is the scan result for one application, carrying Table III's
// columns.
type AppReport struct {
	Name string

	// Table III columns.
	TotalLoC        int
	AnalyzedLoC     int
	PercentAnalyzed float64
	Paths           int
	Objects         int
	ObjectsPerPath  float64
	MemoryMB        float64
	Seconds         float64

	// Roots selected by the locality analysis.
	Roots []string
	// SinkCount is the number of (path, sink) candidates examined.
	SinkCount int
	// Findings are the verified vulnerable sinks.
	Findings []Finding
	// Vulnerable is the verdict: at least one non-admin-gated finding.
	Vulnerable bool
	// BudgetExceeded reports that symbolic execution aborted (the paper's
	// Cimy User Extra Fields failure mode); the verdict is then "not
	// detected".
	BudgetExceeded bool
	// ParseErrors counts tolerated syntax errors.
	ParseErrors int
	// Failures are the typed failure records: parse-stage failures first
	// (in file-name order), then per-root failures in canonical root
	// order. Cancellation entries are included here for visibility but
	// excluded from FailureCounts.
	Failures []Failure `json:",omitempty"`
	// FailureCounts aggregates countable (non-cancelled) failures per
	// class. Nil when the scan was failure-free.
	FailureCounts map[FailureClass]int `json:",omitempty"`
	// Degraded reports that at least one finding was produced by the
	// degradation ladder (and is marked Finding.Degraded).
	Degraded bool `json:",omitempty"`
	// Retries is the total number of degradation-ladder retry attempts
	// spent across all roots.
	Retries int `json:",omitempty"`
	// Aborted reports that Options.MaxRootFailures tripped and remaining
	// roots were skipped.
	Aborted bool `json:",omitempty"`
	// Metrics is the scan's deterministic counter set: typed counters
	// from the interpreter (paths forked/pruned/held, budget
	// checkpoints, peak live envs, objects allocated), the solver
	// (candidates seeded, models tried, verify re-evals, simplifier
	// rewrites), the locality analysis (roots found, files pruned) and
	// the scanner itself (retries, degraded findings, per-class
	// failures). Per-root contributions are merged in canonical root
	// order with commutative operations, so the metric set is
	// byte-identical for every Options.Workers value. See DESIGN.md
	// "Observability" for the full counter inventory.
	Metrics obs.Metrics `json:",omitempty"`
}

// modelWithDefaults extends a model with zero values for any variable of
// t the solver never constrained.
func modelWithDefaults(t *smt.Term, m smt.Model) smt.Model {
	out := make(smt.Model, len(m))
	for k, v := range m {
		out[k] = v
	}
	for _, v := range smt.Vars(t) {
		if _, ok := out[v.S]; !ok {
			switch v.Sort() {
			case smt.SortBool:
				out[v.S] = smt.BoolValue(false)
			case smt.SortInt:
				out[v.S] = smt.IntValue(0)
			default:
				out[v.S] = smt.StrValue("")
			}
		}
	}
	return out
}

// findAdminCallbacks collects the lower-cased names of callbacks
// registered with add_action('admin_menu', …) — the WordPress pattern the
// paper's Section IV-A false positives hinge on (Listing 5).
func findAdminCallbacks(files []*phpast.File) map[string]bool {
	out := map[string]bool{}
	for _, f := range files {
		phpast.Walk(f, func(n phpast.Node) bool {
			call, ok := n.(*phpast.Call)
			if !ok {
				return true
			}
			name, ok := phpast.CalleeName(call)
			if !ok || name != "add_action" || len(call.Args) < 2 {
				return true
			}
			hook, ok := call.Args[0].(*phpast.StringLit)
			if !ok || !strings.HasPrefix(hook.Value, "admin_") {
				return true
			}
			if cb, ok := call.Args[1].(*phpast.StringLit); ok {
				out[strings.ToLower(cb.Value)] = true
			}
			return true
		})
	}
	return out
}

// isAdminGated reports whether the analysis root is (or is only reachable
// through) an admin-registered callback.
func isAdminGated(root *callgraph.Node, adminCallbacks map[string]bool, g *callgraph.Graph) bool {
	if len(adminCallbacks) == 0 {
		return false
	}
	if root.Kind == callgraph.FuncNode && adminCallbacks[root.Name] {
		return true
	}
	// A file root is gated when every sink-reaching successor is an admin
	// callback subtree.
	if root.Kind == callgraph.FileNode {
		gated := false
		for _, s := range g.Succ[root] {
			if s.Kind != callgraph.FuncNode {
				continue
			}
			if !g.Reaches(s, callgraph.SinkNode) {
				continue
			}
			if adminCallbacks[s.Name] {
				gated = true
			} else {
				return false
			}
		}
		return gated
	}
	return false
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d %s", f.File, f.Line, f.Sink)
}
