package uchecker

import (
	"context"
	"strings"
	"testing"
)

func check(t *testing.T, sources map[string]string, opts Options) *AppReport {
	t.Helper()
	rep, err := NewScanner(opts).Scan(context.Background(), Target{Name: "test-app", Sources: sources})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return rep
}

// Listing 4 of the paper: the canonical vulnerable upload.
func TestDetectListing4(t *testing.T) {
	rep := check(t, map[string]string{
		"upload.php": `<?php
$path_array = wp_upload_dir();
$pathAndName = $path_array['path'] . "/" . $_FILES['upload_file']['name'];
if (!move_uploaded_file($_FILES['upload_file']['tmp_name'], $pathAndName)) {
	return false;
}
return true;
`,
	}, Options{KeepSMT: true})
	if !rep.Vulnerable {
		t.Fatalf("Listing 4 must be detected; report: %+v", rep)
	}
	f := rep.Findings[0]
	if f.Sink != "move_uploaded_file" || f.Line != 4 {
		t.Errorf("finding = %+v", f)
	}
	// Source-level feedback covers the lines that build the path.
	if !containsInt(f.Lines, 3) {
		t.Errorf("lines = %v, want to include 3 (path construction)", f.Lines)
	}
	// Witness assigns the extension.
	joined := ""
	for _, v := range f.Witness {
		joined += v.S
	}
	if !strings.Contains(joined, "php") {
		t.Errorf("witness = %v, expected a .php assignment", f.Witness)
	}
	if !strings.Contains(f.SMTLIB, "str.suffixof") {
		t.Errorf("SMT-LIB output missing suffix constraint")
	}
}

// TestDetectHexEscapedExtension covers corpus-style obfuscation: the
// executable extension spelled with a hex escape ("\x2ephp" decodes to
// ".php"). The attacker-controlled portion sits in the middle of the
// destination, so detection hinges on the lexer decoding the escaped
// suffix correctly — a lexer that keeps "\x2ephp" verbatim sees a
// destination ending in "ephp" and misses the finding.
func TestDetectHexEscapedExtension(t *testing.T) {
	rep := check(t, map[string]string{
		"rename.php": `<?php
$name = $_FILES['doc']['name'];
$dst = "/srv/uploads/" . $name . "_copy" . "\x2ephp";
move_uploaded_file($_FILES['doc']['tmp_name'], $dst);
`,
	}, Options{})
	if !rep.Vulnerable {
		t.Fatalf("hex-escaped .php extension missed; report: %+v", rep)
	}
	f := rep.Findings[0]
	if f.Sink != "move_uploaded_file" || f.Line != 4 {
		t.Errorf("finding = %+v", f)
	}
	if f.ExploitPath != "" && !strings.HasSuffix(f.ExploitPath, ".php") {
		t.Errorf("exploit path %q does not end in .php", f.ExploitPath)
	}
}

// Listing 6: WooCommerce Custom Profile Picture 1.0 (Section IV-B).
func TestDetectWooCommerceCustomProfilePicture(t *testing.T) {
	rep := check(t, map[string]string{
		"wc-custom-profile-picture.php": `<?php
if($_FILES['profile_pic']){
	$picture_id = wc_cus_upload_picture($_FILES['profile_pic']);
}
function wc_cus_upload_picture( $foto ) {
	$profilepicture = $foto;
	$wordpress_upload_dir = wp_upload_dir();
	$new_file_path = $wordpress_upload_dir['path'] . '/' . $profilepicture['name'];
	if( move_uploaded_file( $profilepicture['tmp_name'], $new_file_path ) ) {
		return 1;
	}
	return 0;
}
`,
	}, Options{})
	if !rep.Vulnerable {
		t.Fatalf("WooCommerce CPP must be detected; report %+v", rep)
	}
	if rep.Findings[0].Line != 9 {
		t.Errorf("finding line = %d, want 9 (the move_uploaded_file call)", rep.Findings[0].Line)
	}
}

// Listing 7: File Provider 1.2.3 (Section IV-B).
func TestDetectFileProvider(t *testing.T) {
	rep := check(t, map[string]string{
		"file-provider.php": `<?php
function upload_file() {
	$uploaddir = get_option('fp_upload_dir');
	$nome_final = $_FILES['userFile']['name'];
	$uploadfile = $uploaddir . basename($nome_final);
	if (move_uploaded_file($_FILES['userFile']['tmp_name'], $uploadfile)) {
		echo "ok";
	}
}
upload_file();
`,
	}, Options{})
	if !rep.Vulnerable {
		t.Fatalf("File Provider must be detected; report %+v", rep)
	}
}

// Listing 8: WP Demo Buddy 1.0.2 — the zip guard does not help because a
// constant ".php" is appended (Section IV-B).
func TestDetectWPDemoBuddy(t *testing.T) {
	rep := check(t, map[string]string{
		"wp-demo-buddy.php": `<?php
function file_Upload($type)
{
	global $wpdb;
	$upload_dir = get_option('wp_demo_buddy_upload_dir');
	$ext = pathinfo($_FILES[$type]['name'], PATHINFO_EXTENSION);
	if ($ext !== 'zip') return;
	$info = pathinfo($_FILES[$type]['name']);
	$newname = time() . rand() . '_' . $info['basename'] . '.php';
	$target = $upload_dir . $newname;
	move_uploaded_file($_FILES[$type]['tmp_name'], $target);
	$ret = array($newname, $info['basename']);
	return $ret;
}
file_Upload("pkg");
`,
	}, Options{})
	if !rep.Vulnerable {
		t.Fatalf("WP Demo Buddy must be detected; report %+v", rep)
	}
	// The ext === zip guard must be part of the reachability constraint.
	found := false
	for _, f := range rep.Findings {
		if strings.Contains(f.SeReach, `"zip"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("reachability should mention the zip guard: %+v", rep.Findings)
	}
}

// A proper whitelist of image extensions makes the app safe.
func TestBenignWhitelist(t *testing.T) {
	rep := check(t, map[string]string{
		"safe.php": `<?php
$ext = pathinfo($_FILES['pic']['name'], PATHINFO_EXTENSION);
$allowed = array('jpg', 'png', 'gif');
if (in_array($ext, $allowed)) {
	move_uploaded_file($_FILES['pic']['tmp_name'], "/up/img." . $ext);
}
`,
	}, Options{})
	if rep.Vulnerable {
		t.Fatalf("whitelisted upload must not be flagged: %+v", rep.Findings)
	}
	if rep.SinkCount == 0 {
		t.Error("the sink should still be examined")
	}
}

// A constant safe extension on the destination is safe.
func TestBenignConstantExtension(t *testing.T) {
	rep := check(t, map[string]string{
		"safe2.php": `<?php
$name = md5($_FILES['doc']['name']);
move_uploaded_file($_FILES['doc']['tmp_name'], "/up/" . $name . ".png");
`,
	}, Options{})
	if rep.Vulnerable {
		t.Fatalf("constant .png destination must not be flagged: %+v", rep.Findings)
	}
}

// Equality guard against the full extension list blocks the exploit when
// the destination is "name.ext" and ext is forced to a safe constant.
func TestBenignForcedExtension(t *testing.T) {
	rep := check(t, map[string]string{
		"safe3.php": `<?php
$ext = pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION);
if ($ext == "jpg") {
	move_uploaded_file($_FILES['f']['tmp_name'], "/up/x." . $ext);
}
`,
	}, Options{})
	if rep.Vulnerable {
		t.Fatalf("jpg-guarded upload must not be flagged: %+v", rep.Findings)
	}
}

// A blacklist that only blocks "php" misses "php5" — still vulnerable
// (Section VI extension-variant discussion).
func TestBlacklistMissesPhp5(t *testing.T) {
	rep := check(t, map[string]string{
		"blacklist.php": `<?php
$ext = pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION);
if ($ext != "php") {
	move_uploaded_file($_FILES['f']['tmp_name'], "/up/x." . $ext);
}
`,
	}, Options{})
	if !rep.Vulnerable {
		t.Fatal("php-only blacklist must still be flagged (php5 bypass)")
	}
	// The witness must use a non-"php" extension.
	for _, f := range rep.Findings {
		for name, v := range f.Witness {
			if strings.Contains(name, "ext") && v.S == "php" {
				t.Errorf("witness violates guard: %v", f.Witness)
			}
		}
	}
}

// No $_FILES access: locality analysis selects nothing, nothing to verify.
func TestNoUploadCode(t *testing.T) {
	rep := check(t, map[string]string{
		"plain.php": `<?php
echo "hello world";
file_put_contents("/tmp/log.txt", "some log line");
`,
	}, Options{})
	if rep.Vulnerable || len(rep.Roots) != 0 {
		t.Errorf("report = %+v", rep)
	}
}

// Untainted source: a constant file copied — Constraint-1 fails even
// though the name is attacker-ish.
func TestUntaintedSourceNotFlagged(t *testing.T) {
	rep := check(t, map[string]string{
		"untainted.php": `<?php
$n = $_FILES['f']['name'];
move_uploaded_file("/etc/passwd", "/up/" . $n);
$x = $n;
`,
	}, Options{})
	if rep.Vulnerable {
		t.Errorf("untainted source must not be flagged: %+v", rep.Findings)
	}
}

// file_put_contents with tainted content and unconstrained name.
func TestFilePutContentsSink(t *testing.T) {
	rep := check(t, map[string]string{
		"fpc.php": `<?php
$data = $_FILES['f']['tmp_name'];
$name = $_FILES['f']['name'];
file_put_contents("/up/" . $name, $data);
`,
	}, Options{})
	if !rep.Vulnerable {
		t.Fatal("file_put_contents sink must be detected")
	}
	if rep.Findings[0].Sink != "file_put_contents" {
		t.Errorf("sink = %s", rep.Findings[0].Sink)
	}
}

// The locality percentages: filler code dwarfs the upload function.
func TestLocalityPercentSmall(t *testing.T) {
	filler := "<?php\n"
	for i := 0; i < 120; i++ {
		filler += "function f" + itoa(i) + "($a) {\n\t$b = $a + 1;\n\t$c = $b * 2;\n\treturn $c;\n}\n"
	}
	rep := check(t, map[string]string{
		"filler.php": filler,
		"up.php": `<?php
function do_up() {
	move_uploaded_file($_FILES['x']['tmp_name'], "/u/" . $_FILES['x']['name']);
}
do_up();
`,
	}, Options{})
	if !rep.Vulnerable {
		t.Fatal("vulnerable upload must be found despite filler")
	}
	if rep.PercentAnalyzed > 20 {
		t.Errorf("analyzed %% = %.1f, want small", rep.PercentAnalyzed)
	}
	if rep.TotalLoC < 500 {
		t.Errorf("total LoC = %d", rep.TotalLoC)
	}
}

// Budget exhaustion: the Cimy User Extra Fields failure mode.
func TestBudgetExceededVerdict(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<?php\n$tmp = $_FILES['f']['tmp_name'];\n")
	for i := 0; i < 24; i++ {
		sb.WriteString("if ($c" + itoa(i) + ") { $x = " + itoa(i) + "; } else { $x = 0; }\n")
	}
	sb.WriteString("move_uploaded_file($tmp, \"/u/\" . $_FILES['f']['name']);\n")
	rep := check(t, map[string]string{"cimy.php": sb.String()},
		Options{Budgets: Budgets{MaxPaths: 2000}})
	if !rep.BudgetExceeded {
		t.Fatal("expected budget exceeded")
	}
	if rep.Vulnerable {
		t.Error("budget-exceeded scan must not report vulnerable (paper FN)")
	}
}

// Admin gating (Section VI): enabled, it suppresses the Event Registration
// Pro-style false positive; disabled (paper config), it flags it.
func TestAdminGatingExtension(t *testing.T) {
	sources := map[string]string{
		"admin-upload.php": `<?php
add_action('admin_menu', 'csv_upload_page');
function csv_upload_page() {
	move_uploaded_file($_FILES['csv']['tmp_name'], "/up/" . $_FILES['csv']['name']);
}
`,
	}
	paper := check(t, sources, Options{})
	if !paper.Vulnerable {
		t.Fatal("paper configuration must flag the admin uploader (the documented FP)")
	}
	gated := check(t, sources, Options{ModelAdminGating: true})
	if gated.Vulnerable {
		t.Fatal("admin gating must suppress the verdict")
	}
	if len(gated.Findings) == 0 || !gated.Findings[0].AdminGated {
		t.Errorf("finding should be recorded as admin-gated: %+v", gated.Findings)
	}
}

// Custom extension lists (Section VI): .phtml uploads caught only when
// configured.
func TestCustomExtensions(t *testing.T) {
	sources := map[string]string{
		"phtml.php": `<?php
$ext = pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION);
if ($ext == "phtml") {
	move_uploaded_file($_FILES['f']['tmp_name'], "/up/x." . $ext);
}
`,
	}
	std := check(t, sources, Options{})
	if std.Vulnerable {
		t.Fatal("default extensions should not flag .phtml")
	}
	custom := check(t, sources, Options{Extensions: []string{".php", ".php5", ".phtml"}})
	if !custom.Vulnerable {
		t.Fatal(".phtml must be flagged with the extended list")
	}
}

// The end(explode()) extension-extraction idiom with a whitelist is safe.
func TestExplodeEndWhitelistBenign(t *testing.T) {
	rep := check(t, map[string]string{
		"explode.php": `<?php
$parts = explode('.', $_FILES['f']['name']);
$ext = end($parts);
if ($ext == 'jpg' || $ext == 'jpeg' || $ext == 'png') {
	move_uploaded_file($_FILES['f']['tmp_name'], "/up/pic." . $ext);
}
`,
	}, Options{})
	if rep.Vulnerable {
		t.Errorf("explode/end whitelist must not be flagged: %+v", rep.Findings)
	}
}

// Multi-file app via include.
func TestMultiFileDetection(t *testing.T) {
	rep := check(t, map[string]string{
		"plugin/main.php": `<?php
include 'handler.php';
process_upload($_FILES['att']);
`,
		"plugin/handler.php": `<?php
function process_upload($f) {
	$dst = wp_upload_dir();
	move_uploaded_file($f['tmp_name'], $dst['path'] . '/' . $f['name']);
}
`,
	}, Options{})
	if !rep.Vulnerable {
		t.Fatalf("multi-file vulnerable app must be detected: %+v", rep)
	}
}

// Reports carry Table III's measurement columns.
func TestReportMetricsPopulated(t *testing.T) {
	rep := check(t, map[string]string{
		"m.php": `<?php
if ($a) { $x = 1; } else { $x = 2; }
move_uploaded_file($_FILES['f']['tmp_name'], "/u/" . $_FILES['f']['name']);
`,
	}, Options{})
	if rep.Paths < 1 || rep.Objects == 0 || rep.ObjectsPerPath <= 0 {
		t.Errorf("metrics: paths=%d objects=%d o/p=%.1f", rep.Paths, rep.Objects, rep.ObjectsPerPath)
	}
	if rep.Seconds <= 0 {
		t.Error("missing timing")
	}
}

// Strict-guarded upload where the name equality pins the full name.
func TestStrictNameEqualityBenign(t *testing.T) {
	rep := check(t, map[string]string{
		"pin.php": `<?php
$n = $_FILES['f']['name'];
if ($n === "report.pdf") {
	move_uploaded_file($_FILES['f']['tmp_name'], "/up/" . $n);
}
`,
	}, Options{})
	if rep.Vulnerable {
		t.Errorf("pinned name must not be flagged: %+v", rep.Findings)
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// A preg_match extension whitelist is understood (Section VI regex
// extension): the guard pins the suffix, so no executable upload exists.
func TestPregMatchWhitelistBenign(t *testing.T) {
	rep := check(t, map[string]string{
		"regex-safe.php": `<?php
$name = $_FILES['img']['name'];
if (preg_match('/\.(jpg|jpeg|png|gif)$/', $name)) {
	move_uploaded_file($_FILES['img']['tmp_name'], "/up/" . $name);
}
`,
	}, Options{})
	if rep.Vulnerable {
		t.Fatalf("regex whitelist must not be flagged: %+v", rep.Findings)
	}
	if rep.SinkCount == 0 {
		t.Error("sink should still be examined")
	}
}

// A preg_match blacklist that only blocks ".php" misses ".php5".
func TestPregMatchBlacklistBypassed(t *testing.T) {
	rep := check(t, map[string]string{
		"regex-blacklist.php": `<?php
$name = $_FILES['doc']['name'];
if (!preg_match('/\.php$/', $name)) {
	move_uploaded_file($_FILES['doc']['tmp_name'], "/up/" . $name);
}
`,
	}, Options{})
	if !rep.Vulnerable {
		t.Fatal("php-only regex blacklist must be flagged (.php5 bypass)")
	}
	for _, f := range rep.Findings {
		for name, v := range f.Witness {
			if strings.Contains(name, "name") || strings.Contains(name, "ext") {
				if strings.HasSuffix(v.S, ".php") && !strings.HasSuffix(v.S, ".php5") {
					// The full destination is what matters; individual
					// fragments may not end in .php. Check the combined name.
				}
			}
		}
	}
}

// An unmodelable regex falls back to a symbolic guard: the analysis stays
// sound (still flags) rather than assuming the guard works.
func TestPregMatchUnmodelableStillFlagged(t *testing.T) {
	rep := check(t, map[string]string{
		"regex-opaque.php": `<?php
$name = $_FILES['doc']['name'];
if (preg_match('/^[a-z0-9_]+\.[a-z]+$/', $name)) {
	move_uploaded_file($_FILES['doc']['tmp_name'], "/up/" . $name);
}
`,
	}, Options{})
	if !rep.Vulnerable {
		t.Fatal("opaque regex guard must not suppress the finding")
	}
}

// The finding's ExploitPath is the concrete server path under the witness;
// it must carry an executable extension.
func TestExploitPathConcrete(t *testing.T) {
	rep := check(t, map[string]string{
		"ep.php": `<?php
move_uploaded_file($_FILES['f']['tmp_name'], "/var/www/uploads/" . $_FILES['f']['name']);
`,
	}, Options{})
	if !rep.Vulnerable {
		t.Fatal("should be vulnerable")
	}
	p := rep.Findings[0].ExploitPath
	if !strings.HasPrefix(p, "/var/www/uploads/") {
		t.Errorf("ExploitPath = %q, want the constant prefix", p)
	}
	if !strings.HasSuffix(p, ".php") && !strings.HasSuffix(p, ".php5") {
		t.Errorf("ExploitPath = %q, want executable suffix", p)
	}
}

// Multi-file upload: foreach over $_FILES binds the pre-structured upload
// family, so taint and the extension structure survive.
func TestForeachOverFilesDetected(t *testing.T) {
	rep := check(t, map[string]string{
		"multi.php": `<?php
foreach ($_FILES as $key => $f) {
	move_uploaded_file($f['tmp_name'], "/up/" . $f['name']);
}
`,
	}, Options{})
	if !rep.Vulnerable {
		t.Fatal("foreach multi-upload must be detected")
	}
}

// The copy() and rename() sinks are modeled like move_uploaded_file.
func TestCopyAndRenameSinks(t *testing.T) {
	rep := check(t, map[string]string{
		"copy.php": `<?php
copy($_FILES['f']['tmp_name'], "/up/" . $_FILES['f']['name']);
`,
	}, Options{})
	if !rep.Vulnerable || rep.Findings[0].Sink != "copy" {
		t.Fatalf("copy sink: %+v", rep.Findings)
	}
	rep2 := check(t, map[string]string{
		"rename.php": `<?php
rename($_FILES['f']['tmp_name'], "/up/" . $_FILES['f']['name']);
`,
	}, Options{})
	if !rep2.Vulnerable || rep2.Findings[0].Sink != "rename" {
		t.Fatalf("rename sink: %+v", rep2.Findings)
	}
}

// Inequality blacklists are bypassed by double extensions: ext != "php"
// admits "jpg.php"-style values, and the verdict's witness proves it.
func TestDoubleExtensionBypass(t *testing.T) {
	rep := check(t, map[string]string{
		"double.php": `<?php
$ext = pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION);
if ($ext != "php" && $ext != "php5") {
	move_uploaded_file($_FILES['f']['tmp_name'], "/up/upload." . $ext);
}
`,
	}, Options{})
	if !rep.Vulnerable {
		t.Fatal("double-extension bypass must be detected")
	}
	// Witness extension is neither "php" nor "php5" yet ends with .php.
	for _, f := range rep.Findings {
		for name, v := range f.Witness {
			if strings.HasSuffix(name, "ext_f") {
				if v.S == "php" || v.S == "php5" {
					t.Errorf("witness violates guard: %s = %q", name, v.S)
				}
				if !strings.HasSuffix(f.ExploitPath, ".php") && !strings.HasSuffix(f.ExploitPath, ".php5") {
					t.Errorf("exploit path %q not executable", f.ExploitPath)
				}
			}
		}
	}
}

// An error-code guard ($_FILES[...]['error'] === 0) does not sanitize the
// name; still vulnerable.
func TestErrorCheckNotSanitizer(t *testing.T) {
	rep := check(t, map[string]string{
		"err.php": `<?php
if ($_FILES['f']['error'] === 0) {
	move_uploaded_file($_FILES['f']['tmp_name'], "/up/" . $_FILES['f']['name']);
}
`,
	}, Options{})
	if !rep.Vulnerable {
		t.Fatal("error-code guard must not suppress detection")
	}
}

// strtolower on the extension passes structure through: a lowercase
// whitelist still protects.
func TestStrtolowerWhitelistBenign(t *testing.T) {
	rep := check(t, map[string]string{
		"lower.php": `<?php
$ext = strtolower(pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION));
if ($ext == "jpg" || $ext == "png") {
	move_uploaded_file($_FILES['f']['tmp_name'], "/up/pic." . $ext);
}
`,
	}, Options{})
	if rep.Vulnerable {
		t.Fatalf("lowercased whitelist must not be flagged: %+v", rep.Findings)
	}
}

// Multi-file upload loop over indexed $_FILES arrays is detected with the
// structured name intact.
func TestMultiFileIndexedUploadDetected(t *testing.T) {
	rep := check(t, map[string]string{
		"multi-indexed.php": `<?php
for ($i = 0; $i < count($_FILES['docs']['name']); $i++) {
	$name = $_FILES['docs']['name'][$i];
	move_uploaded_file($_FILES['docs']['tmp_name'][$i], "/up/" . $name);
}
`,
	}, Options{})
	if !rep.Vulnerable {
		t.Fatal("indexed multi-file upload must be detected")
	}
}

// And a whitelisted multi-file upload is not flagged.
func TestMultiFileIndexedWhitelistBenign(t *testing.T) {
	rep := check(t, map[string]string{
		"multi-safe.php": `<?php
$i = 0;
$ext = pathinfo($_FILES['docs']['name'][$i], PATHINFO_EXTENSION);
if (in_array($ext, array('png', 'jpg'))) {
	move_uploaded_file($_FILES['docs']['tmp_name'][$i], "/up/m." . $ext);
}
`,
	}, Options{})
	if rep.Vulnerable {
		t.Fatalf("whitelisted multi-file upload flagged: %+v", rep.Findings)
	}
}

// Admin gating with the sink at file level through a gated function: the
// file root is gated only when every sink-reaching callee is an admin
// callback.
func TestAdminGatingFileRoot(t *testing.T) {
	sources := map[string]string{
		"file-root.php": `<?php
add_action('admin_menu', 'gated_upload');
function gated_upload() {
	move_uploaded_file($_FILES['a']['tmp_name'], "/u/" . $_FILES['a']['name']);
}
$probe = $_FILES['a']['name'];
gated_upload();
`,
	}
	gated := check(t, sources, Options{ModelAdminGating: true})
	if gated.Vulnerable {
		t.Fatalf("file root with only admin-gated sink functions must be suppressed: %+v", gated.Findings)
	}
}

// Mixed gating: one admin-gated and one public upload path — the public
// one keeps the app vulnerable.
func TestAdminGatingMixed(t *testing.T) {
	sources := map[string]string{
		"mixed.php": `<?php
add_action('admin_menu', 'admin_up');
function admin_up() {
	move_uploaded_file($_FILES['a']['tmp_name'], "/u/" . $_FILES['a']['name']);
}
function public_up() {
	move_uploaded_file($_FILES['b']['tmp_name'], "/u/" . $_FILES['b']['name']);
}
$x = $_FILES['b']['name'];
public_up();
admin_up();
`,
	}
	rep := check(t, sources, Options{ModelAdminGating: true})
	if !rep.Vulnerable {
		t.Fatal("public upload path must keep the app vulnerable despite gating")
	}
}
