package uchecker

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/obs"
)

// findingsFingerprint serializes the verdict-bearing portion of a report:
// the findings, the verdict, and the failure set. Metrics are excluded on
// purpose — the interning counters legitimately differ between the
// interned and ablated pipelines; the detector's OUTPUT must not.
func findingsFingerprint(t *testing.T, rep *AppReport) string {
	t.Helper()
	data, err := json.Marshal(struct {
		Vulnerable bool
		Findings   []Finding
		Failures   []Failure
		Paths      int
		SinkCount  int
	}{rep.Vulnerable, rep.Findings, rep.Failures, rep.Paths, rep.SinkCount})
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestInternAblationByteIdentical is the ablation guarantee behind
// -no-intern: with and without the hash-consing factory, across worker
// counts, the scanner's findings are byte-identical on corpus apps
// (including the true-negative Cimy miss) and synthetic multi-root apps.
func TestInternAblationByteIdentical(t *testing.T) {
	var targets []Target
	for _, name := range []string{
		"Foxypress 0.4.1.1-0.4.2.1",    // vulnerable, Table III
		"Cimy User Extra Fields 2.3.8", // the paper's known miss — must stay a miss
		"Avatar Uploader 6.x-1.2",
	} {
		app, ok := corpus.ByName(name)
		if !ok {
			t.Fatalf("missing corpus app %s", name)
		}
		targets = append(targets, Target{Name: app.Name, Sources: app.Sources})
	}
	targets = append(targets, multiRootTarget("ablate-multi", 7))

	for _, target := range targets {
		var want string
		for _, disable := range []bool{false, true} {
			for _, workers := range []int{1, 4} {
				rep, err := NewScanner(Options{Workers: workers, DisableIntern: disable}).
					Scan(context.Background(), target)
				if err != nil {
					t.Fatalf("%s (intern=%t w=%d): %v", target.Name, !disable, workers, err)
				}
				got := findingsFingerprint(t, rep)
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Errorf("%s: findings diverge at intern=%t workers=%d:\n got: %s\nwant: %s",
						target.Name, !disable, workers, got, want)
				}
			}
		}
	}
}

// reuseTarget returns an app built to light up every sharing counter:
//
//   - reuse.php forks the path condition on an unrelated symbolic branch
//     (COW fork → interp_pathcond_shared_nodes), then guards its sink with
//     a condition that contradicts the executable-extension constraint on
//     every path. The first path's check is Unsat, so the second path
//     re-asserts the structurally identical extension term — a fixpoint
//     memo hit, counted as smt_incremental_reuse. The two paths' dst
//     concat objects are distinct heap labels, so the reuse exists only
//     because interning collapses their translations to one pointer.
//   - vuln.php keeps the app's verdict vulnerable.
func reuseTarget(name string) Target {
	return Target{Name: name, Sources: map[string]string{
		"reuse.php": `<?php
$name = $_FILES['f']['name'];
if ($_POST['m'] == "x") {
	$tag = "a";
} else {
	$tag = "b";
}
if ($name == "safe.gif") {
	move_uploaded_file($_FILES['f']['tmp_name'], "/up/" . $name);
}
`,
		"vuln.php": `<?php
$n = $_FILES['g']['name'];
if (strlen($n) > 3) {
	move_uploaded_file($_FILES['g']['tmp_name'], "/uploads/" . $n);
}
`,
	}}
}

// TestInternCountersExported asserts the new sharing counters appear in
// AppReport.Metrics and in the rendered Prometheus exposition, and that
// the ablated pipeline reports none of the factory counters (nil factory
// = no interning work to count).
func TestInternCountersExported(t *testing.T) {
	target := reuseTarget("intern-counters")
	rep, err := NewScanner(Options{Workers: 2}).Scan(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Vulnerable {
		t.Fatal("expected vulnerable verdict (vuln.php)")
	}
	m := rep.Metrics
	// Every sharing counter must be live on this workload: misses count
	// distinct nodes, hits need structural sharing, incremental reuse needs
	// a re-asserted extension constraint, and the COW counter needs a
	// symbolic fork. Zero-valued counters are not exported (repo-wide
	// convention), so > 0 doubles as a presence check.
	for _, key := range []string{
		"smt_intern_misses", "smt_intern_hits", "smt_simplify_memo_hits",
		"smt_incremental_reuse", "interp_pathcond_shared_nodes",
	} {
		if m[key] <= 0 {
			t.Errorf("%s = %d, want > 0 (metrics: %v)", key, m[key], m)
		}
	}
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, "uchecker", []obs.LabeledMetrics{
		{Labels: map[string]string{"app": rep.Name}, Metrics: m},
	}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, metric := range []string{
		"uchecker_smt_intern_hits",
		"uchecker_smt_intern_misses",
		"uchecker_smt_simplify_memo_hits",
		"uchecker_smt_incremental_reuse",
		"uchecker_interp_pathcond_shared_nodes",
	} {
		if !strings.Contains(out, "# TYPE "+metric+" counter") || !strings.Contains(out, metric+"{") {
			t.Errorf("Prometheus exposition missing %s:\n%s", metric, out)
		}
	}

	// Ablated scan: factory counters are absent, not zero-but-misleading.
	ablated, err := NewScanner(Options{Workers: 2, DisableIntern: true}).Scan(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"smt_intern_hits", "smt_intern_misses", "smt_simplify_memo_hits", "smt_incremental_reuse"} {
		if _, ok := ablated.Metrics[key]; ok {
			t.Errorf("ablated scan exports factory counter %s", key)
		}
	}
	// The COW fork counter is independent of the factory and stays.
	if _, ok := ablated.Metrics["interp_pathcond_shared_nodes"]; !ok {
		t.Error("ablated scan lost interp_pathcond_shared_nodes")
	}
}

// TestInternCountersDeterministicAcrossWorkers pins the determinism
// contract for the new counters specifically: one factory per root,
// single-goroutine construction, canonical-order merge — so Workers must
// not leak into any sharing counter.
func TestInternCountersDeterministicAcrossWorkers(t *testing.T) {
	target := reuseTarget("intern-det")
	for k, v := range multiRootTarget("", 9).Sources {
		target.Sources[k] = v
	}
	counters := []string{
		"smt_intern_hits", "smt_intern_misses",
		"smt_simplify_memo_hits", "smt_incremental_reuse",
		"interp_pathcond_shared_nodes",
	}
	want := map[string]int64{}
	for i, workers := range []int{1, 2, 8} {
		rep, err := NewScanner(Options{Workers: workers}).Scan(context.Background(), target)
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range counters {
			got, ok := rep.Metrics[key]
			if !ok {
				t.Fatalf("Workers=%d: metric %s missing", workers, key)
			}
			if i == 0 {
				want[key] = got
				continue
			}
			if got != want[key] {
				t.Errorf("Workers=%d: %s = %d, want %d", workers, key, got, want[key])
			}
		}
	}
}

// TestInternFullReportParityAcrossWorkersWithAblation is the stronger
// cross-product: the full deterministic report fingerprint (everything
// but wall-clock and memory) matches across Workers=1,2,8 within each
// intern mode.
func TestInternFullReportParityAcrossWorkersWithAblation(t *testing.T) {
	target := multiRootTarget("intern-parity", 6)
	for _, disable := range []bool{false, true} {
		var want string
		for _, workers := range []int{1, 2, 8} {
			rep, err := NewScanner(Options{Workers: workers, DisableIntern: disable}).
				Scan(context.Background(), target)
			if err != nil {
				t.Fatal(err)
			}
			got := reportFingerprint(t, rep)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Errorf("intern=%t Workers=%d: report fingerprint differs", !disable, workers)
			}
		}
	}
}
