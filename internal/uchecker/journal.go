// Crash-safe batch scanning: the Scanner-side integration of the
// internal/scanjournal layer.
//
// A corpus sweep (Section IV-B screens thousands of plugins; the
// production target is millions) outlives the patience of any single
// process: OOM kills, node preemptions and plain SIGKILLs are routine.
// ScanBatchJournaled makes each completed per-target report durable the
// moment it exists — an append-only, checksummed, fsynced journal — so a
// killed sweep resumes by replaying finished targets byte-identically
// and re-scanning only the in-flight ones. A content-addressed result
// cache additionally skips targets whose sources and scan options are
// unchanged since a previous run.
//
// Determinism under resume: replayed reports are the recorded bytes of
// the original scan, re-scanned targets are deterministic given the same
// options (see the Workers determinism contract), and the returned
// slice is index-aligned with targets — so a crashed-and-resumed sweep
// merges to reports byte-identical (modulo wall-clock fields) to an
// uninterrupted run, at any worker count. The crash-matrix acceptance
// test kills the pipeline at every journal-write boundary to enforce
// exactly that.
package uchecker

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/scanjournal"
)

// BatchStats summarizes the crash-safety layer's work for one
// ScanBatchJournaled call. It is deliberately separate from the per-app
// AppReports: replayed and cached reports must stay byte-identical to
// their original scans, so batch-level accounting cannot live inside
// them.
type BatchStats struct {
	// Targets is the batch size.
	Targets int
	// Scanned counts targets that ran the full pipeline this call.
	Scanned int
	// Replayed counts targets served from the resume journal.
	Replayed int
	// CacheHits / CacheMisses count content-addressed cache lookups
	// (only targets not already replayed consult the cache).
	CacheHits   int
	CacheMisses int
	// SalvagedRecords is the number of valid journal records recovered
	// from Options.ResumeFrom.
	SalvagedRecords int
	// Failures are batch-layer failures: FailJournalCorrupt when
	// recovery salvaged a corrupt journal, FailInternal for non-fatal
	// cache write errors. Per-target failures stay on their AppReports.
	Failures []Failure
	// Metrics are the batch-layer counters (cache_hits, cache_misses,
	// journal_records_salvaged, journal_records_corrupt,
	// journal_replayed, batch_scanned, …), kept separate from the
	// deterministic per-app AppReport.Metrics.
	Metrics obs.Metrics
}

// optionsFingerprint is the configuration identity used by both the
// journal manifest and the cache key: any option that can alter a
// report's content participates (budgets, retries, extensions, the
// degradation ladder, admin gating), while options that provably cannot
// (Workers — reports are byte-identical at any worker count — and the
// observability hooks) do not. The scanjournal format version is
// included so a format bump invalidates everything at once.
func (s *Scanner) optionsFingerprint() string {
	o := s.opts
	// The budget set is fingerprinted through the materialized per-layer
	// option structs, byte-identically to the pre-Budgets format, and the
	// engine token is appended only when a non-default engine is selected
	// — so journals and cache entries written before the consolidation
	// (or by tree-engine scans) stay replayable. The engines themselves
	// produce byte-identical reports; the token is still part of the
	// identity so a cross-engine miscompare can never hide behind a
	// cache hit.
	// The interpreter slice is printed through a budget-field projection
	// rather than interp.Options directly: Options also carries
	// ablation-only knobs (NoBlockCache) that provably cannot change a
	// report's content and must not invalidate existing journals.
	iop := o.Budgets.interpOptions()
	ifp := struct{ MaxPaths, MaxObjects, LoopUnroll, MaxCallDepth int }{
		iop.MaxPaths, iop.MaxObjects, iop.LoopUnroll, iop.MaxCallDepth,
	}
	fp := fmt.Sprintf("v%d ext=%v interp=%+v solver=%+v noloc=%t admin=%t keepsmt=%t retries=%d root-timeout=%v max-root-failures=%d nodeg=%t nointern=%t",
		scanjournal.FormatVersion, o.Extensions, ifp, o.Budgets.solverOptions(),
		o.DisableLocality, o.ModelAdminGating, o.KeepSMT, o.MaxRetries,
		o.RootTimeout, o.MaxRootFailures, o.DisableDegraded, o.DisableIntern)
	if o.Engine != "" && o.Engine != interp.EngineTree {
		fp += fmt.Sprintf(" engine=%s", o.Engine)
	}
	// Same appended-token discipline as engine=: inline mode (the
	// default) omits the token so pre-summary journals stay replayable,
	// while summary mode gets its own identity — its reports differ in
	// path counters, so a cross-mode cache hit must be impossible.
	if o.Interproc != "" && o.Interproc != interp.InterprocInline {
		fp += fmt.Sprintf(" interproc=%s", o.Interproc)
	}
	return fp
}

// OptionsFingerprint exposes the configuration identity to other
// persistence layers built on the same discipline — the scan daemon
// keys its job-result cache and its job journal's manifest with exactly
// this fingerprint, so a daemon restart under changed options re-scans
// instead of serving a stale report, and a daemon and a batch sweep
// sharing one cache directory share hits.
func (s *Scanner) OptionsFingerprint() string { return s.optionsFingerprint() }

// decodeReport unmarshals a journaled/cached report. The JSON round trip
// is stable: re-marshaling the decoded report reproduces the recorded
// bytes, which is what makes replayed reports byte-identical.
func decodeReport(raw json.RawMessage) (*AppReport, error) {
	rep := &AppReport{}
	if err := json.Unmarshal(raw, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// scheduleCancelledReport is the report of a target that never started:
// visible, typed, excluded from failure accounting — never a nil slot.
func scheduleCancelledReport(name, msg string) *AppReport {
	return &AppReport{
		Name:     name,
		Failures: []Failure{{Root: name, Stage: StageSchedule, Class: FailCancelled, Err: msg}},
	}
}

// ScanBatchJournaled is ScanBatch plus the crash-safety layer's summary
// and error. The reports slice is always fully populated and
// index-aligned with targets, even on abort.
//
// Error semantics are crash semantics: a journal open/append/sync
// failure means durability is gone, so the batch stops admitting new
// targets — completed reports are kept, unstarted targets get
// FailCancelled schedule reports, and the journal error is returned.
// (Recovery of a corrupt ResumeFrom journal is NOT an error: the valid
// prefix is salvaged, the rest re-scanned, and the corruption surfaces
// as a FailJournalCorrupt entry in BatchStats.Failures.) When the
// journal is healthy the returned error is ctx.Err(), mirroring Scan.
func (s *Scanner) ScanBatchJournaled(ctx context.Context, targets []Target) ([]*AppReport, *BatchStats, error) {
	reports := make([]*AppReport, len(targets))
	stats := &BatchStats{Targets: len(targets), Metrics: obs.NewMetrics()}
	if len(targets) == 0 {
		return reports, stats, nil
	}
	fp := s.optionsFingerprint()

	var (
		mu       sync.Mutex
		abortErr error
	)
	abort := func(err error) {
		mu.Lock()
		if abortErr == nil {
			abortErr = err
		}
		mu.Unlock()
	}
	aborted := func() error {
		mu.Lock()
		defer mu.Unlock()
		return abortErr
	}
	// abortAll cancels every unfilled slot and finalizes stats — the
	// "process crashed" epilogue for fatal setup errors.
	abortAll := func(err error) ([]*AppReport, *BatchStats, error) {
		abort(err)
		for i := range reports {
			if reports[i] == nil {
				reports[i] = scheduleCancelledReport(targets[i].Name, "batch aborted: "+err.Error())
			}
		}
		s.finishBatchStats(stats)
		return reports, stats, err
	}

	// --- Recovery: salvage the resume journal, if any ---
	var replayed map[string]json.RawMessage
	var salvaged []scanjournal.Record
	resumeCorrupt := false
	if s.opts.ResumeFrom != "" {
		rec, err := scanjournal.Read(s.opts.ResumeFrom)
		switch {
		case err != nil && os.IsNotExist(err):
			// First run of the sweep: nothing to resume.
		case err != nil:
			return abortAll(fmt.Errorf("resume journal: %w", err))
		default:
			rp := scanjournal.Fold(rec)
			salvaged = rec.Records[:rp.Salvaged]
			// Byte-level (torn tail, bad checksum) and semantic
			// (duplicate finish, unknown type, missing manifest)
			// corruption are handled identically: both leave an
			// untrusted region that same-file resume must compact away —
			// otherwise every later resume's Fold stops at the same
			// offending record and all subsequently appended work stays
			// permanently invisible.
			resumeCorrupt = rp.Corrupt != nil
			stats.SalvagedRecords = rp.Salvaged
			stats.Metrics.Add("journal_records_salvaged", int64(rp.Salvaged))
			if rp.Corrupt != nil {
				// Corruption never aborts recovery: salvage the prefix,
				// surface exactly one typed failure, re-scan the rest.
				stats.Metrics.Add("journal_records_corrupt", 1)
				stats.Failures = append(stats.Failures, Failure{
					Root:  s.opts.ResumeFrom,
					Stage: StageJournal,
					Class: FailJournalCorrupt,
					Err:   rp.Corrupt.String(),
				})
			}
			if rp.Fingerprint == fp {
				replayed = rp.Finished
			} else if len(rp.Finished) > 0 {
				// The journal was written under different options: its
				// reports are not this configuration's reports. Re-scan
				// everything (the cache is keyed the same way, so it
				// misses too).
				stats.Metrics.Add("journal_fingerprint_mismatch", 1)
			}
		}
	}

	// --- Cache ---
	var cache *scanjournal.Cache
	if s.opts.CacheDir != "" {
		c, err := scanjournal.OpenCache(s.opts.CacheDir, s.opts.FaultHook)
		if err != nil {
			return abortAll(err)
		}
		cache = c
	}

	// --- Journal writer ---
	var jw *scanjournal.Writer
	sameFile := s.opts.Journal != "" && s.opts.Journal == s.opts.ResumeFrom
	if s.opts.Journal != "" {
		if sameFile && resumeCorrupt {
			// New appends must not land after garbage — byte-level OR
			// semantic: atomically compact the journal down to its
			// salvaged (semantically valid) prefix first. A crash
			// mid-compaction leaves the original file intact (temp-file +
			// rename).
			if err := scanjournal.CompactHook(s.opts.Journal, s.opts.FaultHook, salvaged); err != nil {
				return abortAll(fmt.Errorf("journal compaction: %w", err))
			}
		}
		w, err := scanjournal.OpenWriter(s.opts.Journal, s.opts.FaultHook)
		if err != nil {
			return abortAll(err)
		}
		jw = w
		defer jw.Close()
	}
	// All appends absorb transient write faults with a bounded
	// deterministic-jitter retry before declaring crash semantics: a
	// single flaky O_APPEND no longer costs the whole batch. Persistent
	// faults still exhaust the budget and abort — the crash matrix
	// depends on that.
	appendRec := func(rec scanjournal.Record) error {
		retries, err := scanjournal.DefaultRetry.Do(rec.Type+":"+rec.Name, func() error {
			return jw.Append(rec)
		})
		if retries > 0 {
			mu.Lock()
			stats.Metrics.Add("journal_append_retries", int64(retries))
			mu.Unlock()
		}
		return err
	}
	if jw != nil {
		names := make([]string, len(targets))
		for i, t := range targets {
			names[i] = t.Name
		}
		if err := appendRec(scanjournal.Record{
			Type:        scanjournal.TypeManifest,
			Fingerprint: fp,
			Targets:     names,
			At:          time.Now(),
		}); err != nil {
			return abortAll(err)
		}
	}
	appendFinish := func(i int, name string, raw json.RawMessage) error {
		if jw == nil {
			return nil
		}
		return appendRec(scanjournal.Record{
			Type: scanjournal.TypeFinish, Name: name, Index: i, At: time.Now(), Report: raw,
		})
	}
	// drained reports whether the graceful-drain signal has fired. Unlike
	// ctx cancellation it only gates target admission: in-flight scans
	// finish and journal.
	drained := func() bool {
		if s.opts.Drain == nil {
			return false
		}
		select {
		case <-s.opts.Drain:
			return true
		default:
			return false
		}
	}

	// --- The sweep ---
	runTarget := func(i int) {
		name := targets[i].Name
		if err := aborted(); err != nil {
			reports[i] = scheduleCancelledReport(name, "batch aborted: "+err.Error())
			return
		}
		if ctx.Err() != nil {
			// The operator cancelled mid-batch: unstarted targets are
			// still accounted for — a typed FailCancelled report each,
			// never a silent drop from the returned slice.
			reports[i] = scheduleCancelledReport(name, "batch cancelled before target started")
			return
		}
		if drained() {
			// Graceful drain: this target never started, so it gets a
			// schedule report and — critically — NO journal record: the
			// next resume (or the shard's next lease holder) re-scans it.
			reports[i] = scheduleCancelledReport(name, "batch draining: target not started")
			return
		}
		// 1. Journal replay: a finish record from the resumed sweep is
		// the report, byte-identical. Replay is keyed by (index, name)
		// — never name alone — so two batch targets that share a name
		// (loadTarget derives names from base names) each replay their
		// own slot's report.
		if raw, ok := replayed[scanjournal.TargetKey(i, name)]; ok {
			if rep, err := decodeReport(raw); err == nil {
				reports[i] = rep
				mu.Lock()
				stats.Replayed++
				mu.Unlock()
				if !sameFile {
					// Resuming into a different journal file: re-journal
					// the replayed report so the new journal is
					// self-contained for the next resume.
					if err := appendFinish(i, name, raw); err != nil {
						abort(err)
					}
				}
				return
			}
			// A finish record that passed its checksum but does not decode
			// is treated as absent: fall through and re-scan.
		}
		// 2. Content-addressed cache: unchanged sources + unchanged
		// options = the previous run's bytes.
		var key string
		if cache != nil {
			key = scanjournal.CacheKey(targets[i].Sources, fp)
			if raw, ok := cache.Get(key); ok {
				if rep, err := decodeReport(raw); err == nil {
					reports[i] = rep
					mu.Lock()
					stats.CacheHits++
					mu.Unlock()
					if err := appendFinish(i, name, raw); err != nil {
						abort(err)
					}
					return
				}
			}
			mu.Lock()
			stats.CacheMisses++
			mu.Unlock()
		}
		// 3. Scan. The start record marks the target in-flight: if the
		// process dies before the finish record lands, resume re-scans it.
		if jw != nil {
			if err := appendRec(scanjournal.Record{
				Type: scanjournal.TypeStart, Name: name, Index: i, At: time.Now(),
			}); err != nil {
				abort(err)
				reports[i] = scheduleCancelledReport(name, "batch aborted: "+err.Error())
				return
			}
		}
		rep, _ := s.scan(ctx, targets[i], false)
		reports[i] = rep
		mu.Lock()
		stats.Scanned++
		mu.Unlock()
		if ctx.Err() != nil {
			// An interrupted scan is partial: journaling or caching it as
			// finished would replay a wrong report on resume. Leave the
			// start record dangling — resume re-scans.
			return
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			return // unreachable for AppReport; the scan result still stands
		}
		if err := appendFinish(i, name, raw); err != nil {
			abort(err)
			return
		}
		if cache != nil {
			if err := cache.Put(key, raw); err != nil {
				// A failed Put costs a future re-scan, nothing else — but
				// it is visible, not silent.
				mu.Lock()
				stats.Metrics.Add("cache_put_failures", 1)
				stats.Failures = append(stats.Failures, Failure{
					Root: name, Stage: StageJournal, Class: FailInternal,
					Err: "cache put: " + err.Error(),
				})
				mu.Unlock()
			}
		}
	}

	workers := s.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(targets) {
		workers = len(targets)
	}
	if workers <= 1 {
		for i := range targets {
			runTarget(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					runTarget(i)
				}
			}()
		}
		for i := range targets {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	s.finishBatchStats(stats)
	if err := aborted(); err != nil {
		return reports, stats, err
	}
	return reports, stats, ctx.Err()
}

// finishBatchStats folds the counters into the batch metric set.
func (s *Scanner) finishBatchStats(stats *BatchStats) {
	stats.Metrics.Add("batch_targets", int64(stats.Targets))
	stats.Metrics.Add("batch_scanned", int64(stats.Scanned))
	stats.Metrics.Add("journal_replayed", int64(stats.Replayed))
	stats.Metrics.Add("cache_hits", int64(stats.CacheHits))
	stats.Metrics.Add("cache_misses", int64(stats.CacheMisses))
}
