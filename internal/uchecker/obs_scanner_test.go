package uchecker

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// TestHookSerialization is the hook-safety regression test: it installs a
// deliberately non-thread-safe OnSpan callback (unsynchronized counter
// increments and slice appends) and scans a 16-root app with Workers=8.
// Before hook serialization, worker goroutines invoked the hook
// concurrently and this test failed under -race; the per-Scanner hookMu
// now guarantees the callback never observes concurrency.
func TestHookSerialization(t *testing.T) {
	target := multiRootTarget("hook-race", 16)

	// Plain shared state, intentionally without any synchronization: the
	// race detector flags any concurrent hook invocation.
	spanCalls := 0
	var spanNames []string

	rec := obs.NewRecorder()
	opts := Options{
		Workers: 8,
		Trace:   rec,
		OnSpan: func(sp obs.Span) {
			spanCalls++
			spanNames = append(spanNames, sp.Name)
		},
	}
	rep, err := NewScanner(opts).Scan(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Vulnerable {
		t.Fatal("expected vulnerable verdict")
	}
	if spanCalls == 0 || len(spanNames) != spanCalls {
		t.Errorf("OnSpan calls = %d, recorded = %d", spanCalls, len(spanNames))
	}
	// Every finished span must have been delivered to OnSpan too.
	if rec.Len() != spanCalls {
		t.Errorf("recorder has %d spans, OnSpan saw %d", rec.Len(), spanCalls)
	}
}

// TestScanBatchHookSerialization covers the batch path: hooks fire from
// many concurrent app scans and must still be serialized.
func TestScanBatchHookSerialization(t *testing.T) {
	targets := []Target{
		multiRootTarget("batch-a", 6),
		multiRootTarget("batch-b", 6),
		multiRootTarget("batch-c", 6),
	}
	calls := 0 // unsynchronized on purpose; -race is the assertion
	opts := Options{
		Workers: 8,
		OnSpan:  func(sp obs.Span) { calls++ },
	}
	reports := NewScanner(opts).ScanBatch(context.Background(), targets)
	for i, rep := range reports {
		if rep == nil || !rep.Vulnerable {
			t.Fatalf("target %d: unexpected report %+v", i, rep)
		}
	}
	if calls == 0 {
		t.Error("hooks never fired")
	}
}

// TestScanMetricsDeterministicAcrossWorkers asserts the rendered
// Prometheus exposition — the byte-level face of AppReport.Metrics — is
// identical for Workers=1,2,8. Counters count work, not time, and merge
// with commutative/associative operations, so scheduling must not leak in.
func TestScanMetricsDeterministicAcrossWorkers(t *testing.T) {
	target := multiRootTarget("metrics-det", 9)
	var want string
	for _, workers := range []int{1, 2, 8} {
		rep, err := NewScanner(Options{Workers: workers}).Scan(context.Background(), target)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := obs.WritePrometheus(&buf, "uchecker", []obs.LabeledMetrics{
			{Labels: map[string]string{"app": rep.Name}, Metrics: rep.Metrics},
		}); err != nil {
			t.Fatal(err)
		}
		got := buf.String()
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("Workers=%d metrics differ:\n got: %s\nwant: %s", workers, got, want)
		}
	}
}

// TestInstrumentationDoesNotChangeFindings asserts a fully instrumented
// scan (Trace + OnSpan) produces a byte-identical report to an
// uninstrumented one: observability must be a read-only side channel.
func TestInstrumentationDoesNotChangeFindings(t *testing.T) {
	target := multiRootTarget("instrument", 5)

	plain, err := NewScanner(Options{Workers: 4}).Scan(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	instrumented, err := NewScanner(Options{
		Workers: 4,
		Trace:   obs.NewRecorder(),
		OnSpan:  func(obs.Span) {},
	}).Scan(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportFingerprint(t, instrumented), reportFingerprint(t, plain); got != want {
		t.Errorf("instrumented report differs:\n got: %s\nwant: %s", got, want)
	}
}

// TestScanSpanTree checks the recorded span hierarchy: one "scan" span
// per app with "parse" and "locality" children, one "root" span per
// locality root, each with at least one "attempt" rung containing
// "interp" (and "verify" when sinks were recorded).
func TestScanSpanTree(t *testing.T) {
	const nRoots = 4
	rec := obs.NewRecorder()
	rep, err := NewScanner(Options{Workers: 2, Trace: rec}).Scan(
		context.Background(), multiRootTarget("span-tree", nRoots))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Roots) != nRoots {
		t.Fatalf("roots = %d, want %d", len(rep.Roots), nRoots)
	}

	spans := rec.Snapshot()
	byID := map[obs.SpanID]obs.Span{}
	count := map[string]int{}
	for _, sp := range spans {
		byID[sp.ID] = sp
		count[sp.Name]++
		if sp.End.IsZero() {
			t.Errorf("span %s (%d) never ended", sp.Name, sp.ID)
		}
	}
	if count["scan"] != 1 {
		t.Fatalf("scan spans = %d, want 1", count["scan"])
	}
	if count["parse"] != 1 || count["locality"] != 1 {
		t.Errorf("parse=%d locality=%d, want 1 each", count["parse"], count["locality"])
	}
	if count["root"] != nRoots {
		t.Errorf("root spans = %d, want %d", count["root"], nRoots)
	}
	if count["attempt"] < nRoots {
		t.Errorf("attempt spans = %d, want >= %d", count["attempt"], nRoots)
	}
	if count["interp"] < nRoots || count["verify"] < nRoots {
		t.Errorf("interp=%d verify=%d, want >= %d each", count["interp"], count["verify"], nRoots)
	}
	if count["solve"] == 0 {
		t.Error("no solve spans for a vulnerable app")
	}
	// Parent links: parse/locality/root under scan; attempt under root;
	// interp/verify under attempt; model/solve under verify.
	wantParent := map[string]string{
		"parse": "scan", "locality": "scan", "root": "scan",
		"attempt": "root", "fallback": "root",
		"interp": "attempt", "verify": "attempt",
		"model": "verify", "solve": "verify",
	}
	for _, sp := range spans {
		want, ok := wantParent[sp.Name]
		if !ok {
			if sp.Name != "scan" {
				t.Errorf("unexpected span name %q", sp.Name)
			}
			continue
		}
		parent, ok := byID[sp.Parent]
		if !ok {
			t.Errorf("span %s has dangling parent %d", sp.Name, sp.Parent)
			continue
		}
		if parent.Name != want {
			t.Errorf("span %s parented to %q, want %q", sp.Name, parent.Name, want)
		}
	}
	// The root spans carry the root name attribute.
	for _, sp := range spans {
		if sp.Name == "root" && sp.Attr("root") == "" {
			t.Errorf("root span %d missing root attr", sp.ID)
		}
	}
}

// TestScanMetricsContent spot-checks the counter inventory on a known
// workload: n roots, each with one taint-reaching sink.
func TestScanMetricsContent(t *testing.T) {
	const nRoots = 6
	rep, err := NewScanner(Options{Workers: 3}).Scan(
		context.Background(), multiRootTarget("metrics-content", nRoots))
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if m == nil {
		t.Fatal("AppReport.Metrics is nil")
	}
	if got := m["locality_roots_found"]; got != nRoots {
		t.Errorf("locality_roots_found = %d, want %d", got, nRoots)
	}
	if got := m["locality_files_total"]; got != nRoots {
		t.Errorf("locality_files_total = %d, want %d", got, nRoots)
	}
	if got := m["interp_paths_total"]; got != int64(rep.Paths) {
		t.Errorf("interp_paths_total = %d, want %d (rep.Paths)", got, rep.Paths)
	}
	if got := m["scan_findings"]; got != int64(len(rep.Findings)) {
		t.Errorf("scan_findings = %d, want %d", got, len(rep.Findings))
	}
	if got := m["scan_sink_candidates"]; got != int64(rep.SinkCount) {
		t.Errorf("scan_sink_candidates = %d, want %d", got, rep.SinkCount)
	}
	for _, key := range []string{
		"interp_paths_forked", "interp_budget_checks", "interp_live_envs_peak",
		"interp_objects_allocated", "smt_checks", "smt_models_tried",
		"smt_verify_reevals",
	} {
		if m[key] <= 0 {
			t.Errorf("metric %s = %d, want > 0 (metrics: %v)", key, m[key], m)
		}
	}
}

// TestScanMetricsFailureClasses asserts failure-class counters land in
// the metric set with sanitized names (path-budget → path_budget) and
// agree with FailureCounts.
func TestScanMetricsFailureClasses(t *testing.T) {
	rep, err := NewScanner(Options{
		Budgets: Budgets{MaxPaths: 4},
	}).Scan(context.Background(), budgetBlowupTarget())
	if err != nil {
		t.Fatal(err)
	}
	want := int64(rep.FailureCounts[FailPathBudget])
	if want == 0 {
		t.Fatal("path budget did not trip")
	}
	if got := rep.Metrics["scan_failures_path_budget"]; got != want {
		t.Errorf("scan_failures_path_budget = %d, want %d", got, want)
	}
	if got := rep.Metrics["scan_retries"]; got != int64(rep.Retries) {
		t.Errorf("scan_retries = %d, want %d", got, rep.Retries)
	}
	degraded := int64(0)
	for _, f := range rep.Findings {
		if f.Degraded {
			degraded++
		}
	}
	if got := rep.Metrics["scan_findings_degraded"]; got != degraded {
		t.Errorf("scan_findings_degraded = %d, want %d", got, degraded)
	}
}

// TestCancelledMidRetryClassification covers the ladder/cancellation
// interaction: a root that fails retryably on rungs 0 and 1, then hits
// the scan deadline inside rung 2, must classify the rung-2 failure as
// FailCancelled — never as a solver- or path-budget failure — and the
// cancelled failure must stay out of FailureCounts (it is an operator
// decision, not a root defect).
func TestCancelledMidRetryClassification(t *testing.T) {
	target := budgetBlowupTarget()

	// Stateful hook: rungs 0 and 1 run normally (and blow the tiny path
	// budget); the third RootStart stalls past the scan deadline.
	var starts atomic.Int64
	hook := func(p faultinject.Point, detail string) error {
		if p == faultinject.RootStart && starts.Add(1) >= 3 {
			time.Sleep(2 * time.Second)
		}
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()

	rep, err := NewScanner(Options{
		Budgets:    Budgets{MaxPaths: 4},
		MaxRetries: 2,
		FaultHook:  hook,
	}).Scan(ctx, target)
	if err == nil {
		t.Fatal("expected ctx deadline error from Scan")
	}
	if got := starts.Load(); got < 3 {
		t.Fatalf("RootStart fired %d times, want >= 3 (ladder never reached rung 2)", got)
	}

	var cancelled, budget int
	for _, fl := range rep.Failures {
		switch fl.Class {
		case FailCancelled:
			cancelled++
			if fl.Attempt != 2 {
				t.Errorf("cancelled failure on attempt %d, want 2: %+v", fl.Attempt, fl)
			}
		case FailPathBudget:
			budget++
		case FailSolverBudget:
			t.Errorf("deadline misclassified as solver budget: %+v", fl)
		}
	}
	if cancelled != 1 {
		t.Fatalf("cancelled failures = %d, want exactly 1 (failures: %v)", cancelled, rep.Failures)
	}
	if budget != 2 {
		t.Errorf("path-budget failures = %d, want 2 (rungs 0 and 1)", budget)
	}
	// FailureCounts aggregates only countable failures: no cancelled key.
	if n, ok := rep.FailureCounts[FailCancelled]; ok {
		t.Errorf("FailureCounts contains cancelled (%d); operator cancellation is not a root defect", n)
	}
	if rep.FailureCounts[FailPathBudget] != 2 {
		t.Errorf("FailureCounts[path-budget] = %d, want 2", rep.FailureCounts[FailPathBudget])
	}
	// And the metric face agrees.
	if _, ok := rep.Metrics["scan_failures_cancelled"]; ok {
		t.Error("metrics contain scan_failures_cancelled")
	}
	if got := rep.Metrics["scan_failures_path_budget"]; got != 2 {
		t.Errorf("scan_failures_path_budget = %d, want 2", got)
	}
}
