package uchecker

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// budgetBlowupTarget is a seeded vulnerable app whose path exploration
// forks well past tiny budgets before any path reaches the sink: the live
// path set doubles at each if, so MaxPaths=4 aborts mid-file and symbolic
// execution records no sink hits at all — the workload the taint-only
// fallback rung exists for.
func budgetBlowupTarget() Target {
	src := "<?php\n$name = $_FILES['f']['name'];\n$d = \"/up\";\n"
	for i := 0; i < 6; i++ {
		src += fmt.Sprintf("if (strlen($name) > %d) { $d = $d . \"/x%d\"; }\n", i, i)
	}
	src += "move_uploaded_file($_FILES['f']['tmp_name'], $d . \"/\" . $name);\n"
	return Target{Name: "blowup", Sources: map[string]string{"blowup.php": src}}
}

// findingsJSON serializes a finding slice for byte-level comparison.
func findingsJSON(t *testing.T, fs []Finding) string {
	t.Helper()
	data, err := json.Marshal(fs)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestPanicIsolation is the tentpole acceptance test: panicking 1 of N
// roots leaves the other N-1 roots' findings byte-identical to a
// fault-free run, with a Panic-class failure carrying the recovered stack
// — and the process survives.
func TestPanicIsolation(t *testing.T) {
	target := multiRootTarget("panicky", 6)
	const victim = "handler03.php"

	clean, err := NewScanner(Options{Workers: 4}).Scan(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := NewScanner(Options{
		Workers:   4,
		FaultHook: faultinject.PanicOn(faultinject.RootStart, victim),
	}).Scan(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}

	// The surviving roots' verified findings are byte-identical to the
	// fault-free run's findings minus the victim's.
	var wantSurvivors, gotSurvivors []Finding
	for _, f := range clean.Findings {
		if f.File != victim {
			wantSurvivors = append(wantSurvivors, f)
		}
	}
	for _, f := range faulty.Findings {
		if !f.Degraded {
			gotSurvivors = append(gotSurvivors, f)
		}
	}
	if got, want := findingsJSON(t, gotSurvivors), findingsJSON(t, wantSurvivors); got != want {
		t.Errorf("surviving findings drifted under injected panic\n got: %s\nwant: %s", got, want)
	}
	if !faulty.Vulnerable {
		t.Error("verdict lost: the 5 surviving roots still prove the app vulnerable")
	}

	// The victim surfaces as exactly one FailPanic failure with a stack.
	if n := faulty.FailureCounts[FailPanic]; n != 1 {
		t.Errorf("FailureCounts[panic] = %d, want 1", n)
	}
	var panics []Failure
	for _, fl := range faulty.Failures {
		if fl.Class == FailPanic {
			panics = append(panics, fl)
		}
	}
	if len(panics) != 1 {
		t.Fatalf("panic failures = %v, want exactly 1", panics)
	}
	p := panics[0]
	if p.Root != victim {
		t.Errorf("panic attributed to %q, want %q", p.Root, victim)
	}
	if p.Stage != StageSymExec {
		t.Errorf("panic stage = %q, want %q", p.Stage, StageSymExec)
	}
	if p.Stack == "" {
		t.Error("panic failure carries no stack")
	}

	// The ladder's fallback still extracted degraded signal from the
	// panicked root.
	degradedVictim := false
	for _, f := range faulty.Findings {
		if f.Degraded && f.File == victim {
			degradedVictim = true
		}
	}
	if !degradedVictim {
		t.Errorf("no degraded finding for the panicked root; findings: %v", faulty.Findings)
	}

	// Deterministic even under injection: Workers=1 reproduces the report.
	serial, err := NewScanner(Options{
		Workers:   1,
		FaultHook: faultinject.PanicOn(faultinject.RootStart, victim),
	}).Scan(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	// Stacks differ across goroutines; compare everything else.
	stripStacks := func(rep *AppReport) *AppReport {
		clone := *rep
		clone.Failures = append([]Failure(nil), rep.Failures...)
		for i := range clone.Failures {
			clone.Failures[i].Stack = ""
		}
		return &clone
	}
	if reportFingerprint(t, stripStacks(faulty)) != reportFingerprint(t, stripStacks(serial)) {
		t.Error("injected-panic report differs across worker counts")
	}
}

// TestDegradedFallback is the budget-exhaustion acceptance test: a seeded
// vulnerable root whose exploration blows a tiny path budget — and which
// under the paper's semantics returns nothing — now yields at least one
// Degraded finding from the taint-only fallback, without flipping the
// Vulnerable verdict.
func TestDegradedFallback(t *testing.T) {
	target := budgetBlowupTarget()
	opts := Options{Budgets: Budgets{MaxPaths: 4}}

	rep, err := NewScanner(opts).Scan(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BudgetExceeded {
		t.Fatal("path budget did not trip; the target no longer blows up")
	}
	var degraded []Finding
	for _, f := range rep.Findings {
		if !f.Degraded {
			t.Errorf("unexpected verified finding %v from a budget-aborted root", f)
		} else {
			degraded = append(degraded, f)
		}
	}
	if len(degraded) == 0 {
		t.Fatalf("no Degraded finding; failures: %v", rep.Failures)
	}
	if degraded[0].Sink != "move_uploaded_file" || degraded[0].File != "blowup.php" {
		t.Errorf("degraded finding = %+v, want move_uploaded_file in blowup.php", degraded[0])
	}
	if rep.Vulnerable {
		t.Error("Degraded findings must not set Vulnerable (paper verdicts preserved)")
	}
	if !rep.Degraded {
		t.Error("AppReport.Degraded not set")
	}
	if rep.Retries == 0 {
		t.Error("ladder spent no retries before falling back")
	}
	if rep.FailureCounts[FailPathBudget] == 0 {
		t.Errorf("FailureCounts = %v, want path-budget entries", rep.FailureCounts)
	}

	// The same scan with the ladder disabled reproduces the paper's
	// silent miss: no findings, no retries, just the typed failure.
	opts.DisableDegraded = true
	miss, err := NewScanner(opts).Scan(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	if len(miss.Findings) != 0 || miss.Retries != 0 || miss.Degraded {
		t.Errorf("DisableDegraded leaked ladder output: %+v", miss)
	}
	if !miss.BudgetExceeded || miss.FailureCounts[FailPathBudget] == 0 {
		t.Errorf("DisableDegraded lost the typed failure: %v", miss.FailureCounts)
	}
}

// TestRootTimeout asserts a pathological (slow) root trips the per-root
// deadline, is classified root-timeout, and still yields degraded signal
// while the rest of the app scans normally.
func TestRootTimeout(t *testing.T) {
	target := multiRootTarget("slowpoke", 4)
	const victim = "handler01.php"
	opts := Options{
		Workers:     2,
		RootTimeout: 30 * time.Millisecond,
		FaultHook:   faultinject.SleepOn(faultinject.RootStart, victim, 120*time.Millisecond),
	}
	rep, err := NewScanner(opts).Scan(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailureCounts[FailRootTimeout] == 0 {
		t.Fatalf("FailureCounts = %v, want root-timeout entries; failures: %v", rep.FailureCounts, rep.Failures)
	}
	for _, fl := range rep.Failures {
		if fl.Class == FailRootTimeout && fl.Root != victim {
			t.Errorf("root-timeout attributed to %q, want %q", fl.Root, victim)
		}
		if fl.Class == FailCancelled {
			t.Errorf("root timeout misclassified as cancellation: %v", fl)
		}
	}
	// The other 3 roots verified normally; the victim degraded.
	verified := 0
	degradedVictim := false
	for _, f := range rep.Findings {
		if f.Degraded {
			if f.File == victim {
				degradedVictim = true
			}
			continue
		}
		verified++
	}
	if verified != 3 {
		t.Errorf("verified findings = %d, want 3 (non-victim roots)", verified)
	}
	if !degradedVictim {
		t.Errorf("no degraded finding for the timed-out root; findings: %v", rep.Findings)
	}
	if !rep.Vulnerable {
		t.Error("verdict lost to one slow root")
	}
}

// TestSolverBudgetDegradation asserts forced solver Unknowns are recorded
// as solver-budget failures, retried, and finally degraded via the
// taint-only rung.
func TestSolverBudgetDegradation(t *testing.T) {
	app := multiRootTarget("unsat", 1)
	rep, err := NewScanner(Options{
		FaultHook: faultinject.ErrorOn(faultinject.SolverCheck, ""),
	}).Scan(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailureCounts[FailSolverBudget] == 0 {
		t.Fatalf("FailureCounts = %v, want solver-budget entries", rep.FailureCounts)
	}
	if rep.Vulnerable {
		t.Error("no sink was solver-verified; verdict must stay clean")
	}
	if !rep.Degraded {
		t.Errorf("taint-only rung produced nothing; findings: %v, failures: %v", rep.Findings, rep.Failures)
	}
	if rep.Retries == 0 {
		t.Error("solver-budget failures should be retried")
	}
}

// TestParseFaultContainment asserts a parser crash (panic) on one file
// and a parse failure on another each degrade only their file: the third
// file's root still verifies.
func TestParseFaultContainment(t *testing.T) {
	target := Target{Name: "mixed", Sources: map[string]string{
		"bad.php":  "<?php echo 1;",
		"ugly.php": "<?php echo 2;",
		"good.php": `<?php
move_uploaded_file($_FILES['f']['tmp_name'], "/up/" . $_FILES['f']['name']);
`,
	}}
	rep, err := NewScanner(Options{
		FaultHook: faultinject.Chain(
			faultinject.PanicOn(faultinject.ParseFile, "bad.php"),
			faultinject.ErrorOn(faultinject.ParseFile, "ugly.php"),
		),
	}).Scan(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Vulnerable {
		t.Error("good.php's verified finding lost to sibling parse faults")
	}
	if rep.FailureCounts[FailPanic] != 1 || rep.FailureCounts[FailParse] != 1 {
		t.Errorf("FailureCounts = %v, want panic=1 parse=1", rep.FailureCounts)
	}
	for _, fl := range rep.Failures {
		switch fl.Root {
		case "bad.php":
			if fl.Class != FailPanic || fl.Stage != StageParse || fl.Stack == "" {
				t.Errorf("bad.php failure = %+v, want parse-stage panic with stack", fl)
			}
		case "ugly.php":
			if fl.Class != FailParse || fl.Stage != StageParse {
				t.Errorf("ugly.php failure = %+v, want parse-stage parse failure", fl)
			}
		default:
			t.Errorf("unexpected failure: %+v", fl)
		}
	}
	if rep.ParseErrors < 2 {
		t.Errorf("ParseErrors = %d, want >= 2 (both dropped files counted)", rep.ParseErrors)
	}
}

// TestFallbackPanicContainment asserts the ladder's last rung is itself
// panic-isolated.
func TestFallbackPanicContainment(t *testing.T) {
	rep, err := NewScanner(Options{
		Budgets:   Budgets{MaxPaths: 4},
		FaultHook: faultinject.PanicOn(faultinject.Fallback, ""),
	}).Scan(context.Background(), budgetBlowupTarget())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("findings = %v, want none (fallback panicked)", rep.Findings)
	}
	foundFallbackPanic := false
	for _, fl := range rep.Failures {
		if fl.Class == FailPanic && fl.Stage == StageFallback {
			foundFallbackPanic = true
			if fl.Stack == "" {
				t.Error("fallback panic carries no stack")
			}
		}
	}
	if !foundFallbackPanic {
		t.Errorf("failures = %v, want a fallback-stage panic", rep.Failures)
	}
}

// TestMaxRootFailuresAbort asserts the failure limit aborts the scan
// early: remaining roots are skipped as (uncounted) schedule failures and
// the report is marked Aborted.
func TestMaxRootFailuresAbort(t *testing.T) {
	target := multiRootTarget("doomed", 8)
	rep, err := NewScanner(Options{
		Workers:         1, // deterministic skip set
		MaxRootFailures: 3,
		DisableDegraded: true,
		FaultHook:       faultinject.ErrorOn(faultinject.RootStart, ""),
	}).Scan(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Aborted {
		t.Fatal("Aborted not set")
	}
	countable, skipped := 0, 0
	for _, fl := range rep.Failures {
		if fl.Countable() {
			countable++
		}
		if fl.Stage == StageSchedule {
			skipped++
			if fl.Class != FailCancelled {
				t.Errorf("skipped root class = %s, want %s", fl.Class, FailCancelled)
			}
		}
	}
	if countable != 3 {
		t.Errorf("countable failures = %d, want exactly the limit (3)", countable)
	}
	if skipped != 5 {
		t.Errorf("skipped roots = %d, want 5 of 8", skipped)
	}
	if rep.FailureCounts[FailCancelled] != 0 {
		t.Errorf("FailureCounts counts cancellations: %v", rep.FailureCounts)
	}
}

// TestFailureClassesRoundTrip asserts every failure class survives the
// AppReport JSON round trip — classes, counts, stacks and attempts intact.
func TestFailureClassesRoundTrip(t *testing.T) {
	classes := []FailureClass{
		FailParse, FailLoad, FailPathBudget, FailObjectBudget, FailSolverBudget,
		FailRootTimeout, FailCancelled, FailPanic, FailInternal,
	}
	rep := &AppReport{Name: "round-trip"}
	for i, c := range classes {
		rep.Failures = append(rep.Failures, Failure{
			Root:    fmt.Sprintf("root%d.php", i),
			Stage:   StageSymExec,
			Class:   c,
			Err:     "err " + string(c),
			Stack:   map[bool]string{true: "goroutine 1 [running]:", false: ""}[c == FailPanic],
			Attempt: i % 2,
		})
	}
	rep.FailureCounts = countFailures(rep.Failures)

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var got AppReport
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Failures) != len(classes) {
		t.Fatalf("failures = %d, want %d", len(got.Failures), len(classes))
	}
	for i, c := range classes {
		fl := got.Failures[i]
		if fl.Class != c || fl.Err != "err "+string(c) || fl.Root != fmt.Sprintf("root%d.php", i) {
			t.Errorf("failure %d round-tripped to %+v", i, fl)
		}
		if c == FailPanic && fl.Stack == "" {
			t.Error("panic stack lost in round trip")
		}
		if fl.Attempt != i%2 {
			t.Errorf("failure %d attempt = %d, want %d", i, fl.Attempt, i%2)
		}
	}
	// Counts: all classes except cancelled are countable.
	if len(got.FailureCounts) != len(classes)-1 {
		t.Errorf("FailureCounts = %v, want %d classes", got.FailureCounts, len(classes)-1)
	}
	if _, ok := got.FailureCounts[FailCancelled]; ok {
		t.Error("cancelled leaked into FailureCounts")
	}
	for _, c := range classes {
		if c == FailCancelled {
			continue
		}
		if got.FailureCounts[c] != 1 {
			t.Errorf("FailureCounts[%s] = %d, want 1", c, got.FailureCounts[c])
		}
	}
}

// TestRetryableMatrix pins the ladder's retry policy per class.
func TestRetryableMatrix(t *testing.T) {
	want := map[FailureClass]bool{
		FailParse:        false,
		FailLoad:         false,
		FailPathBudget:   true,
		FailObjectBudget: true,
		FailSolverBudget: true,
		FailRootTimeout:  true,
		FailCancelled:    false,
		FailPanic:        false,
		FailInternal:     false,
	}
	for c, w := range want {
		if got := (Failure{Class: c}).Retryable(); got != w {
			t.Errorf("Retryable(%s) = %v, want %v", c, got, w)
		}
	}
	if (Failure{Class: FailCancelled}).Countable() {
		t.Error("cancelled must not be countable")
	}
	if !(Failure{Class: FailPanic}).Countable() {
		t.Error("panic must be countable")
	}
}
