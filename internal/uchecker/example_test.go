package uchecker_test

import (
	"context"
	"fmt"

	"repro/internal/uchecker"
)

// The canonical workflow: scan an application's sources and inspect the
// verdict and the first finding's location and exploit path.
func ExampleScanner_Scan() {
	scanner := uchecker.NewScanner(uchecker.Options{})
	report, _ := scanner.Scan(context.Background(), uchecker.Target{
		Name: "demo-plugin",
		Sources: map[string]string{
			"upload.php": `<?php
$dir = wp_upload_dir();
move_uploaded_file($_FILES['file']['tmp_name'], $dir['path'] . '/' . $_FILES['file']['name']);
`,
		},
	})
	fmt.Println("vulnerable:", report.Vulnerable)
	f := report.Findings[0]
	fmt.Printf("finding: %s at %s:%d\n", f.Sink, f.File, f.Line)
	fmt.Println("se_dst:", f.SeDst)
	// Output:
	// vulnerable: true
	// finding: move_uploaded_file at upload.php:3
	// se_dst: (. (. s_wp_upload_path "/") (. s_name_file (. "." s_ext_file)))
}

// Safe uploads produce clean reports: the whitelist guard makes the
// extension constraint unsatisfiable.
func ExampleScanner_Scan_benign() {
	scanner := uchecker.NewScanner(uchecker.Options{})
	report, _ := scanner.Scan(context.Background(), uchecker.Target{
		Name: "safe-plugin",
		Sources: map[string]string{
			"safe.php": `<?php
$ext = pathinfo($_FILES['pic']['name'], PATHINFO_EXTENSION);
if (in_array($ext, array('jpg', 'png'))) {
	move_uploaded_file($_FILES['pic']['tmp_name'], "/up/img." . $ext);
}
`,
		},
	})
	fmt.Println("vulnerable:", report.Vulnerable)
	fmt.Println("sinks examined:", report.SinkCount)
	// Output:
	// vulnerable: false
	// sinks examined: 1
}
