// Typed failure taxonomy for fault-contained scanning.
//
// A production corpus sweep (the paper scans 13,814 plugins) meets every
// pathology the long tail has to offer: parser crashes, path-budget
// blow-ups (the Cimy failure mode), solver give-ups, wall-clock hangs.
// One pathological file must degrade one root, never sink the batch —
// and the operator must be able to see, per class, what went wrong.
// Failure is that structured record, surfaced on AppReport.Failures and
// aggregated per class in AppReport.FailureCounts.
package uchecker

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/interp"
)

// FailureClass partitions everything that can go wrong with one root (or
// one file) into the classes the degradation ladder and the CLI's failure
// accounting operate on.
type FailureClass string

const (
	// FailParse: a source file could not be parsed at all (beyond the
	// tolerated, recovered syntax errors counted by AppReport.ParseErrors).
	FailParse FailureClass = "parse"
	// FailLoad: a source file or directory entry could not be *read*
	// while materializing the target — permission denied, symlink loop,
	// file vanished mid-walk. These are I/O failures, not parser
	// failures: keeping them out of FailParse keeps the per-class
	// accounting honest (a corpus on flaky storage must not look like a
	// corpus full of unparseable PHP).
	FailLoad FailureClass = "load"
	// FailPathBudget: symbolic execution outgrew Options.Budgets.MaxPaths.
	FailPathBudget FailureClass = "path-budget"
	// FailObjectBudget: the heap graph outgrew Options.Budgets.MaxObjects.
	FailObjectBudget FailureClass = "object-budget"
	// FailSolverBudget: the SMT solver returned Unknown after exhausting
	// its search budget on at least one candidate of the root.
	FailSolverBudget FailureClass = "solver-budget"
	// FailRootTimeout: the root exceeded Options.RootTimeout while the
	// surrounding scan was still live.
	FailRootTimeout FailureClass = "root-timeout"
	// FailCancelled: the surrounding scan's context was cancelled (or its
	// deadline expired) — an operator decision, not a root failure.
	// Cancelled entries are excluded from FailureCounts.
	FailCancelled FailureClass = "cancelled"
	// FailPanic: a pipeline stage panicked; the panic was recovered, the
	// stack captured, and the batch kept running.
	FailPanic FailureClass = "panic"
	// FailJournalCorrupt: a resume journal (or one of its records) was
	// corrupt — torn tail, checksum mismatch, version skew, duplicate
	// finish record, empty file. Recovery salvaged every valid prefix
	// record and re-scans the rest; the class exists so the loss is
	// visible, never silent.
	FailJournalCorrupt FailureClass = "journal-corrupt"
	// FailInternal: any other unexpected error.
	FailInternal FailureClass = "internal"
)

// Pipeline stages a Failure can be attributed to.
const (
	StageParse    = "parse"    // per-file parsing
	StageSymExec  = "symexec"  // per-root symbolic execution
	StageVerify   = "verify"   // modeling + translation + solving
	StageFallback = "fallback" // degraded taint-only rung
	StageSchedule = "schedule" // root never started (cancelled / abort limit)
	StageLoad     = "load"     // target materialization (unreadable files)
	StageJournal  = "journal"  // batch journal recovery / append
)

// Failure is one structured failure record: which root (or file), which
// pipeline stage, which class, and the underlying error text. Panic
// failures additionally carry the recovered stack.
type Failure struct {
	// Root is the failing root's name (callgraph node string), or the
	// file name for parse-stage failures.
	Root string
	// Stage is one of the Stage* constants.
	Stage string
	// Class is the failure class.
	Class FailureClass
	// Err is the underlying error text.
	Err string
	// Stack is the recovered goroutine stack for FailPanic entries.
	Stack string `json:",omitempty"`
	// Attempt is the degradation-ladder rung the failure occurred on:
	// 0 for the full-budget attempt, 1.. for halved-budget retries.
	Attempt int `json:",omitempty"`
}

func (f Failure) String() string {
	return fmt.Sprintf("%s: [%s/%s] %s", f.Root, f.Stage, f.Class, f.Err)
}

// Countable reports whether the failure participates in failure
// accounting (FailureCounts, -max-root-failures, CLI exit code 2).
// Cancellation is an operator decision, not a root failure: a timed-out
// batch must not report every pending root as errored.
func (f Failure) Countable() bool { return f.Class != FailCancelled }

// Retryable reports whether the degradation ladder should retry the root
// with halved budgets after this failure. Budget and per-root-deadline
// classes are retryable: a halved-budget rerun explores a coarser, cheaper
// model (loop unrolling and inlining depth are halved too) that either
// completes or aborts quickly with a small partial result worth
// degraded-verifying. Panics are not retried (the same input would panic
// again) and cancellation is final.
func (f Failure) Retryable() bool {
	switch f.Class {
	case FailPathBudget, FailObjectBudget, FailSolverBudget, FailRootTimeout:
		return true
	}
	return false
}

// countFailures tallies countable failures per class.
func countFailures(fs []Failure) map[FailureClass]int {
	counts := map[FailureClass]int{}
	for _, f := range fs {
		if f.Countable() {
			counts[f.Class]++
		}
	}
	return counts
}

// classifyRootErr maps an error surfaced by a per-root pipeline stage to
// its failure class. parent is the scan-level context, rctx the per-root
// context (parent plus Options.RootTimeout, when configured): an error
// that coincides with a live parent but a dead root context is a root
// timeout; one with a dead parent is a cancellation.
//
// Operator cancellation dominates every other class: once the scan-level
// context is dead, whatever error the aborting stage happened to surface
// first — a budget trip racing the cancellation poll, a wrapped context
// error, a solver abort — is an artifact of the teardown, not a root
// defect, and must never be accounted as a path/object/solver budget
// failure (which would poison FailureCounts and the retry ladder).
func classifyRootErr(err error, parent, rctx context.Context) FailureClass {
	if parent.Err() != nil {
		return FailCancelled
	}
	switch {
	case errors.Is(err, interp.ErrPathBudget):
		return FailPathBudget
	case errors.Is(err, interp.ErrObjectBudget):
		return FailObjectBudget
	case errors.Is(err, interp.ErrBudgetExceeded):
		// Budget abort of unknown flavour: account it to the path budget,
		// the dominant blow-up mode.
		return FailPathBudget
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		if rctx.Err() != nil {
			return FailRootTimeout
		}
		return FailCancelled
	default:
		return FailInternal
	}
}
