// Scanner is the v2 scanning API: context-aware, parallel per-root
// execution with batch corpus scanning.
//
// The paper's pipeline (Figure 2) runs phases 3–6 — symbolic execution,
// vulnerability modeling, Z3-oriented translation and SMT verification —
// once per locality root, and every root is independent: it gets its own
// heap graph, its own interpreter and its own solver. Scanner exploits
// that by fanning roots out to a bounded worker pool and merging the
// per-root results deterministically (root order, findings sorted by
// file:line), so the output is byte-identical regardless of worker count.
package uchecker

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/callgraph"
	"repro/internal/interp"
	"repro/internal/locality"
	"repro/internal/phpast"
	"repro/internal/phpparser"
	"repro/internal/sexpr"
	"repro/internal/smt"
	"repro/internal/translate"
	"repro/internal/vulnmodel"
)

// Phase names passed to Options.OnPhase, in emission order.
const (
	PhaseParse    = "parse"    // phase 1: lexing + parsing
	PhaseLocality = "locality" // phase 2: call graph + locality analysis
	PhaseExecute  = "execute"  // phases 3–6 wall-clock across all roots
	PhaseSymExec  = "symexec"  // per-root symbolic execution, summed CPU time
	PhaseVerify   = "verify"   // per-root modeling+translation+solving, summed CPU time
	PhaseTotal    = "total"    // whole-scan wall clock
)

// Target identifies one application to scan: a name and its PHP sources
// as file-name → source-text.
type Target struct {
	Name    string
	Sources map[string]string
}

// Scanner runs the six-phase detection pipeline. A Scanner is safe for
// concurrent use: all mutable state lives in the per-call Scan frame.
type Scanner struct {
	opts Options
}

// NewScanner returns a Scanner with normalized options (default
// extensions, Workers defaulting to runtime.GOMAXPROCS(0)).
func NewScanner(opts Options) *Scanner {
	if len(opts.Extensions) == 0 {
		opts.Extensions = vulnmodel.DefaultExtensions
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Scanner{opts: opts}
}

// phase reports one finished phase to the OnPhase hook, when installed.
func (s *Scanner) phase(app, phase string, d time.Duration) {
	if s.opts.OnPhase != nil {
		s.opts.OnPhase(app, phase, d)
	}
}

// rootResult is the outcome of phases 3–6 for a single locality root.
// Each worker fills exactly one slot of a pre-sized slice, so the merge
// can walk roots in their canonical (locality) order and produce output
// independent of scheduling.
type rootResult struct {
	paths     int
	objects   int
	sinkCount int
	findings  []Finding
	budget    bool   // the root aborted on ErrBudgetExceeded
	errText   string // non-budget interpreter error (including ctx errors)

	symExec time.Duration // interpreter time
	verify  time.Duration // modeling + translation + solving time
}

// Scan runs the full pipeline over one application. The context cancels
// or deadlines the expensive phases: symbolic-execution path exploration
// and the SMT candidate search both poll ctx and abort promptly. On
// cancellation Scan returns the partial report alongside ctx.Err();
// per-root cancellation details land in AppReport.RootErrors.
func (s *Scanner) Scan(ctx context.Context, t Target) (*AppReport, error) {
	return s.scan(ctx, t, true)
}

// scan is the shared implementation. measureMem gates the forced-GC
// heap-delta measurement backing AppReport.MemoryMB: meaningful (and
// Table III-faithful) for solo scans, meaningless and GC-heavy when many
// apps share the heap — ScanBatch disables it.
func (s *Scanner) scan(ctx context.Context, t Target, measureMem bool) (*AppReport, error) {
	start := time.Now()
	var memBefore runtime.MemStats
	if measureMem {
		runtime.GC()
		runtime.ReadMemStats(&memBefore)
	}

	rep := &AppReport{Name: t.Name}

	// --- Phase 1: parsing ---
	phaseStart := time.Now()
	names := make([]string, 0, len(t.Sources))
	for n := range t.Sources {
		names = append(names, n)
	}
	sort.Strings(names)
	files := make([]*phpast.File, 0, len(names))
	for _, n := range names {
		f, errs := phpparser.Parse(n, t.Sources[n])
		rep.ParseErrors += len(errs)
		files = append(files, f)
	}
	s.phase(t.Name, PhaseParse, time.Since(phaseStart))

	// --- Phase 2: locality analysis ---
	phaseStart = time.Now()
	g := callgraph.Build(files)
	loc := locality.Analyze(g, files, t.Sources)
	rep.TotalLoC = loc.TotalLoC
	rep.AnalyzedLoC = loc.AnalyzedLoC
	rep.PercentAnalyzed = loc.PercentAnalyzed()

	roots := loc.Roots
	if s.opts.DisableLocality {
		// Whole-program ablation: every file and function is a root.
		roots = roots[:0]
		for _, n := range g.Nodes {
			if n.Kind == callgraph.FileNode || n.Kind == callgraph.FuncNode {
				roots = append(roots, locality.Root{Node: n, File: n.File})
			}
		}
		rep.AnalyzedLoC = rep.TotalLoC
		rep.PercentAnalyzed = 100
	}

	adminCallbacks := map[string]bool{}
	if s.opts.ModelAdminGating {
		adminCallbacks = findAdminCallbacks(files)
	}
	s.phase(t.Name, PhaseLocality, time.Since(phaseStart))

	// --- Phases 3–6 per root, fanned out to the worker pool ---
	phaseStart = time.Now()
	results := make([]rootResult, len(roots))
	workers := s.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(roots) {
		workers = len(roots)
	}
	if workers <= 1 {
		for i, root := range roots {
			if ctx.Err() != nil {
				results[i] = rootResult{errText: ctx.Err().Error()}
				continue
			}
			results[i] = s.scanRoot(ctx, files, root.Node, adminCallbacks, g)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					if ctx.Err() != nil {
						results[i] = rootResult{errText: ctx.Err().Error()}
						continue
					}
					results[i] = s.scanRoot(ctx, files, roots[i].Node, adminCallbacks, g)
				}
			}()
		}
		for i := range roots {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	s.phase(t.Name, PhaseExecute, time.Since(phaseStart))

	// --- Deterministic merge, in canonical root order ---
	var symExec, verify time.Duration
	for i, root := range roots {
		rr := &results[i]
		rep.Roots = append(rep.Roots, root.Node.String())
		rep.Paths += rr.paths
		rep.Objects += rr.objects
		rep.SinkCount += rr.sinkCount
		if rr.budget {
			rep.BudgetExceeded = true
		}
		if rr.errText != "" {
			rep.RootErrors = append(rep.RootErrors, fmt.Sprintf("%s: %s", root.Node, rr.errText))
		}
		rep.Findings = append(rep.Findings, rr.findings...)
		symExec += rr.symExec
		verify += rr.verify
	}
	sortFindings(rep.Findings)
	s.phase(t.Name, PhaseSymExec, symExec)
	s.phase(t.Name, PhaseVerify, verify)

	if rep.Paths > 0 {
		rep.ObjectsPerPath = float64(rep.Objects) / float64(rep.Paths)
	}
	for _, f := range rep.Findings {
		if !f.AdminGated {
			rep.Vulnerable = true
		}
	}

	if measureMem {
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		if memAfter.HeapAlloc > memBefore.HeapAlloc {
			rep.MemoryMB = float64(memAfter.HeapAlloc-memBefore.HeapAlloc) / (1 << 20)
		}
	}
	rep.Seconds = time.Since(start).Seconds()
	s.phase(t.Name, PhaseTotal, time.Since(start))
	return rep, ctx.Err()
}

// ScanBatch scans whole applications concurrently — the corpus-sweep
// workload of Section IV-B. Up to Options.Workers apps are in flight at
// once (each app additionally parallelizes its own roots over the same
// worker budget). The returned slice is aligned with targets; every entry
// is non-nil even under cancellation (partial reports, with ctx errors
// recorded in RootErrors). OnPhase hooks are invoked from multiple
// goroutines during a batch and must be safe for concurrent use.
//
// Batched reports leave MemoryMB at zero: per-app heap deltas are
// meaningless when many apps share the heap, and skipping the forced-GC
// measurement keeps the sweep fast. Use Scan for Table III-style memory
// numbers.
func (s *Scanner) ScanBatch(ctx context.Context, targets []Target) []*AppReport {
	reports := make([]*AppReport, len(targets))
	if len(targets) == 0 {
		return reports
	}
	workers := s.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(targets) {
		workers = len(targets)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				reports[i], _ = s.scan(ctx, targets[i], false)
			}
		}()
	}
	for i := range targets {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return reports
}

// scanRoot runs phases 3–6 for one root with a private interpreter and a
// private solver, touching only shared read-only structures (the parsed
// files and the call graph).
func (s *Scanner) scanRoot(ctx context.Context, files []*phpast.File, root *callgraph.Node, adminCallbacks map[string]bool, g *callgraph.Graph) rootResult {
	var rr rootResult
	symStart := time.Now()
	in := interp.New(files, s.opts.Interp)
	res := in.RunRootCtx(ctx, root)
	rr.symExec = time.Since(symStart)
	rr.paths = res.Paths
	rr.objects = res.Graph.NumObjects()
	if res.Err != nil {
		if errors.Is(res.Err, interp.ErrBudgetExceeded) {
			rr.budget = true
			return rr
		}
		rr.errText = res.Err.Error()
		return rr
	}
	verifyStart := time.Now()
	s.verifySinks(ctx, &rr, root, res, adminCallbacks, g)
	rr.verify = time.Since(verifyStart)
	return rr
}

// verifySinks models and solver-checks every recorded sink hit of one
// root's execution, appending verified findings to rr.
func (s *Scanner) verifySinks(ctx context.Context, rr *rootResult, root *callgraph.Node, res interp.Result, adminCallbacks map[string]bool, g *callgraph.Graph) {
	solver := smt.NewSolver(s.opts.Solver)
	tr := translate.New(res.Graph)
	seen := map[string]bool{} // dedupe per (file,line,witness-free)

	for _, hit := range res.Sinks {
		rr.sinkCount++
		if err := ctx.Err(); err != nil {
			rr.errText = err.Error()
			return
		}
		cand := vulnmodel.Model(res.Graph, tr, vulnmodel.Sink{
			Name: hit.Sink,
			File: hit.File,
			Line: hit.Line,
			Src:  hit.Src,
			Dst:  hit.Dst,
			Cur:  hit.Env.Cur,
		}, s.opts.Extensions)
		if !cand.Tainted {
			continue // Constraint-1 failed
		}
		// One satisfiable path per call site is enough for a verdict; skip
		// further paths of an already-confirmed sink.
		key := fmt.Sprintf("%s:%d", cand.File, cand.Line)
		if seen[key] {
			continue
		}
		status, model, _, _ := solver.CheckCtx(ctx, cand.Combined)
		if status != smt.Sat {
			continue
		}
		seen[key] = true
		f := Finding{
			Sink:    cand.Sink,
			File:    cand.File,
			Line:    cand.Line,
			Lines:   cand.Lines,
			SeDst:   sexpr.Format(cand.SeDst),
			SeReach: sexpr.Format(cand.SeReach),
			Witness: model,
		}
		// Independent exploit validation: evaluate the destination under
		// the witness and confirm the executable suffix concretely.
		if v, err := smt.Eval(cand.DstTerm, modelWithDefaults(cand.DstTerm, model)); err == nil {
			f.ExploitPath = v.S
		}
		if s.opts.KeepSMT {
			f.SMTLIB = smt.ToSMTLIB2(cand.Combined)
		}
		if s.opts.ModelAdminGating && isAdminGated(root, adminCallbacks, g) {
			f.AdminGated = true
		}
		rr.findings = append(rr.findings, f)
	}
}

// sortFindings orders findings by file, then line, then sink name —
// stably, so per-root discovery order breaks any remaining ties and the
// output is identical for every worker count.
func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		return fs[i].Sink < fs[j].Sink
	})
}
