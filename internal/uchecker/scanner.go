// Scanner is the v2 scanning API: context-aware, parallel per-root
// execution with batch corpus scanning, fault containment and a
// budget-degradation ladder.
//
// The paper's pipeline (Figure 2) runs phases 3–6 — symbolic execution,
// vulnerability modeling, Z3-oriented translation and SMT verification —
// once per locality root, and every root is independent: it gets its own
// heap graph, its own interpreter and its own solver. Scanner exploits
// that by fanning roots out to a bounded worker pool and merging the
// per-root results deterministically (root order, findings sorted by
// file:line), so the output is byte-identical regardless of worker count.
//
// Fault containment: every per-root attempt (and every per-file parse)
// runs under recover(), so a panic anywhere in interp, translate or smt
// degrades one root — recorded as a FailPanic Failure with the captured
// stack — instead of killing the batch. Roots that blow a budget or a
// per-root deadline descend a degradation ladder: up to
// Options.MaxRetries halved-budget reruns (whose findings are marked
// Degraded), then a conservative taint-only fallback reusing the
// internal/baseline machinery, so pathological roots yield partial
// signal, not silence.
package uchecker

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baseline"
	"repro/internal/callgraph"
	"repro/internal/faultinject"
	"repro/internal/interp"
	"repro/internal/locality"
	"repro/internal/obs"
	"repro/internal/phpast"
	"repro/internal/phpparser"
	"repro/internal/scanjournal"
	"repro/internal/sexpr"
	"repro/internal/smt"
	"repro/internal/summary"
	"repro/internal/translate"
	"repro/internal/vulnmodel"
)

// Target identifies one application to scan: a name and its PHP sources
// as file-name → source-text.
type Target struct {
	Name    string
	Sources map[string]string
	// LoadFailures carries typed failures encountered while materializing
	// the target from disk (unreadable files, symlink loops): the loader
	// skips the offending file and records it here instead of aborting
	// the whole target. The scanner folds them into AppReport.Failures
	// (and FailureCounts), so a partially loaded target is visibly
	// partial, never silently smaller.
	LoadFailures []Failure
}

// Scanner runs the six-phase detection pipeline. A Scanner is safe for
// concurrent use: all mutable state lives in the per-call Scan frame.
type Scanner struct {
	opts Options
	// hookMu serializes the user-facing OnSpan callback: workers and
	// concurrent batch scans invoke it from many goroutines, and the
	// documented contract is that the callback itself never observes
	// concurrency.
	hookMu sync.Mutex
}

// NewScanner returns a Scanner with normalized options (default
// extensions, Workers defaulting to runtime.GOMAXPROCS(0), MaxRetries
// defaulting to DefaultMaxRetries; negative MaxRetries disables retries).
func NewScanner(opts Options) *Scanner {
	if len(opts.Extensions) == 0 {
		opts.Extensions = vulnmodel.DefaultExtensions
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case opts.MaxRetries == 0:
		opts.MaxRetries = DefaultMaxRetries
	case opts.MaxRetries < 0:
		opts.MaxRetries = 0
	}
	return &Scanner{opts: opts}
}

// scanTrace wires span recording for one scan: a Recorder (the
// caller's, or a private one when only OnSpan is installed) plus the
// serialized OnSpan delivery. A nil *scanTrace disables tracing with
// zero overhead beyond a nil check.
type scanTrace struct {
	s   *Scanner
	rec *obs.Recorder
	app string
}

// newScanTrace returns the scan's trace sink, or nil when neither
// Options.Trace nor Options.OnSpan is installed.
func (s *Scanner) newScanTrace(app string) *scanTrace {
	if s.opts.Trace == nil && s.opts.OnSpan == nil {
		return nil
	}
	rec := s.opts.Trace
	if rec == nil {
		rec = obs.NewRecorder()
	}
	return &scanTrace{s: s, rec: rec, app: app}
}

// start opens a span; nil-safe. Every span carries an "app" attribute,
// so span consumers (evalharness.PhaseTimes, trace exports) can attribute
// per-root and per-attempt spans without reconstructing the parent chain
// — span IDs are only unique per Recorder, and OnSpan-only batch scans
// use one private Recorder per app.
func (t *scanTrace) start(parent obs.SpanID, name string, attrs ...obs.Attr) *obs.ActiveSpan {
	if t == nil {
		return nil
	}
	return t.rec.Start(parent, name, append([]obs.Attr{obs.A("app", t.app)}, attrs...)...)
}

// end closes a span and delivers it to OnSpan (serialized); nil-safe.
func (t *scanTrace) end(sp *obs.ActiveSpan, attrs ...obs.Attr) {
	if t == nil || sp == nil {
		return
	}
	sp.End(attrs...)
	if t.s.opts.OnSpan != nil {
		t.s.hookMu.Lock()
		t.s.opts.OnSpan(sp.Span())
		t.s.hookMu.Unlock()
	}
}

// rootResult is the outcome of phases 3–6 for a single locality root
// (one ladder attempt, or the whole ladder once merged by scanRoot).
// Each worker fills exactly one slot of a pre-sized slice, so the merge
// can walk roots in their canonical (locality) order and produce output
// independent of scheduling.
type rootResult struct {
	paths     int
	objects   int
	sinkCount int
	findings  []Finding
	budget    bool      // some attempt aborted on ErrBudgetExceeded
	failures  []Failure // typed failures, in occurrence order
	retries   int       // ladder retry attempts spent
	skipped   bool      // never ran: the MaxRootFailures limit tripped

	symExec time.Duration // interpreter time (summed over attempts)
	verify  time.Duration // modeling + translation + solving time

	// metrics is the root's deterministic work-counter set (summed over
	// attempts; "_peak" keys by max). Nil when no attempt ran.
	metrics obs.Metrics
}

// addMetrics lazily allocates and merges counters into the root result.
func (rr *rootResult) addMetrics(m obs.Metrics) {
	if len(m) == 0 {
		return
	}
	if rr.metrics == nil {
		rr.metrics = obs.NewMetrics()
	}
	rr.metrics.Merge(m)
}

// countable tallies the root's countable failures.
func (rr *rootResult) countable() int {
	n := 0
	for _, f := range rr.failures {
		if f.Countable() {
			n++
		}
	}
	return n
}

// Scan runs the full pipeline over one application. The context cancels
// or deadlines the expensive phases: symbolic-execution path exploration
// and the SMT candidate search both poll ctx and abort promptly. On
// cancellation Scan returns the partial report alongside ctx.Err();
// per-root cancellation details land in AppReport.Failures.
func (s *Scanner) Scan(ctx context.Context, t Target) (*AppReport, error) {
	return s.scan(ctx, t, true)
}

// scan is the shared implementation. measureMem gates the forced-GC
// heap-delta measurement backing AppReport.MemoryMB: meaningful (and
// Table III-faithful) for solo scans, meaningless and GC-heavy when many
// apps share the heap — ScanBatch disables it.
func (s *Scanner) scan(ctx context.Context, t Target, measureMem bool) (*AppReport, error) {
	start := time.Now()
	var memBefore runtime.MemStats
	if measureMem {
		runtime.GC()
		runtime.ReadMemStats(&memBefore)
	}

	rep := &AppReport{Name: t.Name}
	rep.Metrics = obs.NewMetrics()
	// Loader-stage failures (unreadable files, symlink loops) come first:
	// they predate parsing and participate in FailureCounts below.
	rep.Failures = append(rep.Failures, t.LoadFailures...)

	tr := s.newScanTrace(t.Name)
	scanSpan := tr.start(0, "scan")
	defer tr.end(scanSpan)

	// --- Phase 1: parsing (panic-isolated per file) ---
	parseSpan := tr.start(scanSpan.ID(), "parse")
	names := make([]string, 0, len(t.Sources))
	for n := range t.Sources {
		names = append(names, n)
	}
	sort.Strings(names)
	files := make([]*phpast.File, 0, len(names))
	for _, n := range names {
		f, nerrs, fail := s.parseFile(n, t.Sources[n])
		rep.ParseErrors += nerrs
		if fail != nil {
			// The file is dropped from analysis but the scan continues:
			// a parser crash on one file must not sink the app.
			rep.Failures = append(rep.Failures, *fail)
			rep.ParseErrors++
			continue
		}
		files = append(files, f)
	}
	tr.end(parseSpan, obs.A("files", strconv.Itoa(len(files))))

	// The engine factory is built once per scan: for the VM engine this
	// compiles every function to bytecode exactly once, shared read-only
	// by all roots, workers and degradation-ladder rungs.
	engines := interp.NewEngineFactory(s.opts.Engine, files)

	// Function summaries (the -interproc summary strategy) are computed
	// once per scan over the same parsed files every root shares; the
	// per-file local layer is served from the content-addressed artifact
	// cache when CacheDir is set. Nil under inline mode, which keeps the
	// engines (and their reports) bit-for-bit on the pre-summary path.
	var sums *summary.Set
	if s.opts.Interproc == interp.InterprocSummary {
		sumSpan := tr.start(scanSpan.ID(), "summaries")
		sums = s.buildSummaries(t, files)
		rep.Metrics.Add("summary_computed", int64(sums.Computed))
		rep.Metrics.Add("summary_cache_hits", int64(sums.CacheHits))
		tr.end(sumSpan, obs.A("functions", strconv.Itoa(len(sums.Funcs))))
	}

	// --- Phase 2: locality analysis ---
	locSpan := tr.start(scanSpan.ID(), "locality")
	g := callgraph.Build(files)
	loc := locality.Analyze(g, files, t.Sources)
	rep.TotalLoC = loc.TotalLoC
	rep.AnalyzedLoC = loc.AnalyzedLoC
	rep.PercentAnalyzed = loc.PercentAnalyzed()

	roots := loc.Roots
	if s.opts.DisableLocality {
		// Whole-program ablation: every file and function is a root.
		roots = roots[:0]
		for _, n := range g.Nodes {
			if n.Kind == callgraph.FileNode || n.Kind == callgraph.FuncNode {
				roots = append(roots, locality.Root{Node: n, File: n.File})
			}
		}
		rep.AnalyzedLoC = rep.TotalLoC
		rep.PercentAnalyzed = 100
	}

	adminCallbacks := map[string]bool{}
	if s.opts.ModelAdminGating {
		adminCallbacks = findAdminCallbacks(files)
	}
	rep.Metrics.Add("locality_roots_found", int64(len(roots)))
	rep.Metrics.Add("locality_files_total", int64(loc.FilesTotal))
	rep.Metrics.Add("locality_files_pruned", int64(loc.FilesPruned))
	tr.end(locSpan, obs.A("roots", strconv.Itoa(len(roots))))

	// --- Phases 3–6 per root, fanned out to the worker pool ---
	results := make([]rootResult, len(roots))
	// failTally accumulates countable failures across workers for the
	// MaxRootFailures early-abort check.
	var failTally atomic.Int64
	runIdx := func(i int) {
		rootName := roots[i].Node.String()
		if ctx.Err() != nil {
			// Cancellation is an operator decision, not a root failure:
			// record it as such, excluded from failure accounting.
			results[i] = scheduleFailure(rootName, FailCancelled,
				"scan cancelled before root started", false)
			return
		}
		if limit := s.opts.MaxRootFailures; limit > 0 && failTally.Load() >= int64(limit) {
			results[i] = scheduleFailure(rootName, FailCancelled,
				fmt.Sprintf("root skipped: app failure limit (%d) reached", limit), true)
			return
		}
		rootSpan := tr.start(scanSpan.ID(), "root", obs.A("root", rootName))
		// pprof labels attribute CPU-profile samples to the app and root
		// being executed, so `go tool pprof` can slice a scan by root.
		pprof.Do(ctx, pprof.Labels("uchecker_app", t.Name, "uchecker_root", rootName), func(ctx context.Context) {
			results[i] = s.scanRoot(ctx, engines, sums, files, roots[i].Node, adminCallbacks, g, tr, rootSpan.ID())
		})
		tr.end(rootSpan,
			obs.A("findings", strconv.Itoa(len(results[i].findings))),
			obs.A("failures", strconv.Itoa(len(results[i].failures))))
		if n := results[i].countable(); n > 0 {
			failTally.Add(int64(n))
		}
	}
	workers := s.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(roots) {
		workers = len(roots)
	}
	if workers <= 1 {
		for i := range roots {
			runIdx(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					runIdx(i)
				}
			}()
		}
		for i := range roots {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	// --- Deterministic merge, in canonical root order ---
	for i, root := range roots {
		rr := &results[i]
		rep.Roots = append(rep.Roots, root.Node.String())
		rep.Paths += rr.paths
		rep.Objects += rr.objects
		rep.SinkCount += rr.sinkCount
		rep.Retries += rr.retries
		if rr.budget {
			rep.BudgetExceeded = true
		}
		if rr.skipped {
			rep.Aborted = true
		}
		rep.Failures = append(rep.Failures, rr.failures...)
		rep.Findings = append(rep.Findings, rr.findings...)
		rep.Metrics.Merge(rr.metrics)
	}
	rep.Findings = dedupeDegraded(rep.Findings)
	sortFindings(rep.Findings)
	if c := countFailures(rep.Failures); len(c) > 0 {
		rep.FailureCounts = c
	}
	// Scanner-level counters. Failure classes become per-class counters
	// with '-' sanitized to '_' for metric-name validity.
	rep.Metrics.Add("scan_retries", int64(rep.Retries))
	rep.Metrics.Add("scan_sink_candidates", int64(rep.SinkCount))
	degradedFindings := 0
	for _, f := range rep.Findings {
		if f.Degraded {
			degradedFindings++
		}
	}
	rep.Metrics.Add("scan_findings", int64(len(rep.Findings)))
	rep.Metrics.Add("scan_findings_degraded", int64(degradedFindings))
	for class, n := range rep.FailureCounts {
		rep.Metrics.Add("scan_failures_"+strings.ReplaceAll(string(class), "-", "_"), int64(n))
	}
	// Compile-once economics of the VM engine, at scan scope: how many
	// bytecode units the factory compiled (once) and how many per-root /
	// per-rung engine instantiations reused them. Zero — and therefore
	// absent (Metrics.Add skips zero deltas) — under the tree engine, so
	// tree reports are byte-identical to pre-IR ones.
	rep.Metrics.Add("ir_functions_compiled", int64(engines.FunctionsCompiled()))
	rep.Metrics.Add("ir_compile_cache_hits", engines.CacheHits())
	rep.Metrics.Add("ir_consts_folded", int64(engines.ConstsFolded()))

	if rep.Paths > 0 {
		rep.ObjectsPerPath = float64(rep.Objects) / float64(rep.Paths)
	}
	for _, f := range rep.Findings {
		if f.Degraded {
			rep.Degraded = true
			continue // partial signal, not a verified verdict
		}
		if !f.AdminGated {
			rep.Vulnerable = true
		}
	}

	if measureMem {
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		if memAfter.HeapAlloc > memBefore.HeapAlloc {
			rep.MemoryMB = float64(memAfter.HeapAlloc-memBefore.HeapAlloc) / (1 << 20)
		}
	}
	rep.Seconds = time.Since(start).Seconds()
	return rep, ctx.Err()
}

// ScanBatch scans whole applications concurrently — the corpus-sweep
// workload of Section IV-B. Up to Options.Workers apps are in flight at
// once (each app additionally parallelizes its own roots over the same
// worker budget). The returned slice is aligned with targets; every entry
// is non-nil even under cancellation: targets that never started because
// the context died (or the journal crashed) carry a FailCancelled
// schedule failure instead of being silently dropped or half-scanned.
// The OnSpan hook fires for every app in the batch; the Scanner
// serializes it behind an internal mutex, so the callback itself never
// observes concurrency.
//
// When Options.Journal / ResumeFrom / CacheDir are set, the batch runs
// through the crash-safety layer (see ScanBatchJournaled, which this
// method delegates to): completed reports are journaled durably,
// resumed sweeps replay them, and unchanged targets are served from the
// content-addressed cache. ScanBatch discards the layer's summary and
// error; callers that need them — the CLI, ucheck-bench — use
// ScanBatchJournaled directly.
//
// Batched reports leave MemoryMB at zero: per-app heap deltas are
// meaningless when many apps share the heap, and skipping the forced-GC
// measurement keeps the sweep fast. Use Scan for Table III-style memory
// numbers.
func (s *Scanner) ScanBatch(ctx context.Context, targets []Target) []*AppReport {
	reports, _, _ := s.ScanBatchJournaled(ctx, targets)
	return reports
}

// parseFile parses one source file under recover(): a parser panic (or a
// fault-injected parse failure) is converted into a typed Failure and the
// file is skipped, instead of the crash killing the scan.
func (s *Scanner) parseFile(name, src string) (f *phpast.File, nerrs int, fail *Failure) {
	defer func() {
		if r := recover(); r != nil {
			f = nil
			fail = &Failure{
				Root:  name,
				Stage: StageParse,
				Class: FailPanic,
				Err:   fmt.Sprint(r),
				Stack: string(debug.Stack()),
			}
		}
	}()
	if s.opts.FaultHook != nil {
		if err := s.opts.FaultHook(faultinject.ParseFile, name); err != nil {
			return nil, 0, &Failure{Root: name, Stage: StageParse, Class: FailParse, Err: err.Error()}
		}
	}
	parsed, errs := phpparser.Parse(name, src)
	if parsed == nil {
		return nil, len(errs), &Failure{Root: name, Stage: StageParse, Class: FailParse, Err: "parser returned no AST"}
	}
	return parsed, len(errs), nil
}

// scheduleFailure builds the result of a root that never ran.
func scheduleFailure(root string, class FailureClass, msg string, skipped bool) rootResult {
	return rootResult{
		skipped:  skipped,
		failures: []Failure{{Root: root, Stage: StageSchedule, Class: class, Err: msg}},
	}
}

// buildSummaries computes the scan's function-summary table for the
// -interproc summary strategy. The per-file local layer is
// content-addressed — keyed by the file's own source text, the options
// fingerprint and the summary artifact version, so unchanged files on
// unchanged configurations load their artifact instead of re-walking
// the AST. Composition (cross-function taint routing, SCC fixpoint) is
// always recomputed: it is whole-program and cheap. Every cache failure
// mode — unopenable directory, corrupt entry, version skew, failed
// write — degrades to a recompute, never an error.
func (s *Scanner) buildSummaries(t Target, files []*phpast.File) *summary.Set {
	var cache *scanjournal.Cache
	if s.opts.CacheDir != "" {
		if c, err := scanjournal.OpenCache(s.opts.CacheDir, s.opts.FaultHook); err == nil {
			cache = c
		}
	}
	// The artifact version rides in the key alongside the options
	// fingerprint, so a format bump self-invalidates every cached
	// per-file summary without touching report cache entries.
	fp := fmt.Sprintf("%s summary=v%d", s.optionsFingerprint(), summary.ArtifactVersion)
	locals := make([]*summary.FileLocal, 0, len(files))
	computed, hits := 0, 0
	for _, f := range files {
		var fl *summary.FileLocal
		if cache != nil {
			key := scanjournal.CacheKey(map[string]string{f.Name: t.Sources[f.Name]}, fp)
			if raw, ok := cache.Get(key); ok {
				if dec, err := summary.DecodeFile(raw); err == nil {
					fl = dec
					hits++
				}
			}
			if fl == nil {
				fl = summary.LocalFile(f)
				computed += len(fl.Funcs)
				if raw, err := summary.EncodeFile(fl); err == nil {
					cache.Put(key, raw) // best-effort: a failed Put costs one recompute
				}
			}
		} else {
			fl = summary.LocalFile(f)
			computed += len(fl.Funcs)
		}
		locals = append(locals, fl)
	}
	set := summary.Compose(locals, smt.NewFactory())
	set.Computed = computed
	set.CacheHits = hits
	return set
}

// scanRoot runs the degradation ladder for one root:
//
//	rung 0    full budgets; a budget abort yields no findings (the
//	          paper's semantics — the Cimy miss).
//	rung 1..  Options.MaxRetries halved-budget reruns of a retryably
//	          failed root; a coarser model (halved unroll/inlining) that
//	          either completes or aborts cheaply, with its partial sink
//	          set degraded-verified. Findings are marked Degraded.
//	final     conservative taint-only fallback (internal/baseline) when
//	          every rung failed without findings.
//
// Every rung is panic-isolated; the ladder is deterministic except under
// Options.RootTimeout (wall clock) — see DESIGN.md "Failure model".
func (s *Scanner) scanRoot(ctx context.Context, engines *interp.EngineFactory, sums *summary.Set, files []*phpast.File, root *callgraph.Node, adminCallbacks map[string]bool, g *callgraph.Graph, tr *scanTrace, rootSpan obs.SpanID) rootResult {
	var rr rootResult
	budgets := s.opts.Budgets
	maxRetries := s.opts.MaxRetries
	if s.opts.DisableDegraded {
		maxRetries = 0
	}
	for attempt := 0; ; attempt++ {
		attemptSpan := tr.start(rootSpan, "attempt", obs.A("rung", strconv.Itoa(attempt)))
		ar := s.runRootAttempt(ctx, engines, sums, files, root, adminCallbacks, g, budgets, attempt, tr, attemptSpan.ID())
		tr.end(attemptSpan, obs.A("findings", strconv.Itoa(len(ar.findings))))
		rr.symExec += ar.symExec
		rr.verify += ar.verify
		rr.addMetrics(ar.metrics)
		// Report the deepest exploration's measurements (attempt 0 unless a
		// retry went further), keeping Table III's paths/objects columns
		// faithful to the full-budget run.
		rr.paths = max(rr.paths, ar.paths)
		rr.objects = max(rr.objects, ar.objects)
		rr.sinkCount = max(rr.sinkCount, ar.sinkCount)
		rr.findings = ar.findings
		rr.failures = append(rr.failures, ar.failures...)
		rr.retries = attempt
		if ar.budget {
			rr.budget = true
		}

		failed, retryable := false, false
		for _, fl := range ar.failures {
			if fl.Class == FailCancelled {
				return rr // operator decision: no retries, no fallback
			}
			failed = true
			if fl.Retryable() {
				retryable = true
			}
		}
		if !failed || len(ar.findings) > 0 {
			return rr // clean, or failed with partial findings already
		}
		if retryable && attempt < maxRetries {
			budgets = budgets.Halve()
			continue
		}
		// Final rung: the root failed on every attempt and produced
		// nothing — fall back to the conservative taint-only check.
		if !s.opts.DisableDegraded {
			fbSpan := tr.start(rootSpan, "fallback", obs.A("root", root.String()))
			s.fallbackRoot(&rr, root, files)
			tr.end(fbSpan, obs.A("findings", strconv.Itoa(len(rr.findings))))
		}
		return rr
	}
}

// runRootAttempt executes one ladder rung for one root with a private
// engine (fresh heap graph) and a private solver, touching only shared
// read-only structures (the parsed files, the call graph and the VM
// engine's compiled program). The whole attempt runs under recover(): a
// panic in interp, translate or smt becomes a FailPanic failure with the
// captured stack.
func (s *Scanner) runRootAttempt(ctx context.Context, engines *interp.EngineFactory, sums *summary.Set, files []*phpast.File, root *callgraph.Node, adminCallbacks map[string]bool, g *callgraph.Graph, budgets Budgets, attempt int, tr *scanTrace, attemptSpan obs.SpanID) (ar rootResult) {
	rootName := root.String()
	stage := StageSymExec
	defer func() {
		if r := recover(); r != nil {
			ar.failures = append(ar.failures, Failure{
				Root:    rootName,
				Stage:   stage,
				Class:   FailPanic,
				Err:     fmt.Sprint(r),
				Stack:   string(debug.Stack()),
				Attempt: attempt,
			})
		}
	}()

	rctx := ctx
	if s.opts.RootTimeout > 0 {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(ctx, s.opts.RootTimeout)
		defer cancel()
	}
	if s.opts.FaultHook != nil {
		if err := s.opts.FaultHook(faultinject.RootStart, rootName); err != nil {
			ar.failures = append(ar.failures, Failure{
				Root: rootName, Stage: StageSymExec, Class: FailInternal,
				Err: err.Error(), Attempt: attempt,
			})
			return ar
		}
	}

	degraded := attempt > 0
	symStart := time.Now()
	interpSpan := tr.start(attemptSpan, "interp", obs.A("root", rootName))
	iop := budgets.interpOptions()
	// Summaries ride outside the budget projection: they are injected at
	// engine construction so budgets.go (and the fingerprint's budget
	// slice) stay strategy-agnostic. Nil under inline mode.
	iop.Summaries = sums
	res := engines.New(iop).Run(rctx, root)
	tr.end(interpSpan, obs.A("paths", strconv.Itoa(res.Paths)))
	ar.symExec = time.Since(symStart)
	ar.paths = res.Paths
	ar.objects = res.Graph.NumObjects()
	ar.metrics = obs.NewMetrics()
	ar.metrics.Add("interp_paths_forked", res.Stats.PathsForked)
	ar.metrics.Add("interp_paths_pruned", res.Stats.PathsPruned)
	ar.metrics.Add("interp_paths_held", res.Stats.PathsHeld)
	ar.metrics.Add("interp_budget_checks", res.Stats.BudgetChecks)
	ar.metrics.SetMax("interp_live_envs_peak", res.Stats.LiveEnvsPeak)
	ar.metrics.Add("interp_paths_total", int64(res.Paths))
	ar.metrics.Add("interp_pathcond_shared_nodes", res.Stats.PathCondSharedNodes)
	ar.metrics.Add("interp_objects_allocated", int64(res.Graph.NumObjects()))
	// VM-engine dispatch counters; zero (and, since Add skips zero
	// deltas, absent) under the tree engine.
	ar.metrics.Add("ir_instructions_executed", res.Stats.IRInstructionsExecuted)
	ar.metrics.Add("vm_dispatch_loops", res.Stats.VMDispatchLoops)
	ar.metrics.Add("vm_block_cache_hits", res.Stats.BlockCacheHits)
	ar.metrics.Add("vm_block_cache_misses", res.Stats.BlockCacheMisses)
	// Summary-strategy counters; zero (and therefore absent) under
	// inline mode, so inline reports stay byte-identical to pre-summary
	// ones.
	ar.metrics.Add("summary_instantiated", res.Stats.SummaryInstantiated)
	ar.metrics.Add("summary_escaped_callees", res.Stats.SummaryEscapedCallees)
	ar.metrics.Add("interp_paths_avoided", res.Stats.PathsAvoided)
	if res.Err != nil {
		class := classifyRootErr(res.Err, ctx, rctx)
		if class == FailPathBudget || class == FailObjectBudget {
			ar.budget = true
		}
		ar.failures = append(ar.failures, Failure{
			Root: rootName, Stage: StageSymExec, Class: class,
			Err: res.Err.Error(), Attempt: attempt,
		})
		// Rung 0 keeps the paper's semantics: a budget abort verifies
		// nothing. Retry rungs degraded-verify the partial exploration —
		// the sink hits recorded before the abort carry valid path
		// constraints, they are just an incomplete set.
		if !degraded || class == FailCancelled || class == FailInternal {
			return ar
		}
	}
	stage = StageVerify
	// Degraded verification runs under the parent context: the root
	// deadline is typically already spent by the time a timed-out rung
	// reaches it, and the (halved) solver budgets bound the work.
	vctx := rctx
	if degraded {
		vctx = ctx
	}
	verifyStart := time.Now()
	verifySpan := tr.start(attemptSpan, "verify", obs.A("root", rootName))
	s.verifySinks(ctx, vctx, &ar, root, res, adminCallbacks, g, budgets.solverOptions(), degraded, attempt, tr, verifySpan.ID())
	tr.end(verifySpan, obs.A("sinks", strconv.Itoa(ar.sinkCount)))
	ar.verify = time.Since(verifyStart)
	return ar
}

// fallbackRoot is the ladder's final rung: a conservative taint-only
// check over the root's file via the internal/baseline machinery. Its
// hits become Degraded findings — no witness, no solver — so a root that
// defeated symbolic execution still yields signal. The rung is itself
// panic-isolated.
func (s *Scanner) fallbackRoot(rr *rootResult, root *callgraph.Node, files []*phpast.File) {
	rootName := root.String()
	start := time.Now()
	defer func() {
		rr.verify += time.Since(start)
		if r := recover(); r != nil {
			rr.failures = append(rr.failures, Failure{
				Root:  rootName,
				Stage: StageFallback,
				Class: FailPanic,
				Err:   fmt.Sprint(r),
				Stack: string(debug.Stack()),
			})
		}
	}()
	if s.opts.FaultHook != nil {
		if err := s.opts.FaultHook(faultinject.Fallback, rootName); err != nil {
			rr.failures = append(rr.failures, Failure{
				Root: rootName, Stage: StageFallback, Class: FailInternal, Err: err.Error(),
			})
			return
		}
	}
	var rootFiles []*phpast.File
	for _, f := range files {
		if f != nil && f.Name == root.File {
			rootFiles = append(rootFiles, f)
		}
	}
	if len(rootFiles) == 0 {
		return
	}
	for _, h := range baseline.RIPSLikeFiles(rootName, rootFiles).Hits {
		if h.Suppressed {
			continue
		}
		rr.findings = append(rr.findings, Finding{
			Sink:     h.Sink,
			File:     h.File,
			Line:     h.Line,
			Degraded: true,
		})
	}
}

// verifySinks models and solver-checks every recorded sink hit of one
// root's execution, appending verified findings to ar. parent is the
// scan-level context (for cancellation classification), vctx the context
// the verification itself runs under. In degraded mode (ladder retries)
// findings are marked Degraded.
func (s *Scanner) verifySinks(parent, vctx context.Context, ar *rootResult, root *callgraph.Node, res interp.Result, adminCallbacks map[string]bool, g *callgraph.Graph, sopts smt.Options, degraded bool, attempt int, strace *scanTrace, verifySpan obs.SpanID) {
	rootName := root.String()
	// One hash-consing factory per root attempt: construction order within
	// a root is deterministic and single-goroutine, so the factory's
	// counters — like every other per-root metric — are byte-identical
	// across worker counts once merged in canonical root order. With
	// DisableIntern the factory is nil and every layer falls back to
	// direct construction (the -no-intern ablation).
	var fac *smt.Factory
	if !s.opts.DisableIntern {
		fac = smt.NewFactory()
	}
	solver := smt.NewSolverWithFactory(sopts, fac)
	tr := translate.NewWithFactory(res.Graph, fac)
	// Incremental three-constraint staging: taint is decided structurally
	// per sink below; the extension constraint is asserted and quick-checked
	// on its own (an extension that folds to false soundly short-circuits
	// the sink with no model search); reachability is then pushed on top,
	// reusing the simplified extension prefix and — across sinks sharing a
	// path prefix — the memoized reachability rewrites.
	sess := solver.NewSession()
	seen := map[string]bool{}       // dedupe per (file,line,witness-free)
	solverBudgetNoted := false      // one FailSolverBudget per attempt
	for _, hit := range res.Sinks { //nolint:gocritic // value copy is fine
		ar.sinkCount++
		if err := vctx.Err(); err != nil {
			ar.failures = append(ar.failures, Failure{
				Root: rootName, Stage: StageVerify,
				Class: classifyRootErr(err, parent, vctx),
				Err:   "verification aborted: " + err.Error(), Attempt: attempt,
			})
			return
		}
		modelSpan := strace.start(verifySpan, "model", obs.A("sink", fmt.Sprintf("%s:%d", hit.File, hit.Line)))
		cand := vulnmodel.Model(res.Graph, tr, vulnmodel.Sink{
			Name: hit.Sink,
			File: hit.File,
			Line: hit.Line,
			Src:  hit.Src,
			Dst:  hit.Dst,
			Cur:  hit.Env.Cur,
		}, s.opts.Extensions)
		strace.end(modelSpan, obs.A("tainted", strconv.FormatBool(cand.Tainted)))
		if !cand.Tainted {
			continue // Constraint-1 failed
		}
		// One satisfiable path per call site is enough for a verdict; skip
		// further paths of an already-confirmed sink.
		key := fmt.Sprintf("%s:%d", cand.File, cand.Line)
		if seen[key] {
			continue
		}
		if s.opts.FaultHook != nil {
			if err := s.opts.FaultHook(faultinject.SolverCheck, key); err != nil {
				if !solverBudgetNoted {
					solverBudgetNoted = true
					ar.failures = append(ar.failures, Failure{
						Root: rootName, Stage: StageVerify, Class: FailSolverBudget,
						Err: err.Error(), Attempt: attempt,
					})
				}
				continue
			}
		}
		solveSpan := strace.start(verifySpan, "solve", obs.A("sink", key))
		var (
			status smt.Status
			model  smt.Model
			sstats smt.Stats
			cerr   error
		)
		sess.Push()
		sess.Assert(cand.Extension)
		if sess.QuickUnsat(&sstats) {
			// Constraint-2 alone is contradictory (the simplifier folded it
			// to false): the conjunction with reachability is false too, so
			// this is a sound Unsat that skips building, simplifying, and
			// searching the reachability constraint entirely.
			status = smt.Unsat
		} else {
			sess.Assert(cand.Reach)
			var cst smt.Stats
			status, model, cst, cerr = sess.CheckCtx(vctx)
			sstats.Accum(cst)
		}
		sess.Pop()
		strace.end(solveSpan, obs.A("status", status.String()))
		ar.metrics.Add("smt_checks", 1)
		ar.metrics.Add("smt_cubes_examined", int64(sstats.Cubes))
		ar.metrics.Add("smt_models_tried", int64(sstats.Assignments))
		ar.metrics.Add("smt_candidates_seeded", int64(sstats.Candidates))
		ar.metrics.Add("smt_verify_reevals", int64(sstats.VerifyEvals))
		ar.metrics.Add("smt_simplifier_rewrites", int64(sstats.Rewrites))
		if status != smt.Sat {
			if errors.Is(cerr, smt.ErrBudget) && !solverBudgetNoted {
				solverBudgetNoted = true
				ar.failures = append(ar.failures, Failure{
					Root: rootName, Stage: StageVerify, Class: FailSolverBudget,
					Err: fmt.Sprintf("%s (sink %s)", cerr, key), Attempt: attempt,
				})
			}
			continue
		}
		seen[key] = true
		f := Finding{
			Sink:     cand.Sink,
			File:     cand.File,
			Line:     cand.Line,
			Lines:    cand.Lines,
			SeDst:    sexpr.Format(cand.SeDst),
			SeReach:  sexpr.Format(cand.SeReach),
			Witness:  model,
			Degraded: degraded,
		}
		// Independent exploit validation: evaluate the destination under
		// the witness and confirm the executable suffix concretely.
		if v, err := smt.Eval(cand.DstTerm, modelWithDefaults(cand.DstTerm, model)); err == nil {
			f.ExploitPath = v.S
		}
		if s.opts.KeepSMT {
			f.SMTLIB = smt.ToSMTLIB2(cand.Combined)
		}
		if s.opts.ModelAdminGating && isAdminGated(root, adminCallbacks, g) {
			f.AdminGated = true
		}
		ar.findings = append(ar.findings, f)
	}
	// Factory counters: how much structure the root's constraint terms
	// shared. Per-root and single-goroutine, so — merged in canonical root
	// order like every other metric — they are identical for any Workers.
	if fac != nil {
		fst := fac.Stats()
		ar.metrics.Add("smt_intern_hits", fst.InternHits)
		ar.metrics.Add("smt_intern_misses", fst.InternMisses)
		ar.metrics.Add("smt_simplify_memo_hits", fst.SimplifyMemoHits)
		ar.metrics.Add("smt_incremental_reuse", fst.IncrementalReuse)
	}
}

// dedupeDegraded removes degraded findings that duplicate a verified
// finding at the same call site (another root may have verified the same
// sink the fallback flagged) and collapses identical degraded hits
// produced by different roots sharing a file.
func dedupeDegraded(fs []Finding) []Finding {
	verified := map[string]bool{}
	for _, f := range fs {
		if !f.Degraded {
			verified[fmt.Sprintf("%s:%d", f.File, f.Line)] = true
		}
	}
	out := fs[:0]
	seenDegraded := map[string]bool{}
	for _, f := range fs {
		if f.Degraded {
			key := fmt.Sprintf("%s:%d:%s", f.File, f.Line, f.Sink)
			if verified[fmt.Sprintf("%s:%d", f.File, f.Line)] || seenDegraded[key] {
				continue
			}
			seenDegraded[key] = true
		}
		out = append(out, f)
	}
	return out
}

// sortFindings orders findings by file, then line, then sink name —
// stably, so per-root discovery order breaks any remaining ties and the
// output is identical for every worker count.
func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		return fs[i].Sink < fs[j].Sink
	})
}
