package uchecker

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/obs"
)

// multiRootTarget builds a synthetic app with n independent upload
// handlers in separate files, so the locality analysis selects n roots —
// the workload the per-root worker pool fans out.
func multiRootTarget(name string, n int) Target {
	sources := map[string]string{}
	for i := 0; i < n; i++ {
		f := fmt.Sprintf("handler%02d.php", i)
		sources[f] = fmt.Sprintf(`<?php
$dir = "/uploads/%02d";
$name = $_FILES['f%d']['name'];
if (strlen($name) > 3) {
	move_uploaded_file($_FILES['f%d']['tmp_name'], $dir . "/" . $name);
}
`, i, i, i)
	}
	return Target{Name: name, Sources: sources}
}

// reportFingerprint serializes the deterministic portion of a report —
// everything except the wall-clock and memory measurements.
func reportFingerprint(t *testing.T, rep *AppReport) string {
	t.Helper()
	clone := *rep
	clone.Seconds = 0
	clone.MemoryMB = 0
	data, err := json.Marshal(&clone)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestScanDeterministicAcrossWorkers asserts byte-identical reports for
// Workers=1,2,8 on corpus apps (single-root), a synthetic multi-root app,
// and a whole-program (DisableLocality) multi-root configuration.
func TestScanDeterministicAcrossWorkers(t *testing.T) {
	corpusApps := []string{
		"Foxypress 0.4.1.1-0.4.2.1",
		"Avatar Uploader 6.x-1.2",
		"Simple Ad Manager 2.5.94",
		"WooCommerce Catalog Enquiry 3.0.1",
	}
	type tc struct {
		name    string
		target  Target
		opts    Options
		minRoot int
	}
	var cases []tc
	for _, name := range corpusApps {
		app, ok := corpus.ByName(name)
		if !ok {
			t.Fatalf("missing corpus app %q", name)
		}
		cases = append(cases, tc{
			name:   name,
			target: Target{Name: app.Name, Sources: app.Sources},
			opts:   Options{Budgets: Budgets{MaxPaths: 20000}},
		})
	}
	cases = append(cases, tc{
		name:    "synthetic-multi-root",
		target:  multiRootTarget("multi-root", 9),
		opts:    Options{},
		minRoot: 9,
	})
	foxy, _ := corpus.ByName("Foxypress 0.4.1.1-0.4.2.1")
	cases = append(cases, tc{
		name:    "whole-program-multi-root",
		target:  Target{Name: foxy.Name, Sources: foxy.Sources},
		opts:    Options{DisableLocality: true, Budgets: Budgets{MaxPaths: 20000}},
		minRoot: 2,
	})

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			var want string
			var wantRep *AppReport
			for _, workers := range []int{1, 2, 8} {
				opts := c.opts
				opts.Workers = workers
				rep, err := NewScanner(opts).Scan(context.Background(), c.target)
				if err != nil {
					t.Fatalf("Workers=%d: %v", workers, err)
				}
				got := reportFingerprint(t, rep)
				if want == "" {
					want, wantRep = got, rep
					if len(rep.Roots) < c.minRoot {
						t.Fatalf("roots = %d, want >= %d (not a multi-root workload)", len(rep.Roots), c.minRoot)
					}
					continue
				}
				if got != want {
					t.Errorf("Workers=%d: report differs from Workers=1\n got: %s\nwant: %s", workers, got, want)
				}
				if rep.Vulnerable != wantRep.Vulnerable || rep.Paths != wantRep.Paths || len(rep.Findings) != len(wantRep.Findings) {
					t.Errorf("Workers=%d: verdict/paths/findings drift", workers)
				}
			}
		})
	}
}

// TestScanMultiRootFindings asserts the synthetic multi-root app yields
// one finding per handler, sorted by file:line, under a parallel scan.
func TestScanMultiRootFindings(t *testing.T) {
	target := multiRootTarget("multi-root", 6)
	rep, err := NewScanner(Options{Workers: 4}).Scan(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Vulnerable {
		t.Fatal("multi-root app not flagged")
	}
	if len(rep.Findings) != 6 {
		t.Fatalf("findings = %d, want 6", len(rep.Findings))
	}
	for i, f := range rep.Findings {
		wantFile := fmt.Sprintf("handler%02d.php", i)
		if f.File != wantFile {
			t.Errorf("finding %d in %s, want %s (sorted by file)", i, f.File, wantFile)
		}
	}
}

// TestScanBatch asserts batch reports are aligned with their targets and
// identical to individual Scan calls.
func TestScanBatch(t *testing.T) {
	names := []string{
		"Uploadify 1.0.0",
		"Adblock Blocker 0.0.1",
		"MailCWP 1.100",
	}
	var targets []Target
	for _, n := range names {
		app, ok := corpus.ByName(n)
		if !ok {
			t.Fatalf("missing corpus app %q", n)
		}
		targets = append(targets, Target{Name: app.Name, Sources: app.Sources})
	}
	scanner := NewScanner(Options{Workers: 3})
	reports := scanner.ScanBatch(context.Background(), targets)
	if len(reports) != len(targets) {
		t.Fatalf("reports = %d, want %d", len(reports), len(targets))
	}
	for i, rep := range reports {
		if rep == nil {
			t.Fatalf("report %d is nil", i)
		}
		if rep.Name != targets[i].Name {
			t.Errorf("report %d = %q, want %q (alignment)", i, rep.Name, targets[i].Name)
		}
		solo, err := scanner.Scan(context.Background(), targets[i])
		if err != nil {
			t.Fatal(err)
		}
		if reportFingerprint(t, rep) != reportFingerprint(t, solo) {
			t.Errorf("%s: batch report differs from solo scan", rep.Name)
		}
	}
	if got := scanner.ScanBatch(context.Background(), nil); len(got) != 0 {
		t.Errorf("empty batch = %d reports", len(got))
	}
}

// TestScanCancellation asserts Scan returns promptly with ctx.Err() on an
// app whose path exploration would otherwise exceed the budget — the Cimy
// blow-up with the budget lifted far beyond its 248832 paths.
func TestScanCancellation(t *testing.T) {
	app, ok := corpus.ByName("Cimy User Extra Fields 2.3.8")
	if !ok {
		t.Fatal("missing Cimy corpus app")
	}
	target := Target{Name: app.Name, Sources: app.Sources}
	opts := Options{Budgets: Budgets{MaxPaths: 100000000, MaxObjects: 1 << 30}}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	rep, err := NewScanner(opts).Scan(ctx, target)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("Scan took %v after cancellation, want prompt return", elapsed)
	}
	if rep == nil {
		t.Fatal("nil report on cancellation; want partial results")
	}
	// Cancellation is classified, not stringly recorded: it must appear
	// as FailCancelled in Failures, and must NOT pollute the per-class
	// failure counts — a timed-out batch does not report every pending
	// root as errored.
	found := false
	for _, fl := range rep.Failures {
		if fl.Class == FailCancelled {
			found = true
		} else if fl.Countable() {
			t.Errorf("unexpected countable failure on cancellation: %+v", fl)
		}
	}
	if !found {
		t.Errorf("Failures = %v, want a %s entry", rep.Failures, FailCancelled)
	}
	if n := rep.FailureCounts[FailCancelled]; n != 0 {
		t.Errorf("FailureCounts[%s] = %d, want 0 (excluded)", FailCancelled, n)
	}

	// A context canceled before the call returns immediately.
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := NewScanner(opts).Scan(done, target); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled ctx: err = %v", err)
	}
}

// TestScanDeadline asserts deadline expiry behaves like cancellation.
func TestScanDeadline(t *testing.T) {
	app, _ := corpus.ByName("Cimy User Extra Fields 2.3.8")
	opts := Options{Budgets: Budgets{MaxPaths: 100000000, MaxObjects: 1 << 30}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := NewScanner(opts).Scan(ctx, Target{Name: app.Name, Sources: app.Sources})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestSpanAppAttribution asserts every span delivered to OnSpan carries
// the scanned app's name as the "app" attribute — including per-root and
// per-attempt spans, which is what lets span consumers attribute work in
// a concurrent batch without reconstructing the parent chain.
func TestSpanAppAttribution(t *testing.T) {
	seen := map[string]int{}
	opts := Options{
		Workers: 2,
		OnSpan: func(sp obs.Span) {
			if sp.Attr("app") != "phased" {
				t.Errorf("span %q app attr = %q, want %q", sp.Name, sp.Attr("app"), "phased")
			}
			seen[sp.Name]++
		},
	}
	target := multiRootTarget("phased", 4)
	if _, err := NewScanner(opts).Scan(context.Background(), target); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"parse", "locality", "root", "attempt", "interp", "scan"} {
		if seen[name] == 0 {
			t.Errorf("no %q span delivered; got %v", name, seen)
		}
	}
}
