// Package phplex implements a lexer for the PHP dialect accepted by this
// repository. It tokenizes mixed HTML/PHP sources, handling the <?php / ?>
// mode switches, all three string forms (single-quoted, double-quoted,
// heredoc/nowdoc), comments, and PHP's case-insensitive keywords.
package phplex

import (
	"fmt"
	"strings"

	"repro/internal/phptoken"
)

// Lexer scans a single PHP source file into tokens. Create one with New and
// call Next until it returns a token with Kind == phptoken.EOF.
type Lexer struct {
	src  string
	file string

	off  int // current byte offset
	line int
	col  int

	inPHP bool // false: scanning inline HTML

	errs []error
}

// New returns a Lexer for src. file is used in error messages only.
func New(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// Errors returns lexical errors accumulated so far. Lexing continues after
// errors: the offending byte is skipped.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(p phptoken.Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s:%s: %s", l.file, p, fmt.Sprintf(format, args...)))
}

func (l *Lexer) pos() phptoken.Pos {
	return phptoken.Pos{Offset: l.off, Line: l.line, Col: l.col}
}

func (l *Lexer) eof() bool { return l.off >= len(l.src) }

func (l *Lexer) peek() byte {
	if l.eof() {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) advanceN(n int) {
	for i := 0; i < n && !l.eof(); i++ {
		l.advance()
	}
}

// hasPrefixFold reports whether the source at the current offset matches s
// case-insensitively.
func (l *Lexer) hasPrefixFold(s string) bool {
	if l.off+len(s) > len(l.src) {
		return false
	}
	return strings.EqualFold(l.src[l.off:l.off+len(s)], s)
}

// Next returns the next token. After the end of input it returns EOF tokens
// forever.
func (l *Lexer) Next() phptoken.Token {
	if !l.inPHP {
		return l.scanHTML()
	}
	return l.scanPHP()
}

// Tokens scans the entire remaining input and returns all tokens including
// the final EOF token.
func (l *Lexer) Tokens() []phptoken.Token {
	var toks []phptoken.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == phptoken.EOF {
			return toks
		}
	}
}

func (l *Lexer) scanHTML() phptoken.Token {
	start := l.pos()
	if l.eof() {
		return phptoken.Token{Kind: phptoken.EOF, Pos: start}
	}
	var sb strings.Builder
	for !l.eof() {
		if l.peek() == '<' && l.peekAt(1) == '?' {
			break
		}
		sb.WriteByte(l.advance())
	}
	if sb.Len() > 0 {
		return phptoken.Token{Kind: phptoken.InlineHTML, Value: sb.String(), Pos: start}
	}
	// At "<?".
	open := l.pos()
	if l.hasPrefixFold("<?php") {
		l.advanceN(5)
		l.inPHP = true
		return phptoken.Token{Kind: phptoken.OpenTag, Pos: open}
	}
	if strings.HasPrefix(l.src[l.off:], "<?=") {
		l.advanceN(3)
		l.inPHP = true
		return phptoken.Token{Kind: phptoken.OpenEcho, Pos: open}
	}
	// Short open tag "<?".
	l.advanceN(2)
	l.inPHP = true
	return phptoken.Token{Kind: phptoken.OpenTag, Pos: open}
}

func (l *Lexer) scanPHP() phptoken.Token {
	l.skipSpaceAndComments()
	start := l.pos()
	if l.eof() {
		return phptoken.Token{Kind: phptoken.EOF, Pos: start}
	}
	c := l.peek()
	switch {
	case c == '?' && l.peekAt(1) == '>':
		l.advanceN(2)
		l.inPHP = false
		// PHP swallows one newline immediately after ?>.
		if l.peek() == '\n' {
			l.advance()
		}
		return phptoken.Token{Kind: phptoken.CloseTag, Pos: start}
	case c == '$' && isIdentStart(l.peekAt(1)):
		l.advance()
		name := l.scanIdentText()
		return phptoken.Token{Kind: phptoken.Variable, Value: name, Pos: start}
	case c == '$':
		l.advance()
		return phptoken.Token{Kind: phptoken.Dollar, Pos: start}
	case isIdentStart(c):
		name := l.scanIdentText()
		kind := phptoken.Lookup(strings.ToLower(name))
		if kind == phptoken.Ident {
			return phptoken.Token{Kind: phptoken.Ident, Value: name, Pos: start}
		}
		return phptoken.Token{Kind: kind, Value: name, Pos: start}
	case c >= '0' && c <= '9':
		return l.scanNumber(start)
	case c == '.' && isDigit(l.peekAt(1)):
		return l.scanNumber(start)
	case c == '\'':
		return l.scanSingleQuoted(start)
	case c == '"':
		return l.scanDoubleQuoted(start)
	case c == '`':
		// Shell-exec string: lex like a double-quoted string; the parser
		// treats it as an opaque literal.
		return l.scanBacktick(start)
	case c == '<' && l.peekAt(1) == '<' && l.peekAt(2) == '<':
		return l.scanHeredoc(start)
	default:
		return l.scanOperator(start)
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for !l.eof() {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekAt(1) == '/':
			l.skipLineComment()
		case c == '#':
			l.skipLineComment()
		case c == '/' && l.peekAt(1) == '*':
			l.skipBlockComment()
		default:
			return
		}
	}
}

// skipLineComment consumes a // or # comment. Per PHP, a line comment ends
// at a newline or at a closing ?> tag (which is not consumed).
func (l *Lexer) skipLineComment() {
	for !l.eof() {
		if l.peek() == '\n' {
			l.advance()
			return
		}
		if l.peek() == '?' && l.peekAt(1) == '>' {
			return
		}
		l.advance()
	}
}

func (l *Lexer) skipBlockComment() {
	p := l.pos()
	l.advanceN(2)
	for !l.eof() {
		if l.peek() == '*' && l.peekAt(1) == '/' {
			l.advanceN(2)
			return
		}
		l.advance()
	}
	l.errorf(p, "unterminated block comment")
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *Lexer) scanIdentText() string {
	start := l.off
	for !l.eof() && isIdentPart(l.peek()) {
		l.advance()
	}
	return l.src[start:l.off]
}

func (l *Lexer) scanNumber(start phptoken.Pos) phptoken.Token {
	begin := l.off
	kind := phptoken.IntLit
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.advanceN(2)
		for !l.eof() && (isHexDigit(l.peek()) || l.peek() == '_') {
			l.advance()
		}
		return phptoken.Token{Kind: kind, Value: l.src[begin:l.off], Pos: start}
	}
	if l.peek() == '0' && (l.peekAt(1) == 'b' || l.peekAt(1) == 'B') {
		l.advanceN(2)
		for !l.eof() && (l.peek() == '0' || l.peek() == '1' || l.peek() == '_') {
			l.advance()
		}
		return phptoken.Token{Kind: kind, Value: l.src[begin:l.off], Pos: start}
	}
	for !l.eof() && (isDigit(l.peek()) || l.peek() == '_') {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peekAt(1)) {
		kind = phptoken.FloatLit
		l.advance()
		for !l.eof() && (isDigit(l.peek()) || l.peek() == '_') {
			l.advance()
		}
	}
	if c := l.peek(); c == 'e' || c == 'E' {
		next := l.peekAt(1)
		if isDigit(next) || ((next == '+' || next == '-') && isDigit(l.peekAt(2))) {
			kind = phptoken.FloatLit
			l.advance()
			if l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
			for !l.eof() && isDigit(l.peek()) {
				l.advance()
			}
		}
	}
	return phptoken.Token{Kind: kind, Value: strings.ReplaceAll(l.src[begin:l.off], "_", ""), Pos: start}
}

func (l *Lexer) scanSingleQuoted(start phptoken.Pos) phptoken.Token {
	l.advance() // consume '
	var sb strings.Builder
	for {
		if l.eof() {
			l.errorf(start, "unterminated string literal")
			break
		}
		c := l.advance()
		if c == '\'' {
			break
		}
		if c == '\\' {
			switch l.peek() {
			case '\'':
				sb.WriteByte('\'')
				l.advance()
			case '\\':
				sb.WriteByte('\\')
				l.advance()
			default:
				sb.WriteByte('\\')
			}
			continue
		}
		sb.WriteByte(c)
	}
	return phptoken.Token{Kind: phptoken.StringLit, Value: sb.String(), Pos: start}
}

func (l *Lexer) scanDoubleQuoted(start phptoken.Pos) phptoken.Token {
	l.advance() // consume "
	begin := l.off
	interp := false
	for {
		if l.eof() {
			l.errorf(start, "unterminated string literal")
			break
		}
		c := l.peek()
		if c == '"' {
			break
		}
		if c == '\\' {
			l.advance()
			if !l.eof() {
				l.advance()
			}
			continue
		}
		if c == '$' && (isIdentStart(l.peekAt(1)) || l.peekAt(1) == '{') {
			interp = true
		}
		if c == '{' && l.peekAt(1) == '$' {
			interp = true
		}
		l.advance()
	}
	raw := l.src[begin:l.off]
	if !l.eof() {
		l.advance() // consume closing "
	}
	if interp {
		return phptoken.Token{Kind: phptoken.StringInterp, Value: raw, Pos: start}
	}
	return phptoken.Token{Kind: phptoken.StringLit, Value: DecodeEscapes(raw), Pos: start}
}

func (l *Lexer) scanBacktick(start phptoken.Pos) phptoken.Token {
	l.advance() // consume `
	begin := l.off
	for !l.eof() && l.peek() != '`' {
		if l.peek() == '\\' {
			l.advance()
		}
		if !l.eof() {
			l.advance()
		}
	}
	raw := l.src[begin:l.off]
	if !l.eof() {
		l.advance()
	}
	return phptoken.Token{Kind: phptoken.StringLit, Value: DecodeEscapes(raw), Pos: start}
}

func (l *Lexer) scanHeredoc(start phptoken.Pos) phptoken.Token {
	l.advanceN(3) // <<<
	for l.peek() == ' ' || l.peek() == '\t' {
		l.advance()
	}
	nowdoc := false
	quoted := false
	switch l.peek() {
	case '\'':
		nowdoc = true
		l.advance()
	case '"':
		quoted = true
		l.advance()
	}
	label := l.scanIdentText()
	if label == "" {
		l.errorf(start, "missing heredoc label")
	}
	if nowdoc || quoted {
		if l.peek() == '\'' || l.peek() == '"' {
			l.advance()
		}
	}
	// Skip to end of line.
	for !l.eof() && l.peek() != '\n' {
		l.advance()
	}
	if !l.eof() {
		l.advance()
	}
	var body strings.Builder
	for {
		if l.eof() {
			l.errorf(start, "unterminated heredoc %q", label)
			break
		}
		// Check for terminator at start of line (allowing leading whitespace
		// per PHP 7.3+ flexible heredoc).
		save := l.off
		for l.peek() == ' ' || l.peek() == '\t' {
			l.advance()
		}
		if strings.HasPrefix(l.src[l.off:], label) {
			after := l.off + len(label)
			if after >= len(l.src) || !isIdentPart(l.src[after]) {
				l.advanceN(len(label))
				bodyStr := strings.TrimSuffix(body.String(), "\n")
				if nowdoc {
					return phptoken.Token{Kind: phptoken.StringLit, Value: bodyStr, Pos: start}
				}
				if strings.ContainsAny(bodyStr, "$") {
					return phptoken.Token{Kind: phptoken.StringInterp, Value: bodyStr, Pos: start}
				}
				return phptoken.Token{Kind: phptoken.StringLit, Value: DecodeEscapes(bodyStr), Pos: start}
			}
		}
		// Not a terminator: restore and consume the line into the body.
		l.restore(save)
		for !l.eof() {
			c := l.advance()
			body.WriteByte(c)
			if c == '\n' {
				break
			}
		}
	}
	return phptoken.Token{Kind: phptoken.StringLit, Value: body.String(), Pos: start}
}

// restore rewinds the lexer to a previous offset. Only valid for offsets on
// the current line scan (it recomputes line/col from scratch for safety).
func (l *Lexer) restore(off int) {
	if off == l.off {
		return
	}
	// Recompute line/col by scanning backward; offsets are always within the
	// current heredoc line so this is cheap.
	for l.off > off {
		l.off--
		if l.src[l.off] == '\n' {
			l.line--
		}
	}
	// Recompute column.
	col := 1
	for i := l.off - 1; i >= 0 && l.src[i] != '\n'; i-- {
		col++
	}
	l.col = col
}

func (l *Lexer) scanOperator(start phptoken.Pos) phptoken.Token {
	// Longest-match operator table, ordered by length.
	three := [...]struct {
		s string
		k phptoken.Kind
	}{
		{"===", phptoken.Identical}, {"!==", phptoken.NotIdent},
		{"<=>", phptoken.Spaceship}, {"**=", phptoken.PowAssign},
		{"??=", phptoken.CoalAssign}, {"<<=", phptoken.ShlAssign},
		{">>=", phptoken.ShrAssign},
	}
	for _, op := range three {
		if strings.HasPrefix(l.src[l.off:], op.s) {
			l.advanceN(3)
			return phptoken.Token{Kind: op.k, Pos: start}
		}
	}
	two := [...]struct {
		s string
		k phptoken.Kind
	}{
		{"==", phptoken.Eq}, {"!=", phptoken.NotEq}, {"<>", phptoken.NotEq},
		{"<=", phptoken.LtEq}, {">=", phptoken.GtEq},
		{"&&", phptoken.BoolAnd}, {"||", phptoken.BoolOr},
		{"++", phptoken.Inc}, {"--", phptoken.Dec},
		{"+=", phptoken.PlusAssign}, {"-=", phptoken.MinusAssign},
		{"*=", phptoken.MulAssign}, {"/=", phptoken.DivAssign},
		{"%=", phptoken.ModAssign}, {".=", phptoken.ConcatAssign},
		{"&=", phptoken.AndAssign}, {"|=", phptoken.OrAssign},
		{"^=", phptoken.XorAssign},
		{"**", phptoken.Pow}, {"??", phptoken.Coal},
		{"->", phptoken.Arrow}, {"=>", phptoken.DArrow},
		{"::", phptoken.Scope}, {"<<", phptoken.Shl}, {">>", phptoken.Shr},
	}
	for _, op := range two {
		if strings.HasPrefix(l.src[l.off:], op.s) {
			l.advanceN(2)
			return phptoken.Token{Kind: op.k, Pos: start}
		}
	}
	one := map[byte]phptoken.Kind{
		';': phptoken.Semicolon, ',': phptoken.Comma,
		'(': phptoken.LParen, ')': phptoken.RParen,
		'{': phptoken.LBrace, '}': phptoken.RBrace,
		'[': phptoken.LBracket, ']': phptoken.RBracket,
		'=': phptoken.Assign, '+': phptoken.Plus, '-': phptoken.Minus,
		'*': phptoken.Mul, '/': phptoken.Div, '%': phptoken.Mod,
		'.': phptoken.Concat, '<': phptoken.Lt, '>': phptoken.Gt,
		'!': phptoken.Not, '&': phptoken.Amp, '|': phptoken.Pipe,
		'^': phptoken.Caret, '~': phptoken.Tilde, '?': phptoken.Quest,
		':': phptoken.Colon, '@': phptoken.At, '\\': phptoken.Bslash,
	}
	c := l.peek()
	if k, ok := one[c]; ok {
		l.advance()
		return phptoken.Token{Kind: k, Pos: start}
	}
	l.errorf(start, "unexpected character %q", c)
	l.advance()
	return phptoken.Token{Kind: phptoken.Invalid, Value: string(c), Pos: start}
}

// DecodeEscapes decodes double-quoted-string escape sequences in raw. It
// implements PHP's escape set: \n \t \r \v \f \e \\ \$ \" \xHH \NNN (octal)
// and \u{...}. Unknown escapes are kept verbatim (backslash included), as
// PHP does.
func DecodeEscapes(raw string) string {
	if !strings.Contains(raw, "\\") {
		return raw
	}
	var sb strings.Builder
	sb.Grow(len(raw))
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		if c != '\\' || i+1 >= len(raw) {
			sb.WriteByte(c)
			continue
		}
		i++
		switch raw[i] {
		case 'n':
			sb.WriteByte('\n')
		case 't':
			sb.WriteByte('\t')
		case 'r':
			sb.WriteByte('\r')
		case 'v':
			sb.WriteByte('\v')
		case 'f':
			sb.WriteByte('\f')
		case 'e':
			sb.WriteByte(0x1b)
		case '\\':
			sb.WriteByte('\\')
		case '$':
			sb.WriteByte('$')
		case '"':
			sb.WriteByte('"')
		case 'x':
			j := i + 1
			v := 0
			n := 0
			for j < len(raw) && n < 2 && isHexDigit(raw[j]) {
				v = v*16 + hexVal(raw[j])
				j++
				n++
			}
			if n == 0 {
				sb.WriteString("\\x")
			} else {
				sb.WriteByte(byte(v))
				i = j - 1
			}
		case '0', '1', '2', '3', '4', '5', '6', '7':
			j := i
			v := 0
			n := 0
			for j < len(raw) && n < 3 && raw[j] >= '0' && raw[j] <= '7' {
				v = v*8 + int(raw[j]-'0')
				j++
				n++
			}
			sb.WriteByte(byte(v))
			i = j - 1
		case 'u':
			// \u{H...} codepoint escape (PHP 7+). PHP raises a compile
			// error for empty braces and for codepoints beyond U+10FFFF;
			// a lexer cannot abort, so invalid sequences keep their
			// literal text instead of silently becoming U+0000 (empty
			// braces) or U+FFFD (rune(v) of an overflowed accumulator —
			// a long digit run used to wrap the int).
			if i+1 < len(raw) && raw[i+1] == '{' {
				j := i + 2
				v := 0
				n := 0
				for j < len(raw) && isHexDigit(raw[j]) {
					v = v*16 + hexVal(raw[j])
					if v > 0x10FFFF {
						// Saturate above the Unicode range: the value
						// stays invalid and the accumulator cannot
						// overflow no matter how many digits follow.
						v = 0x110000
					}
					j++
					n++
				}
				valid := j < len(raw) && raw[j] == '}' && n > 0 &&
					v <= 0x10FFFF && (v < 0xD800 || v > 0xDFFF)
				if valid {
					sb.WriteRune(rune(v))
					i = j
					continue
				}
			}
			sb.WriteString("\\u")
		default:
			sb.WriteByte('\\')
			sb.WriteByte(raw[i])
		}
	}
	return sb.String()
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}
