package phplex

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/phptoken"
)

// kinds extracts the kind sequence of all tokens excluding the final EOF.
func kinds(t *testing.T, src string) []phptoken.Kind {
	t.Helper()
	l := New("test.php", src)
	toks := l.Tokens()
	if len(l.Errors()) > 0 {
		t.Fatalf("lex errors: %v", l.Errors())
	}
	out := make([]phptoken.Kind, 0, len(toks)-1)
	for _, tk := range toks[:len(toks)-1] {
		out = append(out, tk.Kind)
	}
	return out
}

func values(t *testing.T, src string) []string {
	t.Helper()
	l := New("test.php", src)
	toks := l.Tokens()
	out := make([]string, 0, len(toks)-1)
	for _, tk := range toks[:len(toks)-1] {
		out = append(out, tk.Value)
	}
	return out
}

func TestLexBasicScript(t *testing.T) {
	src := "<?php $a = 1 + 2; ?>"
	want := []phptoken.Kind{
		phptoken.OpenTag, phptoken.Variable, phptoken.Assign,
		phptoken.IntLit, phptoken.Plus, phptoken.IntLit,
		phptoken.Semicolon, phptoken.CloseTag,
	}
	if got := kinds(t, src); !reflect.DeepEqual(got, want) {
		t.Errorf("kinds = %v, want %v", got, want)
	}
}

func TestLexInlineHTML(t *testing.T) {
	src := "<html>\n<?php echo 1; ?>\n</html>"
	got := kinds(t, src)
	want := []phptoken.Kind{
		phptoken.InlineHTML, phptoken.OpenTag, phptoken.KwEcho,
		phptoken.IntLit, phptoken.Semicolon, phptoken.CloseTag,
		phptoken.InlineHTML,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("kinds = %v, want %v", got, want)
	}
}

func TestLexOpenEchoTag(t *testing.T) {
	got := kinds(t, "<?= $x ?>")
	want := []phptoken.Kind{phptoken.OpenEcho, phptoken.Variable, phptoken.CloseTag}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("kinds = %v, want %v", got, want)
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	tests := []struct {
		src  string
		want phptoken.Kind
	}{
		{"<?php IF", phptoken.KwIf},
		{"<?php Function", phptoken.KwFunction},
		{"<?php RETURN", phptoken.KwReturn},
		{"<?php ELSEIF", phptoken.KwElseif},
		{"<?php foreach", phptoken.KwForeach},
		{"<?php TRUE", phptoken.KwTrue},
		{"<?php Null", phptoken.KwNull},
		{"<?php die", phptoken.KwExit},
		{"<?php exit", phptoken.KwExit},
		{"<?php AND", phptoken.AndKw},
		{"<?php myFunc", phptoken.Ident},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			got := kinds(t, tt.src)
			if len(got) != 2 || got[1] != tt.want {
				t.Errorf("kinds = %v, want [OpenTag %v]", got, tt.want)
			}
		})
	}
}

func TestLexVariables(t *testing.T) {
	vals := values(t, "<?php $foo $_FILES $_bar9 $_GET")
	want := []string{"", "foo", "_FILES", "_bar9", "_GET"}
	if !reflect.DeepEqual(vals, want) {
		t.Errorf("values = %q, want %q", vals, want)
	}
}

func TestLexNumbers(t *testing.T) {
	tests := []struct {
		src  string
		kind phptoken.Kind
		val  string
	}{
		{"<?php 42", phptoken.IntLit, "42"},
		{"<?php 0x1F", phptoken.IntLit, "0x1F"},
		{"<?php 0b101", phptoken.IntLit, "0b101"},
		{"<?php 1_000", phptoken.IntLit, "1000"},
		{"<?php 3.14", phptoken.FloatLit, "3.14"},
		{"<?php 1e3", phptoken.FloatLit, "1e3"},
		{"<?php 2.5e-2", phptoken.FloatLit, "2.5e-2"},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			l := New("t", tt.src)
			toks := l.Tokens()
			if toks[1].Kind != tt.kind || toks[1].Value != tt.val {
				t.Errorf("got %v %q, want %v %q", toks[1].Kind, toks[1].Value, tt.kind, tt.val)
			}
		})
	}
}

func TestLexStrings(t *testing.T) {
	tests := []struct {
		name string
		src  string
		kind phptoken.Kind
		val  string
	}{
		{"single", `<?php 'abc'`, phptoken.StringLit, "abc"},
		{"single escape quote", `<?php 'a\'b'`, phptoken.StringLit, "a'b"},
		{"single keeps backslash", `<?php 'a\nb'`, phptoken.StringLit, `a\nb`},
		{"double plain", `<?php "abc"`, phptoken.StringLit, "abc"},
		{"double newline", `<?php "a\nb"`, phptoken.StringLit, "a\nb"},
		{"double tab", `<?php "a\tb"`, phptoken.StringLit, "a\tb"},
		{"double escaped dollar", `<?php "a\$b"`, phptoken.StringLit, "a$b"},
		{"double hex", `<?php "\x41"`, phptoken.StringLit, "A"},
		{"double octal", `<?php "\101"`, phptoken.StringLit, "A"},
		{"double unicode", `<?php "\u{48}"`, phptoken.StringLit, "H"},
		{"interp var", `<?php "a $b c"`, phptoken.StringInterp, "a $b c"},
		{"interp braces", `<?php "x{$a['k']}y"`, phptoken.StringInterp, "x{$a['k']}y"},
		{"php ext", `<?php ".php"`, phptoken.StringLit, ".php"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			l := New("t", tt.src)
			toks := l.Tokens()
			if toks[1].Kind != tt.kind || toks[1].Value != tt.val {
				t.Errorf("got %v %q, want %v %q", toks[1].Kind, toks[1].Value, tt.kind, tt.val)
			}
		})
	}
}

func TestLexHeredoc(t *testing.T) {
	src := "<?php $x = <<<EOT\nhello\nworld\nEOT;\n"
	l := New("t", src)
	toks := l.Tokens()
	if len(l.Errors()) > 0 {
		t.Fatalf("errors: %v", l.Errors())
	}
	// OpenTag Variable Assign StringLit Semicolon EOF
	if toks[3].Kind != phptoken.StringLit || toks[3].Value != "hello\nworld" {
		t.Errorf("heredoc token = %v", toks[3])
	}
}

func TestLexNowdoc(t *testing.T) {
	src := "<?php $x = <<<'EOT'\nno $interp here\nEOT;\n"
	l := New("t", src)
	toks := l.Tokens()
	if toks[3].Kind != phptoken.StringLit || toks[3].Value != "no $interp here" {
		t.Errorf("nowdoc token = %v", toks[3])
	}
}

func TestLexHeredocInterp(t *testing.T) {
	src := "<?php $x = <<<EOT\nhello $name\nEOT;\n"
	l := New("t", src)
	toks := l.Tokens()
	if toks[3].Kind != phptoken.StringInterp {
		t.Errorf("heredoc with $var should be StringInterp, got %v", toks[3])
	}
}

func TestLexComments(t *testing.T) {
	src := "<?php // line\n# hash\n/* block\nmulti */ $a;"
	got := kinds(t, src)
	want := []phptoken.Kind{phptoken.OpenTag, phptoken.Variable, phptoken.Semicolon}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("kinds = %v, want %v", got, want)
	}
}

func TestLexLineCommentEndsAtCloseTag(t *testing.T) {
	src := "<?php // comment ?> html"
	got := kinds(t, src)
	want := []phptoken.Kind{phptoken.OpenTag, phptoken.CloseTag, phptoken.InlineHTML}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("kinds = %v, want %v", got, want)
	}
}

func TestLexOperators(t *testing.T) {
	src := "<?php === !== <=> ** ??= ?? -> => :: && || == != <= >= . ++ -- <<= >>= << >>"
	got := kinds(t, src)
	want := []phptoken.Kind{
		phptoken.OpenTag,
		phptoken.Identical, phptoken.NotIdent, phptoken.Spaceship,
		phptoken.Pow, phptoken.CoalAssign, phptoken.Coal,
		phptoken.Arrow, phptoken.DArrow, phptoken.Scope,
		phptoken.BoolAnd, phptoken.BoolOr, phptoken.Eq, phptoken.NotEq,
		phptoken.LtEq, phptoken.GtEq, phptoken.Concat,
		phptoken.Inc, phptoken.Dec,
		phptoken.ShlAssign, phptoken.ShrAssign, phptoken.Shl, phptoken.Shr,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("kinds = %v, want %v", got, want)
	}
}

func TestLexAngleNotEq(t *testing.T) {
	got := kinds(t, "<?php 1 <> 2")
	want := []phptoken.Kind{phptoken.OpenTag, phptoken.IntLit, phptoken.NotEq, phptoken.IntLit}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("kinds = %v, want %v", got, want)
	}
}

func TestLexPositions(t *testing.T) {
	src := "<?php\n$a = 1;\n$b = 2;"
	l := New("t", src)
	toks := l.Tokens()
	// toks: OpenTag $a = 1 ; $b = 2 EOF
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 1 {
		t.Errorf("$a pos = %v, want 2:1", toks[1].Pos)
	}
	if toks[5].Pos.Line != 3 || toks[5].Pos.Col != 1 {
		t.Errorf("$b pos = %v, want 3:1", toks[5].Pos)
	}
}

func TestLexCloseTagSwallowsNewline(t *testing.T) {
	src := "<?php ?>\nX"
	l := New("t", src)
	toks := l.Tokens()
	// InlineHTML should be "X" without the leading newline.
	var html string
	for _, tk := range toks {
		if tk.Kind == phptoken.InlineHTML {
			html = tk.Value
		}
	}
	if html != "X" {
		t.Errorf("html = %q, want \"X\"", html)
	}
}

func TestLexUnterminatedString(t *testing.T) {
	l := New("t", `<?php "abc`)
	l.Tokens()
	if len(l.Errors()) == 0 {
		t.Error("expected error for unterminated string")
	}
}

func TestLexEOFForever(t *testing.T) {
	l := New("t", "<?php")
	for i := 0; i < 3; i++ {
		if tok := l.Next(); i > 0 && tok.Kind != phptoken.EOF {
			t.Fatalf("Next after EOF = %v", tok)
		}
	}
}

func TestSplitInterp(t *testing.T) {
	tests := []struct {
		name string
		raw  string
		want []Segment
	}{
		{
			"simple var",
			"a $b c",
			[]Segment{{Kind: SegText, Text: "a "}, {Kind: SegVar, Name: "b"}, {Kind: SegText, Text: " c"}},
		},
		{
			"var index bare",
			"$f[name]",
			[]Segment{{Kind: SegVarIndex, Name: "f", Index: "name"}},
		},
		{
			"var index quoted complex",
			"{$f['name']}",
			[]Segment{{Kind: SegExpr, Text: "$f['name']"}},
		},
		{
			"var prop",
			"$obj->field!",
			[]Segment{{Kind: SegVarProp, Name: "obj", Prop: "field"}, {Kind: SegText, Text: "!"}},
		},
		{
			"legacy brace",
			"${name}",
			[]Segment{{Kind: SegVar, Name: "name"}},
		},
		{
			"escaped dollar",
			`\$x`,
			[]Segment{{Kind: SegText, Text: "$x"}},
		},
		{
			"adjacent",
			"$a$b",
			[]Segment{{Kind: SegVar, Name: "a"}, {Kind: SegVar, Name: "b"}},
		},
		{
			"text only",
			"plain",
			[]Segment{{Kind: SegText, Text: "plain"}},
		},
		{
			"dollar not var",
			"$ 5",
			[]Segment{{Kind: SegText, Text: "$ 5"}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := SplitInterp(tt.raw)
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("SplitInterp(%q) = %+v, want %+v", tt.raw, got, tt.want)
			}
		})
	}
}

func TestDecodeEscapesUnknownKept(t *testing.T) {
	if got := DecodeEscapes(`a\qb`); got != `a\qb` {
		t.Errorf("got %q", got)
	}
}

// TestDecodeEscapes pins PHP's escape semantics byte-for-byte, including
// the invalid-sequence edges PHP rejects at compile time: the lexer keeps
// those verbatim rather than smuggling in U+0000 / U+FFFD.
func TestDecodeEscapes(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string
	}{
		// \xHH — one or two hex digits, case-insensitive.
		{"hex two digits", `\x41`, "A"},
		{"hex one digit", `\x9`, "\t"},
		{"hex stops after two", `\x414`, "A4"},
		{"hex lowercase", `\x2e` + "php", ".php"},
		{"hex uppercase", `\X` /* not an escape */, `\X`},
		{"hex no digits kept", `\xzz`, `\xzz`},
		{"hex high byte", `\xff`, "\xff"},
		// \NNN — one to three octal digits, mod 256.
		{"octal three", `\101`, "A"},
		{"octal one", `\0`, "\x00"},
		{"octal stops after three", `\1017`, "A7"},
		{"octal wraps mod 256", `\777`, "\xff"},
		// \u{...} — bounded codepoint.
		{"unicode basic", `\u{48}`, "H"},
		{"unicode multibyte", `\u{1F600}`, "\U0001F600"},
		{"unicode nul", `\u{0}`, "\x00"},
		{"unicode max", `\u{10FFFF}`, "\U0010FFFF"},
		{"unicode empty braces kept", `\u{}`, `\u{}`},
		{"unicode too large kept", `\u{110000}`, `\u{110000}`},
		{"unicode overflow run kept", `\u{FFFFFFFFFFFFFFFFFF41}`, `\u{FFFFFFFFFFFFFFFFFF41}`},
		{"unicode surrogate kept", `\u{D800}`, `\u{D800}`},
		{"unicode unterminated kept", `\u{48`, `\u{48`},
		{"unicode non-hex kept", `\u{zz}`, `\u{zz}`},
		{"unicode no brace kept", `\u48`, `\u48`},
		// Mixes.
		{"dotted ext via hex", `evil\x2e` + `php`, "evil.php"},
		{"mixed escapes", `\x41\102\u{43}`, "ABC"},
		{"trailing backslash", `a\`, `a\`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := DecodeEscapes(tt.in); got != tt.want {
				t.Errorf("DecodeEscapes(%q) = %q, want %q", tt.in, got, tt.want)
			}
		})
	}
}

// Property: lexing never panics and always terminates with EOF, for
// arbitrary input bytes.
func TestLexArbitraryInputTerminates(t *testing.T) {
	f := func(s string) bool {
		l := New("fuzz", "<?php "+s)
		toks := l.Tokens()
		return len(toks) > 0 && toks[len(toks)-1].Kind == phptoken.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: positions are monotonically non-decreasing in offset.
func TestLexPositionsMonotonic(t *testing.T) {
	f := func(s string) bool {
		l := New("fuzz", s)
		prev := -1
		for {
			tk := l.Next()
			if tk.Kind == phptoken.EOF {
				return true
			}
			if tk.Pos.Offset < prev {
				return false
			}
			prev = tk.Pos.Offset
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLexCRLFLineEndings(t *testing.T) {
	src := "<?php\r\n$a = 1;\r\n$b = 2;\r\n"
	l := New("t", src)
	toks := l.Tokens()
	if len(l.Errors()) > 0 {
		t.Fatalf("errors: %v", l.Errors())
	}
	// $b should be on line 3.
	var bLine int
	for _, tk := range toks {
		if tk.Kind == phptoken.Variable && tk.Value == "b" {
			bLine = tk.Pos.Line
		}
	}
	if bLine != 3 {
		t.Errorf("$b line = %d, want 3", bLine)
	}
}

func TestLexHeredocIndentedClose(t *testing.T) {
	src := "<?php $x = <<<EOT\n  body line\n  EOT;\n"
	l := New("t", src)
	toks := l.Tokens()
	if toks[3].Kind != phptoken.StringLit {
		t.Errorf("tok = %v", toks[3])
	}
}

func TestLexHeredocLabelPrefixNotTerminator(t *testing.T) {
	// "EOTX" must not terminate a heredoc labelled EOT.
	src := "<?php $x = <<<EOT\nEOTX keeps going\nEOT;\n"
	l := New("t", src)
	toks := l.Tokens()
	if toks[3].Value != "EOTX keeps going" {
		t.Errorf("heredoc body = %q", toks[3].Value)
	}
}

func TestLexBacktickString(t *testing.T) {
	l := New("t", "<?php $o = `ls -la`;")
	toks := l.Tokens()
	if toks[3].Kind != phptoken.StringLit || toks[3].Value != "ls -la" {
		t.Errorf("backtick = %v", toks[3])
	}
}

func TestLexShortOpenTag(t *testing.T) {
	got := kinds(t, "<? $x = 1; ?>")
	want := []phptoken.Kind{
		phptoken.OpenTag, phptoken.Variable, phptoken.Assign,
		phptoken.IntLit, phptoken.Semicolon, phptoken.CloseTag,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("kinds = %v", got)
	}
}

func TestLexDollarAlone(t *testing.T) {
	got := kinds(t, "<?php $ ;")
	want := []phptoken.Kind{phptoken.OpenTag, phptoken.Dollar, phptoken.Semicolon}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("kinds = %v", got)
	}
}

func TestLexInvalidByteRecovers(t *testing.T) {
	l := New("t", "<?php \x01 $x = 1;")
	toks := l.Tokens()
	if len(l.Errors()) == 0 {
		t.Error("expected lex error")
	}
	var sawVar bool
	for _, tk := range toks {
		if tk.Kind == phptoken.Variable {
			sawVar = true
		}
	}
	if !sawVar {
		t.Error("lexing did not recover after invalid byte")
	}
}
