package phplex

import "strings"

// SegKind classifies one segment of an interpolated (double-quoted or
// heredoc) string body.
type SegKind int

// Segment kinds.
const (
	SegText     SegKind = iota // literal text, escapes decoded
	SegVar                     // $name
	SegVarIndex                // $name[index]
	SegVarProp                 // $name->prop
	SegExpr                    // {$ ... } complex expression, raw PHP source
)

// Segment is one piece of an interpolated string.
type Segment struct {
	Kind SegKind
	// Text holds the decoded literal text (SegText) or the raw inner PHP
	// expression source (SegExpr).
	Text string
	// Name is the variable name (without '$') for SegVar/SegVarIndex/SegVarProp.
	Name string
	// Index is the raw index for SegVarIndex: either a bare word (treated as
	// a string key by PHP), a number, or a variable name prefixed with '$'.
	Index string
	// Prop is the property name for SegVarProp.
	Prop string
}

// SplitInterp splits the raw body of a double-quoted string (as produced by
// the lexer for a StringInterp token, escapes NOT yet decoded) into literal
// and interpolation segments, following PHP's "simple" and "complex"
// interpolation syntax.
func SplitInterp(raw string) []Segment {
	var segs []Segment
	var text strings.Builder
	flush := func() {
		if text.Len() > 0 {
			segs = append(segs, Segment{Kind: SegText, Text: DecodeEscapes(text.String())})
			text.Reset()
		}
	}
	i := 0
	for i < len(raw) {
		c := raw[i]
		// Escaped character: keep for later decode, skip interpolation check.
		if c == '\\' && i+1 < len(raw) {
			text.WriteByte(c)
			text.WriteByte(raw[i+1])
			i += 2
			continue
		}
		// Complex syntax: {$expr}
		if c == '{' && i+1 < len(raw) && raw[i+1] == '$' {
			flush()
			depth := 1
			j := i + 1
			for j < len(raw) && depth > 0 {
				switch raw[j] {
				case '{':
					depth++
				case '}':
					depth--
					if depth == 0 {
						break
					}
				}
				if depth > 0 {
					j++
				}
			}
			inner := raw[i+1 : min(j, len(raw))]
			segs = append(segs, Segment{Kind: SegExpr, Text: inner})
			if j < len(raw) {
				j++ // consume '}'
			}
			i = j
			continue
		}
		// ${name} legacy syntax.
		if c == '$' && i+1 < len(raw) && raw[i+1] == '{' {
			j := i + 2
			for j < len(raw) && raw[j] != '}' {
				j++
			}
			name := raw[i+2 : j]
			flush()
			segs = append(segs, Segment{Kind: SegVar, Name: name})
			if j < len(raw) {
				j++
			}
			i = j
			continue
		}
		// Simple syntax: $name, optionally followed by [index] or ->prop.
		if c == '$' && i+1 < len(raw) && isIdentStart(raw[i+1]) {
			flush()
			j := i + 1
			for j < len(raw) && isIdentPart(raw[j]) {
				j++
			}
			name := raw[i+1 : j]
			// Array index?
			if j < len(raw) && raw[j] == '[' {
				k := j + 1
				for k < len(raw) && raw[k] != ']' {
					k++
				}
				if k < len(raw) {
					idx := raw[j+1 : k]
					segs = append(segs, Segment{Kind: SegVarIndex, Name: name, Index: stripQuotes(idx)})
					i = k + 1
					continue
				}
			}
			// Property access?
			if j+1 < len(raw) && raw[j] == '-' && raw[j+1] == '>' && j+2 < len(raw) && isIdentStart(raw[j+2]) {
				k := j + 2
				for k < len(raw) && isIdentPart(raw[k]) {
					k++
				}
				segs = append(segs, Segment{Kind: SegVarProp, Name: name, Prop: raw[j+2 : k]})
				i = k
				continue
			}
			segs = append(segs, Segment{Kind: SegVar, Name: name})
			i = j
			continue
		}
		text.WriteByte(c)
		i++
	}
	flush()
	return segs
}

// stripQuotes removes one layer of single or double quotes if idx is quoted.
// Inside simple interpolation syntax PHP treats bare words as string keys
// and quoted keys appear only in the complex syntax, but we are permissive.
func stripQuotes(idx string) string {
	if len(idx) >= 2 {
		if (idx[0] == '\'' && idx[len(idx)-1] == '\'') || (idx[0] == '"' && idx[len(idx)-1] == '"') {
			return idx[1 : len(idx)-1]
		}
	}
	return idx
}
