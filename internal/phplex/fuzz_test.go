package phplex

import (
	"testing"

	"repro/internal/phptoken"
)

// FuzzLex asserts the lexer never panics on arbitrary bytes, always
// terminates, and always ends the token stream with exactly one EOF —
// the progress contract the parser's error recovery depends on.
func FuzzLex(f *testing.F) {
	for _, seed := range []string{
		"",
		"plain html only",
		"<?php echo 1;",
		"<?php $s = \"never closed",
		"<?php $s = 'never closed",
		"<?php /* unterminated",
		"<?php // line comment\n# hash comment",
		"<?php $h = <<<EOT\nnever terminated",
		"<?php $h = <<<'RAW'\ntext\nRAW;\n",
		"<?php ?>html<?php ?>more<?",
		"<?= $short ?>",
		"<?php $x = \"a{$b->c}d$e[f]g\";",
		"<?php 0x1f 0b101 077 1.5e3 1e309 .5",
		"<?php <=> ?? ??= <<= >>= ** ... :: -> =>",
		"<?php \x00\x80\xff\xfe",
		"<?php $",
		"<?ph",
		"<",
		// Escape-sequence edges: hex/octal/unicode escapes, including the
		// invalid shapes DecodeEscapes must keep verbatim.
		`<?php $d = "\x2ephp";`,
		`<?php $d = "\x41\102\u{43}";`,
		`<?php $d = "\u{}";`,
		`<?php $d = "\u{110000}";`,
		`<?php $d = "\u{FFFFFFFFFFFFFFFFFF41}";`,
		`<?php $d = "\u{D800}\u{48`,
		`<?php $d = "\777\x";`,
		"<?php $d = \"\\",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks := New("fuzz.php", src).Tokens()
		if len(toks) == 0 {
			t.Fatal("empty token stream (missing EOF)")
		}
		for i, tok := range toks {
			if tok.Kind == phptoken.EOF && i != len(toks)-1 {
				t.Fatalf("EOF at %d of %d, want last", i, len(toks))
			}
			if tok.Pos.Line < 0 || tok.Pos.Col < 0 {
				t.Fatalf("negative position %+v", tok.Pos)
			}
		}
		if toks[len(toks)-1].Kind != phptoken.EOF {
			t.Fatalf("stream ends with %v, want EOF", toks[len(toks)-1])
		}
	})
}
