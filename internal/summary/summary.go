// Package summary computes per-function symbolic summaries for the
// interprocedural engine (ISSUE 10). A summary captures, for one PHP
// code unit, the facts a call site needs without inlining the body:
//
//   - per-formal taint transfer to the return value (a bitmask),
//   - the return value as a hash-consed smt term over formal
//     placeholders (smt.OpFormal), when the body is simple enough,
//   - sink effects (which formals reach which argument of which
//     file-writing built-in),
//   - whether the body touches $_FILES or global state,
//   - an escape verdict for constructs the summary language cannot
//     express (by-ref params, dynamic calls, closures, includes, ...).
//
// Escaped callees fall back to the engine's existing inlining, so
// findings never silently change. Summaries are built in two layers:
// a per-file syntactic layer (local.go) that is a pure function of one
// file's content — and therefore cacheable as a per-file artifact
// (artifact.go) — and a cross-function composition layer (compose.go)
// that resolves call effects bottom-up over the strongly connected
// components of the call graph, running a taint fixpoint with a
// widening bound inside recursive components.
package summary

import (
	"sort"
	"strings"

	"repro/internal/phpast"
	"repro/internal/sexpr"
	"repro/internal/smt"
)

// SinkEffect records that calling the function may invoke a sink
// built-in, and which formals flow into its source and destination
// arguments.
type SinkEffect struct {
	Sink       string
	Line       int
	SrcFormals uint64
	DstFormals uint64
}

// Summary is the composed, engine-facing summary of one function.
type Summary struct {
	Name   string // lowercase registered name
	File   string
	Line   int
	Params int

	// Escapes marks functions the summary language cannot describe;
	// the engine must inline them. EscapeReason names the first
	// escaping construct found (for -trace and tests).
	Escapes      bool
	EscapeReason string

	// Recursive marks members of a call-graph cycle; Widened marks
	// summaries whose taint fixpoint hit the widening bound (taint
	// over-approximated to all formals) or whose return term exceeded
	// the size cap.
	Recursive bool
	Widened   bool

	// Forks reports whether executing the body can split the
	// environment set (if/switch/loops/ternary/short-circuit ops).
	Forks bool

	// CallsEscaped reports that some call site inside the body targets
	// an escaped or dynamic callee, so the body's effects are not
	// fully captured by this summary's sink/taint fields.
	CallsEscaped bool

	// ReturnTaint is the bitmask of formals that may flow into the
	// return value (bit i = formal i; functions with more than 64
	// params escape long before this matters).
	ReturnTaint uint64

	// ReturnTerm is the return value as a term over smt Formal
	// leaves, when the return expression is within the summary
	// vocabulary (constants, formals, concatenation, one level of
	// composed calls). nil means opaque.
	ReturnTerm *smt.Term
	ReturnLine int

	// ReturnFormal / ReturnConst describe trivially instantiable
	// bodies (see Trivial): ReturnFormal >= 0 means the body returns
	// formal i unchanged; ReturnConst non-nil means it returns that
	// scalar constant.
	ReturnFormal int
	ReturnConst  sexpr.Expr

	Sinks          []SinkEffect
	TouchesFiles   bool // reads $_FILES
	TouchesGlobals bool // global statement or $GLOBALS access

	// DeadVars are locals whose every occurrence is a plain
	// assignment target: their values are never observed, so two
	// paths differing only in them are observably equal. MergeVars
	// are single-use condition variables (the entire if-condition or
	// switch-subject); path conditions over them are independent
	// literals, which is what makes statement-boundary path merging
	// exact. Both are sorted.
	DeadVars  []string
	MergeVars []string
}

// Trivial reports whether a call site may instantiate this summary
// without pushing a frame at all: the body is straight-line noise plus
// a single `return <formal>` or `return <scalar literal>`, with no
// sinks, no superglobal or global access, and no calls. Instantiation
// of such a body is byte-identical to inlining it.
func (s *Summary) Trivial() bool {
	return !s.Escapes && !s.Forks && !s.CallsEscaped &&
		len(s.Sinks) == 0 && !s.TouchesFiles && !s.TouchesGlobals &&
		(s.ReturnFormal >= 0 || s.ReturnConst != nil)
}

// Set is the full summary table for one scan.
type Set struct {
	Funcs map[string]*Summary

	// Computed counts function summaries computed fresh this scan;
	// CacheHits counts per-file artifacts served from the
	// content-addressed cache. Both feed scan-level metrics.
	Computed  int
	CacheHits int
}

// Lookup returns the summary registered under the interpreter's
// lowercase name for the callee, or nil.
func (s *Set) Lookup(lname string) *Summary {
	if s == nil {
		return nil
	}
	return s.Funcs[lname]
}

// Build computes summaries for a set of parsed files: the per-file
// local layer followed by cross-function composition. The file order
// must match the interpreter's, because both resolve duplicate
// function names first-declaration-wins.
func Build(files []*phpast.File, fac *smt.Factory) *Set {
	locals := make([]*FileLocal, 0, len(files))
	for _, f := range files {
		locals = append(locals, LocalFile(f))
	}
	set := Compose(locals, fac)
	for _, fl := range locals {
		set.Computed += len(fl.Funcs)
	}
	return set
}

// superglobals must never be treated as mergeable condition variables
// or dead locals: their values are shared with the caller's world.
var superglobals = map[string]bool{
	"_FILES": true, "_GET": true, "_POST": true, "_REQUEST": true,
	"_COOKIE": true, "_SERVER": true, "_SESSION": true,
	"GLOBALS": true, "_ENV": true,
}

func sortedNames(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k, v := range m {
		if v {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func lower(s string) string { return strings.ToLower(s) }
