package summary

import (
	"fmt"
	"sort"

	"repro/internal/callgraph"
	"repro/internal/phpast"
)

// The local layer: a pure syntactic analysis of one file's function
// declarations. Everything here is a function of the file's content
// alone (no other files, no options), which is what makes the result
// cacheable as a per-file artifact.
//
// Taint is tracked as AtomSets: a set of formal-parameter bits plus a
// set of call-site indices whose return values flow in. Call sites
// keep their own argument AtomSets, so the composition layer can
// resolve everything to formal masks once callee summaries exist.

// AtomSet is a taint value: which formals and which call results may
// flow into a variable or expression. Sites is sorted and deduplicated.
type AtomSet struct {
	Formals uint64 `json:"f,omitempty"`
	Sites   []int  `json:"s,omitempty"`
}

func (a AtomSet) union(b AtomSet) AtomSet {
	out := AtomSet{Formals: a.Formals | b.Formals}
	out.Sites = mergeSorted(a.Sites, b.Sites)
	return out
}

func (a AtomSet) equal(b AtomSet) bool {
	if a.Formals != b.Formals || len(a.Sites) != len(b.Sites) {
		return false
	}
	for i := range a.Sites {
		if a.Sites[i] != b.Sites[i] {
			return false
		}
	}
	return true
}

func (a AtomSet) empty() bool { return a.Formals == 0 && len(a.Sites) == 0 }

func mergeSorted(a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]int(nil), b...)
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Site is one resolvable call site inside a function body: a call to a
// statically named function, with the taint atoms of each argument.
type Site struct {
	Callee string    `json:"c"`
	Line   int       `json:"l"`
	Args   []AtomSet `json:"a,omitempty"`
}

// SinkLocal is a direct sink call inside the body, with unresolved
// source/destination taint.
type SinkLocal struct {
	Sink string  `json:"k"`
	Line int     `json:"l"`
	Src  AtomSet `json:"src"`
	Dst  AtomSet `json:"dst"`
}

// RetCallLocal describes a `return g(args...)` body where every
// argument is itself in the term vocabulary: the composition layer
// instantiates g's return term with the argument terms via
// smt.Factory.Substitute.
type RetCallLocal struct {
	Callee string      `json:"c"`
	Args   []*TermNode `json:"a,omitempty"`
}

// FuncLocal is the serializable local layer for one function.
type FuncLocal struct {
	Name   string `json:"name"`
	File   string `json:"file"`
	Line   int    `json:"line"`
	Params int    `json:"params"`

	Escapes      bool   `json:"escapes,omitempty"`
	EscapeReason string `json:"escapeReason,omitempty"`
	Forks        bool   `json:"forks,omitempty"`

	Sites []Site      `json:"sites,omitempty"`
	Sinks []SinkLocal `json:"sinks,omitempty"`

	Return  AtomSet       `json:"ret"`
	RetTerm *TermNode     `json:"retTerm,omitempty"`
	RetCall *RetCallLocal `json:"retCall,omitempty"`
	RetLine int           `json:"retLine,omitempty"`

	// Trivial-body classification (see Summary.Trivial): the body is
	// {Nop|InlineHTML|FuncDecl|ClassDecl}* followed by exactly one
	// return of a never-assigned formal or a scalar literal.
	RetFormal    int     `json:"retFormal"`
	RetConstKind string  `json:"retConstKind,omitempty"` // "str","int","float","bool","null"
	RetConstStr  string  `json:"retConstStr,omitempty"`
	RetConstInt  int64   `json:"retConstInt,omitempty"`
	RetConstF    float64 `json:"retConstF,omitempty"`
	RetConstBool bool    `json:"retConstBool,omitempty"`

	TouchesFiles   bool `json:"touchesFiles,omitempty"`
	TouchesGlobals bool `json:"touchesGlobals,omitempty"`

	DeadVars  []string `json:"deadVars,omitempty"`
	MergeVars []string `json:"mergeVars,omitempty"`
}

// FileLocal is the per-file artifact payload: the local layer of every
// function declared in one file, in declaration order.
type FileLocal struct {
	Version int          `json:"version"`
	File    string       `json:"file"`
	Funcs   []*FuncLocal `json:"funcs,omitempty"`
}

// LocalFile computes the local layer for one parsed file. Function
// name registration mirrors the interpreter's declare(): FuncDecls
// under their lowercase name, class methods under both the qualified
// "class::method" and the bare method name, first declaration wins
// (collisions are resolved by Compose across files).
func LocalFile(f *phpast.File) *FileLocal {
	fl := &FileLocal{Version: ArtifactVersion, File: f.Name}
	for _, s := range f.Stmts {
		phpast.Walk(s, func(n phpast.Node) bool {
			switch d := n.(type) {
			case *phpast.FuncDecl:
				fl.Funcs = append(fl.Funcs, localFunc(lower(d.Name), f.Name, d.P.Line, d.Params, d.Body, false))
			case *phpast.ClassDecl:
				for _, m := range d.Methods {
					qual := lower(d.Name + "::" + m.Name)
					fl.Funcs = append(fl.Funcs, localFunc(qual, f.Name, m.P.Line, m.Params, m.Body, true))
					fl.Funcs = append(fl.Funcs, localFunc(lower(m.Name), f.Name, m.P.Line, m.Params, m.Body, true))
				}
				return false // methods handled; don't re-walk as nested decls
			}
			return true
		})
	}
	return fl
}

// localScan carries the walker state for one function body.
type localScan struct {
	fl       *FuncLocal
	params   map[string]int  // formal name -> index
	assigned map[string]bool // formals that are assignment targets
	vars     map[string]AtomSet
	// occurrence bookkeeping for DeadVars / MergeVars
	occs     map[string]int  // total occurrences per var
	deadOccs map[string]int  // occurrences that are plain-assign LHS
	condOccs map[string]int  // occurrences that are an entire if-cond/switch-subject
	declared map[string]bool // names in global/static declarations or params
}

func localFunc(name, file string, line int, params []phpast.Param, body []phpast.Stmt, isMethod bool) *FuncLocal {
	fl := &FuncLocal{Name: name, File: file, Line: line, Params: len(params), RetFormal: -1}
	sc := &localScan{
		fl:       fl,
		params:   map[string]int{},
		assigned: map[string]bool{},
		vars:     map[string]AtomSet{},
		occs:     map[string]int{},
		deadOccs: map[string]int{},
		condOccs: map[string]int{},
		declared: map[string]bool{},
	}
	for i, p := range params {
		sc.params[p.Name] = i
		sc.declared[p.Name] = true
		switch {
		case p.ByRef:
			sc.escape("by-ref param")
		case p.Variadic:
			sc.escape("variadic param")
		}
	}
	if isMethod {
		sc.escape("class method")
	}
	if len(params) > 64 {
		sc.escape("too many params")
	}

	// Taint assignments are order-sensitive through locals
	// ($x = $a; $y = $x;), so sweep the statement walk until the
	// var table stops changing. Atom sets only grow, so the sweep
	// count is bounded by the lattice height; the explicit cap is a
	// backstop.
	for sweep := 0; sweep < 64; sweep++ {
		before := sc.snapshot()
		first := sweep == 0
		if !first {
			// Re-sweeps only propagate taint; structural facts
			// (sites, sinks, occurrences) were collected on the
			// first pass and must not be duplicated.
			sc.fl.Sites = sc.fl.Sites[:0]
			sc.fl.Sinks = sc.fl.Sinks[:0]
			sc.fl.Return = AtomSet{}
		}
		sc.stmts(body, first)
		if sc.snapshot() == before {
			break
		}
	}

	sc.classifyTrivialReturn(body)
	sc.finishVars()
	return fl
}

func (sc *localScan) snapshot() string {
	keys := make([]string, 0, len(sc.vars))
	for k := range sc.vars {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		a := sc.vars[k]
		out += fmt.Sprintf("%s{%x %v}", k, a.Formals, a.Sites)
	}
	return out
}

func (sc *localScan) escape(reason string) {
	if !sc.fl.Escapes {
		sc.fl.Escapes = true
		sc.fl.EscapeReason = reason
	}
}

// stmts walks a statement list. first is true on the initial sweep,
// which also records structural facts (occurrences, forks, escapes).
func (sc *localScan) stmts(list []phpast.Stmt, first bool) {
	for _, s := range list {
		sc.stmt(s, first)
	}
}

func (sc *localScan) stmt(s phpast.Stmt, first bool) {
	switch n := s.(type) {
	case nil, *phpast.Nop, *phpast.InlineHTML:
	case *phpast.FuncDecl, *phpast.ClassDecl:
		// Nested declarations are separate scopes, summarized on
		// their own; executing the declaration is a no-op.
	case *phpast.ExprStmt:
		sc.expr(n.X, first)
	case *phpast.Echo:
		for _, e := range n.Args {
			sc.expr(e, first)
		}
	case *phpast.Block:
		sc.stmts(n.Stmts, first)
	case *phpast.If:
		sc.fl.Forks = true
		if first {
			sc.condOccurrence(n.Cond)
		}
		sc.expr(n.Cond, first)
		if n.Then != nil {
			sc.stmts(n.Then.Stmts, first)
		}
		sc.stmt(n.Else, first)
	case *phpast.While:
		sc.fl.Forks = true
		sc.expr(n.Cond, first)
		if n.Body != nil {
			sc.stmts(n.Body.Stmts, first)
		}
	case *phpast.DoWhile:
		sc.fl.Forks = true
		if n.Body != nil {
			sc.stmts(n.Body.Stmts, first)
		}
		sc.expr(n.Cond, first)
	case *phpast.For:
		sc.fl.Forks = true
		for _, e := range n.Init {
			sc.expr(e, first)
		}
		for _, e := range n.Cond {
			sc.expr(e, first)
		}
		for _, e := range n.Post {
			sc.expr(e, first)
		}
		if n.Body != nil {
			sc.stmts(n.Body.Stmts, first)
		}
	case *phpast.Foreach:
		sc.fl.Forks = true
		if n.ByRef {
			sc.escape("by-ref foreach")
		}
		src := sc.expr(n.Arr, first)
		if n.Key != nil {
			sc.assignTo(n.Key, src, false, first)
		}
		sc.assignTo(n.Val, src, false, first)
		if n.Body != nil {
			sc.stmts(n.Body.Stmts, first)
		}
	case *phpast.Switch:
		sc.fl.Forks = true
		if first {
			sc.condOccurrence(n.Subject)
		}
		sc.expr(n.Subject, first)
		for _, c := range n.Cases {
			if c.Cond != nil {
				sc.expr(c.Cond, first)
			}
			sc.stmts(c.Stmts, first)
		}
	case *phpast.Break, *phpast.Continue:
	case *phpast.Return:
		if n.X != nil {
			sc.fl.Return = sc.fl.Return.union(sc.expr(n.X, first))
			if first {
				sc.fl.RetLine = n.P.Line
			}
		}
	case *phpast.Global:
		sc.fl.TouchesGlobals = true
		sc.escape("global statement")
		if first {
			for _, name := range n.Names {
				sc.declared[name] = true
			}
		}
	case *phpast.StaticVars:
		sc.escape("static variables")
		if first {
			for _, name := range n.Names {
				sc.declared[name] = true
			}
		}
		for _, e := range n.Inits {
			sc.expr(e, first)
		}
	case *phpast.Unset:
		for _, v := range n.Vars {
			sc.expr(v, first)
		}
	case *phpast.Try:
		sc.fl.Forks = true
		sc.escape("try/catch")
		if n.Body != nil {
			sc.stmts(n.Body.Stmts, first)
		}
		for _, c := range n.Catches {
			if c.Body != nil {
				sc.stmts(c.Body.Stmts, first)
			}
		}
		if n.Finally != nil {
			sc.stmts(n.Finally.Stmts, first)
		}
	case *phpast.Throw:
		sc.escape("throw")
		sc.expr(n.X, first)
	default:
		sc.escape("unsupported statement")
	}
}

// expr walks an expression and returns its taint atoms.
func (sc *localScan) expr(e phpast.Expr, first bool) AtomSet {
	switch n := e.(type) {
	case nil:
		return AtomSet{}
	case *phpast.IntLit, *phpast.FloatLit, *phpast.StringLit, *phpast.BoolLit, *phpast.NullLit,
		*phpast.ConstFetch, *phpast.ClassConstFetch, *phpast.Name:
		return AtomSet{}
	case *phpast.InterpString:
		var a AtomSet
		for _, p := range n.Parts {
			a = a.union(sc.expr(p, first))
		}
		return a
	case *phpast.Var:
		return sc.varRead(n, first)
	case *phpast.ArrayDim:
		a := sc.expr(n.Arr, first)
		return a.union(sc.expr(n.Index, first))
	case *phpast.ArrayLit:
		var a AtomSet
		for _, it := range n.Items {
			if it.ByRef {
				sc.escape("by-ref array item")
			}
			a = a.union(sc.expr(it.Key, first))
			a = a.union(sc.expr(it.Value, first))
		}
		return a
	case *phpast.ListExpr:
		var a AtomSet
		for _, it := range n.Items {
			a = a.union(sc.expr(it, first))
		}
		return a
	case *phpast.Unary:
		return sc.expr(n.X, first)
	case *phpast.Binary:
		switch n.Op {
		case "&&", "||", "and", "or", "xor", "??":
			sc.fl.Forks = true
		}
		a := sc.expr(n.L, first)
		return a.union(sc.expr(n.R, first))
	case *phpast.Assign:
		if n.ByRef {
			sc.escape("by-ref assignment")
		}
		val := sc.expr(n.Value, first)
		return sc.assignTo(n.Target, val, n.Op == "" && !n.ByRef, first)
	case *phpast.IncDec:
		// Counts as a read-modify-write use of the variable.
		if v, ok := n.X.(*phpast.Var); ok {
			a := sc.varRead(v, first)
			sc.markAssignedFormal(v.Name)
			return a
		}
		return sc.expr(n.X, first)
	case *phpast.Ternary:
		sc.fl.Forks = true
		a := sc.expr(n.Cond, first)
		a = a.union(sc.expr(n.Then, first))
		return a.union(sc.expr(n.Else, first))
	case *phpast.Cast:
		return sc.expr(n.X, first)
	case *phpast.ErrorSuppress:
		return sc.expr(n.X, first)
	case *phpast.Call:
		return sc.call(n, first)
	case *phpast.MethodCall:
		sc.escape("method call")
		a := sc.expr(n.Obj, first)
		for _, arg := range n.Args {
			a = a.union(sc.expr(arg, first))
		}
		return a
	case *phpast.StaticCall:
		sc.escape("static call")
		var a AtomSet
		for _, arg := range n.Args {
			a = a.union(sc.expr(arg, first))
		}
		return a
	case *phpast.New:
		sc.escape("object construction")
		var a AtomSet
		for _, arg := range n.Args {
			a = a.union(sc.expr(arg, first))
		}
		return a
	case *phpast.PropFetch:
		sc.escape("property access")
		return sc.expr(n.Obj, first)
	case *phpast.StaticPropFetch:
		sc.escape("static property access")
		return AtomSet{}
	case *phpast.Isset:
		var a AtomSet
		for _, v := range n.Vars {
			a = a.union(sc.expr(v, first))
		}
		return a
	case *phpast.Empty:
		return sc.expr(n.X, first)
	case *phpast.Exit:
		sc.escape("exit")
		return sc.expr(n.X, first)
	case *phpast.Print:
		return sc.expr(n.X, first)
	case *phpast.Include:
		sc.escape("include")
		return sc.expr(n.X, first)
	case *phpast.Closure:
		sc.escape("closure")
		return AtomSet{}
	default:
		sc.escape("unsupported expression")
		return AtomSet{}
	}
}

// call handles a statically or dynamically named call expression.
func (sc *localScan) call(n *phpast.Call, first bool) AtomSet {
	name, ok := phpast.CalleeName(n)
	if !ok {
		sc.escape("dynamic call")
		var a AtomSet
		for _, arg := range n.Args {
			a = a.union(sc.expr(arg, first))
		}
		return a
	}
	if name == "call_user_func" || name == "call_user_func_array" {
		sc.escape("call_user_func")
	}
	args := make([]AtomSet, len(n.Args))
	for i, arg := range n.Args {
		args[i] = sc.expr(arg, first)
	}
	if callgraph.Sinks[name] {
		src, dst := sinkArgRoles(name, args)
		sc.fl.Sinks = append(sc.fl.Sinks, SinkLocal{Sink: name, Line: n.P.Line, Src: src, Dst: dst})
		return AtomSet{}
	}
	idx := len(sc.fl.Sites)
	sc.fl.Sites = append(sc.fl.Sites, Site{Callee: name, Line: n.P.Line, Args: args})
	// The call result's taint is exactly the site atom: the
	// composition layer routes argument taint through the callee's
	// ReturnTaint (or conservatively unions the arguments for
	// unknown built-ins), so unioning args here would only lose
	// precision.
	return AtomSet{Sites: []int{idx}}
}

// sinkArgRoles mirrors the interpreter's recordSink argument
// convention: file_put_contents writes args[1] to args[0]; every other
// sink copies args[0] to args[1].
func sinkArgRoles(name string, args []AtomSet) (src, dst AtomSet) {
	get := func(i int) AtomSet {
		if i < len(args) {
			return args[i]
		}
		return AtomSet{}
	}
	if name == "file_put_contents" || name == "file_put_content" {
		return get(1), get(0)
	}
	return get(0), get(1)
}

// varRead records a variable occurrence and returns its taint.
func (sc *localScan) varRead(v *phpast.Var, first bool) AtomSet {
	if first {
		sc.occs[v.Name]++
	}
	if superglobals[v.Name] {
		if v.Name == "_FILES" {
			sc.fl.TouchesFiles = true
		}
		if v.Name == "GLOBALS" {
			sc.fl.TouchesGlobals = true
		}
		return AtomSet{}
	}
	if i, ok := sc.params[v.Name]; ok {
		return AtomSet{Formals: 1 << uint(i)}.union(sc.vars[v.Name])
	}
	return sc.vars[v.Name]
}

// assignTo routes taint into an assignment target and maintains the
// dead-variable occurrence counts. plain is true for `=` without
// by-ref or a compound operator.
func (sc *localScan) assignTo(target phpast.Expr, val AtomSet, plain bool, first bool) AtomSet {
	switch t := target.(type) {
	case *phpast.Var:
		if first {
			sc.occs[t.Name]++
			if plain {
				sc.deadOccs[t.Name]++
			}
		}
		sc.markAssignedFormal(t.Name)
		if superglobals[t.Name] {
			if t.Name == "GLOBALS" {
				sc.fl.TouchesGlobals = true
			}
			return val
		}
		// Flow-insensitive: keep the union across the body.
		sc.vars[t.Name] = sc.vars[t.Name].union(val)
		return val
	case *phpast.ArrayDim:
		// $a[expr] = v taints the whole array variable.
		sc.expr(t.Index, first)
		return sc.assignTo(t.Arr, val, false, first)
	case *phpast.ListExpr:
		for _, it := range t.Items {
			if it != nil {
				sc.assignTo(it, val, false, first)
			}
		}
		return val
	default:
		// Property/static-prop targets escape via expr's walk.
		sc.expr(target, first)
		return val
	}
}

func (sc *localScan) markAssignedFormal(name string) {
	if _, ok := sc.params[name]; ok {
		sc.assigned[name] = true
	}
}

// condOccurrence records that an expression position is an entire
// if-condition or switch-subject — the eligibility anchor for merge
// variables.
func (sc *localScan) condOccurrence(e phpast.Expr) {
	if v, ok := e.(*phpast.Var); ok {
		sc.condOccs[v.Name]++
	}
}

// classifyTrivialReturn detects the trivially instantiable body shape:
// declarations and no-ops followed by exactly one return of a
// never-assigned formal or a scalar literal, with nothing after it.
func (sc *localScan) classifyTrivialReturn(body []phpast.Stmt) {
	var ret *phpast.Return
	for _, s := range body {
		switch n := s.(type) {
		case *phpast.Nop, *phpast.InlineHTML, *phpast.FuncDecl, *phpast.ClassDecl:
		case *phpast.Return:
			if ret != nil {
				return // two returns: not trivial
			}
			ret = n
		default:
			return
		}
	}
	if ret == nil || ret.X == nil {
		return
	}
	// RetLine for const returns is the LITERAL's line, because the
	// engine's instantiation must allocate its concrete at the same
	// line the inlined evaluation would.
	line := ret.P.Line
	switch x := ret.X.(type) {
	case *phpast.Var:
		if i, ok := sc.params[x.Name]; ok && !sc.assigned[x.Name] {
			sc.fl.RetFormal = i
		}
	case *phpast.StringLit:
		sc.fl.RetConstKind = "str"
		sc.fl.RetConstStr = x.Value
		line = x.P.Line
	case *phpast.IntLit:
		sc.fl.RetConstKind = "int"
		sc.fl.RetConstInt = x.Value
		line = x.P.Line
	case *phpast.FloatLit:
		sc.fl.RetConstKind = "float"
		sc.fl.RetConstF = x.Value
		line = x.P.Line
	case *phpast.BoolLit:
		sc.fl.RetConstKind = "bool"
		sc.fl.RetConstBool = x.Value
		line = x.P.Line
	case *phpast.NullLit:
		sc.fl.RetConstKind = "null"
		line = x.P.Line
	}
	if sc.fl.RetFormal >= 0 || sc.fl.RetConstKind != "" {
		sc.fl.RetTerm = termOfExpr(ret.X, sc.params, sc.assigned)
		sc.fl.RetLine = line
		return
	}
	// Not a trivial shape, but the single return may still be in the
	// term vocabulary (concat of formals and literals, or one call).
	sc.classifyReturnTerm(ret)
}

// classifyReturnTerm records a symbolic return term (or single-call
// composition shape) for a lone-return body that is not trivial.
func (sc *localScan) classifyReturnTerm(ret *phpast.Return) {
	if t := termOfExpr(ret.X, sc.params, sc.assigned); t != nil {
		sc.fl.RetTerm = t
		sc.fl.RetLine = ret.P.Line
		return
	}
	if c, ok := ret.X.(*phpast.Call); ok {
		name, named := phpast.CalleeName(c)
		if !named {
			return
		}
		args := make([]*TermNode, len(c.Args))
		for i, a := range c.Args {
			args[i] = termOfExpr(a, sc.params, sc.assigned)
			if args[i] == nil {
				return
			}
		}
		sc.fl.RetCall = &RetCallLocal{Callee: name, Args: args}
		sc.fl.RetLine = ret.P.Line
	}
}

// finishVars computes the sorted DeadVars and MergeVars lists.
//
// A dead variable has at least one occurrence, every occurrence is a
// plain-assignment target, and it is not a formal, superglobal, or
// global/static declaration. A merge variable occurs exactly once,
// that occurrence is an entire if-condition or switch-subject, with
// the same exclusions.
func (sc *localScan) finishVars() {
	dead := map[string]bool{}
	merge := map[string]bool{}
	for name, total := range sc.occs {
		if sc.declared[name] || superglobals[name] {
			continue
		}
		if total > 0 && sc.deadOccs[name] == total {
			dead[name] = true
		}
		if total == 1 && sc.condOccs[name] == 1 {
			merge[name] = true
		}
	}
	sc.fl.DeadVars = sortedNames(dead)
	sc.fl.MergeVars = sortedNames(merge)
}
