package summary

import (
	"encoding/json"
	"fmt"

	"repro/internal/phpast"
	"repro/internal/smt"
)

// ArtifactVersion is the summary artifact schema version. It is baked
// into both the serialized payload and the cache-key fingerprint
// (uchecker appends " summary=v<N>"), so a schema change self-
// invalidates cached artifacts instead of replaying stale ones; the
// in-payload copy additionally rejects artifacts reached through a
// stale fingerprint (e.g. a hand-edited cache directory).
const ArtifactVersion = 1

// TermNode is the serializable form of a summary return term. The
// vocabulary is intentionally small — exactly what the local layer can
// produce: formal placeholders, scalar constants, and concatenation.
type TermNode struct {
	Op   string      `json:"op"` // "formal","str","int","bool","null","concat"
	I    int64       `json:"i,omitempty"`
	S    string      `json:"s,omitempty"`
	B    bool        `json:"b,omitempty"`
	Args []*TermNode `json:"args,omitempty"`
}

// termOfExpr builds a TermNode for expressions in the summary term
// vocabulary: scalar literals, unassigned formals, and "."-concats of
// those. Returns nil for anything else.
func termOfExpr(e phpast.Expr, params map[string]int, assigned map[string]bool) *TermNode {
	switch n := e.(type) {
	case *phpast.StringLit:
		return &TermNode{Op: "str", S: n.Value}
	case *phpast.IntLit:
		return &TermNode{Op: "int", I: n.Value}
	case *phpast.BoolLit:
		return &TermNode{Op: "bool", B: n.Value}
	case *phpast.NullLit:
		return &TermNode{Op: "null"}
	case *phpast.Var:
		if i, ok := params[n.Name]; ok && !assigned[n.Name] {
			return &TermNode{Op: "formal", I: int64(i)}
		}
		return nil
	case *phpast.Binary:
		if n.Op != "." {
			return nil
		}
		l := termOfExpr(n.L, params, assigned)
		r := termOfExpr(n.R, params, assigned)
		if l == nil || r == nil {
			return nil
		}
		return &TermNode{Op: "concat", Args: []*TermNode{l, r}}
	default:
		return nil
	}
}

// toSMT interns a TermNode into the scan's term factory. All formals
// are string-sorted: the summary vocabulary is PHP's string world, and
// taint does not care about sorts.
func (t *TermNode) toSMT(fac *smt.Factory) *smt.Term {
	if t == nil {
		return nil
	}
	switch t.Op {
	case "formal":
		return fac.Formal(int(t.I), smt.SortString)
	case "str":
		return fac.Str(t.S)
	case "int":
		return fac.Int(t.I)
	case "bool":
		return fac.Bool(t.B)
	case "null":
		return fac.Str("")
	case "concat":
		args := make([]*smt.Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = a.toSMT(fac)
			if args[i] == nil {
				return nil
			}
		}
		return fac.Concat(args...)
	default:
		return nil
	}
}

// termNodeOfSMT converts a composed smt term back into the
// serializable vocabulary, or nil if the term strayed outside it
// (composition can only combine vocabulary terms, so this is total in
// practice; the nil path is a safety net).
func termNodeOfSMT(t *smt.Term) *TermNode {
	if t == nil {
		return nil
	}
	switch t.Op {
	case smt.OpFormal:
		return &TermNode{Op: "formal", I: t.I}
	case smt.OpStrConst:
		return &TermNode{Op: "str", S: t.S}
	case smt.OpIntConst:
		return &TermNode{Op: "int", I: t.I}
	case smt.OpBoolConst:
		return &TermNode{Op: "bool", B: t.B}
	case smt.OpConcat:
		args := make([]*TermNode, len(t.Args))
		for i, a := range t.Args {
			args[i] = termNodeOfSMT(a)
			if args[i] == nil {
				return nil
			}
		}
		return &TermNode{Op: "concat", Args: args}
	default:
		return nil
	}
}

// EncodeFile serializes one file's local summary layer.
func EncodeFile(fl *FileLocal) ([]byte, error) {
	if fl.Version != ArtifactVersion {
		return nil, fmt.Errorf("summary: encoding artifact with version %d, want %d", fl.Version, ArtifactVersion)
	}
	return json.Marshal(fl)
}

// DecodeFile deserializes a per-file artifact, rejecting payloads from
// a different schema version (the caller treats an error as a cache
// miss and recomputes).
func DecodeFile(b []byte) (*FileLocal, error) {
	var fl FileLocal
	if err := json.Unmarshal(b, &fl); err != nil {
		return nil, fmt.Errorf("summary: corrupt artifact: %w", err)
	}
	if fl.Version != ArtifactVersion {
		return nil, fmt.Errorf("summary: artifact version %d, want %d", fl.Version, ArtifactVersion)
	}
	return &fl, nil
}
