package summary

import (
	"fmt"
	"sort"

	"repro/internal/sexpr"
	"repro/internal/smt"
)

// The composition layer: resolve each function's call-site atoms to
// concrete formal masks using its callees' summaries. Functions are
// processed bottom-up over the strongly connected components of the
// (AST-level) call graph — Tarjan emits SCCs callees-first — so a
// callee's summary is final before any caller reads it. Inside a
// cyclic SCC the members' summaries are iterated to a fixpoint; if the
// fixpoint does not settle within widenBound rounds, taint is widened
// to "all formals" and the member is marked Widened.
//
// Note: internal/callgraph's graph is acyclic by construction (it
// models the locality analysis, which cuts recursion), so composition
// builds its own name-level graph here.

const (
	// widenBound caps SCC fixpoint rounds before widening.
	widenBound = 8
	// maxSinkEffects caps a summary's propagated sink list.
	maxSinkEffects = 64
	// maxTermSize caps a composed return term's node count.
	maxTermSize = 256
)

// Compose resolves a set of per-file local layers into engine-facing
// summaries. File order decides duplicate-name resolution
// (first declaration wins), matching the interpreter.
func Compose(locals []*FileLocal, fac *smt.Factory) *Set {
	set := &Set{Funcs: map[string]*Summary{}}
	chosen := map[string]*FuncLocal{}
	var order []string
	for _, fl := range locals {
		if fl == nil {
			continue
		}
		for _, fn := range fl.Funcs {
			if _, ok := chosen[fn.Name]; !ok {
				chosen[fn.Name] = fn
				order = append(order, fn.Name)
			}
		}
	}

	for _, scc := range sccs(order, chosen) {
		composeSCC(scc, chosen, set.Funcs, fac)
	}
	return set
}

// sccs returns the strongly connected components of the name-level
// call graph in reverse topological order (callees before callers).
func sccs(order []string, chosen map[string]*FuncLocal) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var out [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, s := range chosen[v].Sites {
			w := s.Callee
			if chosen[w] == nil {
				continue // builtin or undeclared: not a graph node
			}
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return out
}

// composeSCC resolves one component, iterating cyclic components to a
// fixpoint with widening.
func composeSCC(comp []string, chosen map[string]*FuncLocal, table map[string]*Summary, fac *smt.Factory) {
	recursive := len(comp) > 1 || selfCalls(chosen[comp[0]])
	sort.Strings(comp) // deterministic member iteration inside the fixpoint

	// Seed the table so in-component lookups see a (partial) summary.
	for _, name := range comp {
		table[name] = resolveOne(chosen[name], table, fac, recursive)
	}
	if !recursive {
		return
	}
	widened := false
	for round := 0; ; round++ {
		changed := false
		for _, name := range comp {
			next := resolveOne(chosen[name], table, fac, true)
			if !summariesEqual(table[name], next) {
				changed = true
			}
			table[name] = next
		}
		if !changed {
			break
		}
		if round >= widenBound {
			widened = true
			break
		}
	}
	if widened {
		for _, name := range comp {
			s := table[name]
			s.Widened = true
			s.ReturnTaint = allFormals(s.Params)
			// Widened sink masks are over-approximated the same way.
			for i := range s.Sinks {
				s.Sinks[i].SrcFormals = allFormals(s.Params)
				s.Sinks[i].DstFormals = allFormals(s.Params)
			}
		}
	}
}

func selfCalls(fn *FuncLocal) bool {
	for _, s := range fn.Sites {
		if s.Callee == fn.Name {
			return true
		}
	}
	return false
}

func allFormals(params int) uint64 {
	if params <= 0 {
		return 0
	}
	if params >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(params)) - 1
}

// resolveOne computes a summary for fn against the current table.
func resolveOne(fn *FuncLocal, table map[string]*Summary, fac *smt.Factory, recursive bool) *Summary {
	s := &Summary{
		Name:           fn.Name,
		File:           fn.File,
		Line:           fn.Line,
		Params:         fn.Params,
		Escapes:        fn.Escapes,
		EscapeReason:   fn.EscapeReason,
		Recursive:      recursive,
		Forks:          fn.Forks,
		ReturnLine:     fn.RetLine,
		ReturnFormal:   fn.RetFormal,
		TouchesFiles:   fn.TouchesFiles,
		TouchesGlobals: fn.TouchesGlobals,
		DeadVars:       fn.DeadVars,
		MergeVars:      fn.MergeVars,
	}
	s.ReturnConst = constOf(fn)

	// Per-site return-taint masks, iterated because a site's arguments
	// may reference other sites.
	masks := make([]uint64, len(fn.Sites))
	resolve := func(a AtomSet) uint64 {
		m := a.Formals
		for _, i := range a.Sites {
			m |= masks[i]
		}
		return m
	}
	for sweep := 0; sweep < len(fn.Sites)+1 || sweep == 0; sweep++ {
		changed := false
		for j, site := range fn.Sites {
			var m uint64
			callee := table[site.Callee]
			switch {
			case callee == nil:
				// Built-in or undeclared: conservatively, the result
				// may depend on every argument.
				for _, a := range site.Args {
					m |= resolve(a)
				}
			case callee.Escapes:
				s.CallsEscaped = true
				for _, a := range site.Args {
					m |= resolve(a)
				}
			default:
				for i := 0; i < callee.Params && i < 64; i++ {
					if callee.ReturnTaint&(1<<uint(i)) != 0 && i < len(site.Args) {
						m |= resolve(site.Args[i])
					}
				}
				s.Forks = s.Forks || callee.Forks
				s.CallsEscaped = s.CallsEscaped || callee.CallsEscaped
				s.TouchesFiles = s.TouchesFiles || callee.TouchesFiles
				s.TouchesGlobals = s.TouchesGlobals || callee.TouchesGlobals
			}
			if m != masks[j] {
				masks[j] = m
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	s.ReturnTaint = resolve(fn.Return)

	// Sink effects: direct calls plus effects inherited from known
	// callees, with formal masks translated through the call
	// arguments. Effects merge by (sink, line).
	addSink := func(e SinkEffect) {
		for i := range s.Sinks {
			if s.Sinks[i].Sink == e.Sink && s.Sinks[i].Line == e.Line {
				s.Sinks[i].SrcFormals |= e.SrcFormals
				s.Sinks[i].DstFormals |= e.DstFormals
				return
			}
		}
		if len(s.Sinks) >= maxSinkEffects {
			s.Widened = true
			return
		}
		s.Sinks = append(s.Sinks, e)
	}
	for _, sk := range fn.Sinks {
		addSink(SinkEffect{Sink: sk.Sink, Line: sk.Line, SrcFormals: resolve(sk.Src), DstFormals: resolve(sk.Dst)})
	}
	for _, site := range fn.Sites {
		callee := table[site.Callee]
		if callee == nil || callee.Escapes {
			continue
		}
		remap := func(mask uint64) uint64 {
			var m uint64
			for i := 0; i < 64 && i < len(site.Args); i++ {
				if mask&(1<<uint(i)) != 0 {
					m |= resolve(site.Args[i])
				}
			}
			return m
		}
		for _, e := range callee.Sinks {
			addSink(SinkEffect{Sink: e.Sink, Line: e.Line, SrcFormals: remap(e.SrcFormals), DstFormals: remap(e.DstFormals)})
		}
	}
	sort.Slice(s.Sinks, func(i, j int) bool {
		if s.Sinks[i].Line != s.Sinks[j].Line {
			return s.Sinks[i].Line < s.Sinks[j].Line
		}
		return s.Sinks[i].Sink < s.Sinks[j].Sink
	})

	// Return term: either the local call-free term, or a single-call
	// body composed by substituting the argument terms into the
	// callee's term.
	if fn.RetTerm != nil {
		s.ReturnTerm = fn.RetTerm.toSMT(fac)
	} else if fn.RetCall != nil {
		callee := table[fn.RetCall.Callee]
		if callee != nil && !callee.Escapes && !callee.Recursive && callee.ReturnTerm != nil {
			args := make([]*smt.Term, len(fn.RetCall.Args))
			ok := true
			for i, a := range fn.RetCall.Args {
				args[i] = a.toSMT(fac)
				if args[i] == nil {
					ok = false
					break
				}
			}
			if ok {
				rt := fac.Substitute(callee.ReturnTerm, args)
				if fac.Size(rt) > maxTermSize {
					s.Widened = true
				} else {
					s.ReturnTerm = rt
				}
			}
		}
	}
	if recursive {
		// A recursive return term would need a fixpoint over terms;
		// taint widening covers the information instead.
		s.ReturnTerm = nil
	}
	return s
}

func constOf(fn *FuncLocal) sexpr.Expr {
	switch fn.RetConstKind {
	case "str":
		return sexpr.StrVal(fn.RetConstStr)
	case "int":
		return sexpr.IntVal(fn.RetConstInt)
	case "float":
		return sexpr.FloatVal(fn.RetConstF)
	case "bool":
		return sexpr.BoolVal(fn.RetConstBool)
	case "null":
		return sexpr.NullVal{}
	}
	return nil
}

// summariesEqual compares the fixpoint-relevant fields.
func summariesEqual(a, b *Summary) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.ReturnTaint != b.ReturnTaint || a.CallsEscaped != b.CallsEscaped ||
		a.Forks != b.Forks || a.TouchesFiles != b.TouchesFiles ||
		a.TouchesGlobals != b.TouchesGlobals || len(a.Sinks) != len(b.Sinks) {
		return false
	}
	for i := range a.Sinks {
		if a.Sinks[i] != b.Sinks[i] {
			return false
		}
	}
	return true
}

// String renders a compact human-readable summary (for -trace output
// and test failure messages).
func (s *Summary) String() string {
	if s.Escapes {
		return fmt.Sprintf("%s: escapes (%s)", s.Name, s.EscapeReason)
	}
	out := fmt.Sprintf("%s: taint=%#x", s.Name, s.ReturnTaint)
	if s.ReturnTerm != nil {
		out += " ret=" + s.ReturnTerm.String()
	}
	if len(s.Sinks) > 0 {
		out += fmt.Sprintf(" sinks=%d", len(s.Sinks))
	}
	if s.Recursive {
		out += " recursive"
	}
	if s.Widened {
		out += " widened"
	}
	return out
}
