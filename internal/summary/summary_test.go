package summary

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/phpast"
	"repro/internal/phpparser"
	"repro/internal/sexpr"
	"repro/internal/smt"
)

func parse(t *testing.T, src string) *phpast.File {
	t.Helper()
	f, errs := phpparser.Parse("test.php", "<?php\n"+src)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	return f
}

func build(t *testing.T, src string) *Set {
	t.Helper()
	return Build([]*phpast.File{parse(t, src)}, smt.NewFactory())
}

func TestTrivialPassthrough(t *testing.T) {
	set := build(t, `
function ident($x) { return $x; }
function konst() { return "up/"; }
function knull() { return; }
`)
	id := set.Lookup("ident")
	if id == nil || !id.Trivial() || id.ReturnFormal != 0 {
		t.Fatalf("ident not a trivial passthrough: %+v", id)
	}
	if id.ReturnTaint != 1 {
		t.Errorf("ident ReturnTaint = %#x, want 1", id.ReturnTaint)
	}
	k := set.Lookup("konst")
	if k == nil || !k.Trivial() || k.ReturnConst != sexpr.Expr(sexpr.StrVal("up/")) {
		t.Fatalf("konst not a trivial const return: %+v", k)
	}
	if kn := set.Lookup("knull"); kn.Trivial() {
		t.Error("bare return classified as trivial")
	}
}

func TestAssignedFormalNotTrivial(t *testing.T) {
	set := build(t, `function f($x) { $x = 1; return $x; }`)
	if s := set.Lookup("f"); s.ReturnFormal >= 0 {
		t.Errorf("reassigned formal still classified as passthrough: %+v", s)
	}
}

func TestReturnTaintThroughLocals(t *testing.T) {
	set := build(t, `
function f($a, $b, $c) {
	$x = $a . "/";
	$y = $x;
	$z = $c;
	return $y . $b;
}
`)
	s := set.Lookup("f")
	if s.ReturnTaint != 0b011 {
		t.Errorf("ReturnTaint = %#b, want 0b011", s.ReturnTaint)
	}
	if s.Escapes {
		t.Errorf("unexpected escape: %s", s.EscapeReason)
	}
}

func TestReturnTermVocabulary(t *testing.T) {
	fac := smt.NewFactory()
	set := Build([]*phpast.File{parse(t, `function f($dir, $name) { return $dir . "/" . $name; }`)}, fac)
	s := set.Lookup("f")
	want := fac.Concat(fac.Concat(fac.Formal(0, smt.SortString), fac.Str("/")), fac.Formal(1, smt.SortString))
	if s.ReturnTerm != want {
		t.Fatalf("ReturnTerm = %v, want %v", s.ReturnTerm, want)
	}
	// Instantiation at a call site.
	got := fac.Substitute(s.ReturnTerm, []*smt.Term{fac.Str("up"), fac.Str("a.php")})
	if smt.HasFormal(got) {
		t.Error("instantiated term still has formals")
	}
}

func TestComposeReturnTermThroughCall(t *testing.T) {
	fac := smt.NewFactory()
	set := Build([]*phpast.File{parse(t, `
function suffix($s) { return $s . ".php"; }
function f($base) { return suffix($base . "-v1"); }
`)}, fac)
	s := set.Lookup("f")
	want := fac.Concat(fac.Concat(fac.Formal(0, smt.SortString), fac.Str("-v1")), fac.Str(".php"))
	if s.ReturnTerm != want {
		t.Fatalf("composed ReturnTerm = %v, want %v", s.ReturnTerm, want)
	}
	if s.ReturnTaint != 1 {
		t.Errorf("composed ReturnTaint = %#x, want 1", s.ReturnTaint)
	}
}

func TestTaintThroughCalleeDropsUnusedArg(t *testing.T) {
	set := build(t, `
function first($a, $b) { return $a; }
function f($x, $y) { return first($x, $y); }
`)
	if s := set.Lookup("f"); s.ReturnTaint != 0b01 {
		t.Errorf("ReturnTaint = %#b, want 0b01 (callee ignores second arg)", s.ReturnTaint)
	}
}

func TestBuiltinCallConservative(t *testing.T) {
	set := build(t, `function f($a, $b) { return substr($a, 0, 3) . $b; }`)
	if s := set.Lookup("f"); s.ReturnTaint != 0b11 {
		t.Errorf("ReturnTaint = %#b, want 0b11 (builtin unions args)", s.ReturnTaint)
	}
}

func TestSinkEffects(t *testing.T) {
	set := build(t, `
function save($tmp, $dst) { move_uploaded_file($tmp, $dst . "/f"); }
function f($t, $d) { save($t, $d); }
`)
	s := set.Lookup("save")
	if len(s.Sinks) != 1 {
		t.Fatalf("save sinks = %+v", s.Sinks)
	}
	if s.Sinks[0].Sink != "move_uploaded_file" || s.Sinks[0].SrcFormals != 0b01 || s.Sinks[0].DstFormals != 0b10 {
		t.Errorf("save sink effect = %+v", s.Sinks[0])
	}
	// The caller inherits the effect with masks remapped through args.
	f := set.Lookup("f")
	if len(f.Sinks) != 1 || f.Sinks[0].SrcFormals != 0b01 || f.Sinks[0].DstFormals != 0b10 {
		t.Errorf("propagated sink effect = %+v", f.Sinks)
	}
}

func TestFilePutContentsArgRoles(t *testing.T) {
	set := build(t, `function f($path, $data) { file_put_contents($path, $data); }`)
	s := set.Lookup("f")
	if len(s.Sinks) != 1 || s.Sinks[0].SrcFormals != 0b10 || s.Sinks[0].DstFormals != 0b01 {
		t.Errorf("file_put_contents roles = %+v", s.Sinks)
	}
}

func TestRecursionFixpoint(t *testing.T) {
	set := build(t, `
function walk($dir, $depth) {
	if ($depth) {
		return walk($dir . "/sub", $depth);
	}
	return $dir;
}
`)
	s := set.Lookup("walk")
	if !s.Recursive {
		t.Fatal("self-recursive function not marked Recursive")
	}
	if s.ReturnTerm != nil {
		t.Error("recursive function kept a return term")
	}
	if s.ReturnTaint&0b01 == 0 {
		t.Errorf("ReturnTaint = %#b, want bit 0 (dir flows to return)", s.ReturnTaint)
	}
	if s.Escapes {
		t.Errorf("recursion escaped: %s", s.EscapeReason)
	}
}

func TestMutualRecursionFixpoint(t *testing.T) {
	set := build(t, `
function even($n, $x) { if ($n) { return odd($n, $x); } return $x; }
function odd($n, $x) { if ($n) { return even($n, $x); } return "done"; }
`)
	e, o := set.Lookup("even"), set.Lookup("odd")
	if !e.Recursive || !o.Recursive {
		t.Fatal("mutually recursive pair not marked Recursive")
	}
	// $x flows to even's return directly and through odd; the fixpoint
	// must settle with bit 1 set on both.
	if e.ReturnTaint&0b10 == 0 || o.ReturnTaint&0b10 == 0 {
		t.Errorf("ReturnTaint even=%#b odd=%#b, want bit 1 on both", e.ReturnTaint, o.ReturnTaint)
	}
}

func TestWideningBound(t *testing.T) {
	// A recursive chain that keeps rotating taint between formals
	// converges slowly; the widening bound must force termination and
	// over-approximate to all formals rather than loop.
	var sb strings.Builder
	sb.WriteString("function rot0($a, $b) { if ($a) { return rot1($b, $a); } return $a; }\n")
	sb.WriteString("function rot1($a, $b) { if ($a) { return rot0($b, $a); } return $b; }\n")
	set := build(t, sb.String())
	s := set.Lookup("rot0")
	if !s.Recursive {
		t.Fatal("rotating pair not recursive")
	}
	// Whether or not the bound was hit, the result must be a sound
	// over-approximation that includes both formals.
	if s.ReturnTaint != 0b11 {
		t.Errorf("ReturnTaint = %#b, want 0b11", s.ReturnTaint)
	}
}

func TestEscapeTaxonomy(t *testing.T) {
	cases := []struct {
		src, reason string
	}{
		{`function f(&$x) { return $x; }`, "by-ref param"},
		{`function f(...$x) { return $x; }`, "variadic param"},
		{`function f() { global $g; return $g; }`, "global statement"},
		{`function f($x) { $x(); }`, "dynamic call"},
		{`function f($x) { call_user_func($x); }`, "call_user_func"},
		{`function f($x) { $y = function() { return 1; }; }`, "closure"},
		{`function f($x) { include $x; }`, "include"},
		{`function f($x) { static $n = 0; return $n; }`, "static variables"},
		{`function f($x) { $x->m(); }`, "method call"},
		{`function f($x) { return new Foo(); }`, "object construction"},
		{`function f($x) { $y = &$x; }`, "by-ref assignment"},
		{`function f($a) { foreach ($a as &$v) { $v = 1; } }`, "by-ref foreach"},
		{`function f($x) { exit($x); }`, "exit"},
	}
	for _, c := range cases {
		set := build(t, c.src)
		s := set.Lookup("f")
		if s == nil {
			t.Fatalf("%s: no summary", c.src)
		}
		if !s.Escapes || s.EscapeReason != c.reason {
			t.Errorf("%s: escapes=%v reason=%q, want %q", c.src, s.Escapes, s.EscapeReason, c.reason)
		}
	}
}

func TestMethodsEscape(t *testing.T) {
	set := build(t, `class C { function m($x) { return $x; } }`)
	for _, name := range []string{"c::m", "m"} {
		s := set.Lookup(name)
		if s == nil || !s.Escapes {
			t.Errorf("method %q not registered as escaping: %+v", name, s)
		}
	}
}

func TestDefaultArgsDoNotEscape(t *testing.T) {
	set := build(t, `function f($x, $mode = "w") { return $x . $mode; }`)
	s := set.Lookup("f")
	if s.Escapes {
		t.Errorf("default args escaped: %s", s.EscapeReason)
	}
	if s.ReturnTaint != 0b11 {
		t.Errorf("ReturnTaint = %#b, want 0b11", s.ReturnTaint)
	}
}

func TestDeadAndMergeVars(t *testing.T) {
	set := build(t, `
function f($p) {
	$dead = 1;
	$dead = 2;
	$used = 3;
	if ($cond) { $dead = 4; } else { $flag = 0; }
	switch ($mode) { case 1: break; }
	echo $used;
	return $p;
}
`)
	s := set.Lookup("f")
	if got := strings.Join(s.DeadVars, ","); got != "dead,flag" {
		t.Errorf("DeadVars = %q, want \"dead,flag\"", got)
	}
	if got := strings.Join(s.MergeVars, ","); got != "cond,mode" {
		t.Errorf("MergeVars = %q, want \"cond,mode\"", got)
	}
}

func TestMergeVarExclusions(t *testing.T) {
	// A condition variable that is also read elsewhere, is a param, or
	// is a superglobal must not be mergeable.
	set := build(t, `
function f($p) {
	if ($p) { $a = 1; }
	if ($_FILES) { $b = 1; }
	if ($twice) { $c = 1; }
	echo $twice;
	global $g;
	if ($g) { $d = 1; }
}
`)
	s := set.Lookup("f")
	if len(s.MergeVars) != 0 {
		t.Errorf("MergeVars = %v, want none", s.MergeVars)
	}
}

func TestTouchesFilesAndForks(t *testing.T) {
	set := build(t, `
function reads_files() { return $_FILES['u']['name']; }
function forks($x) { if ($x) { return 1; } return 2; }
function calls_both($x) { $n = reads_files(); return forks($n); }
`)
	if s := set.Lookup("reads_files"); !s.TouchesFiles {
		t.Error("reads_files does not report TouchesFiles")
	}
	if s := set.Lookup("forks"); !s.Forks {
		t.Error("forks does not report Forks")
	}
	cb := set.Lookup("calls_both")
	if !cb.TouchesFiles || !cb.Forks {
		t.Errorf("calls_both TouchesFiles=%v Forks=%v, want both", cb.TouchesFiles, cb.Forks)
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	file := parse(t, `
function suffix($s) { return $s . ".php"; }
function save($tmp, $dst) { move_uploaded_file($tmp, $dst); }
`)
	fl := LocalFile(file)
	blob, err := EncodeFile(fl)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFile(blob)
	if err != nil {
		t.Fatal(err)
	}
	fac := smt.NewFactory()
	a := Compose([]*FileLocal{fl}, fac)
	b := Compose([]*FileLocal{back}, fac)
	for name, sa := range a.Funcs {
		sb := b.Funcs[name]
		if sb == nil {
			t.Fatalf("%s lost in round trip", name)
		}
		if sa.ReturnTaint != sb.ReturnTaint || sa.ReturnTerm != sb.ReturnTerm ||
			sa.Escapes != sb.Escapes || len(sa.Sinks) != len(sb.Sinks) ||
			sa.ReturnFormal != sb.ReturnFormal {
			t.Errorf("%s: round-trip mismatch:\n  fresh:   %s\n  decoded: %s", name, sa, sb)
		}
	}
}

func TestArtifactVersionSkew(t *testing.T) {
	fl := LocalFile(parse(t, `function f($x) { return $x; }`))
	blob, err := EncodeFile(fl)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(blob, &raw); err != nil {
		t.Fatal(err)
	}
	raw["version"] = json.RawMessage("999")
	skewed, _ := json.Marshal(raw)
	if _, err := DecodeFile(skewed); err == nil {
		t.Fatal("version-skewed artifact decoded without error")
	}
	if _, err := DecodeFile([]byte("{not json")); err == nil {
		t.Fatal("corrupt artifact decoded without error")
	}
}
