package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestPanicOn(t *testing.T) {
	h := PanicOn(RootStart, "file:evil.php")
	if err := h(RootStart, "file:good.php"); err != nil {
		t.Fatalf("non-matching detail: %v", err)
	}
	if err := h(SolverCheck, "file:evil.php"); err != nil {
		t.Fatalf("non-matching point: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("matching point+detail must panic")
		}
	}()
	h(RootStart, "file:evil.php")
}

func TestErrorOn(t *testing.T) {
	h := ErrorOn(SolverCheck, "")
	err := h(SolverCheck, "a.php:3")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if err := h(ParseFile, "a.php"); err != nil {
		t.Fatalf("other point: %v", err)
	}
}

func TestSleepOn(t *testing.T) {
	h := SleepOn(RootStart, "", 20*time.Millisecond)
	start := time.Now()
	if err := h(RootStart, "any"); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("hook did not sleep")
	}
	start = time.Now()
	h(ParseFile, "any")
	if time.Since(start) > 10*time.Millisecond {
		t.Error("non-matching point slept")
	}
}

func TestErrorN(t *testing.T) {
	h := ErrorN(JournalWrite, "", 2)
	for i := 0; i < 2; i++ {
		if err := h(JournalWrite, "finish:app"); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: err = %v, want ErrInjected", i, err)
		}
	}
	if err := h(JournalWrite, "finish:app"); err != nil {
		t.Fatalf("call after the transient window: %v", err)
	}
	// Non-matching calls never consume the budget.
	h2 := ErrorN(LeaseClaim, "shard-3", 1)
	if err := h2(LeaseClaim, "shard-1.t1:w0"); err != nil {
		t.Fatalf("non-matching detail: %v", err)
	}
	if err := h2(LeaseClaim, "shard-3.t1:w0"); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching call must fail: %v", err)
	}
}

func TestChain(t *testing.T) {
	var calls int
	count := func(Point, string) error { calls++; return nil }
	h := Chain(nil, count, ErrorOn(RootStart, ""), count)
	if err := h(RootStart, "x"); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (chain stops at first error)", calls)
	}
}
