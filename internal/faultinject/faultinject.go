// Package faultinject defines the scanner pipeline's fault-injection
// seams. The scanner calls an installed Hook at well-known Points; tests
// use hooks to inject panics (crash containment), sleeps (per-root
// deadlines) and forced solver failures (budget degradation) at each
// stage, proving end-to-end fault containment without touching
// production code paths.
//
// A nil Hook is free: every call site guards with `if hook != nil`.
// Production binaries never install one.
package faultinject

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Point identifies one instrumentation site in the scanner pipeline.
type Point string

const (
	// ParseFile fires before each source file is parsed. Detail is the
	// file name. A panicking hook simulates a parser crash on that file; a
	// returned error marks the file unparseable.
	ParseFile Point = "parse-file"
	// RootStart fires at the start of every per-root attempt (including
	// ladder retries). Detail is the root's name. A panicking hook
	// simulates an interpreter crash; a sleeping hook simulates a
	// pathological root (tripping Options.RootTimeout); a returned error
	// aborts the root with an internal failure.
	RootStart Point = "root-start"
	// SolverCheck fires before each SMT check of a modeled sink. Detail is
	// "file:line" of the candidate. A returned error forces the check to
	// resolve Unknown (a solver-budget failure); a panicking hook
	// simulates a solver crash.
	SolverCheck Point = "solver-check"
	// Fallback fires before the degraded taint-only fallback runs for a
	// root. Detail is the root's name. A panicking hook proves the last
	// ladder rung is itself contained.
	Fallback Point = "fallback"
	// JournalWrite fires before each scan-journal record is written.
	// Detail is "<type>:<target>". A returned error simulates a crash at
	// that write boundary: the record (and everything after it) never
	// reaches disk, and the batch aborts — the crash-matrix resume tests
	// kill the pipeline here after every N.
	JournalWrite Point = "journal-write"
	// JournalSync fires after a journal record is written but before it
	// is fsynced. A returned error simulates a crash between write and
	// sync (the record may or may not survive; recovery must salvage
	// either way).
	JournalSync Point = "journal-sync"
	// CacheRead fires before each result-cache lookup. Detail is the
	// content-address key. A returned error forces a cache miss, proving
	// a broken cache degrades to a re-scan, never to a wrong report.
	CacheRead Point = "cache-read"
	// AtomicWriteBody fires inside scanjournal.AtomicWrite after the
	// temporary file is created, before the payload is streamed into it.
	// Detail is the destination path. A returned error simulates a write
	// failure mid-replacement: the destination must stay untouched and
	// the temp file must not survive.
	AtomicWriteBody Point = "atomic-write"
	// AtomicRename fires inside scanjournal.AtomicWrite after the temp
	// file is written and fsynced, before the rename. Detail is the
	// destination path. A returned error simulates a rename failure: same
	// cleanup contract as AtomicWriteBody.
	AtomicRename Point = "atomic-rename"
	// LeaseClaim fires before a shard-lease claim record is appended to
	// the coordination journal. Detail is "shard-<n>.t<token>:<worker>".
	// A returned error simulates a worker crashing at the claim boundary:
	// the lease is never recorded and the worker dies without cleanup.
	LeaseClaim Point = "lease-claim"
	// LeaseRenew fires before a lease heartbeat record is appended.
	// Detail is "shard-<n>.t<token>:<worker>". A returned error simulates
	// a worker crashing mid-heartbeat: the lease goes stale and must be
	// reclaimed by a surviving worker.
	LeaseRenew Point = "lease-renew"
	// ShardPublish fires before a worker publishes a finished shard
	// (appending the shard-finish record that makes its per-target
	// reports authoritative). Detail is "shard-<n>.t<token>:<worker>". A
	// returned error simulates a crash between scanning a shard and
	// publishing it: the shard's lease goes stale, the work is reclaimed,
	// and the re-scan must merge byte-identically.
	ShardPublish Point = "shard-publish"
	// CoordFold fires before the coordinator folds all finished shards
	// into the merged report file. Detail is the merged-report path. A
	// returned error simulates a crash mid-fold: the previous merged
	// report (if any) must stay intact and a later fold must succeed.
	CoordFold Point = "coord-fold"

	// Daemon job-lifecycle seams (internal/scand). Each fires at one
	// boundary of the scan-as-a-service state machine; the daemon-chaos
	// matrix kills the daemon at every one of them and proves the
	// restarted daemon resumes to byte-identical results.

	// JobAccept fires inside the submit handler after admission control
	// passes, before anything about the job is persisted. Detail is
	// "<tenant>:<name>". A returned error rejects the submit (the client
	// sees a 5xx and nothing was recorded — safe to retry).
	JobAccept Point = "job-accept"
	// JobEnqueue fires after the job's sources are spooled, before the
	// job-submit record is journaled. Detail is the job ID. A returned
	// error simulates a crash between spool and journal: the spool file
	// is an orphan and the job was never accepted.
	JobEnqueue Point = "job-enqueue"
	// JobDequeue fires when a worker picks the job up, before the
	// job-start record is journaled. Detail is the job ID. A returned
	// error simulates a crash at dispatch: the job stays submitted and a
	// restarted daemon re-enqueues it.
	JobDequeue Point = "job-dequeue"
	// JobCheckpoint fires after a job's scan completes, before its
	// result is cached and its terminal record journaled. Detail is the
	// job ID. A returned error simulates a crash between computing a
	// result and persisting it: the re-run must reproduce the same
	// report (scans are deterministic) and exactly one terminal record
	// may ever land.
	JobCheckpoint Point = "job-checkpoint"
	// JobDrain fires once per in-flight job during graceful drain,
	// before the daemon waits for it. Detail is the job ID. A returned
	// error simulates a crash mid-drain: drained state must be
	// indistinguishable from a plain crash to the restarted daemon.
	JobDrain Point = "job-drain"
)

// Hook receives fault-injection callbacks. Hooks may panic, sleep, or
// return a non-nil error; the meaning of each is documented per Point.
// Hooks run on scanner worker goroutines and must be safe for concurrent
// use.
type Hook func(p Point, detail string) error

// ErrInjected is the base error returned by the helper constructors, so
// tests can assert provenance with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// matches reports whether detail matches the target spec: empty target
// matches everything, otherwise substring match.
func matches(target, detail string) bool {
	return target == "" || strings.Contains(detail, target)
}

// PanicOn returns a Hook that panics at the given point when detail
// contains target (empty target: always).
func PanicOn(p Point, target string) Hook {
	return func(point Point, detail string) error {
		if point == p && matches(target, detail) {
			panic(fmt.Sprintf("faultinject: injected panic at %s (%s)", point, detail))
		}
		return nil
	}
}

// SleepOn returns a Hook that sleeps d at the given point when detail
// contains target — the "pathological root" simulator.
func SleepOn(p Point, target string, d time.Duration) Hook {
	return func(point Point, detail string) error {
		if point == p && matches(target, detail) {
			time.Sleep(d)
		}
		return nil
	}
}

// ErrorOn returns a Hook that returns an ErrInjected-wrapped error at the
// given point when detail contains target. At SolverCheck this forces an
// Unknown verdict; at RootStart it aborts the root; at ParseFile it marks
// the file unparseable.
func ErrorOn(p Point, target string) Hook {
	return func(point Point, detail string) error {
		if point == p && matches(target, detail) {
			return fmt.Errorf("%w at %s (%s)", ErrInjected, point, detail)
		}
		return nil
	}
}

// ErrorN returns a Hook that returns an ErrInjected-wrapped error for the
// first n matching calls and succeeds from the (n+1)th on — the
// "transient fault" complement of FailAfter. Retry layers use it to
// prove a bounded retry absorbs n transient failures where FailAfter
// would prove a persistent fault still aborts. Safe for concurrent use.
func ErrorN(p Point, target string, n int) Hook {
	var calls atomic.Int64
	return func(point Point, detail string) error {
		if point != p || !matches(target, detail) {
			return nil
		}
		if calls.Add(1) <= int64(n) {
			return fmt.Errorf("%w: transient fault %d at %s (%s)", ErrInjected, n, point, detail)
		}
		return nil
	}
}

// FailAfter returns a Hook that lets the first n matching calls succeed
// and returns an ErrInjected-wrapped error from the (n+1)th on — the
// "crash after N records" knob of the crash-matrix resume tests. Safe
// for concurrent use.
func FailAfter(p Point, target string, n int) Hook {
	var calls atomic.Int64
	return func(point Point, detail string) error {
		if point != p || !matches(target, detail) {
			return nil
		}
		if calls.Add(1) > int64(n) {
			return fmt.Errorf("%w: crash after %d records at %s (%s)", ErrInjected, n, point, detail)
		}
		return nil
	}
}

// Chain combines hooks; the first non-nil error wins (later hooks still
// do not run after an error, preserving injection ordering).
func Chain(hooks ...Hook) Hook {
	return func(point Point, detail string) error {
		for _, h := range hooks {
			if h == nil {
				continue
			}
			if err := h(point, detail); err != nil {
				return err
			}
		}
		return nil
	}
}
