package ir

import (
	"strings"
	"testing"

	"repro/internal/phpast"
	"repro/internal/phpparser"
)

func parse(t *testing.T, name, src string) *phpast.File {
	t.Helper()
	f, errs := phpparser.Parse(name, src)
	if len(errs) > 0 {
		t.Fatalf("parse %s: %v", name, errs)
	}
	return f
}

func TestCompileBasics(t *testing.T) {
	f := parse(t, "a.php", `<?php
function dest($d, $n = "x") { return $d . "/" . $n; }
class Up { function move($t) { return move_uploaded_file($t, dest("u")); } }
$p = dest($_FILES["f"]["name"]);
if ($p) { echo $p; } else { exit; }
while ($i < 3) { $i++; }
foreach ($a as $k => $v) { unset($v); }
`)
	p := Compile([]*phpast.File{f})

	// dest + Up::move compiled, plus the file top-level.
	funcs, files, instrs := p.Stats()
	if funcs != 2 || files != 1 {
		t.Fatalf("Stats funcs=%d files=%d, want 2, 1", funcs, files)
	}
	if instrs == 0 {
		t.Fatal("empty arena")
	}
	if p.FunctionsCompiled != funcs+files {
		t.Errorf("FunctionsCompiled = %d, want %d", p.FunctionsCompiled, funcs+files)
	}

	// Name resolution mirrors the tree walker's table: lower-cased,
	// qualified and bare method names.
	for _, name := range []string{"dest", "up::move", "move"} {
		if p.FuncsByName[name] == nil {
			t.Errorf("FuncsByName[%q] missing", name)
		}
	}

	// Every compiled Code must slice into the shared arena.
	inArena := func(c *Code) bool {
		if len(c.Instrs) == 0 {
			return true
		}
		for i := range p.Arena {
			if &p.Arena[i] == &c.Instrs[0] {
				return true
			}
		}
		return false
	}
	for _, fn := range p.Funcs {
		if !inArena(fn.Body) {
			t.Errorf("func %s body not arena-backed", fn.Name)
		}
		if fn.bodyAST != nil {
			t.Errorf("func %s kept its AST after compile", fn.Name)
		}
	}
	for name, c := range p.Files {
		if !inArena(c) {
			t.Errorf("file %s top-level not arena-backed", name)
		}
	}

	// ByBody keys the original body slice so callgraph method wrappers
	// (which share the slice) resolve.
	var decl *phpast.FuncDecl
	for _, s := range f.Stmts {
		if d, ok := s.(*phpast.FuncDecl); ok {
			decl = d
		}
	}
	if decl == nil || p.ByBody[&decl.Body[0]] == nil {
		t.Error("ByBody lookup by first body statement failed")
	}
}

func TestCompileDeclPrecedenceFirstWins(t *testing.T) {
	a := parse(t, "a.php", `<?php function f() { return 1; }`)
	b := parse(t, "b.php", `<?php function f() { return 2; }`)
	p := Compile([]*phpast.File{a, b})
	if got := p.FuncsByName["f"]; got == nil || got.DeclLine != 1 {
		t.Fatalf("FuncsByName[f] = %+v, want first declaration", got)
	}
	if len(p.Funcs) != 2 {
		t.Errorf("both declarations should still compile, got %d", len(p.Funcs))
	}
}

func TestOpStrings(t *testing.T) {
	seen := map[string]bool{}
	for op := OpInvalid; op < opCount; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no name", op)
		}
		if seen[s] {
			t.Errorf("duplicate opcode name %q", s)
		}
		seen[s] = true
	}
	if got := Op(250).String(); got != "op(250)" {
		t.Errorf("unknown op String = %q", got)
	}
}

func TestCompileStringInterning(t *testing.T) {
	f := parse(t, "a.php", `<?php $x = $y; $x = $y; $x = $y;`)
	p := Compile([]*phpast.File{f})
	count := 0
	for _, s := range p.Strings {
		if s == "y" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("string %q interned %d times, want 1", "y", count)
	}
}
