package ir

import (
	"repro/internal/sexpr"
)

// This file holds the constant-fold semantics shared between the compiler
// and the tree-walking evaluator, the compile-time peephole that rewrites
// foldable opcode runs into OpFoldedConst superinstructions, and the
// static span-cacheability analysis the VM's block-fact cache keys on.
//
// The fold helpers are the single source of truth for "what does a
// concrete-operand operator evaluate to": interp.foldBinary/foldUnary and
// the cast evaluator delegate here, so a compile-time fold decision is by
// construction identical to the run-time one — the only difference is
// when the arithmetic happens, never what it produces.

// ConcreteString converts a concrete value to its PHP string coercion.
func ConcreteString(v sexpr.Expr) (string, bool) {
	switch x := v.(type) {
	case sexpr.StrVal:
		return string(x), true
	case sexpr.IntVal:
		return Itoa64(int64(x)), true
	case sexpr.BoolVal:
		if x {
			return "1", true
		}
		return "", true
	case sexpr.NullVal:
		return "", true
	}
	return "", false
}

// ConcreteInt converts a concrete value to its PHP integer coercion.
func ConcreteInt(v sexpr.Expr) (int64, bool) {
	switch x := v.(type) {
	case sexpr.IntVal:
		return int64(x), true
	case sexpr.BoolVal:
		if x {
			return 1, true
		}
		return 0, true
	case sexpr.NullVal:
		return 0, true
	}
	return 0, false
}

// ConcreteTruthy is PHP boolean coercion for concrete scalar values (the
// KindConcrete arm of the evaluator's concreteBool).
func ConcreteTruthy(v sexpr.Expr) (bool, bool) {
	switch x := v.(type) {
	case sexpr.BoolVal:
		return bool(x), true
	case sexpr.IntVal:
		return x != 0, true
	case sexpr.StrVal:
		return x != "" && x != "0", true
	case sexpr.NullVal:
		return false, true
	case sexpr.FloatVal:
		return x != 0, true
	}
	return false, false
}

// ConcreteEqual compares concrete values; strict selects === semantics.
// The bool result is only valid when ok is true.
func ConcreteEqual(a, b sexpr.Expr, strict bool) (bool, bool) {
	if strict {
		return sexpr.Equal(a, b), true
	}
	// Loose comparison for same-kind values and common coercions.
	as, aok := a.(sexpr.StrVal)
	bs, bok := b.(sexpr.StrVal)
	if aok && bok {
		return as == bs, true
	}
	ai, aok2 := ConcreteInt(a)
	bi, bok2 := ConcreteInt(b)
	if aok2 && bok2 {
		return ai == bi, true
	}
	return sexpr.Equal(a, b), true
}

// Itoa64 formats an int64 in decimal without allocating through strconv's
// generic path (hot in string coercions).
func Itoa64(n int64) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// FoldBinary computes the concrete result of `a op b` for concrete
// operands, following the same PHP semantics as the evaluator. "??" is
// deliberately not handled: it yields an existing operand label rather
// than allocating a result, so it cannot be expressed as a folded
// allocation run.
func FoldBinary(op string, a, b sexpr.Expr) (sexpr.Expr, bool) {
	switch op {
	case ".":
		ls, lok := ConcreteString(a)
		rs, rok := ConcreteString(b)
		if lok && rok {
			return sexpr.StrVal(ls + rs), true
		}
	case "+", "-", "*", "%":
		li, lok := ConcreteInt(a)
		ri, rok := ConcreteInt(b)
		if lok && rok {
			switch op {
			case "+":
				return sexpr.IntVal(li + ri), true
			case "-":
				return sexpr.IntVal(li - ri), true
			case "*":
				return sexpr.IntVal(li * ri), true
			case "%":
				if ri != 0 {
					return sexpr.IntVal(li % ri), true
				}
			}
		}
	case "==", "!=", "===", "!==":
		if eq, ok := ConcreteEqual(a, b, op == "===" || op == "!=="); ok {
			if op == "!=" || op == "!==" {
				eq = !eq
			}
			return sexpr.BoolVal(eq), true
		}
	case "<", ">", "<=", ">=":
		li, lok := ConcreteInt(a)
		ri, rok := ConcreteInt(b)
		if lok && rok {
			var r bool
			switch op {
			case "<":
				r = li < ri
			case ">":
				r = li > ri
			case "<=":
				r = li <= ri
			case ">=":
				r = li >= ri
			}
			return sexpr.BoolVal(r), true
		}
	case "&&", "||":
		lb, lok := ConcreteTruthy(a)
		rb, rok := ConcreteTruthy(b)
		if lok && rok {
			if op == "&&" {
				return sexpr.BoolVal(lb && rb), true
			}
			return sexpr.BoolVal(lb || rb), true
		}
	}
	return nil, false
}

// FoldUnary computes the concrete result of a unary operator applied to a
// concrete value. Unary "+" is not handled: it yields the operand label
// itself, allocating nothing.
func FoldUnary(op string, v sexpr.Expr) (sexpr.Expr, bool) {
	switch op {
	case "!":
		if b, ok := ConcreteTruthy(v); ok {
			return sexpr.BoolVal(!b), true
		}
	case "-":
		if x, ok := v.(sexpr.IntVal); ok {
			return sexpr.IntVal(-x), true
		}
		if x, ok := v.(sexpr.FloatVal); ok {
			return sexpr.FloatVal(-x), true
		}
	}
	return nil, false
}

// FoldCast computes the concrete result of a (type) cast applied to a
// concrete value.
func FoldCast(typ string, v sexpr.Expr) (sexpr.Expr, bool) {
	switch typ {
	case "int":
		if x, ok := ConcreteInt(v); ok {
			return sexpr.IntVal(x), true
		}
	case "string":
		if x, ok := ConcreteString(v); ok {
			return sexpr.StrVal(x), true
		}
	case "bool":
		if x, ok := ConcreteTruthy(v); ok {
			return sexpr.BoolVal(x), true
		}
	}
	return nil, false
}

// ---- compile-time peephole ----

// constTail reports whether the builder's last instruction is a complete
// constant expression (OpConst or OpFoldedConst — both opcodes are only
// ever emitted as the entire compilation of an expression), returning its
// final concrete value and its allocation steps.
func (c *compiler) constTail(ins Instr) (val sexpr.Expr, steps []FoldStep, ok bool) {
	switch ins.Op {
	case OpConst:
		return c.p.Consts[ins.A], []FoldStep{{Const: ins.A, Line: ins.Line}}, true
	case OpFoldedConst:
		d := c.p.Folds[ins.A]
		if d.PerEnvResult {
			// A per-environment result cannot feed a further fold: the
			// evaluator would see distinct operand labels per path and
			// allocate per path again, which a shared fold step cannot
			// replay.
			return nil, nil, false
		}
		st := d.Steps
		return c.p.Consts[st[len(st)-1].Const], st, true
	}
	return nil, nil, false
}

func (c *compiler) emitFold(b *builder, drop int, steps []FoldStep, v sexpr.Expr, line int32, perEnv bool) {
	merged := make([]FoldStep, 0, len(steps)+1)
	merged = append(merged, steps...)
	merged = append(merged, FoldStep{Const: c.cst(v), Line: line})
	idx := int32(len(c.p.Folds))
	c.p.Folds = append(c.p.Folds, FoldDesc{Steps: merged, PerEnvResult: perEnv})
	b.instrs = b.instrs[:len(b.instrs)-drop]
	b.emit(Instr{Op: OpFoldedConst, A: idx, Line: line})
	c.p.ConstsFolded++
}

// tryFoldBinary rewrites the tail pattern [const-L, OpPark, const-R] into
// an OpFoldedConst replaying L's allocations, R's allocations, and the
// folded result — exactly the nodes, values, order, and lines the VM (and
// the tree walker) would allocate, with the dispatch and parking skipped.
// Returns false (emitting nothing) when the tail does not match or the
// operator/operand combination is not foldable; the caller then emits the
// normal OpBinary.
func (c *compiler) tryFoldBinary(b *builder, op string, line int32) bool {
	n := len(b.instrs)
	if n < 3 || b.instrs[n-2].Op != OpPark {
		return false
	}
	rv, rSteps, ok := c.constTail(b.instrs[n-1])
	if !ok {
		return false
	}
	lv, lSteps, ok := c.constTail(b.instrs[n-3])
	if !ok {
		return false
	}
	v, ok := FoldBinary(op, lv, rv)
	if !ok {
		return false
	}
	steps := make([]FoldStep, 0, len(lSteps)+len(rSteps))
	steps = append(steps, lSteps...)
	steps = append(steps, rSteps...)
	// Binary folds allocate once per distinct operand pair (the sharing
	// map), and constant operands coincide across paths.
	c.emitFold(b, 3, steps, v, line, false)
	return true
}

// tryFoldUnary rewrites [const-X] + unary op into an OpFoldedConst.
func (c *compiler) tryFoldUnary(b *builder, op string, line int32) bool {
	n := len(b.instrs)
	if n < 1 {
		return false
	}
	xv, xSteps, ok := c.constTail(b.instrs[n-1])
	if !ok {
		return false
	}
	v, ok := FoldUnary(op, xv)
	if !ok {
		return false
	}
	// Unary folds allocate per path in the evaluator (no sharing map on
	// the fold path).
	c.emitFold(b, 1, xSteps, v, line, true)
	return true
}

// tryFoldCast rewrites [const-X] + cast into an OpFoldedConst.
func (c *compiler) tryFoldCast(b *builder, typ string, line int32) bool {
	n := len(b.instrs)
	if n < 1 {
		return false
	}
	xv, xSteps, ok := c.constTail(b.instrs[n-1])
	if !ok {
		return false
	}
	v, ok := FoldCast(typ, xv)
	if !ok {
		return false
	}
	// Cast folds allocate per path, like unary folds.
	c.emitFold(b, 1, xSteps, v, line, true)
	return true
}

// ---- span cacheability ----

// markCacheable flags each span of a statement code whose instructions
// are all effect-tapeable: no control flow, no path forks or suspensions,
// no escape to the tree evaluator, no sink recording, no include/exit,
// and a statically balanced operand stack (net depth zero, never dipping
// below the span's entry depth, peeks only at in-span parks). The VM's
// block-fact cache only ever records and replays flagged spans.
func (c *compiler) markCacheable(code *Code) {
	if len(code.Spans) == 0 {
		return
	}
	code.Cacheable = make([]bool, len(code.Spans))
	any := false
	for i, sp := range code.Spans {
		if sp.N > 0 && c.spanCacheable(code.Instrs[sp.Off:sp.Off+sp.N]) {
			code.Cacheable[i] = true
			any = true
		}
	}
	if !any {
		code.Cacheable = nil
	}
}

func (c *compiler) spanCacheable(instrs []Instr) bool {
	depth := 0
	for _, ins := range instrs {
		switch ins.Op {
		case OpConst, OpVar, OpFreshSym, OpSharedSym, OpConstFetch,
			OpUnary, OpCast, OpEmpty, OpBindVar, OpIncDecVar, OpPropFetch,
			OpPrint, OpUnset, OpStaticSym, OpFoldedConst:
			// Stack-neutral, effect-tapeable.
		case OpPark:
			depth++
		case OpPeekTmp:
			if depth < 1 {
				return false // would peek a value parked before the span
			}
		case OpInterpString, OpIsset:
			depth -= int(ins.A)
		case OpIndex, OpBinary:
			depth--
		case OpTernary:
			depth -= 2
		case OpCallDynamic, OpCallBuiltin:
			depth -= int(ins.B)
		case OpArrayLit:
			desc := c.p.ArrayDescs[ins.A]
			n := len(desc)
			for _, hasKey := range desc {
				if hasKey {
					n++
				}
			}
			depth -= n
		default:
			// Control flow, user calls, sinks, escapes, includes, returns:
			// never taped.
			return false
		}
		if depth < 0 {
			return false // would pop a value parked before the span
		}
	}
	return depth == 0
}
