package ir

import (
	"strings"

	"repro/internal/callgraph"
	"repro/internal/phpast"
	"repro/internal/sexpr"
)

// Compile translates parsed files into a Program. Compilation is total:
// every function body and file top-level gets bytecode, with rare AST
// forms lowered to escape-hatch instructions, so the VM never needs the
// compiler at run time.
//
// The function table is built with exactly the tree walker's declaration
// rules (lower-cased names, first declaration wins, class methods
// registered under both Class::method and the bare method name) so that
// compile-time call resolution agrees with the tree walker's run-time
// lookup.
func Compile(files []*phpast.File) *Program {
	c := &compiler{
		p: &Program{
			FuncsByName: map[string]*Func{},
			ByBody:      map[*phpast.Stmt]*Func{},
			Files:       map[string]*Code{},
		},
		strIdx:   map[string]int32{},
		constIdx: map[sexpr.Expr]int32{},
		funcIdx:  map[*Func]int32{},
	}
	// Pass 1: declare every function so call sites compile against the
	// complete table regardless of declaration order.
	for _, f := range files {
		c.declare(f.Stmts)
	}
	// Pass 2: compile function bodies, then file top-levels (declarations
	// execute only when called, so they are filtered from the top-level
	// statement list — mirroring interp.topLevel).
	for _, fn := range c.p.Funcs {
		fn.Body = c.compileStmts(fn.bodyAST)
		fn.bodyAST = nil
	}
	for _, f := range files {
		c.p.Files[f.Name] = c.compileStmts(topLevel(f.Stmts))
	}
	c.link()
	c.p.FunctionsCompiled = len(c.p.Funcs) + len(c.p.Files)
	return c.p
}

type compiler struct {
	p        *Program
	strIdx   map[string]int32
	constIdx map[sexpr.Expr]int32
	funcIdx  map[*Func]int32
	codes    []*Code
}

// declare mirrors interp.(*Interp).declare: walk every statement,
// registering function declarations and class methods first-wins.
func (c *compiler) declare(stmts []phpast.Stmt) {
	for _, s := range stmts {
		phpast.Walk(s, func(n phpast.Node) bool {
			switch d := n.(type) {
			case *phpast.FuncDecl:
				fn := c.funcFor(d.Name, d.Params, d.Body, d.P.Line, d.EndLine)
				c.register(strings.ToLower(d.Name), fn)
			case *phpast.ClassDecl:
				for _, m := range d.Methods {
					fn := c.funcFor(d.Name+"::"+m.Name, m.Params, m.Body, m.P.Line, m.EndLine)
					c.register(strings.ToLower(d.Name+"::"+m.Name), fn)
					c.register(strings.ToLower(m.Name), fn)
				}
			}
			return true
		})
	}
}

func (c *compiler) funcFor(name string, params []phpast.Param, body []phpast.Stmt, declLine, endLine int) *Func {
	var key *phpast.Stmt
	if len(body) > 0 {
		key = &body[0]
		if fn, ok := c.p.ByBody[key]; ok {
			return fn
		}
	}
	fn := &Func{
		Name:     name,
		LName:    strings.ToLower(name),
		Params:   params,
		DeclLine: declLine,
		EndLine:  endLine,
		bodyAST:  body,
	}
	c.funcIdx[fn] = int32(len(c.p.Funcs))
	c.p.Funcs = append(c.p.Funcs, fn)
	if key != nil {
		c.p.ByBody[key] = fn
	}
	return fn
}

func (c *compiler) register(name string, fn *Func) {
	if _, ok := c.p.FuncsByName[name]; !ok {
		c.p.FuncsByName[name] = fn
	}
}

// topLevel mirrors interp.topLevel: declarations execute only when called.
func topLevel(stmts []phpast.Stmt) []phpast.Stmt {
	out := make([]phpast.Stmt, 0, len(stmts))
	for _, s := range stmts {
		switch s.(type) {
		case *phpast.FuncDecl, *phpast.ClassDecl:
			continue
		}
		out = append(out, s)
	}
	return out
}

// ---- pools ----

func (c *compiler) str(s string) int32 {
	if i, ok := c.strIdx[s]; ok {
		return i
	}
	i := int32(len(c.p.Strings))
	c.p.Strings = append(c.p.Strings, s)
	c.strIdx[s] = i
	return i
}

func (c *compiler) cst(v sexpr.Expr) int32 {
	if i, ok := c.constIdx[v]; ok {
		return i
	}
	i := int32(len(c.p.Consts))
	c.p.Consts = append(c.p.Consts, v)
	c.constIdx[v] = i
	return i
}

func (c *compiler) expr(e phpast.Expr) int32 {
	i := int32(len(c.p.Exprs))
	c.p.Exprs = append(c.p.Exprs, e)
	return i
}

func (c *compiler) names(ns []string) int32 {
	i := int32(len(c.p.Names))
	c.p.Names = append(c.p.Names, ns)
	return i
}

func (c *compiler) block(code *Code) int32 {
	i := int32(len(c.p.Blocks))
	c.p.Blocks = append(c.p.Blocks, code)
	return i
}

// ---- code builders ----

type builder struct {
	instrs []Instr
	spans  []Span
}

func (b *builder) emit(i Instr) { b.instrs = append(b.instrs, i) }

func (c *compiler) finish(b *builder) *Code {
	code := &Code{Instrs: b.instrs, Spans: b.spans}
	c.markCacheable(code)
	c.codes = append(c.codes, code)
	return code
}

// compileStmts compiles a statement list, one span per statement (each
// span boundary is a VM budget checkpoint, like execStmts).
func (c *compiler) compileStmts(stmts []phpast.Stmt) *Code {
	b := &builder{}
	for _, s := range stmts {
		off := int32(len(b.instrs))
		c.compileStmt(b, s)
		b.spans = append(b.spans, Span{Off: off, N: int32(len(b.instrs)) - off})
	}
	return c.finish(b)
}

// compileStmtCode compiles a single statement as a one-span Code that the
// VM dispatches without a fresh checkpoint (execStmt semantics — used for
// else branches, where `elseif` chains would otherwise double-count).
func (c *compiler) compileStmtCode(s phpast.Stmt) *Code {
	b := &builder{}
	c.compileStmt(b, s)
	b.spans = []Span{{Off: 0, N: int32(len(b.instrs))}}
	return c.finish(b)
}

// compileExprCode compiles a standalone expression (loop conditions, for
// posts).
func (c *compiler) compileExprCode(e phpast.Expr) *Code {
	b := &builder{}
	c.compileExpr(b, e)
	return c.finish(b)
}

// ---- statements ----

func (c *compiler) compileStmt(b *builder, s phpast.Stmt) {
	switch x := s.(type) {
	case *phpast.ExprStmt:
		c.compileExpr(b, x.X)
	case *phpast.Echo:
		for _, a := range x.Args {
			c.compileExpr(b, a)
		}
	case *phpast.Block:
		b.emit(Instr{Op: OpBlock, A: c.block(c.compileStmts(x.Stmts))})
	case *phpast.If:
		c.compileExpr(b, x.Cond)
		d := IfDesc{Then: c.compileStmts(x.Then.Stmts)}
		if x.Else != nil {
			d.Else = c.compileStmtCode(x.Else)
		}
		idx := int32(len(c.p.Ifs))
		c.p.Ifs = append(c.p.Ifs, d)
		b.emit(Instr{Op: OpIf, A: idx, Line: int32(x.P.Line)})
	case *phpast.While:
		c.emitLoop(b, LoopDesc{Cond: c.compileExprCode(x.Cond), Body: c.compileStmts(x.Body.Stmts)}, x.P.Line)
	case *phpast.DoWhile:
		c.emitLoop(b, LoopDesc{Cond: c.compileExprCode(x.Cond), Body: c.compileStmts(x.Body.Stmts), BodyFirst: true}, x.P.Line)
	case *phpast.For:
		for _, e := range x.Init {
			c.compileExpr(b, e) // value discarded
		}
		var body []phpast.Stmt
		if x.Body != nil {
			body = x.Body.Stmts
		}
		post := make([]*Code, len(x.Post))
		for i, p := range x.Post {
			post[i] = c.compileExprCode(p)
		}
		c.emitLoop(b, LoopDesc{Cond: c.compileExprCode(andAll(x.Cond)), Body: c.compileStmts(body), Post: post}, x.P.Line)
	case *phpast.Foreach:
		c.compileExpr(b, x.Arr)
		keyName := int32(-1)
		if x.Key != nil {
			if kv, ok := x.Key.(*phpast.Var); ok {
				keyName = c.str(kv.Name)
			}
		}
		d := ForeachDesc{Body: c.compileStmts(x.Body.Stmts), KeyName: keyName, Val: c.expr(x.Val)}
		idx := int32(len(c.p.Foreachs))
		c.p.Foreachs = append(c.p.Foreachs, d)
		b.emit(Instr{Op: OpForeach, A: idx, Line: int32(x.P.Line)})
	case *phpast.Switch:
		c.compileSwitch(b, x)
	case *phpast.Return:
		if x.X != nil {
			c.compileExpr(b, x.X)
			b.emit(Instr{Op: OpReturn, B: 1, Line: int32(x.P.Line)})
		} else {
			b.emit(Instr{Op: OpReturn, Line: int32(x.P.Line)})
		}
	case *phpast.Break:
		lvl := x.Level
		if lvl == 0 {
			lvl = 1
		}
		b.emit(Instr{Op: OpBreak, A: int32(lvl)})
	case *phpast.Continue:
		lvl := x.Level
		if lvl == 0 {
			lvl = 1
		}
		b.emit(Instr{Op: OpContinue, A: int32(lvl)})
	case *phpast.Global:
		b.emit(Instr{Op: OpGlobal, A: c.names(x.Names), Line: int32(x.P.Line)})
	case *phpast.StaticVars:
		for i, name := range x.Names {
			if x.Inits[i] != nil {
				c.compileExpr(b, x.Inits[i])
				b.emit(Instr{Op: OpBindVar, A: c.str(name)})
			} else {
				b.emit(Instr{Op: OpStaticSym, A: c.str(name), Line: int32(x.P.Line)})
			}
		}
	case *phpast.Unset:
		var names []string
		for _, v := range x.Vars {
			if vv, ok := v.(*phpast.Var); ok {
				names = append(names, vv.Name)
			}
		}
		if len(names) > 0 {
			b.emit(Instr{Op: OpUnset, A: c.names(names)})
		}
	case *phpast.Try:
		d := TryDesc{Body: c.compileStmts(x.Body.Stmts)}
		for _, ct := range x.Catches {
			v := int32(-1)
			if ct.Var != "" {
				v = c.str(ct.Var)
			}
			d.Catches = append(d.Catches, CatchDesc{VarName: v, Line: int32(ct.P.Line), Body: c.compileStmts(ct.Body.Stmts)})
		}
		if x.Finally != nil {
			d.Finally = c.compileStmts(x.Finally.Stmts)
		}
		idx := int32(len(c.p.Trys))
		c.p.Trys = append(c.p.Trys, d)
		b.emit(Instr{Op: OpTry, A: idx})
	case *phpast.Throw:
		c.compileExpr(b, x.X)
		b.emit(Instr{Op: OpThrow})
	case *phpast.FuncDecl, *phpast.ClassDecl, *phpast.InlineHTML, *phpast.Nop:
		// Declarations execute only when called; empty span keeps the VM's
		// checkpoint count aligned with the tree walker's.
	default:
	}
}

func (c *compiler) emitLoop(b *builder, d LoopDesc, line int) {
	idx := int32(len(c.p.Loops))
	c.p.Loops = append(c.p.Loops, d)
	b.emit(Instr{Op: OpLoop, A: idx, Line: int32(line)})
}

// compileSwitch mirrors execSwitch's desugaring into an if/elseif chain
// on equality with the subject, then compiles the chain inline (the tree
// walker dispatches the chain via execStmt, without a fresh checkpoint).
func (c *compiler) compileSwitch(b *builder, x *phpast.Switch) {
	var defaultBody *phpast.Block
	for _, cs := range x.Cases {
		if cs.Cond == nil {
			defaultBody = &phpast.Block{P: cs.P, Stmts: cs.Stmts}
		}
	}
	var elseStmt phpast.Stmt
	if defaultBody != nil {
		elseStmt = defaultBody
	}
	var chain phpast.Stmt
	for i := len(x.Cases) - 1; i >= 0; i-- {
		cs := x.Cases[i]
		if cs.Cond == nil {
			continue
		}
		cond := &phpast.Binary{P: cs.P, Op: "==", L: x.Subject, R: cs.Cond}
		chain = &phpast.If{P: cs.P, Cond: cond, Then: &phpast.Block{P: cs.P, Stmts: cs.Stmts}, Else: elseStmt}
		elseStmt = chain
	}
	if chain == nil {
		if defaultBody != nil {
			b.emit(Instr{Op: OpBlock, A: c.block(c.compileStmts(defaultBody.Stmts))})
		}
		b.emit(Instr{Op: OpConsumeLoop})
		return
	}
	c.compileStmt(b, chain)
	b.emit(Instr{Op: OpConsumeLoop})
}

func andAll(conds []phpast.Expr) phpast.Expr {
	if len(conds) == 0 {
		return &phpast.BoolLit{Value: true}
	}
	e := conds[0]
	for _, cond := range conds[1:] {
		e = &phpast.Binary{P: e.Pos(), Op: "&&", L: e, R: cond}
	}
	return e
}

// ---- expressions ----

func (c *compiler) compileExpr(b *builder, e phpast.Expr) {
	if e == nil {
		b.emit(Instr{Op: OpConst, A: c.cst(sexpr.NullVal{})}) // eval(nil): null at line 0
		return
	}
	switch x := e.(type) {
	case *phpast.IntLit:
		b.emit(Instr{Op: OpConst, A: c.cst(sexpr.IntVal(x.Value)), Line: int32(x.P.Line)})
	case *phpast.FloatLit:
		b.emit(Instr{Op: OpConst, A: c.cst(sexpr.FloatVal(x.Value)), Line: int32(x.P.Line)})
	case *phpast.StringLit:
		b.emit(Instr{Op: OpConst, A: c.cst(sexpr.StrVal(x.Value)), Line: int32(x.P.Line)})
	case *phpast.BoolLit:
		b.emit(Instr{Op: OpConst, A: c.cst(sexpr.BoolVal(x.Value)), Line: int32(x.P.Line)})
	case *phpast.NullLit:
		b.emit(Instr{Op: OpConst, A: c.cst(sexpr.NullVal{}), Line: int32(x.P.Line)})
	case *phpast.Var:
		b.emit(Instr{Op: OpVar, A: c.str(x.Name), Line: int32(x.P.Line)})
	case *phpast.InterpString:
		if len(x.Parts) == 0 {
			b.emit(Instr{Op: OpConst, A: c.cst(sexpr.StrVal("")), Line: int32(x.P.Line)})
			return
		}
		for _, p := range x.Parts {
			c.compileExpr(b, p)
			b.emit(Instr{Op: OpPark})
		}
		b.emit(Instr{Op: OpInterpString, A: int32(len(x.Parts)), Line: int32(x.P.Line)})
	case *phpast.ArrayDim:
		c.compileExpr(b, x.Arr)
		b.emit(Instr{Op: OpPark})
		if x.Index != nil {
			c.compileExpr(b, x.Index)
		} else {
			b.emit(Instr{Op: OpFreshSym, A: c.str(""), B: int32(sexpr.Unknown), Line: int32(x.P.Line)})
		}
		b.emit(Instr{Op: OpIndex, Line: int32(x.P.Line)})
	case *phpast.ArrayLit:
		desc := make([]bool, len(x.Items))
		for i, it := range x.Items {
			if it.Key != nil {
				desc[i] = true
				c.compileExpr(b, it.Key)
				b.emit(Instr{Op: OpPark})
			}
			c.compileExpr(b, it.Value)
			b.emit(Instr{Op: OpPark})
		}
		idx := int32(len(c.p.ArrayDescs))
		c.p.ArrayDescs = append(c.p.ArrayDescs, desc)
		b.emit(Instr{Op: OpArrayLit, A: idx, Line: int32(x.P.Line)})
	case *phpast.Unary:
		c.compileExpr(b, x.X)
		if c.tryFoldUnary(b, x.Op, int32(x.P.Line)) {
			return
		}
		b.emit(Instr{Op: OpUnary, A: c.str(x.Op), Line: int32(x.P.Line)})
	case *phpast.Binary:
		c.compileExpr(b, x.L)
		b.emit(Instr{Op: OpPark})
		c.compileExpr(b, x.R)
		if c.tryFoldBinary(b, x.Op, int32(x.P.Line)) {
			return
		}
		b.emit(Instr{Op: OpBinary, A: c.str(x.Op), Line: int32(x.P.Line)})
	case *phpast.Assign:
		if x.Op == "" {
			c.compileExpr(b, x.Value)
		} else {
			// Compound assignment: target = target op value.
			c.compileExpr(b, x.Target)
			b.emit(Instr{Op: OpPark})
			c.compileExpr(b, x.Value)
			b.emit(Instr{Op: OpBinary, A: c.str(x.Op), Line: int32(x.P.Line)})
		}
		if tv, ok := x.Target.(*phpast.Var); ok {
			b.emit(Instr{Op: OpBindVar, A: c.str(tv.Name)})
		} else {
			b.emit(Instr{Op: OpAssignTo, A: c.expr(x.Target)})
		}
	case *phpast.IncDec:
		if tv, ok := x.X.(*phpast.Var); ok {
			c.compileExpr(b, x.X)
			var flags int32
			if x.Op == "--" {
				flags |= 1
			}
			if x.Pre {
				flags |= 2
			}
			b.emit(Instr{Op: OpIncDecVar, A: c.str(tv.Name), B: flags, Line: int32(x.P.Line)})
		} else {
			b.emit(Instr{Op: OpEvalExpr, A: c.expr(x)})
		}
	case *phpast.Ternary:
		c.compileExpr(b, x.Cond)
		b.emit(Instr{Op: OpPark})
		if x.Then != nil {
			c.compileExpr(b, x.Then)
		} else {
			b.emit(Instr{Op: OpPeekTmp}) // short form reuses the condition value
		}
		b.emit(Instr{Op: OpPark})
		c.compileExpr(b, x.Else)
		b.emit(Instr{Op: OpTernary, Line: int32(x.P.Line)})
	case *phpast.Cast:
		c.compileExpr(b, x.X)
		if c.tryFoldCast(b, x.Type, int32(x.P.Line)) {
			return
		}
		b.emit(Instr{Op: OpCast, A: c.str(x.Type), Line: int32(x.P.Line)})
	case *phpast.ErrorSuppress:
		c.compileExpr(b, x.X)
	case *phpast.Call:
		c.compileCall(b, x)
	case *phpast.PropFetch:
		c.compileExpr(b, x.Obj)
		b.emit(Instr{Op: OpPropFetch, A: c.str(x.Prop), Line: int32(x.P.Line)})
	case *phpast.StaticPropFetch:
		b.emit(Instr{Op: OpSharedSym, A: c.str("s_sprop_" + x.Class + "_" + x.Prop), B: int32(sexpr.Unknown), Line: int32(x.P.Line)})
	case *phpast.ClassConstFetch:
		b.emit(Instr{Op: OpSharedSym, A: c.str("s_cconst_" + x.Class + "_" + x.Const), B: int32(sexpr.Unknown), Line: int32(x.P.Line)})
	case *phpast.ConstFetch:
		b.emit(Instr{Op: OpConstFetch, A: c.str(x.Name), Line: int32(x.P.Line)})
	case *phpast.Isset:
		for _, v := range x.Vars {
			c.compileExpr(b, v)
			b.emit(Instr{Op: OpPark})
		}
		b.emit(Instr{Op: OpIsset, A: int32(len(x.Vars)), Line: int32(x.P.Line)})
	case *phpast.Empty:
		c.compileExpr(b, x.X)
		b.emit(Instr{Op: OpEmpty, Line: int32(x.P.Line)})
	case *phpast.Exit:
		if x.X != nil {
			c.compileExpr(b, x.X)
		}
		b.emit(Instr{Op: OpExit, Line: int32(x.P.Line)})
	case *phpast.Print:
		c.compileExpr(b, x.X)
		b.emit(Instr{Op: OpPrint, Line: int32(x.P.Line)})
	case *phpast.Include:
		c.compileExpr(b, x.X) // path value evaluated, then discarded
		b.emit(Instr{Op: OpInclude, A: c.expr(x), Line: int32(x.P.Line)})
	case *phpast.Closure:
		b.emit(Instr{Op: OpFreshSym, A: c.str("s_closure"), B: int32(sexpr.Unknown), Line: int32(x.P.Line)})
	case *phpast.ListExpr:
		b.emit(Instr{Op: OpFreshSym, A: c.str(""), B: int32(sexpr.Array), Line: int32(x.P.Line)})
	case *phpast.Name:
		b.emit(Instr{Op: OpSharedSym, A: c.str("s_name_" + x.Value), B: int32(sexpr.String), Line: int32(x.P.Line)})
	case *phpast.MethodCall, *phpast.StaticCall, *phpast.New:
		b.emit(Instr{Op: OpEvalExpr, A: c.expr(x)})
	default:
		b.emit(Instr{Op: OpFreshSym, A: c.str(""), B: int32(sexpr.Unknown), Line: int32(e.Pos().Line)})
	}
}

// compileCall resolves the callee at compile time in the same order the
// tree walker resolves it at run time: dynamic callee → sink → declared
// user function → built-in model. The call_user_func('fn', ...) string
// indirection is rewritten to a direct call, like evalCall.
func (c *compiler) compileCall(b *builder, x *phpast.Call) {
	name, named := phpast.CalleeName(x)
	if named && (name == "call_user_func" || name == "call_user_func_array") && len(x.Args) > 0 {
		if lit, ok := x.Args[0].(*phpast.StringLit); ok {
			inner := &phpast.Call{P: x.P, Func: &phpast.Name{P: x.P, Value: lit.Value}, Args: x.Args[1:]}
			c.compileCall(b, inner)
			return
		}
	}
	for _, a := range x.Args {
		c.compileExpr(b, a)
		b.emit(Instr{Op: OpPark})
	}
	line := int32(x.P.Line)
	n := int32(len(x.Args))
	switch {
	case !named:
		b.emit(Instr{Op: OpCallDynamic, B: n, Line: line})
	case callgraph.Sinks[name]:
		b.emit(Instr{Op: OpCallSink, A: c.str(name), B: n, Line: line})
	case c.p.FuncsByName[name] != nil:
		b.emit(Instr{Op: OpCallUser, A: c.funcIdx[c.p.FuncsByName[name]], B: n, Line: line})
	default:
		b.emit(Instr{Op: OpCallBuiltin, A: c.str(name), B: n, Line: line})
	}
}

// link copies every Code's instructions into one arena and re-points the
// codes at sub-slices, so a compiled program is a handful of contiguous
// allocations instead of thousands of small ones.
func (c *compiler) link() {
	total := 0
	for _, code := range c.codes {
		total += len(code.Instrs)
	}
	arena := make([]Instr, 0, total)
	for _, code := range c.codes {
		off := len(arena)
		arena = append(arena, code.Instrs...)
		code.Instrs = arena[off:len(arena):len(arena)]
	}
	c.p.Arena = arena
}
