// Package ir defines UChecker's opcode intermediate representation: each
// PHP function (and each file's top-level statement list) is compiled once
// into a compact, arena-allocated, string-interned bytecode that the
// interp package's VM engine dispatches linearly over the heap-graph
// environments.
//
// The instruction set deliberately mirrors the tree-walking evaluator's
// recursion structure (see internal/interp): expressions leave one label
// per live path in the VM's value register, sub-expressions whose labels
// must survive a potential path fork are parked on the per-environment
// operand stack (OpPark), and structured control flow (if / loops /
// foreach / try) is kept as single instructions referencing sub-Code
// blocks rather than lowered to jumps — path forking duplicates
// environments, not program counters, so a fork-free linear dispatch with
// structured recursion is both simpler and byte-for-byte equivalent to
// the tree walker.
//
// A handful of rare constructs (method calls, object construction,
// non-variable increment targets, complex assignment targets) escape to
// the tree evaluator through OpEvalExpr / OpAssignTo, which reference the
// original AST node. This keeps the instruction set small while
// guaranteeing identical semantics on the long tail.
package ir

import (
	"fmt"

	"repro/internal/phpast"
	"repro/internal/sexpr"
)

// Op is an opcode.
type Op uint8

// Expression opcodes leave one heap-graph label per live path in the VM's
// value register; statement opcodes only transform the environment set.
const (
	// OpInvalid is the zero Op; executing it is a bug.
	OpInvalid Op = iota

	// OpConst allocates a fresh concrete object from Consts[A], shared by
	// all paths (literals allocate one node per evaluation).
	OpConst
	// OpVar reads variable Strings[A] per path, binding a fresh symbol (or
	// a superglobal's shared pre-structured object) when unbound.
	OpVar
	// OpPark pushes the value register onto each path's operand stack so
	// the labels stay aligned across forks in a later sub-expression.
	OpPark
	// OpPeekTmp loads the top of the operand stack without popping
	// (short-form ternary reuses the parked condition value).
	OpPeekTmp
	// OpFreshSym allocates one fresh symbol named Strings[A] (empty for an
	// auto-generated name) of type sexpr.Type(B), shared by all paths.
	OpFreshSym
	// OpSharedSym resolves the memoized process-wide symbol Strings[A] of
	// type sexpr.Type(B) (superglobal fields, platform constants).
	OpSharedSym
	// OpConstFetch resolves the PHP constant Strings[A] (PATHINFO_*,
	// __FILE__, platform constants, ...).
	OpConstFetch
	// OpInterpString concatenates A parked parts with "." operation nodes.
	OpInterpString
	// OpIndex reads an array element: array parked, index in the value
	// register.
	OpIndex
	// OpArrayLit builds one array per path from parked keys/values as
	// described by ArrayDescs[A].
	OpArrayLit
	// OpUnary applies unary operator Strings[A] to the value register.
	OpUnary
	// OpBinary applies binary operator Strings[A]: left parked, right in
	// the value register.
	OpBinary
	// OpIsset builds an isset operation node over A parked operands.
	OpIsset
	// OpEmpty builds an empty operation node over the value register.
	OpEmpty
	// OpTernary folds cond ? then : else — condition and then-value
	// parked, else-value in the value register.
	OpTernary
	// OpCast applies a (Strings[A]) cast to the value register.
	OpCast
	// OpBindVar binds variable Strings[A] to the value register on every
	// path; the register is left unchanged (assignments are expressions).
	OpBindVar
	// OpAssignTo writes the value register through the assignment target
	// Exprs[A] (array dims, property fetches, list()), via the shared
	// tree-walker write path.
	OpAssignTo
	// OpIncDecVar increments/decrements variable Strings[A]; B bit0 set
	// means decrement, bit1 set means prefix (result is the new value).
	OpIncDecVar
	// OpPropFetch reads property Strings[A] from the object in the value
	// register.
	OpPropFetch
	// OpCallDynamic models a variable function call with B parked
	// arguments (opaque call_dynamic FUNC node).
	OpCallDynamic
	// OpCallSink records a sink invocation of Strings[A] with B parked
	// arguments on every path.
	OpCallSink
	// OpCallBuiltin applies the built-in model Strings[A] to B parked
	// arguments.
	OpCallBuiltin
	// OpCallUser inlines user function Funcs[A] with B parked arguments.
	OpCallUser
	// OpInclude executes the include target of Exprs[A] (an
	// *phpast.Include); the path expression's value was evaluated and
	// discarded beforehand.
	OpInclude
	// OpExit terminates every path; the register holds a fresh null.
	OpExit
	// OpPrint yields concrete int 1 (its argument was evaluated before).
	OpPrint
	// OpEvalExpr escapes to the tree evaluator for Exprs[A] (method
	// calls, new, and other rare forms).
	OpEvalExpr

	// OpBlock runs the nested statement list Blocks[A] with per-statement
	// budget checkpoints.
	OpBlock
	// OpIf forks paths on the condition in the value register and runs
	// Ifs[A]'s branches.
	OpIf
	// OpLoop runs the unrolled condition-guarded loop Loops[A].
	OpLoop
	// OpForeach iterates Foreachs[A] over the array in the value register.
	OpForeach
	// OpTry runs Trys[A]: body, alternate catch paths, finally.
	OpTry
	// OpReturn suspends every path with a return value (the value register
	// when B==1, fresh per-path nulls otherwise).
	OpReturn
	// OpBreak sets every path's break level to A.
	OpBreak
	// OpContinue sets every path's continue level to A.
	OpContinue
	// OpThrow terminates every path (the thrown value was evaluated).
	OpThrow
	// OpGlobal imports Names[A] from the global frame on every path.
	OpGlobal
	// OpStaticSym binds variable Strings[A] to a per-path fresh
	// s_static_* symbol (static declaration without initializer).
	OpStaticSym
	// OpUnset unbinds Names[A] on every path.
	OpUnset
	// OpConsumeLoop consumes one break/continue level (switch statements).
	OpConsumeLoop
	// OpFoldedConst replays the constant-folded allocation run Folds[A]:
	// every heap node the original opcode run would have allocated is still
	// allocated, with identical values, order, and lines (so objects_allocated
	// and heap-graph labels stay byte-identical to the tree engine); only the
	// dispatch, operand parking, and runtime fold probing are skipped. The
	// value register receives the final step's label on every path.
	OpFoldedConst

	opCount
)

var opNames = [...]string{
	OpInvalid: "invalid", OpConst: "const", OpVar: "var", OpPark: "park",
	OpPeekTmp: "peektmp", OpFreshSym: "freshsym", OpSharedSym: "sharedsym",
	OpConstFetch: "constfetch", OpInterpString: "interpstring",
	OpIndex: "index", OpArrayLit: "arraylit", OpUnary: "unary",
	OpBinary: "binary", OpIsset: "isset", OpEmpty: "empty",
	OpTernary: "ternary", OpCast: "cast", OpBindVar: "bindvar",
	OpAssignTo: "assignto", OpIncDecVar: "incdecvar", OpPropFetch: "propfetch",
	OpCallDynamic: "calldynamic", OpCallSink: "callsink",
	OpCallBuiltin: "callbuiltin", OpCallUser: "calluser",
	OpInclude: "include", OpExit: "exit", OpPrint: "print",
	OpEvalExpr: "evalexpr", OpBlock: "block", OpIf: "if", OpLoop: "loop",
	OpForeach: "foreach", OpTry: "try", OpReturn: "return",
	OpBreak: "break", OpContinue: "continue", OpThrow: "throw",
	OpGlobal: "global", OpStaticSym: "staticsym", OpUnset: "unset",
	OpConsumeLoop: "consumeloop", OpFoldedConst: "foldedconst",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one instruction. A and B index the Program pools (which pool
// depends on the opcode); Line is the source line for heap-graph nodes.
type Instr struct {
	Op   Op
	A    int32
	B    int32
	Line int32
}

// Span is one statement's instruction range inside a Code: the VM places a
// budget checkpoint and a suspended-path partition at every span boundary,
// exactly like the tree walker's execStmts. Declarations compile to empty
// spans (N==0) so checkpoint counts agree between engines.
type Span struct {
	Off, N int32
}

// Code is one compiled statement list (a function body, a file top-level,
// a branch arm, ...). Instrs is a sub-slice of the program arena.
type Code struct {
	Instrs []Instr
	Spans  []Span
	// Cacheable flags each span (by index) as eligible for the VM's
	// block-fact cache: every instruction in the span is effect-taped
	// (no control flow, no path forks, no escape to the tree evaluator,
	// no sink recording) and the span's operand-stack usage is statically
	// balanced. Computed once at compile time; nil for expression codes
	// (which have no spans and are never cached — their result register
	// is consumed by the caller).
	Cacheable []bool
}

// FoldStep is one replayed allocation of an OpFoldedConst: a concrete
// object with value Consts[Const] at the given source line.
type FoldStep struct {
	Const int32
	Line  int32
}

// FoldDesc describes an OpFoldedConst: the ordered allocation steps of the
// folded opcode run. The last step's label is the result. PerEnvResult
// marks folds whose original opcode allocated the folded result once per
// live path (unary operators and casts fold per environment in the
// evaluator; binary folds are shared across paths through the per-operand
// sharing map) — the VM must replay that allocation count exactly.
type FoldDesc struct {
	Steps        []FoldStep
	PerEnvResult bool
}

// IfDesc describes an OpIf. Else is nil when there is no else branch;
// when present it holds exactly one statement span, dispatched without a
// fresh budget checkpoint (mirroring execStmt on the else statement, which
// is how `elseif` chains avoid double-counting checkpoints).
type IfDesc struct {
	Then *Code
	Else *Code
}

// LoopDesc describes an OpLoop (while / do-while / for after init
// lowering).
type LoopDesc struct {
	Cond      *Code   // condition expression code
	Body      *Code   // statement code
	Post      []*Code // for-loop post expression codes, run at iteration boundaries
	BodyFirst bool    // do-while
}

// ForeachDesc describes an OpForeach. KeyName is a Strings index, or -1
// when the key is absent or not a simple variable. Val indexes Exprs: the
// value target is assigned through the shared tree-walker write path.
type ForeachDesc struct {
	Body    *Code
	KeyName int32
	Val     int32
}

// CatchDesc is one catch clause of a TryDesc. VarName is a Strings index
// or -1.
type CatchDesc struct {
	VarName int32
	Line    int32
	Body    *Code
}

// TryDesc describes an OpTry. Finally is nil when absent.
type TryDesc struct {
	Body    *Code
	Catches []CatchDesc
	Finally *Code
}

// Func is one compiled user function or method.
type Func struct {
	// Name is the declared name (methods: "Class::method"); LName is its
	// lower-case form used on the inlining call stack.
	Name  string
	LName string
	// Params are the declaration's parameters; default expressions are
	// constant and evaluated by the shared tree path when a call site
	// omits them.
	Params []phpast.Param
	Body   *Code
	// DeclLine/EndLine anchor fresh parameter symbols and implicit null
	// returns, mirroring the tree walker.
	DeclLine int
	EndLine  int

	// bodyAST holds the declaration body between the declare and compile
	// passes; cleared after compilation.
	bodyAST []phpast.Stmt
}

// Program is the compiled form of one application: every function body
// and file top-level as bytecode plus the interned pools instructions
// index into. A Program is immutable after Compile and safe for
// concurrent VMs.
type Program struct {
	// Strings interns every name an instruction references.
	Strings []string
	// Consts holds literal values (one fresh heap node is still allocated
	// per evaluation; the pool only interns the value).
	Consts []sexpr.Expr
	// Exprs holds AST references for escape-hatch opcodes.
	Exprs []phpast.Expr
	// ArrayDescs: for OpArrayLit, per-item has-explicit-key flags.
	ArrayDescs [][]bool
	// Names holds name lists for OpGlobal / OpUnset.
	Names [][]string

	Ifs      []IfDesc
	Loops    []LoopDesc
	Foreachs []ForeachDesc
	Trys     []TryDesc
	// Blocks are OpBlock targets.
	Blocks []*Code
	// Folds are OpFoldedConst targets.
	Folds []FoldDesc

	// Funcs lists every compiled function; FuncsByName resolves
	// lower-cased call names with the same first-declaration-wins rule as
	// the tree walker's table. ByBody resolves a function body to its
	// compiled form, keyed by the address of the body's first statement:
	// callgraph roots reference synthesized FuncDecl wrappers for class
	// methods, but those share the method's body slice, so the pointer
	// matches. Empty bodies are not keyed (running them is a no-op).
	Funcs       []*Func
	FuncsByName map[string]*Func
	ByBody      map[*phpast.Stmt]*Func

	// Files maps file name to its compiled top-level statement code.
	Files map[string]*Code

	// Arena is the flat instruction backing store every Code slices into.
	Arena []Instr

	// FunctionsCompiled counts compiled units (functions + file
	// top-levels) for the ir_functions_compiled metric.
	FunctionsCompiled int
	// ConstsFolded counts constant-fold rewrites performed by Compile
	// (each OpFoldedConst creation or extension), for the ir_consts_folded
	// metric.
	ConstsFolded int
}

// Stats summarizes a program for logs and tests.
func (p *Program) Stats() (funcs, files, instrs int) {
	return len(p.Funcs), len(p.Files), len(p.Arena)
}
