// Package vulnmodel builds UChecker's per-sink vulnerability model
// (Section III-C of the paper).
//
// A sink invocation move_uploaded_file(e_src, e_dst) — or
// file_put_contents(e_dst, e_src) — is exploitable on a path when three
// conditions hold simultaneously:
//
//	Constraint-1  e_src is tainted by $_FILES (a heap-graph path exists
//	              from the source object to the $_FILES object);
//	Constraint-2  e_dst can end with an executable extension
//	              ((str.suffixof ".php" trl(se_dst)));
//	Constraint-3  the path's reachability constraint is satisfiable
//	              (trl(se_reachability)).
//
// Constraint-1 is decided structurally here; Constraints 2 and 3 are
// emitted as one conjoined SMT term for the solver.
package vulnmodel

import (
	"repro/internal/heapgraph"
	"repro/internal/sexpr"
	"repro/internal/smt"
	"repro/internal/translate"
)

// DefaultExtensions is the paper's executable-extension list. Section VI
// notes variants (".asa", ".swf", ".phtml") are covered by extending it.
var DefaultExtensions = []string{".php", ".php5"}

// Candidate is the vulnerability model of one sink invocation on one path.
type Candidate struct {
	// Sink is the sink function name.
	Sink string
	// File and Line locate the call in source.
	File string
	Line int

	// Tainted is Constraint-1's verdict.
	Tainted bool

	// SeDst and SeReach are the PHP-semantics s-expressions of the
	// destination name and the reachability constraint (the paper's se_dst
	// and se_reachability). SeReach is nil for unconditional paths.
	SeDst   sexpr.Expr
	SeReach sexpr.Expr

	// Extension is Constraint-2 as an SMT term; Reach is Constraint-3;
	// Combined is their conjunction, the formula handed to the solver.
	Extension *smt.Term
	Reach     *smt.Term
	Combined  *smt.Term
	// DstTerm is the translated destination path; evaluating it under a
	// satisfying model yields the concrete server path the exploit writes.
	DstTerm *smt.Term

	// Lines are the source lines of every heap-graph object contributing
	// to the destination or the reachability constraint — the
	// source-code-level feedback the paper's AST-based design enables.
	Lines []int
}

// Sink describes a recorded sink invocation, decoupled from the
// interpreter's type to avoid an import cycle.
type Sink struct {
	Name string
	File string
	Line int
	Src  heapgraph.Label
	Dst  heapgraph.Label
	Cur  heapgraph.Label // reachability constraint object (Null = always)
}

// Model builds the candidate for one sink on one path. tr must be a
// translator over the same heap graph; sharing one translator across the
// sinks of an application keeps fallback symbols stable.
func Model(g *heapgraph.Graph, tr *translate.Translator, s Sink, extensions []string) Candidate {
	if len(extensions) == 0 {
		extensions = DefaultExtensions
	}
	c := Candidate{
		Sink: s.Name,
		File: s.File,
		Line: s.Line,
	}

	// Constraint-1: taint.
	c.Tainted = s.Src != heapgraph.Null && g.ReachesName(s.Src, "$_FILES")

	// PHP-level s-expressions (for reports and tests).
	c.SeDst = g.ToSexpr(s.Dst)
	if s.Cur != heapgraph.Null {
		c.SeReach = g.ToSexpr(s.Cur)
	}

	// Constraint-2: the destination ends with an executable extension.
	// Construction routes through the translator's factory (nil-safe), so
	// sinks sharing a destination — and every sink of a root sharing the
	// same extension list — produce pointer-equal constraint terms the
	// solver's memo tables key on.
	f := tr.Factory()
	dst := tr.Label(s.Dst, smt.SortString)
	c.DstTerm = dst
	var opts []*smt.Term
	for _, ext := range extensions {
		opts = append(opts, f.SuffixOf(f.Str(ext), dst))
	}
	c.Extension = f.Or(opts...)

	// Constraint-3: path reachability.
	if s.Cur != heapgraph.Null {
		c.Reach = tr.Label(s.Cur, smt.SortBool)
	} else {
		c.Reach = smt.True()
	}

	c.Combined = f.And(c.Extension, c.Reach)

	// Source lines involved in either constraint.
	seen := map[int]bool{}
	for _, ln := range g.Lines(s.Dst) {
		seen[ln] = true
	}
	for _, ln := range g.Lines(s.Cur) {
		seen[ln] = true
	}
	seen[s.Line] = true
	for ln := range seen {
		c.Lines = append(c.Lines, ln)
	}
	sortInts(c.Lines)
	return c
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
