package vulnmodel

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/heapgraph"
	"repro/internal/sexpr"
	"repro/internal/smt"
	"repro/internal/translate"
)

// fixture builds the heap graph of the paper's Listing 4 sink:
//
//	src  = s_tmp (tainted: edge to $_FILES)
//	dst  = s_path . "/" . (s_name . s_ext)
//	cur  = (> (strlen (. s_name s_ext)) 5)
type fixture struct {
	g    *heapgraph.Graph
	src  heapgraph.Label
	dst  heapgraph.Label
	cur  heapgraph.Label
	tr   *translate.Translator
	name heapgraph.Label
}

func listing4Fixture() fixture {
	g := heapgraph.New()
	files := g.NewSymbol("$_FILES", sexpr.Array, 1)

	src := g.NewSymbol("s_tmp", sexpr.String, 3)
	g.AddEdge(src, files) // taint provenance

	sPath := g.NewSymbol("s_path", sexpr.String, 2)
	sName := g.NewSymbol("s_name", sexpr.String, 3)
	g.AddEdge(sName, files)
	sExt := g.NewSymbol("s_ext", sexpr.String, 3)
	g.AddEdge(sExt, files)

	nameExt := g.NewOp(".", sexpr.String, 3)
	g.AddEdge(nameExt, sName)
	g.AddEdge(nameExt, sExt)
	slash := g.NewConcrete(sexpr.StrVal("/"), 3)
	slashName := g.NewOp(".", sexpr.String, 3)
	g.AddEdge(slashName, slash)
	g.AddEdge(slashName, nameExt)
	dst := g.NewOp(".", sexpr.String, 3)
	g.AddEdge(dst, sPath)
	g.AddEdge(dst, slashName)

	strlenOp := g.NewFunc("strlen", sexpr.Int, 4)
	g.AddEdge(strlenOp, nameExt)
	five := g.NewConcrete(sexpr.IntVal(5), 4)
	cur := g.NewOp(">", sexpr.Bool, 4)
	g.AddEdge(cur, strlenOp)
	g.AddEdge(cur, five)

	return fixture{g: g, src: src, dst: dst, cur: cur, tr: translate.New(g), name: nameExt}
}

func TestModelListing4(t *testing.T) {
	fx := listing4Fixture()
	cand := Model(fx.g, fx.tr, Sink{
		Name: "move_uploaded_file", File: "up.php", Line: 4,
		Src: fx.src, Dst: fx.dst, Cur: fx.cur,
	}, nil)

	if !cand.Tainted {
		t.Error("Constraint-1 should hold (src reaches $_FILES)")
	}
	// se_dst matches the paper's s-expression shape.
	seDst := sexpr.Format(cand.SeDst)
	if seDst != `(. s_path (. "/" (. s_name s_ext)))` {
		t.Errorf("se_dst = %s", seDst)
	}
	seReach := sexpr.Format(cand.SeReach)
	if seReach != "(> (strlen (. s_name s_ext)) 5)" {
		t.Errorf("se_reach = %s", seReach)
	}
	// The combined constraint is satisfiable (the paper's verdict).
	st, model, _, err := smt.NewSolver(smt.Options{}).Check(cand.Combined)
	if err != nil || st != smt.Sat {
		t.Fatalf("status=%v err=%v", st, err)
	}
	full := model["s_path"].S + "/" + model["s_name"].S + model["s_ext"].S
	if !strings.HasSuffix(full, ".php") && !strings.HasSuffix(full, ".php5") {
		t.Errorf("witness %v does not end with an executable extension", model)
	}
	// Source lines cover the constraint-building lines plus the sink line
	// (line 1 is the $_FILES object reached through taint provenance).
	if !reflect.DeepEqual(cand.Lines, []int{1, 2, 3, 4}) {
		t.Errorf("lines = %v", cand.Lines)
	}
}

func TestModelUntaintedSource(t *testing.T) {
	fx := listing4Fixture()
	clean := fx.g.NewConcrete(sexpr.StrVal("/etc/motd"), 9)
	cand := Model(fx.g, fx.tr, Sink{
		Name: "move_uploaded_file", File: "up.php", Line: 9,
		Src: clean, Dst: fx.dst, Cur: heapgraph.Null,
	}, nil)
	if cand.Tainted {
		t.Error("constant source must not be tainted")
	}
}

func TestModelNullCurIsTrue(t *testing.T) {
	fx := listing4Fixture()
	cand := Model(fx.g, fx.tr, Sink{
		Name: "move_uploaded_file", File: "up.php", Line: 4,
		Src: fx.src, Dst: fx.dst, Cur: heapgraph.Null,
	}, nil)
	if cand.SeReach != nil {
		t.Errorf("SeReach = %v, want nil for unconditional path", cand.SeReach)
	}
	if !smt.Equal(cand.Reach, smt.True()) {
		t.Errorf("Reach = %s, want true", cand.Reach)
	}
}

func TestModelCustomExtensions(t *testing.T) {
	fx := listing4Fixture()
	cand := Model(fx.g, fx.tr, Sink{
		Name: "move_uploaded_file", File: "up.php", Line: 4,
		Src: fx.src, Dst: fx.dst, Cur: heapgraph.Null,
	}, []string{".asa"})
	// The extension constraint mentions only .asa.
	s := cand.Extension.String()
	if !strings.Contains(s, `".asa"`) || strings.Contains(s, `".php"`) {
		t.Errorf("extension constraint = %s", s)
	}
}

func TestModelDefaultExtensionsBoth(t *testing.T) {
	fx := listing4Fixture()
	cand := Model(fx.g, fx.tr, Sink{
		Name: "move_uploaded_file", File: "up.php", Line: 4,
		Src: fx.src, Dst: fx.dst, Cur: heapgraph.Null,
	}, nil)
	s := cand.Extension.String()
	if !strings.Contains(s, `".php"`) || !strings.Contains(s, `".php5"`) {
		t.Errorf("default extensions = %s", s)
	}
}

// Sharing the translator across two sinks keeps fallback symbols stable:
// the same opaque object translates to the same symbol in both candidates.
func TestModelTranslatorSharing(t *testing.T) {
	fx := listing4Fixture()
	opaque := fx.g.NewFunc("mystery", sexpr.String, 7)
	dst2 := fx.g.NewOp(".", sexpr.String, 7)
	fx.g.AddEdge(dst2, opaque)
	fx.g.AddEdge(dst2, fx.name)

	c1 := Model(fx.g, fx.tr, Sink{Name: "copy", File: "a.php", Line: 7, Src: fx.src, Dst: dst2, Cur: heapgraph.Null}, nil)
	c2 := Model(fx.g, fx.tr, Sink{Name: "copy", File: "a.php", Line: 7, Src: fx.src, Dst: dst2, Cur: heapgraph.Null}, nil)
	if c1.Extension.String() != c2.Extension.String() {
		t.Errorf("translator not stable:\n%s\n%s", c1.Extension, c2.Extension)
	}
}

func TestModelUnsatWhenConstantSafeSuffix(t *testing.T) {
	g := heapgraph.New()
	files := g.NewSymbol("$_FILES", sexpr.Array, 1)
	src := g.NewSymbol("s_tmp", sexpr.String, 1)
	g.AddEdge(src, files)
	name := g.NewSymbol("s_hash", sexpr.String, 2)
	png := g.NewConcrete(sexpr.StrVal(".png"), 2)
	dst := g.NewOp(".", sexpr.String, 2)
	g.AddEdge(dst, name)
	g.AddEdge(dst, png)

	cand := Model(g, translate.New(g), Sink{
		Name: "move_uploaded_file", File: "s.php", Line: 2,
		Src: src, Dst: dst, Cur: heapgraph.Null,
	}, nil)
	st, _, _, err := smt.NewSolver(smt.Options{}).Check(cand.Combined)
	if err != nil || st != smt.Unsat {
		t.Errorf("status=%v err=%v, want unsat", st, err)
	}
}
