package smt

import (
	"math/rand"
	"testing"
)

// This file cross-checks the hash-consing factory against the direct
// (package-constructor) pipeline: interned and un-interned construction
// must agree on structure, evaluation, simplification, solver verdicts,
// and — because the scanner's determinism guarantee depends on it — on
// the solver's work counters, node for node and pass for pass.

// genTerm builds a random boolean formula through the given factory. A
// nil factory exercises the direct-allocation fallback; the same seed
// therefore yields structurally identical formulas for any factory.
type factoryGen struct {
	r *rand.Rand
	f *Factory
}

func (g *factoryGen) strExpr(depth int) *Term {
	switch g.r.Intn(4) {
	case 0:
		return g.f.Var("s1", SortString)
	case 1:
		return g.f.Var("s2", SortString)
	case 2:
		return g.f.Str(diffStrPool[g.r.Intn(len(diffStrPool))])
	default:
		if depth <= 0 {
			return g.f.Str(diffStrPool[g.r.Intn(len(diffStrPool))])
		}
		return g.f.Concat(g.strExpr(depth-1), g.strExpr(depth-1))
	}
}

func (g *factoryGen) intExpr(depth int) *Term {
	switch g.r.Intn(4) {
	case 0:
		return g.f.Var("n", SortInt)
	case 1:
		return g.f.Int(diffIntPool[g.r.Intn(len(diffIntPool))])
	case 2:
		return g.f.Len(g.strExpr(depth - 1))
	default:
		if depth <= 0 {
			return g.f.Int(diffIntPool[g.r.Intn(len(diffIntPool))])
		}
		return g.f.Add(g.intExpr(depth-1), g.intExpr(depth-1))
	}
}

func (g *factoryGen) atom(depth int) *Term {
	switch g.r.Intn(6) {
	case 0:
		return g.f.Eq(g.strExpr(depth), g.strExpr(depth))
	case 1:
		return g.f.SuffixOf(g.strExpr(depth), g.strExpr(depth))
	case 2:
		return g.f.PrefixOf(g.strExpr(depth), g.strExpr(depth))
	case 3:
		return g.f.Contains(g.strExpr(depth), g.strExpr(depth))
	case 4:
		return g.f.Gt(g.intExpr(depth), g.intExpr(depth))
	default:
		return g.f.Le(g.intExpr(depth), g.intExpr(depth))
	}
}

func (g *factoryGen) boolExpr(depth int) *Term {
	if depth <= 0 {
		return g.atom(1)
	}
	switch g.r.Intn(4) {
	case 0:
		return g.f.And(g.boolExpr(depth-1), g.boolExpr(depth-1))
	case 1:
		return g.f.Or(g.boolExpr(depth-1), g.boolExpr(depth-1))
	case 2:
		return g.f.Not(g.boolExpr(depth - 1))
	default:
		return g.atom(2)
	}
}

// allModels enumerates the pool domain for (s1, s2, n).
func allModels() []Model {
	var out []Model
	for _, s1 := range diffStrPool {
		for _, s2 := range diffStrPool {
			for _, n := range diffIntPool {
				out = append(out, Model{
					"s1": StrValue(s1),
					"s2": StrValue(s2),
					"n":  IntValue(n),
				})
			}
		}
	}
	return out
}

// checkEquivalent asserts that the direct and interned builds of one
// formula agree on structure, evaluation, simplification, and solver
// behaviour (verdict, model, and every work counter).
func checkEquivalent(t *testing.T, direct, interned *Term) {
	t.Helper()
	if !Equal(direct, interned) {
		t.Fatalf("structural mismatch:\n direct   %s\n interned %s", direct, interned)
	}
	// Evaluation parity under every pool model.
	for _, m := range allModels() {
		dv, derr := Eval(direct, m)
		iv, ierr := Eval(interned, m)
		if (derr == nil) != (ierr == nil) || (derr == nil && dv != iv) {
			t.Fatalf("eval mismatch under %v: direct (%v,%v) interned (%v,%v) on %s",
				m, dv, derr, iv, ierr, direct)
		}
	}
	// Simplification parity: fixpoint forms are structurally equal, and
	// the memoized path replays the same rewrite count.
	var dst, ist Stats
	ds := (*Factory)(nil).simplifyCounted(direct, &dst)
	fi := NewFactory()
	is := fi.simplifyCounted(fi.Intern(interned), &ist)
	if !Equal(ds, is) {
		t.Fatalf("simplify mismatch:\n direct   %s\n interned %s", ds, is)
	}
	if dst.Rewrites != ist.Rewrites {
		t.Fatalf("simplify rewrite-count mismatch: direct %d interned %d on %s",
			dst.Rewrites, ist.Rewrites, direct)
	}
	var rst Stats
	fi.simplifyCounted(fi.Intern(interned), &rst)
	if rst.Rewrites != ist.Rewrites {
		t.Fatalf("memo replay changed rewrite count: first %d replay %d", ist.Rewrites, rst.Rewrites)
	}
	// Solver parity: verdict, witness, and all work counters.
	dsol := NewSolver(Options{})
	isol := NewSolverWithFactory(Options{}, NewFactory())
	dStatus, dModel, dStats, dErr := dsol.Check(direct)
	iStatus, iModel, iStats, iErr := isol.Check(interned)
	if dStatus != iStatus || (dErr == nil) != (iErr == nil) {
		t.Fatalf("solver verdict mismatch: direct (%v,%v) interned (%v,%v) on %s",
			dStatus, dErr, iStatus, iErr, direct)
	}
	if dStats != iStats {
		t.Fatalf("solver stats mismatch: direct %+v interned %+v on %s", dStats, iStats, direct)
	}
	if len(dModel) != len(iModel) {
		t.Fatalf("model size mismatch: %v vs %v", dModel, iModel)
	}
	for k, v := range dModel {
		if iModel[k] != v {
			t.Fatalf("model mismatch at %s: %v vs %v", k, v, iModel[k])
		}
	}
}

// TestFactoryDifferential is the interned-vs-uninterned equivalence
// suite: the same random construction sequence run through a nil factory
// (direct allocation) and a real factory must be indistinguishable
// end-to-end.
func TestFactoryDifferential(t *testing.T) {
	const rounds = 300
	for i := 0; i < rounds; i++ {
		seed := int64(9000 + i)
		direct := (&factoryGen{r: rand.New(rand.NewSource(seed)), f: nil}).boolExpr(3)
		interned := (&factoryGen{r: rand.New(rand.NewSource(seed)), f: NewFactory()}).boolExpr(3)
		checkEquivalent(t, direct, interned)
	}
}

// TestFactoryInterning: identical construction through one factory yields
// pointer-identical terms, and the hit/miss counters record it.
func TestFactoryInterning(t *testing.T) {
	f := NewFactory()
	build := func() *Term {
		return f.And(
			f.SuffixOf(f.Str(".php"), f.Var("dst", SortString)),
			f.Not(f.Eq(f.Var("s", SortString), f.Str(""))),
		)
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("interned duplicate construction not pointer-equal: %p vs %p", a, b)
	}
	st := f.Stats()
	if st.InternMisses == 0 || st.InternHits == 0 {
		t.Fatalf("expected both hits and misses, got %+v", st)
	}
	// The second build is answered entirely from the table.
	if st.InternHits < st.InternMisses {
		t.Fatalf("second build should be all hits: %+v", st)
	}
	// A structurally equal foreign tree interns to the same pointer.
	foreign := And(
		SuffixOf(Str(".php"), Var("dst", SortString)),
		Not(Eq(Var("s", SortString), Str(""))),
	)
	if f.Intern(foreign) != a {
		t.Fatal("Intern of structurally equal foreign tree is not canonical")
	}
	// Interning an already-canonical root is identity.
	if f.Intern(a) != a {
		t.Fatal("Intern of canonical term is not identity")
	}
}

// TestFactoryNilSafe: every constructor and inspection method works on a
// nil receiver and matches the package-level functions.
func TestFactoryNilSafe(t *testing.T) {
	var f *Factory
	a := f.And(f.Eq(f.Var("x", SortString), f.Str("a")), f.Gt(f.Len(f.Var("x", SortString)), f.Int(0)))
	b := And(Eq(Var("x", SortString), Str("a")), Gt(Len(Var("x", SortString)), Int(0)))
	if !Equal(a, b) {
		t.Fatalf("nil-factory construction differs: %s vs %s", a, b)
	}
	if f.Size(a) != Size(a) {
		t.Fatalf("nil-factory Size %d != %d", f.Size(a), Size(a))
	}
	if got, want := f.Vars(a), Vars(a); len(got) != len(want) {
		t.Fatalf("nil-factory Vars %v != %v", got, want)
	}
	if st := f.Stats(); st != (FactoryStats{}) {
		t.Fatalf("nil-factory stats non-zero: %+v", st)
	}
	if f.Intern(a) != a {
		t.Fatal("nil-factory Intern is not identity")
	}
	if f.True() != True() || f.False() != False() {
		t.Fatal("nil-factory booleans differ")
	}
	// Arity normalization matches the package constructors.
	if f.And() != True() || f.Or() != False() {
		t.Fatal("empty And/Or normalization differs")
	}
	x := f.Var("x", SortString)
	if f.And(x) != x || f.Or(x) != x || f.Concat(x) != x || f.Add(x) != x || f.Mul(x) != x {
		t.Fatal("unary normalization differs")
	}
}

// TestFactoryVarsMemoOrder: the memoized Vars preserves the package
// function's DFS first-occurrence order on shared structure.
func TestFactoryVarsMemoOrder(t *testing.T) {
	f := NewFactory()
	shared := f.Eq(f.Var("b", SortString), f.Var("a", SortString))
	top := f.And(shared, f.Eq(f.Var("a", SortString), f.Var("c", SortString)), shared)
	got := f.Vars(top)
	want := Vars(top)
	if len(got) != len(want) {
		t.Fatalf("Vars length %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i].S != want[i].S {
			t.Fatalf("Vars order differs at %d: %s != %s (got %v want %v)", i, got[i].S, want[i].S, got, want)
		}
	}
	// Second query is a memo hit returning the same slice.
	again := f.Vars(top)
	if len(again) != len(got) {
		t.Fatal("memoized Vars changed")
	}
}

// TestFactoryVarargsNodes exercises the >3-ary intern-key encoding.
func TestFactoryVarargsNodes(t *testing.T) {
	f := NewFactory()
	mk := func() *Term {
		return f.Or(
			f.Eq(f.Var("x", SortString), f.Str("a")),
			f.Eq(f.Var("x", SortString), f.Str("b")),
			f.Eq(f.Var("x", SortString), f.Str("c")),
			f.Eq(f.Var("x", SortString), f.Str("d")),
			f.Eq(f.Var("x", SortString), f.Str("e")),
		)
	}
	if mk() != mk() {
		t.Fatal("5-ary Or not interned")
	}
	// A different 5th disjunct must not collide.
	other := f.Or(
		f.Eq(f.Var("x", SortString), f.Str("a")),
		f.Eq(f.Var("x", SortString), f.Str("b")),
		f.Eq(f.Var("x", SortString), f.Str("c")),
		f.Eq(f.Var("x", SortString), f.Str("d")),
		f.Eq(f.Var("x", SortString), f.Str("f")),
	)
	if other == mk() {
		t.Fatal("distinct 5-ary terms collided in the intern table")
	}
}

// FuzzFactoryEquivalence drives the differential check from fuzzed
// (seed, depth) pairs.
func FuzzFactoryEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(2))
	f.Add(int64(20260806), uint8(3))
	f.Add(int64(-77), uint8(4))
	f.Add(int64(424242), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, depth uint8) {
		d := int(depth % 4)
		direct := (&factoryGen{r: rand.New(rand.NewSource(seed)), f: nil}).boolExpr(d)
		interned := (&factoryGen{r: rand.New(rand.NewSource(seed)), f: NewFactory()}).boolExpr(d)
		if !Equal(direct, interned) {
			t.Fatalf("structural mismatch:\n direct   %s\n interned %s", direct, interned)
		}
		// Evaluation parity under a few models drawn from the same seed.
		r := rand.New(rand.NewSource(seed ^ 0x5eed))
		for i := 0; i < 8; i++ {
			m := Model{
				"s1": StrValue(diffStrPool[r.Intn(len(diffStrPool))]),
				"s2": StrValue(diffStrPool[r.Intn(len(diffStrPool))]),
				"n":  IntValue(diffIntPool[r.Intn(len(diffIntPool))]),
			}
			dv, derr := Eval(direct, m)
			iv, ierr := Eval(interned, m)
			if (derr == nil) != (ierr == nil) || (derr == nil && dv != iv) {
				t.Fatalf("eval mismatch under %v", m)
			}
		}
		// Simplification fixpoints agree.
		fi := NewFactory()
		if !Equal(Simplify(direct), fi.Simplify(fi.Intern(interned))) {
			t.Fatal("simplify fixpoint mismatch")
		}
	})
}
