package smt

import "encoding/binary"

// Factory is a hash-consing term constructor: every term built through a
// Factory is interned, so structurally equal terms constructed from
// already-interned operands are pointer-equal. Pointer identity then makes
// three families of memoization sound and cheap:
//
//   - Simplify results (one-pass and fixpoint) are cached per node, so the
//     path-condition prefix shared by sibling paths is rewritten once
//     instead of once per path, per degradation rung, per sink.
//   - Free-variable sets and node counts are cached per node (hot in the
//     solver's model verification loop).
//   - Candidate pools are cached per (conjunction, options) pair, so the
//     three-constraint staging and sinks sharing a path prefix re-seed
//     nothing.
//
// A nil *Factory is valid and means "no interning": every constructor
// method on a nil receiver falls back to direct allocation with semantics
// identical to the package-level constructors. This is the ablation path
// behind Options.DisableIntern / -no-intern.
//
// Lifetime and determinism: a Factory is NOT safe for concurrent use. The
// scanner creates one Factory per root attempt and uses it from a single
// goroutine; because each root's constraint construction order is
// deterministic, the Factory's counters are byte-identical across worker
// counts once merged in canonical root order.
//
// Memoization soundness: terms are immutable after construction and every
// cached computation (simplify1, fixpoint simplification, Vars, Size,
// candidate pools) is a pure function of term structure, so pointer-keyed
// memo hits can never change results — interning only makes hits likely.
type Factory struct {
	table  map[internKey]*Term
	ids    map[*Term]uint64
	nextID uint64
	stats  FactoryStats

	// internMemo caches Intern results for foreign (non-canonical) roots
	// and maps canonical terms to themselves.
	internMemo map[*Term]*Term

	varsMemo  map[*Term][]*Term
	sizeMemo  map[*Term]int
	simp1Memo map[*Term]*Term
	fixMemo   map[*Term]*Term
	fixCost   map[*Term]int
	poolMemo  map[poolCacheKey]*candidatePool
	nnfMemo   map[nnfKey]*Term
	dnfMemo   map[dnfKey]dnfResult
	substMemo map[substKey]*Term
}

// nnfKey memoizes NNF conversion per (node, polarity).
type nnfKey struct {
	t   *Term
	neg bool
}

// dnfKey / dnfResult memoize whole DNF expansions per (root, budget).
type dnfKey struct {
	t        *Term
	maxCubes int
}

type dnfResult struct {
	cubes [][]*Term
	ok    bool
}

// FactoryStats counts the structural-sharing work a Factory performed.
// All fields are deterministic for a fixed construction order.
type FactoryStats struct {
	// InternHits counts constructor calls answered from the intern table.
	InternHits int64
	// InternMisses counts constructor calls that allocated a new node.
	InternMisses int64
	// SimplifyMemoHits counts simplification queries (one-pass or
	// fixpoint) answered from the per-node memo tables.
	SimplifyMemoHits int64
	// IncrementalReuse counts solver-session assertions whose simplified
	// form was already available from earlier incremental work (see
	// Session.Assert).
	IncrementalReuse int64
}

// internKey identifies a term up to structural equality, given that all
// argument pointers are canonical (interned). Arguments beyond the third
// are folded into rest as little-endian ids so the common small arities
// stay allocation-free.
type internKey struct {
	op         Op
	sort       Sort
	b          bool
	i          int64
	s          string
	nargs      int
	a0, a1, a2 uint64
	rest       string
}

type poolCacheKey struct {
	conj *Term
	opts Options
}

// NewFactory returns an empty hash-consing factory.
func NewFactory() *Factory {
	return &Factory{
		table:      make(map[internKey]*Term),
		ids:        make(map[*Term]uint64),
		internMemo: make(map[*Term]*Term),
		varsMemo:   make(map[*Term][]*Term),
		sizeMemo:   make(map[*Term]int),
		simp1Memo:  make(map[*Term]*Term),
		fixMemo:    make(map[*Term]*Term),
		fixCost:    make(map[*Term]int),
		poolMemo:   make(map[poolCacheKey]*candidatePool),
		nnfMemo:    make(map[nnfKey]*Term),
		dnfMemo:    make(map[dnfKey]dnfResult),
		substMemo:  make(map[substKey]*Term),
	}
}

// Stats returns a snapshot of the factory's counters. Safe on nil (all
// zeros).
func (f *Factory) Stats() FactoryStats {
	if f == nil {
		return FactoryStats{}
	}
	return f.stats
}

// id returns a stable small identifier for a term pointer, assigning one
// on first use. Identifiers order by first appearance, so key encoding is
// deterministic for a fixed construction order.
func (f *Factory) id(t *Term) uint64 {
	if t == nil {
		return 0
	}
	if v, ok := f.ids[t]; ok {
		return v
	}
	f.nextID++
	f.ids[t] = f.nextID
	return f.nextID
}

// mk is the interning constructor every factory builder funnels through.
// On a nil receiver it allocates directly, matching the package-level
// constructors byte for byte. The args slice is retained by the returned
// term; callers must not mutate it afterwards (the same contract the
// package constructors already have).
func (f *Factory) mk(op Op, sort Sort, b bool, i int64, s string, args []*Term) *Term {
	if f == nil {
		return &Term{Op: op, sort: sort, B: b, I: i, S: s, Args: args}
	}
	k := internKey{op: op, sort: sort, b: b, i: i, s: s, nargs: len(args)}
	switch len(args) {
	case 0:
	case 1:
		k.a0 = f.id(args[0])
	case 2:
		k.a0, k.a1 = f.id(args[0]), f.id(args[1])
	case 3:
		k.a0, k.a1, k.a2 = f.id(args[0]), f.id(args[1]), f.id(args[2])
	default:
		k.a0, k.a1, k.a2 = f.id(args[0]), f.id(args[1]), f.id(args[2])
		buf := make([]byte, 8*(len(args)-3))
		for j, a := range args[3:] {
			binary.LittleEndian.PutUint64(buf[8*j:], f.id(a))
		}
		k.rest = string(buf)
	}
	if t, ok := f.table[k]; ok {
		f.stats.InternHits++
		return t
	}
	f.stats.InternMisses++
	t := &Term{Op: op, sort: sort, B: b, I: i, S: s, Args: args}
	f.table[k] = t
	f.internMemo[t] = t
	return t
}

// Intern canonicalizes an externally built term tree into the factory,
// returning a structurally equal term whose every node is interned.
// Already-canonical terms are returned unchanged (and, for roots the
// factory has seen, in O(1)). Safe on nil (identity).
func (f *Factory) Intern(t *Term) *Term {
	if f == nil || t == nil {
		return t
	}
	if r, ok := f.internMemo[t]; ok {
		return r
	}
	var r *Term
	if len(t.Args) == 0 {
		r = f.mk(t.Op, t.sort, t.B, t.I, t.S, nil)
	} else {
		args := make([]*Term, len(t.Args))
		same := true
		for i, a := range t.Args {
			args[i] = f.Intern(a)
			if args[i] != a {
				same = false
			}
		}
		if same {
			r = f.mk(t.Op, t.sort, t.B, t.I, t.S, t.Args)
		} else {
			r = f.mk(t.Op, t.sort, t.B, t.I, t.S, args)
		}
	}
	f.internMemo[t] = r
	return r
}

// --- constructor methods (nil-safe, mirroring the package constructors) ---

// True returns the true constant.
func (f *Factory) True() *Term { return trueTerm }

// False returns the false constant.
func (f *Factory) False() *Term { return falseTerm }

// Bool returns a boolean constant.
func (f *Factory) Bool(b bool) *Term { return Bool(b) }

// Int returns an interned integer constant.
func (f *Factory) Int(v int64) *Term { return f.mk(OpIntConst, SortInt, false, v, "", nil) }

// Str returns an interned string constant.
func (f *Factory) Str(s string) *Term { return f.mk(OpStrConst, SortString, false, 0, s, nil) }

// Var returns an interned variable of the given sort.
func (f *Factory) Var(name string, sort Sort) *Term {
	return f.mk(OpVar, sort, false, 0, name, nil)
}

// Not negates a boolean term.
func (f *Factory) Not(t *Term) *Term {
	return f.mk(OpNot, SortBool, false, 0, "", []*Term{t})
}

// And conjoins boolean terms. And() is true.
func (f *Factory) And(ts ...*Term) *Term {
	switch len(ts) {
	case 0:
		return trueTerm
	case 1:
		return ts[0]
	}
	return f.mk(OpAnd, SortBool, false, 0, "", ts)
}

// Or disjoins boolean terms. Or() is false.
func (f *Factory) Or(ts ...*Term) *Term {
	switch len(ts) {
	case 0:
		return falseTerm
	case 1:
		return ts[0]
	}
	return f.mk(OpOr, SortBool, false, 0, "", ts)
}

// Eq builds equality between two terms of the same sort.
func (f *Factory) Eq(a, b *Term) *Term {
	return f.mk(OpEq, SortBool, false, 0, "", []*Term{a, b})
}

// Ite builds if-then-else.
func (f *Factory) Ite(c, a, b *Term) *Term {
	return f.mk(OpIte, a.sort, false, 0, "", []*Term{c, a, b})
}

// Add sums integer terms.
func (f *Factory) Add(ts ...*Term) *Term {
	if len(ts) == 1 {
		return ts[0]
	}
	return f.mk(OpAdd, SortInt, false, 0, "", ts)
}

// Sub subtracts b from a.
func (f *Factory) Sub(a, b *Term) *Term {
	return f.mk(OpSub, SortInt, false, 0, "", []*Term{a, b})
}

// Mul multiplies integer terms.
func (f *Factory) Mul(ts ...*Term) *Term {
	if len(ts) == 1 {
		return ts[0]
	}
	return f.mk(OpMul, SortInt, false, 0, "", ts)
}

// Neg negates an integer term.
func (f *Factory) Neg(a *Term) *Term {
	return f.mk(OpNeg, SortInt, false, 0, "", []*Term{a})
}

// Lt is a < b.
func (f *Factory) Lt(a, b *Term) *Term {
	return f.mk(OpLt, SortBool, false, 0, "", []*Term{a, b})
}

// Le is a <= b.
func (f *Factory) Le(a, b *Term) *Term {
	return f.mk(OpLe, SortBool, false, 0, "", []*Term{a, b})
}

// Gt is a > b.
func (f *Factory) Gt(a, b *Term) *Term {
	return f.mk(OpGt, SortBool, false, 0, "", []*Term{a, b})
}

// Ge is a >= b.
func (f *Factory) Ge(a, b *Term) *Term {
	return f.mk(OpGe, SortBool, false, 0, "", []*Term{a, b})
}

// Concat concatenates string terms. Concat() is "".
func (f *Factory) Concat(ts ...*Term) *Term {
	switch len(ts) {
	case 0:
		return f.Str("")
	case 1:
		return ts[0]
	}
	return f.mk(OpConcat, SortString, false, 0, "", ts)
}

// Len is str.len.
func (f *Factory) Len(s *Term) *Term {
	return f.mk(OpLen, SortInt, false, 0, "", []*Term{s})
}

// SuffixOf is str.suffixof: does s end with suffix?
func (f *Factory) SuffixOf(suffix, s *Term) *Term {
	return f.mk(OpSuffixOf, SortBool, false, 0, "", []*Term{suffix, s})
}

// PrefixOf is str.prefixof: does s start with prefix?
func (f *Factory) PrefixOf(prefix, s *Term) *Term {
	return f.mk(OpPrefixOf, SortBool, false, 0, "", []*Term{prefix, s})
}

// Contains is str.contains: does s contain sub?
func (f *Factory) Contains(s, sub *Term) *Term {
	return f.mk(OpContains, SortBool, false, 0, "", []*Term{s, sub})
}

// IndexOf is str.indexof s sub from.
func (f *Factory) IndexOf(s, sub, from *Term) *Term {
	return f.mk(OpIndexOf, SortInt, false, 0, "", []*Term{s, sub, from})
}

// Replace is str.replace s old new (first occurrence only, per SMT-LIB).
func (f *Factory) Replace(s, old, new *Term) *Term {
	return f.mk(OpReplace, SortString, false, 0, "", []*Term{s, old, new})
}

// Substr is str.substr s off len.
func (f *Factory) Substr(s, off, length *Term) *Term {
	return f.mk(OpSubstr, SortString, false, 0, "", []*Term{s, off, length})
}

// ToInt is str.to.int.
func (f *Factory) ToInt(s *Term) *Term {
	return f.mk(OpToInt, SortInt, false, 0, "", []*Term{s})
}

// FromInt is str.from.int.
func (f *Factory) FromInt(i *Term) *Term {
	return f.mk(OpFromInt, SortString, false, 0, "", []*Term{i})
}

// At is str.at.
func (f *Factory) At(s, i *Term) *Term {
	return f.mk(OpAt, SortString, false, 0, "", []*Term{s, i})
}

// --- memoized inspection ---

// Vars returns the distinct variables of t in first-occurrence order,
// exactly like the package-level Vars, memoized per node. The returned
// slice is shared across calls and must not be mutated. Safe on nil
// (delegates to Vars).
func (f *Factory) Vars(t *Term) []*Term {
	if f == nil {
		return Vars(t)
	}
	return f.varsRec(t)
}

func (f *Factory) varsRec(t *Term) []*Term {
	if t == nil {
		return nil
	}
	if v, ok := f.varsMemo[t]; ok {
		return v
	}
	var out []*Term
	switch {
	case t.Op == OpVar:
		out = []*Term{t}
	case len(t.Args) == 1:
		out = f.varsRec(t.Args[0])
	case len(t.Args) > 1:
		// Ordered union of the children's ordered lists preserves DFS
		// first-occurrence order.
		seen := make(map[string]bool)
		for _, a := range t.Args {
			for _, v := range f.varsRec(a) {
				if !seen[v.S] {
					seen[v.S] = true
					out = append(out, v)
				}
			}
		}
	}
	f.varsMemo[t] = out
	return out
}

// Size returns the tree node count of t (counting shared subterms once
// per occurrence, exactly like the package-level Size), memoized per
// node. Safe on nil (delegates to Size).
func (f *Factory) Size(t *Term) int {
	if f == nil {
		return Size(t)
	}
	if t == nil {
		return 0
	}
	if n, ok := f.sizeMemo[t]; ok {
		return n
	}
	n := 1
	for _, a := range t.Args {
		n += f.Size(a)
	}
	f.sizeMemo[t] = n
	return n
}
