package smt

import (
	"testing"
	"testing/quick"
)

func evalOK(t *testing.T, term *Term, m Model) Value {
	t.Helper()
	v, err := Eval(term, m)
	if err != nil {
		t.Fatalf("Eval(%s) error: %v", term, err)
	}
	return v
}

func TestEvalConstants(t *testing.T) {
	if v := evalOK(t, True(), nil); !v.B {
		t.Error("true != true")
	}
	if v := evalOK(t, Int(-5), nil); v.I != -5 {
		t.Errorf("int = %d", v.I)
	}
	if v := evalOK(t, Str("x"), nil); v.S != "x" {
		t.Errorf("str = %q", v.S)
	}
}

func TestEvalVariables(t *testing.T) {
	m := Model{"x": IntValue(7), "s": StrValue("hi"), "b": BoolValue(true)}
	if v := evalOK(t, Var("x", SortInt), m); v.I != 7 {
		t.Errorf("x = %d", v.I)
	}
	if _, err := Eval(Var("missing", SortInt), m); err == nil {
		t.Error("expected unbound-variable error")
	}
	if _, err := Eval(Var("s", SortInt), m); err == nil {
		t.Error("expected sort-mismatch error")
	}
}

func TestEvalBooleanOps(t *testing.T) {
	tests := []struct {
		name string
		term *Term
		want bool
	}{
		{"not", Not(False()), true},
		{"and tt", And(True(), True()), true},
		{"and tf", And(True(), False()), false},
		{"or ff", Or(False(), False()), false},
		{"or ft", Or(False(), True()), true},
		{"eq int", Eq(Int(3), Int(3)), true},
		{"eq str", Eq(Str("a"), Str("b")), false},
		{"eq bool", Eq(True(), True()), true},
		{"ite", Eq(Ite(True(), Int(1), Int(2)), Int(1)), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if v := evalOK(t, tt.term, nil); v.B != tt.want {
				t.Errorf("= %v, want %v", v.B, tt.want)
			}
		})
	}
}

func TestEvalArithmetic(t *testing.T) {
	tests := []struct {
		name string
		term *Term
		want int64
	}{
		{"add", Add(Int(1), Int(2), Int(3)), 6},
		{"sub", Sub(Int(10), Int(4)), 6},
		{"mul", Mul(Int(3), Int(-2)), -6},
		{"neg", Neg(Int(5)), -5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if v := evalOK(t, tt.term, nil); v.I != tt.want {
				t.Errorf("= %d, want %d", v.I, tt.want)
			}
		})
	}
}

func TestEvalComparisons(t *testing.T) {
	tests := []struct {
		term *Term
		want bool
	}{
		{Lt(Int(1), Int(2)), true},
		{Lt(Int(2), Int(2)), false},
		{Le(Int(2), Int(2)), true},
		{Gt(Int(3), Int(2)), true},
		{Ge(Int(1), Int(2)), false},
	}
	for _, tt := range tests {
		if v := evalOK(t, tt.term, nil); v.B != tt.want {
			t.Errorf("%s = %v, want %v", tt.term, v.B, tt.want)
		}
	}
}

func TestEvalStringOps(t *testing.T) {
	tests := []struct {
		name string
		term *Term
		want Value
	}{
		{"concat", Concat(Str("a"), Str("b"), Str("c")), StrValue("abc")},
		{"len", Len(Str("hello")), IntValue(5)},
		{"len empty", Len(Str("")), IntValue(0)},
		{"suffixof yes", SuffixOf(Str(".php"), Str("a.php")), BoolValue(true)},
		{"suffixof no", SuffixOf(Str(".php"), Str("a.gif")), BoolValue(false)},
		{"suffixof empty", SuffixOf(Str(""), Str("x")), BoolValue(true)},
		{"prefixof", PrefixOf(Str("ab"), Str("abc")), BoolValue(true)},
		{"contains", Contains(Str("hello"), Str("ell")), BoolValue(true)},
		{"indexof found", IndexOf(Str("hello"), Str("l"), Int(0)), IntValue(2)},
		{"indexof from", IndexOf(Str("hello"), Str("l"), Int(3)), IntValue(3)},
		{"indexof missing", IndexOf(Str("hello"), Str("z"), Int(0)), IntValue(-1)},
		{"indexof neg from", IndexOf(Str("hello"), Str("l"), Int(-1)), IntValue(-1)},
		{"indexof empty", IndexOf(Str("hi"), Str(""), Int(1)), IntValue(1)},
		{"replace", Replace(Str("a.b.c"), Str("."), Str("-")), StrValue("a-b.c")},
		{"replace missing", Replace(Str("abc"), Str("z"), Str("-")), StrValue("abc")},
		{"replace empty old", Replace(Str("abc"), Str(""), Str("X")), StrValue("Xabc")},
		{"substr", Substr(Str("hello"), Int(1), Int(3)), StrValue("ell")},
		{"substr overrun", Substr(Str("hi"), Int(1), Int(10)), StrValue("i")},
		{"substr out of range", Substr(Str("hi"), Int(5), Int(1)), StrValue("")},
		{"substr neg len", Substr(Str("hi"), Int(0), Int(-1)), StrValue("")},
		{"to.int", ToInt(Str("42")), IntValue(42)},
		{"to.int leading zero", ToInt(Str("007")), IntValue(7)},
		{"to.int nondigit", ToInt(Str("4a")), IntValue(-1)},
		{"to.int empty", ToInt(Str("")), IntValue(-1)},
		{"to.int negative sign", ToInt(Str("-3")), IntValue(-1)},
		{"from.int", FromInt(Int(42)), StrValue("42")},
		{"from.int negative", FromInt(Int(-1)), StrValue("")},
		{"at", At(Str("abc"), Int(1)), StrValue("b")},
		{"at out of range", At(Str("abc"), Int(9)), StrValue("")},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := evalOK(t, tt.term, nil)
			if v != tt.want {
				t.Errorf("= %v, want %v", v, tt.want)
			}
		})
	}
}

// Property: concat length equals sum of part lengths.
func TestEvalConcatLenProperty(t *testing.T) {
	f := func(a, b, c string) bool {
		v := evalOK(t, Len(Concat(Str(a), Str(b), Str(c))), nil)
		return v.I == int64(len(a)+len(b)+len(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: suffixof agrees with strings.HasSuffix via concat.
func TestEvalSuffixConcatProperty(t *testing.T) {
	f := func(a, b string) bool {
		v := evalOK(t, SuffixOf(Str(b), Concat(Str(a), Str(b))), nil)
		return v.B
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: substr never panics and always returns a substring.
func TestEvalSubstrProperty(t *testing.T) {
	f := func(s string, off, length int16) bool {
		v := evalOK(t, Substr(Str(s), Int(int64(off)), Int(int64(length))), nil)
		return len(v.S) <= len(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
