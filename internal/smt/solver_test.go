package smt

import (
	"strings"
	"testing"
)

func checkSat(t *testing.T, f *Term) Model {
	t.Helper()
	s := NewSolver(Options{})
	st, m, _, err := s.Check(f)
	if err != nil {
		t.Fatalf("Check(%s) error: %v", f, err)
	}
	if st != Sat {
		t.Fatalf("Check(%s) = %v, want sat", f, st)
	}
	// Double-verify the model.
	v, err := Eval(f, m)
	if err != nil || !v.B {
		t.Fatalf("model %v does not satisfy %s (err %v)", m, f, err)
	}
	return m
}

func checkUnsat(t *testing.T, f *Term) {
	t.Helper()
	s := NewSolver(Options{})
	st, _, _, err := s.Check(f)
	if err != nil {
		t.Fatalf("Check(%s) error: %v", f, err)
	}
	if st != Unsat {
		t.Fatalf("Check(%s) = %v, want unsat", f, st)
	}
}

func TestSolverTrivial(t *testing.T) {
	checkSat(t, True())
	checkUnsat(t, False())
	checkUnsat(t, And(Var("b", SortBool), Not(Var("b", SortBool))))
	checkSat(t, Or(Var("b", SortBool), Not(Var("b", SortBool))))
}

func TestSolverBoolVars(t *testing.T) {
	a, b := Var("a", SortBool), Var("b", SortBool)
	m := checkSat(t, And(a, Not(b)))
	if !m["a"].B || m["b"].B {
		t.Errorf("model = %v", m)
	}
}

func TestSolverIntComparisons(t *testing.T) {
	x := Var("x", SortInt)
	m := checkSat(t, And(Gt(x, Int(5)), Lt(x, Int(7))))
	if m["x"].I != 6 {
		t.Errorf("x = %d, want 6", m["x"].I)
	}
	checkUnsat(t, And(Gt(x, Int(5)), Lt(x, Int(5))))
	checkUnsat(t, And(Gt(x, Int(5)), Lt(x, Int(6))))
}

func TestSolverStringEquality(t *testing.T) {
	x := Var("x", SortString)
	m := checkSat(t, Eq(x, Str("hello")))
	if m["x"].S != "hello" {
		t.Errorf("x = %q", m["x"].S)
	}
	checkUnsat(t, And(Eq(x, Str("a")), Eq(x, Str("b"))))
}

func TestSolverConcatEquation(t *testing.T) {
	x := Var("x", SortString)
	// x ++ ".php" == "shell.php"  →  x == "shell"
	m := checkSat(t, Eq(Concat(x, Str(".php")), Str("shell.php")))
	if m["x"].S != "shell" {
		t.Errorf("x = %q", m["x"].S)
	}
}

func TestSolverTwoVarConcat(t *testing.T) {
	x, y := Var("x", SortString), Var("y", SortString)
	m := checkSat(t, Eq(Concat(x, y), Str("ab")))
	if m["x"].S+m["y"].S != "ab" {
		t.Errorf("x=%q y=%q", m["x"].S, m["y"].S)
	}
}

// The paper's Constraint-2 for Listing 4:
// (str.suffixof ".php" (str.++ s_path (str.++ "/" (str.++ s_name s_ext))))
func TestSolverPaperConstraint2(t *testing.T) {
	sPath := Var("s_path", SortString)
	sName := Var("s_name", SortString)
	sExt := Var("s_ext", SortString)
	c2 := SuffixOf(Str(".php"), Concat(sPath, Str("/"), sName, sExt))
	m := checkSat(t, c2)
	full := m["s_path"].S + "/" + m["s_name"].S + m["s_ext"].S
	if !strings.HasSuffix(full, ".php") {
		t.Errorf("model %v does not end with .php", m)
	}
}

// The paper's Constraint-3 for Listing 4:
// (> (str.len (str.++ s_name s_ext)) 5)
func TestSolverPaperConstraint3(t *testing.T) {
	sName := Var("s_name", SortString)
	sExt := Var("s_ext", SortString)
	c3 := Gt(Len(Concat(sName, sExt)), Int(5))
	m := checkSat(t, c3)
	if len(m["s_name"].S)+len(m["s_ext"].S) <= 5 {
		t.Errorf("model %v too short", m)
	}
}

// Conjunction of both paper constraints must be satisfiable together
// (the vulnerable verdict for Listing 4).
func TestSolverPaperConstraintsConjoined(t *testing.T) {
	sPath := Var("s_path", SortString)
	sName := Var("s_name", SortString)
	sExt := Var("s_ext", SortString)
	c2 := SuffixOf(Str(".php"), Concat(sPath, Str("/"), sName, sExt))
	c3 := Gt(Len(Concat(sName, sExt)), Int(5))
	m := checkSat(t, And(c2, c3))
	full := m["s_path"].S + "/" + m["s_name"].S + m["s_ext"].S
	if !strings.HasSuffix(full, ".php") {
		t.Errorf("bad model %v", m)
	}
}

// A sanitized upload: extension is forced to a constant safe value, so the
// ".php" suffix requirement is unsatisfiable (benign verdict).
func TestSolverSanitizedExtensionUnsat(t *testing.T) {
	sName := Var("s_name", SortString)
	dst := Concat(Str("/uploads/"), sName, Str(".png"))
	checkUnsat(t, SuffixOf(Str(".php"), dst))
}

// WP Demo Buddy (Listing 8): guard requires ext === "zip" but the saved
// name appends a constant ".php" — still satisfiable (vulnerable).
func TestSolverDemoBuddyShape(t *testing.T) {
	ext := Var("s_ext", SortString)
	base := Var("s_base", SortString)
	guard := Eq(ext, Str("zip"))
	target := Concat(Var("s_dir", SortString), base, Str(".php"))
	f := And(guard, SuffixOf(Str(".php"), target))
	m := checkSat(t, f)
	if m["s_ext"].S != "zip" {
		t.Errorf("ext = %q", m["s_ext"].S)
	}
}

// An in_array whitelist expansion: ext must equal one of the safe image
// extensions AND the destination must end with .php where destination ends
// with "." ++ ext — unsatisfiable.
func TestSolverWhitelistUnsat(t *testing.T) {
	ext := Var("s_ext", SortString)
	whitelist := Or(Eq(ext, Str("jpg")), Eq(ext, Str("png")), Eq(ext, Str("gif")))
	dst := Concat(Var("s_name", SortString), Str("."), ext)
	checkUnsat(t, And(whitelist, SuffixOf(Str(".php"), dst)))
}

// A blacklist that forbids "php" lets "php5" through when only suffix
// ".php5" is checked (the paper's extension-variant discussion).
func TestSolverBlacklistVariantSat(t *testing.T) {
	ext := Var("s_ext", SortString)
	blacklist := Not(Eq(ext, Str("php")))
	dst := Concat(Var("s_name", SortString), Str("."), ext)
	f := And(blacklist, Or(
		SuffixOf(Str(".php"), dst),
		SuffixOf(Str(".php5"), dst),
	))
	m := checkSat(t, f)
	if m["s_ext"].S == "php" {
		t.Errorf("blacklist violated: %v", m)
	}
}

func TestSolverStrposGuard(t *testing.T) {
	// strpos($name, ".php") !== false modeled as indexof >= 0, conjoined
	// with name containing ".php": satisfiable.
	name := Var("s_name", SortString)
	f := And(
		Ge(IndexOf(name, Str(".php"), Int(0)), Int(0)),
		SuffixOf(Str(".php"), name),
	)
	m := checkSat(t, f)
	if !strings.HasSuffix(m["s_name"].S, ".php") {
		t.Errorf("model %v", m)
	}
}

func TestSolverToIntInterplay(t *testing.T) {
	s := Var("s", SortString)
	// to.int(s) == 42 needs s to be a digit string "42".
	m := checkSat(t, Eq(ToInt(s), Int(42)))
	if m["s"].S != "42" {
		t.Errorf("s = %q", m["s"].S)
	}
}

func TestSolverLengthFloor(t *testing.T) {
	s := Var("s", SortString)
	m := checkSat(t, And(Gt(Len(s), Int(5)), SuffixOf(Str(".php"), s)))
	if len(m["s"].S) <= 5 || !strings.HasSuffix(m["s"].S, ".php") {
		t.Errorf("s = %q", m["s"].S)
	}
}

func TestSolverNestedDisjunction(t *testing.T) {
	x := Var("x", SortInt)
	y := Var("y", SortString)
	f := And(
		Or(Eq(x, Int(1)), Eq(x, Int(2))),
		Or(Eq(y, Str("a")), Eq(y, Str("b"))),
		Not(And(Eq(x, Int(1)), Eq(y, Str("a")))),
	)
	m := checkSat(t, f)
	if m["x"].I == 1 && m["y"].S == "a" {
		t.Errorf("model %v violates exclusion", m)
	}
}

func TestSolverReplaceConstraint(t *testing.T) {
	// replace(s, ".php", ".txt") still ends with ".php": satisfiable when s
	// contains .php twice (replace is first-occurrence). e.g. "a.php.php".
	s := Var("s", SortString)
	f := SuffixOf(Str(".php"), Replace(s, Str(".php"), Str(".txt")))
	st, m, _, err := NewSolver(Options{}).Check(f)
	if err != nil {
		t.Fatalf("err: %v", err)
	}
	if st != Sat {
		t.Fatalf("status = %v, want sat", st)
	}
	v, _ := Eval(f, m)
	if !v.B {
		t.Errorf("unverified model %v", m)
	}
}

func TestSolverEmptyStringEdge(t *testing.T) {
	s := Var("s", SortString)
	m := checkSat(t, Eq(Len(s), Int(0)))
	if m["s"].S != "" {
		t.Errorf("s = %q", m["s"].S)
	}
	checkUnsat(t, And(Eq(Len(s), Int(0)), SuffixOf(Str("x"), s)))
}

func TestSolverUnsatConflictingSuffixes(t *testing.T) {
	s := Var("s", SortString)
	checkUnsat(t, And(
		SuffixOf(Str(".php"), s),
		SuffixOf(Str(".png"), s),
	))
}

func TestSolverStats(t *testing.T) {
	x := Var("x", SortInt)
	s := NewSolver(Options{})
	_, _, st, err := s.Check(And(Gt(x, Int(0)), Lt(x, Int(10))))
	if err != nil {
		t.Fatalf("err: %v", err)
	}
	if st.Cubes == 0 {
		t.Error("expected at least one cube")
	}
}

func TestSolverBudgetUnknown(t *testing.T) {
	// Tiny budget forces Unknown on a formula needing search.
	s := NewSolver(Options{MaxAssignments: 1})
	x := Var("x", SortString)
	y := Var("y", SortString)
	z := Var("z", SortString)
	f := And(
		Eq(Concat(x, y, z), Str("abcdef")),
		Gt(Len(x), Int(0)), Gt(Len(y), Int(0)), Gt(Len(z), Int(4)),
	)
	st, _, _, _ := s.Check(f)
	if st == Sat {
		t.Error("1-assignment budget should not reach sat on this formula")
	}
}

func TestSolverNonBoolError(t *testing.T) {
	s := NewSolver(Options{})
	if _, _, _, err := s.Check(Int(1)); err == nil {
		t.Error("expected error for non-boolean goal")
	}
}

func TestNNFPushesNegation(t *testing.T) {
	x := Var("x", SortInt)
	got := nnf(Not(And(Gt(x, Int(1)), Lt(x, Int(5)))), false)
	// Expect or(<= x 1, >= x 5)
	if got.Op != OpOr {
		t.Fatalf("got %s", got)
	}
	if got.Args[0].Op != OpLe || got.Args[1].Op != OpGe {
		t.Errorf("got %s", got)
	}
}

func TestDNFCubeCount(t *testing.T) {
	a, b, c, d := Var("a", SortBool), Var("b", SortBool), Var("c", SortBool), Var("d", SortBool)
	// (a or b) and (c or d) → 4 cubes.
	cubes, ok := dnf(nnf(And(Or(a, b), Or(c, d)), false), 100)
	if !ok || len(cubes) != 4 {
		t.Errorf("cubes = %d ok=%v", len(cubes), ok)
	}
	if _, ok := dnf(nnf(And(Or(a, b), Or(c, d)), false), 3); ok {
		t.Error("expected cube-limit failure")
	}
}

func TestToSMTLIB2(t *testing.T) {
	sName := Var("s_name", SortString)
	sExt := Var("s_ext", SortString)
	f := And(
		SuffixOf(Str(".php"), Concat(sName, sExt)),
		Gt(Len(Concat(sName, sExt)), Int(5)),
	)
	out := ToSMTLIB2(f)
	for _, want := range []string{
		"(set-logic QF_SLIA)",
		"(declare-const s_name String)",
		"(declare-const s_ext String)",
		"str.suffixof",
		"str.++",
		"str.len",
		"(check-sat)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SMT-LIB output missing %q:\n%s", want, out)
		}
	}
}

func TestToSMTLIB2EscapesQuotes(t *testing.T) {
	f := Eq(Var("x", SortString), Str(`say "hi"`))
	out := ToSMTLIB2(f)
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Errorf("quote escaping wrong:\n%s", out)
	}
}

func TestToSMTLIB2SanitizesNames(t *testing.T) {
	f := Eq(Var("s[weird name]", SortString), Str("v"))
	out := ToSMTLIB2(f)
	if strings.Contains(out, "[") || strings.Contains(out, " name]") {
		t.Errorf("unsanitized name in output:\n%s", out)
	}
}

func TestToSMTLIB2ToIntName(t *testing.T) {
	f := Eq(ToInt(Var("s", SortString)), Int(3))
	out := ToSMTLIB2(f)
	if !strings.Contains(out, "str.to_int") {
		t.Errorf("expected official str.to_int name:\n%s", out)
	}
}
