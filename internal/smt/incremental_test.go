package smt

import (
	"math/rand"
	"testing"
)

// TestSessionMatchesMonolithic: for random constraint pairs, the staged
// Assert/Assert/Check must produce exactly the verdict, model, and work
// counters of a monolithic Check on the conjunction.
func TestSessionMatchesMonolithic(t *testing.T) {
	r := rand.New(rand.NewSource(20260806))
	g := &formulaGen{r: r}
	const rounds = 200
	for i := 0; i < rounds; i++ {
		a, b := g.boolExpr(2), g.boolExpr(2)

		mono := NewSolverWithFactory(Options{}, NewFactory())
		mStatus, mModel, mStats, mErr := mono.Check(And(a, b))

		inc := NewSolverWithFactory(Options{}, NewFactory())
		sess := inc.NewSession()
		sess.Assert(a)
		sess.Assert(b)
		sStatus, sModel, sStats, sErr := sess.Check()

		if mStatus != sStatus || (mErr == nil) != (sErr == nil) {
			t.Fatalf("round %d: verdict mismatch: mono (%v,%v) session (%v,%v)\n a=%s\n b=%s",
				i, mStatus, mErr, sStatus, sErr, a, b)
		}
		if mStats != sStats {
			t.Fatalf("round %d: stats mismatch: mono %+v session %+v", i, mStats, sStats)
		}
		if len(mModel) != len(sModel) {
			t.Fatalf("round %d: model mismatch: %v vs %v", i, mModel, sModel)
		}
		for k, v := range mModel {
			if sModel[k] != v {
				t.Fatalf("round %d: model mismatch at %s: %v vs %v", i, k, v, sModel[k])
			}
		}
	}
}

// TestSessionQuickUnsatSound: whenever QuickUnsat answers true for an
// assertion set, a full Check of that set — and of any superset — must
// answer Unsat, in both interned and direct modes.
func TestSessionQuickUnsatSound(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	g := &formulaGen{r: r}
	quick := 0
	for _, withFactory := range []bool{true, false} {
		for i := 0; i < 300; i++ {
			var fac *Factory
			if withFactory {
				fac = NewFactory()
			}
			a := g.boolExpr(2)
			contradiction := And(a, Not(a))
			extra := g.boolExpr(1)

			s := NewSolverWithFactory(Options{}, fac)
			sess := s.NewSession()
			sess.Assert(contradiction)
			var st Stats
			if !sess.QuickUnsat(&st) {
				continue // simplifier may not fold every shape; soundness only claims the true case
			}
			quick++
			// The same stack must fully check Unsat…
			status, _, _, err := sess.Check()
			if err != nil || status != Unsat {
				t.Fatalf("QuickUnsat true but Check = (%v,%v) on %s", status, err, contradiction)
			}
			// …and so must any superset.
			sess.Assert(extra)
			status, _, _, err = sess.Check()
			if err != nil || status != Unsat {
				t.Fatalf("QuickUnsat true but superset Check = (%v,%v)", status, err)
			}
		}
	}
	if quick == 0 {
		t.Fatal("QuickUnsat never fired; test is vacuous")
	}
}

// TestSessionPushPop: Pop restores the assertion stack frame by frame and
// the verdict follows the live assertions.
func TestSessionPushPop(t *testing.T) {
	x := Var("x", SortString)
	s := NewSolverWithFactory(Options{}, NewFactory())
	sess := s.NewSession()

	sess.Assert(Eq(x, Str("a")))
	if sess.Assertions() != 1 {
		t.Fatalf("assertions = %d, want 1", sess.Assertions())
	}
	sess.Push()
	sess.Assert(Eq(x, Str("b"))) // contradicts the base frame
	if status, _, _, err := sess.Check(); err != nil || status != Unsat {
		t.Fatalf("contradictory frames: status %v err %v, want unsat", status, err)
	}
	sess.Pop()
	if sess.Assertions() != 1 {
		t.Fatalf("after pop: assertions = %d, want 1", sess.Assertions())
	}
	status, m, _, err := sess.Check()
	if err != nil || status != Sat {
		t.Fatalf("base frame: status %v err %v, want sat", status, err)
	}
	if m["x"] != StrValue("a") {
		t.Fatalf("witness %v, want x=a", m)
	}
	// Pop with no open frame clears the stack; the empty conjunction is true.
	sess.Pop()
	if sess.Assertions() != 0 {
		t.Fatalf("after clearing pop: %d assertions", sess.Assertions())
	}
	if status, _, _, err := sess.Check(); err != nil || status != Sat {
		t.Fatalf("empty stack: status %v err %v, want sat", status, err)
	}
}

// TestSessionIncrementalReuse: re-asserting a constraint whose simplified
// form is memoized counts toward IncrementalReuse — the counter the
// scanner exports as smt_incremental_reuse.
func TestSessionIncrementalReuse(t *testing.T) {
	fac := NewFactory()
	s := NewSolverWithFactory(Options{}, fac)
	ext := fac.Or(
		fac.SuffixOf(fac.Str(".php"), fac.Var("dst", SortString)),
		fac.SuffixOf(fac.Str(".php5"), fac.Var("dst", SortString)),
	)
	sess := s.NewSession()
	sess.Push()
	sess.Assert(ext)
	sess.Pop()
	if got := fac.Stats().IncrementalReuse; got != 0 {
		t.Fatalf("first assertion counted as reuse: %d", got)
	}
	sess.Push()
	sess.Assert(ext) // second sink, same extension constraint
	sess.Pop()
	if got := fac.Stats().IncrementalReuse; got != 1 {
		t.Fatalf("IncrementalReuse = %d, want 1", got)
	}
	// A structurally equal foreign tree is recognized via interning.
	foreign := Or(
		SuffixOf(Str(".php"), Var("dst", SortString)),
		SuffixOf(Str(".php5"), Var("dst", SortString)),
	)
	sess.Push()
	sess.Assert(foreign)
	sess.Pop()
	if got := fac.Stats().IncrementalReuse; got != 2 {
		t.Fatalf("IncrementalReuse after foreign re-assert = %d, want 2", got)
	}
	// Without a factory the counter stays zero (ablation invariant).
	s2 := NewSolver(Options{})
	sess2 := s2.NewSession()
	sess2.Assert(foreign)
	sess2.Assert(foreign)
	if got := s2.Factory().Stats().IncrementalReuse; got != 0 {
		t.Fatalf("nil-factory IncrementalReuse = %d, want 0", got)
	}
}

// TestSessionStagedExtensionReach mirrors the scanner's exact staging
// (push; assert extension; quick-check; assert reach; check; pop) and
// cross-checks it against the monolithic conjunction on formulas shaped
// like real vulnerability models.
func TestSessionStagedExtensionReach(t *testing.T) {
	dst := Var("dst", SortString)
	cond := Var("c", SortString)
	cases := []struct {
		ext, reach *Term
		want       Status
	}{
		{ // satisfiable: .php suffix with a reachable path
			Or(SuffixOf(Str(".php"), dst), SuffixOf(Str(".php5"), dst)),
			Eq(cond, Str("go")),
			Sat,
		},
		{ // extension contradicts a concrete destination
			And(SuffixOf(Str(".php"), dst), Eq(dst, Str("img.png"))),
			True(),
			Unsat,
		},
		{ // reachability contradicts itself
			SuffixOf(Str(".php"), dst),
			And(Eq(cond, Str("a")), Eq(cond, Str("b"))),
			Unsat,
		},
	}
	for i, tc := range cases {
		mono := NewSolverWithFactory(Options{}, NewFactory())
		mStatus, _, _, mErr := mono.Check(And(tc.ext, tc.reach))

		s := NewSolverWithFactory(Options{}, NewFactory())
		sess := s.NewSession()
		sess.Push()
		sess.Assert(tc.ext)
		var st Stats
		status := Unknown
		if sess.QuickUnsat(&st) {
			status = Unsat
		} else {
			sess.Assert(tc.reach)
			var err error
			status, _, _, err = sess.Check()
			if err != nil {
				t.Fatalf("case %d: %v", i, err)
			}
		}
		sess.Pop()
		if mErr != nil {
			t.Fatalf("case %d: monolithic error %v", i, mErr)
		}
		if status != mStatus || status != tc.want {
			t.Fatalf("case %d: staged %v monolithic %v want %v", i, status, mStatus, tc.want)
		}
	}
}
