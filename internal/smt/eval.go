package smt

import (
	"fmt"
	"strings"
)

// Value is a ground value of one of the three sorts.
type Value struct {
	Sort Sort
	B    bool
	I    int64
	S    string
}

// BoolValue wraps a bool.
func BoolValue(b bool) Value { return Value{Sort: SortBool, B: b} }

// IntValue wraps an int.
func IntValue(i int64) Value { return Value{Sort: SortInt, I: i} }

// StrValue wraps a string.
func StrValue(s string) Value { return Value{Sort: SortString, S: s} }

func (v Value) String() string {
	switch v.Sort {
	case SortBool:
		return fmt.Sprintf("%v", v.B)
	case SortInt:
		return fmt.Sprintf("%d", v.I)
	default:
		return fmt.Sprintf("%q", v.S)
	}
}

// Model assigns values to variable names.
type Model map[string]Value

// Eval evaluates a ground or fully-assigned term under the model. It is the
// soundness anchor of the solver: every Sat answer is re-verified through
// this function before being reported. It returns an error for variables
// missing from the model or sort confusion.
func Eval(t *Term, m Model) (Value, error) {
	switch t.Op {
	case OpBoolConst:
		return BoolValue(t.B), nil
	case OpIntConst:
		return IntValue(t.I), nil
	case OpStrConst:
		return StrValue(t.S), nil
	case OpVar:
		v, ok := m[t.S]
		if !ok {
			return Value{}, fmt.Errorf("smt: unbound variable %s", t.S)
		}
		if v.Sort != t.sort {
			return Value{}, fmt.Errorf("smt: variable %s bound to %v, want %v", t.S, v.Sort, t.sort)
		}
		return v, nil
	}

	args := make([]Value, len(t.Args))
	for i, a := range t.Args {
		v, err := Eval(a, m)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}

	switch t.Op {
	case OpNot:
		return BoolValue(!args[0].B), nil
	case OpAnd:
		for _, a := range args {
			if !a.B {
				return BoolValue(false), nil
			}
		}
		return BoolValue(true), nil
	case OpOr:
		for _, a := range args {
			if a.B {
				return BoolValue(true), nil
			}
		}
		return BoolValue(false), nil
	case OpEq:
		a, b := args[0], args[1]
		if a.Sort != b.Sort {
			return Value{}, fmt.Errorf("smt: = applied to %v and %v", a.Sort, b.Sort)
		}
		switch a.Sort {
		case SortBool:
			return BoolValue(a.B == b.B), nil
		case SortInt:
			return BoolValue(a.I == b.I), nil
		default:
			return BoolValue(a.S == b.S), nil
		}
	case OpIte:
		if args[0].B {
			return args[1], nil
		}
		return args[2], nil
	case OpAdd:
		var sum int64
		for _, a := range args {
			sum += a.I
		}
		return IntValue(sum), nil
	case OpSub:
		return IntValue(args[0].I - args[1].I), nil
	case OpMul:
		prod := int64(1)
		for _, a := range args {
			prod *= a.I
		}
		return IntValue(prod), nil
	case OpNeg:
		return IntValue(-args[0].I), nil
	case OpLt:
		return BoolValue(args[0].I < args[1].I), nil
	case OpLe:
		return BoolValue(args[0].I <= args[1].I), nil
	case OpGt:
		return BoolValue(args[0].I > args[1].I), nil
	case OpGe:
		return BoolValue(args[0].I >= args[1].I), nil
	case OpConcat:
		var sb strings.Builder
		for _, a := range args {
			sb.WriteString(a.S)
		}
		return StrValue(sb.String()), nil
	case OpLen:
		return IntValue(int64(len(args[0].S))), nil
	case OpSuffixOf:
		return BoolValue(strings.HasSuffix(args[1].S, args[0].S)), nil
	case OpPrefixOf:
		return BoolValue(strings.HasPrefix(args[1].S, args[0].S)), nil
	case OpContains:
		return BoolValue(strings.Contains(args[0].S, args[1].S)), nil
	case OpIndexOf:
		return IntValue(indexOf(args[0].S, args[1].S, args[2].I)), nil
	case OpReplace:
		return StrValue(replaceFirst(args[0].S, args[1].S, args[2].S)), nil
	case OpSubstr:
		return StrValue(substr(args[0].S, args[1].I, args[2].I)), nil
	case OpToInt:
		return IntValue(strToInt(args[0].S)), nil
	case OpFromInt:
		if args[0].I < 0 {
			// SMT-LIB: str.from_int of a negative is "".
			return StrValue(""), nil
		}
		return StrValue(fmt.Sprintf("%d", args[0].I)), nil
	case OpAt:
		i := args[1].I
		if i < 0 || i >= int64(len(args[0].S)) {
			return StrValue(""), nil
		}
		return StrValue(string(args[0].S[i])), nil
	default:
		return Value{}, fmt.Errorf("smt: cannot evaluate op %v", t.Op)
	}
}

// indexOf implements SMT-LIB str.indexof semantics: the first position >=
// from where sub occurs in s, or -1. A negative from, or from beyond
// len(s), yields -1 — except that per SMT-LIB, (str.indexof s "" n) with
// 0 <= n <= len(s) is n.
func indexOf(s, sub string, from int64) int64 {
	if from < 0 || from > int64(len(s)) {
		return -1
	}
	i := strings.Index(s[from:], sub)
	if i < 0 {
		return -1
	}
	return from + int64(i)
}

// replaceFirst implements SMT-LIB str.replace: replaces the first
// occurrence of old in s by new; replacing "" prepends new.
func replaceFirst(s, old, new string) string {
	if old == "" {
		return new + s
	}
	i := strings.Index(s, old)
	if i < 0 {
		return s
	}
	return s[:i] + new + s[i+len(old):]
}

// substr implements SMT-LIB str.substr: the empty string when off is out of
// range or length is non-positive; otherwise the longest prefix of s[off:]
// of length at most length.
func substr(s string, off, length int64) string {
	if off < 0 || off >= int64(len(s)) || length <= 0 {
		return ""
	}
	end := off + length
	if end > int64(len(s)) {
		end = int64(len(s))
	}
	return s[off:end]
}

// strToInt implements SMT-LIB str.to_int: the non-negative integer denoted
// by s if s consists solely of digits, otherwise -1. Leading zeros are
// accepted. Overflow returns -1.
func strToInt(s string) int64 {
	if s == "" {
		return -1
	}
	var v int64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return -1
		}
		d := int64(c - '0')
		if v > (1<<62)/10 {
			return -1
		}
		v = v*10 + d
	}
	return v
}
