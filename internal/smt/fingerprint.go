package smt

// Fingerprinting support for consumers that need a cheap, deterministic
// digest of symbolic state. The VM's block-fact cache hashes its scalar
// live-in facts (env count, memo epoch, current file) through Hasher, and
// path-condition prefixes can be folded in term by term via TermID: with
// hash-consing, a constraint prefix is identified by the pointer identities
// of its conjuncts, and TermID maps those pointers to stable small integers
// that order by first appearance — byte-identical across runs for a fixed
// construction order.

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Hasher is a streaming 64-bit FNV-1a hasher. The zero value is ready to
// use; it never allocates.
type Hasher struct {
	h uint64
}

func (s *Hasher) lazyInit() {
	if s.h == 0 {
		s.h = fnvOffset64
	}
}

// WriteUint64 folds an integer into the digest, little-endian byte by byte.
func (s *Hasher) WriteUint64(v uint64) {
	s.lazyInit()
	h := s.h
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	s.h = h
}

// WriteString folds a string into the digest, length-prefixed so that
// consecutive writes cannot collide by re-bracketing.
func (s *Hasher) WriteString(x string) {
	s.WriteUint64(uint64(len(x)))
	h := s.h
	for i := 0; i < len(x); i++ {
		h ^= uint64(x[i])
		h *= fnvPrime64
	}
	s.h = h
}

// Sum returns the current digest.
func (s *Hasher) Sum() uint64 {
	s.lazyInit()
	return s.h
}

// TermID returns the factory's stable small identifier for an interned
// term, assigning one on first use (nil factory or nil term hash to 0).
// Because terms are hash-consed, TermID(t) identifies t's full structure:
// fingerprinting a path-condition prefix is just hashing the TermIDs of
// its conjunct pointers in order.
func (f *Factory) TermID(t *Term) uint64 {
	if f == nil || t == nil {
		return 0
	}
	return f.id(t)
}
