package smt

import (
	"testing"
	"testing/quick"
)

func TestSimplifyConstFold(t *testing.T) {
	tests := []struct {
		name string
		in   *Term
		want *Term
	}{
		{"add", Add(Int(1), Int(2)), Int(3)},
		{"concat", Concat(Str("a"), Str("b")), Str("ab")},
		{"len", Len(Str("abc")), Int(3)},
		{"cmp", Gt(Int(3), Int(2)), True()},
		{"suffix", SuffixOf(Str(".php"), Str("x.php")), True()},
		{"not", Not(True()), False()},
		{"eq", Eq(Str("a"), Str("a")), True()},
		{"eq diff", Eq(Str("a"), Str("b")), False()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Simplify(tt.in)
			if !Equal(got, tt.want) {
				t.Errorf("Simplify(%s) = %s, want %s", tt.in, got, tt.want)
			}
		})
	}
}

func TestSimplifyBooleanStructure(t *testing.T) {
	x := Var("x", SortBool)
	y := Var("y", SortBool)
	tests := []struct {
		name string
		in   *Term
		want *Term
	}{
		{"and unit", And(True(), x), x},
		{"and absorb", And(False(), x), False()},
		{"or unit", Or(False(), x), x},
		{"or absorb", Or(True(), x), True()},
		{"double neg", Not(Not(x)), x},
		{"and dedup", And(x, x), x},
		{"complement", And(x, Not(x)), False()},
		{"or complement", Or(x, Not(x)), True()},
		{"flatten", And(And(x, y), True()), And(x, y)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Simplify(tt.in)
			if !Equal(got, tt.want) {
				t.Errorf("Simplify(%s) = %s, want %s", tt.in, got, tt.want)
			}
		})
	}
}

func TestSimplifyConcatStructure(t *testing.T) {
	x := Var("x", SortString)
	got := Simplify(Concat(Str("a"), Str("b"), x, Str(""), Str("c"), Str("d")))
	want := Concat(Str("ab"), x, Str("cd"))
	if !Equal(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestSimplifyLenConcat(t *testing.T) {
	x := Var("x", SortString)
	got := Simplify(Len(Concat(Str("ab"), x, Str("c"))))
	// len = len(x) + 3
	want := Add(Len(x), Int(3))
	if !Equal(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestSimplifySuffixDecomposition(t *testing.T) {
	x := Var("x", SortString)
	tests := []struct {
		name string
		in   *Term
		want *Term
	}{
		// suffix fully inside the constant tail: decidable.
		{"const tail covers", SuffixOf(Str(".php"), Concat(x, Str("name.php"))), True()},
		{"const tail mismatch", SuffixOf(Str(".php"), Concat(x, Str("name.zip"))), False()},
		// WP Demo Buddy shape: ".zip" required but tail is constant ".php".
		{"zip vs php", SuffixOf(Str("zip"), Concat(x, Str(".php"))), False()},
		// suffix longer than constant tail: peel and keep residue.
		{"peel", SuffixOf(Str("a.php"), Concat(x, Str("php"))), SuffixOf(Str("a."), x)},
		{"empty suffix", SuffixOf(Str(""), x), True()},
		{"self", SuffixOf(x, x), True()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Simplify(tt.in)
			if !Equal(got, tt.want) {
				t.Errorf("Simplify(%s) = %s, want %s", tt.in, got, tt.want)
			}
		})
	}
}

func TestSimplifyPrefixDecomposition(t *testing.T) {
	x := Var("x", SortString)
	tests := []struct {
		name string
		in   *Term
		want *Term
	}{
		{"const head covers", PrefixOf(Str("/tmp"), Concat(Str("/tmp/up"), x)), True()},
		{"const head mismatch", PrefixOf(Str("/var"), Concat(Str("/tmp/"), x)), False()},
		{"peel", PrefixOf(Str("/tmp/x"), Concat(Str("/tmp/"), x)), PrefixOf(Str("x"), x)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Simplify(tt.in)
			if !Equal(got, tt.want) {
				t.Errorf("Simplify(%s) = %s, want %s", tt.in, got, tt.want)
			}
		})
	}
}

func TestSimplifyStrEq(t *testing.T) {
	x := Var("x", SortString)
	y := Var("y", SortString)
	tests := []struct {
		name string
		in   *Term
		want *Term
	}{
		{"strip prefix", Eq(Concat(Str("a"), x), Concat(Str("a"), y)), Eq(x, y)},
		{"strip suffix const", Eq(Concat(x, Str(".php")), Str("a.php")), Eq(x, Str("a"))},
		{"prefix mismatch", Eq(Concat(Str("a"), x), Concat(Str("b"), y)), False()},
		{"empty forces parts", Eq(Concat(x, Str("k")), Str("")), False()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Simplify(tt.in)
			if !Equal(got, tt.want) {
				t.Errorf("Simplify(%s) = %s, want %s", tt.in, got, tt.want)
			}
		})
	}
}

func TestSimplifyCmpNormalization(t *testing.T) {
	x := Var("x", SortInt)
	got := Simplify(Gt(Add(x, Int(4)), Int(10)))
	want := Gt(x, Int(6))
	if !Equal(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestSimplifyLenNonNegative(t *testing.T) {
	s := Var("s", SortString)
	if got := Simplify(Ge(Len(s), Int(0))); !Equal(got, True()) {
		t.Errorf("len >= 0 should fold to true, got %s", got)
	}
	if got := Simplify(Lt(Len(s), Int(0))); !Equal(got, False()) {
		t.Errorf("len < 0 should fold to false, got %s", got)
	}
}

func TestSimplifyIte(t *testing.T) {
	x := Var("x", SortInt)
	if got := Simplify(Ite(True(), x, Int(1))); !Equal(got, x) {
		t.Errorf("ite true = %s", got)
	}
	if got := Simplify(Ite(Var("c", SortBool), x, x)); !Equal(got, x) {
		t.Errorf("ite same = %s", got)
	}
}

// Property: simplification preserves meaning under random models.
func TestSimplifyPreservesSemantics(t *testing.T) {
	x := Var("x", SortString)
	n := Var("n", SortInt)
	b := Var("b", SortBool)
	terms := []*Term{
		SuffixOf(Str(".php"), Concat(x, Str(".php"))),
		SuffixOf(Str(".php"), Concat(Str("dir/"), x)),
		And(b, Gt(Add(Len(x), Int(2)), n)),
		Or(Not(b), Eq(Concat(Str("p"), x), Str("pq"))),
		Eq(Len(Concat(x, Str("ab"))), Add(n, Int(2))),
		Not(And(b, Not(b))),
		Contains(Concat(Str("aa"), x), Str("a")),
	}
	f := func(sv string, iv int16, bv bool) bool {
		m := Model{"x": StrValue(sv), "n": IntValue(int64(iv)), "b": BoolValue(bv)}
		for _, term := range terms {
			orig, err1 := Eval(term, m)
			simp, err2 := Eval(Simplify(term), m)
			if err1 != nil || err2 != nil {
				return false
			}
			if orig.B != simp.B {
				t.Logf("term %s: orig %v simp %v under %v", term, orig, simp, m)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: simplify is idempotent.
func TestSimplifyIdempotent(t *testing.T) {
	x := Var("x", SortString)
	n := Var("n", SortInt)
	terms := []*Term{
		SuffixOf(Str("a.php"), Concat(x, Str("php"))),
		And(Gt(Len(x), n), Eq(x, Str("q"))),
		Len(Concat(Str("ab"), x)),
		Or(Eq(n, Int(1)), Eq(n, Int(2)), Eq(n, Int(1))),
	}
	for _, term := range terms {
		once := Simplify(term)
		twice := Simplify(once)
		if !Equal(once, twice) {
			t.Errorf("not idempotent: %s -> %s -> %s", term, once, twice)
		}
	}
}
