package smt

import (
	"fmt"
	"testing"
)

// The micro-benchmarks below measure the tentpole claim of the shared-
// structure constraint engine: constructing and deciding the per-sink
// three-constraint models of one root costs markedly less when the terms
// are hash-consed, because the path-condition prefix shared by sibling
// sinks is simplified once and the extension disjunction is recognized by
// pointer identity instead of re-simplified per sink.
//
// Each sub-benchmark pair builds the SAME formulas through the same code
// path; "direct" uses a nil factory (the -no-intern ablation), "interned"
// a fresh Factory per iteration (the per-root lifetime the scanner uses).
// Construction cost is included on both sides — the comparison is the
// end-to-end per-root constraint-pipeline cost.

// benchSinkModels builds nSinks vulnerability models sharing one path-
// condition prefix of the given depth, mirroring the interpreter's output:
// reach_i = And(prefix, branch_i), ext_i over a shared destination shape.
func benchSinkModels(f *Factory, nSinks, depth int) (exts, reaches []*Term) {
	// The prefix is a left-nested And chain, exactly the shape Env.ER
	// builds one conditional at a time.
	prefix := f.Eq(f.Var("c0", SortString), f.Str("v0"))
	for i := 1; i < depth; i++ {
		prefix = f.And(prefix, f.Eq(f.Var(fmt.Sprintf("c%d", i), SortString), f.Str(fmt.Sprintf("v%d", i))))
	}
	dst := f.Concat(f.Str("/uploads/"), f.Var("name", SortString))
	for s := 0; s < nSinks; s++ {
		ext := f.Or(
			f.SuffixOf(f.Str(".php"), dst),
			f.SuffixOf(f.Str(".php5"), dst),
		)
		// Sinks alternate between a handful of guard shapes, the way call
		// sites inside the same handler share most of their path condition.
		reach := f.And(prefix, f.Eq(f.Var("mode", SortString), f.Str(fmt.Sprintf("m%d", s%4))))
		exts = append(exts, ext)
		reaches = append(reaches, reach)
	}
	return exts, reaches
}

// BenchmarkSimplifyShared: fixpoint-simplify every sink's combined
// constraint. The interned side memoizes the shared prefix's rewrites
// across sinks; the direct side re-walks it every time.
func BenchmarkSimplifyShared(b *testing.B) {
	const nSinks, depth = 16, 40
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var f *Factory
			exts, reaches := benchSinkModels(f, nSinks, depth)
			for s := range exts {
				_ = f.Simplify(f.And(exts[s], reaches[s]))
			}
		}
	})
	b.Run("interned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f := NewFactory()
			exts, reaches := benchSinkModels(f, nSinks, depth)
			for s := range exts {
				_ = f.Simplify(f.And(exts[s], reaches[s]))
			}
		}
	})
}

// BenchmarkSolverIncremental: decide every sink of a root. The direct
// side is the old monolithic pipeline (fresh conjunction, full check);
// the interned side is the scanner's staged session (push/assert/pop)
// over a factory-backed solver.
func BenchmarkSolverIncremental(b *testing.B) {
	const nSinks, depth = 16, 24
	b.Run("monolithic-direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var f *Factory
			solver := NewSolver(Options{})
			exts, reaches := benchSinkModels(f, nSinks, depth)
			for s := range exts {
				if _, _, _, err := solver.Check(f.And(exts[s], reaches[s])); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("session-interned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f := NewFactory()
			solver := NewSolverWithFactory(Options{}, f)
			sess := solver.NewSession()
			exts, reaches := benchSinkModels(f, nSinks, depth)
			for s := range exts {
				sess.Push()
				sess.Assert(exts[s])
				var st Stats
				if !sess.QuickUnsat(&st) {
					sess.Assert(reaches[s])
					if _, _, _, err := sess.Check(); err != nil {
						b.Fatal(err)
					}
				}
				sess.Pop()
			}
		}
	})
}

// BenchmarkInternConstruction isolates pure construction: building the
// same formulas with and without the intern table, no solving.
func BenchmarkInternConstruction(b *testing.B) {
	const nSinks, depth = 16, 40
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSinkModels(nil, nSinks, depth)
		}
	})
	b.Run("interned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSinkModels(NewFactory(), nSinks, depth)
		}
	})
}
