package smt

import "encoding/binary"

// Substitution of formal-parameter placeholders: the instantiation half
// of the function-summary machinery (internal/summary). A summary's
// return value and sink effects are hash-consed terms over OpFormal
// leaves; at a call site the engine substitutes the actual-argument
// terms for the formals. Substitution is structural and total: formals
// with no corresponding actual (index out of range or nil) are left in
// place, which callers treat as "summary does not apply".

// substKey identifies one (root, actuals) substitution for the
// persistent cross-call memo. Actual pointers are encoded by their
// stable factory ids, so the key is deterministic for a fixed
// construction order.
type substKey struct {
	t       *Term
	actuals string
}

// Formal returns an interned formal-parameter placeholder. Safe on nil
// (falls back to the package-level constructor).
func (f *Factory) Formal(i int, sort Sort) *Term {
	return f.mk(OpFormal, sort, false, int64(i), "", nil)
}

// Substitute replaces every OpFormal leaf in t whose index is in range
// with the corresponding term of actuals, rebuilding (and interning)
// only the spines that actually change. Results are memoized twice:
// per call via a DAG-walk map (so shared subterms are rewritten once)
// and persistently per (root, actuals) pair, so repeated instantiation
// of the same summary at the same argument shapes is O(1). Safe on nil
// (plain recursion, no memoization).
func (f *Factory) Substitute(t *Term, actuals []*Term) *Term {
	if t == nil {
		return nil
	}
	if f == nil {
		return substRec(nil, t, actuals)
	}
	key := substKey{t: t, actuals: f.encodeActuals(actuals)}
	if r, ok := f.substMemo[key]; ok {
		f.stats.SimplifyMemoHits++
		return r
	}
	r := substRec(f, t, actuals)
	f.substMemo[key] = r
	return r
}

// encodeActuals packs the actuals' factory ids into a string key.
func (f *Factory) encodeActuals(actuals []*Term) string {
	if len(actuals) == 0 {
		return ""
	}
	buf := make([]byte, 8*len(actuals))
	for i, a := range actuals {
		binary.LittleEndian.PutUint64(buf[8*i:], f.id(a))
	}
	return string(buf)
}

func substRec(f *Factory, t *Term, actuals []*Term) *Term {
	if t.Op == OpFormal {
		if i := int(t.I); i >= 0 && i < len(actuals) && actuals[i] != nil {
			return actuals[i]
		}
		return t
	}
	if len(t.Args) == 0 {
		return t
	}
	args := make([]*Term, len(t.Args))
	same := true
	for i, a := range t.Args {
		args[i] = substRec(f, a, actuals)
		if args[i] != a {
			same = false
		}
	}
	if same {
		return t
	}
	return f.mk(t.Op, t.sort, t.B, t.I, t.S, args)
}

// HasFormal reports whether t contains any formal-parameter leaf — a
// summary term with a formal left over after substitution cannot be
// handed to the solver.
func HasFormal(t *Term) bool {
	if t == nil {
		return false
	}
	if t.Op == OpFormal {
		return true
	}
	for _, a := range t.Args {
		if HasFormal(a) {
			return true
		}
	}
	return false
}
