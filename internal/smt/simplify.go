package smt

import "strings"

// Simplify rewrites t into an equivalent, usually smaller term. It performs
// constant folding across all operations plus structural string reasoning:
// concatenation flattening and constant merging, suffix/prefix
// decomposition over concatenations, length-of-concatenation arithmetic,
// boolean unit propagation, and complement detection. Simplification is the
// solver's "cheap deduction" layer: many unsatisfiable constraints (e.g. a
// ".php"-suffix requirement against a constant ".zip" tail) fold to false
// here without any search.
func Simplify(t *Term) *Term {
	var st Stats
	return simplifyCounted(t, &st)
}

// simplifyCounted is Simplify with rewrite accounting: every pass that
// changed the term increments st.Rewrites, so the solver's Stats report
// how much cheap deduction the simplifier performed.
func simplifyCounted(t *Term, st *Stats) *Term {
	cur := t
	for i := 0; i < 8; i++ {
		next := simplify1(cur)
		if Equal(next, cur) {
			return next
		}
		st.Rewrites++
		cur = next
	}
	return cur
}

// simplify1 is one bottom-up rewriting pass.
func simplify1(t *Term) *Term {
	if t == nil || t.IsConst() || t.Op == OpVar {
		return t
	}
	args := make([]*Term, len(t.Args))
	ground := true
	for i, a := range t.Args {
		args[i] = simplify1(a)
		if !args[i].IsConst() {
			ground = false
		}
	}
	n := &Term{Op: t.Op, sort: t.sort, B: t.B, I: t.I, S: t.S, Args: args}

	// Ground term: fold through the evaluator.
	if ground && t.Op != OpVar {
		if v, err := Eval(n, nil); err == nil {
			return constOf(v)
		}
	}

	switch n.Op {
	case OpNot:
		return simplifyNot(n)
	case OpAnd:
		return simplifyAndOr(n, true)
	case OpOr:
		return simplifyAndOr(n, false)
	case OpEq:
		return simplifyEq(n)
	case OpIte:
		if args[0].Op == OpBoolConst {
			if args[0].B {
				return args[1]
			}
			return args[2]
		}
		if Equal(args[1], args[2]) {
			return args[1]
		}
		return n
	case OpConcat:
		return simplifyConcat(n)
	case OpLen:
		return simplifyLen(n)
	case OpSuffixOf:
		return simplifySuffixOf(n)
	case OpPrefixOf:
		return simplifyPrefixOf(n)
	case OpContains:
		return simplifyContains(n)
	case OpAdd:
		return simplifyAdd(n)
	case OpLt, OpLe, OpGt, OpGe:
		return simplifyCmp(n)
	default:
		return n
	}
}

func constOf(v Value) *Term {
	switch v.Sort {
	case SortBool:
		return Bool(v.B)
	case SortInt:
		return Int(v.I)
	default:
		return Str(v.S)
	}
}

func simplifyNot(n *Term) *Term {
	x := n.Args[0]
	switch x.Op {
	case OpBoolConst:
		return Bool(!x.B)
	case OpNot:
		return x.Args[0]
	}
	return n
}

func simplifyAndOr(n *Term, isAnd bool) *Term {
	unit := isAnd      // true is the unit of and, false of or
	absorber := !isAnd // false absorbs and, true absorbs or
	var flat []*Term
	for _, a := range n.Args {
		if a.Op == n.Op {
			flat = append(flat, a.Args...)
			continue
		}
		flat = append(flat, a)
	}
	var kept []*Term
	for _, a := range flat {
		if a.Op == OpBoolConst {
			if a.B == absorber {
				return Bool(absorber)
			}
			if a.B == unit {
				continue
			}
		}
		// Deduplicate.
		dup := false
		for _, k := range kept {
			if Equal(k, a) {
				dup = true
				break
			}
		}
		if !dup {
			kept = append(kept, a)
		}
	}
	// Complement detection: x and not x.
	for _, a := range kept {
		for _, b := range kept {
			if a.Op == OpNot && Equal(a.Args[0], b) {
				return Bool(absorber)
			}
		}
	}
	switch len(kept) {
	case 0:
		return Bool(unit)
	case 1:
		return kept[0]
	}
	return &Term{Op: n.Op, sort: SortBool, Args: kept}
}

func simplifyEq(n *Term) *Term {
	a, b := n.Args[0], n.Args[1]
	if Equal(a, b) {
		return True()
	}
	if a.IsConst() && b.IsConst() {
		// Different constants (Equal already ruled out same).
		return False()
	}
	// Lift equality over ite: (= (ite c x y) k) → (ite c (= x k) (= y k)).
	// NNF later expands the boolean ite into a disjunction, so guard
	// patterns like (= (ite match 1 0) 0) reduce to ¬match.
	if a.Op == OpIte {
		return simplify1(Ite(a.Args[0], Eq(a.Args[1], b), Eq(a.Args[2], b)))
	}
	if b.Op == OpIte {
		return simplify1(Ite(b.Args[0], Eq(a, b.Args[1]), Eq(a, b.Args[2])))
	}
	if a.Sort() == SortString {
		return simplifyStrEq(n, a, b)
	}
	return n
}

// simplifyStrEq strips common constant prefixes and suffixes from string
// equalities over concatenations and detects constant mismatches.
func simplifyStrEq(n *Term, a, b *Term) *Term {
	la, lb := concatParts(a), concatParts(b)
	// Strip common constant prefix.
	for len(la) > 0 && len(lb) > 0 {
		x, y := la[0], lb[0]
		if x.Op == OpStrConst && y.Op == OpStrConst && x.S != y.S {
			p := commonPrefix(x.S, y.S)
			if p == 0 {
				return False()
			}
			la[0], lb[0] = Str(x.S[p:]), Str(y.S[p:])
			if la[0].S == "" {
				la = la[1:]
			}
			if lb[0].S == "" {
				lb = lb[1:]
			}
			continue
		}
		if Equal(x, y) {
			la, lb = la[1:], lb[1:]
			continue
		}
		break
	}
	// Strip common constant suffix.
	for len(la) > 0 && len(lb) > 0 {
		x, y := la[len(la)-1], lb[len(lb)-1]
		if x.Op == OpStrConst && y.Op == OpStrConst && x.S != y.S {
			p := commonSuffix(x.S, y.S)
			if p == 0 {
				return False()
			}
			la[len(la)-1] = Str(x.S[:len(x.S)-p])
			lb[len(lb)-1] = Str(y.S[:len(y.S)-p])
			if la[len(la)-1].S == "" {
				la = la[:len(la)-1]
			}
			if lb[len(lb)-1].S == "" {
				lb = lb[:len(lb)-1]
			}
			continue
		}
		if Equal(x, y) {
			la, lb = la[:len(la)-1], lb[:len(lb)-1]
			continue
		}
		break
	}
	na, nb := Concat(la...), Concat(lb...)
	if Equal(na, nb) {
		return True()
	}
	if na.IsConst() && nb.IsConst() {
		return Bool(na.S == nb.S)
	}
	// An empty side forces every remaining part of the other side empty.
	if na.Op == OpStrConst && na.S == "" && nb.Op == OpConcat {
		parts := make([]*Term, 0, len(nb.Args))
		for _, p := range nb.Args {
			parts = append(parts, Eq(p, Str("")))
		}
		return simplifyAndOr(And(parts...), true)
	}
	if nb.Op == OpStrConst && nb.S == "" && na.Op == OpConcat {
		parts := make([]*Term, 0, len(na.Args))
		for _, p := range na.Args {
			parts = append(parts, Eq(p, Str("")))
		}
		return simplifyAndOr(And(parts...), true)
	}
	if Equal(na, n.Args[0]) && Equal(nb, n.Args[1]) {
		return n
	}
	return Eq(na, nb)
}

// concatParts returns the flattened concatenation parts of a string term
// (a copy safe to mutate), merging adjacent constants.
func concatParts(t *Term) []*Term {
	var parts []*Term
	var walk func(*Term)
	walk = func(x *Term) {
		if x.Op == OpConcat {
			for _, a := range x.Args {
				walk(a)
			}
			return
		}
		parts = append(parts, x)
	}
	walk(t)
	return mergeConstParts(parts)
}

func mergeConstParts(parts []*Term) []*Term {
	var out []*Term
	for _, p := range parts {
		if p.Op == OpStrConst && p.S == "" {
			continue
		}
		if len(out) > 0 && out[len(out)-1].Op == OpStrConst && p.Op == OpStrConst {
			out[len(out)-1] = Str(out[len(out)-1].S + p.S)
			continue
		}
		out = append(out, p)
	}
	return out
}

func commonPrefix(a, b string) int {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	return i
}

func commonSuffix(a, b string) int {
	i := 0
	for i < len(a) && i < len(b) && a[len(a)-1-i] == b[len(b)-1-i] {
		i++
	}
	return i
}

func simplifyConcat(n *Term) *Term {
	parts := concatParts(n)
	return Concat(parts...)
}

func simplifyLen(n *Term) *Term {
	x := n.Args[0]
	switch x.Op {
	case OpStrConst:
		return Int(int64(len(x.S)))
	case OpConcat:
		// len(a ++ b) = len a + len b, folding constant parts.
		var constSum int64
		var terms []*Term
		for _, p := range x.Args {
			if p.Op == OpStrConst {
				constSum += int64(len(p.S))
				continue
			}
			terms = append(terms, Len(p))
		}
		if constSum != 0 || len(terms) == 0 {
			terms = append(terms, Int(constSum))
		}
		return simplifyAdd(Add(terms...))
	case OpFromInt:
		return n
	}
	return n
}

func simplifySuffixOf(n *Term) *Term {
	suffix, s := n.Args[0], n.Args[1]
	if suffix.Op == OpStrConst {
		if suffix.S == "" {
			return True()
		}
		parts := concatParts(s)
		suf := suffix.S
		// Peel constant tail parts.
		for len(parts) > 0 {
			last := parts[len(parts)-1]
			if last.Op != OpStrConst {
				break
			}
			if len(last.S) >= len(suf) {
				return Bool(strings.HasSuffix(last.S, suf))
			}
			if !strings.HasSuffix(suf, last.S) {
				return False()
			}
			suf = suf[:len(suf)-len(last.S)]
			parts = parts[:len(parts)-1]
		}
		if len(parts) == 0 {
			return Bool(suf == "")
		}
		return SuffixOf(Str(suf), Concat(parts...))
	}
	if Equal(suffix, s) {
		return True()
	}
	return n
}

func simplifyPrefixOf(n *Term) *Term {
	prefix, s := n.Args[0], n.Args[1]
	if prefix.Op == OpStrConst {
		if prefix.S == "" {
			return True()
		}
		parts := concatParts(s)
		pre := prefix.S
		for len(parts) > 0 {
			first := parts[0]
			if first.Op != OpStrConst {
				break
			}
			if len(first.S) >= len(pre) {
				return Bool(strings.HasPrefix(first.S, pre))
			}
			if !strings.HasPrefix(pre, first.S) {
				return False()
			}
			pre = pre[len(first.S):]
			parts = parts[1:]
		}
		if len(parts) == 0 {
			return Bool(pre == "")
		}
		return PrefixOf(Str(pre), Concat(parts...))
	}
	if Equal(prefix, s) {
		return True()
	}
	return n
}

func simplifyContains(n *Term) *Term {
	s, sub := n.Args[0], n.Args[1]
	if sub.Op == OpStrConst {
		if sub.S == "" {
			return True()
		}
		// If any single constant part already contains sub, true.
		if s.Op == OpConcat {
			for _, p := range s.Args {
				if p.Op == OpStrConst && strings.Contains(p.S, sub.S) {
					return True()
				}
			}
		}
	}
	if Equal(s, sub) {
		return True()
	}
	return n
}

func simplifyAdd(n *Term) *Term {
	var flat []*Term
	var walk func(*Term)
	walk = func(x *Term) {
		if x.Op == OpAdd {
			for _, a := range x.Args {
				walk(a)
			}
			return
		}
		flat = append(flat, x)
	}
	walk(n)
	var constSum int64
	var terms []*Term
	for _, p := range flat {
		if p.Op == OpIntConst {
			constSum += p.I
			continue
		}
		terms = append(terms, p)
	}
	if constSum != 0 || len(terms) == 0 {
		terms = append(terms, Int(constSum))
	}
	if len(terms) == 1 {
		return terms[0]
	}
	return &Term{Op: OpAdd, sort: SortInt, Args: terms}
}

// simplifyCmp normalizes comparisons whose sides share constant offsets,
// e.g. (> (+ x 4) 10) → (> x 6), and evaluates len-vs-negative bounds:
// str.len is always >= 0, so (>= (str.len e) 0) is true.
func simplifyCmp(n *Term) *Term {
	a, b := n.Args[0], n.Args[1]
	// Canonicalize: constant offsets live only on the right-hand side, so
	// bounds like (> (+ n -2) (str.len s)) normalize to
	// (> n (+ (str.len s) 2)) and the moved constant becomes visible to
	// candidate seeding. Moving in one direction only keeps this
	// terminating.
	if hasConstPart(a) {
		rest, c := splitConst(a)
		if c != 0 && rest != nil {
			return simplifyCmp(&Term{Op: n.Op, sort: SortBool,
				Args: []*Term{rest, simplifyAdd(Add(b, Int(-c)))}})
		}
	}
	// Nonnegativity of lengths.
	if isNonNegative(a) && b.Op == OpIntConst {
		switch n.Op {
		case OpGe:
			if b.I <= 0 {
				return True()
			}
		case OpGt:
			if b.I < 0 {
				return True()
			}
		case OpLt:
			if b.I <= 0 {
				return False()
			}
		case OpLe:
			if b.I < 0 {
				return False()
			}
		}
	}
	return n
}

// hasConstPart reports whether t is an Add with a non-zero constant
// contribution alongside non-constant parts.
func hasConstPart(t *Term) bool {
	if t.Op != OpAdd {
		return false
	}
	hasConst, hasOther := false, false
	for _, p := range t.Args {
		if p.Op == OpIntConst {
			if p.I != 0 {
				hasConst = true
			}
		} else {
			hasOther = true
		}
	}
	return hasConst && hasOther
}

// splitConst separates an Add into its non-constant remainder and the
// summed constant part. rest is nil when everything was constant.
func splitConst(t *Term) (rest *Term, c int64) {
	if t.Op != OpAdd {
		return t, 0
	}
	var parts []*Term
	for _, p := range t.Args {
		if p.Op == OpIntConst {
			c += p.I
		} else {
			parts = append(parts, p)
		}
	}
	if len(parts) == 0 {
		return nil, c
	}
	return Add(parts...), c
}

// isNonNegative reports terms that are always >= 0.
func isNonNegative(t *Term) bool {
	switch t.Op {
	case OpLen:
		return true
	case OpIntConst:
		return t.I >= 0
	case OpAdd, OpMul:
		for _, a := range t.Args {
			if !isNonNegative(a) {
				return false
			}
		}
		return true
	}
	return false
}
