package smt

import "strings"

// Simplify rewrites t into an equivalent, usually smaller term. It performs
// constant folding across all operations plus structural string reasoning:
// concatenation flattening and constant merging, suffix/prefix
// decomposition over concatenations, length-of-concatenation arithmetic,
// boolean unit propagation, and complement detection. Simplification is the
// solver's "cheap deduction" layer: many unsatisfiable constraints (e.g. a
// ".php"-suffix requirement against a constant ".zip" tail) fold to false
// here without any search.
func Simplify(t *Term) *Term {
	var st Stats
	return (*Factory)(nil).simplifyCounted(t, &st)
}

// Simplify is the factory-routed Simplify: rewriting runs through the
// factory's per-node memo tables (when f is non-nil), so shared subterms —
// in particular the path-condition prefix common to sibling paths — are
// rewritten once. The result is structurally identical to the package
// Simplify; only the work differs.
func (f *Factory) Simplify(t *Term) *Term {
	var st Stats
	return f.simplifyCounted(t, &st)
}

// simplifyCounted is Simplify with rewrite accounting: every pass that
// changed the term increments st.Rewrites, so the solver's Stats report
// how much cheap deduction the simplifier performed.
//
// The fixpoint is memoized per input node: a repeat query replays the
// recorded pass count into st, keeping Stats byte-identical whether the
// result was computed or recalled.
func (f *Factory) simplifyCounted(t *Term, st *Stats) *Term {
	if f != nil {
		if r, ok := f.fixMemo[t]; ok {
			f.stats.SimplifyMemoHits++
			st.Rewrites += f.fixCost[t]
			return r
		}
	}
	cur := t
	rewrites := 0
	converged := false
	for i := 0; i < 8; i++ {
		next := f.simplify1(cur)
		if next == cur || Equal(next, cur) {
			cur = next
			converged = true
			break
		}
		rewrites++
		cur = next
	}
	st.Rewrites += rewrites
	if f != nil {
		f.fixMemo[t] = cur
		f.fixCost[t] = rewrites
		if converged && cur != t {
			// A converged result is itself a fixpoint: querying it again
			// costs zero passes.
			if _, ok := f.fixMemo[cur]; !ok {
				f.fixMemo[cur] = cur
				f.fixCost[cur] = 0
			}
		}
	}
	return cur
}

// simplifyCounted is the non-interned entry point kept for the solver's
// nil-factory path and tests.
func simplifyCounted(t *Term, st *Stats) *Term {
	return (*Factory)(nil).simplifyCounted(t, st)
}

// simplify1 is one bottom-up rewriting pass, memoized per node when f is
// non-nil. Results are structurally identical to the historical
// non-factory pass; interning only canonicalizes the pointers.
func (f *Factory) simplify1(t *Term) *Term {
	if t == nil || t.IsConst() || t.Op == OpVar {
		return t
	}
	if f != nil {
		if r, ok := f.simp1Memo[t]; ok {
			f.stats.SimplifyMemoHits++
			return r
		}
	}
	r := f.simplify1Work(t)
	if f != nil {
		f.simp1Memo[t] = r
	}
	return r
}

func (f *Factory) simplify1Work(t *Term) *Term {
	args := make([]*Term, len(t.Args))
	ground := true
	for i, a := range t.Args {
		args[i] = f.simplify1(a)
		if !args[i].IsConst() {
			ground = false
		}
	}
	n := f.mk(t.Op, t.sort, t.B, t.I, t.S, args)

	// Ground term: fold through the evaluator.
	if ground && t.Op != OpVar {
		if v, err := Eval(n, nil); err == nil {
			return f.constOf(v)
		}
	}

	switch n.Op {
	case OpNot:
		return f.simplifyNot(n)
	case OpAnd:
		return f.simplifyAndOr(n, true)
	case OpOr:
		return f.simplifyAndOr(n, false)
	case OpEq:
		return f.simplifyEq(n)
	case OpIte:
		if args[0].Op == OpBoolConst {
			if args[0].B {
				return args[1]
			}
			return args[2]
		}
		if Equal(args[1], args[2]) {
			return args[1]
		}
		return n
	case OpConcat:
		return f.simplifyConcat(n)
	case OpLen:
		return f.simplifyLen(n)
	case OpSuffixOf:
		return f.simplifySuffixOf(n)
	case OpPrefixOf:
		return f.simplifyPrefixOf(n)
	case OpContains:
		return f.simplifyContains(n)
	case OpAdd:
		return f.simplifyAdd(n)
	case OpLt, OpLe, OpGt, OpGe:
		return f.simplifyCmp(n)
	default:
		return n
	}
}

func (f *Factory) constOf(v Value) *Term {
	switch v.Sort {
	case SortBool:
		return Bool(v.B)
	case SortInt:
		return f.Int(v.I)
	default:
		return f.Str(v.S)
	}
}

func (f *Factory) simplifyNot(n *Term) *Term {
	x := n.Args[0]
	switch x.Op {
	case OpBoolConst:
		return Bool(!x.B)
	case OpNot:
		return x.Args[0]
	}
	return n
}

func (f *Factory) simplifyAndOr(n *Term, isAnd bool) *Term {
	unit := isAnd      // true is the unit of and, false of or
	absorber := !isAnd // false absorbs and, true absorbs or
	var flat []*Term
	for _, a := range n.Args {
		if a.Op == n.Op {
			flat = append(flat, a.Args...)
			continue
		}
		flat = append(flat, a)
	}
	var kept []*Term
	for _, a := range flat {
		if a.Op == OpBoolConst {
			if a.B == absorber {
				return Bool(absorber)
			}
			if a.B == unit {
				continue
			}
		}
		// Deduplicate.
		dup := false
		for _, k := range kept {
			if Equal(k, a) {
				dup = true
				break
			}
		}
		if !dup {
			kept = append(kept, a)
		}
	}
	// Complement detection: x and not x.
	for _, a := range kept {
		for _, b := range kept {
			if a.Op == OpNot && Equal(a.Args[0], b) {
				return Bool(absorber)
			}
		}
	}
	switch len(kept) {
	case 0:
		return Bool(unit)
	case 1:
		return kept[0]
	}
	return f.mk(n.Op, SortBool, false, 0, "", kept)
}

func (f *Factory) simplifyEq(n *Term) *Term {
	a, b := n.Args[0], n.Args[1]
	if Equal(a, b) {
		return True()
	}
	if a.IsConst() && b.IsConst() {
		// Different constants (Equal already ruled out same).
		return False()
	}
	// Lift equality over ite: (= (ite c x y) k) → (ite c (= x k) (= y k)).
	// NNF later expands the boolean ite into a disjunction, so guard
	// patterns like (= (ite match 1 0) 0) reduce to ¬match.
	if a.Op == OpIte {
		return f.simplify1(f.Ite(a.Args[0], f.Eq(a.Args[1], b), f.Eq(a.Args[2], b)))
	}
	if b.Op == OpIte {
		return f.simplify1(f.Ite(b.Args[0], f.Eq(a, b.Args[1]), f.Eq(a, b.Args[2])))
	}
	if a.Sort() == SortString {
		return f.simplifyStrEq(n, a, b)
	}
	return n
}

// simplifyStrEq strips common constant prefixes and suffixes from string
// equalities over concatenations and detects constant mismatches.
func (f *Factory) simplifyStrEq(n *Term, a, b *Term) *Term {
	la, lb := f.concatParts(a), f.concatParts(b)
	// Strip common constant prefix.
	for len(la) > 0 && len(lb) > 0 {
		x, y := la[0], lb[0]
		if x.Op == OpStrConst && y.Op == OpStrConst && x.S != y.S {
			p := commonPrefix(x.S, y.S)
			if p == 0 {
				return False()
			}
			la[0], lb[0] = f.Str(x.S[p:]), f.Str(y.S[p:])
			if la[0].S == "" {
				la = la[1:]
			}
			if lb[0].S == "" {
				lb = lb[1:]
			}
			continue
		}
		if Equal(x, y) {
			la, lb = la[1:], lb[1:]
			continue
		}
		break
	}
	// Strip common constant suffix.
	for len(la) > 0 && len(lb) > 0 {
		x, y := la[len(la)-1], lb[len(lb)-1]
		if x.Op == OpStrConst && y.Op == OpStrConst && x.S != y.S {
			p := commonSuffix(x.S, y.S)
			if p == 0 {
				return False()
			}
			la[len(la)-1] = f.Str(x.S[:len(x.S)-p])
			lb[len(lb)-1] = f.Str(y.S[:len(y.S)-p])
			if la[len(la)-1].S == "" {
				la = la[:len(la)-1]
			}
			if lb[len(lb)-1].S == "" {
				lb = lb[:len(lb)-1]
			}
			continue
		}
		if Equal(x, y) {
			la, lb = la[:len(la)-1], lb[:len(lb)-1]
			continue
		}
		break
	}
	na, nb := f.Concat(la...), f.Concat(lb...)
	if Equal(na, nb) {
		return True()
	}
	if na.IsConst() && nb.IsConst() {
		return Bool(na.S == nb.S)
	}
	// An empty side forces every remaining part of the other side empty.
	if na.Op == OpStrConst && na.S == "" && nb.Op == OpConcat {
		parts := make([]*Term, 0, len(nb.Args))
		for _, p := range nb.Args {
			parts = append(parts, f.Eq(p, f.Str("")))
		}
		return f.simplifyAndOr(f.And(parts...), true)
	}
	if nb.Op == OpStrConst && nb.S == "" && na.Op == OpConcat {
		parts := make([]*Term, 0, len(na.Args))
		for _, p := range na.Args {
			parts = append(parts, f.Eq(p, f.Str("")))
		}
		return f.simplifyAndOr(f.And(parts...), true)
	}
	if Equal(na, n.Args[0]) && Equal(nb, n.Args[1]) {
		return n
	}
	return f.Eq(na, nb)
}

// concatParts returns the flattened concatenation parts of a string term
// (a copy safe to mutate), merging adjacent constants.
func (f *Factory) concatParts(t *Term) []*Term {
	var parts []*Term
	var walk func(*Term)
	walk = func(x *Term) {
		if x.Op == OpConcat {
			for _, a := range x.Args {
				walk(a)
			}
			return
		}
		parts = append(parts, x)
	}
	walk(t)
	return f.mergeConstParts(parts)
}

func (f *Factory) mergeConstParts(parts []*Term) []*Term {
	var out []*Term
	for _, p := range parts {
		if p.Op == OpStrConst && p.S == "" {
			continue
		}
		if len(out) > 0 && out[len(out)-1].Op == OpStrConst && p.Op == OpStrConst {
			out[len(out)-1] = f.Str(out[len(out)-1].S + p.S)
			continue
		}
		out = append(out, p)
	}
	return out
}

func commonPrefix(a, b string) int {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	return i
}

func commonSuffix(a, b string) int {
	i := 0
	for i < len(a) && i < len(b) && a[len(a)-1-i] == b[len(b)-1-i] {
		i++
	}
	return i
}

func (f *Factory) simplifyConcat(n *Term) *Term {
	parts := f.concatParts(n)
	return f.Concat(parts...)
}

func (f *Factory) simplifyLen(n *Term) *Term {
	x := n.Args[0]
	switch x.Op {
	case OpStrConst:
		return f.Int(int64(len(x.S)))
	case OpConcat:
		// len(a ++ b) = len a + len b, folding constant parts.
		var constSum int64
		var terms []*Term
		for _, p := range x.Args {
			if p.Op == OpStrConst {
				constSum += int64(len(p.S))
				continue
			}
			terms = append(terms, f.Len(p))
		}
		if constSum != 0 || len(terms) == 0 {
			terms = append(terms, f.Int(constSum))
		}
		return f.simplifyAdd(f.Add(terms...))
	case OpFromInt:
		return n
	}
	return n
}

func (f *Factory) simplifySuffixOf(n *Term) *Term {
	suffix, s := n.Args[0], n.Args[1]
	if suffix.Op == OpStrConst {
		if suffix.S == "" {
			return True()
		}
		parts := f.concatParts(s)
		suf := suffix.S
		// Peel constant tail parts.
		for len(parts) > 0 {
			last := parts[len(parts)-1]
			if last.Op != OpStrConst {
				break
			}
			if len(last.S) >= len(suf) {
				return Bool(strings.HasSuffix(last.S, suf))
			}
			if !strings.HasSuffix(suf, last.S) {
				return False()
			}
			suf = suf[:len(suf)-len(last.S)]
			parts = parts[:len(parts)-1]
		}
		if len(parts) == 0 {
			return Bool(suf == "")
		}
		return f.SuffixOf(f.Str(suf), f.Concat(parts...))
	}
	if Equal(suffix, s) {
		return True()
	}
	return n
}

func (f *Factory) simplifyPrefixOf(n *Term) *Term {
	prefix, s := n.Args[0], n.Args[1]
	if prefix.Op == OpStrConst {
		if prefix.S == "" {
			return True()
		}
		parts := f.concatParts(s)
		pre := prefix.S
		for len(parts) > 0 {
			first := parts[0]
			if first.Op != OpStrConst {
				break
			}
			if len(first.S) >= len(pre) {
				return Bool(strings.HasPrefix(first.S, pre))
			}
			if !strings.HasPrefix(pre, first.S) {
				return False()
			}
			pre = pre[len(first.S):]
			parts = parts[1:]
		}
		if len(parts) == 0 {
			return Bool(pre == "")
		}
		return f.PrefixOf(f.Str(pre), f.Concat(parts...))
	}
	if Equal(prefix, s) {
		return True()
	}
	return n
}

func (f *Factory) simplifyContains(n *Term) *Term {
	s, sub := n.Args[0], n.Args[1]
	if sub.Op == OpStrConst {
		if sub.S == "" {
			return True()
		}
		// If any single constant part already contains sub, true.
		if s.Op == OpConcat {
			for _, p := range s.Args {
				if p.Op == OpStrConst && strings.Contains(p.S, sub.S) {
					return True()
				}
			}
		}
	}
	if Equal(s, sub) {
		return True()
	}
	return n
}

func (f *Factory) simplifyAdd(n *Term) *Term {
	var flat []*Term
	var walk func(*Term)
	walk = func(x *Term) {
		if x.Op == OpAdd {
			for _, a := range x.Args {
				walk(a)
			}
			return
		}
		flat = append(flat, x)
	}
	walk(n)
	var constSum int64
	var terms []*Term
	for _, p := range flat {
		if p.Op == OpIntConst {
			constSum += p.I
			continue
		}
		terms = append(terms, p)
	}
	if constSum != 0 || len(terms) == 0 {
		terms = append(terms, f.Int(constSum))
	}
	if len(terms) == 1 {
		return terms[0]
	}
	return f.mk(OpAdd, SortInt, false, 0, "", terms)
}

// simplifyCmp normalizes comparisons whose sides share constant offsets,
// e.g. (> (+ x 4) 10) → (> x 6), and evaluates len-vs-negative bounds:
// str.len is always >= 0, so (>= (str.len e) 0) is true.
func (f *Factory) simplifyCmp(n *Term) *Term {
	a, b := n.Args[0], n.Args[1]
	// Canonicalize: constant offsets live only on the right-hand side, so
	// bounds like (> (+ n -2) (str.len s)) normalize to
	// (> n (+ (str.len s) 2)) and the moved constant becomes visible to
	// candidate seeding. Moving in one direction only keeps this
	// terminating.
	if hasConstPart(a) {
		rest, c := f.splitConst(a)
		if c != 0 && rest != nil {
			return f.simplifyCmp(f.mk(n.Op, SortBool, false, 0, "",
				[]*Term{rest, f.simplifyAdd(f.Add(b, f.Int(-c)))}))
		}
	}
	// Nonnegativity of lengths.
	if isNonNegative(a) && b.Op == OpIntConst {
		switch n.Op {
		case OpGe:
			if b.I <= 0 {
				return True()
			}
		case OpGt:
			if b.I < 0 {
				return True()
			}
		case OpLt:
			if b.I <= 0 {
				return False()
			}
		case OpLe:
			if b.I < 0 {
				return False()
			}
		}
	}
	return n
}

// hasConstPart reports whether t is an Add with a non-zero constant
// contribution alongside non-constant parts.
func hasConstPart(t *Term) bool {
	if t.Op != OpAdd {
		return false
	}
	hasConst, hasOther := false, false
	for _, p := range t.Args {
		if p.Op == OpIntConst {
			if p.I != 0 {
				hasConst = true
			}
		} else {
			hasOther = true
		}
	}
	return hasConst && hasOther
}

// splitConst separates an Add into its non-constant remainder and the
// summed constant part. rest is nil when everything was constant.
func (f *Factory) splitConst(t *Term) (rest *Term, c int64) {
	if t.Op != OpAdd {
		return t, 0
	}
	var parts []*Term
	for _, p := range t.Args {
		if p.Op == OpIntConst {
			c += p.I
		} else {
			parts = append(parts, p)
		}
	}
	if len(parts) == 0 {
		return nil, c
	}
	return f.Add(parts...), c
}

// isNonNegative reports terms that are always >= 0.
func isNonNegative(t *Term) bool {
	switch t.Op {
	case OpLen:
		return true
	case OpIntConst:
		return t.I >= 0
	case OpAdd, OpMul:
		for _, a := range t.Args {
			if !isNonNegative(a) {
				return false
			}
		}
		return true
	}
	return false
}
