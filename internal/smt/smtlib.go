package smt

import (
	"fmt"
	"strings"
)

// smtlibOpNames maps opcodes to their official SMT-LIB 2.6 names where they
// differ from Op.String().
var smtlibOpNames = map[Op]string{
	OpToInt:   "str.to_int",
	OpFromInt: "str.from_int",
	OpNeg:     "-",
}

// ToSMTLIB2 renders f as a complete SMT-LIB 2 script: set-logic,
// declarations for every free variable, a single assert, check-sat and
// get-model. The output is accepted by Z3 and cvc5, which keeps this
// reproduction cross-checkable against the solvers the paper used.
func ToSMTLIB2(f *Term) string {
	var sb strings.Builder
	sb.WriteString("(set-logic QF_SLIA)\n")
	names := renameVars(Vars(f))
	for _, v := range Vars(f) {
		fmt.Fprintf(&sb, "(declare-const %s %s)\n", names[v.S], v.Sort())
	}
	sb.WriteString("(assert ")
	writeSMTLIB(&sb, f, names)
	sb.WriteString(")\n(check-sat)\n(get-model)\n")
	return sb.String()
}

// renameVars maps every distinct internal variable name onto a distinct
// valid SMT-LIB symbol. sanitizeName alone is not injective — distinct
// internal names such as "a[b]" and "a_b_" both sanitize to "a_b_" —
// which would silently merge variables in the emitted script and change
// its meaning. Collisions are resolved deterministically in
// first-occurrence order by appending a "_2", "_3", … suffix (itself
// collision-checked) to every name after the first.
func renameVars(vars []*Term) map[string]string {
	names := make(map[string]string, len(vars))
	taken := make(map[string]bool, len(vars))
	for _, v := range vars {
		base := sanitizeName(v.S)
		out := base
		for n := 2; taken[out]; n++ {
			out = fmt.Sprintf("%s_%d", base, n)
		}
		names[v.S] = out
		taken[out] = true
	}
	return names
}

func writeSMTLIB(sb *strings.Builder, t *Term, names map[string]string) {
	switch t.Op {
	case OpBoolConst:
		if t.B {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case OpIntConst:
		if t.I < 0 {
			fmt.Fprintf(sb, "(- %d)", -t.I)
		} else {
			fmt.Fprintf(sb, "%d", t.I)
		}
	case OpStrConst:
		sb.WriteString(quoteSMT(t.S))
	case OpVar:
		if name, ok := names[t.S]; ok {
			sb.WriteString(name)
		} else {
			sb.WriteString(sanitizeName(t.S))
		}
	default:
		name, ok := smtlibOpNames[t.Op]
		if !ok {
			name = t.Op.String()
		}
		sb.WriteByte('(')
		sb.WriteString(name)
		for _, a := range t.Args {
			sb.WriteByte(' ')
			writeSMTLIB(sb, a, names)
		}
		sb.WriteByte(')')
	}
}

// sanitizeName maps internal symbol names onto valid SMT-LIB simple
// symbols. Internal names may contain '$' (from PHP superglobals) which is
// legal in SMT-LIB simple symbols, but characters like '[' are not; those
// are replaced by '_'.
func sanitizeName(name string) string {
	ok := true
	for i := 0; i < len(name); i++ {
		if !isSMTSymbolChar(name[i]) {
			ok = false
			break
		}
	}
	if ok && name != "" {
		return name
	}
	var sb strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if isSMTSymbolChar(c) {
			sb.WriteByte(c)
		} else {
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "_"
	}
	return sb.String()
}

func isSMTSymbolChar(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	}
	switch c {
	case '~', '!', '@', '$', '%', '^', '&', '*', '_', '-', '+', '=', '<', '>', '.', '?', '/':
		return true
	}
	return false
}
