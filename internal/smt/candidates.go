package smt

import "strings"

// candidatePool derives, from the constraint being searched, the finite
// candidate domains used by the bounded model search.
//
// The seeding strategy makes the search complete for the constraint shapes
// UChecker's translator emits:
//
//   - Equalities and suffix/prefix/contains atoms against string literals
//     are solvable by the literals themselves and their prefixes/suffixes
//     (e.g. x where (str.suffixof ".php" (str.++ x)) needs x = ".php" or
//     any extension of it, and x where (= (str.++ x ".php") "a.php")
//     needs the substring "a").
//   - Length comparisons (str.len e ⋈ n) are solvable by filler strings of
//     length n-1, n, n+1 built from a neutral alphabet character.
//   - Concatenation equalities are covered by pairwise concatenations of
//     the literal seeds (bounded).
//   - Integer comparisons are solvable by the constants and their ±1
//     neighbourhood, plus the lengths of the string literals.
//
// Every candidate that actually gets reported in a model is re-verified by
// evaluating the original formula, so over-generation is harmless.
type candidatePool struct {
	strs  []Value
	ints  []Value
	bools []Value
}

func newCandidatePool(conj *Term, opts Options) *candidatePool {
	p := &candidatePool{
		bools: []Value{BoolValue(true), BoolValue(false)},
	}

	var strLits []string
	var intLits []int64
	seenS := map[string]bool{}
	seenI := map[int64]bool{}
	var walk func(*Term)
	walk = func(t *Term) {
		if t == nil {
			return
		}
		switch t.Op {
		case OpStrConst:
			if !seenS[t.S] {
				seenS[t.S] = true
				strLits = append(strLits, t.S)
			}
		case OpIntConst:
			if !seenI[t.I] {
				seenI[t.I] = true
				intLits = append(intLits, t.I)
			}
		}
		for _, a := range t.Args {
			walk(a)
		}
	}
	walk(conj)

	// --- string candidates, in priority order ---
	addS := func(s string) {
		if len(p.strs) >= opts.MaxStrCandidates {
			return
		}
		for _, v := range p.strs {
			if v.S == s {
				return
			}
		}
		p.strs = append(p.strs, StrValue(s))
	}
	addS("")
	for _, l := range strLits {
		addS(l)
	}
	// Suffixes and prefixes of each literal (most useful for
	// suffixof/prefixof decomposition), shortest literals first.
	for _, l := range strLits {
		if len(l) > 24 {
			continue
		}
		for i := 1; i < len(l); i++ {
			addS(l[i:]) // proper suffixes
		}
		for i := len(l) - 1; i > 0; i-- {
			addS(l[:i]) // proper prefixes
		}
	}
	// Filler strings for length constraints: lengths n-1, n, n+1 for every
	// small integer constant n, built from 'a'. Constants appear negated
	// when the simplifier moves offsets across comparisons, so the
	// absolute value seeds fillers too.
	for _, n := range intLits {
		if n < 0 {
			n = -n
		}
		for _, d := range []int64{-1, 0, 1} {
			k := n + d
			if k >= 0 && k <= 64 {
				addS(strings.Repeat("a", int(k)))
			}
		}
	}
	// Literal ++ literal pairs (covers split equalities), bounded.
	for _, a := range strLits {
		for _, b := range strLits {
			if len(a)+len(b) <= 32 {
				addS(a + b)
			}
		}
	}
	// Fillers combined with literals (filler-prefixed extensions satisfy a
	// suffix requirement and a length floor simultaneously).
	for _, l := range strLits {
		if len(l) <= 16 {
			addS("a" + l)
			addS("aaaa" + l)
			addS("aaaaaaaa" + l)
		}
	}
	// Generic two-letter seeds: purely relational constraints (x a proper
	// suffix of y but not a prefix, x = y ++ y, …) can survive
	// simplification with no literals at all; a tiny two-letter universe
	// gives the search witnesses for such shapes.
	for _, s := range []string{"a", "b", "ab", "ba", "aa", "bb"} {
		addS(s)
	}
	// Digit strings for str.to.int interplay.
	addS("0")
	addS("1")
	for _, n := range intLits {
		if n >= 0 && n < 1_000_000 {
			addS(itoa(n))
		}
	}

	// --- integer candidates ---
	addI := func(i int64) {
		if len(p.ints) >= opts.MaxIntCandidates {
			return
		}
		for _, v := range p.ints {
			if v.I == i {
				return
			}
		}
		p.ints = append(p.ints, IntValue(i))
	}
	addI(0)
	addI(1)
	addI(-1)
	// Both signs: comparison normalization can negate constants.
	for _, n := range intLits {
		addI(n)
		addI(n - 1)
		addI(n + 1)
		addI(-n)
		addI(-n - 1)
		addI(-n + 1)
	}
	// Candidate-length seeding: integer variables are typically compared
	// against lengths of string variables, whose values come from the
	// candidate pool above. Seed every distinct candidate length, its ±1
	// neighbourhood, pairwise sums (concatenations of two variables), and
	// offsets by the formula's integer constants.
	lenSet := map[int64]bool{}
	for _, v := range p.strs {
		lenSet[int64(len(v.S))] = true
	}
	var candLens []int64
	for l := range lenSet {
		candLens = append(candLens, l)
	}
	sortInt64s(candLens)
	for _, l := range candLens {
		addI(l)
		addI(l - 1)
		addI(l + 1)
	}
	for _, a := range candLens {
		for _, b := range candLens {
			addI(a + b)
			addI(a + b + 1)
		}
	}
	for _, l := range candLens {
		for _, c := range intLits {
			for _, d := range []int64{0, 1, -1} {
				addI(l + c + d)
				addI(l - c + d)
			}
		}
	}

	return p
}

func (p *candidatePool) forVar(v *Term) []Value {
	switch v.Sort() {
	case SortBool:
		return p.bools
	case SortInt:
		return p.ints
	default:
		return p.strs
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func sortInt64s(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
