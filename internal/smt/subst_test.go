package smt

import "testing"

func TestFormalConstruction(t *testing.T) {
	f := NewFactory()
	a := f.Formal(0, SortString)
	b := f.Formal(0, SortString)
	if a != b {
		t.Error("interned formals with equal index/sort are not pointer-equal")
	}
	if f.Formal(1, SortString) == a {
		t.Error("distinct formal indices interned to the same node")
	}
	if f.Formal(0, SortInt) == a {
		t.Error("distinct formal sorts interned to the same node")
	}
	if got := a.String(); got != "formal_0" {
		t.Errorf("Formal(0).String() = %q, want formal_0", got)
	}
	// Package-level constructor agrees structurally.
	if !Equal(a, Formal(0, SortString)) {
		t.Error("factory and package Formal disagree structurally")
	}
}

func TestSubstitute(t *testing.T) {
	f := NewFactory()
	// concat(formal_0, ".php", formal_1)
	sum := f.Concat(f.Formal(0, SortString), f.Str(".php"), f.Formal(1, SortString))
	x := f.Var("x", SortString)
	y := f.Var("y", SortString)
	got := f.Substitute(sum, []*Term{x, y})
	want := f.Concat(x, f.Str(".php"), y)
	if got != want {
		t.Errorf("Substitute = %s, want %s", got, want)
	}
	if HasFormal(got) {
		t.Error("substituted term still contains formals")
	}

	// Unchanged spines are returned as-is.
	noFormals := f.Concat(f.Str("a"), f.Str("b"))
	if f.Substitute(noFormals, []*Term{x}) != noFormals {
		t.Error("formal-free term was rebuilt")
	}

	// Out-of-range formals stay in place.
	left := f.Substitute(sum, []*Term{x})
	if !HasFormal(left) {
		t.Error("out-of-range formal was dropped instead of left in place")
	}

	// The persistent memo answers repeated instantiations.
	before := f.Stats().SimplifyMemoHits
	if f.Substitute(sum, []*Term{x, y}) != want {
		t.Error("memoized substitution changed its answer")
	}
	if f.Stats().SimplifyMemoHits <= before {
		t.Error("repeated substitution did not hit the persistent memo")
	}
}

func TestSubstituteNested(t *testing.T) {
	f := NewFactory()
	// Composition: substitute a summary term into another summary's
	// formal slots, as the bottom-up SCC composition does.
	inner := f.Concat(f.Formal(0, SortString), f.Str("/up"))
	outer := f.Len(f.Formal(0, SortString))
	composed := f.Substitute(outer, []*Term{inner})
	want := f.Len(inner)
	if composed != want {
		t.Errorf("composed = %s, want %s", composed, want)
	}
	// Instantiating the composed term eliminates the remaining formal.
	final := f.Substitute(composed, []*Term{f.Str("img")})
	if HasFormal(final) {
		t.Error("fully instantiated term still has formals")
	}
	if final != f.Len(f.Concat(f.Str("img"), f.Str("/up"))) {
		t.Errorf("final = %s", final)
	}
}

func TestSubstituteNilFactory(t *testing.T) {
	var f *Factory
	sum := Concat(Formal(0, SortString), Str(".php"))
	got := f.Substitute(sum, []*Term{Str("a")})
	want := Concat(Str("a"), Str(".php"))
	if !Equal(got, want) {
		t.Errorf("nil-factory Substitute = %s, want %s", got, want)
	}
	if f.Formal(2, SortInt) == nil || f.Formal(2, SortInt).I != 2 {
		t.Error("nil-factory Formal broken")
	}
	if f.Substitute(nil, nil) != nil {
		t.Error("Substitute(nil) != nil")
	}
}
