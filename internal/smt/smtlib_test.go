package smt

import (
	"fmt"
	"strings"
	"testing"
)

// TestToSMTLIB2CollidingNames is the regression test for the sanitization
// collision: distinct internal variable names that sanitize to the same
// SMT-LIB symbol (e.g. "a[b]" and "a_b_" both sanitize to "a_b_") must be
// declared as distinct symbols, or the emitted script silently merges two
// different variables and changes the formula's meaning.
func TestToSMTLIB2CollidingNames(t *testing.T) {
	f := And(
		Eq(Var("a[b]", SortString), Str("x")),
		Eq(Var("a_b_", SortString), Str("y")),
		Eq(Var("a{b}", SortString), Str("z")),
	)
	out := ToSMTLIB2(f)
	// Three distinct declarations.
	if n := strings.Count(out, "declare-const"); n != 3 {
		t.Fatalf("declared %d symbols, want 3:\n%s", n, out)
	}
	decls := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "(declare-const ") {
			continue
		}
		fields := strings.Fields(line)
		name := fields[1]
		if decls[name] {
			t.Fatalf("duplicate declaration of %q — collision not resolved:\n%s", name, out)
		}
		decls[name] = true
	}
	// First occurrence keeps the plain sanitized name; later collisions
	// get deterministic suffixes.
	for _, want := range []string{"a_b_", "a_b__2", "a_b__3"} {
		if !decls[want] {
			t.Fatalf("missing expected symbol %q in %v:\n%s", want, decls, out)
		}
	}
	// Each constant must be equated to a different symbol in the body.
	for sym, c := range map[string]string{"a_b_": `"x"`, "a_b__2": `"y"`, "a_b__3": `"z"`} {
		if !strings.Contains(out, fmt.Sprintf("(= %s %s)", sym, c)) {
			t.Fatalf("body does not bind %s to %s:\n%s", sym, c, out)
		}
	}
}

// TestToSMTLIB2SuffixCollision: the uniquifying suffix itself must not
// collide with a later variable that already carries it.
func TestToSMTLIB2SuffixCollision(t *testing.T) {
	f := And(
		Eq(Var("v[", SortString), Str("x")), // sanitizes to "v_"
		Eq(Var("v]", SortString), Str("y")), // also "v_" → "v__2"
		Eq(Var("v__2", SortString), Str("z")),
	)
	out := ToSMTLIB2(f)
	decls := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "(declare-const ") {
			name := strings.Fields(line)[1]
			if decls[name] {
				t.Fatalf("duplicate declaration of %q:\n%s", name, out)
			}
			decls[name] = true
		}
	}
	if len(decls) != 3 {
		t.Fatalf("declared %d distinct symbols, want 3: %v\n%s", len(decls), decls, out)
	}
}

// TestRenameVarsDeterministic: the rename map depends only on
// first-occurrence order, so repeated renders are byte-identical.
func TestRenameVarsDeterministic(t *testing.T) {
	f := And(
		Eq(Var("a[b]", SortString), Var("a_b_", SortString)),
		Contains(Var("a(b)", SortString), Str("q")),
	)
	first := ToSMTLIB2(f)
	for i := 0; i < 5; i++ {
		if got := ToSMTLIB2(f); got != first {
			t.Fatalf("render %d differs:\n%s\n---\n%s", i, first, got)
		}
	}
}

// TestToSMTLIB2NonCollidingUnchanged: names that do not collide keep the
// plain sanitized form — no spurious suffixes on the common path.
func TestToSMTLIB2NonCollidingUnchanged(t *testing.T) {
	f := Eq(Var("$_FILES[name]", SortString), Str("a.php"))
	out := ToSMTLIB2(f)
	if !strings.Contains(out, "(declare-const $_FILES_name_ String)") {
		t.Fatalf("expected plain sanitized declaration:\n%s", out)
	}
	if strings.Contains(out, "_2 ") {
		t.Fatalf("spurious suffix on non-colliding name:\n%s", out)
	}
}
