// Package smt implements the SMT layer UChecker verifies constraints with.
//
// The paper uses Z3 with string extensions (Z3-str) as its solver. This
// package is a from-scratch, stdlib-only replacement that decides exactly
// the fragment UChecker's translator emits: boolean structure over integer
// arithmetic/comparisons and the string operations of Table II — str.++,
// str.len, str.suffixof, str.prefixof, str.contains, str.indexof,
// str.replace, str.substr, str.to.int, str.at.
//
// Decision procedure (see Solver): a rewriting simplifier performs constant
// folding and structural reasoning (concat flattening, suffix decomposition,
// length arithmetic); the remainder is converted to DNF and each cube is
// checked by a literal-seeded bounded model search whose witnesses are
// verified by evaluation, so Sat answers are always sound. Unsat answers
// are bounded-complete: complete for the finite candidate space documented
// in candidates.go, which covers the constraint shapes the detector
// generates. An SMT-LIB2 serializer (ToSMTLIB2) keeps compatibility with
// external solvers for cross-checking.
package smt

import (
	"fmt"
	"strconv"
	"strings"
)

// Sort is the type of a term.
type Sort int

// Sorts.
const (
	SortBool Sort = iota
	SortInt
	SortString
)

func (s Sort) String() string {
	switch s {
	case SortBool:
		return "Bool"
	case SortInt:
		return "Int"
	case SortString:
		return "String"
	default:
		return fmt.Sprintf("Sort(%d)", int(s))
	}
}

// Op is a term constructor opcode.
type Op int

// Opcodes.
const (
	OpInvalid Op = iota

	// Leaves.
	OpBoolConst // Bool
	OpIntConst  // Int
	OpStrConst  // Str
	OpVar       // Str = name, Sort field gives sort

	// Boolean connectives.
	OpNot
	OpAnd
	OpOr
	OpEq  // polymorphic equality, both args same sort
	OpIte // Ite(cond, then, else); then/else same sort

	// Integer arithmetic and comparisons.
	OpAdd
	OpSub
	OpMul
	OpNeg
	OpLt
	OpLe
	OpGt
	OpGe

	// String operations.
	OpConcat   // str.++ (n-ary)
	OpLen      // str.len -> Int
	OpSuffixOf // str.suffixof suffix s
	OpPrefixOf // str.prefixof prefix s
	OpContains // str.contains s sub
	OpIndexOf  // str.indexof s sub from -> Int
	OpReplace  // str.replace s old new -> String (first occurrence)
	OpSubstr   // str.substr s off len -> String
	OpToInt    // str.to.int -> Int (-1 when not a digit string)
	OpFromInt  // str.from.int Int -> String
	OpAt       // str.at s i -> String (1-char or empty)

	// OpFormal is a formal-parameter placeholder used by function
	// summaries (internal/summary): I is the zero-based formal index and
	// the sort field carries the formal's sort. Formals never reach the
	// solver — Factory.Substitute replaces them with actual-argument
	// terms when a summary is instantiated at a call site.
	OpFormal
)

var opNames = map[Op]string{
	OpBoolConst: "bool", OpIntConst: "int", OpStrConst: "str", OpVar: "var",
	OpNot: "not", OpAnd: "and", OpOr: "or", OpEq: "=", OpIte: "ite",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpNeg: "neg",
	OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpConcat: "str.++", OpLen: "str.len",
	OpSuffixOf: "str.suffixof", OpPrefixOf: "str.prefixof",
	OpContains: "str.contains", OpIndexOf: "str.indexof",
	OpReplace: "str.replace", OpSubstr: "str.substr",
	OpToInt: "str.to.int", OpFromInt: "str.from.int", OpAt: "str.at",
	OpFormal: "formal",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Term is an SMT term. Terms are immutable after construction; share them
// freely.
type Term struct {
	Op   Op
	sort Sort

	B    bool    // OpBoolConst
	I    int64   // OpIntConst
	S    string  // OpStrConst value or OpVar name
	Args []*Term // operands
}

// Sort returns the term's sort.
func (t *Term) Sort() Sort { return t.sort }

// IsConst reports whether t is a constant leaf.
func (t *Term) IsConst() bool {
	switch t.Op {
	case OpBoolConst, OpIntConst, OpStrConst:
		return true
	}
	return false
}

// --- constructors ---

var (
	trueTerm  = &Term{Op: OpBoolConst, sort: SortBool, B: true}
	falseTerm = &Term{Op: OpBoolConst, sort: SortBool, B: false}
)

// True returns the true constant.
func True() *Term { return trueTerm }

// False returns the false constant.
func False() *Term { return falseTerm }

// Bool returns a boolean constant.
func Bool(b bool) *Term {
	if b {
		return trueTerm
	}
	return falseTerm
}

// Int returns an integer constant.
func Int(v int64) *Term { return &Term{Op: OpIntConst, sort: SortInt, I: v} }

// Str returns a string constant.
func Str(s string) *Term { return &Term{Op: OpStrConst, sort: SortString, S: s} }

// Var returns a variable of the given sort.
func Var(name string, sort Sort) *Term { return &Term{Op: OpVar, sort: sort, S: name} }

// Formal returns a formal-parameter placeholder for the zero-based
// parameter index i. Formals appear only inside function summaries and
// are eliminated by Factory.Substitute before any term reaches a solver.
func Formal(i int, sort Sort) *Term { return &Term{Op: OpFormal, sort: sort, I: int64(i)} }

// Not negates a boolean term.
func Not(t *Term) *Term { return &Term{Op: OpNot, sort: SortBool, Args: []*Term{t}} }

// And conjoins boolean terms. And() is true.
func And(ts ...*Term) *Term {
	switch len(ts) {
	case 0:
		return trueTerm
	case 1:
		return ts[0]
	}
	return &Term{Op: OpAnd, sort: SortBool, Args: ts}
}

// Or disjoins boolean terms. Or() is false.
func Or(ts ...*Term) *Term {
	switch len(ts) {
	case 0:
		return falseTerm
	case 1:
		return ts[0]
	}
	return &Term{Op: OpOr, sort: SortBool, Args: ts}
}

// Eq builds equality between two terms of the same sort.
func Eq(a, b *Term) *Term { return &Term{Op: OpEq, sort: SortBool, Args: []*Term{a, b}} }

// Ite builds if-then-else.
func Ite(c, a, b *Term) *Term {
	return &Term{Op: OpIte, sort: a.sort, Args: []*Term{c, a, b}}
}

// Add sums integer terms.
func Add(ts ...*Term) *Term {
	if len(ts) == 1 {
		return ts[0]
	}
	return &Term{Op: OpAdd, sort: SortInt, Args: ts}
}

// Sub subtracts b from a.
func Sub(a, b *Term) *Term { return &Term{Op: OpSub, sort: SortInt, Args: []*Term{a, b}} }

// Mul multiplies integer terms.
func Mul(ts ...*Term) *Term {
	if len(ts) == 1 {
		return ts[0]
	}
	return &Term{Op: OpMul, sort: SortInt, Args: ts}
}

// Neg negates an integer term.
func Neg(a *Term) *Term { return &Term{Op: OpNeg, sort: SortInt, Args: []*Term{a}} }

// Lt is a < b.
func Lt(a, b *Term) *Term { return &Term{Op: OpLt, sort: SortBool, Args: []*Term{a, b}} }

// Le is a <= b.
func Le(a, b *Term) *Term { return &Term{Op: OpLe, sort: SortBool, Args: []*Term{a, b}} }

// Gt is a > b.
func Gt(a, b *Term) *Term { return &Term{Op: OpGt, sort: SortBool, Args: []*Term{a, b}} }

// Ge is a >= b.
func Ge(a, b *Term) *Term { return &Term{Op: OpGe, sort: SortBool, Args: []*Term{a, b}} }

// Concat concatenates string terms. Concat() is "".
func Concat(ts ...*Term) *Term {
	switch len(ts) {
	case 0:
		return Str("")
	case 1:
		return ts[0]
	}
	return &Term{Op: OpConcat, sort: SortString, Args: ts}
}

// Len is str.len.
func Len(s *Term) *Term { return &Term{Op: OpLen, sort: SortInt, Args: []*Term{s}} }

// SuffixOf is str.suffixof: does s end with suffix?
func SuffixOf(suffix, s *Term) *Term {
	return &Term{Op: OpSuffixOf, sort: SortBool, Args: []*Term{suffix, s}}
}

// PrefixOf is str.prefixof: does s start with prefix?
func PrefixOf(prefix, s *Term) *Term {
	return &Term{Op: OpPrefixOf, sort: SortBool, Args: []*Term{prefix, s}}
}

// Contains is str.contains: does s contain sub?
func Contains(s, sub *Term) *Term {
	return &Term{Op: OpContains, sort: SortBool, Args: []*Term{s, sub}}
}

// IndexOf is str.indexof s sub from.
func IndexOf(s, sub, from *Term) *Term {
	return &Term{Op: OpIndexOf, sort: SortInt, Args: []*Term{s, sub, from}}
}

// Replace is str.replace s old new (first occurrence only, per SMT-LIB).
func Replace(s, old, new *Term) *Term {
	return &Term{Op: OpReplace, sort: SortString, Args: []*Term{s, old, new}}
}

// Substr is str.substr s off len.
func Substr(s, off, length *Term) *Term {
	return &Term{Op: OpSubstr, sort: SortString, Args: []*Term{s, off, length}}
}

// ToInt is str.to.int.
func ToInt(s *Term) *Term { return &Term{Op: OpToInt, sort: SortInt, Args: []*Term{s}} }

// FromInt is str.from.int.
func FromInt(i *Term) *Term { return &Term{Op: OpFromInt, sort: SortString, Args: []*Term{i}} }

// At is str.at.
func At(s, i *Term) *Term { return &Term{Op: OpAt, sort: SortString, Args: []*Term{s, i}} }

// --- inspection ---

// Vars returns the distinct variables of t in first-occurrence order.
func Vars(t *Term) []*Term {
	var out []*Term
	seen := map[string]bool{}
	var walk func(*Term)
	walk = func(x *Term) {
		if x == nil {
			return
		}
		if x.Op == OpVar {
			if !seen[x.S] {
				seen[x.S] = true
				out = append(out, x)
			}
			return
		}
		for _, a := range x.Args {
			walk(a)
		}
	}
	walk(t)
	return out
}

// Equal reports structural equality.
func Equal(a, b *Term) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.Op != b.Op || a.sort != b.sort || a.B != b.B || a.I != b.I || a.S != b.S ||
		len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !Equal(a.Args[i], b.Args[i]) {
			return false
		}
	}
	return true
}

// String renders the term in SMT-LIB-flavoured s-expression syntax.
func (t *Term) String() string {
	var sb strings.Builder
	writeTerm(&sb, t)
	return sb.String()
}

func writeTerm(sb *strings.Builder, t *Term) {
	if t == nil {
		sb.WriteString("<nil>")
		return
	}
	switch t.Op {
	case OpBoolConst:
		sb.WriteString(strconv.FormatBool(t.B))
	case OpIntConst:
		if t.I < 0 {
			fmt.Fprintf(sb, "(- %d)", -t.I)
		} else {
			sb.WriteString(strconv.FormatInt(t.I, 10))
		}
	case OpStrConst:
		sb.WriteString(quoteSMT(t.S))
	case OpVar:
		sb.WriteString(t.S)
	case OpFormal:
		fmt.Fprintf(sb, "formal_%d", t.I)
	default:
		sb.WriteByte('(')
		sb.WriteString(t.Op.String())
		for _, a := range t.Args {
			sb.WriteByte(' ')
			writeTerm(sb, a)
		}
		sb.WriteByte(')')
	}
}

// quoteSMT renders an SMT-LIB string literal: double quotes, with embedded
// double quotes doubled.
func quoteSMT(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Size returns the node count of t, for budget accounting.
func Size(t *Term) int {
	if t == nil {
		return 0
	}
	n := 1
	for _, a := range t.Args {
		n += Size(a)
	}
	return n
}
