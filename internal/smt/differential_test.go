package smt

import (
	"math/rand"
	"testing"
)

// This file cross-checks the bounded-model solver against brute-force
// enumeration on randomly generated formulas whose constants are drawn
// from a small pool. Because every constant in a generated formula is in
// the brute-force domain, and the solver's candidate seeding includes all
// constants of the formula (plus ""), any brute-force-satisfiable formula
// must be found satisfiable by the solver, and every solver verdict must
// be consistent with the enumeration.

var (
	diffStrPool = []string{"", "a", "b", ".php", "ab", "zip"}
	diffIntPool = []int64{-1, 0, 1, 2, 5}
)

type formulaGen struct {
	r *rand.Rand
}

func (g *formulaGen) strExpr(depth int) *Term {
	switch g.r.Intn(4) {
	case 0:
		return Var("s1", SortString)
	case 1:
		return Var("s2", SortString)
	case 2:
		return Str(diffStrPool[g.r.Intn(len(diffStrPool))])
	default:
		if depth <= 0 {
			return Str(diffStrPool[g.r.Intn(len(diffStrPool))])
		}
		return Concat(g.strExpr(depth-1), g.strExpr(depth-1))
	}
}

func (g *formulaGen) intExpr(depth int) *Term {
	switch g.r.Intn(4) {
	case 0:
		return Var("n", SortInt)
	case 1:
		return Int(diffIntPool[g.r.Intn(len(diffIntPool))])
	case 2:
		return Len(g.strExpr(depth - 1))
	default:
		if depth <= 0 {
			return Int(diffIntPool[g.r.Intn(len(diffIntPool))])
		}
		return Add(g.intExpr(depth-1), g.intExpr(depth-1))
	}
}

func (g *formulaGen) atom(depth int) *Term {
	switch g.r.Intn(6) {
	case 0:
		return Eq(g.strExpr(depth), g.strExpr(depth))
	case 1:
		return SuffixOf(g.strExpr(depth), g.strExpr(depth))
	case 2:
		return PrefixOf(g.strExpr(depth), g.strExpr(depth))
	case 3:
		return Contains(g.strExpr(depth), g.strExpr(depth))
	case 4:
		return Gt(g.intExpr(depth), g.intExpr(depth))
	default:
		return Le(g.intExpr(depth), g.intExpr(depth))
	}
}

func (g *formulaGen) boolExpr(depth int) *Term {
	if depth <= 0 {
		return g.atom(1)
	}
	switch g.r.Intn(4) {
	case 0:
		return And(g.boolExpr(depth-1), g.boolExpr(depth-1))
	case 1:
		return Or(g.boolExpr(depth-1), g.boolExpr(depth-1))
	case 2:
		return Not(g.boolExpr(depth - 1))
	default:
		return g.atom(2)
	}
}

// bruteForce enumerates the pool domain for (s1, s2, n) and reports
// whether any assignment satisfies f, together with a witness.
func bruteForce(t *testing.T, f *Term) (bool, Model) {
	t.Helper()
	for _, s1 := range diffStrPool {
		for _, s2 := range diffStrPool {
			for _, n := range diffIntPool {
				m := Model{
					"s1": StrValue(s1),
					"s2": StrValue(s2),
					"n":  IntValue(n),
				}
				v, err := Eval(f, m)
				if err != nil {
					t.Fatalf("brute-force eval error on %s: %v", f, err)
				}
				if v.B {
					return true, m
				}
			}
		}
	}
	return false, nil
}

func TestSolverDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(20260707))
	g := &formulaGen{r: r}
	solver := NewSolver(Options{})

	const rounds = 1000
	sat, unsat := 0, 0
	for i := 0; i < rounds; i++ {
		f := g.boolExpr(3)
		// Bind all three variables so every model is total.
		f = And(f,
			Or(Eq(Var("s1", SortString), Var("s1", SortString))),
			Or(Eq(Var("s2", SortString), Var("s2", SortString))),
			Or(Eq(Var("n", SortInt), Var("n", SortInt))),
		)
		bfSat, bfModel := bruteForce(t, f)
		status, model, _, err := solver.Check(f)
		if err != nil {
			// Budget exhaustion is allowed but must not contradict.
			if status == Unknown {
				continue
			}
			t.Fatalf("round %d: %v on %s", i, err, f)
		}
		switch status {
		case Sat:
			sat++
			v, evalErr := Eval(f, model)
			if evalErr != nil || !v.B {
				t.Fatalf("round %d: unsound model %v for %s", i, model, f)
			}
		case Unsat:
			unsat++
			if bfSat {
				t.Fatalf("round %d: solver unsat but brute force found %v for %s", i, bfModel, f)
			}
		case Unknown:
			// Acceptable; no claim to contradict.
		}
		if bfSat && status == Unsat {
			t.Fatalf("round %d: contradiction on %s", i, f)
		}
		// Completeness over the seeded space: brute-force SAT within the
		// constant pool implies the solver (whose candidates include all
		// formula constants and "") must find some model.
		if bfSat && status != Sat {
			t.Errorf("round %d: brute force sat (%v) but solver %v on %s", i, bfModel, status, f)
		}
	}
	if sat == 0 || unsat == 0 {
		t.Errorf("degenerate distribution: sat=%d unsat=%d of %d", sat, unsat, rounds)
	}
}

// TestSolverDifferentialUnsatAgree: formulas that are unsatisfiable over
// ALL strings (not just the pool) must be reported unsat by the solver.
func TestSolverDifferentialUnsatTautologies(t *testing.T) {
	s1 := Var("s1", SortString)
	cases := []*Term{
		And(Eq(s1, Str("a")), Eq(s1, Str("b"))),
		And(SuffixOf(Str("ab"), s1), Eq(Len(s1), Int(1))),
		And(PrefixOf(Str("a"), s1), Eq(s1, Str("b"))),
		Not(Or(Eq(s1, s1))),
		And(Gt(Len(s1), Int(2)), Lt(Len(s1), Int(2))),
	}
	solver := NewSolver(Options{})
	for _, f := range cases {
		status, _, _, err := solver.Check(f)
		if err != nil || status != Unsat {
			t.Errorf("%s: status=%v err=%v, want unsat", f, status, err)
		}
	}
}
