package smt

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// Status is a solver verdict.
type Status int

// Verdicts.
const (
	// Unknown means the solver exceeded a budget before finding a model or
	// exhausting its bounded search space.
	Unknown Status = iota
	// Sat means a model was found and verified by evaluation.
	Sat
	// Unsat means the formula was refuted: either the simplifier reduced it
	// to false, or the bounded candidate space for every DNF cube was
	// exhausted. The latter is complete only for the candidate space
	// documented in candidates.go (see package comment).
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Stats reports the work performed by one Check call. All fields count
// work, not time, and are deterministic for a given formula and
// options — the scanner aggregates them into its per-app metric set.
type Stats struct {
	Cubes       int // DNF cubes examined
	Assignments int // candidate assignments (models) tried
	Simplified  int // node count after simplification
	// Candidates is the number of candidate values seeded across the
	// variables of every searched cube (the size of the bounded model
	// space actually enumerated).
	Candidates int
	// VerifyEvals counts full-formula verification evaluations — every
	// would-be model is re-checked against the original formula.
	VerifyEvals int
	// Rewrites counts simplifier passes that changed the term (across
	// the top-level simplification and every per-cube simplification).
	Rewrites int
}

// Options configures a Solver. The zero value selects defaults suitable for
// UChecker's constraints.
type Options struct {
	// MaxCubes bounds the DNF expansion; beyond it Check falls back to
	// whole-formula enumeration. Default 4096.
	MaxCubes int
	// MaxAssignments bounds the total candidate assignments tried across
	// all cubes. Default 500000.
	MaxAssignments int
	// MaxStrCandidates bounds the per-variable string candidate set.
	// Default 96.
	MaxStrCandidates int
	// MaxIntCandidates bounds the per-variable integer candidate set.
	// Default 48.
	MaxIntCandidates int
}

func (o Options) withDefaults() Options {
	if o.MaxCubes == 0 {
		o.MaxCubes = 4096
	}
	if o.MaxAssignments == 0 {
		o.MaxAssignments = 500000
	}
	if o.MaxStrCandidates == 0 {
		o.MaxStrCandidates = 96
	}
	if o.MaxIntCandidates == 0 {
		o.MaxIntCandidates = 48
	}
	return o
}

// Halved returns the options with every search budget cut in half — one
// rung of the scanner's degradation ladder. Candidate-set sizes are
// floored so the small-model search still has literals to work with.
func (o Options) Halved() Options {
	o = o.withDefaults()
	o.MaxCubes = max(1, o.MaxCubes/2)
	o.MaxAssignments = max(1, o.MaxAssignments/2)
	o.MaxStrCandidates = max(8, o.MaxStrCandidates/2)
	o.MaxIntCandidates = max(4, o.MaxIntCandidates/2)
	return o
}

// Solver decides formulas in the UChecker fragment. The zero value is ready
// to use with default options.
type Solver struct {
	opts Options
}

// NewSolver returns a Solver with the given options.
func NewSolver(opts Options) *Solver {
	return &Solver{opts: opts.withDefaults()}
}

// ErrBudget is returned (wrapped) when a budget was exhausted; the
// accompanying status is Unknown.
var ErrBudget = errors.New("smt: budget exhausted")

// ctxPollMask controls how often the candidate enumeration polls its
// context: every ctxPollMask+1 assignments (a power of two minus one).
const ctxPollMask = 0x3ff

// Check decides the boolean term f. On Sat the returned model has been
// verified by evaluating f. On Unsat the model is nil.
func (s *Solver) Check(f *Term) (Status, Model, Stats, error) {
	return s.CheckCtx(context.Background(), f)
}

// CheckCtx is Check with cancellation: the cube loop and the candidate
// enumeration poll ctx and abort with status Unknown and ctx's error once
// the context is done.
func (s *Solver) CheckCtx(ctx context.Context, f *Term) (Status, Model, Stats, error) {
	opts := s.opts.withDefaults()
	var st Stats
	if err := ctx.Err(); err != nil {
		return Unknown, nil, st, err
	}
	if f.Sort() != SortBool {
		return Unknown, nil, st, fmt.Errorf("smt: Check on non-boolean term of sort %v", f.Sort())
	}
	g := simplifyCounted(f, &st)
	st.Simplified = Size(g)
	if g.Op == OpBoolConst {
		if g.B {
			m := Model{}
			for _, v := range Vars(f) {
				m[v.S] = defaultValue(v.Sort())
			}
			return Sat, m, st, nil
		}
		return Unsat, nil, st, nil
	}

	cubes, ok := dnf(nnf(g, false), opts.MaxCubes)
	if !ok {
		// DNF blowup: whole-formula enumeration, Sat-only.
		model, tried := s.search(ctx, g, g, opts.MaxAssignments, opts, &st)
		st.Assignments += tried
		if model != nil {
			return Sat, model, st, nil
		}
		if err := ctx.Err(); err != nil {
			return Unknown, nil, st, err
		}
		return Unknown, nil, st, fmt.Errorf("%w: DNF exceeded %d cubes", ErrBudget, opts.MaxCubes)
	}

	budget := opts.MaxAssignments
	exhausted := true
	for _, cube := range cubes {
		if err := ctx.Err(); err != nil {
			return Unknown, nil, st, err
		}
		st.Cubes++
		conj := simplifyCounted(And(cube...), &st)
		if conj.Op == OpBoolConst {
			if conj.B {
				// A cube with no residual constraints: any assignment works;
				// produce the empty model extended for f's variables.
				m := Model{}
				for _, v := range Vars(f) {
					m[v.S] = defaultValue(v.Sort())
				}
				st.VerifyEvals++
				if verify(f, m) {
					return Sat, m, st, nil
				}
				continue
			}
			continue // cube is false
		}
		if budget <= 0 {
			exhausted = false
			break
		}
		model, tried := s.search(ctx, conj, f, budget, opts, &st)
		budget -= tried
		st.Assignments += tried
		if model != nil {
			return Sat, model, st, nil
		}
		if budget <= 0 {
			exhausted = false
		}
	}
	if err := ctx.Err(); err != nil {
		return Unknown, nil, st, err
	}
	if exhausted {
		return Unsat, nil, st, nil
	}
	return Unknown, nil, st, fmt.Errorf("%w: %d assignments tried", ErrBudget, st.Assignments)
}

func defaultValue(s Sort) Value {
	switch s {
	case SortBool:
		return BoolValue(false)
	case SortInt:
		return IntValue(0)
	default:
		return StrValue("")
	}
}

// verify confirms a model satisfies the original formula, extending it with
// defaults for variables the cube never mentioned.
func verify(f *Term, m Model) bool {
	for _, v := range Vars(f) {
		if _, ok := m[v.S]; !ok {
			m[v.S] = defaultValue(v.Sort())
		}
	}
	val, err := Eval(f, m)
	return err == nil && val.Sort == SortBool && val.B
}

// search enumerates candidate assignments for the variables of conj,
// pruning with per-literal partial evaluation, and returns the first model
// that satisfies the full original formula f, or nil. It reports how many
// assignments were tried. ctx is polled every ctxPollMask+1 assignments;
// cancellation aborts the enumeration (returning nil, like exhaustion —
// the caller distinguishes via ctx.Err()).
func (s *Solver) search(ctx context.Context, conj, f *Term, budget int, opts Options, st *Stats) (Model, int) {
	vars := Vars(conj)
	if len(vars) == 0 {
		v, err := Eval(conj, nil)
		if err == nil && v.B {
			m := Model{}
			st.VerifyEvals++
			if verify(f, m) {
				return m, 1
			}
		}
		return nil, 1
	}

	// Order variables: strings last tend to have bigger domains; put
	// smaller domains first for better pruning.
	cands := make([][]Value, len(vars))
	pool := newCandidatePool(conj, opts)
	for i, v := range vars {
		cands[i] = pool.forVar(v)
		st.Candidates += len(cands[i])
	}
	order := make([]int, len(vars))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return len(cands[order[a]]) < len(cands[order[b]]) })

	// Literals for pruning: the conjuncts of conj.
	var lits []*Term
	if conj.Op == OpAnd {
		lits = conj.Args
	} else {
		lits = []*Term{conj}
	}
	litVars := make([][]string, len(lits))
	for i, l := range lits {
		for _, v := range Vars(l) {
			litVars[i] = append(litVars[i], v.S)
		}
	}

	m := Model{}
	tried := 0
	canceled := false
	var dfs func(k int) Model
	dfs = func(k int) Model {
		if tried >= budget || canceled {
			return nil
		}
		if tried&ctxPollMask == ctxPollMask && ctx.Err() != nil {
			canceled = true
			return nil
		}
		if k == len(order) {
			tried++
			// verify extends the clone with defaults for variables of f that
			// the cube never constrained; return that completed model.
			full := cloneModel(m)
			st.VerifyEvals++
			if verify(f, full) {
				return full
			}
			return nil
		}
		vi := order[k]
		name := vars[vi].S
		for _, c := range cands[vi] {
			if tried >= budget || canceled {
				return nil
			}
			m[name] = c
			// Prune: any literal whose variables are all bound must hold.
			ok := true
			for i, l := range lits {
				if !allBound(litVars[i], m) {
					continue
				}
				v, err := Eval(l, m)
				if err != nil || !v.B {
					ok = false
					break
				}
			}
			if ok {
				if res := dfs(k + 1); res != nil {
					return res
				}
			} else {
				tried++
			}
		}
		delete(m, name)
		return nil
	}
	res := dfs(0)
	return res, tried
}

func allBound(names []string, m Model) bool {
	for _, n := range names {
		if _, ok := m[n]; !ok {
			return false
		}
	}
	return true
}

func cloneModel(m Model) Model {
	out := make(Model, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// --- normal forms ---

// nnf converts a boolean term to negation normal form. neg indicates the
// polarity. Non-boolean-structured atoms (equalities, string predicates)
// are kept as literals, negated with Not.
func nnf(t *Term, neg bool) *Term {
	switch t.Op {
	case OpBoolConst:
		return Bool(t.B != neg)
	case OpNot:
		return nnf(t.Args[0], !neg)
	case OpAnd:
		args := make([]*Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = nnf(a, neg)
		}
		if neg {
			return Or(args...)
		}
		return And(args...)
	case OpOr:
		args := make([]*Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = nnf(a, neg)
		}
		if neg {
			return And(args...)
		}
		return Or(args...)
	case OpIte:
		if t.Sort() == SortBool {
			c, a, b := t.Args[0], t.Args[1], t.Args[2]
			// ite(c,a,b) == (c∧a) ∨ (¬c∧b)
			e := Or(And(c, a), And(Not(c), b))
			return nnf(e, neg)
		}
		fallthrough
	case OpLt:
		if neg {
			return Ge(t.Args[0], t.Args[1])
		}
		return t
	case OpLe:
		if neg {
			return Gt(t.Args[0], t.Args[1])
		}
		return t
	case OpGt:
		if neg {
			return Le(t.Args[0], t.Args[1])
		}
		return t
	case OpGe:
		if neg {
			return Lt(t.Args[0], t.Args[1])
		}
		return t
	default:
		if neg {
			return Not(t)
		}
		return t
	}
}

// dnf converts an NNF term to a list of cubes (conjunctions of literals).
// ok is false if the expansion exceeds maxCubes.
func dnf(t *Term, maxCubes int) ([][]*Term, bool) {
	switch t.Op {
	case OpAnd:
		cubes := [][]*Term{nil}
		for _, a := range t.Args {
			sub, ok := dnf(a, maxCubes)
			if !ok {
				return nil, false
			}
			var next [][]*Term
			for _, c := range cubes {
				for _, s := range sub {
					merged := make([]*Term, 0, len(c)+len(s))
					merged = append(merged, c...)
					merged = append(merged, s...)
					next = append(next, merged)
					if len(next) > maxCubes {
						return nil, false
					}
				}
			}
			cubes = next
		}
		return cubes, true
	case OpOr:
		var cubes [][]*Term
		for _, a := range t.Args {
			sub, ok := dnf(a, maxCubes)
			if !ok {
				return nil, false
			}
			cubes = append(cubes, sub...)
			if len(cubes) > maxCubes {
				return nil, false
			}
		}
		return cubes, true
	default:
		return [][]*Term{{t}}, true
	}
}
