package smt

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// Status is a solver verdict.
type Status int

// Verdicts.
const (
	// Unknown means the solver exceeded a budget before finding a model or
	// exhausting its bounded search space.
	Unknown Status = iota
	// Sat means a model was found and verified by evaluation.
	Sat
	// Unsat means the formula was refuted: either the simplifier reduced it
	// to false, or the bounded candidate space for every DNF cube was
	// exhausted. The latter is complete only for the candidate space
	// documented in candidates.go (see package comment).
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Stats reports the work performed by one Check call. All fields count
// work, not time, and are deterministic for a given formula and
// options — the scanner aggregates them into its per-app metric set.
type Stats struct {
	Cubes       int // DNF cubes examined
	Assignments int // candidate assignments (models) tried
	Simplified  int // node count after simplification
	// Candidates is the number of candidate values seeded across the
	// variables of every searched cube (the size of the bounded model
	// space actually enumerated).
	Candidates int
	// VerifyEvals counts full-formula verification evaluations — every
	// would-be model is re-checked against the original formula.
	VerifyEvals int
	// Rewrites counts simplifier passes that changed the term (across
	// the top-level simplification and every per-cube simplification).
	Rewrites int
}

// Accum adds b's work counters into a. Simplified is overwritten (it is a
// measurement of the latest formula, not a running total).
func (a *Stats) Accum(b Stats) {
	a.Cubes += b.Cubes
	a.Assignments += b.Assignments
	a.Simplified = b.Simplified
	a.Candidates += b.Candidates
	a.VerifyEvals += b.VerifyEvals
	a.Rewrites += b.Rewrites
}

// Options configures a Solver. The zero value selects defaults suitable for
// UChecker's constraints.
type Options struct {
	// MaxCubes bounds the DNF expansion; beyond it Check falls back to
	// whole-formula enumeration. Default 4096.
	MaxCubes int
	// MaxAssignments bounds the total candidate assignments tried across
	// all cubes. Default 500000.
	MaxAssignments int
	// MaxStrCandidates bounds the per-variable string candidate set.
	// Default 96.
	MaxStrCandidates int
	// MaxIntCandidates bounds the per-variable integer candidate set.
	// Default 48.
	MaxIntCandidates int
}

func (o Options) withDefaults() Options {
	if o.MaxCubes == 0 {
		o.MaxCubes = 4096
	}
	if o.MaxAssignments == 0 {
		o.MaxAssignments = 500000
	}
	if o.MaxStrCandidates == 0 {
		o.MaxStrCandidates = 96
	}
	if o.MaxIntCandidates == 0 {
		o.MaxIntCandidates = 48
	}
	return o
}

// Solver decides formulas in the UChecker fragment. The zero value is ready
// to use with default options.
type Solver struct {
	opts Options
	// f is the hash-consing factory the solver routes term construction,
	// simplification, and candidate-pool seeding through. nil means no
	// interning (direct construction) — semantics are identical either
	// way, only the amount of recomputation differs.
	f *Factory
}

// NewSolver returns a Solver with the given options.
func NewSolver(opts Options) *Solver {
	return &Solver{opts: opts.withDefaults()}
}

// NewSolverWithFactory returns a Solver that interns and memoizes through
// f. A nil f behaves exactly like NewSolver.
func NewSolverWithFactory(opts Options, f *Factory) *Solver {
	return &Solver{opts: opts.withDefaults(), f: f}
}

// SetFactory installs (or clears, with nil) the solver's hash-consing
// factory. Formulas passed to Check are interned against it, so results
// and Stats are unchanged; only shared work is skipped.
func (s *Solver) SetFactory(f *Factory) { s.f = f }

// Factory returns the solver's factory (possibly nil).
func (s *Solver) Factory() *Factory { return s.f }

// ErrBudget is returned (wrapped) when a budget was exhausted; the
// accompanying status is Unknown.
var ErrBudget = errors.New("smt: budget exhausted")

// ctxPollMask controls how often the candidate enumeration polls its
// context: every ctxPollMask+1 assignments (a power of two minus one).
const ctxPollMask = 0x3ff

// Check decides the boolean term f. On Sat the returned model has been
// verified by evaluating f. On Unsat the model is nil.
func (s *Solver) Check(f *Term) (Status, Model, Stats, error) {
	return s.CheckCtx(context.Background(), f)
}

// CheckCtx is Check with cancellation: the cube loop and the candidate
// enumeration poll ctx and abort with status Unknown and ctx's error once
// the context is done.
func (s *Solver) CheckCtx(ctx context.Context, f *Term) (Status, Model, Stats, error) {
	opts := s.opts.withDefaults()
	var st Stats
	if err := ctx.Err(); err != nil {
		return Unknown, nil, st, err
	}
	if f.Sort() != SortBool {
		return Unknown, nil, st, fmt.Errorf("smt: Check on non-boolean term of sort %v", f.Sort())
	}
	// Canonicalize the formula against the factory so repeat checks of
	// structurally equal formulas (and shared subterms of fresh ones) hit
	// the memo tables. Identity when the factory is nil or f was already
	// built through it.
	f = s.f.Intern(f)
	g := s.f.simplifyCounted(f, &st)
	st.Simplified = s.f.Size(g)
	if g.Op == OpBoolConst {
		if g.B {
			m := Model{}
			for _, v := range s.f.Vars(f) {
				m[v.S] = defaultValue(v.Sort())
			}
			return Sat, m, st, nil
		}
		return Unsat, nil, st, nil
	}

	cubes, ok := s.f.dnfOf(s.f.nnf(g, false), opts.MaxCubes)
	if !ok {
		// DNF blowup: whole-formula enumeration, Sat-only.
		model, tried := s.search(ctx, g, g, opts.MaxAssignments, opts, &st)
		st.Assignments += tried
		if model != nil {
			return Sat, model, st, nil
		}
		if err := ctx.Err(); err != nil {
			return Unknown, nil, st, err
		}
		return Unknown, nil, st, fmt.Errorf("%w: DNF exceeded %d cubes", ErrBudget, opts.MaxCubes)
	}

	budget := opts.MaxAssignments
	exhausted := true
	for _, cube := range cubes {
		if err := ctx.Err(); err != nil {
			return Unknown, nil, st, err
		}
		st.Cubes++
		conj := s.f.simplifyCounted(s.f.And(cube...), &st)
		if conj.Op == OpBoolConst {
			if conj.B {
				// A cube with no residual constraints: any assignment works;
				// produce the empty model extended for f's variables.
				m := Model{}
				for _, v := range s.f.Vars(f) {
					m[v.S] = defaultValue(v.Sort())
				}
				st.VerifyEvals++
				if s.verify(f, m) {
					return Sat, m, st, nil
				}
				continue
			}
			continue // cube is false
		}
		if budget <= 0 {
			exhausted = false
			break
		}
		model, tried := s.search(ctx, conj, f, budget, opts, &st)
		budget -= tried
		st.Assignments += tried
		if model != nil {
			return Sat, model, st, nil
		}
		if budget <= 0 {
			exhausted = false
		}
	}
	if err := ctx.Err(); err != nil {
		return Unknown, nil, st, err
	}
	if exhausted {
		return Unsat, nil, st, nil
	}
	return Unknown, nil, st, fmt.Errorf("%w: %d assignments tried", ErrBudget, st.Assignments)
}

func defaultValue(s Sort) Value {
	switch s {
	case SortBool:
		return BoolValue(false)
	case SortInt:
		return IntValue(0)
	default:
		return StrValue("")
	}
}

// verify confirms a model satisfies the original formula, extending it with
// defaults for variables the cube never mentioned. The free-variable set is
// memoized through the solver's factory: verification runs once per
// would-be model, so the repeated Vars walk is one of the hottest paths in
// the search.
func (s *Solver) verify(f *Term, m Model) bool {
	for _, v := range s.f.Vars(f) {
		if _, ok := m[v.S]; !ok {
			m[v.S] = defaultValue(v.Sort())
		}
	}
	val, err := Eval(f, m)
	return err == nil && val.Sort == SortBool && val.B
}

// search enumerates candidate assignments for the variables of conj,
// pruning with per-literal partial evaluation, and returns the first model
// that satisfies the full original formula f, or nil. It reports how many
// assignments were tried. ctx is polled every ctxPollMask+1 assignments;
// cancellation aborts the enumeration (returning nil, like exhaustion —
// the caller distinguishes via ctx.Err()).
func (s *Solver) search(ctx context.Context, conj, f *Term, budget int, opts Options, st *Stats) (Model, int) {
	vars := s.f.Vars(conj)
	if len(vars) == 0 {
		v, err := Eval(conj, nil)
		if err == nil && v.B {
			m := Model{}
			st.VerifyEvals++
			if s.verify(f, m) {
				return m, 1
			}
		}
		return nil, 1
	}

	// Order variables: strings last tend to have bigger domains; put
	// smaller domains first for better pruning.
	cands := make([][]Value, len(vars))
	pool := s.pool(conj, opts)
	for i, v := range vars {
		cands[i] = pool.forVar(v)
		st.Candidates += len(cands[i])
	}
	order := make([]int, len(vars))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return len(cands[order[a]]) < len(cands[order[b]]) })

	// Literals for pruning: the conjuncts of conj.
	var lits []*Term
	if conj.Op == OpAnd {
		lits = conj.Args
	} else {
		lits = []*Term{conj}
	}
	litVars := make([][]string, len(lits))
	for i, l := range lits {
		for _, v := range s.f.Vars(l) {
			litVars[i] = append(litVars[i], v.S)
		}
	}

	m := Model{}
	tried := 0
	canceled := false
	var dfs func(k int) Model
	dfs = func(k int) Model {
		if tried >= budget || canceled {
			return nil
		}
		if tried&ctxPollMask == ctxPollMask && ctx.Err() != nil {
			canceled = true
			return nil
		}
		if k == len(order) {
			tried++
			// verify extends the clone with defaults for variables of f that
			// the cube never constrained; return that completed model.
			full := cloneModel(m)
			st.VerifyEvals++
			if s.verify(f, full) {
				return full
			}
			return nil
		}
		vi := order[k]
		name := vars[vi].S
		for _, c := range cands[vi] {
			if tried >= budget || canceled {
				return nil
			}
			m[name] = c
			// Prune: any literal whose variables are all bound must hold.
			ok := true
			for i, l := range lits {
				if !allBound(litVars[i], m) {
					continue
				}
				v, err := Eval(l, m)
				if err != nil || !v.B {
					ok = false
					break
				}
			}
			if ok {
				if res := dfs(k + 1); res != nil {
					return res
				}
			} else {
				tried++
			}
		}
		delete(m, name)
		return nil
	}
	res := dfs(0)
	return res, tried
}

// pool returns the candidate pool for conj, cached per (conjunction,
// options) through the factory. Pools are pure functions of the
// conjunction's structure, so canonical pointers make the cache exact;
// sinks sharing a path prefix (and the staged three-constraint checks)
// re-seed nothing.
func (s *Solver) pool(conj *Term, opts Options) *candidatePool {
	if s.f == nil {
		return newCandidatePool(conj, opts)
	}
	key := poolCacheKey{conj: conj, opts: opts}
	if p, ok := s.f.poolMemo[key]; ok {
		return p
	}
	p := newCandidatePool(conj, opts)
	s.f.poolMemo[key] = p
	return p
}

func allBound(names []string, m Model) bool {
	for _, n := range names {
		if _, ok := m[n]; !ok {
			return false
		}
	}
	return true
}

func cloneModel(m Model) Model {
	out := make(Model, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// --- normal forms ---

// nnf converts a boolean term to negation normal form. neg indicates the
// polarity. Non-boolean-structured atoms (equalities, string predicates)
// are kept as literals, negated with Not. Construction routes through the
// factory (nil-safe) so NNF of shared subtrees yields shared results.
// nnf converts t to negation normal form. Like every factory rewrite it
// is a pure function of term structure, so interned nodes memoize their
// NNF per (node, polarity) — shared path-condition prefixes and repeat
// checks of structurally equal formulas convert once.
func (f *Factory) nnf(t *Term, neg bool) *Term {
	if f == nil {
		return nnfWork(f, t, neg)
	}
	k := nnfKey{t: t, neg: neg}
	if r, ok := f.nnfMemo[k]; ok {
		return r
	}
	r := nnfWork(f, t, neg)
	f.nnfMemo[k] = r
	return r
}

func nnfWork(f *Factory, t *Term, neg bool) *Term {
	switch t.Op {
	case OpBoolConst:
		return Bool(t.B != neg)
	case OpNot:
		return f.nnf(t.Args[0], !neg)
	case OpAnd:
		args := make([]*Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = f.nnf(a, neg)
		}
		if neg {
			return f.Or(args...)
		}
		return f.And(args...)
	case OpOr:
		args := make([]*Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = f.nnf(a, neg)
		}
		if neg {
			return f.And(args...)
		}
		return f.Or(args...)
	case OpIte:
		if t.Sort() == SortBool {
			c, a, b := t.Args[0], t.Args[1], t.Args[2]
			// ite(c,a,b) == (c∧a) ∨ (¬c∧b)
			e := f.Or(f.And(c, a), f.And(f.Not(c), b))
			return f.nnf(e, neg)
		}
		fallthrough
	case OpLt:
		if neg {
			return f.Ge(t.Args[0], t.Args[1])
		}
		return t
	case OpLe:
		if neg {
			return f.Gt(t.Args[0], t.Args[1])
		}
		return t
	case OpGt:
		if neg {
			return f.Le(t.Args[0], t.Args[1])
		}
		return t
	case OpGe:
		if neg {
			return f.Lt(t.Args[0], t.Args[1])
		}
		return t
	default:
		if neg {
			return f.Not(t)
		}
		return t
	}
}

// nnf is the non-interned NNF entry point, kept for tests and the
// nil-factory path.
func nnf(t *Term, neg bool) *Term { return (*Factory)(nil).nnf(t, neg) }

// dnfOf converts an NNF term to cubes, memoizing whole results per
// (root, budget) on the factory. Cube slices are immutable after
// construction (CheckCtx only reads them and conjoins their elements),
// so sharing the cached slices across checks is safe; repeat checks of
// pointer-equal formulas skip the expansion entirely.
func (f *Factory) dnfOf(t *Term, maxCubes int) ([][]*Term, bool) {
	if f == nil {
		return dnf(t, maxCubes)
	}
	k := dnfKey{t: t, maxCubes: maxCubes}
	if r, ok := f.dnfMemo[k]; ok {
		return r.cubes, r.ok
	}
	cubes, ok := dnf(t, maxCubes)
	f.dnfMemo[k] = dnfResult{cubes: cubes, ok: ok}
	return cubes, ok
}

// dnf converts an NNF term to a list of cubes (conjunctions of literals).
// ok is false if the expansion exceeds maxCubes.
func dnf(t *Term, maxCubes int) ([][]*Term, bool) {
	switch t.Op {
	case OpAnd:
		cubes := [][]*Term{nil}
		for _, a := range t.Args {
			sub, ok := dnf(a, maxCubes)
			if !ok {
				return nil, false
			}
			var next [][]*Term
			for _, c := range cubes {
				for _, s := range sub {
					merged := make([]*Term, 0, len(c)+len(s))
					merged = append(merged, c...)
					merged = append(merged, s...)
					next = append(next, merged)
					if len(next) > maxCubes {
						return nil, false
					}
				}
			}
			cubes = next
		}
		return cubes, true
	case OpOr:
		var cubes [][]*Term
		for _, a := range t.Args {
			sub, ok := dnf(a, maxCubes)
			if !ok {
				return nil, false
			}
			cubes = append(cubes, sub...)
			if len(cubes) > maxCubes {
				return nil, false
			}
		}
		return cubes, true
	default:
		return [][]*Term{{t}}, true
	}
}
