package smt

import "context"

// Session is an incremental assertion stack over a Solver, in the style of
// SMT-LIB's assert/push/pop. The detector's verdict for a sink is the
// conjunction of three constraints (taint ∧ extension ∧ reachability);
// a Session lets the scanner assert them in stages — extension first, then
// reachability under a push frame — so that:
//
//   - the simplified form of every asserted constraint is precooked into
//     the solver factory's memo tables the moment it is asserted, making
//     the eventual conjunction check rewrite only the novel structure;
//   - constraints shared across sinks (the extension disjunction is
//     typically identical for every sink of a root; reachability prefixes
//     are shared between sinks on the same path) are recognized by
//     pointer identity and their prior simplification is reused — the
//     factory's IncrementalReuse counter reports exactly that;
//   - an assertion set that already folds to false (QuickUnsat) yields a
//     sound Unsat with no model search and without ever building or
//     simplifying the remaining constraints.
//
// Check semantics are defined by construction: CheckCtx decides exactly
// And(assertions...) — the same conjunction a monolithic Check would be
// handed — so a Session can never change verdicts, only skip repeated
// work. Sessions are not safe for concurrent use, matching the Solver's
// single-goroutine-per-root discipline.
type Session struct {
	solver  *Solver
	asserts []*Term
	marks   []int
}

// NewSession returns an empty assertion stack over s.
func (s *Solver) NewSession() *Session {
	return &Session{solver: s}
}

// Assert pushes a boolean constraint onto the current frame. The
// constraint is interned and its fixpoint simplification precooked into
// the factory memo (when one is installed), so later Check calls — and
// later Sessions on the same solver — pay for it only once. An assertion
// whose simplified form is already memoized counts toward
// FactoryStats.IncrementalReuse: the incremental stack reused earlier
// work instead of re-simplifying.
func (ss *Session) Assert(t *Term) {
	f := ss.solver.f
	t = f.Intern(t)
	if f != nil {
		if _, ok := f.fixMemo[t]; ok {
			f.stats.IncrementalReuse++
		} else {
			var discard Stats
			f.simplifyCounted(t, &discard)
		}
	}
	ss.asserts = append(ss.asserts, t)
}

// Push opens a new assertion frame.
func (ss *Session) Push() {
	ss.marks = append(ss.marks, len(ss.asserts))
}

// Pop discards every assertion made since the matching Push. Popping with
// no open frame clears the stack.
func (ss *Session) Pop() {
	if len(ss.marks) == 0 {
		ss.asserts = ss.asserts[:0]
		return
	}
	n := ss.marks[len(ss.marks)-1]
	ss.marks = ss.marks[:len(ss.marks)-1]
	ss.asserts = ss.asserts[:n]
}

// Assertions returns the number of live assertions.
func (ss *Session) Assertions() int { return len(ss.asserts) }

// conj builds the conjunction of the live assertions. The assertion slice
// is copied because Term retains the argument slice and the stack mutates
// on Pop/Assert.
func (ss *Session) conj() *Term {
	f := ss.solver.f
	switch len(ss.asserts) {
	case 0:
		return True()
	case 1:
		return ss.asserts[0]
	}
	return f.And(append([]*Term(nil), ss.asserts...)...)
}

// QuickUnsat reports whether the current assertion stack already
// simplifies to literal false — a sound Unsat that needs no model search.
// Because the fixpoint simplifier folds a false conjunct into false for
// any enclosing conjunction within its pass budget, QuickUnsat answering
// true guarantees a full Check of this stack (or any superset of it)
// would also answer Unsat; callers may skip asserting and checking the
// remaining constraints. Simplifier pass counts are accounted into st.
func (ss *Session) QuickUnsat(st *Stats) bool {
	g := ss.solver.f.simplifyCounted(ss.conj(), st)
	return g.Op == OpBoolConst && !g.B
}

// Check decides the conjunction of the live assertions.
func (ss *Session) Check() (Status, Model, Stats, error) {
	return ss.CheckCtx(context.Background())
}

// CheckCtx decides the conjunction of the live assertions with
// cancellation. The verdict, model, and Stats are exactly those of
// Solver.CheckCtx on And(assertions...).
func (ss *Session) CheckCtx(ctx context.Context) (Status, Model, Stats, error) {
	return ss.solver.CheckCtx(ctx, ss.conj())
}
