package baseline

import (
	"testing"
)

func TestRIPSFlagsTaintedSink(t *testing.T) {
	rep := RIPSLike("t", map[string]string{
		"a.php": `<?php
move_uploaded_file($_FILES['f']['tmp_name'], "/up/" . $_FILES['f']['name']);
`,
	})
	if !rep.Flagged {
		t.Fatal("direct tainted sink must be flagged")
	}
	if len(rep.Hits) != 1 || rep.Hits[0].Line != 2 {
		t.Errorf("hits = %+v", rep.Hits)
	}
}

func TestRIPSFlagsGuardedSink(t *testing.T) {
	// The defining weakness: extension guards do not matter to taint-only
	// analysis (the paper's 27/28 FP rate).
	rep := RIPSLike("t", map[string]string{
		"a.php": `<?php
$ext = pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION);
if (in_array($ext, array('jpg', 'png'))) {
	move_uploaded_file($_FILES['f']['tmp_name'], "/up/img." . $ext);
}
`,
	})
	if !rep.Flagged {
		t.Fatal("RIPS-style must flag the guarded (benign) upload")
	}
}

func TestRIPSTracksThroughFunctions(t *testing.T) {
	rep := RIPSLike("t", map[string]string{
		"a.php": `<?php
function save($f) {
	move_uploaded_file($f['tmp_name'], "/u/" . $f['name']);
}
save($_FILES['doc']);
`,
	})
	if !rep.Flagged {
		t.Fatal("parameter taint must propagate")
	}
}

func TestRIPSTracksThroughReturn(t *testing.T) {
	rep := RIPSLike("t", map[string]string{
		"a.php": `<?php
function pick() {
	return $_FILES['doc']['tmp_name'];
}
$x = pick();
move_uploaded_file($x, "/u/a");
`,
	})
	if !rep.Flagged {
		t.Fatal("return-value taint must propagate")
	}
}

func TestRIPSMissesMethodFlow(t *testing.T) {
	// The WooCommerce Custom Profile Picture structure: taint enters via a
	// method call, which the RIPS-style engine does not track.
	rep := RIPSLike("t", map[string]string{
		"a.php": `<?php
class U {
	public function save($f) {
		move_uploaded_file($f['tmp_name'], "/u/" . $f['name']);
	}
}
$u = new U();
$u->save($_FILES['pic']);
`,
	})
	if rep.Flagged {
		t.Fatal("RIPS-style must miss the method-mediated flow")
	}
}

func TestRIPSIgnoresUntaintedSink(t *testing.T) {
	rep := RIPSLike("t", map[string]string{
		"a.php": `<?php
$n = $_FILES['f']['name'];
move_uploaded_file("/etc/motd", "/u/motd.txt");
`,
	})
	if rep.Flagged {
		t.Fatal("constant sink args must not be flagged")
	}
}

func TestRIPSNoSinkNoFlag(t *testing.T) {
	rep := RIPSLike("t", map[string]string{
		"a.php": `<?php
$ok = wp_handle_upload($_FILES['f'], array('test_form' => false));
`,
	})
	if rep.Flagged {
		t.Fatal("platform-API upload has no raw sink to flag")
	}
}

func TestWAPDetectsNakedUpload(t *testing.T) {
	rep := WAPLike("t", map[string]string{
		"a.php": `<?php
move_uploaded_file($_FILES['f']['tmp_name'], "/up/" . $_FILES['f']['name']);
`,
	})
	if !rep.Flagged {
		t.Fatal("symptom-free tainted sink must be flagged")
	}
}

func TestWAPSuppressedBySymptom(t *testing.T) {
	// An ineffective strpos "check" in scope is enough for the classifier
	// to suppress — the mechanism behind the paper's 4/16 detection rate.
	rep := WAPLike("t", map[string]string{
		"a.php": `<?php
$chk = strpos($_FILES['f']['name'], '.');
move_uploaded_file($_FILES['f']['tmp_name'], "/up/" . $_FILES['f']['name']);
`,
	})
	if rep.Flagged {
		t.Fatal("symptom in scope must suppress the WAP verdict")
	}
	if len(rep.Hits) != 1 || !rep.Hits[0].Suppressed {
		t.Errorf("hits = %+v, want one suppressed hit", rep.Hits)
	}
}

func TestWAPTracksMethods(t *testing.T) {
	rep := WAPLike("t", map[string]string{
		"a.php": `<?php
class U {
	public function save($f) {
		move_uploaded_file($f['tmp_name'], "/u/" . $f['name']);
	}
}
$u = new U();
$u->save($_FILES['pic']);
`,
	})
	if !rep.Flagged {
		t.Fatal("WAP-style must track method flows (it detects WooCommerce CPP)")
	}
}

func TestWAPHelperValidationIsFP(t *testing.T) {
	// Validation in a helper leaves the sink scope symptom-free: WAP's one
	// false positive.
	rep := WAPLike("t", map[string]string{
		"a.php": `<?php
function allowed($name) {
	$e = pathinfo($name, PATHINFO_EXTENSION);
	return in_array($e, array('jpg'));
}
function handle() {
	$ext = allowed($_FILES['f']['name']);
	if ($ext) {
		move_uploaded_file($_FILES['f']['tmp_name'], "/u/x.jpg");
	}
}
handle();
`,
	})
	if !rep.Flagged {
		t.Fatal("helper-validated upload must be WAP's false positive")
	}
}

func TestScannersHandleParseErrors(t *testing.T) {
	rep := RIPSLike("t", map[string]string{
		"broken.php": `<?php $a = ; move_uploaded_file($_FILES['f']['tmp_name'], $x);`,
	})
	// Must not panic; the sink should still be seen.
	if !rep.Flagged {
		t.Error("recovered parse should still reach the sink")
	}
}

func TestForeachTaint(t *testing.T) {
	rep := RIPSLike("t", map[string]string{
		"a.php": `<?php
foreach ($_FILES as $f) {
	move_uploaded_file($f['tmp_name'], "/u/" . $f['name']);
}
`,
	})
	if !rep.Flagged {
		t.Fatal("foreach over $_FILES must taint the loop variable")
	}
}
