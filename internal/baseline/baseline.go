// Package baseline implements the two scanners UChecker is compared
// against in Section IV-C of the paper.
//
// RIPS (Dahse et al.) detects sensitive sinks tainted by untrusted input.
// The paper attributes its error profile to exactly that mechanism: "While
// taint analysis concerns the source of the uploaded file, it does not
// model the name or the extension of this file, thereby being likely to
// introduce false positives" — RIPS flagged 27 of the 28 benign
// upload-supporting plugins and missed WooCommerce Custom Profile Picture
// (whose flow runs through an object method). The RIPSLike scanner here is
// a flow-insensitive interprocedural taint analysis from $_FILES to the
// upload sinks, with no extension modeling and no taint propagation
// through dynamic method dispatch.
//
// WAP (Medeiros et al.) combines taint analysis with data-mining-based
// false-positive suppression. Its published profile on this workload is
// the opposite failure mode: 4/16 vulnerable detected with 1/28 false
// positives — the learned classifier suppresses any tainted sink that
// shows "sanitization symptoms" nearby, which silences the many vulnerable
// plugins whose guards are present but ineffective. The WAPLike scanner
// pairs the same taint engine (with method tracking) with a symptom
// heuristic: a flagged sink is suppressed when its enclosing scope calls a
// known validation/sanitization function.
package baseline

import (
	"strings"

	"repro/internal/callgraph"
	"repro/internal/phpast"
	"repro/internal/phpparser"
)

// Hit is one flagged sink.
type Hit struct {
	File string
	Line int
	Sink string
	// Suppressed marks WAP hits silenced by the symptom heuristic.
	Suppressed bool
}

// Report is a baseline scan result.
type Report struct {
	Name    string
	Flagged bool
	Hits    []Hit
}

// config selects the scanner flavour.
type config struct {
	trackMethods bool
	suppress     bool
}

// RIPSLike scans sources with the RIPS-style taint-only analysis.
func RIPSLike(name string, sources map[string]string) Report {
	return scan(name, sources, config{trackMethods: false, suppress: false})
}

// RIPSLikeFiles runs the RIPS-style taint-only analysis over already
// parsed files. The uchecker scanner's degradation ladder uses it as the
// final rung: when symbolic execution cannot finish a root within budget,
// this conservative check still yields (low-confidence) signal without
// re-parsing the sources. Method taint tracking is enabled so flows
// through object methods are not silently dropped — a degraded rung
// should over- rather than under-approximate.
func RIPSLikeFiles(name string, files []*phpast.File) Report {
	return scanFiles(name, files, config{trackMethods: true, suppress: false})
}

// WAPLike scans sources with the WAP-style taint + symptom-suppression
// analysis.
func WAPLike(name string, sources map[string]string) Report {
	return scan(name, sources, config{trackMethods: true, suppress: true})
}

// symptomFuncs are the validation/sanitization calls WAP's classifier
// treats as evidence that the developer handled the input.
var symptomFuncs = map[string]bool{
	"in_array":           true,
	"pathinfo":           true,
	"preg_match":         true,
	"strpos":             true,
	"stripos":            true,
	"is_uploaded_file":   true,
	"wp_check_filetype":  true,
	"getimagesize":       true,
	"finfo_file":         true,
	"str_replace":        true,
	"sanitize_file_name": true,
	"preg_replace":       true,
}

// scope is a taint domain: one per function plus one for top-level code.
type scope struct {
	name    string // "" for file scope
	body    []phpast.Stmt
	file    string
	tainted map[string]bool
	// symptoms reports whether the scope contains a validation symptom.
	symptoms bool
}

type scanner struct {
	cfg config
	// scopes maps scope keys ("" for each file's top level, lower-cased
	// function names otherwise) to taint domains.
	scopes map[string]*scope
	// taintedRet marks functions whose return value is tainted.
	taintedRet map[string]bool
	funcs      map[string]*phpast.FuncDecl
	hits       []Hit
}

func scan(name string, sources map[string]string, cfg config) Report {
	var files []*phpast.File
	for fname, src := range sources {
		f, _ := phpparser.Parse(fname, src)
		files = append(files, f)
	}
	return scanFiles(name, files, cfg)
}

func scanFiles(name string, files []*phpast.File, cfg config) Report {
	s := &scanner{
		cfg:        cfg,
		scopes:     map[string]*scope{},
		taintedRet: map[string]bool{},
		funcs:      map[string]*phpast.FuncDecl{},
	}
	s.collect(files)

	// Flow-insensitive fixpoint: propagate taint until stable (bounded).
	for i := 0; i < 10; i++ {
		if !s.pass(false) {
			break
		}
	}
	// Final pass records sink hits.
	s.pass(true)

	rep := Report{Name: name, Hits: s.hits}
	for _, h := range s.hits {
		if !h.Suppressed {
			rep.Flagged = true
		}
	}
	return rep
}

// collect registers scopes: one per file top level, one per function and
// (when trackMethods) per method.
func (s *scanner) collect(files []*phpast.File) {
	for _, f := range files {
		top := &scope{name: "", file: f.Name, tainted: map[string]bool{}}
		for _, st := range f.Stmts {
			switch st.(type) {
			case *phpast.FuncDecl, *phpast.ClassDecl:
			default:
				top.body = append(top.body, st)
			}
		}
		s.scopes["file:"+f.Name] = top

		phpast.Walk(f, func(n phpast.Node) bool {
			switch d := n.(type) {
			case *phpast.FuncDecl:
				key := strings.ToLower(d.Name)
				s.funcs[key] = d
				s.scopes[key] = &scope{name: key, file: f.Name, body: d.Body, tainted: map[string]bool{}}
			case *phpast.ClassDecl:
				for _, m := range d.Methods {
					if !s.cfg.trackMethods {
						continue
					}
					key := strings.ToLower(m.Name)
					decl := &phpast.FuncDecl{P: m.P, Name: m.Name, Params: m.Params, Body: m.Body}
					s.funcs[key] = decl
					s.scopes[key] = &scope{name: key, file: f.Name, body: m.Body, tainted: map[string]bool{}}
				}
			}
			return true
		})
	}
	// Symptom scan per scope.
	for _, sc := range s.scopes {
		for _, st := range sc.body {
			phpast.Walk(st, func(n phpast.Node) bool {
				if c, ok := n.(*phpast.Call); ok {
					if name, ok := phpast.CalleeName(c); ok && symptomFuncs[name] {
						sc.symptoms = true
					}
				}
				return true
			})
		}
	}
}

// pass walks every scope once, propagating taint; it reports whether any
// taint fact changed. When record is set, sink hits are appended.
func (s *scanner) pass(record bool) bool {
	changed := false
	for _, sc := range s.scopes {
		for _, st := range sc.body {
			phpast.Walk(st, func(n phpast.Node) bool {
				switch x := n.(type) {
				case *phpast.Assign:
					if s.exprTainted(x.Value, sc) {
						if v := rootVar(x.Target); v != "" && !sc.tainted[v] {
							sc.tainted[v] = true
							changed = true
						}
					}
				case *phpast.Foreach:
					if s.exprTainted(x.Arr, sc) {
						if v := rootVar(x.Val); v != "" && !sc.tainted[v] {
							sc.tainted[v] = true
							changed = true
						}
					}
				case *phpast.Return:
					if sc.name != "" && x.X != nil && s.exprTainted(x.X, sc) {
						if !s.taintedRet[sc.name] {
							s.taintedRet[sc.name] = true
							changed = true
						}
					}
				case *phpast.Call:
					if s.propagateCall(x, sc, record) {
						changed = true
					}
				case *phpast.MethodCall:
					if s.cfg.trackMethods {
						if s.propagateMethod(x, sc) {
							changed = true
						}
					}
				}
				return true
			})
		}
	}
	return changed
}

// propagateCall handles taint into user-function parameters and sink
// detection.
func (s *scanner) propagateCall(x *phpast.Call, sc *scope, record bool) bool {
	name, ok := phpast.CalleeName(x)
	if !ok {
		return false
	}
	changed := false
	if callgraph.Sinks[name] {
		if record {
			// The "source" argument: move_uploaded_file/copy/rename take it
			// first, file_put_contents second. Taint analysis without
			// extension modeling flags the sink if either the data or the
			// name is tainted.
			tainted := false
			for _, a := range x.Args {
				if s.exprTainted(a, sc) {
					tainted = true
				}
			}
			if tainted {
				s.hits = append(s.hits, Hit{
					File:       sc.file,
					Line:       x.P.Line,
					Sink:       name,
					Suppressed: s.cfg.suppress && sc.symptoms,
				})
			}
		}
		return false
	}
	callee, ok := s.funcs[name]
	if !ok {
		return false
	}
	calleeScope := s.scopes[name]
	if calleeScope == nil {
		return false
	}
	for i, a := range x.Args {
		if i >= len(callee.Params) {
			break
		}
		if s.exprTainted(a, sc) && !calleeScope.tainted[callee.Params[i].Name] {
			calleeScope.tainted[callee.Params[i].Name] = true
			changed = true
		}
	}
	return changed
}

func (s *scanner) propagateMethod(x *phpast.MethodCall, sc *scope) bool {
	name := strings.ToLower(x.Method)
	callee, ok := s.funcs[name]
	if !ok {
		return false
	}
	calleeScope := s.scopes[name]
	if calleeScope == nil {
		return false
	}
	changed := false
	for i, a := range x.Args {
		if i >= len(callee.Params) {
			break
		}
		if s.exprTainted(a, sc) && !calleeScope.tainted[callee.Params[i].Name] {
			calleeScope.tainted[callee.Params[i].Name] = true
			changed = true
		}
	}
	return changed
}

// taintPassthrough lists built-ins whose result is tainted when any
// argument is.
var taintPassthrough = map[string]bool{
	"basename": true, "pathinfo": true, "strtolower": true,
	"strtoupper": true, "trim": true, "substr": true, "str_replace": true,
	"sprintf": true, "explode": true, "end": true, "sanitize_file_name": true,
	"stripslashes": true, "urldecode": true, "md5": true, "sha1": true,
	"implode": true, "reset": true, "current": true, "array_pop": true,
}

// exprTainted reports whether e is tainted in scope sc.
func (s *scanner) exprTainted(e phpast.Expr, sc *scope) bool {
	if e == nil {
		return false
	}
	tainted := false
	phpast.Walk(e, func(n phpast.Node) bool {
		if tainted {
			return false
		}
		switch x := n.(type) {
		case *phpast.Var:
			if x.Name == "_FILES" || sc.tainted[x.Name] {
				tainted = true
				return false
			}
		case *phpast.Call:
			if name, ok := phpast.CalleeName(x); ok {
				if s.taintedRet[name] {
					tainted = true
					return false
				}
				if !taintPassthrough[name] && s.funcs[name] == nil {
					// Opaque builtin: result untainted; still descend into
					// args for direct superglobal reads? RIPS treats opaque
					// results as clean — prune.
					return false
				}
			}
		case *phpast.MethodCall:
			if s.cfg.trackMethods && s.taintedRet[strings.ToLower(x.Method)] {
				tainted = true
				return false
			}
			if !s.cfg.trackMethods {
				return false // method results opaque in RIPS mode
			}
		}
		return true
	})
	return tainted
}

// rootVar returns the base variable name of an assignment target.
func rootVar(e phpast.Expr) string {
	switch x := e.(type) {
	case *phpast.Var:
		return x.Name
	case *phpast.ArrayDim:
		return rootVar(x.Arr)
	case *phpast.PropFetch:
		return rootVar(x.Obj)
	case *phpast.ListExpr:
		for _, it := range x.Items {
			if it != nil {
				return rootVar(it)
			}
		}
	}
	return ""
}
