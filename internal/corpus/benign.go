package corpus

import "fmt"

// safeBenignApps generates the 26 vulnerability-free upload-supporting
// plugins that, together with the two admin-gated apps, form the paper's
// 28-sample false-positive population.
//
// Every app supports file upload (accesses $_FILES and reaches a sink or a
// platform upload API), matching the paper's note that all 28 benign
// plugins support uploading. The guard patterns are the safe idioms real
// plugins use; they also pin down the baseline comparison of Section IV-C:
//
//   - 25 of the 26 pass $_FILES-derived data to a sink behind an effective
//     extension guard — a taint-only scanner (RIPS-style) flags them all;
//   - one ("secure-media-api") delegates to wp_handle_upload() and never
//     calls a raw sink, the single benign sample RIPS does not flag
//     (27/28 FP in the paper);
//   - one ("gallery-lite-pro") performs its validation in a helper
//     function, so a symptom-in-sink-scope heuristic (WAP-style) sees an
//     unvalidated tainted sink and raises the paper's single WAP false
//     positive (1/28).
func safeBenignApps() []App {
	specs := []struct {
		slug    string
		pattern int
		exts    []string
		loc     int
	}{
		{"photo-press-gallery", patWhitelist, []string{"jpg", "jpeg", "png"}, 742},
		{"doc-vault", patWhitelist, []string{"pdf", "doc", "docx"}, 1630},
		{"media-share-basic", patWhitelist, []string{"gif", "png"}, 388},
		{"simple-csv-importer", patForcedExt, []string{"csv"}, 903},
		{"resume-collector", patWhitelist, []string{"pdf"}, 1217},
		{"avatar-manager-safe", patConstExt, []string{"png"}, 655},
		{"podcast-dropbox", patWhitelist, []string{"mp3", "ogg"}, 2104},
		{"invoice-uploader", patForcedExt, []string{"pdf"}, 511},
		{"theme-logo-setter", patConstExt, []string{"jpg"}, 472},
		{"form-attachments-lite", patExplodeEnd, []string{"jpg", "png", "gif"}, 989},
		{"backup-restore-safe", patForcedExt, []string{"sql"}, 3120},
		{"gallery-lite-pro", patHelperValidated, []string{"jpg", "png"}, 1485},
		{"secure-media-api", patPlatformAPI, nil, 866},
		{"contact-plus-files", patWhitelist, []string{"txt", "pdf"}, 1342},
		{"product-image-sync", patConstExt, []string{"png"}, 2214},
		{"banner-rotator-safe", patWhitelist, []string{"jpg", "png", "webp"}, 775},
		{"ticket-desk-attach", patExplodeEnd, []string{"png", "pdf"}, 1903},
		{"import-export-users", patForcedExt, []string{"csv"}, 1098},
		{"audio-clip-embed", patWhitelist, []string{"mp3", "wav"}, 640},
		{"badge-maker", patConstExt, []string{"png"}, 354},
		{"slider-factory-safe", patWhitelist, []string{"jpg", "jpeg"}, 1766},
		{"newsletter-assets", patExplodeEnd, []string{"png", "gif"}, 812},
		{"event-flyer-upload", patForcedExt, []string{"jpg"}, 933},
		{"knowledgebase-files", patWhitelist, []string{"pdf", "txt", "md"}, 2451},
		{"portfolio-showcase", patPinnedName, nil, 587},
		{"chat-emoji-pack", patConstExt, []string{"gif"}, 429},
	}
	out := make([]App, 0, len(specs))
	for _, sp := range specs {
		out = append(out, benignApp(sp.slug, sp.pattern, sp.exts, sp.loc))
	}
	return out
}

// Benign upload-guard patterns.
const (
	patWhitelist = iota
	patForcedExt
	patConstExt
	patExplodeEnd
	patHelperValidated
	patPlatformAPI
	patPinnedName
)

func benignApp(slug string, pattern int, exts []string, loc int) App {
	var body string
	var extra string
	switch pattern {
	case patWhitelist:
		body = fmt.Sprintf(`$ext = pathinfo($_FILES['upload']['name'], PATHINFO_EXTENSION);
$allowed = array(%s);
if (in_array($ext, $allowed)) {
	move_uploaded_file($_FILES['upload']['tmp_name'], $updir . '/file.' . $ext);
}
`, quoteList(exts))
	case patForcedExt:
		body = fmt.Sprintf(`$ext = pathinfo($_FILES['upload']['name'], PATHINFO_EXTENSION);
if ($ext == %q) {
	move_uploaded_file($_FILES['upload']['tmp_name'], $updir . '/import.' . $ext);
}
`, exts[0])
	case patConstExt:
		body = fmt.Sprintf(`$hash = md5($_FILES['upload']['name']);
$chk = strpos($_FILES['upload']['name'], '.');
move_uploaded_file($_FILES['upload']['tmp_name'], $updir . '/' . $hash . '.%s');
`, exts[0])
	case patExplodeEnd:
		body = fmt.Sprintf(`$parts = explode('.', $_FILES['upload']['name']);
$ext = end($parts);
if (in_array($ext, array(%s))) {
	move_uploaded_file($_FILES['upload']['tmp_name'], $updir . '/a.' . $ext);
}
`, quoteList(exts))
	case patHelperValidated:
		// Validation lives in a helper; the sink-bearing function itself
		// shows no validation symptom (WAP's false positive).
		body = fmt.Sprintf(`$ext = %s_allowed_ext($_FILES['upload']['name']);
if ($ext) {
	move_uploaded_file($_FILES['upload']['tmp_name'], $updir . '/g.' . $ext);
}
`, sanitizeIdent(slug))
		extra = fmt.Sprintf(`function %s_allowed_ext($name) {
	$e = pathinfo($name, PATHINFO_EXTENSION);
	if (in_array($e, array(%s))) {
		return $e;
	}
	return "";
}
`, sanitizeIdent(slug), quoteList(exts))
	case patPlatformAPI:
		// No raw sink at all: the platform API does the moving.
		body = `$chk = is_uploaded_file($_FILES['upload']['tmp_name']);
$overrides = array('test_form' => false);
$moved = wp_handle_upload($_FILES['upload'], $overrides);
`
	case patPinnedName:
		body = `$n = $_FILES['upload']['name'];
if ($n === "portfolio.zip") {
	$safe = str_replace("zip", "dat", $n);
	move_uploaded_file($_FILES['upload']['tmp_name'], $updir . '/' . $safe);
}
`
	}
	fn := sanitizeIdent(slug) + "_handle_upload"
	src := fmt.Sprintf(`<?php
/*
Plugin Name: %s
*/
%sfunction %s() {
	$updir = wp_upload_dir();
	$updir = $updir['path'];
%s}
%s();
`, slug, extra, fn, indent(body), fn)
	srcs := withFiller(slug, map[string]string{slug + "/" + slug + ".php": src}, loc)
	return App{
		Name:     slug,
		Category: Benign,
		Sources:  srcs,
	}
}

func quoteList(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ", "
		}
		out += "'" + x + "'"
	}
	return out
}
