// Package corpus provides the synthetic evaluation corpus reproducing the
// application population of the UChecker paper's Table III: 13 known
// vulnerable applications (11 WordPress plugins, one Joomla extension, one
// Drupal module), 28 vulnerability-free upload-supporting plugins (two of
// which are the admin-gated plugins the paper reports as false positives),
// and the 3 newly discovered vulnerable plugins of Section IV-B.
//
// Real plugin source is unavailable offline (the vulnerable versions are
// delisted), so each named application is re-created synthetically to
// match the characteristics that drive every number in Table III:
//
//   - the vulnerable (or safe) upload flow, patterned on what the paper
//     describes for that plugin (Listings 4-8 for the ones it shows);
//   - the total LoC, via deterministic filler modules, so the locality
//     analysis reduction percentages are comparable;
//   - the branching structure of the analyzed region, factorized so the
//     symbolic executor produces approximately the paper's path counts
//     (e.g. Avatar Uploader's 9216 = 2^10 x 3^2 paths, Cimy User Extra
//     Fields' 248832 = 2^10 x 3^5 paths that exhaust the budget and
//     reproduce the paper's false negative).
//
// Everything is deterministic: no randomness, no file I/O.
package corpus

// Category labels the ground-truth group of Table III.
type Category string

// Categories.
const (
	KnownVulnerable Category = "known-vulnerable"
	Benign          Category = "benign"
	NewVulnerable   Category = "new-vuln"
)

// PaperRow carries the measurements Table III reports for a named
// application, for paper-vs-measured comparisons in EXPERIMENTS.md.
type PaperRow struct {
	LoC         int
	PctAnalyzed float64
	Paths       int
	Objects     int
	ObjPerPath  float64
	MemoryMB    float64
	Seconds     float64
	Detected    bool
}

// App is one corpus application.
type App struct {
	Name     string
	Category Category
	// Vulnerable is the ground truth (note the two admin-gated apps are
	// ground-truth benign although the paper's tool flags them).
	Vulnerable bool
	// AdminGated marks the two Section IV-A false-positive plugins.
	AdminGated bool
	// Sources maps file name to PHP source.
	Sources map[string]string
	// Paper holds Table III's row for named apps (nil for the
	// parameterized benign fillers, which the paper aggregates).
	Paper *PaperRow
}

// TotalLoC counts source lines across the app.
func (a App) TotalLoC() int {
	n := 0
	for _, src := range a.Sources {
		n += lineCount(src)
	}
	return n
}

func lineCount(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			n++
		}
	}
	if len(s) > 0 && s[len(s)-1] != '\n' {
		n++
	}
	return n
}

// KnownVulnerableApps returns the 13 known-vulnerable applications, in
// Table III order.
func KnownVulnerableApps() []App {
	return []App{
		adblockBlocker(),
		wpMarketplace(),
		foxypress(),
		estatik(),
		uploadify(),
		mailCWP(),
		wooCatalogEnquiry(),
		nMediaContactForm(),
		simpleAdManager(),
		wpPowerplaygallery(),
		joomlaBibleStudy(),
		avatarUploader(),
		cimyUserExtraFields(),
	}
}

// BenignApps returns the 28 vulnerability-free upload-supporting plugins:
// the two named admin-gated ones first (the paper's false positives), then
// 26 parameterized safe-upload plugins.
func BenignApps() []App {
	apps := []App{
		eventRegistrationPro(),
		tumultHypeAnimations(),
	}
	apps = append(apps, safeBenignApps()...)
	return apps
}

// NewVulnApps returns the 3 newly discovered vulnerable plugins of
// Section IV-B.
func NewVulnApps() []App {
	return []App{
		fileProvider(),
		wooCustomProfilePicture(),
		wpDemoBuddy(),
	}
}

// All returns the full corpus: 13 + 28 + 3 applications.
func All() []App {
	var out []App
	out = append(out, KnownVulnerableApps()...)
	out = append(out, BenignApps()...)
	out = append(out, NewVulnApps()...)
	return out
}

// ByName returns the app with the given name, or ok=false.
func ByName(name string) (App, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}
