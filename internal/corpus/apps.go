package corpus

import "fmt"

// This file re-creates the named applications of Table III. Each generator
// documents the upload-flow pattern the paper attributes to the plugin and
// the branch factorization that reproduces its path count.

// coreNaked is a sink with no result check: factor x1 on paths.
// The strpos call is an ineffective "validation symptom" (it checks
// nothing), which matters to the WAP baseline's suppression heuristic.
func coreNaked(key, dirExpr string, withSymptom bool) string {
	s := ""
	if withSymptom {
		s += fmt.Sprintf("$chk = strpos($_FILES['%s']['name'], '.');\n", key)
	}
	s += fmt.Sprintf(`$target = %s . '/' . $_FILES['%s']['name'];
move_uploaded_file($_FILES['%s']['tmp_name'], $target);
`, dirExpr, key, key)
	return s
}

// coreIfSink checks the sink's result: factor x2 on paths.
func coreIfSink(key, dirExpr string, withSymptom bool) string {
	s := ""
	if withSymptom {
		s += fmt.Sprintf("$chk = strpos($_FILES['%s']['name'], '.');\n", key)
	}
	s += fmt.Sprintf(`$target = %s . '/' . $_FILES['%s']['name'];
if (!move_uploaded_file($_FILES['%s']['tmp_name'], $target)) {
	$err = "upload failed";
} else {
	$err = "";
}
`, dirExpr, key, key)
	return s
}

// plugin wraps an upload-handler body into a main plugin file that calls
// it from file scope.
func plugin(slug, fn, body string) map[string]string {
	src := fmt.Sprintf(`<?php
/*
Plugin Name: %s
*/
function %s() {
%s}
%s();
`, slug, fn, indent(body), fn)
	return map[string]string{slug + "/" + slug + ".php": src}
}

// --- 13 known vulnerable applications ---

// Adblock Blocker 0.0.1 — 484 LoC, 7 paths (7-way mode switch), naked sink.
func adblockBlocker() App {
	body := pad("ab", 28) + branchPlan("ab", 7) + coreNaked("adfile", "$up", true)
	srcs := withFiller("adblock-blocker", plugin("adblock-blocker", "ab_handle_upload", body), 484)
	return App{
		Name: "Adblock Blocker 0.0.1", Category: KnownVulnerable, Vulnerable: true,
		Sources: srcs,
		Paper:   &PaperRow{LoC: 484, PctAnalyzed: 13.02, Paths: 7, Objects: 158, ObjPerPath: 23, MemoryMB: 4.9, Seconds: 0.50, Detected: true},
	}
}

// WP Marketplace 2.4.1 — 10850 LoC, 2 paths, bare unguarded sink (one of
// the uploads WAP's symptom heuristic cannot save).
func wpMarketplace() App {
	body := pad("wpm", 15) + coreIfSink("product_file", "$updir", false)
	srcs := withFiller("wp-marketplace", plugin("wp-marketplace", "wpmp_process_upload", body), 10850)
	return App{
		Name: "WP Marketplace 2.4.1", Category: KnownVulnerable, Vulnerable: true,
		Sources: srcs,
		Paper:   &PaperRow{LoC: 10850, PctAnalyzed: 0.29, Paths: 2, Objects: 55, ObjPerPath: 28, MemoryMB: 4.7, Seconds: 2.60, Detected: true},
	}
}

// Foxypress 0.4.1.1-0.4.2.1 — 15815 LoC, 65 = 5x13 paths.
func foxypress() App {
	body := pad("fx", 25) + branchPlan("fx", 5, 13) + coreNaked("affiliate_img", "$updir", true)
	srcs := withFiller("foxypress", plugin("foxypress", "foxypress_upload_handler", body), 15815)
	return App{
		Name: "Foxypress 0.4.1.1-0.4.2.1", Category: KnownVulnerable, Vulnerable: true,
		Sources: srcs,
		Paper:   &PaperRow{LoC: 15815, PctAnalyzed: 0.60, Paths: 65, Objects: 1671, ObjPerPath: 26, MemoryMB: 5.2, Seconds: 2.98, Detected: true},
	}
}

// Estatik 2.2.5 — 9913 LoC, 12 = 6x2 paths.
func estatik() App {
	body := pad("es", 140) + branchPlan("es", 6) + coreIfSink("property_img", "$updir", true)
	srcs := withFiller("estatik", plugin("estatik", "estatik_save_property_media", body), 9913)
	return App{
		Name: "Estatik 2.2.5", Category: KnownVulnerable, Vulnerable: true,
		Sources: srcs,
		Paper:   &PaperRow{LoC: 9913, PctAnalyzed: 1.78, Paths: 12, Objects: 269, ObjPerPath: 22, MemoryMB: 5.2, Seconds: 1.72, Detected: true},
	}
}

// Uploadify 1.0.0 — 80 LoC, 2 paths; the minimal naked uploader.
func uploadify() App {
	body := pad("uf", 12) + coreIfSink("Filedata", "$targetPath", false)
	srcs := withFiller("uploadify", plugin("uploadify", "uploadify_handle", body), 80)
	return App{
		Name: "Uploadify 1.0.0", Category: KnownVulnerable, Vulnerable: true,
		Sources: srcs,
		Paper:   &PaperRow{LoC: 80, PctAnalyzed: 35.00, Paths: 2, Objects: 35, ObjPerPath: 18, MemoryMB: 4.7, Seconds: 0.31, Detected: true},
	}
}

// MailCWP 1.100 — 2847 LoC, 8 = 2^3 paths.
func mailCWP() App {
	body := pad("mc", 2) + branchPlan("mc", 2, 2) + coreIfSink("attachment", "$maildir", true)
	srcs := withFiller("mailcwp", plugin("mailcwp", "mailcwp_save_attachment", body), 2847)
	return App{
		Name: "MailCWP 1.100", Category: KnownVulnerable, Vulnerable: true,
		Sources: srcs,
		Paper:   &PaperRow{LoC: 2847, PctAnalyzed: 0.98, Paths: 8, Objects: 161, ObjPerPath: 20, MemoryMB: 4.7, Seconds: 5.80, Detected: true},
	}
}

// WooCommerce Catalog Enquiry 3.0.1 — 3565 LoC, 34 = 17x2 paths.
func wooCatalogEnquiry() App {
	body := pad("wce", 47) + branchPlan("wce", 17) + coreIfSink("enquiry_file", "$updir", true)
	srcs := withFiller("woo-catalog-enquiry", plugin("woo-catalog-enquiry", "wce_enquiry_upload", body), 3565)
	return App{
		Name: "WooCommerce Catalog Enquiry 3.0.1", Category: KnownVulnerable, Vulnerable: true,
		Sources: srcs,
		Paper:   &PaperRow{LoC: 3565, PctAnalyzed: 3.25, Paths: 34, Objects: 373, ObjPerPath: 11, MemoryMB: 5.1, Seconds: 0.96, Detected: true},
	}
}

// N-Media Website Contact Form with File Uploader 1.3.4 — 1099 LoC,
// 126 = 7x9x2 paths.
func nMediaContactForm() App {
	body := pad("nm", 36) + branchPlan("nm", 7, 9) + coreIfSink("nm_file", "$updir", true)
	srcs := withFiller("nmedia-contact-form", plugin("nmedia-contact-form", "nm_upload_contact_file", body), 1099)
	return App{
		Name: "N-Media Website Contact Form with File Uploader 1.3.4", Category: KnownVulnerable, Vulnerable: true,
		Sources: srcs,
		Paper:   &PaperRow{LoC: 1099, PctAnalyzed: 9.46, Paths: 126, Objects: 1679, ObjPerPath: 13, MemoryMB: 5.2, Seconds: 1.23, Detected: true},
	}
}

// Simple Ad Manager 2.5.94 — 4340 LoC, 1476 = 2x9x41x2 paths.
func simpleAdManager() App {
	body := pad("sam", 159) + branchPlan("sam", 2, 9, 41) + coreIfSink("ad_banner", "$updir", true)
	srcs := withFiller("simple-ad-manager", plugin("simple-ad-manager", "sam_save_banner", body), 4340)
	return App{
		Name: "Simple Ad Manager 2.5.94", Category: KnownVulnerable, Vulnerable: true,
		Sources: srcs,
		Paper:   &PaperRow{LoC: 4340, PctAnalyzed: 7.70, Paths: 1476, Objects: 13628, ObjPerPath: 9, MemoryMB: 9.3, Seconds: 5.35, Detected: true},
	}
}

// wp-Powerplaygallery 3.3 — 2757 LoC, 1224 = 2x2x9x17x2 paths.
func wpPowerplaygallery() App {
	body := branchPlan("ppg", 2, 2, 9, 17) + coreIfSink("gallery_img", "$updir", true)
	srcs := withFiller("wp-powerplaygallery", plugin("wp-powerplaygallery", "ppg_gallery_upload", body), 2757)
	return App{
		Name: "wp-Powerplaygallery 3.3", Category: KnownVulnerable, Vulnerable: true,
		Sources: srcs,
		Paper:   &PaperRow{LoC: 2757, PctAnalyzed: 3.77, Paths: 1224, Objects: 16138, ObjPerPath: 13, MemoryMB: 6.6, Seconds: 2.78, Detected: true},
	}
}

// Joomla-Bible-study 9.1.1 — 94659 LoC, 16 = 2^3x2 paths. The one huge
// application; the locality analysis skips 99.75% of it.
func joomlaBibleStudy() App {
	body := pad("jbs", 205) + branchPlan("jbs", 2, 2, 2) + coreIfSink("study_media", "$mediadir", true)
	srcs := withFiller("joomla-bible-study", plugin("joomla-bible-study", "jbs_media_upload", body), 94659)
	return App{
		Name: "Joomla-Bible-study 9.1.1", Category: KnownVulnerable, Vulnerable: true,
		Sources: srcs,
		Paper:   &PaperRow{LoC: 94659, PctAnalyzed: 0.25, Paths: 16, Objects: 236, ObjPerPath: 15, MemoryMB: 5.6, Seconds: 13.72, Detected: true},
	}
}

// Avatar Uploader 6.x-1.2 (Drupal) — 458 LoC, 9216 = 2^9x9x2 paths: a
// small module that is almost all branching.
func avatarUploader() App {
	body := pad("av", 59) + branchPlan("av", 2, 2, 2, 2, 2, 2, 2, 2, 2, 9) + coreIfSink("avatar", "$avatardir", true)
	srcs := withFiller("avatar-uploader", plugin("avatar-uploader", "avatar_uploader_save", body), 458)
	return App{
		Name: "Avatar Uploader 6.x-1.2", Category: KnownVulnerable, Vulnerable: true,
		Sources: srcs,
		Paper:   &PaperRow{LoC: 458, PctAnalyzed: 32.53, Paths: 9216, Objects: 62600, ObjPerPath: 7, MemoryMB: 62.9, Seconds: 52.74, Detected: true},
	}
}

// Cimy User Extra Fields 2.3.8 — 9432 LoC, 248832 = 2^10x3^5 paths: the
// paper's false negative. The branch product exceeds the path budget and
// symbolic execution aborts, so the vulnerability goes undetected.
func cimyUserExtraFields() App {
	body := pad("cimy", 78) +
		branchPlan("cimy", 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3) +
		coreNaked("cimy_field", "$updir", true)
	srcs := withFiller("cimy-user-extra-fields", plugin("cimy-user-extra-fields", "cimy_register_upload", body), 9432)
	return App{
		Name: "Cimy User Extra Fields 2.3.8", Category: KnownVulnerable, Vulnerable: true,
		Sources: srcs,
		Paper:   &PaperRow{LoC: 9432, PctAnalyzed: 2.07, Paths: 248832, Objects: 2780067, ObjPerPath: 11, Detected: false},
	}
}

// --- the two admin-gated false positives (ground truth benign) ---

// Event Registration Pro Calendar 1.0.2 — 16771 LoC, 3 paths. Allows PHP
// uploads but only from an admin_menu page (Listing 5), so ground truth is
// benign; the paper's configuration flags it.
func eventRegistrationPro() App {
	body := pad("erp", 9) + branchPlan("erp", 3) + coreNaked("csv_import", "$updir", true)
	src := fmt.Sprintf(`<?php
/*
Plugin Name: event-registration-pro-calendar
*/
add_action('admin_menu', 'erp_upload_page');
function erp_upload_page() {
%s}
`, indent(body))
	srcs := withFiller("event-registration-pro",
		map[string]string{"event-registration-pro/event-registration-pro.php": src}, 16771)
	return App{
		Name: "Event Registration Pro Calendar 1.0.2", Category: Benign, Vulnerable: false, AdminGated: true,
		Sources: srcs,
		Paper:   &PaperRow{LoC: 16771, PctAnalyzed: 0.20, Paths: 3, Objects: 79, ObjPerPath: 26, MemoryMB: 4.8, Seconds: 0.25, Detected: true},
	}
}

// Tumult Hype Animations 1.7.1 — 11914 LoC, 4 paths; same admin-only
// arbitrary-upload pattern.
func tumultHypeAnimations() App {
	body := pad("th", 2) + branchPlan("th", 2) + coreIfSink("hype_bundle", "$updir", true)
	src := fmt.Sprintf(`<?php
/*
Plugin Name: tumult-hype-animations
*/
add_action('admin_menu', 'hype_admin_upload');
function hype_admin_upload() {
%s}
`, indent(body))
	srcs := withFiller("tumult-hype-animations",
		map[string]string{"tumult-hype-animations/tumult-hype-animations.php": src}, 11914)
	return App{
		Name: "Tumult Hype Animations 1.7.1", Category: Benign, Vulnerable: false, AdminGated: true,
		Sources: srcs,
		Paper:   &PaperRow{LoC: 11914, PctAnalyzed: 0.19, Paths: 4, Objects: 66, ObjPerPath: 16, MemoryMB: 5.0, Seconds: 0.236, Detected: true},
	}
}

// --- the 3 newly discovered vulnerable plugins (Section IV-B) ---

// File Provider 1.2.3 — 138 LoC, 33 = 3x11 paths (Listing 7 core).
func fileProvider() App {
	body := pad("fp", 14) + branchPlan("fp", 3, 11) + `$uploaddir = get_option('fp_upload_dir');
$nome_final = $_FILES['userFile']['name'];
$uploadfile = $uploaddir . basename($nome_final);
move_uploaded_file($_FILES['userFile']['tmp_name'], $uploadfile);
`
	srcs := withFiller("file-provider", plugin("file-provider", "upload_file", body), 138)
	return App{
		Name: "File Provider 1.2.3", Category: NewVulnerable, Vulnerable: true,
		Sources: srcs,
		Paper:   &PaperRow{LoC: 138, PctAnalyzed: 52.17, Paths: 33, Objects: 474, ObjPerPath: 14, MemoryMB: 5.2, Seconds: 0.40, Detected: true},
	}
}

// WooCommerce Custom Profile Picture 1.0 — 983 LoC, 2 paths (Listing 6
// core). The upload flow runs through a class method, the structural
// wrinkle that makes the RIPS-style baseline miss it.
func wooCustomProfilePicture() App {
	src := `<?php
/*
Plugin Name: woo-custom-profile-picture
*/
class WC_Custom_Profile_Picture {
	public function wc_cus_upload_picture($foto) {
		$profilepicture = $foto;
		$size_hint = 0;
		$meta = "";
		$retries = 1;
		$log = "wc-cpp";
		$log = $log . ":start";
		$retries = $retries + 1;
		$size_hint = $size_hint + $retries;
		$meta = $meta . "u";
		$log = $log . ":dir";
		$retries = $retries + 2;
		$meta = $meta . "p";
		$size_hint = $size_hint + 1;
		$wordpress_upload_dir = wp_upload_dir();
		$new_file_path = $wordpress_upload_dir['path'] . '/' . $profilepicture['name'];
		if (move_uploaded_file($profilepicture['tmp_name'], $new_file_path)) {
			return 1;
		}
		return 0;
	}
}
$wc_cpp = new WC_Custom_Profile_Picture();
if ($_FILES['profile_pic']) {
	$picture_id = $wc_cpp->wc_cus_upload_picture($_FILES['profile_pic']);
}
`
	srcs := withFiller("woo-custom-profile-picture",
		map[string]string{"woo-custom-profile-picture/woo-custom-profile-picture.php": src}, 983)
	return App{
		Name: "WooCommerce Custom Profile Picture 1.0", Category: NewVulnerable, Vulnerable: true,
		Sources: srcs,
		Paper:   &PaperRow{LoC: 983, PctAnalyzed: 2.65, Paths: 2, Objects: 45, ObjPerPath: 23, MemoryMB: 4.8, Seconds: 0.28, Detected: true},
	}
}

// WP Demo Buddy 1.0.2 — 2196 LoC, 2 paths (Listing 8 core): the zip guard
// holds but a constant ".php" is appended to the stored name.
func wpDemoBuddy() App {
	body := pad("wdb", 9) + `global $wpdb;
$upload_dir = get_option('wp_demo_buddy_upload_dir');
$ext = pathinfo($_FILES['package']['name'], PATHINFO_EXTENSION);
if ($ext !== 'zip') return;
$info = pathinfo($_FILES['package']['name']);
$newname = time() . rand() . '_' . $info['basename'] . '.php';
$target = $upload_dir . $newname;
move_uploaded_file($_FILES['package']['tmp_name'], $target);
$ret = array($newname, $info['basename']);
return $ret;
`
	srcs := withFiller("wp-demo-buddy", plugin("wp-demo-buddy", "file_Upload", body), 2196)
	return App{
		Name: "WP Demo Buddy 1.0.2", Category: NewVulnerable, Vulnerable: true,
		Sources: srcs,
		Paper:   &PaperRow{LoC: 2196, PctAnalyzed: 1.32, Paths: 2, Objects: 85, ObjPerPath: 42.5, MemoryMB: 4.83, Seconds: 0.277, Detected: true},
	}
}
