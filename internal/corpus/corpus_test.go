package corpus

import (
	"strings"
	"testing"

	"repro/internal/phpparser"
)

func TestPopulationCounts(t *testing.T) {
	if got := len(KnownVulnerableApps()); got != 13 {
		t.Errorf("known vulnerable = %d, want 13", got)
	}
	if got := len(BenignApps()); got != 28 {
		t.Errorf("benign = %d, want 28", got)
	}
	if got := len(NewVulnApps()); got != 3 {
		t.Errorf("new vulns = %d, want 3", got)
	}
	if got := len(All()); got != 44 {
		t.Errorf("total = %d, want 44", got)
	}
}

func TestGroundTruthLabels(t *testing.T) {
	vuln, benign, admin := 0, 0, 0
	for _, a := range All() {
		if a.Vulnerable {
			vuln++
		} else {
			benign++
		}
		if a.AdminGated {
			admin++
			if a.Vulnerable {
				t.Errorf("%s: admin-gated apps are ground-truth benign", a.Name)
			}
		}
	}
	if vuln != 16 || benign != 28 || admin != 2 {
		t.Errorf("vuln=%d benign=%d admin=%d, want 16/28/2", vuln, benign, admin)
	}
}

func TestNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if seen[a.Name] {
			t.Errorf("duplicate app name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

func TestAllAppsParseCleanly(t *testing.T) {
	for _, a := range All() {
		for name, src := range a.Sources {
			_, errs := phpparser.Parse(name, src)
			if len(errs) > 0 {
				t.Errorf("%s/%s: parse errors: %v", a.Name, name, errs[0])
			}
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := All()
	b := All()
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("order changed at %d", i)
		}
		for name, src := range a[i].Sources {
			if b[i].Sources[name] != src {
				t.Errorf("%s/%s: non-deterministic source", a[i].Name, name)
			}
		}
	}
}

func TestLoCMatchesPaper(t *testing.T) {
	for _, a := range All() {
		if a.Paper == nil {
			continue
		}
		got := a.TotalLoC()
		want := a.Paper.LoC
		// Filler granularity leaves a small gap; within 2%.
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.02*float64(want)+10 {
			t.Errorf("%s: LoC = %d, paper %d", a.Name, got, want)
		}
	}
}

func TestAllAppsTouchUploadMachinery(t *testing.T) {
	// Every corpus app "supports file upload": it must read $_FILES.
	for _, a := range All() {
		found := false
		for _, src := range a.Sources {
			if strings.Contains(src, "$_FILES") {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no $_FILES access", a.Name)
		}
	}
}

func TestFillerHasNoUploadCode(t *testing.T) {
	f := filler("x", 200)
	if strings.Contains(f, "$_FILES") || strings.Contains(f, "move_uploaded_file") {
		t.Error("filler must not contain upload machinery")
	}
	if lineCount(f) != 200 {
		t.Errorf("filler lines = %d, want 200", lineCount(f))
	}
}

func TestBranchPlanFactors(t *testing.T) {
	code := branchPlan("t", 2, 3, 7)
	// 1 if + 2 switches with 2 and 6 cases respectively.
	if got := strings.Count(code, "if ("); got != 1 {
		t.Errorf("ifs = %d", got)
	}
	if got := strings.Count(code, "switch ("); got != 2 {
		t.Errorf("switches = %d", got)
	}
	if got := strings.Count(code, "case "); got != (3-1)+(7-1) {
		t.Errorf("cases = %d", got)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("Uploadify 1.0.0"); !ok {
		t.Error("ByName failed for existing app")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName should fail for unknown app")
	}
}

func TestPaperRowsPresentForNamedApps(t *testing.T) {
	named := 0
	for _, a := range All() {
		if a.Paper != nil {
			named++
		}
	}
	// 13 known + 2 admin + 3 new = 18 named Table III rows.
	if named != 18 {
		t.Errorf("named rows = %d, want 18", named)
	}
}
