package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// This file generates the screening population for reproducing the
// Section IV-B workflow: the paper crawled 9,160 WordPress plugins in
// reverse-chronological order and scanned them, surfacing 3 previously
// unknown vulnerable plugins. RandomPlugins builds an arbitrarily large,
// deterministic population with a small planted vulnerable fraction, so
// the screening experiment (throughput, and recall of planted
// vulnerabilities) can be regenerated at any scale.

// ScreeningApp is one generated plugin with its ground truth.
type ScreeningApp struct {
	App
	// Planted marks plugins generated with a seeded vulnerability.
	Planted bool
}

// RandomPlugins deterministically generates n plugins from the seed. Most
// are benign upload-supporting plugins drawn from the safe-pattern pool;
// plantEvery selects the vulnerable fraction (every k-th plugin gets a
// seeded unrestricted upload; 0 plants none).
func RandomPlugins(seed int64, n, plantEvery int) []ScreeningApp {
	r := rand.New(rand.NewSource(seed))
	out := make([]ScreeningApp, 0, n)
	for i := 0; i < n; i++ {
		slug := fmt.Sprintf("scan-plugin-%04d", i)
		planted := plantEvery > 0 && i%plantEvery == plantEvery-1
		if planted {
			out = append(out, ScreeningApp{App: plantedVulnApp(slug, r), Planted: true})
			continue
		}
		out = append(out, ScreeningApp{App: randomBenignApp(slug, r)})
	}
	return out
}

var screeningExts = [][]string{
	{"jpg", "png"},
	{"pdf"},
	{"gif", "webp", "jpeg"},
	{"csv"},
	{"mp3", "ogg"},
	{"txt", "md"},
}

func randomBenignApp(slug string, r *rand.Rand) App {
	patterns := []int{patWhitelist, patForcedExt, patConstExt, patExplodeEnd}
	pattern := patterns[r.Intn(len(patterns))]
	exts := screeningExts[r.Intn(len(screeningExts))]
	loc := 150 + r.Intn(2500)
	app := benignApp(slug, pattern, exts, loc)
	app.Sources = addDecoyModules(slug, app.Sources, r)
	return app
}

// plantedVulnApp seeds one of three vulnerable shapes modeled on the
// Section IV-B discoveries.
func plantedVulnApp(slug string, r *rand.Rand) App {
	shape := r.Intn(3)
	var body string
	switch shape {
	case 0: // File Provider shape: raw original name
		body = `$updir = get_option('scan_upload_dir');
$nome = $_FILES['userFile']['name'];
move_uploaded_file($_FILES['userFile']['tmp_name'], $updir . basename($nome));
`
	case 1: // WooCommerce CPP shape: wp_upload_dir + original name
		body = `$d = wp_upload_dir();
$p = $d['path'] . '/' . $_FILES['pic']['name'];
if (move_uploaded_file($_FILES['pic']['tmp_name'], $p)) {
	$ok = 1;
}
`
	default: // WP Demo Buddy shape: guarded but .php appended
		body = `$ext = pathinfo($_FILES['pkg']['name'], PATHINFO_EXTENSION);
if ($ext !== 'zip') return;
$info = pathinfo($_FILES['pkg']['name']);
$target = get_option('scan_dir') . time() . '_' . $info['basename'] . '.php';
move_uploaded_file($_FILES['pkg']['tmp_name'], $target);
`
	}
	fn := sanitizeIdent(slug) + "_upload"
	src := fmt.Sprintf("<?php\n/*\nPlugin Name: %s\n*/\nfunction %s() {\n%s}\n%s();\n",
		slug, fn, indent(body), fn)
	sources := addDecoyModules(slug, map[string]string{slug + "/" + slug + ".php": src}, r)
	return App{
		Name:       slug,
		Category:   KnownVulnerable,
		Vulnerable: true,
		Sources:    sources,
	}
}

// addDecoyModules pads a plugin with a random number of filler modules,
// mimicking the long tail of plugin sizes the paper's crawl saw.
func addDecoyModules(slug string, sources map[string]string, r *rand.Rand) map[string]string {
	extra := r.Intn(3)
	merged := mergeSources(sources)
	for i := 0; i < extra; i++ {
		name := fmt.Sprintf("%s/inc/mod-%d.php", slug, i)
		merged[name] = filler(fmt.Sprintf("%s_m%d", sanitizeIdent(slug), i), 120+r.Intn(400))
	}
	// Some plugins ship templates with mixed HTML.
	if r.Intn(2) == 0 {
		merged[slug+"/templates/form.php"] = templateFile(slug)
	}
	return merged
}

func templateFile(slug string) string {
	var sb strings.Builder
	sb.WriteString("<div class=\"wrap\">\n<h2>")
	sb.WriteString(slug)
	sb.WriteString("</h2>\n<?php if ($notice): ?>\n<p class=\"notice\"><?= $notice ?></p>\n<?php endif; ?>\n")
	sb.WriteString(`<form method="post" enctype="multipart/form-data">
<input type="file" name="upload" />
<input type="submit" value="Upload" />
</form>
</div>
`)
	return sb.String()
}
