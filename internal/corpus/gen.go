package corpus

import (
	"fmt"
	"strings"
)

// filler emits deterministic PHP filler modules totalling approximately the
// requested number of source lines. Filler functions never touch $_FILES
// or upload sinks, so the locality analysis skips all of them — this is
// what produces the paper's large LoC-reduction percentages.
//
// Each emitted function is 6 lines; a 2-line header tops each file.
func filler(prefix string, lines int) string {
	var sb strings.Builder
	sb.WriteString("<?php\n// " + prefix + ": generated support module\n")
	emitted := 2
	i := 0
	for emitted+6 <= lines {
		fmt.Fprintf(&sb, `function %s_util_%d($a, $b) {
	$c = $a + %d;
	$d = $b * 2;
	$e = $c . "-" . $d;
	return $e;
}
`, prefix, i, i)
		emitted += 6
		i++
	}
	for emitted < lines {
		sb.WriteString("// pad\n")
		emitted++
	}
	return sb.String()
}

// fillerFiles splits `total` filler lines across files of at most 900
// lines, returning name → source entries to merge into an app.
func fillerFiles(prefix string, total int) map[string]string {
	out := map[string]string{}
	idx := 0
	for total > 0 {
		n := total
		if n > 900 {
			n = 900
		}
		name := fmt.Sprintf("%s/includes/lib-%02d.php", prefix, idx)
		out[name] = filler(fmt.Sprintf("%s_%02d", sanitizeIdent(prefix), idx), n)
		total -= n
		idx++
	}
	return out
}

func sanitizeIdent(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			sb.WriteByte(c)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// branchSwitch emits a PHP switch over a request parameter with `ways`
// symbolic outcomes, multiplying the symbolic executor's path count by
// `ways`. The bodies only touch scratch variables.
func branchSwitch(v string, ways int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "switch ($%s) {\n", v)
	for i := 0; i < ways-1; i++ {
		fmt.Fprintf(&sb, "\tcase %d:\n\t\t$mode_%s = %d;\n\t\tbreak;\n", i, v, i)
	}
	fmt.Fprintf(&sb, "\tdefault:\n\t\t$mode_%s = -1;\n}\n", v)
	return sb.String()
}

// branchIf emits a two-way symbolic branch.
func branchIf(v string) string {
	return fmt.Sprintf("if ($%s) {\n\t$flag_%s = 1;\n} else {\n\t$flag_%s = 0;\n}\n", v, v, v)
}

// branchPlan emits branching code whose path multiplier is exactly the
// product of the given factors (each factor f becomes an f-way switch;
// factor 2 becomes an if).
func branchPlan(tag string, factors ...int) string {
	var sb strings.Builder
	for i, f := range factors {
		v := fmt.Sprintf("%s_b%d", tag, i)
		if f == 2 {
			sb.WriteString(branchIf(v))
		} else {
			sb.WriteString(branchSwitch(v, f))
		}
	}
	return sb.String()
}

// pad emits n lines of straight-line executed statements, fattening the
// analyzed region without adding paths (drives the %-analyzed column).
func pad(tag string, n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "$%s_pad_%d = %d + %d;\n", tag, i, i, i+1)
	}
	return sb.String()
}

// indent prefixes every non-empty line with a tab.
func indent(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = "\t" + l
		}
	}
	return strings.Join(lines, "\n")
}

// mergeSources merges file maps; later maps win on collision.
func mergeSources(ms ...map[string]string) map[string]string {
	out := map[string]string{}
	for _, m := range ms {
		for k, v := range m {
			out[k] = v
		}
	}
	return out
}

// withFiller adds filler modules so the app's total LoC approaches target.
func withFiller(prefix string, sources map[string]string, targetLoC int) map[string]string {
	have := 0
	for _, src := range sources {
		have += lineCount(src)
	}
	if targetLoC > have {
		return mergeSources(sources, fillerFiles(prefix, targetLoC-have))
	}
	return sources
}
