package phpast

import (
	"fmt"
	"strings"
)

// Dump renders the AST as an indented tree, primarily for debugging and the
// cmd/phpparse tool. The format is stable enough for golden tests.
func Dump(n Node) string {
	var sb strings.Builder
	dump(&sb, n, 0)
	return sb.String()
}

func dump(sb *strings.Builder, n Node, depth int) {
	if n == nil {
		return
	}
	indent := strings.Repeat("  ", depth)
	line := func(format string, args ...any) {
		sb.WriteString(indent)
		fmt.Fprintf(sb, format, args...)
		sb.WriteByte('\n')
	}
	switch x := n.(type) {
	case *File:
		line("File %s", x.Name)
		for _, s := range x.Stmts {
			dump(sb, s, depth+1)
		}
	case *IntLit:
		line("Int %d", x.Value)
	case *FloatLit:
		line("Float %g", x.Value)
	case *StringLit:
		line("String %q", x.Value)
	case *InterpString:
		line("InterpString")
		for _, p := range x.Parts {
			dump(sb, p, depth+1)
		}
	case *BoolLit:
		line("Bool %v", x.Value)
	case *NullLit:
		line("Null")
	case *Var:
		line("Var $%s", x.Name)
	case *ArrayDim:
		line("ArrayDim")
		dump(sb, x.Arr, depth+1)
		if x.Index != nil {
			dump(sb, x.Index, depth+1)
		} else {
			sb.WriteString(indent + "  (push)\n")
		}
	case *ArrayLit:
		line("ArrayLit")
		for _, it := range x.Items {
			if it.Key != nil {
				sb.WriteString(indent + "  key:\n")
				dump(sb, it.Key, depth+2)
			}
			sb.WriteString(indent + "  value:\n")
			dump(sb, it.Value, depth+2)
		}
	case *ListExpr:
		line("List")
		for _, it := range x.Items {
			dump(sb, it, depth+1)
		}
	case *Unary:
		line("Unary %s", x.Op)
		dump(sb, x.X, depth+1)
	case *Binary:
		line("Binary %s", x.Op)
		dump(sb, x.L, depth+1)
		dump(sb, x.R, depth+1)
	case *Assign:
		if x.Op == "" {
			line("Assign")
		} else {
			line("Assign %s=", x.Op)
		}
		dump(sb, x.Target, depth+1)
		dump(sb, x.Value, depth+1)
	case *IncDec:
		line("IncDec %s pre=%v", x.Op, x.Pre)
		dump(sb, x.X, depth+1)
	case *Ternary:
		line("Ternary")
		dump(sb, x.Cond, depth+1)
		dump(sb, x.Then, depth+1)
		dump(sb, x.Else, depth+1)
	case *Cast:
		line("Cast (%s)", x.Type)
		dump(sb, x.X, depth+1)
	case *ErrorSuppress:
		line("@")
		dump(sb, x.X, depth+1)
	case *Name:
		line("Name %s", x.Value)
	case *Call:
		line("Call")
		dump(sb, x.Func, depth+1)
		for _, a := range x.Args {
			dump(sb, a, depth+1)
		}
	case *MethodCall:
		line("MethodCall ->%s", x.Method)
		dump(sb, x.Obj, depth+1)
		for _, a := range x.Args {
			dump(sb, a, depth+1)
		}
	case *StaticCall:
		line("StaticCall %s::%s", x.Class, x.Method)
		for _, a := range x.Args {
			dump(sb, a, depth+1)
		}
	case *New:
		line("New %s", x.Class)
		for _, a := range x.Args {
			dump(sb, a, depth+1)
		}
	case *PropFetch:
		line("PropFetch ->%s", x.Prop)
		dump(sb, x.Obj, depth+1)
	case *StaticPropFetch:
		line("StaticProp %s::$%s", x.Class, x.Prop)
	case *ClassConstFetch:
		line("ClassConst %s::%s", x.Class, x.Const)
	case *ConstFetch:
		line("Const %s", x.Name)
	case *Isset:
		line("Isset")
		for _, e := range x.Vars {
			dump(sb, e, depth+1)
		}
	case *Empty:
		line("Empty")
		dump(sb, x.X, depth+1)
	case *Exit:
		line("Exit")
		dump(sb, x.X, depth+1)
	case *Print:
		line("Print")
		dump(sb, x.X, depth+1)
	case *Include:
		line("Include %s", x.Kind)
		dump(sb, x.X, depth+1)
	case *Closure:
		line("Closure(%s)", paramNames(x.Params))
		for _, s := range x.Body {
			dump(sb, s, depth+1)
		}
	case *ExprStmt:
		line("ExprStmt")
		dump(sb, x.X, depth+1)
	case *Echo:
		line("Echo")
		for _, a := range x.Args {
			dump(sb, a, depth+1)
		}
	case *Block:
		line("Block")
		for _, s := range x.Stmts {
			dump(sb, s, depth+1)
		}
	case *If:
		line("If")
		dump(sb, x.Cond, depth+1)
		dump(sb, x.Then, depth+1)
		if x.Else != nil {
			sb.WriteString(indent + "else:\n")
			dump(sb, x.Else, depth+1)
		}
	case *While:
		line("While")
		dump(sb, x.Cond, depth+1)
		dump(sb, x.Body, depth+1)
	case *DoWhile:
		line("DoWhile")
		dump(sb, x.Body, depth+1)
		dump(sb, x.Cond, depth+1)
	case *For:
		line("For")
		for _, e := range x.Init {
			dump(sb, e, depth+1)
		}
		for _, e := range x.Cond {
			dump(sb, e, depth+1)
		}
		for _, e := range x.Post {
			dump(sb, e, depth+1)
		}
		dump(sb, x.Body, depth+1)
	case *Foreach:
		line("Foreach byref=%v", x.ByRef)
		dump(sb, x.Arr, depth+1)
		if x.Key != nil {
			dump(sb, x.Key, depth+1)
		}
		dump(sb, x.Val, depth+1)
		dump(sb, x.Body, depth+1)
	case *Switch:
		line("Switch")
		dump(sb, x.Subject, depth+1)
		for _, c := range x.Cases {
			if c.Cond == nil {
				sb.WriteString(indent + "  default:\n")
			} else {
				sb.WriteString(indent + "  case:\n")
				dump(sb, c.Cond, depth+2)
			}
			for _, s := range c.Stmts {
				dump(sb, s, depth+2)
			}
		}
	case *Break:
		line("Break %d", x.Level)
	case *Continue:
		line("Continue %d", x.Level)
	case *Return:
		line("Return")
		dump(sb, x.X, depth+1)
	case *FuncDecl:
		line("Function %s(%s)", x.Name, paramNames(x.Params))
		for _, s := range x.Body {
			dump(sb, s, depth+1)
		}
	case *ClassDecl:
		line("Class %s", x.Name)
		for _, m := range x.Methods {
			dump(sb, m, depth+1)
		}
	case *ClassMethod:
		line("Method %s(%s)", x.Name, paramNames(x.Params))
		for _, s := range x.Body {
			dump(sb, s, depth+1)
		}
	case *Global:
		line("Global %s", strings.Join(x.Names, ", "))
	case *StaticVars:
		line("Static %s", strings.Join(x.Names, ", "))
	case *Unset:
		line("Unset")
		for _, e := range x.Vars {
			dump(sb, e, depth+1)
		}
	case *InlineHTML:
		line("InlineHTML %d bytes", len(x.Text))
	case *Nop:
		line("Nop")
	case *Try:
		line("Try")
		dump(sb, x.Body, depth+1)
		for _, c := range x.Catches {
			sb.WriteString(indent + "  catch " + strings.Join(c.Types, "|") + ":\n")
			dump(sb, c.Body, depth+2)
		}
		if x.Finally != nil {
			sb.WriteString(indent + "  finally:\n")
			dump(sb, x.Finally, depth+2)
		}
	case *Throw:
		line("Throw")
		dump(sb, x.X, depth+1)
	default:
		line("?%T", n)
	}
}

func paramNames(ps []Param) string {
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = "$" + p.Name
	}
	return strings.Join(names, ", ")
}
