package phpast

// Visitor is called for each node during a Walk. Returning false prunes the
// subtree below the node.
type Visitor func(Node) bool

// Walk performs a depth-first, pre-order traversal of the AST rooted at n,
// invoking v for every node. nil children are skipped.
func Walk(n Node, v Visitor) {
	if n == nil || !v(n) {
		return
	}
	switch x := n.(type) {
	case *File:
		walkStmts(x.Stmts, v)
	case *InterpString:
		walkExprs(x.Parts, v)
	case *ArrayDim:
		walkExpr(x.Arr, v)
		walkExpr(x.Index, v)
	case *ArrayLit:
		for _, it := range x.Items {
			walkExpr(it.Key, v)
			walkExpr(it.Value, v)
		}
	case *ListExpr:
		walkExprs(x.Items, v)
	case *Unary:
		walkExpr(x.X, v)
	case *Binary:
		walkExpr(x.L, v)
		walkExpr(x.R, v)
	case *Assign:
		walkExpr(x.Target, v)
		walkExpr(x.Value, v)
	case *IncDec:
		walkExpr(x.X, v)
	case *Ternary:
		walkExpr(x.Cond, v)
		walkExpr(x.Then, v)
		walkExpr(x.Else, v)
	case *Cast:
		walkExpr(x.X, v)
	case *ErrorSuppress:
		walkExpr(x.X, v)
	case *Call:
		walkExpr(x.Func, v)
		walkExprs(x.Args, v)
	case *MethodCall:
		walkExpr(x.Obj, v)
		walkExprs(x.Args, v)
	case *StaticCall:
		walkExprs(x.Args, v)
	case *New:
		walkExprs(x.Args, v)
	case *PropFetch:
		walkExpr(x.Obj, v)
	case *Isset:
		walkExprs(x.Vars, v)
	case *Empty:
		walkExpr(x.X, v)
	case *Exit:
		walkExpr(x.X, v)
	case *Print:
		walkExpr(x.X, v)
	case *Include:
		walkExpr(x.X, v)
	case *Closure:
		for _, p := range x.Params {
			walkExpr(p.Default, v)
		}
		walkStmts(x.Body, v)
	case *ExprStmt:
		walkExpr(x.X, v)
	case *Echo:
		walkExprs(x.Args, v)
	case *Block:
		walkStmts(x.Stmts, v)
	case *If:
		walkExpr(x.Cond, v)
		if x.Then != nil {
			Walk(x.Then, v)
		}
		if x.Else != nil {
			Walk(x.Else, v)
		}
	case *While:
		walkExpr(x.Cond, v)
		if x.Body != nil {
			Walk(x.Body, v)
		}
	case *DoWhile:
		if x.Body != nil {
			Walk(x.Body, v)
		}
		walkExpr(x.Cond, v)
	case *For:
		walkExprs(x.Init, v)
		walkExprs(x.Cond, v)
		walkExprs(x.Post, v)
		if x.Body != nil {
			Walk(x.Body, v)
		}
	case *Foreach:
		walkExpr(x.Arr, v)
		walkExpr(x.Key, v)
		walkExpr(x.Val, v)
		if x.Body != nil {
			Walk(x.Body, v)
		}
	case *Switch:
		walkExpr(x.Subject, v)
		for _, c := range x.Cases {
			walkExpr(c.Cond, v)
			walkStmts(c.Stmts, v)
		}
	case *Return:
		walkExpr(x.X, v)
	case *FuncDecl:
		for _, p := range x.Params {
			walkExpr(p.Default, v)
		}
		walkStmts(x.Body, v)
	case *ClassDecl:
		for _, m := range x.Methods {
			Walk(m, v)
		}
		for _, p := range x.Props {
			walkExpr(p.Default, v)
		}
		for _, e := range x.Consts {
			walkExpr(e, v)
		}
	case *ClassMethod:
		for _, p := range x.Params {
			walkExpr(p.Default, v)
		}
		walkStmts(x.Body, v)
	case *StaticVars:
		walkExprs(x.Inits, v)
	case *Unset:
		walkExprs(x.Vars, v)
	case *Try:
		if x.Body != nil {
			Walk(x.Body, v)
		}
		for _, c := range x.Catches {
			if c.Body != nil {
				Walk(c.Body, v)
			}
		}
		if x.Finally != nil {
			Walk(x.Finally, v)
		}
	case *Throw:
		walkExpr(x.X, v)
	}
}

func walkExpr(e Expr, v Visitor) {
	if e != nil {
		Walk(e, v)
	}
}

func walkExprs(es []Expr, v Visitor) {
	for _, e := range es {
		walkExpr(e, v)
	}
}

func walkStmts(ss []Stmt, v Visitor) {
	for _, s := range ss {
		if s != nil {
			Walk(s, v)
		}
	}
}

// CalleeName returns the lower-cased function name of a call expression if
// its callee is a simple name, and ok=false otherwise. PHP function names
// are case-insensitive.
func CalleeName(c *Call) (string, bool) {
	if n, ok := c.Func.(*Name); ok {
		return lowerASCII(n.Value), true
	}
	return "", false
}

func lowerASCII(s string) string {
	b := []byte(s)
	changed := false
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + ('a' - 'A')
			changed = true
		}
	}
	if !changed {
		return s
	}
	return string(b)
}
