package phpast

import (
	"strings"
	"testing"

	"repro/internal/phptoken"
)

func pos(line int) phptoken.Pos { return phptoken.Pos{Line: line, Col: 1} }

// sample builds a small synthetic tree covering many node kinds:
//
//	if ($x > 1) { $y = f($x, "s"); } else { return $x; }
func sample() *File {
	x := func() *Var { return &Var{P: pos(1), Name: "x"} }
	cond := &Binary{P: pos(1), Op: ">", L: x(), R: &IntLit{P: pos(1), Value: 1}}
	call := &Call{
		P:    pos(2),
		Func: &Name{P: pos(2), Value: "f"},
		Args: []Expr{x(), &StringLit{P: pos(2), Value: "s"}},
	}
	asgn := &Assign{P: pos(2), Target: &Var{P: pos(2), Name: "y"}, Value: call}
	iff := &If{
		P:    pos(1),
		Cond: cond,
		Then: &Block{P: pos(1), Stmts: []Stmt{&ExprStmt{P: pos(2), X: asgn}}},
		Else: &Block{P: pos(3), Stmts: []Stmt{&Return{P: pos(3), X: x()}}},
	}
	return &File{Name: "sample.php", Stmts: []Stmt{iff}}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	var kinds []string
	Walk(sample(), func(n Node) bool {
		switch n.(type) {
		case *Var:
			kinds = append(kinds, "var")
		case *Call:
			kinds = append(kinds, "call")
		case *If:
			kinds = append(kinds, "if")
		case *Return:
			kinds = append(kinds, "return")
		}
		return true
	})
	counts := map[string]int{}
	for _, k := range kinds {
		counts[k]++
	}
	if counts["var"] != 4 || counts["call"] != 1 || counts["if"] != 1 || counts["return"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestWalkPrunes(t *testing.T) {
	sawCall := false
	Walk(sample(), func(n Node) bool {
		if _, ok := n.(*If); ok {
			return false // prune the whole conditional
		}
		if _, ok := n.(*Call); ok {
			sawCall = true
		}
		return true
	})
	if sawCall {
		t.Error("pruned subtree was visited")
	}
}

func TestWalkNilSafe(t *testing.T) {
	// Nodes with nil children must not panic.
	nodes := []Node{
		&If{P: pos(1), Cond: &Var{P: pos(1), Name: "c"}, Then: &Block{P: pos(1)}},
		&Return{P: pos(1)},
		&Ternary{P: pos(1), Cond: &Var{P: pos(1), Name: "c"}, Else: &IntLit{P: pos(1)}},
		&Foreach{P: pos(1), Arr: &Var{P: pos(1), Name: "a"}, Val: &Var{P: pos(1), Name: "v"}, Body: &Block{P: pos(1)}},
	}
	for _, n := range nodes {
		Walk(n, func(Node) bool { return true })
	}
	// A nil interface is skipped outright.
	Walk(nil, func(Node) bool { return true })
}

func TestCalleeName(t *testing.T) {
	c := &Call{P: pos(1), Func: &Name{P: pos(1), Value: "Move_Uploaded_FILE"}}
	name, ok := CalleeName(c)
	if !ok || name != "move_uploaded_file" {
		t.Errorf("CalleeName = %q %v", name, ok)
	}
	dyn := &Call{P: pos(1), Func: &Var{P: pos(1), Name: "fn"}}
	if _, ok := CalleeName(dyn); ok {
		t.Error("dynamic callee should not resolve")
	}
}

func TestFilePos(t *testing.T) {
	f := sample()
	if f.Pos().Line != 1 {
		t.Errorf("file pos = %v", f.Pos())
	}
	empty := &File{Name: "e.php"}
	if empty.Pos().IsValid() {
		t.Error("empty file should have invalid pos")
	}
}

func TestDumpRendersStructure(t *testing.T) {
	out := Dump(sample())
	for _, want := range []string{
		"File sample.php",
		"If",
		"Binary >",
		"Var $x",
		"Assign",
		"Call",
		"Name f",
		`String "s"`,
		"else:",
		"Return",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	// Indentation reflects depth: Assign is nested under If/Block.
	if !strings.Contains(out, "\n    ") {
		t.Error("dump lacks indentation")
	}
}

func TestDumpMiscNodes(t *testing.T) {
	nodes := []Node{
		&InterpString{P: pos(1), Parts: []Expr{&StringLit{P: pos(1), Value: "a"}, &Var{P: pos(1), Name: "b"}}},
		&ArrayLit{P: pos(1), Items: []ArrayItem{{Key: &StringLit{P: pos(1), Value: "k"}, Value: &IntLit{P: pos(1), Value: 1}}}},
		&ArrayDim{P: pos(1), Arr: &Var{P: pos(1), Name: "a"}},
		&Ternary{P: pos(1), Cond: &Var{P: pos(1), Name: "c"}, Then: &IntLit{P: pos(1)}, Else: &IntLit{P: pos(1)}},
		&Closure{P: pos(1), Params: []Param{{Name: "p"}}},
		&Switch{P: pos(1), Subject: &Var{P: pos(1), Name: "s"}, Cases: []SwitchCase{{P: pos(1)}, {P: pos(1), Cond: &IntLit{P: pos(1), Value: 1}}}},
		&Try{P: pos(1), Body: &Block{P: pos(1)}, Catches: []Catch{{P: pos(1), Types: []string{"E"}, Body: &Block{P: pos(1)}}}, Finally: &Block{P: pos(1)}},
		&Global{P: pos(1), Names: []string{"wpdb"}},
		&Unset{P: pos(1), Vars: []Expr{&Var{P: pos(1), Name: "u"}}},
		&InlineHTML{P: pos(1), Text: "<b>hi</b>"},
		&ClassDecl{P: pos(1), Name: "C", Methods: []*ClassMethod{{P: pos(1), Name: "m"}}},
		&StaticCall{P: pos(1), Class: "C", Method: "m"},
		&MethodCall{P: pos(1), Obj: &Var{P: pos(1), Name: "o"}, Method: "go"},
		&PropFetch{P: pos(1), Obj: &Var{P: pos(1), Name: "o"}, Prop: "p"},
		&New{P: pos(1), Class: "K"},
		&Cast{P: pos(1), Type: "int", X: &Var{P: pos(1), Name: "v"}},
		&ErrorSuppress{P: pos(1), X: &Var{P: pos(1), Name: "v"}},
		&Include{P: pos(1), Kind: "require", X: &StringLit{P: pos(1), Value: "x.php"}},
		&Exit{P: pos(1)},
		&Isset{P: pos(1), Vars: []Expr{&Var{P: pos(1), Name: "v"}}},
		&Empty{P: pos(1), X: &Var{P: pos(1), Name: "v"}},
		&ListExpr{P: pos(1), Items: []Expr{&Var{P: pos(1), Name: "a"}}},
		&IncDec{P: pos(1), Op: "++", X: &Var{P: pos(1), Name: "i"}},
		&Break{P: pos(1), Level: 2},
		&Continue{P: pos(1)},
		&Nop{P: pos(1)},
		&Throw{P: pos(1), X: &Var{P: pos(1), Name: "e"}},
		&While{P: pos(1), Cond: &BoolLit{P: pos(1), Value: true}, Body: &Block{P: pos(1)}},
		&DoWhile{P: pos(1), Body: &Block{P: pos(1)}, Cond: &BoolLit{P: pos(1)}},
		&For{P: pos(1), Body: &Block{P: pos(1)}},
		&Foreach{P: pos(1), Arr: &Var{P: pos(1), Name: "a"}, Key: &Var{P: pos(1), Name: "k"}, Val: &Var{P: pos(1), Name: "v"}, Body: &Block{P: pos(1)}},
		&FuncDecl{P: pos(1), Name: "fn", Params: []Param{{Name: "a"}, {Name: "b"}}},
		&StaticVars{P: pos(1), Names: []string{"s"}, Inits: []Expr{nil}},
		&ConstFetch{P: pos(1), Name: "PHP_EOL"},
		&ClassConstFetch{P: pos(1), Class: "C", Const: "K"},
		&StaticPropFetch{P: pos(1), Class: "C", Prop: "p"},
		&FloatLit{P: pos(1), Value: 1.5},
		&NullLit{P: pos(1)},
		&Print{P: pos(1), X: &StringLit{P: pos(1), Value: "x"}},
		&Unary{P: pos(1), Op: "!", X: &BoolLit{P: pos(1)}},
	}
	for _, n := range nodes {
		if out := Dump(n); out == "" {
			t.Errorf("empty dump for %T", n)
		}
		// Walk must handle every node kind too.
		Walk(n, func(Node) bool { return true })
		if !n.Pos().IsValid() {
			t.Errorf("%T: invalid pos", n)
		}
	}
}
