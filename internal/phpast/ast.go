// Package phpast defines the abstract syntax tree for the PHP dialect
// parsed by this repository.
//
// Every node records the source position of its first token, preserving the
// one-to-one mapping between AST nodes and lines of source code that the
// UChecker paper relies on for source-level vulnerability reports
// (Section I: "AST offers unique advantages since it enables the one-to-one
// mapping between AST nodes and lines of source code").
package phpast

import (
	"repro/internal/phptoken"
)

// Node is any AST node.
type Node interface {
	// Pos returns the position of the node's first token.
	Pos() phptoken.Pos
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// File is a parsed PHP source file.
type File struct {
	Name  string // file path as given to the parser
	Stmts []Stmt
}

// Pos returns the position of the first statement, or an invalid position
// for an empty file.
func (f *File) Pos() phptoken.Pos {
	if len(f.Stmts) > 0 {
		return f.Stmts[0].Pos()
	}
	return phptoken.Pos{}
}

// ---------------------------------------------------------------- literals

// IntLit is an integer literal.
type IntLit struct {
	P     phptoken.Pos
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	P     phptoken.Pos
	Value float64
}

// StringLit is a string literal with escapes already decoded.
type StringLit struct {
	P     phptoken.Pos
	Value string
}

// InterpString is a double-quoted or heredoc string containing
// interpolation; Parts alternate between StringLit and expression nodes and
// the whole evaluates to their concatenation.
type InterpString struct {
	P     phptoken.Pos
	Parts []Expr
}

// BoolLit is true or false.
type BoolLit struct {
	P     phptoken.Pos
	Value bool
}

// NullLit is the null constant.
type NullLit struct {
	P phptoken.Pos
}

// -------------------------------------------------------------- variables

// Var is a variable expression ($name); Name excludes the '$'.
type Var struct {
	P    phptoken.Pos
	Name string
}

// ArrayDim is an array access x[index]. Index is nil for the push form x[].
type ArrayDim struct {
	P     phptoken.Pos
	Arr   Expr
	Index Expr
}

// ArrayItem is one element of an array literal.
type ArrayItem struct {
	Key   Expr // nil when no key given
	Value Expr
	ByRef bool
}

// ArrayLit is array(...) or [...].
type ArrayLit struct {
	P     phptoken.Pos
	Items []ArrayItem
}

// ListExpr is list($a, $b) used as an assignment target.
type ListExpr struct {
	P     phptoken.Pos
	Items []Expr // elements may be nil for skipped slots
}

// ------------------------------------------------------------- operations

// Unary is a unary operation. Op is one of "!", "-", "+", "~".
type Unary struct {
	P  phptoken.Pos
	Op string
	X  Expr
}

// Binary is a binary operation. Op uses PHP spellings: "+", "-", "*", "/",
// "%", "**", ".", "==", "!=", "===", "!==", "<", ">", "<=", ">=", "<=>",
// "&&", "||", "and", "or", "xor", "&", "|", "^", "<<", ">>", "??",
// "instanceof".
type Binary struct {
	P    phptoken.Pos
	Op   string
	L, R Expr
}

// Assign is an assignment expression. Op is "" for plain =, otherwise the
// compound operator ("+", ".", "??", ...). ByRef marks $a = &$b.
type Assign struct {
	P      phptoken.Pos
	Op     string
	Target Expr
	Value  Expr
	ByRef  bool
}

// IncDec is ++$x / $x++ / --$x / $x--.
type IncDec struct {
	P   phptoken.Pos
	Op  string // "++" or "--"
	Pre bool
	X   Expr
}

// Ternary is cond ? then : else. Then is nil for the short form cond ?: else.
type Ternary struct {
	P    phptoken.Pos
	Cond Expr
	Then Expr
	Else Expr
}

// Cast is (int)$x, (string)$x, etc. Type is lower-cased ("int", "bool",
// "float", "string", "array", "object").
type Cast struct {
	P    phptoken.Pos
	Type string
	X    Expr
}

// ErrorSuppress is @expr.
type ErrorSuppress struct {
	P phptoken.Pos
	X Expr
}

// ------------------------------------------------------- calls and names

// Name is a (possibly namespace-qualified) identifier used as a function
// name, class name, or constant. Value keeps the original spelling;
// namespace separators are preserved ("Foo\Bar").
type Name struct {
	P     phptoken.Pos
	Value string
}

// Call is a function call. Func is usually a *Name but may be any
// expression (variable functions).
type Call struct {
	P    phptoken.Pos
	Func Expr
	Args []Expr
}

// MethodCall is $obj->method(args).
type MethodCall struct {
	P      phptoken.Pos
	Obj    Expr
	Method string
	Args   []Expr
}

// StaticCall is Class::method(args).
type StaticCall struct {
	P      phptoken.Pos
	Class  string
	Method string
	Args   []Expr
}

// New is new Class(args).
type New struct {
	P     phptoken.Pos
	Class string
	Args  []Expr
}

// PropFetch is $obj->prop.
type PropFetch struct {
	P    phptoken.Pos
	Obj  Expr
	Prop string
}

// StaticPropFetch is Class::$prop.
type StaticPropFetch struct {
	P     phptoken.Pos
	Class string
	Prop  string
}

// ClassConstFetch is Class::CONST.
type ClassConstFetch struct {
	P     phptoken.Pos
	Class string
	Const string
}

// ConstFetch is a bare constant such as PATHINFO_EXTENSION or PHP_EOL.
type ConstFetch struct {
	P    phptoken.Pos
	Name string
}

// Isset is isset($a, $b...).
type Isset struct {
	P    phptoken.Pos
	Vars []Expr
}

// Empty is empty($x).
type Empty struct {
	P phptoken.Pos
	X Expr
}

// Exit is exit(expr) or die(expr); X may be nil.
type Exit struct {
	P phptoken.Pos
	X Expr
}

// Print is print expr (an expression in PHP, unlike echo).
type Print struct {
	P phptoken.Pos
	X Expr
}

// Include is include/require (once) used as an expression.
// Kind is "include", "include_once", "require" or "require_once".
type Include struct {
	P    phptoken.Pos
	Kind string
	X    Expr
}

// Closure is an anonymous function.
type Closure struct {
	P      phptoken.Pos
	Params []Param
	Uses   []ClosureUse
	Body   []Stmt
}

// ClosureUse is one variable captured by a closure.
type ClosureUse struct {
	Name  string
	ByRef bool
}

// ------------------------------------------------------------- statements

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	P phptoken.Pos
	X Expr
}

// Echo is echo e1, e2, ...;
type Echo struct {
	P    phptoken.Pos
	Args []Expr
}

// Block is { ... }.
type Block struct {
	P     phptoken.Pos
	Stmts []Stmt
}

// If is a conditional. Else is nil, a *Block, or another *If (for elseif
// chains, which the parser normalizes to nested ifs).
type If struct {
	P    phptoken.Pos
	Cond Expr
	Then *Block
	Else Stmt
}

// While is a while loop.
type While struct {
	P    phptoken.Pos
	Cond Expr
	Body *Block
}

// DoWhile is do { ... } while (cond);
type DoWhile struct {
	P    phptoken.Pos
	Body *Block
	Cond Expr
}

// For is for(init; cond; post) body. Each clause may hold zero or more
// comma-separated expressions.
type For struct {
	P    phptoken.Pos
	Init []Expr
	Cond []Expr
	Post []Expr
	Body *Block
}

// Foreach is foreach($arr as $k => $v) body. Key may be nil.
type Foreach struct {
	P     phptoken.Pos
	Arr   Expr
	Key   Expr
	Val   Expr
	ByRef bool
	Body  *Block
}

// SwitchCase is one case (Conds nil means default).
type SwitchCase struct {
	P     phptoken.Pos
	Cond  Expr // nil for default
	Stmts []Stmt
}

// Switch is a switch statement.
type Switch struct {
	P       phptoken.Pos
	Subject Expr
	Cases   []SwitchCase
}

// Break is break; or break n;.
type Break struct {
	P     phptoken.Pos
	Level int // 0 means unspecified (= 1)
}

// Continue is continue; or continue n;.
type Continue struct {
	P     phptoken.Pos
	Level int
}

// Return is return; or return expr;.
type Return struct {
	P phptoken.Pos
	X Expr // may be nil
}

// Param is a function parameter.
type Param struct {
	P        phptoken.Pos
	Name     string
	Type     string // optional type hint, "" when absent
	Default  Expr   // nil when absent
	ByRef    bool
	Variadic bool
}

// FuncDecl is a named function declaration.
type FuncDecl struct {
	P      phptoken.Pos
	Name   string
	Params []Param
	Body   []Stmt
	// EndLine is the line of the closing brace, used for LoC accounting in
	// the locality analysis.
	EndLine int
}

// ClassMethod is a method inside a class declaration.
type ClassMethod struct {
	P          phptoken.Pos
	Name       string
	Params     []Param
	Body       []Stmt // nil for abstract/interface methods
	Static     bool
	Visibility string // "public", "private", "protected" or ""
	EndLine    int
}

// PropertyDecl is a class property declaration.
type PropertyDecl struct {
	P       phptoken.Pos
	Name    string
	Default Expr
	Static  bool
}

// ClassDecl is a class or interface declaration (trait-free dialect).
type ClassDecl struct {
	P           phptoken.Pos
	Name        string
	Parent      string
	Interfaces  []string
	Methods     []*ClassMethod
	Props       []*PropertyDecl
	Consts      map[string]Expr
	IsInterface bool
	EndLine     int
}

// Global is global $a, $b;.
type Global struct {
	P     phptoken.Pos
	Names []string
}

// StaticVars is static $a = 1, $b;.
type StaticVars struct {
	P     phptoken.Pos
	Names []string
	Inits []Expr // parallel to Names; entries may be nil
}

// Unset is unset($a, $b);.
type Unset struct {
	P    phptoken.Pos
	Vars []Expr
}

// InlineHTML is raw output text between ?> and <?php.
type InlineHTML struct {
	P    phptoken.Pos
	Text string
}

// Nop is an empty statement (stray semicolon).
type Nop struct {
	P phptoken.Pos
}

// Try is try/catch/finally. The interpreter treats catch bodies as
// alternate paths and finally as unconditional continuation.
type Try struct {
	P       phptoken.Pos
	Body    *Block
	Catches []Catch
	Finally *Block
}

// Catch is one catch clause.
type Catch struct {
	P     phptoken.Pos
	Types []string
	Var   string
	Body  *Block
}

// Throw is throw expr;.
type Throw struct {
	P phptoken.Pos
	X Expr
}

// Pos implementations.

func (n *IntLit) Pos() phptoken.Pos          { return n.P }
func (n *FloatLit) Pos() phptoken.Pos        { return n.P }
func (n *StringLit) Pos() phptoken.Pos       { return n.P }
func (n *InterpString) Pos() phptoken.Pos    { return n.P }
func (n *BoolLit) Pos() phptoken.Pos         { return n.P }
func (n *NullLit) Pos() phptoken.Pos         { return n.P }
func (n *Var) Pos() phptoken.Pos             { return n.P }
func (n *ArrayDim) Pos() phptoken.Pos        { return n.P }
func (n *ArrayLit) Pos() phptoken.Pos        { return n.P }
func (n *ListExpr) Pos() phptoken.Pos        { return n.P }
func (n *Unary) Pos() phptoken.Pos           { return n.P }
func (n *Binary) Pos() phptoken.Pos          { return n.P }
func (n *Assign) Pos() phptoken.Pos          { return n.P }
func (n *IncDec) Pos() phptoken.Pos          { return n.P }
func (n *Ternary) Pos() phptoken.Pos         { return n.P }
func (n *Cast) Pos() phptoken.Pos            { return n.P }
func (n *ErrorSuppress) Pos() phptoken.Pos   { return n.P }
func (n *Name) Pos() phptoken.Pos            { return n.P }
func (n *Call) Pos() phptoken.Pos            { return n.P }
func (n *MethodCall) Pos() phptoken.Pos      { return n.P }
func (n *StaticCall) Pos() phptoken.Pos      { return n.P }
func (n *New) Pos() phptoken.Pos             { return n.P }
func (n *PropFetch) Pos() phptoken.Pos       { return n.P }
func (n *StaticPropFetch) Pos() phptoken.Pos { return n.P }
func (n *ClassConstFetch) Pos() phptoken.Pos { return n.P }
func (n *ConstFetch) Pos() phptoken.Pos      { return n.P }
func (n *Isset) Pos() phptoken.Pos           { return n.P }
func (n *Empty) Pos() phptoken.Pos           { return n.P }
func (n *Exit) Pos() phptoken.Pos            { return n.P }
func (n *Print) Pos() phptoken.Pos           { return n.P }
func (n *Include) Pos() phptoken.Pos         { return n.P }
func (n *Closure) Pos() phptoken.Pos         { return n.P }
func (n *ExprStmt) Pos() phptoken.Pos        { return n.P }
func (n *Echo) Pos() phptoken.Pos            { return n.P }
func (n *Block) Pos() phptoken.Pos           { return n.P }
func (n *If) Pos() phptoken.Pos              { return n.P }
func (n *While) Pos() phptoken.Pos           { return n.P }
func (n *DoWhile) Pos() phptoken.Pos         { return n.P }
func (n *For) Pos() phptoken.Pos             { return n.P }
func (n *Foreach) Pos() phptoken.Pos         { return n.P }
func (n *Switch) Pos() phptoken.Pos          { return n.P }
func (n *Break) Pos() phptoken.Pos           { return n.P }
func (n *Continue) Pos() phptoken.Pos        { return n.P }
func (n *Return) Pos() phptoken.Pos          { return n.P }
func (n *FuncDecl) Pos() phptoken.Pos        { return n.P }
func (n *ClassDecl) Pos() phptoken.Pos       { return n.P }
func (n *ClassMethod) Pos() phptoken.Pos     { return n.P }
func (n *Global) Pos() phptoken.Pos          { return n.P }
func (n *StaticVars) Pos() phptoken.Pos      { return n.P }
func (n *Unset) Pos() phptoken.Pos           { return n.P }
func (n *InlineHTML) Pos() phptoken.Pos      { return n.P }
func (n *Nop) Pos() phptoken.Pos             { return n.P }
func (n *Try) Pos() phptoken.Pos             { return n.P }
func (n *Throw) Pos() phptoken.Pos           { return n.P }

// Expression markers.

func (*IntLit) exprNode()          {}
func (*FloatLit) exprNode()        {}
func (*StringLit) exprNode()       {}
func (*InterpString) exprNode()    {}
func (*BoolLit) exprNode()         {}
func (*NullLit) exprNode()         {}
func (*Var) exprNode()             {}
func (*ArrayDim) exprNode()        {}
func (*ArrayLit) exprNode()        {}
func (*ListExpr) exprNode()        {}
func (*Unary) exprNode()           {}
func (*Binary) exprNode()          {}
func (*Assign) exprNode()          {}
func (*IncDec) exprNode()          {}
func (*Ternary) exprNode()         {}
func (*Cast) exprNode()            {}
func (*ErrorSuppress) exprNode()   {}
func (*Name) exprNode()            {}
func (*Call) exprNode()            {}
func (*MethodCall) exprNode()      {}
func (*StaticCall) exprNode()      {}
func (*New) exprNode()             {}
func (*PropFetch) exprNode()       {}
func (*StaticPropFetch) exprNode() {}
func (*ClassConstFetch) exprNode() {}
func (*ConstFetch) exprNode()      {}
func (*Isset) exprNode()           {}
func (*Empty) exprNode()           {}
func (*Exit) exprNode()            {}
func (*Print) exprNode()           {}
func (*Include) exprNode()         {}
func (*Closure) exprNode()         {}

// Statement markers.

func (*ExprStmt) stmtNode()   {}
func (*Echo) stmtNode()       {}
func (*Block) stmtNode()      {}
func (*If) stmtNode()         {}
func (*While) stmtNode()      {}
func (*DoWhile) stmtNode()    {}
func (*For) stmtNode()        {}
func (*Foreach) stmtNode()    {}
func (*Switch) stmtNode()     {}
func (*Break) stmtNode()      {}
func (*Continue) stmtNode()   {}
func (*Return) stmtNode()     {}
func (*FuncDecl) stmtNode()   {}
func (*ClassDecl) stmtNode()  {}
func (*Global) stmtNode()     {}
func (*StaticVars) stmtNode() {}
func (*Unset) stmtNode()      {}
func (*InlineHTML) stmtNode() {}
func (*Nop) stmtNode()        {}
func (*Try) stmtNode()        {}
func (*Throw) stmtNode()      {}
