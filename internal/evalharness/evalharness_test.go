package evalharness

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/interp"
	"repro/internal/uchecker"
)

// Table III scans are expensive (the Cimy abort dominates); compute each
// configuration once per test binary.
var (
	tableOnce sync.Once
	tableRows []Row
)

func cachedTableIII(t *testing.T) []Row {
	t.Helper()
	tableOnce.Do(func() {
		tableRows = TableIII(testOptions(t))
	})
	return tableRows
}

// testOptions keeps the heavy Cimy abort cheap under -short: a 20000-path
// budget still clears Avatar Uploader's 9216 paths and still aborts Cimy
// (which needs 248832), reproducing the paper's false negative at a
// fraction of the memory.
func testOptions(t *testing.T) uchecker.Options {
	t.Helper()
	if testing.Short() {
		return uchecker.Options{Budgets: uchecker.Budgets{MaxPaths: 20000}}
	}
	return uchecker.Options{}
}

// TestTableIIIVerdicts checks every named row's verdict against the paper:
// 12/13 known vulnerable detected (Cimy aborts), both admin-gated plugins
// flagged (the documented FPs), and all 3 new vulnerabilities found.
func TestTableIIIVerdicts(t *testing.T) {
	rows := cachedTableIII(t)
	if len(rows) != 18 {
		t.Fatalf("rows = %d, want 18", len(rows))
	}
	for _, r := range rows {
		if r.App.Paper == nil {
			t.Fatalf("%s: missing paper row", r.App.Name)
		}
		want := r.App.Paper.Detected
		if got := r.Detected(); got != want {
			t.Errorf("%s: detected = %v, paper says %v", r.App.Name, got, want)
		}
	}
}

func TestTableIIICimyBudget(t *testing.T) {
	rows := cachedTableIII(t)
	for _, r := range rows {
		if strings.HasPrefix(r.App.Name, "Cimy") {
			if !r.Report.BudgetExceeded {
				t.Error("Cimy must exceed the budget (the paper's FN)")
			}
			if r.Report.Vulnerable {
				t.Error("Cimy must not be reported vulnerable")
			}
			return
		}
	}
	t.Fatal("Cimy row missing")
}

// TestTableIIIPathCounts verifies the branch factorization reproduces the
// paper's path counts exactly for the rows that complete.
func TestTableIIIPathCounts(t *testing.T) {
	rows := cachedTableIII(t)
	for _, r := range rows {
		if r.Report.BudgetExceeded {
			continue
		}
		if got, want := r.Report.Paths, r.App.Paper.Paths; got != want {
			t.Errorf("%s: paths = %d, paper %d", r.App.Name, got, want)
		}
	}
}

// TestTableIIILocalityReduction verifies the %-analyzed column is in the
// paper's neighbourhood (the headline locality-analysis result).
func TestTableIIILocalityReduction(t *testing.T) {
	rows := cachedTableIII(t)
	for _, r := range rows {
		got := r.Report.PercentAnalyzed
		want := r.App.Paper.PctAnalyzed
		if got <= 0 {
			t.Errorf("%s: no analyzed code", r.App.Name)
			continue
		}
		// Within a factor of two of the paper's percentage.
		if got > want*2 || got < want/2 {
			t.Errorf("%s: %%analyzed = %.2f, paper %.2f", r.App.Name, got, want)
		}
	}
}

// TestTableIIIObjectSharing checks the objects-per-path economy the paper
// credits to the heap-graph design ("each path has less than 100 objects
// on average", Cimy exempted).
func TestTableIIIObjectSharing(t *testing.T) {
	rows := cachedTableIII(t)
	for _, r := range rows {
		if r.Report.BudgetExceeded {
			continue
		}
		if r.Report.ObjectsPerPath >= 150 {
			t.Errorf("%s: objects/path = %.1f, want < 150", r.App.Name, r.Report.ObjectsPerPath)
		}
	}
}

func TestRenderTableIII(t *testing.T) {
	rows := cachedTableIII(t)
	out := RenderTableIII(rows)
	for _, want := range []string{
		"TABLE III",
		"Adblock Blocker 0.0.1",
		"Cimy User Extra Fields 2.3.8",
		"File Provider 1.2.3",
		"No*",
		"-- known-vulnerable --",
		"-- false-positive --",
		"-- new-vuln --",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestPhaseTimesSpanHook covers the -phases aggregation: spans from a
// concurrent two-app batch attribute to the right app via the "app"
// span attribute, and Render emits one row per app plus every phase
// column and a TOTAL row.
func TestPhaseTimesSpanHook(t *testing.T) {
	names := []string{"Uploadify 1.0.0", "Adblock Blocker 0.0.1"}
	var targets []uchecker.Target
	for _, n := range names {
		app, ok := corpus.ByName(n)
		if !ok {
			t.Fatalf("missing corpus app %q", n)
		}
		targets = append(targets, corpusTarget(app))
	}
	times := NewPhaseTimes()
	reps := uchecker.NewScanner(uchecker.Options{
		Workers: 4,
		OnSpan:  times.SpanHook(),
	}).ScanBatch(context.Background(), targets)
	for i, rep := range reps {
		if rep == nil {
			t.Fatalf("report %d is nil", i)
		}
	}
	out := times.Render()
	for _, want := range append([]string{"parse", "locality", "root", "interp", "verify", "scan", "TOTAL"}, names...) {
		if !strings.Contains(out, want) {
			t.Errorf("phase table missing %q:\n%s", want, out)
		}
	}
	// Per-app attribution: each app accumulated its own nonzero scan time.
	for _, n := range names {
		if d := times.total[n]["scan"]; d <= 0 {
			t.Errorf("%s: scan time = %v, want > 0", n, d)
		}
	}
}

// TestTableIIIVerdictsVMEngine re-runs the Table III sweep under the
// bytecode VM and checks every verdict against the paper — including the
// Cimy path-budget miss, which must reproduce identically because the VM
// counts paths and objects through the same heap graph and budget checks
// as the tree walker.
func TestTableIIIVerdictsVMEngine(t *testing.T) {
	opts := uchecker.Options{
		Budgets: uchecker.Budgets{MaxPaths: 20000},
		Engine:  interp.EngineVM,
	}
	rows := TableIII(opts)
	if len(rows) != 18 {
		t.Fatalf("rows = %d, want 18", len(rows))
	}
	cimySeen := false
	for _, r := range rows {
		if got, want := r.Detected(), r.App.Paper.Detected; got != want {
			t.Errorf("%s: vm detected = %v, paper says %v", r.App.Name, got, want)
		}
		if strings.HasPrefix(r.App.Name, "Cimy") {
			cimySeen = true
			if !r.Report.BudgetExceeded || r.Report.Vulnerable {
				t.Errorf("Cimy under vm: budget=%v vulnerable=%v, want abort and no verdict",
					r.Report.BudgetExceeded, r.Report.Vulnerable)
			}
		}
	}
	if !cimySeen {
		t.Fatal("Cimy row missing")
	}
}

// TestCounterTableVMDeterministic asserts the ucheck-bench -counters
// rendering path — CounterTally + RenderCounterTable — is byte-identical
// for Workers=1,2,8 under the VM engine, includes the ir_*/vm_* execution
// counters, and lists metric names in sorted order.
func TestCounterTableVMDeterministic(t *testing.T) {
	// A multi-root app (so ir_compile_cache_hits is nonzero) plus two
	// corpus apps to exercise the batch merge.
	sources := map[string]string{}
	for _, f := range []string{"a", "b", "c"} {
		sources[f+".php"] = `<?php
move_uploaded_file($_FILES['` + f + `']['tmp_name'], "/up/" . $_FILES['` + f + `']['name']);
`
	}
	// A const-foldable run plus a function body inlined at three call
	// sites — the third call replays from the block cache (first miss
	// arms the span, second records) — so the fold and block-cache
	// counters are exercised, not just present-when-zero.
	sources["loop.php"] = `<?php
function banner() {
	$msg = "warn" . "ing";
	return $msg;
}
banner();
banner();
banner();
move_uploaded_file($_FILES['l']['tmp_name'], "/up/" . $_FILES['l']['name']);
`
	targets := []uchecker.Target{{Name: "counters-app", Sources: sources}}
	for _, n := range []string{"Uploadify 1.0.0", "Avatar Uploader 6.x-1.2"} {
		app, ok := corpus.ByName(n)
		if !ok {
			t.Fatalf("missing corpus app %q", n)
		}
		targets = append(targets, uchecker.Target{Name: app.Name, Sources: app.Sources})
	}

	var want string
	for _, workers := range []int{1, 2, 8} {
		reps := uchecker.NewScanner(uchecker.Options{
			Engine:  interp.EngineVM,
			Workers: workers,
		}).ScanBatch(context.Background(), targets)
		out := RenderCounterTable(CounterTally(reps))
		if want == "" {
			want = out
			continue
		}
		if out != want {
			t.Errorf("Workers=%d counter table differs:\n got:\n%s\nwant:\n%s", workers, out, want)
		}
	}
	for _, counter := range []string{
		"ir_functions_compiled", "ir_instructions_executed",
		"ir_compile_cache_hits", "vm_dispatch_loops",
		"ir_consts_folded", "vm_block_cache_hits", "vm_block_cache_misses",
	} {
		if !strings.Contains(want, counter) {
			t.Errorf("counter table missing %s:\n%s", counter, want)
		}
	}
	// Rows are sorted by metric name (the header line excepted).
	lines := strings.Split(strings.TrimSpace(want), "\n")[1:]
	for i := 1; i < len(lines); i++ {
		prev := strings.Fields(lines[i-1])[0]
		cur := strings.Fields(lines[i])[0]
		if prev >= cur {
			t.Errorf("counter table not sorted: %q before %q", prev, cur)
		}
	}
}

// TestComparisonMatchesPaper reproduces Section IV-C's table:
//
//	UChecker  15/16 detected, 2/28 FP
//	RIPS      15/16 detected, 27/28 FP
//	WAP        4/16 detected, 1/28 FP
func TestComparisonMatchesPaper(t *testing.T) {
	results := Comparison(testOptions(t))
	want := map[string][2]int{
		"UChecker":  {15, 2},
		"RIPS-like": {15, 27},
		"WAP-like":  {4, 1},
	}
	for _, r := range results {
		w, ok := want[r.Tool]
		if !ok {
			t.Errorf("unexpected tool %s", r.Tool)
			continue
		}
		if r.TP != w[0] || r.FP != w[1] {
			t.Errorf("%s: %d/16 detected %d/28 FP, paper %d/16 %d/28",
				r.Tool, r.TP, r.FP, w[0], w[1])
		}
	}
}

// TestComparisonKeyDisagreements spot-checks the mechanism behind each
// tool's distinctive errors.
func TestComparisonKeyDisagreements(t *testing.T) {
	results := Comparison(testOptions(t))
	byTool := map[string]ToolResult{}
	for _, r := range results {
		byTool[r.Tool] = r
	}
	// RIPS misses the method-mediated WooCommerce CPP; UChecker finds it.
	cpp := "WooCommerce Custom Profile Picture 1.0"
	if byTool["RIPS-like"].PerApp[cpp] {
		t.Error("RIPS-like should miss WooCommerce CPP")
	}
	if !byTool["UChecker"].PerApp[cpp] {
		t.Error("UChecker should detect WooCommerce CPP")
	}
	// WAP's single FP is the helper-validated plugin.
	if !byTool["WAP-like"].PerApp["gallery-lite-pro"] {
		t.Error("WAP-like should flag gallery-lite-pro")
	}
	if byTool["UChecker"].PerApp["gallery-lite-pro"] {
		t.Error("UChecker should not flag gallery-lite-pro")
	}
	// The platform-API plugin is the one benign app even RIPS skips.
	if byTool["RIPS-like"].PerApp["secure-media-api"] {
		t.Error("RIPS-like should not flag secure-media-api")
	}
}

func TestRenderComparison(t *testing.T) {
	out := RenderComparison([]ToolResult{
		{Tool: "UChecker", TP: 15, FP: 2},
		{Tool: "RIPS-like", TP: 15, FP: 27},
	})
	if !strings.Contains(out, "15/16") || !strings.Contains(out, "27/28") {
		t.Errorf("render output:\n%s", out)
	}
}

// TestAdminGatingRemovesFPs runs the Section VI extension: with admin
// gating modeled, the two FPs disappear and nothing else changes.
func TestAdminGatingRemovesFPs(t *testing.T) {
	opts := testOptions(t)
	opts.ModelAdminGating = true
	rows := TableIII(opts)
	for _, r := range rows {
		if r.App.AdminGated {
			if r.Detected() {
				t.Errorf("%s: still flagged with admin gating on", r.App.Name)
			}
			continue
		}
		if r.App.Paper.Detected != r.Detected() {
			t.Errorf("%s: verdict changed by admin gating", r.App.Name)
		}
	}
}

// A screening sweep at small scale: every planted vulnerability is found
// and benign generated plugins stay clean.
func TestScreeningSweep(t *testing.T) {
	res := Screening(testOptions(t), 42, 60, 10)
	if res.Scanned != 60 || res.Planted != 6 {
		t.Fatalf("scanned=%d planted=%d", res.Scanned, res.Planted)
	}
	if res.Found != res.Planted {
		t.Errorf("found %d/%d planted vulnerabilities; flagged: %v",
			res.Found, res.Planted, res.Flagged)
	}
	if res.ExtraFlags != 0 {
		t.Errorf("extra flags = %d on benign generated plugins: %v", res.ExtraFlags, res.Flagged)
	}
	out := RenderScreening(res)
	if !strings.Contains(out, "plugins scanned: 60") {
		t.Errorf("render:\n%s", out)
	}
}

// Screening generation is deterministic per seed.
func TestScreeningDeterministic(t *testing.T) {
	a := Screening(testOptions(t), 7, 20, 5)
	b := Screening(testOptions(t), 7, 20, 5)
	if a.Found != b.Found || a.TotalLoC != b.TotalLoC || len(a.Flagged) != len(b.Flagged) {
		t.Errorf("non-deterministic screening: %+v vs %+v", a, b)
	}
}

// FailureTally aggregates countable failures across a sweep; the Table III
// sweep's only failure is Cimy's path-budget abort (plus its ladder).
func TestFailureTally(t *testing.T) {
	reps := []*uchecker.AppReport{
		nil,
		{Name: "clean"},
		{Name: "a", FailureCounts: map[uchecker.FailureClass]int{uchecker.FailPathBudget: 2}},
		{Name: "b", FailureCounts: map[uchecker.FailureClass]int{
			uchecker.FailPathBudget: 1,
			uchecker.FailPanic:      1,
		}},
	}
	tally := FailureTally(reps)
	if tally[uchecker.FailPathBudget] != 3 || tally[uchecker.FailPanic] != 1 || len(tally) != 2 {
		t.Errorf("tally = %v", tally)
	}
	out := RenderFailureTally(tally)
	for _, want := range []string{"path-budget     3", "panic           1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if FailureTally(nil) != nil {
		t.Error("empty sweep should tally nil")
	}
	if !strings.Contains(RenderFailureTally(nil), "no failures") {
		t.Errorf("empty render:\n%s", RenderFailureTally(nil))
	}
}

// TestTableIIIFailureTally asserts the real sweep surfaces Cimy's
// path-budget failure through the tally.
func TestTableIIIFailureTally(t *testing.T) {
	rows := cachedTableIII(t)
	reps := make([]*uchecker.AppReport, len(rows))
	for i, r := range rows {
		reps[i] = r.Report
	}
	tally := FailureTally(reps)
	if tally[uchecker.FailPathBudget] == 0 {
		t.Errorf("tally = %v, want a path-budget entry (Cimy abort)", tally)
	}
}

// TestTableIIIApps pins the sweep's row order: 13 known-vulnerable apps,
// the 2 admin-gated false positives, then the 3 newly found ones — the
// order TableIII and TableIIIBatch both scan, which is what makes a
// journaled sweep resumable across bench invocations.
func TestTableIIIApps(t *testing.T) {
	apps := TableIIIApps()
	if len(apps) != 18 {
		t.Fatalf("apps = %d, want 18", len(apps))
	}
	seen := map[string]bool{}
	for _, app := range apps {
		if seen[app.Name] {
			t.Errorf("duplicate app %q", app.Name)
		}
		seen[app.Name] = true
	}
	if !apps[13].AdminGated || !apps[14].AdminGated {
		t.Errorf("rows 14-15 must be the admin-gated false positives: %q, %q",
			apps[13].Name, apps[14].Name)
	}
	// TableIII rows align 1:1 with the app list.
	rows := cachedTableIII(t)
	if len(rows) != len(apps) {
		t.Fatalf("TableIII rows = %d, apps = %d", len(rows), len(apps))
	}
	for i, r := range rows {
		if r.App.Name != apps[i].Name {
			t.Errorf("row %d = %q, want %q", i, r.App.Name, apps[i].Name)
		}
		if r.Report.Name != apps[i].Name {
			t.Errorf("report %d = %q, want %q", i, r.Report.Name, apps[i].Name)
		}
	}
}
