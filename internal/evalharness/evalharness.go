// Package evalharness regenerates the UChecker paper's evaluation
// artifacts over the synthetic corpus:
//
//   - Table III: per-application detection results and measurements (LoC,
//     % of LoC analyzed, paths, objects, objects/path, memory, time,
//     detected-as-vulnerable);
//   - the Section IV-C comparison of UChecker against the RIPS-like and
//     WAP-like baselines (detection rate over the 16 vulnerable apps,
//     false-positive rate over the 28 benign apps).
//
// The same code backs cmd/ucheck-bench and the repository's bench suite.
package evalharness

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/corpus"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/uchecker"
)

// Row is one Table III line: the corpus app, its measured report, and the
// paper's numbers for side-by-side comparison.
type Row struct {
	App    corpus.App
	Report *uchecker.AppReport
}

// Detected is the tool verdict for the row.
func (r Row) Detected() bool { return r.Report.Vulnerable }

// RunApp scans one corpus application with the paper's configuration.
func RunApp(app corpus.App, opts uchecker.Options) Row {
	scanner := uchecker.NewScanner(opts)
	rep, _ := scanner.Scan(context.Background(), corpusTarget(app))
	return Row{App: app, Report: rep}
}

func corpusTarget(app corpus.App) uchecker.Target {
	return uchecker.Target{Name: app.Name, Sources: app.Sources}
}

// PhaseTimes aggregates the scanner's trace spans across one or more
// scans into a per-app, per-phase timing table, keyed by (app,
// span-name). Safe for concurrent use — install SpanHook() as
// uchecker.Options.OnSpan before a scan or ScanBatch sweep and Render()
// afterwards.
type PhaseTimes struct {
	mu    sync.Mutex
	total map[string]map[string]time.Duration
	order []string // apps in first-seen order
}

// NewPhaseTimes returns an empty aggregator.
func NewPhaseTimes() *PhaseTimes {
	return &PhaseTimes{total: map[string]map[string]time.Duration{}}
}

// SpanHook returns a callback suitable for uchecker.Options.OnSpan. Every
// scanner span carries an "app" attribute, so per-root spans attribute
// correctly even in a concurrent batch. Durations accumulate per (app,
// span name); the taint-only "fallback" rung counts toward verify.
func (p *PhaseTimes) SpanHook() func(obs.Span) {
	return func(sp obs.Span) {
		name := sp.Name
		if name == "fallback" {
			name = "verify"
		}
		p.mu.Lock()
		defer p.mu.Unlock()
		app := sp.Attr("app")
		m, ok := p.total[app]
		if !ok {
			m = map[string]time.Duration{}
			p.total[app] = m
			p.order = append(p.order, app)
		}
		m[name] += sp.Dur()
	}
}

// phaseColumns is the rendering order for the per-phase breakdown: the
// scanner's span names, pipeline order. "root" is phases 3–6 summed over
// roots; "interp" and "verify" split it into symbolic execution and
// modeling+translation+solving; "scan" is the whole-scan wall clock.
var phaseColumns = []string{"parse", "locality", "root", "interp", "verify", "scan"}

// Render formats the per-app, per-phase breakdown as a table (seconds).
// A TOTAL row sums each column. root/interp/verify are summed per-root
// time, so with Workers>1 they can exceed the scan wall-clock column —
// that surplus is the speedup.
func (p *PhaseTimes) Render() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var sb strings.Builder
	sb.WriteString("Per-phase timing breakdown (seconds)\n")
	fmt.Fprintf(&sb, "%-55s", "App")
	for _, ph := range phaseColumns {
		fmt.Fprintf(&sb, " %9s", ph)
	}
	sb.WriteString("\n")
	sum := map[string]time.Duration{}
	apps := append([]string(nil), p.order...)
	sort.Strings(apps)
	for _, app := range apps {
		fmt.Fprintf(&sb, "%-55s", truncate(app, 55))
		for _, ph := range phaseColumns {
			d := p.total[app][ph]
			sum[ph] += d
			fmt.Fprintf(&sb, " %9.3f", d.Seconds())
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "%-55s", "TOTAL")
	for _, ph := range phaseColumns {
		fmt.Fprintf(&sb, " %9.3f", sum[ph].Seconds())
	}
	sb.WriteString("\n")
	return sb.String()
}

// TableIIIApps lists the Table III applications in the paper's order:
// the 13 known-vulnerable, the 2 admin-gated false-positive plugins, and
// the 3 newly found ones — 18 rows.
func TableIIIApps() []corpus.App {
	apps := append([]corpus.App(nil), corpus.KnownVulnerableApps()...)
	apps = append(apps,
		mustApp("Event Registration Pro Calendar 1.0.2"),
		mustApp("Tumult Hype Animations 1.7.1"))
	apps = append(apps, corpus.NewVulnApps()...)
	return apps
}

// TableIII runs the detector over the Table III applications one at a
// time (solo scans carry the MemoryMB measurement the table prints).
func TableIII(opts uchecker.Options) []Row {
	var rows []Row
	for _, app := range TableIIIApps() {
		rows = append(rows, RunApp(app, opts))
	}
	return rows
}

// TableIIIBatch runs the Table III sweep through the crash-safe batch
// path: with Options.Journal/ResumeFrom set, a killed sweep resumes
// where it stopped (completed apps replay from the journal), and with
// Options.CacheDir set, unchanged apps replay from the result cache.
// Verdicts and work counters are identical to TableIII's; only the
// MemoryMB column is unmeasured (0) on the batch path, because replayed
// reports must be byte-identical across runs and a live RSS sample is
// not. The returned error reports a journal/cache I/O abort — partial
// rows are still valid.
func TableIIIBatch(opts uchecker.Options) ([]Row, *uchecker.BatchStats, error) {
	apps := TableIIIApps()
	targets := make([]uchecker.Target, len(apps))
	for i, app := range apps {
		targets[i] = corpusTarget(app)
	}
	reps, stats, err := uchecker.NewScanner(opts).ScanBatchJournaled(context.Background(), targets)
	rows := make([]Row, len(apps))
	for i, app := range apps {
		rows[i] = Row{App: app, Report: reps[i]}
	}
	return rows, stats, err
}

// TableIIIWorker joins a coordination directory as one worker of a
// distributed Table III sweep (Scanner.RunWorker over the same app
// list on every worker). When this worker is the one that folds the
// merged report, the decoded rows are returned for rendering; a
// drained or non-folding worker returns nil rows. Merged reports are
// canonical — the Time(s)/Mem(MB) columns read zero, as in batch mode.
func TableIIIWorker(ctx context.Context, opts uchecker.Options, wo uchecker.WorkerOptions) (*uchecker.WorkerStats, []Row, error) {
	apps := TableIIIApps()
	targets := make([]uchecker.Target, len(apps))
	for i, app := range apps {
		targets[i] = corpusTarget(app)
	}
	ws, err := uchecker.NewScanner(opts).RunWorker(ctx, targets, wo)
	if err != nil || ws == nil || ws.MergedPath == "" {
		return ws, nil, err
	}
	reps, err := uchecker.ReadMerged(ws.MergedPath)
	if err != nil {
		return ws, nil, err
	}
	if len(reps) != len(apps) {
		return ws, nil, fmt.Errorf("evalharness: merged report has %d targets, want %d", len(reps), len(apps))
	}
	rows := make([]Row, len(apps))
	for i, app := range apps {
		rows[i] = Row{App: app, Report: reps[i]}
	}
	return ws, rows, nil
}

func mustApp(name string) corpus.App {
	app, ok := corpus.ByName(name)
	if !ok {
		panic("corpus: missing app " + name)
	}
	return app
}

// RenderTableIII formats rows like the paper's Table III, with measured
// values.
func RenderTableIII(rows []Row) string {
	var sb strings.Builder
	sb.WriteString("TABLE III: Detection Results (measured)\n")
	fmt.Fprintf(&sb, "%-55s %8s %9s %8s %8s %9s %8s %8s %8s %5s\n",
		"System", "LoC", "%Analyzed", "Paths", "Forked", "Objects", "Obj/Path", "Mem(MB)", "Time(s)", "Vuln")
	group := ""
	for _, r := range rows {
		g := string(r.App.Category)
		if r.App.AdminGated {
			g = "false-positive"
		}
		if g != group {
			group = g
			fmt.Fprintf(&sb, "-- %s --\n", group)
		}
		rep := r.Report
		verdict := "No"
		if rep.Vulnerable {
			verdict = "Yes"
		}
		if rep.BudgetExceeded {
			verdict = "No*" // aborted, the paper's blank-cells row
		}
		fmt.Fprintf(&sb, "%-55s %8d %8.2f%% %8d %8d %9d %8.1f %8.1f %8.2f %5s\n",
			truncate(r.App.Name, 55), rep.TotalLoC, rep.PercentAnalyzed, rep.Paths,
			rep.Metrics["interp_paths_forked"],
			rep.Objects, rep.ObjectsPerPath, rep.MemoryMB, rep.Seconds, verdict)
	}
	sb.WriteString("(* symbolic execution exceeded its budget; detection failed as in the paper)\n")
	return sb.String()
}

// CimyBeforeAfter runs the paper's path-explosion case study — Cimy
// User Extra Fields, the Table III budget-exhaustion false negative —
// under the inline (before) and summary (after) interprocedural
// strategies with otherwise identical options, so the win is visible as
// two adjacent rows.
func CimyBeforeAfter(opts uchecker.Options) (before, after Row) {
	app := mustApp("Cimy User Extra Fields 2.3.8")
	inlineOpts := opts
	inlineOpts.Interproc = interp.InterprocInline
	summaryOpts := opts
	summaryOpts.Interproc = interp.InterprocSummary
	return RunApp(app, inlineOpts), RunApp(app, summaryOpts)
}

// RenderCimyBeforeAfter formats the CimyBeforeAfter pair: paths forked,
// paths merged away, retries and verdict under each strategy.
func RenderCimyBeforeAfter(before, after Row) string {
	var sb strings.Builder
	sb.WriteString("Cimy User Extra Fields 2.3.8: inline vs summary interprocedural strategy\n")
	fmt.Fprintf(&sb, "%-20s %8s %8s %8s %8s %8s %5s\n",
		"Strategy", "Paths", "Forked", "Avoided", "Retries", "Budget", "Vuln")
	row := func(name string, r Row) {
		rep := r.Report
		verdict := "No"
		if rep.Vulnerable {
			verdict = "Yes"
		}
		budget := "ok"
		if rep.BudgetExceeded {
			budget = "blown"
		}
		fmt.Fprintf(&sb, "%-20s %8d %8d %8d %8d %8s %5s\n",
			name, rep.Paths, rep.Metrics["interp_paths_forked"],
			rep.Metrics["interp_paths_avoided"], rep.Retries, budget, verdict)
	}
	row("inline (before)", before)
	row("summary (after)", after)
	return sb.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// ToolResult is one scanner's confusion counts over the corpus.
type ToolResult struct {
	Tool string
	// TP out of the 16 vulnerable apps (13 known + 3 new).
	TP int
	// FP out of the 28 benign apps.
	FP int
	// PerApp records each app's verdict.
	PerApp map[string]bool
}

// Comparison runs UChecker, RIPS-like and WAP-like over the full corpus
// (16 vulnerable + 28 benign) and returns per-tool results, reproducing
// Section IV-C. Ground truth for the two admin-gated apps is benign, so a
// flag on them counts as a false positive — exactly how the paper scores
// its own tool's 2 FPs.
func Comparison(opts uchecker.Options) []ToolResult {
	apps := corpus.All()
	tools := []ToolResult{
		{Tool: "UChecker", PerApp: map[string]bool{}},
		{Tool: "RIPS-like", PerApp: map[string]bool{}},
		{Tool: "WAP-like", PerApp: map[string]bool{}},
	}
	targets := make([]uchecker.Target, len(apps))
	for i, app := range apps {
		targets[i] = corpusTarget(app)
	}
	uReps := uchecker.NewScanner(opts).ScanBatch(context.Background(), targets)
	for i, app := range apps {
		verdicts := []bool{
			uReps[i].Vulnerable,
			baseline.RIPSLike(app.Name, app.Sources).Flagged,
			baseline.WAPLike(app.Name, app.Sources).Flagged,
		}
		for i := range tools {
			tools[i].PerApp[app.Name] = verdicts[i]
			if verdicts[i] {
				if app.Vulnerable {
					tools[i].TP++
				} else {
					tools[i].FP++
				}
			}
		}
	}
	return tools
}

// timeNow/timeSince wrap time for the screening stopwatch.
func timeNow() time.Time            { return time.Now() }
func timeSince(t time.Time) float64 { return time.Since(t).Seconds() }

// ScreeningResult summarizes a Section IV-B-style screening sweep over a
// generated plugin population.
type ScreeningResult struct {
	// Scanned is the number of plugins screened.
	Scanned int
	// Planted is the number of seeded vulnerable plugins.
	Planted int
	// Found is how many seeded plugins the detector flagged.
	Found int
	// ExtraFlags counts flags on unplanted plugins (screening FPs).
	ExtraFlags int
	// TotalLoC is the code volume screened.
	TotalLoC int
	// Seconds is the wall-clock cost of the sweep.
	Seconds float64
	// Flagged lists the flagged plugin names in scan order.
	Flagged []string
}

// Screening reproduces the Section IV-B workflow at the given scale: scan
// n generated plugins (with a seeded vulnerable plugin every plantEvery
// positions) and report recall over the seeded vulnerabilities plus the
// sweep's throughput. The paper's crawl screened 9,160 plugins and
// surfaced 3 true findings; the generator reproduces the workflow's shape
// at any n.
func Screening(opts uchecker.Options, seed int64, n, plantEvery int) ScreeningResult {
	apps := corpus.RandomPlugins(seed, n, plantEvery)
	var res ScreeningResult
	res.Scanned = len(apps)
	start := timeNow()
	targets := make([]uchecker.Target, len(apps))
	for i, app := range apps {
		if app.Planted {
			res.Planted++
		}
		targets[i] = uchecker.Target{Name: app.Name, Sources: app.Sources}
	}
	reps := uchecker.NewScanner(opts).ScanBatch(context.Background(), targets)
	for i, app := range apps {
		rep := reps[i]
		res.TotalLoC += rep.TotalLoC
		if rep.Vulnerable {
			res.Flagged = append(res.Flagged, app.Name)
			if app.Planted {
				res.Found++
			} else {
				res.ExtraFlags++
			}
		}
	}
	res.Seconds = timeSince(start)
	return res
}

// RenderScreening formats a screening sweep summary.
func RenderScreening(r ScreeningResult) string {
	var sb strings.Builder
	sb.WriteString("Section IV-B screening sweep (measured)\n")
	fmt.Fprintf(&sb, "plugins scanned: %d (%d LoC total)\n", r.Scanned, r.TotalLoC)
	fmt.Fprintf(&sb, "seeded vulnerabilities found: %d/%d, extra flags: %d\n",
		r.Found, r.Planted, r.ExtraFlags)
	if r.Seconds > 0 {
		fmt.Fprintf(&sb, "throughput: %.1f plugins/s (%.2f s total)\n",
			float64(r.Scanned)/r.Seconds, r.Seconds)
	}
	return sb.String()
}

// FailureTally aggregates countable failures per class across a batch of
// reports — the operator's view of what went wrong in a corpus sweep.
// Cancelled entries are excluded (they already are from each report's
// FailureCounts). Nil when the sweep was failure-free.
func FailureTally(reps []*uchecker.AppReport) map[uchecker.FailureClass]int {
	var tally map[uchecker.FailureClass]int
	for _, rep := range reps {
		if rep == nil {
			continue
		}
		for class, n := range rep.FailureCounts {
			if tally == nil {
				tally = map[uchecker.FailureClass]int{}
			}
			tally[class] += n
		}
	}
	return tally
}

// RenderFailureTally formats a per-class failure tally, classes sorted by
// name. An empty tally renders as a single clean-sweep line.
func RenderFailureTally(tally map[uchecker.FailureClass]int) string {
	var sb strings.Builder
	sb.WriteString("Failure tally (countable failures per class)\n")
	if len(tally) == 0 {
		sb.WriteString("no failures\n")
		return sb.String()
	}
	classes := make([]string, 0, len(tally))
	for c := range tally {
		classes = append(classes, string(c))
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Fprintf(&sb, "%-15s %d\n", c, tally[uchecker.FailureClass(c)])
	}
	return sb.String()
}

// CounterTally merges every report's deterministic work counters into
// one corpus-wide metric set: "_peak" gauges by max, everything else
// additive — the same commutative merge the scanner uses per root, so
// the tally is independent of app order and worker count.
func CounterTally(reps []*uchecker.AppReport) obs.Metrics {
	total := obs.NewMetrics()
	for _, rep := range reps {
		if rep != nil {
			total.Merge(rep.Metrics)
		}
	}
	return total
}

// RenderCounterTable formats the corpus-wide work-counter table, metric
// names sorted. Peak gauges are marked to distinguish high-water marks
// from monotone counts.
func RenderCounterTable(m obs.Metrics) string {
	var sb strings.Builder
	sb.WriteString("Work counters (deterministic; merged across all apps)\n")
	if len(m) == 0 {
		sb.WriteString("no counters recorded\n")
		return sb.String()
	}
	for _, k := range m.Keys() {
		kind := "counter"
		if strings.HasSuffix(k, obs.PeakSuffix) {
			kind = "gauge"
		}
		fmt.Fprintf(&sb, "%-28s %12d  %s\n", k, m[k], kind)
	}
	return sb.String()
}

// RenderComparison formats the Section IV-C table.
func RenderComparison(results []ToolResult) string {
	var sb strings.Builder
	sb.WriteString("Section IV-C: Comparison with other detection solutions (measured)\n")
	fmt.Fprintf(&sb, "%-12s %18s %22s\n", "Tool", "Detected (of 16)", "False positives (of 28)")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-12s %15d/16 %19d/28\n", r.Tool, r.TP, r.FP)
	}
	return sb.String()
}
