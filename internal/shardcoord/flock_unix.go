//go:build unix

package shardcoord

import (
	"os"
	"syscall"
)

// lockFile takes an exclusive advisory flock on path, creating it if
// needed, and returns the unlock function. flock is the right primitive
// for crash-safe coordination on a shared filesystem: the kernel
// releases the lock the instant the holding process dies (kill -9
// included), so a crashed worker can never wedge the fleet, and each
// call opens its own file description, so goroutines simulating worker
// processes in-process exclude each other exactly like real processes
// do.
func lockFile(path string) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		// Closing the descriptor releases the flock; the explicit unlock
		// just makes the intent visible.
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
