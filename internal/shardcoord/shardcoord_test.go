package shardcoord

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/scanjournal"
)

func targetNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("app-%02d", i)
	}
	return names
}

func newCoord(t *testing.T, targets, shardSize int, hook faultinject.Hook) *Coord {
	t.Helper()
	c, err := Init(filepath.Join(t.TempDir(), "coord"), "fp", targetNames(targets), shardSize, hook)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPlanRanges(t *testing.T) {
	p := &Plan{Targets: targetNames(7), ShardSize: 3}
	if p.Shards() != 3 {
		t.Fatalf("shards = %d, want 3", p.Shards())
	}
	want := [][2]int{{0, 3}, {3, 6}, {6, 7}}
	for s, w := range want {
		lo, hi := p.Range(s)
		if lo != w[0] || hi != w[1] {
			t.Errorf("shard %d range = [%d,%d), want [%d,%d)", s, lo, hi, w[0], w[1])
		}
	}
}

func TestInitIdempotentAndEpochs(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "coord")
	names := targetNames(4)
	c1, err := Init(dir, "fpA", names, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A lease survives a second worker joining the same epoch.
	lease, err := c1.ClaimFree("w0")
	if err != nil || lease == nil {
		t.Fatalf("claim: %v %v", lease, err)
	}
	c2, err := Init(dir, "fpA", names, 2, nil)
	if err != nil {
		t.Fatalf("joining the same epoch: %v", err)
	}
	v, err := c2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if v.Shards[lease.Shard].State != Held {
		t.Errorf("join reset lease state: %+v", v.Shards[lease.Shard])
	}

	// Same fingerprint, different plan: refused.
	if _, err := Init(dir, "fpA", targetNames(5), 2, nil); err == nil {
		t.Error("conflicting plan under one fingerprint accepted")
	}

	// New fingerprint: new epoch, all lease state discarded.
	c3, err := Init(dir, "fpB", names, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := c3.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for s, st := range v3.Shards {
		if st.State != Free || st.Token != 0 {
			t.Errorf("epoch change kept shard %d state %+v", s, st)
		}
	}
	// The old epoch's Coord is fenced out entirely.
	if err := lease.Renew(); !errors.Is(err, ErrFenced) {
		t.Errorf("stale-epoch renew = %v, want ErrFenced", err)
	}
}

func TestLeaseLifecycle(t *testing.T) {
	c := newCoord(t, 5, 2, nil) // 3 shards
	var leases []*Lease
	for i := 0; ; i++ {
		l, err := c.ClaimFree(fmt.Sprintf("w%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if l == nil {
			break
		}
		if l.Shard != i || l.Token != 1 {
			t.Fatalf("claim %d = shard %d token %d", i, l.Shard, l.Token)
		}
		leases = append(leases, l)
	}
	if len(leases) != 3 {
		t.Fatalf("claimed %d shards, want 3", len(leases))
	}

	// Heartbeats bump the generation monotonically.
	for g := int64(1); g <= 3; g++ {
		if err := leases[0].Renew(); err != nil {
			t.Fatal(err)
		}
		if leases[0].Gen != g {
			t.Fatalf("gen = %d, want %d", leases[0].Gen, g)
		}
	}

	// Release frees the shard; the next claim advances the token.
	if err := leases[1].Release(); err != nil {
		t.Fatal(err)
	}
	l, err := c.ClaimFree("w9")
	if err != nil || l == nil {
		t.Fatalf("re-claim released shard: %v %v", l, err)
	}
	if l.Shard != 1 || l.Token != 2 {
		t.Fatalf("re-claim = shard %d token %d, want shard 1 token 2", l.Shard, l.Token)
	}

	// Finish is terminal.
	for _, lease := range []*Lease{leases[0], l, leases[2]} {
		if err := lease.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	v, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Done() {
		t.Fatalf("not done after finishing all shards: %+v", v.Shards)
	}
	if err := leases[0].Renew(); !errors.Is(err, ErrFenced) {
		t.Errorf("renew of finished shard = %v, want ErrFenced", err)
	}
}

// TestZombieFencing is the acceptance regression: a paused-then-resumed
// zombie worker's stale writes are rejected by token check after its
// lease was reclaimed.
func TestZombieFencing(t *testing.T) {
	c := newCoord(t, 4, 2, nil)
	zombie, err := c.ClaimFree("zombie")
	if err != nil || zombie == nil {
		t.Fatal(err)
	}
	// The fleet observes (token, gen) twice with no heartbeat in between
	// — the zombie is paused — and reclaims.
	v1, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	st := v1.Shards[zombie.Shard]
	reclaimed, err := c.Reclaim("w1", zombie.Shard, st.Token, st.Gen)
	if err != nil || reclaimed == nil {
		t.Fatalf("reclaim: %v %v", reclaimed, err)
	}
	if reclaimed.Token != zombie.Token+1 {
		t.Fatalf("reclaim token = %d, want %d", reclaimed.Token, zombie.Token+1)
	}

	// The zombie resumes: every write path is fenced.
	if err := zombie.Renew(); !errors.Is(err, ErrFenced) {
		t.Errorf("zombie renew = %v, want ErrFenced", err)
	}
	if err := zombie.Finish(); !errors.Is(err, ErrFenced) {
		t.Errorf("zombie publish = %v, want ErrFenced", err)
	}
	if err := zombie.Release(); !errors.Is(err, ErrFenced) {
		t.Errorf("zombie release = %v, want ErrFenced", err)
	}
	// And none of those rejected writes left a record: the journal still
	// folds clean with the reclaimer holding.
	v2, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if v2.Corrupt != nil {
		t.Fatalf("fenced writes corrupted the journal: %v", v2.Corrupt)
	}
	got := v2.Shards[zombie.Shard]
	if got.State != Held || got.Token != reclaimed.Token || got.Worker != "w1" {
		t.Errorf("shard state after fencing: %+v", got)
	}
	// The reclaimer is unaffected.
	if err := reclaimed.Renew(); err != nil {
		t.Errorf("reclaimer renew: %v", err)
	}
}

// TestReclaimRefuted: a heartbeat between the two observations refutes
// the presumed death — Reclaim writes nothing and returns no lease.
func TestReclaimRefuted(t *testing.T) {
	c := newCoord(t, 2, 1, nil)
	l, err := c.ClaimFree("w0")
	if err != nil || l == nil {
		t.Fatal(err)
	}
	v, _ := c.Snapshot()
	st := v.Shards[l.Shard]
	if err := l.Renew(); err != nil { // the holder was alive all along
		t.Fatal(err)
	}
	got, err := c.Reclaim("w1", l.Shard, st.Token, st.Gen)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("reclaim of a live lease succeeded: %+v", got)
	}
	if err := l.Renew(); err != nil {
		t.Errorf("live holder fenced by refuted reclaim: %v", err)
	}
}

// TestConcurrentClaims: goroutine-workers racing on ClaimFree each get a
// distinct shard (the flock serializes read-fold-validate-append).
func TestConcurrentClaims(t *testing.T) {
	const shards = 8
	c := newCoord(t, shards, 1, nil)
	var wg sync.WaitGroup
	got := make([]*Lease, shards+4)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each goroutine joins through its own Coord, like a process.
			ci, err := Open(c.Dir(), nil)
			if err != nil {
				t.Error(err)
				return
			}
			l, err := ci.ClaimFree(fmt.Sprintf("w%d", i))
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = l
		}(i)
	}
	wg.Wait()
	seen := map[int]bool{}
	claimed := 0
	for _, l := range got {
		if l == nil {
			continue
		}
		claimed++
		if seen[l.Shard] {
			t.Fatalf("shard %d claimed twice", l.Shard)
		}
		seen[l.Shard] = true
	}
	if claimed != shards {
		t.Errorf("claimed %d shards, want %d", claimed, shards)
	}
}

// TestFoldLeasesProtocolMatrix: every protocol violation folds as
// corruption salvaging the valid prefix — never a panic — and the next
// transaction heals the journal by compaction.
func TestFoldLeasesProtocolMatrix(t *testing.T) {
	manifest := scanjournal.Record{
		Type: scanjournal.TypeManifest, Fingerprint: "fp", Targets: targetNames(4), ShardSize: 2,
	}
	claim := scanjournal.Record{Type: scanjournal.TypeLeaseClaim, Shard: 0, Token: 1, Worker: "w0"}
	cases := []struct {
		name         string
		records      []scanjournal.Record
		wantSalvaged int
		wantReason   string
	}{
		{"token-skip", []scanjournal.Record{manifest, {Type: scanjournal.TypeLeaseClaim, Shard: 0, Token: 2, Worker: "w0"}}, 1, "want 1"},
		{"double-claim", []scanjournal.Record{manifest, claim, {Type: scanjournal.TypeLeaseClaim, Shard: 0, Token: 1, Worker: "w1"}}, 2, "want 2"},
		{"stale-renew", []scanjournal.Record{manifest, claim, {Type: scanjournal.TypeLeaseRenew, Shard: 0, Token: 2, Gen: 1}}, 2, "renew"},
		{"gen-skip", []scanjournal.Record{manifest, claim, {Type: scanjournal.TypeLeaseRenew, Shard: 0, Token: 1, Gen: 5}}, 2, "generation 5"},
		{"release-unheld", []scanjournal.Record{manifest, {Type: scanjournal.TypeLeaseRelease, Shard: 1, Token: 1}}, 1, "release"},
		{"finish-unheld", []scanjournal.Record{manifest, {Type: scanjournal.TypeShardFinish, Shard: 0, Token: 1}}, 1, "finish"},
		{"claim-after-finish", []scanjournal.Record{manifest, claim, {Type: scanjournal.TypeShardFinish, Shard: 0, Token: 1, Worker: "w0"}, {Type: scanjournal.TypeLeaseClaim, Shard: 0, Token: 2, Worker: "w1"}}, 3, "finished"},
		{"out-of-range-shard", []scanjournal.Record{manifest, {Type: scanjournal.TypeLeaseClaim, Shard: 7, Token: 1}}, 1, "out-of-range"},
		{"scan-record", []scanjournal.Record{manifest, {Type: scanjournal.TypeStart, Name: "x"}}, 1, "scan record"},
		{"no-manifest", []scanjournal.Record{claim}, 0, "does not begin"},
		{"planless-manifest", []scanjournal.Record{{Type: scanjournal.TypeManifest, Fingerprint: "fp"}}, 0, "shard plan"},
		{"plan-conflict", []scanjournal.Record{manifest, {Type: scanjournal.TypeManifest, Fingerprint: "fp", Targets: targetNames(4), ShardSize: 3}}, 1, "different plan"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i := range tc.records {
				if tc.records[i].V == 0 {
					tc.records[i].V = scanjournal.FormatVersion
				}
			}
			v := FoldLeases(&scanjournal.Recovery{Records: tc.records})
			if v.Corrupt == nil {
				t.Fatal("violation not surfaced")
			}
			if v.Salvaged != tc.wantSalvaged {
				t.Errorf("salvaged = %d, want %d (%v)", v.Salvaged, tc.wantSalvaged, v.Corrupt)
			}
			if !strings.Contains(v.Corrupt.Reason, tc.wantReason) {
				t.Errorf("reason %q does not mention %q", v.Corrupt.Reason, tc.wantReason)
			}

			// Healing: write the corrupt journal into a real directory and
			// prove the next transaction compacts and proceeds.
			dir := filepath.Join(t.TempDir(), "coord")
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := scanjournal.Compact(filepath.Join(dir, JournalFile), tc.records); err != nil {
				t.Fatal(err)
			}
			plan, _ := json.Marshal(Plan{Fingerprint: "fp", Targets: targetNames(4), ShardSize: 2})
			if err := os.WriteFile(filepath.Join(dir, PlanFile), plan, 0o644); err != nil {
				t.Fatal(err)
			}
			c, err := Open(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantSalvaged == 0 {
				// Nothing salvageable: the healed journal has no manifest, so
				// lease transactions are rejected until a re-Init — but they
				// must reject cleanly, not panic.
				if _, err := c.ClaimFree("w"); err == nil {
					t.Error("claim on an epoch-less journal succeeded")
				}
				return
			}
			if _, err := c.Snapshot(); err != nil {
				t.Fatalf("post-heal snapshot: %v", err)
			}
			rec, err := scanjournal.Read(filepath.Join(dir, JournalFile))
			if err != nil {
				t.Fatal(err)
			}
			if v2 := FoldLeases(rec); v2.Corrupt != nil {
				t.Errorf("journal still corrupt after healing: %v", v2.Corrupt)
			}
		})
	}
}

// TestLeaseTransientRetry: one transient coord-journal write fault is
// absorbed by the bounded retry — the claim still lands.
func TestLeaseTransientRetry(t *testing.T) {
	hook := faultinject.ErrorN(faultinject.JournalWrite, "lease-claim", 1)
	c := newCoord(t, 2, 1, hook)
	l, err := c.ClaimFree("w0")
	if err != nil || l == nil {
		t.Fatalf("transient fault killed the claim: %v %v", l, err)
	}
	v, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if v.Corrupt != nil {
		t.Fatalf("retry corrupted the journal: %v", v.Corrupt)
	}
	if v.Shards[l.Shard].State != Held {
		t.Errorf("claim not recorded: %+v", v.Shards[l.Shard])
	}
}

// TestLeaseSeamCrash: a persistent fault at the LeaseClaim seam kills
// the claim without recording anything.
func TestLeaseSeamCrash(t *testing.T) {
	c := newCoord(t, 2, 1, faultinject.ErrorOn(faultinject.LeaseClaim, ""))
	if _, err := c.ClaimFree("w0"); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("claim = %v, want injected crash", err)
	}
	// Re-open without the hook: the journal must show no lease.
	c2, err := Open(c.Dir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for s, st := range v.Shards {
		if st.State != Free {
			t.Errorf("crashed claim left shard %d %s", s, st.State)
		}
	}
}

// writeShardJournal writes a complete scan journal for one shard, as
// ScanBatchJournaled would: manifest + start/finish per shard-local
// target, reports keyed by local index.
func writeShardJournal(t *testing.T, c *Coord, shard int, token int64) {
	t.Helper()
	lo, hi := c.Plan().Range(shard)
	names := c.Plan().Targets[lo:hi]
	w, err := scanjournal.OpenWriter(c.ShardJournal(shard, token), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(scanjournal.Record{
		Type: scanjournal.TypeManifest, Fingerprint: c.Plan().Fingerprint, Targets: names,
	}); err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		if err := w.Append(scanjournal.Record{Type: scanjournal.TypeStart, Name: name, Index: i}); err != nil {
			t.Fatal(err)
		}
		report := json.RawMessage(fmt.Sprintf(`{"Name":%q,"global":%d}`, name, lo+i))
		if err := w.Append(scanjournal.Record{Type: scanjournal.TypeFinish, Name: name, Index: i, Report: report}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMergeDeterministic(t *testing.T) {
	c := newCoord(t, 5, 2, nil) // shards: [0,2) [2,4) [4,5)
	for s := 0; s < c.Plan().Shards(); s++ {
		l, err := c.ClaimFree("w0")
		if err != nil || l == nil {
			t.Fatal(err)
		}
		writeShardJournal(t, c, l.Shard, l.Token)
		if err := l.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	path, err := c.WriteMerged(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var want []json.RawMessage
	for g, name := range c.Plan().Targets {
		want = append(want, json.RawMessage(fmt.Sprintf(`{"Name":%q,"global":%d}`, name, g)))
	}
	wantBytes, err := EncodeMerged(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantBytes) {
		t.Errorf("merged report:\n got %s\nwant %s", got, wantBytes)
	}

	// A crash at the CoordFold seam leaves the previous merged report
	// intact and strands no temp file.
	c2, err := Open(c.Dir(), faultinject.ErrorOn(faultinject.CoordFold, ""))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.WriteMerged(nil); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("fold = %v, want injected crash", err)
	}
	after, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(after, wantBytes) {
		t.Errorf("failed fold damaged the merged report (%v)", err)
	}
	entries, err := os.ReadDir(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("orphaned temp file: %s", e.Name())
		}
	}
}

func TestReportsRequiresAllFinished(t *testing.T) {
	c := newCoord(t, 4, 2, nil)
	l, err := c.ClaimFree("w0")
	if err != nil || l == nil {
		t.Fatal(err)
	}
	writeShardJournal(t, c, l.Shard, l.Token)
	if err := l.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reports(); err == nil {
		t.Error("Reports succeeded with an unfinished shard")
	}
}

// FuzzCoordFold: FoldLeases over arbitrary journal bytes never panics
// and never salvages past a protocol violation.
func FuzzCoordFold(f *testing.F) {
	frame := func(recs ...scanjournal.Record) []byte {
		var buf bytes.Buffer
		for _, r := range recs {
			if r.V == 0 {
				r.V = scanjournal.FormatVersion
			}
			payload, _ := json.Marshal(r)
			buf.Write(scanjournal.Frame(payload))
		}
		return buf.Bytes()
	}
	manifest := scanjournal.Record{Type: scanjournal.TypeManifest, Fingerprint: "fp", Targets: []string{"a", "b"}, ShardSize: 1}
	f.Add(frame(manifest,
		scanjournal.Record{Type: scanjournal.TypeLeaseClaim, Shard: 0, Token: 1, Worker: "w0"},
		scanjournal.Record{Type: scanjournal.TypeLeaseRenew, Shard: 0, Token: 1, Gen: 1, Worker: "w0"},
		scanjournal.Record{Type: scanjournal.TypeShardFinish, Shard: 0, Token: 1, Worker: "w0"}))
	f.Add(frame(manifest, scanjournal.Record{Type: scanjournal.TypeLeaseClaim, Shard: -1, Token: 1}))
	f.Add(frame(manifest, scanjournal.Record{Type: scanjournal.TypeLeaseRenew, Shard: 0, Token: 9, Gen: -3}))
	f.Add(append(frame(manifest), 0xde, 0xad, 0xbe, 0xef))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec := readRecovery(data)
		v := FoldLeases(rec)
		if v == nil {
			t.Fatal("FoldLeases returned nil")
		}
		if v.Salvaged > len(rec.Records) {
			t.Fatalf("salvaged %d of %d", v.Salvaged, len(rec.Records))
		}
	})
}

// readRecovery parses raw journal bytes via a temp file (Read is the
// only public byte-stream entry point).
func readRecovery(data []byte) *scanjournal.Recovery {
	f, err := os.CreateTemp("", "fuzz-coord-*.journal")
	if err != nil {
		return &scanjournal.Recovery{}
	}
	defer os.Remove(f.Name())
	f.Write(data)
	f.Close()
	rec, err := scanjournal.Read(f.Name())
	if err != nil {
		return &scanjournal.Recovery{}
	}
	return rec
}
