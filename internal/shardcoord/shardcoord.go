// Package shardcoord is the distributed-scanning coordinator: it
// partitions a large target list into leased shards and coordinates N
// worker processes sharing one filesystem — no server, no network, just
// the crash-safe journal machinery promoted into a coordination
// substrate.
//
// Layout of a coordination directory:
//
//	coord.lock            flock'd file serializing lease transactions
//	plan.json             the shard plan (fingerprint, targets, shard size)
//	coord.journal         CRC-framed lease journal (scanjournal format)
//	shard-NNNN.tT.journal per-attempt scan journals, token-qualified
//	merged.json           the folded, deterministic merged report
//
// Every lease transaction is read-fold-validate-append under an
// exclusive flock: the worker re-reads the whole coordination journal,
// folds it into per-shard state, validates its intent against that
// state, and only then appends. The flock is crash-safe (the kernel
// releases it when the holder dies, locked regions never outlive a
// process) and works equally between processes and between goroutines
// (each Open creates its own file description).
//
// # Fencing tokens, not clocks
//
// Each claim of a shard carries a token exactly one greater than the
// shard's previous token. Renew, release and finish records are only
// valid at the shard's current token, enforced at append time under the
// lock — so when a stalled worker is presumed dead and its shard is
// reclaimed (token bumped), the zombie's later writes fail with
// ErrFenced instead of corrupting state. Lease expiry itself is decided
// by observation, never by comparing wall clocks across processes: an
// observer snapshots a shard's (token, generation), waits locally, and
// re-snapshots; an unchanged pair means no heartbeat landed in between
// and the lease may be reclaimed. A false positive (the holder was
// alive, merely slow) is safe: the fenced holder abandons the shard,
// and the reclaimer's re-scan is deterministic, so the merged report is
// unchanged.
//
// # Determinism
//
// Scan work happens in token-qualified shard journals
// (shard-0003.t2.journal), so two attempts at one shard never
// interleave bytes in a single file. A reclaimer resumes from the
// previous attempt's journal (cross-file resume replays finished
// targets byte-identically) and writes its own. The merged report folds
// the finishing attempt's journal for every shard in global target
// order — byte-identical to an uninterrupted single-process sweep at
// any worker count and under any kill schedule.
package shardcoord

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
	"repro/internal/scanjournal"
)

// File names inside a coordination directory.
const (
	LockFile    = "coord.lock"
	PlanFile    = "plan.json"
	JournalFile = "coord.journal"
	MergedFile  = "merged.json"
)

// ErrFenced is returned when a lease operation is superseded: the shard
// was reclaimed (or finished) under a newer token, and this holder's
// writes are rejected. A fenced worker must abandon the shard without
// publishing anything.
var ErrFenced = errors.New("shardcoord: lease fenced by a newer token")

// Plan is the immutable shard plan of one coordination epoch.
type Plan struct {
	// Fingerprint is the scan-options fingerprint; it plays the same
	// epoch role as the scan journal's manifest fingerprint.
	Fingerprint string `json:"fingerprint"`
	// Targets is the full, ordered target list.
	Targets []string `json:"targets"`
	// ShardSize is the number of consecutive targets per shard.
	ShardSize int `json:"shardSize"`
}

// Shards is the shard count: ceil(len(Targets) / ShardSize).
func (p *Plan) Shards() int {
	if p.ShardSize <= 0 {
		return 0
	}
	return (len(p.Targets) + p.ShardSize - 1) / p.ShardSize
}

// Range returns the half-open global target range [lo, hi) of shard s.
func (p *Plan) Range(s int) (lo, hi int) {
	lo = s * p.ShardSize
	hi = lo + p.ShardSize
	if hi > len(p.Targets) {
		hi = len(p.Targets)
	}
	return lo, hi
}

// State is a shard's lease state.
type State int

const (
	// Free: never claimed, or released by its last holder. Claimable.
	Free State = iota
	// Held: leased; heartbeats bump the generation.
	Held
	// Finished: published. Terminal.
	Finished
)

func (s State) String() string {
	switch s {
	case Free:
		return "free"
	case Held:
		return "held"
	case Finished:
		return "finished"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ShardState is one shard's folded lease state.
type ShardState struct {
	State State
	// Token is the shard's current fencing token: the token of the
	// latest claim (0 = never claimed). It survives release, so the next
	// claim is always strictly greater.
	Token int64
	// Gen is the renew generation within the current claim.
	Gen int64
	// Worker is the current (or, for Finished, publishing) holder.
	Worker string
}

// LeaseView is the folded state of a coordination journal.
type LeaseView struct {
	Fingerprint string
	Targets     []string
	ShardSize   int
	Shards      []ShardState
	// Salvaged is the number of records folded in; Corrupt is non-nil
	// when the fold stopped early (byte-level or protocol corruption).
	Salvaged int
	Corrupt  *scanjournal.Corruption
}

// Plan reconstructs the epoch's plan from the view.
func (v *LeaseView) Plan() *Plan {
	return &Plan{Fingerprint: v.Fingerprint, Targets: v.Targets, ShardSize: v.ShardSize}
}

// Done reports whether every shard is finished.
func (v *LeaseView) Done() bool {
	for _, st := range v.Shards {
		if st.State != Finished {
			return false
		}
	}
	return len(v.Shards) > 0
}

// FoldLeases folds a coordination journal's salvaged records into
// per-shard lease state, mirroring scanjournal.Fold's salvage-everything
// discipline: protocol violations (a claim that does not advance the
// token by exactly one, a renew/release/finish under a stale token or
// out-of-order generation, any record for an out-of-range shard, scan
// records in a coordination journal) stop the fold at the offending
// record and surface exactly one Corruption — never a panic. Everything
// before it is trusted; the caller compacts the journal down to the
// salvaged prefix before appending.
//
// A manifest with a new fingerprint opens a new epoch and discards all
// lease state, exactly like the scan journal's options-change semantics.
func FoldLeases(rec *scanjournal.Recovery) *LeaseView {
	v := &LeaseView{Corrupt: rec.Corrupt}
	corrupt := func(i int, format string, args ...any) *LeaseView {
		v.Corrupt = &scanjournal.Corruption{Record: i, Reason: fmt.Sprintf(format, args...)}
		return v
	}
	if len(rec.Records) == 0 && v.Corrupt == nil {
		return corrupt(0, "empty coordination journal: no manifest record")
	}
	for i, r := range rec.Records {
		if i == 0 && r.Type != scanjournal.TypeManifest {
			return corrupt(0, "coordination journal does not begin with a manifest record (got %q)", r.Type)
		}
		if r.Type != scanjournal.TypeManifest {
			if r.Shard < 0 || r.Shard >= len(v.Shards) {
				return corrupt(i, "%s record for out-of-range shard %d (%d shards)", r.Type, r.Shard, len(v.Shards))
			}
		}
		switch r.Type {
		case scanjournal.TypeManifest:
			if r.ShardSize <= 0 || len(r.Targets) == 0 {
				return corrupt(i, "coordination manifest without a shard plan (shardSize=%d, %d targets)", r.ShardSize, len(r.Targets))
			}
			if i > 0 && r.Fingerprint == v.Fingerprint {
				// Same epoch re-announced (e.g. a worker restarting after
				// the plan already exists): the plan must be identical, and
				// no lease state is touched.
				if r.ShardSize != v.ShardSize || !equalStrings(r.Targets, v.Targets) {
					return corrupt(i, "manifest re-announces fingerprint %q with a different plan", r.Fingerprint)
				}
			} else {
				// New epoch (or the first manifest): reset all lease state.
				v.Fingerprint = r.Fingerprint
				v.Targets = r.Targets
				v.ShardSize = r.ShardSize
				v.Shards = make([]ShardState, v.Plan().Shards())
			}
		case scanjournal.TypeLeaseClaim:
			st := &v.Shards[r.Shard]
			if st.State == Finished {
				return corrupt(i, "claim of finished shard %d", r.Shard)
			}
			if r.Token != st.Token+1 {
				return corrupt(i, "claim of shard %d with token %d (want %d)", r.Shard, r.Token, st.Token+1)
			}
			*st = ShardState{State: Held, Token: r.Token, Gen: 0, Worker: r.Worker}
		case scanjournal.TypeLeaseRenew:
			st := &v.Shards[r.Shard]
			if st.State != Held || r.Token != st.Token {
				return corrupt(i, "renew of shard %d under token %d (state %s, token %d)", r.Shard, r.Token, st.State, st.Token)
			}
			if r.Gen != st.Gen+1 {
				return corrupt(i, "renew of shard %d with generation %d (want %d)", r.Shard, r.Gen, st.Gen+1)
			}
			st.Gen = r.Gen
		case scanjournal.TypeLeaseRelease:
			st := &v.Shards[r.Shard]
			if st.State != Held || r.Token != st.Token {
				return corrupt(i, "release of shard %d under token %d (state %s, token %d)", r.Shard, r.Token, st.State, st.Token)
			}
			*st = ShardState{State: Free, Token: st.Token}
		case scanjournal.TypeShardFinish:
			st := &v.Shards[r.Shard]
			if st.State != Held || r.Token != st.Token {
				return corrupt(i, "finish of shard %d under token %d (state %s, token %d)", r.Shard, r.Token, st.State, st.Token)
			}
			*st = ShardState{State: Finished, Token: st.Token, Worker: r.Worker}
		default:
			return corrupt(i, "scan record %q in a coordination journal", r.Type)
		}
		v.Salvaged++
	}
	return v
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Coord is a handle on a coordination directory. It holds no state
// beyond the plan: every operation re-reads the journal under the lock,
// so any number of Coords (across processes or goroutines) may operate
// on one directory concurrently.
type Coord struct {
	dir   string
	hook  faultinject.Hook
	retry scanjournal.RetryPolicy
	plan  *Plan
}

// Dir returns the coordination directory.
func (c *Coord) Dir() string { return c.dir }

// Plan returns the epoch's shard plan.
func (c *Coord) Plan() *Plan { return c.plan }

// Init creates (or joins) a coordination directory for the given plan.
// It is idempotent and concurrent-safe: the first worker writes
// plan.json and the journal manifest; later workers with the same
// fingerprint join the existing epoch; a worker with a different
// fingerprint opens a new epoch, discarding all lease state (the scan
// journal's options-change semantics, lifted to the fleet). A same-
// fingerprint plan that differs in targets or shard size is an error —
// two workers disagreeing about the work list must not silently race.
//
// hook, when non-nil, fires at the faultinject lease/journal seams of
// every subsequent operation on the returned Coord.
func Init(dir, fingerprint string, targets []string, shardSize int, hook faultinject.Hook) (*Coord, error) {
	if shardSize <= 0 {
		return nil, fmt.Errorf("shardcoord: shard size %d", shardSize)
	}
	if len(targets) == 0 {
		return nil, errors.New("shardcoord: empty target list")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := &Coord{
		dir:   dir,
		hook:  hook,
		retry: scanjournal.DefaultRetry,
		plan:  &Plan{Fingerprint: fingerprint, Targets: targets, ShardSize: shardSize},
	}
	unlock, err := lockFile(filepath.Join(dir, LockFile))
	if err != nil {
		return nil, err
	}
	defer unlock()

	// Reconcile plan.json.
	planPath := filepath.Join(dir, PlanFile)
	if data, err := os.ReadFile(planPath); err == nil {
		var existing Plan
		if err := json.Unmarshal(data, &existing); err == nil && existing.Fingerprint == fingerprint {
			if existing.ShardSize != shardSize || !equalStrings(existing.Targets, targets) {
				return nil, fmt.Errorf("shardcoord: %s holds fingerprint %q with a different plan", dir, fingerprint)
			}
		}
		// Different fingerprint (or undecodable plan): fall through and
		// rewrite — the manifest append below opens the new epoch.
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	if err := scanjournal.AtomicWriteHook(planPath, hook, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		return enc.Encode(c.plan)
	}); err != nil {
		return nil, fmt.Errorf("shardcoord: write plan: %w", err)
	}

	// Reconcile the coordination journal: append the epoch manifest
	// unless the journal's current epoch already is this plan.
	jpath := filepath.Join(dir, JournalFile)
	view, err := c.foldLocked(jpath)
	if err != nil {
		return nil, err
	}
	if view.Fingerprint == fingerprint && view.Salvaged > 0 {
		return c, nil // joining an existing epoch
	}
	w, err := scanjournal.OpenWriter(jpath, hook)
	if err != nil {
		return nil, err
	}
	defer w.Close()
	if err := c.append(w, scanjournal.Record{
		Type:        scanjournal.TypeManifest,
		Fingerprint: fingerprint,
		Targets:     targets,
		ShardSize:   shardSize,
	}); err != nil {
		return nil, err
	}
	return c, nil
}

// Open joins an existing coordination directory, reading the plan from
// plan.json.
func Open(dir string, hook faultinject.Hook) (*Coord, error) {
	data, err := os.ReadFile(filepath.Join(dir, PlanFile))
	if err != nil {
		return nil, err
	}
	var plan Plan
	if err := json.Unmarshal(data, &plan); err != nil {
		return nil, fmt.Errorf("shardcoord: decode plan: %w", err)
	}
	if plan.Shards() == 0 {
		return nil, fmt.Errorf("shardcoord: %s: degenerate plan", dir)
	}
	return &Coord{dir: dir, hook: hook, retry: scanjournal.DefaultRetry, plan: &plan}, nil
}

// foldLocked reads and folds the coordination journal (caller holds the
// lock). Corruption — a torn tail from a worker killed mid-append, or a
// protocol violation — is healed on the spot: the journal is compacted
// down to its salvaged prefix so the next append lands on a clean
// boundary. A missing journal folds to an empty view.
func (c *Coord) foldLocked(jpath string) (*LeaseView, error) {
	rec, err := scanjournal.Read(jpath)
	if os.IsNotExist(err) {
		return &LeaseView{}, nil
	}
	if err != nil {
		return nil, err
	}
	view := FoldLeases(rec)
	if view.Corrupt != nil || rec.Corrupt != nil {
		if err := scanjournal.CompactHook(jpath, c.hook, rec.Records[:view.Salvaged]); err != nil {
			return nil, fmt.Errorf("shardcoord: compact coordination journal: %w", err)
		}
	}
	return view, nil
}

// txn runs one read-fold-validate-append transaction under the
// directory lock.
func (c *Coord) txn(fn func(v *LeaseView, w *scanjournal.Writer) error) error {
	unlock, err := lockFile(filepath.Join(c.dir, LockFile))
	if err != nil {
		return err
	}
	defer unlock()
	jpath := filepath.Join(c.dir, JournalFile)
	view, err := c.foldLocked(jpath)
	if err != nil {
		return err
	}
	if view.Fingerprint != c.plan.Fingerprint {
		// The directory moved to a different epoch (options changed under
		// us): every lease this Coord could reference is gone.
		return fmt.Errorf("%w: epoch changed to fingerprint %q", ErrFenced, view.Fingerprint)
	}
	w, err := scanjournal.OpenWriter(jpath, c.hook)
	if err != nil {
		return err
	}
	defer w.Close()
	return fn(view, w)
}

// fire invokes the fault-injection hook at a lease seam.
func (c *Coord) fire(p faultinject.Point, detail string) error {
	if c.hook == nil {
		return nil
	}
	return c.hook(p, detail)
}

// append appends one record with the bounded deterministic-jitter retry
// — transient I/O contention costs a jittered sleep, not the lease.
func (c *Coord) append(w *scanjournal.Writer, rec scanjournal.Record) error {
	_, err := c.retry.Do(fmt.Sprintf("%s/%d.t%d", rec.Type, rec.Shard, rec.Token), func() error {
		return w.Append(rec)
	})
	return err
}

// leaseDetail is the detail string of the lease faultinject seams.
func leaseDetail(shard int, token int64, worker string) string {
	return fmt.Sprintf("shard-%d.t%d:%s", shard, token, worker)
}

// Lease is a held shard lease. It is not safe for concurrent use by
// multiple goroutines (hold it on the worker loop; heartbeat via Renew
// from one goroutine at a time).
type Lease struct {
	c *Coord
	// Shard is the leased shard index; Token its fencing token.
	Shard int
	Token int64
	// Gen is the last renew generation this holder wrote.
	Gen int64
	// Worker is the holder's identity (diagnostic only; fencing is by
	// token, never by name).
	Worker string
}

// ClaimFree claims the lowest-numbered Free shard. It returns (nil, nil)
// when no shard is Free — the caller then either observes Held shards
// for staleness (see Reclaim) or, if all shards are Finished, proceeds
// to the merge.
func (c *Coord) ClaimFree(worker string) (*Lease, error) {
	var lease *Lease
	err := c.txn(func(v *LeaseView, w *scanjournal.Writer) error {
		for s := range v.Shards {
			if v.Shards[s].State != Free {
				continue
			}
			token := v.Shards[s].Token + 1
			if err := c.fire(faultinject.LeaseClaim, leaseDetail(s, token, worker)); err != nil {
				return err
			}
			if err := c.append(w, scanjournal.Record{
				Type: scanjournal.TypeLeaseClaim, Shard: s, Token: token, Worker: worker,
			}); err != nil {
				return err
			}
			lease = &Lease{c: c, Shard: s, Token: token, Worker: worker}
			return nil
		}
		return nil
	})
	return lease, err
}

// Reclaim takes over a presumed-dead holder's shard. The caller must
// have observed the shard Held at exactly (token, gen) across a local
// waiting interval (see the package doc on observation-based expiry);
// Reclaim re-validates that nothing moved under the lock and claims the
// shard at token+1, fencing the previous holder. It returns (nil, nil)
// when the shard moved on — renewed, released, finished or already
// reclaimed — in which case the presumed death was refuted and nothing
// was written.
func (c *Coord) Reclaim(worker string, shard int, token, gen int64) (*Lease, error) {
	var lease *Lease
	err := c.txn(func(v *LeaseView, w *scanjournal.Writer) error {
		if shard < 0 || shard >= len(v.Shards) {
			return fmt.Errorf("shardcoord: reclaim of out-of-range shard %d", shard)
		}
		st := v.Shards[shard]
		if st.State != Held || st.Token != token || st.Gen != gen {
			return nil // the holder is alive (or the shard finished): refuted
		}
		next := token + 1
		if err := c.fire(faultinject.LeaseClaim, leaseDetail(shard, next, worker)); err != nil {
			return err
		}
		if err := c.append(w, scanjournal.Record{
			Type: scanjournal.TypeLeaseClaim, Shard: shard, Token: next, Worker: worker,
		}); err != nil {
			return err
		}
		lease = &Lease{c: c, Shard: shard, Token: next, Worker: worker}
		return nil
	})
	return lease, err
}

// Renew heartbeats the lease, bumping its generation. ErrFenced means
// the shard was reclaimed (or the epoch changed): the holder must
// abandon the shard immediately and publish nothing.
func (l *Lease) Renew() error {
	return l.c.txn(func(v *LeaseView, w *scanjournal.Writer) error {
		st := v.Shards[l.Shard]
		if st.State != Held || st.Token != l.Token {
			return fmt.Errorf("%w: shard %d is %s at token %d (lease token %d)",
				ErrFenced, l.Shard, st.State, st.Token, l.Token)
		}
		if err := l.c.fire(faultinject.LeaseRenew, leaseDetail(l.Shard, l.Token, l.Worker)); err != nil {
			return err
		}
		if err := l.c.append(w, scanjournal.Record{
			Type: scanjournal.TypeLeaseRenew, Shard: l.Shard, Token: l.Token, Gen: st.Gen + 1, Worker: l.Worker,
		}); err != nil {
			return err
		}
		l.Gen = st.Gen + 1
		return nil
	})
}

// Release returns the shard to Free (graceful drain: the work is
// incomplete but the journal written so far survives for the next
// claimant to resume from). ErrFenced means a reclaimer already owns it.
func (l *Lease) Release() error {
	return l.c.txn(func(v *LeaseView, w *scanjournal.Writer) error {
		st := v.Shards[l.Shard]
		if st.State != Held || st.Token != l.Token {
			return fmt.Errorf("%w: shard %d is %s at token %d (lease token %d)",
				ErrFenced, l.Shard, st.State, st.Token, l.Token)
		}
		return l.c.append(w, scanjournal.Record{
			Type: scanjournal.TypeLeaseRelease, Shard: l.Shard, Token: l.Token, Worker: l.Worker,
		})
	})
}

// Finish publishes the shard: its scan journal at this token becomes
// the shard's authoritative report source and the shard goes terminal.
// The faultinject.ShardPublish seam fires first — a crash between
// scanning and publishing leaves the shard Held under a lease that will
// go stale and be reclaimed; the reclaimer resumes from this attempt's
// journal and re-publishes identically. ErrFenced: a reclaimer owns the
// shard, publish nothing.
func (l *Lease) Finish() error {
	// The seam fires before the lock is taken: a crashing hook models
	// dying between scanning and publishing, and a *sleeping* hook
	// models a paused (to-be-zombie) worker — which must not stall the
	// fleet's transactions, so it cannot sleep inside the flock. The
	// fencing validation below therefore sees any reclaim that happened
	// during the pause.
	if err := l.c.fire(faultinject.ShardPublish, leaseDetail(l.Shard, l.Token, l.Worker)); err != nil {
		return err
	}
	return l.c.txn(func(v *LeaseView, w *scanjournal.Writer) error {
		st := v.Shards[l.Shard]
		if st.State != Held || st.Token != l.Token {
			return fmt.Errorf("%w: shard %d is %s at token %d (lease token %d)",
				ErrFenced, l.Shard, st.State, st.Token, l.Token)
		}
		return l.c.append(w, scanjournal.Record{
			Type: scanjournal.TypeShardFinish, Shard: l.Shard, Token: l.Token, Worker: l.Worker,
		})
	})
}

// Snapshot folds the coordination journal under the lock and returns the
// per-shard view. Observers use two Snapshots separated by a local wait
// to decide lease staleness.
func (c *Coord) Snapshot() (*LeaseView, error) {
	var view *LeaseView
	err := c.txn(func(v *LeaseView, w *scanjournal.Writer) error {
		view = v
		return nil
	})
	return view, err
}

// ShardJournal is the scan-journal path of one (shard, token) attempt.
// Token-qualified naming is what keeps a zombie's writes out of a
// reclaimer's journal: two attempts never share a file.
func (c *Coord) ShardJournal(shard int, token int64) string {
	return filepath.Join(c.dir, fmt.Sprintf("shard-%04d.t%d.journal", shard, token))
}

// PrevShardJournal returns the newest existing earlier attempt's journal
// for a shard (the reclaim resume source), or "" when this is the
// shard's first attempt.
func (c *Coord) PrevShardJournal(shard int, token int64) string {
	for t := token - 1; t >= 1; t-- {
		path := c.ShardJournal(shard, t)
		if _, err := os.Stat(path); err == nil {
			return path
		}
	}
	return ""
}

// Reports folds every finished shard's authoritative scan journal and
// returns the serialized per-target reports in global target order. It
// fails if any shard is unfinished, if a shard journal was written under
// a different options fingerprint, or if a published journal is missing
// a target's finish record — a Finish record is a promise that the
// attempt journal is complete, so any gap is corruption, not a resume.
func (c *Coord) Reports() ([]json.RawMessage, error) {
	view, err := c.Snapshot()
	if err != nil {
		return nil, err
	}
	out := make([]json.RawMessage, len(c.plan.Targets))
	for s, st := range view.Shards {
		if st.State != Finished {
			return nil, fmt.Errorf("shardcoord: shard %d is %s, not finished", s, st.State)
		}
		rec, err := scanjournal.Read(c.ShardJournal(s, st.Token))
		if err != nil {
			return nil, fmt.Errorf("shardcoord: shard %d journal: %w", s, err)
		}
		rp := scanjournal.Fold(rec)
		if rp.Corrupt != nil {
			return nil, fmt.Errorf("shardcoord: published shard %d journal corrupt: %s", s, rp.Corrupt)
		}
		if rp.Fingerprint != c.plan.Fingerprint {
			return nil, fmt.Errorf("shardcoord: shard %d journal fingerprint %q does not match plan %q", s, rp.Fingerprint, c.plan.Fingerprint)
		}
		lo, hi := c.plan.Range(s)
		for g := lo; g < hi; g++ {
			raw, ok := rp.Finished[scanjournal.TargetKey(g-lo, c.plan.Targets[g])]
			if !ok {
				return nil, fmt.Errorf("shardcoord: published shard %d journal missing target %d (%s)", s, g-lo, c.plan.Targets[g])
			}
			out[g] = raw
		}
	}
	return out, nil
}

// EncodeMerged is the canonical merged-report encoding: a JSON array of
// the per-target reports, one line. Both the distributed fold and the
// single-process baseline encode through here, so byte-identity of the
// two is a comparison of outputs, not a re-derivation.
func EncodeMerged(reports []json.RawMessage) ([]byte, error) {
	data, err := json.Marshal(reports)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteMerged folds all finished shards into the deterministic merged
// report at merged.json. canon, when non-nil, maps each raw report to
// its canonical form (the scanner layer zeroes wall-clock fields there).
// The faultinject.CoordFold seam fires before the write; the write
// itself is atomic, so a crash mid-fold leaves any previous merged
// report intact. Any finished worker may fold — last writer wins with
// identical bytes.
func (c *Coord) WriteMerged(canon func(i int, raw json.RawMessage) (json.RawMessage, error)) (string, error) {
	raws, err := c.Reports()
	if err != nil {
		return "", err
	}
	if canon != nil {
		for i, raw := range raws {
			cr, err := canon(i, raw)
			if err != nil {
				return "", fmt.Errorf("shardcoord: canonicalize report %d (%s): %w", i, c.plan.Targets[i], err)
			}
			raws[i] = cr
		}
	}
	data, err := EncodeMerged(raws)
	if err != nil {
		return "", err
	}
	path := filepath.Join(c.dir, MergedFile)
	if err := c.fire(faultinject.CoordFold, path); err != nil {
		return "", err
	}
	if err := scanjournal.AtomicWriteHook(path, c.hook, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	}); err != nil {
		return "", err
	}
	return path, nil
}
