package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestRegistrySnapshotAtomic hammers a Registry with concurrent merges
// while snapshotting: under -race this proves the scrape path is safe,
// and the invariant check proves snapshots are atomic — a scan merges
// two counters together, so any snapshot must observe them equal.
func TestRegistrySnapshotAtomic(t *testing.T) {
	g := NewRegistry()
	labels := map[string]string{"scope": "scans"}
	const writers = 8
	const merges = 200

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < merges; i++ {
				// a and b always merged together with equal deltas.
				g.Merge(labels, Metrics{"pair_a_total": 3, "pair_b_total": 3, "depth_now": int64(i)})
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			snap := g.Snapshot()
			if len(snap) != 1 {
				t.Fatalf("got %d series, want 1", len(snap))
			}
			m := snap[0].Metrics
			want := int64(writers * merges * 3)
			if m["pair_a_total"] != want || m["pair_b_total"] != want {
				t.Fatalf("final counters a=%d b=%d, want both %d", m["pair_a_total"], m["pair_b_total"], want)
			}
			return
		default:
			for _, s := range g.Snapshot() {
				a, b := s.Metrics["pair_a_total"], s.Metrics["pair_b_total"]
				if a != b {
					t.Fatalf("non-atomic snapshot: pair_a_total=%d pair_b_total=%d", a, b)
				}
			}
		}
	}
}

// TestRegistryMergeSemantics checks the three merge modes: counters
// add, "_peak" takes the max, "_now" replaces.
func TestRegistryMergeSemantics(t *testing.T) {
	g := NewRegistry()
	l := map[string]string{"app": "x"}
	g.Merge(l, Metrics{"ops_total": 5, "live_peak": 10, "queue_depth_now": 7})
	g.Merge(l, Metrics{"ops_total": 2, "live_peak": 4, "queue_depth_now": 3})
	snap := g.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("got %d series, want 1", len(snap))
	}
	m := snap[0].Metrics
	if m["ops_total"] != 7 {
		t.Errorf("ops_total = %d, want 7 (addition)", m["ops_total"])
	}
	if m["live_peak"] != 10 {
		t.Errorf("live_peak = %d, want 10 (max)", m["live_peak"])
	}
	if m["queue_depth_now"] != 3 {
		t.Errorf("queue_depth_now = %d, want 3 (replacement)", m["queue_depth_now"])
	}
}

// TestRegistryNowGaugeExport checks "_now" series export as gauges and
// that a nil registry is a no-op.
func TestRegistryNowGaugeExport(t *testing.T) {
	g := NewRegistry()
	g.Set(map[string]string{"tenant": "a"}, "queue_depth_now", 4)
	g.Add(map[string]string{"tenant": "a"}, "jobs_total", 1)
	var sb strings.Builder
	if err := g.WritePrometheus(&sb, "ucheckerd"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE ucheckerd_queue_depth_now gauge") {
		t.Errorf("_now series not typed as gauge:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE ucheckerd_jobs_total counter") {
		t.Errorf("counter series not typed as counter:\n%s", out)
	}
	if !strings.Contains(out, `ucheckerd_queue_depth_now{tenant="a"} 4`) {
		t.Errorf("gauge value missing:\n%s", out)
	}

	var nilReg *Registry
	nilReg.Add(nil, "x", 1)
	nilReg.Set(nil, "x", 1)
	nilReg.Merge(nil, Metrics{"x": 1})
	if nilReg.Snapshot() != nil {
		t.Error("nil registry snapshot not nil")
	}
}
