// Package obs is the pipeline's observability layer: a lightweight
// span/trace recorder and a deterministic counter set, with export to
// Chrome trace-event JSON and Prometheus text exposition. It has no
// external dependencies and costs nothing when disabled (every call
// site guards on a nil *Recorder).
//
// Two kinds of signal, deliberately separated:
//
//   - Spans carry wall-clock timing and hierarchy (scan → parse /
//     locality / root → attempt → interp / model / solve). They are
//     inherently nondeterministic (they measure time) and are exported
//     to trace files for humans and profilers.
//
//   - Metrics carry counts of work performed (paths forked, candidate
//     assignments tried, …). They are deterministic for a deterministic
//     pipeline: merged with commutative, associative operations
//     (addition; max for "_peak" gauges), so an app's metric set is
//     byte-identical regardless of worker count or scheduling. That
//     determinism is what makes before/after comparisons of perf work
//     trustworthy, and it is enforced by a scanner test.
package obs

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// PeakSuffix marks gauge-style metrics merged by max instead of
// addition. Any key ending in PeakSuffix (e.g. "interp_live_envs_peak")
// records a high-water mark; all other keys are monotone counters.
const PeakSuffix = "_peak"

// Metrics is a flat, mergeable counter set keyed by snake_case metric
// name. The zero value is not usable; call NewMetrics or let Merge
// allocate. Metrics is NOT safe for concurrent use — the scanner keeps
// one per root and merges in canonical order.
type Metrics map[string]int64

// NewMetrics returns an empty metric set.
func NewMetrics() Metrics { return Metrics{} }

// Add increments a counter.
func (m Metrics) Add(key string, delta int64) {
	if delta != 0 {
		m[key] += delta
	}
}

// SetMax raises a peak gauge to v if v is larger.
func (m Metrics) SetMax(key string, v int64) {
	if cur, ok := m[key]; !ok || v > cur {
		m[key] = v
	}
}

// Merge folds other into m: "_peak" keys by max, everything else by
// addition. Both operations are commutative and associative, so any
// merge order yields the same result — the determinism guarantee.
func (m Metrics) Merge(other Metrics) {
	for k, v := range other {
		if strings.HasSuffix(k, PeakSuffix) {
			m.SetMax(k, v)
		} else {
			m.Add(k, v)
		}
	}
}

// Clone returns a deep copy.
func (m Metrics) Clone() Metrics {
	out := make(Metrics, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Keys returns the metric names in sorted order.
func (m Metrics) Keys() []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Attr is one key/value span attribute.
type Attr struct {
	Key   string
	Value string
}

// A creates an Attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// SpanID identifies a span within one Recorder. 0 is "no span" (the
// root parent).
type SpanID int64

// Span is one finished (or still-open, in Snapshot) timed region.
type Span struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Attrs  []Attr
	Start  time.Time
	End    time.Time // zero while the span is open
}

// Dur returns the span's duration (zero for open spans).
func (s Span) Dur() time.Duration {
	if s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Attr returns the value of the named attribute, or "".
func (s Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Recorder collects spans. It is safe for concurrent use: scanner
// workers record spans from many goroutines. A nil *Recorder is a
// valid no-op recorder (Start returns a no-op span), so callers thread
// a possibly-nil recorder without guards.
type Recorder struct {
	mu     sync.Mutex
	nextID SpanID
	spans  []Span
	// OnEnd, when non-nil, receives every finished span. It is invoked
	// synchronously under the Recorder's lock, so implementations must
	// be fast and must not call back into the Recorder.
	OnEnd func(Span)
	// now is the clock, swappable in tests.
	now func() time.Time
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{now: time.Now} }

// ActiveSpan is an open span; call End (or EndWith) exactly once.
// The zero/nil value (from a nil Recorder) is a no-op.
type ActiveSpan struct {
	rec  *Recorder
	span Span
}

// Start opens a span under parent (0 for top-level). On a nil Recorder
// it returns a no-op span whose End does nothing and whose ID is 0.
func (r *Recorder) Start(parent SpanID, name string, attrs ...Attr) *ActiveSpan {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	r.mu.Unlock()
	return &ActiveSpan{
		rec:  r,
		span: Span{ID: id, Parent: parent, Name: name, Attrs: attrs, Start: r.now()},
	}
}

// ID returns the span's ID (0 for a no-op span), usable as a parent.
func (a *ActiveSpan) ID() SpanID {
	if a == nil {
		return 0
	}
	return a.span.ID
}

// SetAttr appends an attribute to the open span.
func (a *ActiveSpan) SetAttr(key, value string) {
	if a == nil {
		return
	}
	a.span.Attrs = append(a.span.Attrs, Attr{Key: key, Value: value})
}

// Span returns a copy of the span record. The End field is set only
// once End was called; the copy is safe to retain.
func (a *ActiveSpan) Span() Span {
	if a == nil {
		return Span{}
	}
	return a.span
}

// End closes the span and hands it to the Recorder.
func (a *ActiveSpan) End(attrs ...Attr) {
	if a == nil {
		return
	}
	a.span.Attrs = append(a.span.Attrs, attrs...)
	a.span.End = a.rec.now()
	a.rec.mu.Lock()
	a.rec.spans = append(a.rec.spans, a.span)
	onEnd := a.rec.OnEnd
	if onEnd != nil {
		onEnd(a.span)
	}
	a.rec.mu.Unlock()
}

// Snapshot returns a copy of all finished spans, ordered by end time
// (the order they were recorded).
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Len reports the number of finished spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}
