package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMetricsMerge(t *testing.T) {
	a := NewMetrics()
	a.Add("paths_forked", 3)
	a.Add("paths_forked", 2)
	a.SetMax("live_envs_peak", 7)
	b := NewMetrics()
	b.Add("paths_forked", 10)
	b.SetMax("live_envs_peak", 4)
	b.Add("models_tried", 1)

	a.Merge(b)
	if a["paths_forked"] != 15 {
		t.Errorf("paths_forked = %d, want 15", a["paths_forked"])
	}
	if a["live_envs_peak"] != 7 {
		t.Errorf("live_envs_peak = %d, want 7 (max merge)", a["live_envs_peak"])
	}
	if a["models_tried"] != 1 {
		t.Errorf("models_tried = %d, want 1", a["models_tried"])
	}
}

func TestMetricsMergeOrderIndependent(t *testing.T) {
	parts := []Metrics{
		{"c": 1, "x_peak": 9},
		{"c": 4, "x_peak": 2},
		{"c": 2, "d": 7},
	}
	forward := NewMetrics()
	for _, p := range parts {
		forward.Merge(p)
	}
	backward := NewMetrics()
	for i := len(parts) - 1; i >= 0; i-- {
		backward.Merge(parts[i])
	}
	for k, v := range forward {
		if backward[k] != v {
			t.Errorf("merge order dependence on %s: %d vs %d", k, v, backward[k])
		}
	}
	if len(forward) != len(backward) {
		t.Errorf("key sets differ: %v vs %v", forward.Keys(), backward.Keys())
	}
}

func TestMetricsAddZeroAllocatesNothing(t *testing.T) {
	m := NewMetrics()
	m.Add("untouched", 0)
	if len(m) != 0 {
		t.Errorf("Add(0) created a key: %v", m.Keys())
	}
}

func TestRecorderSpans(t *testing.T) {
	rec := NewRecorder()
	now := time.Unix(100, 0)
	rec.now = func() time.Time { now = now.Add(time.Millisecond); return now }

	root := rec.Start(0, "scan", A("app", "demo"))
	child := rec.Start(root.ID(), "parse")
	child.End()
	root.End(A("verdict", "clean"))

	spans := rec.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Finish order: child first.
	if spans[0].Name != "parse" || spans[1].Name != "scan" {
		t.Errorf("span order: %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Errorf("parse parent = %d, want %d", spans[0].Parent, spans[1].ID)
	}
	if spans[1].Attr("app") != "demo" || spans[1].Attr("verdict") != "clean" {
		t.Errorf("scan attrs wrong: %+v", spans[1].Attrs)
	}
	if spans[0].Dur() <= 0 {
		t.Errorf("parse duration = %v, want > 0", spans[0].Dur())
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var rec *Recorder
	sp := rec.Start(0, "anything", A("k", "v"))
	sp.SetAttr("x", "y")
	sp.End() // must not panic
	if sp.ID() != 0 {
		t.Errorf("nil recorder span ID = %d, want 0", sp.ID())
	}
	if rec.Snapshot() != nil || rec.Len() != 0 {
		t.Error("nil recorder should report no spans")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := rec.Start(0, "work")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if rec.Len() != 16*50 {
		t.Errorf("got %d spans, want %d", rec.Len(), 16*50)
	}
	seen := map[SpanID]bool{}
	for _, s := range rec.Snapshot() {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestRecorderOnEnd(t *testing.T) {
	rec := NewRecorder()
	var got []string
	rec.OnEnd = func(s Span) { got = append(got, s.Name) }
	rec.Start(0, "a").End()
	rec.Start(0, "b").End()
	if strings.Join(got, ",") != "a,b" {
		t.Errorf("OnEnd order = %v", got)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	rec := NewRecorder()
	now := time.Unix(50, 0)
	rec.now = func() time.Time { now = now.Add(2 * time.Millisecond); return now }
	scan := rec.Start(0, "scan", A("app", "demo"))
	in := rec.Start(scan.ID(), "interp")
	in.End()
	scan.End()
	open := rec.Start(0, "never-ended")
	_ = open // intentionally left open: must be skipped

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rec.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2:\n%s", len(events), buf.String())
	}
	// Sorted by ts: scan starts first.
	if events[0]["name"] != "scan" || events[1]["name"] != "interp" {
		t.Errorf("event order: %v, %v", events[0]["name"], events[1]["name"])
	}
	if events[0]["ph"] != "X" {
		t.Errorf("ph = %v, want X", events[0]["ph"])
	}
	if ts := events[0]["ts"].(float64); ts != 0 {
		t.Errorf("first ts = %v, want 0 (relative to epoch)", ts)
	}
	// Child shares the top-level ancestor's track.
	if events[0]["tid"] != events[1]["tid"] {
		t.Errorf("tid mismatch: %v vs %v", events[0]["tid"], events[1]["tid"])
	}
	if args := events[0]["args"].(map[string]any); args["app"] != "demo" {
		t.Errorf("args = %v", args)
	}
	if dur := events[1]["dur"].(float64); dur != 2000 {
		t.Errorf("interp dur = %v µs, want 2000", dur)
	}
}

func TestWritePrometheus(t *testing.T) {
	series := []LabeledMetrics{
		{Labels: map[string]string{"app": "beta"}, Metrics: Metrics{"paths": 5, "live_envs_peak": 3}},
		{Labels: map[string]string{"app": "alpha"}, Metrics: Metrics{"paths": 2}},
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, "uchecker", series); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := []string{
		"# TYPE uchecker_live_envs_peak gauge",
		`uchecker_live_envs_peak{app="beta"} 3`,
		"# TYPE uchecker_paths counter",
		`uchecker_paths{app="alpha"} 2`,
		`uchecker_paths{app="beta"} 5`,
	}
	if got := strings.TrimSpace(out); got != strings.Join(want, "\n") {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, strings.Join(want, "\n"))
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	series := []LabeledMetrics{
		{Labels: map[string]string{"app": "x"}, Metrics: Metrics{"a": 1, "b": 2, "c": 3, "d_peak": 4}},
	}
	var first string
	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, "ns", series); err != nil {
			t.Fatal(err)
		}
		if first == "" {
			first = buf.String()
		} else if buf.String() != first {
			t.Fatalf("nondeterministic exposition on iteration %d", i)
		}
	}
}

func TestSanitizeNames(t *testing.T) {
	var buf bytes.Buffer
	series := []LabeledMetrics{
		{Labels: map[string]string{"app name": `has "quotes" and\slash`}, Metrics: Metrics{"weird-key.x": 1}},
	}
	if err := WritePrometheus(&buf, "ns", series); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ns_weird_key_x") {
		t.Errorf("metric name not sanitized:\n%s", out)
	}
	if !strings.Contains(out, "app_name=") {
		t.Errorf("label name not sanitized:\n%s", out)
	}
	if !strings.Contains(out, `\"quotes\"`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}
