// Registry: a thread-safe, labeled metric store for long-lived servers.
//
// The batch pipeline keeps one (non-thread-safe) Metrics per root and
// merges in canonical order at the end of a scan — fine for a process
// that exports once at exit. A daemon serves /metrics continuously
// while worker goroutines are mid-scan, so it needs a store that can
// absorb merges from many goroutines and hand the scrape handler an
// atomic snapshot: every counter in one scrape reflects a single
// consistent point in time, never a half-merged scan.
package obs

import (
	"io"
	"sort"
	"strings"
	"sync"
)

// NowSuffix marks point-in-time gauges (e.g. "queue_depth_now",
// "jobs_running_now"): set with Registry.Set, exported as Prometheus
// gauges, and merged by replacement — the latest observation wins,
// unlike "_peak" high-water marks (max) and plain counters (addition).
const NowSuffix = "_now"

// Registry holds labeled metric series and is safe for concurrent use.
// A nil *Registry is a valid no-op (like a nil *Recorder), so callers
// thread a possibly-nil registry without guards.
type Registry struct {
	mu     sync.Mutex
	series map[string]*registrySeries // keyed by rendered label set
}

type registrySeries struct {
	labels  map[string]string
	metrics Metrics
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{series: map[string]*registrySeries{}}
}

// get returns (creating if needed) the series for labels. Caller holds mu.
func (g *Registry) get(labels map[string]string) *registrySeries {
	key := renderLabels(labels)
	s, ok := g.series[key]
	if !ok {
		lc := make(map[string]string, len(labels))
		for k, v := range labels {
			lc[k] = v
		}
		s = &registrySeries{labels: lc, metrics: NewMetrics()}
		g.series[key] = s
	}
	return s
}

// Add increments a counter on the series identified by labels.
func (g *Registry) Add(labels map[string]string, key string, delta int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.get(labels).metrics.Add(key, delta)
	g.mu.Unlock()
}

// Set overwrites a value on the series identified by labels — the
// operation for "_now" point-in-time gauges.
func (g *Registry) Set(labels map[string]string, key string, v int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.get(labels).metrics[key] = v
	g.mu.Unlock()
}

// Merge folds a finished scan's metric set into the series identified
// by labels: "_peak" keys by max, "_now" keys by replacement,
// everything else by addition.
func (g *Registry) Merge(labels map[string]string, m Metrics) {
	if g == nil || len(m) == 0 {
		return
	}
	g.mu.Lock()
	tgt := g.get(labels).metrics
	for k, v := range m {
		switch {
		case strings.HasSuffix(k, PeakSuffix):
			tgt.SetMax(k, v)
		case strings.HasSuffix(k, NowSuffix):
			tgt[k] = v
		default:
			tgt.Add(k, v)
		}
	}
	g.mu.Unlock()
}

// Snapshot returns a deep copy of every series, sorted by rendered
// label set. The copy is atomic: it reflects one instant of the
// registry, so a scrape concurrent with merges never observes a
// half-applied scan.
func (g *Registry) Snapshot() []LabeledMetrics {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	keys := make([]string, 0, len(g.series))
	for k := range g.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]LabeledMetrics, 0, len(keys))
	for _, k := range keys {
		s := g.series[k]
		lc := make(map[string]string, len(s.labels))
		for lk, lv := range s.labels {
			lc[lk] = lv
		}
		out = append(out, LabeledMetrics{Labels: lc, Metrics: s.metrics.Clone()})
	}
	g.mu.Unlock()
	return out
}

// WritePrometheus writes an atomic snapshot of the registry in
// Prometheus text exposition format.
func (g *Registry) WritePrometheus(w io.Writer, namespace string) error {
	return WritePrometheus(w, namespace, g.Snapshot())
}
