// Prometheus text-exposition export (version 0.0.4 of the format:
// https://prometheus.io/docs/instrumenting/exposition_formats/).
// Counters become "<ns>_<key>" counter series; "_peak" and "_now" keys
// become gauges. Series carrying the same metric under different label sets
// (one per scanned app) share one TYPE header, exactly as the format
// requires. Output is fully sorted, so two runs with identical metrics
// produce byte-identical expositions — the determinism contract the
// scanner tests enforce.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// LabeledMetrics is one metric set qualified by a label set (typically
// {app="<name>"} for a per-app report).
type LabeledMetrics struct {
	Labels  map[string]string
	Metrics Metrics
}

// WritePrometheus writes series in Prometheus text exposition format.
// namespace prefixes every metric name (conventionally "uchecker").
// Metric names, label keys and series are emitted in sorted order.
func WritePrometheus(w io.Writer, namespace string, series []LabeledMetrics) error {
	// Collect the union of metric names.
	nameSet := map[string]bool{}
	for _, s := range series {
		for k := range s.Metrics {
			nameSet[k] = true
		}
	}
	names := make([]string, 0, len(nameSet))
	for k := range nameSet {
		names = append(names, k)
	}
	sort.Strings(names)

	for _, name := range names {
		full := name
		if namespace != "" {
			full = namespace + "_" + name
		}
		full = sanitizeMetricName(full)
		kind := "counter"
		if strings.HasSuffix(name, PeakSuffix) || strings.HasSuffix(name, NowSuffix) {
			kind = "gauge"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", full, kind); err != nil {
			return err
		}
		// One line per series that carries this metric, in input order
		// (callers pass apps in canonical order); ties broken by the
		// rendered label set for full determinism.
		type line struct {
			labels string
			value  int64
		}
		var lines []line
		for _, s := range series {
			v, ok := s.Metrics[name]
			if !ok {
				continue
			}
			lines = append(lines, line{labels: renderLabels(s.Labels), value: v})
		}
		sort.SliceStable(lines, func(i, j int) bool { return lines[i].labels < lines[j].labels })
		for _, l := range lines {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", full, l.labels, l.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderLabels formats a label set as {k="v",...} with sorted keys and
// escaped values, or "" when empty.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", sanitizeLabelName(k), escapeLabelValue(labels[k]))
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabelValue escapes per the exposition format: backslash,
// double-quote and newline. %q above handles quote+backslash; convert
// the value first so %q sees clean input for newlines too.
func escapeLabelValue(v string) string {
	return strings.ReplaceAll(v, "\n", `\n`)
}

// sanitizeMetricName maps arbitrary strings into the metric-name
// alphabet [a-zA-Z0-9_:], replacing anything else with '_'.
func sanitizeMetricName(s string) string {
	return sanitize(s, func(c byte) bool {
		return c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
	})
}

// sanitizeLabelName maps into [a-zA-Z0-9_].
func sanitizeLabelName(s string) string {
	return sanitize(s, func(c byte) bool {
		return c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
	})
}

func sanitize(s string, ok func(byte) bool) string {
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !ok(c) {
			c = '_'
		}
		if i == 0 && c >= '0' && c <= '9' {
			sb.WriteByte('_')
		}
		sb.WriteByte(c)
	}
	return sb.String()
}
