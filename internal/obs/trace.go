// Chrome trace-event export: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
// (the JSON array format consumed by chrome://tracing, Perfetto and
// speedscope). Each finished span becomes one complete ("ph":"X")
// event; nesting falls out of time containment on a shared track, so
// every top-level span (and its whole subtree) is assigned its own
// tid — one visual row per scanned app / per root.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// traceEvent is one Chrome trace-event entry.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes spans as a Chrome trace-event JSON array.
// Timestamps are microseconds relative to the earliest span start, so
// the trace opens at t=0 in any viewer. Open spans (zero End) are
// skipped.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	finished := make([]Span, 0, len(spans))
	var epoch time.Time
	for _, s := range spans {
		if s.End.IsZero() {
			continue
		}
		if epoch.IsZero() || s.Start.Before(epoch) {
			epoch = s.Start
		}
		finished = append(finished, s)
	}
	// Track assignment: each span inherits its top-level ancestor's ID.
	parent := make(map[SpanID]SpanID, len(finished))
	for _, s := range finished {
		parent[s.ID] = s.Parent
	}
	track := func(id SpanID) int64 {
		seen := 0
		for parent[id] != 0 && seen < len(parent)+1 { // cycle guard
			id = parent[id]
			seen++
		}
		return int64(id)
	}
	events := make([]traceEvent, 0, len(finished))
	for _, s := range finished {
		ev := traceEvent{
			Name: s.Name,
			Cat:  "uchecker",
			Ph:   "X",
			Ts:   float64(s.Start.Sub(epoch)) / float64(time.Microsecond),
			Dur:  float64(s.End.Sub(s.Start)) / float64(time.Microsecond),
			Pid:  1,
			Tid:  track(s.ID),
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}
	// Stable output: order by (ts, tid, name) so identical scans produce
	// structurally comparable traces.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Ts != events[j].Ts {
			return events[i].Ts < events[j].Ts
		}
		if events[i].Tid != events[j].Tid {
			return events[i].Tid < events[j].Tid
		}
		return events[i].Name < events[j].Name
	})
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "  %s%s", data, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
