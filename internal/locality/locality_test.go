package locality

import (
	"testing"

	"repro/internal/callgraph"
	"repro/internal/phpast"
	"repro/internal/phpparser"
)

func analyze(t *testing.T, srcs map[string]string) (Result, *callgraph.Graph) {
	t.Helper()
	var files []*phpast.File
	for name, src := range srcs {
		f, errs := phpparser.Parse(name, src)
		if len(errs) > 0 {
			t.Fatalf("%s: %v", name, errs)
		}
		files = append(files, f)
	}
	g := callgraph.Build(files)
	return Analyze(g, files, srcs), g
}

const listing1 = `<?php
function getFileName($file){
	return $_FILES[$file]['name'];
}

function handle_uploader($file, $savePath){
	$path_array = wp_upload_dir();
	$pathAndName = $path_array['path'] . "/" . $savePath;
	if (!move_uploaded_file($_FILES[$file]['tmp_name'], $pathAndName)) {
		return false;
	}
	return true;
}

if (!handle_uploader("upload_file", getFileName("upload_file"))) {
	echo "File_Uploaded_failure!";
}
`

// The paper (Fig. 3 discussion): the LCA for Listing 1 is the file node
// example1.php, because both functions are below it and each special node
// has the file as the lowest node reaching both.
func TestLCAListing1IsFile(t *testing.T) {
	res, _ := analyze(t, map[string]string{"example1.php": listing1})
	if len(res.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(res.Roots))
	}
	r := res.Roots[0]
	if r.Node.Kind != callgraph.FileNode || r.Node.Name != "example1.php" {
		t.Errorf("root = %v", r.Node)
	}
}

// When a single function both accesses $_FILES and calls the sink, that
// function (not the file) is the LCA — the WooCommerce Custom Profile
// Picture case in Section IV-B, where only wc_cus_upload_picture() is
// executed.
func TestLCASingleFunction(t *testing.T) {
	src := `<?php
function wc_cus_upload_picture($foto) {
	$profilepicture = $foto;
	$wordpress_upload_dir = wp_upload_dir();
	$new_file_path = $wordpress_upload_dir['path'] . '/' . $profilepicture['name'];
	if (move_uploaded_file($profilepicture['tmp_name'], $new_file_path)) {
		return 1;
	}
	return 0;
}
if ($_FILES['profile_pic']) {
	$picture_id = wc_cus_upload_picture($_FILES['profile_pic']);
}
`
	res, _ := analyze(t, map[string]string{"wc.php": src})
	if len(res.Roots) != 1 {
		t.Fatalf("roots = %d, want 1: %+v", len(res.Roots), res.Roots)
	}
	// The file accesses $_FILES and the function calls the sink; the file
	// is the LCA here because the $_FILES access happens at file level.
	if res.Roots[0].Node.Kind != callgraph.FileNode {
		t.Errorf("root = %v, want file", res.Roots[0].Node)
	}
}

func TestLCAFunctionOnly(t *testing.T) {
	// Both the $_FILES access and the sink are inside one function; the
	// function is lower than the file.
	src := `<?php
function upload_file() {
	$name = $_FILES['userFile']['name'];
	move_uploaded_file($_FILES['userFile']['tmp_name'], "/up/" . $name);
}
upload_file();
`
	res, _ := analyze(t, map[string]string{"fp.php": src})
	if len(res.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(res.Roots))
	}
	if res.Roots[0].Node.Kind != callgraph.FuncNode || res.Roots[0].Node.Name != "upload_file" {
		t.Errorf("root = %v, want upload_file()", res.Roots[0].Node)
	}
}

func TestNoRootWithoutSink(t *testing.T) {
	src := `<?php $n = $_FILES['f']['name']; echo $n;`
	res, _ := analyze(t, map[string]string{"nosink.php": src})
	if len(res.Roots) != 0 {
		t.Errorf("roots = %+v, want none", res.Roots)
	}
}

func TestNoRootWithoutFiles(t *testing.T) {
	src := `<?php move_uploaded_file("/tmp/a", "/tmp/b");`
	res, _ := analyze(t, map[string]string{"nofiles.php": src})
	if len(res.Roots) != 0 {
		t.Errorf("roots = %+v, want none", res.Roots)
	}
}

// The headline effect of Table III: a large application where upload logic
// is a tiny fraction gets a tiny analyzed percentage.
func TestLocalityReduction(t *testing.T) {
	big := "<?php\n"
	for i := 0; i < 200; i++ {
		big += "function filler" + string(rune('a'+i%26)) + itoa(i) + "() {\n\t$x = 1;\n\t$y = 2;\n\treturn $x + $y;\n}\n"
	}
	srcs := map[string]string{
		"big.php": big,
		"up.php": `<?php
function do_upload() {
	move_uploaded_file($_FILES['f']['tmp_name'], "/up/" . $_FILES['f']['name']);
}
do_upload();
`,
	}
	res, _ := analyze(t, srcs)
	if len(res.Roots) != 1 {
		t.Fatalf("roots = %d", len(res.Roots))
	}
	if res.PercentAnalyzed() > 10 {
		t.Errorf("analyzed %% = %.1f, want < 10", res.PercentAnalyzed())
	}
	if res.TotalLoC < 1000 {
		t.Errorf("total LoC = %d, want > 1000", res.TotalLoC)
	}
}

// Multi-file applications: the root sits in the file that wires the pieces
// together.
func TestLocalityAcrossIncludes(t *testing.T) {
	srcs := map[string]string{
		"reader.php": `<?php
function read_upload() { return $_FILES['doc']; }`,
		"writer.php": `<?php
function write_upload($f, $dst) { move_uploaded_file($f['tmp_name'], $dst); }`,
		"glue.php": `<?php
include 'reader.php';
include 'writer.php';
$f = read_upload();
write_upload($f, "/srv/" . $f['name']);`,
	}
	res, _ := analyze(t, srcs)
	if len(res.Roots) != 1 {
		t.Fatalf("roots = %+v", res.Roots)
	}
	if res.Roots[0].Node.Name != "glue.php" {
		t.Errorf("root = %v, want glue.php", res.Roots[0].Node)
	}
}

func TestPercentAnalyzedEmpty(t *testing.T) {
	var r Result
	if r.PercentAnalyzed() != 0 {
		t.Error("empty result should be 0%")
	}
}

func TestAnalyzedNeverExceedsTotal(t *testing.T) {
	src := `<?php
function u() { move_uploaded_file($_FILES['f']['tmp_name'], "/x"); }
u();`
	res, _ := analyze(t, map[string]string{"tiny.php": src})
	if res.AnalyzedLoC > res.TotalLoC {
		t.Errorf("analyzed %d > total %d", res.AnalyzedLoC, res.TotalLoC)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// Two independent upload features (disjoint call-graph components) each
// get their own analysis root.
func TestTwoIndependentComponents(t *testing.T) {
	srcs := map[string]string{
		"gallery.php": `<?php
function gallery_upload() {
	move_uploaded_file($_FILES['img']['tmp_name'], "/g/" . $_FILES['img']['name']);
}
gallery_upload();
`,
		"docs.php": `<?php
function docs_upload() {
	move_uploaded_file($_FILES['doc']['tmp_name'], "/d/" . $_FILES['doc']['name']);
}
docs_upload();
`,
	}
	res, _ := analyze(t, srcs)
	if len(res.Roots) != 2 {
		t.Fatalf("roots = %d, want 2: %+v", len(res.Roots), res.Roots)
	}
}

// Dead code accessing $_FILES (never called) falls back to the
// minimal-cover rule and still selects the live upload flow.
func TestDeadAccessorFallback(t *testing.T) {
	srcs := map[string]string{
		"app.php": `<?php
function dead_reader() {
	return $_FILES['x']['name']; // never called
}
function live_upload() {
	move_uploaded_file($_FILES['y']['tmp_name'], "/u/a");
}
live_upload();
`,
	}
	res, _ := analyze(t, srcs)
	if len(res.Roots) == 0 {
		t.Fatal("fallback must still select a root")
	}
	found := false
	for _, r := range res.Roots {
		if r.Node.Name == "live_upload" || r.Node.Name == "app.php" {
			found = true
		}
	}
	if !found {
		t.Errorf("roots = %+v", res.Roots)
	}
}

// Roots are deterministic across runs.
func TestRootsDeterministic(t *testing.T) {
	srcs := map[string]string{
		"m.php": `<?php
function up_a() { move_uploaded_file($_FILES['a']['tmp_name'], "/a"); }
function up_b() { move_uploaded_file($_FILES['b']['tmp_name'], "/b"); }
up_a();
up_b();
`,
	}
	first, _ := analyze(t, srcs)
	for i := 0; i < 3; i++ {
		again, _ := analyze(t, srcs)
		if len(again.Roots) != len(first.Roots) {
			t.Fatal("root count drift")
		}
		for j := range again.Roots {
			if again.Roots[j].Node.String() != first.Roots[j].Node.String() {
				t.Fatalf("root order drift: %v vs %v", again.Roots, first.Roots)
			}
		}
	}
}
