// Package locality implements UChecker's vulnerability-oriented locality
// analysis (Section III-A of the paper).
//
// Given the extended call graph of a web application, the analysis finds
// every call graph that contains both a read access to $_FILES and an
// invocation of a file-upload sink, computes the lowest common ancestor of
// those two nodes, and designates that ancestor — a PHP file or a function —
// as the root whose body is symbolically executed. Everything else is
// skipped, which is what produces the large "% of LoC analyzed" reductions
// in Table III.
package locality

import (
	"sort"
	"strings"

	"repro/internal/callgraph"
	"repro/internal/phpast"
)

// Root is one analysis root selected by the locality analysis.
type Root struct {
	// Node is the lowest common ancestor node (file or function kind).
	Node *callgraph.Node
	// File is the path of the file containing the root.
	File string
	// Lines is the number of source lines attributed to the root's body
	// plus all functions reachable from it — the code that will actually be
	// symbolically executed.
	Lines int
}

// Result summarizes a locality analysis over an application.
type Result struct {
	// Roots are the selected analysis roots, deterministic order.
	Roots []Root
	// TotalLoC is the total number of source lines across all files.
	TotalLoC int
	// AnalyzedLoC is the number of source lines covered by the roots
	// (deduplicated).
	AnalyzedLoC int
	// FilesTotal is the number of parsed files considered.
	FilesTotal int
	// FilesPruned is the number of files the locality analysis skipped
	// entirely: no root lives in them and no function they declare is
	// reachable from any root. The ratio FilesPruned/FilesTotal is the
	// file-level face of the paper's "% of LoC analyzed" reduction.
	FilesPruned int
}

// PercentAnalyzed returns 100*AnalyzedLoC/TotalLoC, or 0 for empty input.
func (r Result) PercentAnalyzed() float64 {
	if r.TotalLoC == 0 {
		return 0
	}
	return 100 * float64(r.AnalyzedLoC) / float64(r.TotalLoC)
}

// Analyze runs the locality analysis. sources maps file name to source
// text (used only for line counting); files are the corresponding parsed
// trees.
func Analyze(g *callgraph.Graph, files []*phpast.File, sources map[string]string) Result {
	var res Result
	for _, src := range sources {
		res.TotalLoC += countLines(src)
	}

	roots := lowestCommonAncestors(g)
	sort.Slice(roots, func(i, j int) bool {
		if roots[i].File != roots[j].File {
			return roots[i].File < roots[j].File
		}
		return roots[i].Name < roots[j].Name
	})

	fileIndex := map[string]*phpast.File{}
	for _, f := range files {
		fileIndex[f.Name] = f
	}

	counted := map[*callgraph.Node]bool{}
	for _, n := range roots {
		lines := analyzedLines(g, n, fileIndex, counted)
		res.Roots = append(res.Roots, Root{Node: n, File: n.File, Lines: lines})
	}
	for _, r := range res.Roots {
		res.AnalyzedLoC += r.Lines
	}
	if res.AnalyzedLoC > res.TotalLoC {
		res.AnalyzedLoC = res.TotalLoC
	}
	// File-level pruning: a file survives when any counted (analyzed)
	// node lives in it; everything else the symbolic executor never
	// touches.
	analyzedFiles := map[string]bool{}
	for n := range counted {
		analyzedFiles[n.File] = true
	}
	res.FilesTotal = len(files)
	for _, f := range files {
		if f != nil && !analyzedFiles[f.Name] {
			res.FilesPruned++
		}
	}
	return res
}

// lowestCommonAncestors selects the analysis roots.
//
// The paper computes, per call graph (tree), the lowest common ancestor of
// the $_FILES node and the sink node. With several access sites the tree
// reading places one leaf per site (Figure 3 draws $_FILES under
// getFileName only, making example1.php the LCA even though
// handle_uploader also touches $_FILES), so the natural generalization is:
// the lowest scope node that reaches EVERY $_FILES-accessing scope and
// EVERY sink-calling scope of its connected component. When no single node
// covers everything (e.g. dead code accessing $_FILES), the analysis falls
// back to the minimal nodes covering at least one access and one sink, so
// a vulnerable flow is never skipped.
func lowestCommonAncestors(g *callgraph.Graph) []*callgraph.Node {
	// Scope components: weakly-connected file/function nodes via
	// call/include edges only. The shared $_FILES and sink nodes are
	// excluded so that unrelated features do not merge.
	comp := map[*callgraph.Node]int{}
	var order []*callgraph.Node
	for _, n := range g.Nodes {
		if n.Kind == callgraph.FileNode || n.Kind == callgraph.FuncNode {
			order = append(order, n)
		}
	}
	adj := map[*callgraph.Node][]*callgraph.Node{}
	for _, n := range order {
		for _, s := range g.Succ[n] {
			if s.Kind == callgraph.FileNode || s.Kind == callgraph.FuncNode {
				adj[n] = append(adj[n], s)
				adj[s] = append(adj[s], n)
			}
		}
	}
	nextComp := 0
	for _, n := range order {
		if _, done := comp[n]; done {
			continue
		}
		nextComp++
		stack := []*callgraph.Node{n}
		comp[n] = nextComp
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, m := range adj[cur] {
				if _, done := comp[m]; !done {
					comp[m] = nextComp
					stack = append(stack, m)
				}
			}
		}
	}

	// Per component: accessors (direct predecessors of $_FILES) and sink
	// callers.
	type group struct {
		accessors   []*callgraph.Node
		sinkCallers []*callgraph.Node
		members     []*callgraph.Node
	}
	groups := map[int]*group{}
	for _, n := range order {
		gid := comp[n]
		grp := groups[gid]
		if grp == nil {
			grp = &group{}
			groups[gid] = grp
		}
		grp.members = append(grp.members, n)
		for _, s := range g.Succ[n] {
			switch s.Kind {
			case callgraph.FilesNode:
				grp.accessors = append(grp.accessors, n)
			case callgraph.SinkNode:
				grp.sinkCallers = append(grp.sinkCallers, n)
			}
		}
	}

	var roots []*callgraph.Node
	for _, grp := range groups {
		if len(grp.accessors) == 0 || len(grp.sinkCallers) == 0 {
			continue
		}
		reachesScope := func(from, to *callgraph.Node) bool {
			if from == to {
				return true
			}
			seen := map[*callgraph.Node]bool{}
			var dfs func(*callgraph.Node) bool
			dfs = func(x *callgraph.Node) bool {
				if x == to {
					return true
				}
				if seen[x] {
					return false
				}
				seen[x] = true
				for _, s := range g.Succ[x] {
					if dfs(s) {
						return true
					}
				}
				return false
			}
			return dfs(from)
		}
		coversAll := func(n *callgraph.Node) bool {
			for _, a := range grp.accessors {
				if !reachesScope(n, a) {
					return false
				}
			}
			for _, s := range grp.sinkCallers {
				if !reachesScope(n, s) {
					return false
				}
			}
			return true
		}
		coversSome := func(n *callgraph.Node) bool {
			okA, okS := false, false
			for _, a := range grp.accessors {
				if reachesScope(n, a) {
					okA = true
					break
				}
			}
			for _, s := range grp.sinkCallers {
				if reachesScope(n, s) {
					okS = true
					break
				}
			}
			return okA && okS
		}
		candidates := make(map[*callgraph.Node]bool)
		for _, n := range grp.members {
			if coversAll(n) {
				candidates[n] = true
			}
		}
		if len(candidates) == 0 {
			for _, n := range grp.members {
				if coversSome(n) {
					candidates[n] = true
				}
			}
		}
		for n := range candidates {
			lowest := true
			for _, s := range g.Succ[n] {
				if candidates[s] {
					lowest = false
					break
				}
			}
			if lowest {
				roots = append(roots, n)
			}
		}
	}
	return roots
}

// analyzedLines counts the lines the symbolic executor will visit starting
// from root: the root's own body plus the bodies of all function nodes
// reachable from it, each counted once across all roots (counted is shared).
func analyzedLines(g *callgraph.Graph, root *callgraph.Node, files map[string]*phpast.File, counted map[*callgraph.Node]bool) int {
	total := 0
	seen := map[*callgraph.Node]bool{}
	var dfs func(n *callgraph.Node)
	dfs = func(n *callgraph.Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		if !counted[n] {
			counted[n] = true
			total += nodeLines(n, files)
		}
		for _, s := range g.Succ[n] {
			dfs(s)
		}
	}
	dfs(root)
	return total
}

// nodeLines attributes source lines to a node: a function's declaration
// span, or a file's top-level executable lines (excluding function and
// class declaration spans, which are counted by their own nodes when
// reachable).
func nodeLines(n *callgraph.Node, files map[string]*phpast.File) int {
	switch n.Kind {
	case callgraph.FuncNode:
		if n.Func == nil {
			return 0
		}
		return span(n.Func.P.Line, n.Func.EndLine)
	case callgraph.FileNode:
		f, ok := files[n.Name]
		if !ok {
			return 0
		}
		lines := 0
		for _, s := range f.Stmts {
			switch d := s.(type) {
			case *phpast.FuncDecl, *phpast.ClassDecl:
				_ = d
				continue
			case *phpast.InlineHTML, *phpast.Nop:
				continue
			default:
				lines += stmtSpan(s)
			}
		}
		return lines
	default:
		return 0
	}
}

func span(start, end int) int {
	if end < start {
		return 1
	}
	return end - start + 1
}

// stmtSpan estimates the line span of a statement from the minimum and
// maximum node positions inside it.
func stmtSpan(s phpast.Stmt) int {
	min, max := 0, 0
	phpast.Walk(s, func(n phpast.Node) bool {
		p := n.Pos()
		if !p.IsValid() {
			return true
		}
		if min == 0 || p.Line < min {
			min = p.Line
		}
		if p.Line > max {
			max = p.Line
		}
		return true
	})
	if min == 0 {
		return 1
	}
	// Closing braces are not represented by AST nodes; widen block-bearing
	// statements by one line per trailing brace level approximated as 1.
	w := max - min + 1
	switch s.(type) {
	case *phpast.If, *phpast.While, *phpast.For, *phpast.Foreach, *phpast.Switch, *phpast.DoWhile, *phpast.Try:
		w++
	}
	return w
}

// countLines counts newline-terminated lines, counting a trailing partial
// line.
func countLines(src string) int {
	if src == "" {
		return 0
	}
	n := strings.Count(src, "\n")
	if !strings.HasSuffix(src, "\n") {
		n++
	}
	return n
}
