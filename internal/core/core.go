// Package core is the canonical entry point to this repository's UChecker
// implementation — the paper's primary contribution. It re-exports the
// pipeline from internal/uchecker under the conventional internal/core
// location so downstream code has one obvious import.
//
// The canonical surface is the v2 Scanner API: context-aware, with
// parallel per-root execution and batch corpus scanning:
//
//	scanner := core.NewScanner(core.Options{Workers: 8})
//	report, err := scanner.Scan(ctx, core.Target{Name: "my-plugin", Sources: sources})
//	if report.Vulnerable { ... }
//
//	reports := scanner.ScanBatch(ctx, targets) // corpus sweep, one report per target
//
// The full pipeline (Figure 2 of the paper) lives in the sibling packages:
//
//	phplex, phpparser   parsing (phase 1)
//	callgraph, locality vulnerability-oriented locality analysis (phase 2)
//	heapgraph, interp   AST-based symbolic execution (phase 3)
//	vulnmodel           vulnerability modeling (phase 4)
//	translate           Z3-oriented translation (phase 5)
//	smt                 SMT-based verification (phase 6)
package core

import (
	"io"

	"repro/internal/obs"
	"repro/internal/scand"
	"repro/internal/scanjournal"
	"repro/internal/uchecker"
)

// Options configures a Scanner. See uchecker.Options.
type Options = uchecker.Options

// Scanner runs the six-phase detection pipeline with context
// cancellation, a bounded per-root worker pool, and batch scanning.
type Scanner = uchecker.Scanner

// Target identifies one application to scan: a name plus its PHP sources
// as file-name → source-text.
type Target = uchecker.Target

// Budgets bounds per-root symbolic execution and SMT model search; the
// degradation ladder halves the whole set per rung.
type Budgets = uchecker.Budgets

// AppReport is a scan result carrying the verdict, findings and Table III
// measurements.
type AppReport = uchecker.AppReport

// Finding is one verified vulnerable sink with source lines and an
// exploit witness.
type Finding = uchecker.Finding

// Failure is one structured failure record: root, pipeline stage, failure
// class and error text (plus the recovered stack for panics).
type Failure = uchecker.Failure

// FailureClass partitions everything that can go wrong with one root.
type FailureClass = uchecker.FailureClass

// Failure classes. See the uchecker package for semantics.
const (
	FailParse          = uchecker.FailParse
	FailLoad           = uchecker.FailLoad
	FailPathBudget     = uchecker.FailPathBudget
	FailObjectBudget   = uchecker.FailObjectBudget
	FailSolverBudget   = uchecker.FailSolverBudget
	FailRootTimeout    = uchecker.FailRootTimeout
	FailCancelled      = uchecker.FailCancelled
	FailPanic          = uchecker.FailPanic
	FailInternal       = uchecker.FailInternal
	FailJournalCorrupt = uchecker.FailJournalCorrupt
)

// Pipeline stages recorded on Failure.Stage.
const (
	StageParse    = uchecker.StageParse
	StageSymExec  = uchecker.StageSymExec
	StageVerify   = uchecker.StageVerify
	StageFallback = uchecker.StageFallback
	StageSchedule = uchecker.StageSchedule
	StageLoad     = uchecker.StageLoad
	StageJournal  = uchecker.StageJournal
)

// BatchStats carries the batch-level crash-safety counters produced by
// Scanner.ScanBatchJournaled: replay/cache-hit tallies, salvaged journal
// records and batch-stage failures. Kept separate from AppReport so
// replayed and cached per-app reports stay byte-identical across runs.
type BatchStats = uchecker.BatchStats

// Distributed scanning (see internal/shardcoord): Scanner.RunWorker
// joins a shared coordination directory as one process of a worker
// fleet — claim a lease on a shard of targets, scan it through the
// crash-safe batch path, publish, repeat — and whichever worker finds
// every shard finished folds the deterministic merged report.
type WorkerOptions = uchecker.WorkerOptions

// WorkerStats summarizes one RunWorker call: shards scanned and
// reclaimed, leases lost to fencing, whether the worker drained, and
// the merged-report path when this worker folded it.
type WorkerStats = uchecker.WorkerStats

// ReadMerged loads a fleet's merged report back into the in-order
// per-target report slice (wall-clock fields read zero).
func ReadMerged(path string) ([]*AppReport, error) { return uchecker.ReadMerged(path) }

// Scan-as-a-service (see internal/scand and cmd/ucheckerd): a Daemon
// wraps a Scanner behind a durable job queue — the scan journal holds
// the job lifecycle, so a restart with the same state directory
// re-enqueues pending jobs and serves finished results byte-identically
// from the content-addressed cache — with per-tenant token-bucket
// admission, weighted-fair scheduling, and an HTTP API (Daemon.Handler)
// exposing submit/status/result/cancel, SSE progress and Prometheus
// metrics.
type (
	// Daemon is the long-running scan service.
	Daemon = scand.Daemon
	// DaemonConfig configures OpenDaemon: state directory, scan options,
	// concurrency, timeouts, per-tenant admission policies and journal
	// auto-compaction thresholds.
	DaemonConfig = scand.Config
	// DaemonJob is one submitted scan's lifecycle snapshot.
	DaemonJob = scand.Job
	// TenantPolicy bounds one tenant's submit rate, burst, queue depth
	// and fair-share weight.
	TenantPolicy = scand.TenantPolicy
	// IngestLimits bounds tarball submissions (per-file bytes, total
	// extracted bytes, file count).
	IngestLimits = scand.IngestLimits
)

// OpenDaemon opens (or crash-recovers) a scan daemon on its state
// directory. Close it to release the journal; Drain for a graceful
// stop that leaves queued jobs durable.
func OpenDaemon(cfg DaemonConfig) (*Daemon, error) { return scand.Open(cfg) }

// AtomicWrite streams an export through a temp file in the destination
// directory and renames it into place, so a mid-write failure leaves any
// previous file byte-identical and no partial file behind.
func AtomicWrite(path string, write func(io.Writer) error) error {
	return scanjournal.AtomicWrite(path, write)
}

// VerifyCache re-checksums every entry of a result cache directory,
// returning how many entries verified clean and how many are corrupt.
// With remove set, corrupt entries are pruned.
func VerifyCache(dir string, remove bool) (ok, bad int, err error) {
	c, err := scanjournal.OpenCache(dir, nil)
	if err != nil {
		return 0, 0, err
	}
	return c.Verify(remove)
}

// DefaultMaxRetries is the degradation-ladder retry count selected when
// Options.MaxRetries is zero.
const DefaultMaxRetries = uchecker.DefaultMaxRetries

// Observability re-exports (see internal/obs): install a TraceRecorder
// via Options.Trace to capture the scan's span tree, and read the
// deterministic work counters from AppReport.Metrics.
type (
	// TraceRecorder collects spans; safe for concurrent use, and a nil
	// recorder disables tracing.
	TraceRecorder = obs.Recorder
	// Span is one finished timed region of the scan.
	Span = obs.Span
	// Metrics is the flat, deterministically mergeable counter set on
	// AppReport.Metrics.
	Metrics = obs.Metrics
	// LabeledMetrics pairs a metric set with Prometheus labels for export.
	LabeledMetrics = obs.LabeledMetrics
)

// NewTraceRecorder returns an empty span recorder for Options.Trace.
func NewTraceRecorder() *TraceRecorder { return obs.NewRecorder() }

// WriteChromeTrace exports recorded spans as Chrome trace-event JSON
// (load in chrome://tracing or https://ui.perfetto.dev).
var WriteChromeTrace = obs.WriteChromeTrace

// WritePrometheus exports metric sets in Prometheus text exposition
// format under the given namespace.
var WritePrometheus = obs.WritePrometheus

// NewScanner returns a Scanner with normalized options.
func NewScanner(opts Options) *Scanner { return uchecker.NewScanner(opts) }
