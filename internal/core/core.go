// Package core is the canonical entry point to this repository's UChecker
// implementation — the paper's primary contribution. It re-exports the
// pipeline from internal/uchecker under the conventional internal/core
// location so downstream code has one obvious import:
//
//	checker := core.New(core.Options{})
//	report := checker.CheckSources("my-plugin", sources)
//	if report.Vulnerable { ... }
//
// The full pipeline (Figure 2 of the paper) lives in the sibling packages:
//
//	phplex, phpparser   parsing (phase 1)
//	callgraph, locality vulnerability-oriented locality analysis (phase 2)
//	heapgraph, interp   AST-based symbolic execution (phase 3)
//	vulnmodel           vulnerability modeling (phase 4)
//	translate           Z3-oriented translation (phase 5)
//	smt                 SMT-based verification (phase 6)
package core

import (
	"repro/internal/uchecker"
)

// Options configures a Checker. See uchecker.Options.
type Options = uchecker.Options

// Checker runs the six-phase detection pipeline.
type Checker = uchecker.Checker

// AppReport is a scan result carrying the verdict, findings and Table III
// measurements.
type AppReport = uchecker.AppReport

// Finding is one verified vulnerable sink with source lines and an
// exploit witness.
type Finding = uchecker.Finding

// New returns a Checker.
func New(opts Options) *Checker { return uchecker.New(opts) }
